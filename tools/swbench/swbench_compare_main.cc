/**
 * swbench-compare: exit 0 when NEW.json is within tolerance of OLD.json,
 * 1 on any regression, 2 on usage or parse errors.  See swbench.hh and
 * docs/PROFILING.md for the comparison rules.
 */

#include <iostream>
#include <string>
#include <vector>

#include "swbench.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return sw::bench::compareMain(args, std::cout, std::cerr);
}
