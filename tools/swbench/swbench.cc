#include "swbench.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <ostream>
#include <sstream>

namespace sw::bench {

namespace {

/**
 * Minimal recursive-descent JSON reader that only *keeps* numeric leaves.
 * Strings still have to be scanned correctly (keys, and escapes inside
 * skipped values), but nothing non-numeric is stored.
 */
class Flattener
{
  public:
    Flattener(const std::string &text, MetricMap &out)
        : text(text), out(out)
    {
    }

    bool
    run(std::string &err)
    {
        skipWs();
        if (!parseValue(""))
            { err = error; return false; }
        skipWs();
        if (pos != text.size()) {
            err = fail("trailing garbage");
            return false;
        }
        return true;
    }

  private:
    std::string
    fail(const std::string &what)
    {
        std::ostringstream msg;
        msg << what << " at offset " << pos;
        error = msg.str();
        return error;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &value)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        value.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    break;
                char esc = text[pos++];
                switch (esc) {
                  case 'n': value += '\n'; break;
                  case 't': value += '\t'; break;
                  case 'r': value += '\r'; break;
                  case 'b': value += '\b'; break;
                  case 'f': value += '\f'; break;
                  case 'u':
                    // Good enough for metric paths: keep the escape
                    // verbatim rather than decoding UTF-16 pairs.
                    value += "\\u";
                    for (int i = 0; i < 4 && pos < text.size(); ++i)
                        value += text[pos++];
                    break;
                  default: value += esc; break;
                }
            } else {
                value += c;
            }
        }
        fail("unterminated string");
        return false;
    }

    static std::string
    joinPath(const std::string &prefix, const std::string &key)
    {
        return prefix.empty() ? key : prefix + "." + key;
    }

    bool
    parseObject(const std::string &prefix)
    {
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':')) {
                fail("expected ':'");
                return false;
            }
            if (!parseValue(joinPath(prefix, key)))
                return false;
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            fail("expected ',' or '}'");
            return false;
        }
    }

    /**
     * Peek an array element that is an object for a leading "name" /
     * "run_name" / "zone" string member, without consuming input.
     * Keying benchmark and profiler-zone entries by name makes
     * reordering invisible to the diff.
     */
    bool
    peekElementName(std::string &name)
    {
        std::size_t saved = pos;
        bool found = false;
        skipWs();
        if (pos < text.size() && text[pos] == '{') {
            ++pos;
            std::string key;
            if (parseString(key) && consume(':') &&
                (key == "name" || key == "run_name" || key == "zone")) {
                skipWs();
                if (pos < text.size() && text[pos] == '"' &&
                    parseString(name) && !name.empty())
                    found = true;
            }
        }
        pos = saved;
        error.clear();
        return found;
    }

    bool
    parseArray(const std::string &prefix)
    {
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return true;
        std::size_t index = 0;
        for (;;) {
            std::string key;
            if (!peekElementName(key))
                key = std::to_string(index);
            if (!parseValue(joinPath(prefix, key)))
                return false;
            ++index;
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool
    parseValue(const std::string &path)
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return false;
        }
        char c = text[pos];
        if (c == '{')
            return parseObject(path);
        if (c == '[')
            return parseArray(path);
        if (c == '"') {
            std::string ignored;
            return parseString(ignored);
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            if (!path.empty())
                out[path] = 1.0;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            if (!path.empty())
                out[path] = 0.0;
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return true;
        }
        char *end = nullptr;
        double value = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos) {
            fail("expected a JSON value");
            return false;
        }
        pos = static_cast<std::size_t>(end - text.c_str());
        if (!path.empty())
            out[path] = value;
        return true;
    }

    const std::string &text;
    MetricMap &out;
    std::size_t pos = 0;
    std::string error;
};

bool
hasPrefix(const std::string &key, const std::string &prefix)
{
    return key.size() >= prefix.size() &&
           key.compare(0, prefix.size(), prefix) == 0;
}

bool
containsAny(const std::string &key,
            std::initializer_list<const char *> needles)
{
    for (const char *needle : needles) {
        if (key.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

bool
flattenJson(const std::string &text, MetricMap &out, std::string &err)
{
    out.clear();
    return Flattener(text, out).run(err);
}

bool
flattenJsonFile(const std::string &path, MetricMap &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!flattenJson(text.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

Direction
directionFor(const std::string &key)
{
    // Determinism contracts: the value is the result, not a measurement.
    if (containsAny(key, {"results_identical", "fingerprint", "zone_drops",
                          "errors", "failures"}))
        return Direction::ExactMatch;
    // Rates and ratios where bigger means faster or better-covered.
    if (containsAny(key, {"per_second", "per_sec", "speedup", "coverage",
                          "hit_rate", "iterations", "events_per_sec"}))
        return Direction::LowerIsWorse;
    // Everything else (times, cycles, misses, RSS, queue depths) is a
    // cost.
    return Direction::HigherIsWorse;
}

CompareReport
compare(const MetricMap &oldM, const MetricMap &newM,
        const CompareOptions &opts)
{
    CompareReport report;

    auto ignored = [&](const std::string &key) {
        for (const std::string &prefix : opts.ignorePrefixes) {
            if (hasPrefix(key, prefix))
                return true;
        }
        return false;
    };
    auto tolFor = [&](const std::string &key) {
        for (const auto &[needle, tol] : opts.tolOverrides) {
            if (key.find(needle) != std::string::npos)
                return tol;
        }
        return opts.defaultTol;
    };

    for (const auto &[key, oldValue] : oldM) {
        if (ignored(key))
            continue;
        auto it = newM.find(key);
        if (it == newM.end()) {
            report.onlyOld.push_back(key);
            continue;
        }
        Delta delta;
        delta.key = key;
        delta.oldValue = oldValue;
        delta.newValue = it->second;
        delta.direction = directionFor(key);
        delta.tol = tolFor(key);

        if (delta.direction == Direction::ExactMatch) {
            delta.regression = delta.newValue != delta.oldValue;
            delta.relWorse = delta.regression ? 1.0 : 0.0;
        } else {
            double diff = delta.newValue - delta.oldValue;
            if (delta.direction == Direction::LowerIsWorse)
                diff = -diff;
            // Worse-direction relative change against the baseline
            // magnitude; a zero baseline makes any worsening infinite
            // (a metric appearing from nothing is always signal).
            double base = std::fabs(delta.oldValue);
            if (diff == 0.0)
                delta.relWorse = 0.0;
            else if (base == 0.0)
                delta.relWorse = diff > 0.0
                                     ? std::numeric_limits<double>::infinity()
                                     : -std::numeric_limits<double>::infinity();
            else
                delta.relWorse = diff / base;
            delta.regression = delta.relWorse > delta.tol;
            delta.improvement = delta.relWorse < -delta.tol;
        }
        report.regressions += delta.regression ? 1 : 0;
        report.improvements += delta.improvement ? 1 : 0;
        report.deltas.push_back(std::move(delta));
    }
    for (const auto &[key, value] : newM) {
        (void)value;
        if (!ignored(key) && !oldM.count(key))
            report.onlyNew.push_back(key);
    }
    return report;
}

void
printReport(std::ostream &out, const CompareReport &report, bool verbose)
{
    auto line = [&](const Delta &d, const char *tag) {
        out << "  " << tag << " " << d.key << ": " << d.oldValue << " -> "
            << d.newValue;
        if (d.direction != Direction::ExactMatch) {
            out << " (" << (d.relWorse >= 0 ? "+" : "")
                << d.relWorse * 100.0 << "% worse-direction, tol "
                << d.tol * 100.0 << "%)";
        }
        out << "\n";
    };

    for (const Delta &d : report.deltas) {
        if (d.regression)
            line(d, "REGRESSION");
    }
    for (const Delta &d : report.deltas) {
        if (d.improvement)
            line(d, "improved  ");
    }
    if (verbose) {
        for (const Delta &d : report.deltas) {
            if (!d.regression && !d.improvement)
                line(d, "ok        ");
        }
    }
    if (!report.onlyOld.empty()) {
        out << "  metrics only in baseline:";
        for (const std::string &key : report.onlyOld)
            out << " " << key;
        out << "\n";
    }
    if (!report.onlyNew.empty()) {
        out << "  metrics only in candidate:";
        for (const std::string &key : report.onlyNew)
            out << " " << key;
        out << "\n";
    }
    out << "swbench: " << report.deltas.size() << " metrics compared, "
        << report.regressions << " regressions, " << report.improvements
        << " improvements\n";
}

int
compareMain(const std::vector<std::string> &args, std::ostream &out,
            std::ostream &err)
{
    CompareOptions opts;
    std::vector<std::string> files;
    bool verbose = false;

    auto parseTol = [&](const std::string &value, double &tol,
                        std::string *needle) {
        std::string spec = value;
        if (needle) {
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos)
                return false;
            *needle = spec.substr(0, eq);
            spec = spec.substr(eq + 1);
        }
        char *end = nullptr;
        tol = std::strtod(spec.c_str(), &end);
        return end != spec.c_str() && *end == '\0' && tol >= 0.0;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto needsValue = [&](const char *flag) -> const std::string * {
            if (arg != flag)
                return nullptr;
            if (i + 1 >= args.size()) {
                err << "swbench-compare: " << flag << " needs a value\n";
                return nullptr;
            }
            return &args[++i];
        };
        if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--default-tol") {
            const std::string *value = needsValue("--default-tol");
            if (!value || !parseTol(*value, opts.defaultTol, nullptr)) {
                err << "swbench-compare: bad --default-tol\n";
                return 2;
            }
        } else if (arg == "--tol") {
            const std::string *value = needsValue("--tol");
            std::string needle;
            double tol = 0.0;
            if (!value || !parseTol(*value, tol, &needle)) {
                err << "swbench-compare: --tol wants SUBSTRING=REL\n";
                return 2;
            }
            opts.tolOverrides.emplace_back(std::move(needle), tol);
        } else if (arg == "--ignore") {
            const std::string *value = needsValue("--ignore");
            if (!value) {
                err << "swbench-compare: --ignore wants a prefix\n";
                return 2;
            }
            opts.ignorePrefixes.push_back(*value);
        } else if (!arg.empty() && arg[0] == '-') {
            err << "swbench-compare: unknown option " << arg << "\n";
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        err << "usage: swbench-compare OLD.json NEW.json "
               "[--default-tol R] [--tol SUBSTRING=R]... "
               "[--ignore PREFIX]... [--verbose]\n";
        return 2;
    }

    MetricMap oldM, newM;
    std::string parseErr;
    if (!flattenJsonFile(files[0], oldM, parseErr) ||
        !flattenJsonFile(files[1], newM, parseErr)) {
        err << "swbench-compare: " << parseErr << "\n";
        return 2;
    }

    CompareReport report = compare(oldM, newM, opts);
    printReport(out, report, verbose);
    return report.ok() ? 0 : 1;
}

} // namespace sw::bench
