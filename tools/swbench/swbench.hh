/**
 * @file
 * swbench: the benchmark regression gate's comparison engine.
 *
 * Every benchmark artifact in this repo — BENCH_sweep.json from
 * bench/sweep_smoke, google-benchmark --benchmark_out JSON from the micro
 * benches, and hostprof profile JSON from --profile-out — is a tree of
 * numeric leaves.  swbench flattens such a tree into dotted-path metrics
 * ("jobsN_ms", "benchmarks.BM_EventQueue_SchedulePop.cpu_time",
 * "zones.event_dispatch.self_ns"), then compares two flattened files
 * metric by metric against per-metric noise thresholds.  The CLI wrapper
 * (swbench-compare) exits nonzero on any regression, which is what lets
 * CI gate on "did this PR make the simulator slower".
 *
 * The parser is deliberately dependency-free (no third-party JSON
 * library): it understands exactly the JSON subset our writers emit plus
 * everything google-benchmark produces, and it is ~150 lines we fully
 * control.  Arrays of objects carrying a "name" (or "run_name") string
 * are keyed by that name instead of their index, so reordering benchmark
 * entries never shows up as a regression.
 */

#ifndef SW_TOOLS_SWBENCH_HH
#define SW_TOOLS_SWBENCH_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sw::bench {

/** Flattened numeric view of a JSON document: dotted path -> value. */
using MetricMap = std::map<std::string, double>;

/**
 * Flatten the numeric leaves of @p text into @p out.  Booleans become
 * 0/1; strings and nulls are skipped (they carry provenance, not
 * performance).  On malformed input returns false and sets @p err to a
 * message with an input offset.
 */
bool flattenJson(const std::string &text, MetricMap &out, std::string &err);

/** flattenJson() over a file.  @p err gets open failures too. */
bool flattenJsonFile(const std::string &path, MetricMap &out,
                     std::string &err);

/**
 * How a metric's delta is judged.  Most metrics are costs (time, cycles,
 * misses): bigger is worse.  Rates (items_per_second, speedup, coverage)
 * invert.  A few are contracts (results_identical): any change at all is
 * a failure, whatever the tolerance.
 */
enum class Direction { HigherIsWorse, LowerIsWorse, ExactMatch };

/** Infer a metric's direction from its dotted path. */
Direction directionFor(const std::string &key);

struct CompareOptions
{
    /**
     * Default relative noise threshold.  Shared-runner CI timing noise
     * is routinely 20% on sub-second benches; 0.25 keeps the gate quiet
     * on noise while still catching the 2x regressions that matter.
     * Tighten per metric with tolOverrides for stable counters.
     */
    double defaultTol = 0.25;
    /**
     * (substring, tolerance) overrides, first match wins.  A tolerance
     * of 0 demands exact equality for matching metrics.
     */
    std::vector<std::pair<std::string, double>> tolOverrides;
    /**
     * Metric-path prefixes excluded from comparison.  Manifest and
     * context blocks describe *where* a run happened (core counts,
     * timestamps); diffing them across hosts is pure noise.
     */
    std::vector<std::string> ignorePrefixes = {"manifest.", "context."};
};

struct Delta
{
    std::string key;
    double oldValue = 0.0;
    double newValue = 0.0;
    /** Signed relative change, worse-direction positive. */
    double relWorse = 0.0;
    double tol = 0.0;
    Direction direction = Direction::HigherIsWorse;
    bool regression = false;
    /** Improved past the same threshold (informational). */
    bool improvement = false;
};

struct CompareReport
{
    std::vector<Delta> deltas;
    /** Metrics present in only one of the two files. */
    std::vector<std::string> onlyOld, onlyNew;
    std::size_t regressions = 0;
    std::size_t improvements = 0;
    bool ok() const { return regressions == 0; }
};

/** Compare @p oldM (baseline) against @p newM (candidate). */
CompareReport compare(const MetricMap &oldM, const MetricMap &newM,
                      const CompareOptions &opts = {});

/** Human-readable report: regressions first, then improvements/coverage. */
void printReport(std::ostream &out, const CompareReport &report,
                 bool verbose = false);

/**
 * Full CLI driver shared by swbench-compare's main() and the unit tests:
 * parses argv (old.json new.json [--default-tol R] [--tol SUBSTR=R]...
 * [--ignore PREFIX]... [--verbose]), runs the comparison, prints the
 * report.  @return 0 clean, 1 regression, 2 usage/parse failure.
 */
int compareMain(const std::vector<std::string> &args, std::ostream &out,
                std::ostream &err);

} // namespace sw::bench

#endif // SW_TOOLS_SWBENCH_HH
