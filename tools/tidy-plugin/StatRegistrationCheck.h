//===--- StatRegistrationCheck.h - softwalker- checks ------------*- C++ -*-===//
//
// softwalker-stat-registration
//
// Every component keeps its counters in a nested `struct Stats` (or
// *Stats) and wires each field into the ~2100-entry StatRegistry from the
// enclosing class's registerStats()/registerGauges().  A field that is
// added but never registered silently disappears from every metrics dump,
// time-series sample and figure harness — exactly the rot mode that
// multiplies as design-space components (prefetchers, dead-entry
// predictors, new baselines) are added.  This check flags counter fields
// of *Stats structs that no registerStats()/registerGauges() body in the
// translation unit references.
//
// TUs that declare but do not define the registration methods are skipped:
// the TU that holds the definition performs the audit.
//
//===----------------------------------------------------------------------===//

#ifndef SOFTWALKER_TIDY_STAT_REGISTRATION_CHECK_H
#define SOFTWALKER_TIDY_STAT_REGISTRATION_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include "llvm/ADT/SmallPtrSet.h"

namespace clang {
namespace tidy {
namespace softwalker {

class StatRegistrationCheck : public ClangTidyCheck {
public:
  StatRegistrationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

private:
  static void collectFieldRefs(const Stmt *S,
                               llvm::SmallPtrSetImpl<const FieldDecl *> &Out,
                               int Depth);
  static bool isCounterType(QualType Type);
};

} // namespace softwalker
} // namespace tidy
} // namespace clang

#endif // SOFTWALKER_TIDY_STAT_REGISTRATION_CHECK_H
