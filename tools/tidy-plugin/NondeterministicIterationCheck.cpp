//===--- NondeterministicIterationCheck.cpp - softwalker- checks ----------===//

#include "NondeterministicIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace softwalker {

NondeterministicIterationCheck::NondeterministicIterationCheck(
    StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CheckedDirs(Options.get("CheckedDirs", "src/")),
      AllowedFiles(Options.get("AllowedFiles", "")) {}

void NondeterministicIterationCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CheckedDirs", CheckedDirs);
  Options.store(Opts, "AllowedFiles", AllowedFiles);
}

void NondeterministicIterationCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxForRangeStmt().bind("range-loop"), this);
  // for (auto it = m.begin(); ...): the begin()/cbegin() receiver decides.
  Finder->addMatcher(
      forStmt(hasLoopInit(declStmt(hasDescendant(
                  cxxMemberCallExpr(
                      callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                      on(expr().bind("container")))
                      .bind("begin-call")))))
          .bind("iter-loop"),
      this);
}

bool NondeterministicIterationCheck::isUnorderedContainer(
    QualType Type) const {
  if (Type.isNull())
    return false;
  QualType Desugared =
      Type.getNonReferenceType().getUnqualifiedType().getCanonicalType();
  const CXXRecordDecl *Record = Desugared->getAsCXXRecordDecl();
  if (!Record)
    return false;
  const std::string Name = Record->getQualifiedNameAsString();
  return Name == "std::unordered_map" || Name == "std::unordered_set" ||
         Name == "std::unordered_multimap" ||
         Name == "std::unordered_multiset";
}

bool NondeterministicIterationCheck::inCheckedFile(
    SourceLocation Loc, const SourceManager &SM) const {
  const StringRef File = SM.getFilename(SM.getSpellingLoc(Loc));
  if (File.empty())
    return false;
  llvm::SmallVector<StringRef, 8> Dirs;
  StringRef(CheckedDirs).split(Dirs, ';', /*MaxSplit=*/-1,
                               /*KeepEmpty=*/false);
  bool Checked = false;
  for (StringRef Dir : Dirs)
    Checked = Checked || File.contains(Dir);
  if (!Checked)
    return false;
  llvm::SmallVector<StringRef, 8> Allowed;
  StringRef(AllowedFiles).split(Allowed, ';', /*MaxSplit=*/-1,
                                /*KeepEmpty=*/false);
  for (StringRef Allow : Allowed)
    if (File.contains(Allow))
      return false;
  return true;
}

void NondeterministicIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *Loop =
          Result.Nodes.getNodeAs<CXXForRangeStmt>("range-loop")) {
    const Expr *Range = Loop->getRangeInit();
    if (!Range || !isUnorderedContainer(Range->getType()))
      return;
    if (!inCheckedFile(Loop->getForLoc(), *Result.SourceManager))
      return;
    diag(Loop->getForLoc(),
         "range-for over unordered container; hash iteration order is "
         "nondeterministic and breaks the field-identical fingerprint "
         "contracts — iterate a sorted snapshot (sw::sortedKeys) or switch "
         "containers");
    return;
  }
  const auto *Begin =
      Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin-call");
  const auto *Container = Result.Nodes.getNodeAs<Expr>("container");
  if (!Begin || !Container || !isUnorderedContainer(Container->getType()))
    return;
  if (!inCheckedFile(Begin->getBeginLoc(), *Result.SourceManager))
    return;
  diag(Begin->getBeginLoc(),
       "iterator loop over unordered container; hash iteration order is "
       "nondeterministic — iterate a sorted snapshot (sw::sortedKeys) or "
       "switch containers");
}

} // namespace softwalker
} // namespace tidy
} // namespace clang
