//===--- InlineCaptureSpillCheck.cpp - softwalker- checks -----------------===//

#include "InlineCaptureSpillCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecordLayout.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace softwalker {

InlineCaptureSpillCheck::InlineCaptureSpillCheck(StringRef Name,
                                                ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      InlineBytes(Options.get("InlineBytes", 80U)),
      MaxAlign(Options.get("MaxAlign", 16U)) {}

void InlineCaptureSpillCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "InlineBytes", InlineBytes);
  Options.store(Opts, "MaxAlign", MaxAlign);
}

void InlineCaptureSpillCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("schedule", "scheduleIn"),
                               ofClass(hasName("::sw::EventQueue")))))
          .bind("schedule-call"),
      this);
}

// Walks an argument expression gathering lambdas that end up stored in the
// scheduled EventFn: literal lambdas, lambdas behind std::move(), and
// lambdas bound to a local `auto fire = [...]` first.  Does not descend
// into lambda bodies — a nested lambda is someone else's schedule call.
void InlineCaptureSpillCheck::collectLambdas(
    const Stmt *S, llvm::SmallVectorImpl<const LambdaExpr *> &Out,
    llvm::SmallPtrSetImpl<const Stmt *> &Visited, int Depth) const {
  if (!S || Depth > 16 || !Visited.insert(S).second)
    return;
  if (const auto *Lambda = dyn_cast<LambdaExpr>(S)) {
    Out.push_back(Lambda);
    return; // do not descend into the body
  }
  if (const auto *Ref = dyn_cast<DeclRefExpr>(S)) {
    if (const auto *Var = dyn_cast<VarDecl>(Ref->getDecl()))
      if (const Expr *Init = Var->getInit())
        collectLambdas(Init, Out, Visited, Depth + 1);
    return;
  }
  for (const Stmt *Child : S->children())
    collectLambdas(Child, Out, Visited, Depth + 1);
}

void InlineCaptureSpillCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call =
      Result.Nodes.getNodeAs<CXXMemberCallExpr>("schedule-call");
  if (!Call)
    return;
  ASTContext &Ctx = *Result.Context;
  for (const Expr *Arg : Call->arguments()) {
    llvm::SmallVector<const LambdaExpr *, 4> Lambdas;
    llvm::SmallPtrSet<const Stmt *, 32> Visited;
    collectLambdas(Arg->IgnoreImplicit(), Lambdas, Visited, 0);
    for (const LambdaExpr *Lambda : Lambdas) {
      const CXXRecordDecl *Closure = Lambda->getLambdaClass();
      if (!Closure || !Closure->isCompleteDefinition() ||
          Closure->isDependentType())
        continue;
      const ASTRecordLayout &Layout = Ctx.getASTRecordLayout(Closure);
      const uint64_t Bytes =
          static_cast<uint64_t>(Layout.getSize().getQuantity());
      const uint64_t Align =
          static_cast<uint64_t>(Layout.getAlignment().getQuantity());
      if (Bytes > InlineBytes) {
        diag(Lambda->getBeginLoc(),
             "lambda scheduled on the EventQueue captures %0 bytes, over "
             "the %1-byte InlineFunction inline buffer; the closure spills "
             "to the slab pool on every schedule — shrink the capture "
             "(indices instead of objects)")
            << static_cast<unsigned>(Bytes) << InlineBytes;
      } else if (Align > MaxAlign) {
        diag(Lambda->getBeginLoc(),
             "lambda scheduled on the EventQueue requires %0-byte alignment, "
             "over the %1-byte max_align_t buffer alignment; the closure "
             "cannot be stored inline")
            << static_cast<unsigned>(Align) << MaxAlign;
      }
    }
  }
}

} // namespace softwalker
} // namespace tidy
} // namespace clang
