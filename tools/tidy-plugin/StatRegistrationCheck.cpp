//===--- StatRegistrationCheck.cpp - softwalker- checks -------------------===//

#include "StatRegistrationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace softwalker {

StatRegistrationCheck::StatRegistrationCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context) {}

void StatRegistrationCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(), matchesName("Stats$"),
                    hasDeclContext(cxxRecordDecl().bind("component")))
          .bind("stats"),
      this);
}

void StatRegistrationCheck::collectFieldRefs(
    const Stmt *S, llvm::SmallPtrSetImpl<const FieldDecl *> &Out, int Depth) {
  if (!S || Depth > 64)
    return;
  if (const auto *Member = dyn_cast<MemberExpr>(S))
    if (const auto *Field = dyn_cast<FieldDecl>(Member->getMemberDecl()))
      Out.insert(Field->getCanonicalDecl());
  // UnaryOperator &stats_.field, gauge lambdas, nested calls: a plain
  // child walk reaches them all (LambdaExpr exposes its body as a child).
  for (const Stmt *Child : S->children())
    collectFieldRefs(Child, Out, Depth + 1);
}

bool StatRegistrationCheck::isCounterType(QualType Type) {
  if (Type.isNull())
    return false;
  QualType Canonical = Type.getCanonicalType();
  if (Canonical->isArithmeticType() && !Canonical->isEnumeralType())
    return true;
  if (const CXXRecordDecl *Record = Canonical->getAsCXXRecordDecl())
    return Record->getName() == "Histogram";
  return false;
}

void StatRegistrationCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Stats = Result.Nodes.getNodeAs<CXXRecordDecl>("stats");
  const auto *Component = Result.Nodes.getNodeAs<CXXRecordDecl>("component");
  if (!Stats || !Component || Stats->isDependentType())
    return;

  // Gather registration bodies visible in this TU.  Skip the audit when a
  // registration method is declared but defined elsewhere.
  llvm::SmallPtrSet<const FieldDecl *, 32> Referenced;
  bool SawBody = false;
  bool SawDeclarationWithoutBody = false;
  for (const CXXMethodDecl *Method : Component->methods()) {
    const StringRef Name = Method->getName();
    if (Name != "registerStats" && Name != "registerGauges")
      continue;
    const FunctionDecl *Definition = nullptr;
    if (Method->hasBody(Definition) && Definition) {
      SawBody = true;
      collectFieldRefs(Definition->getBody(), Referenced, 0);
    } else {
      SawDeclarationWithoutBody = true;
    }
  }
  if (!SawBody || SawDeclarationWithoutBody)
    return;

  for (const FieldDecl *Field : Stats->fields()) {
    if (!isCounterType(Field->getType()))
      continue;
    if (Referenced.count(Field->getCanonicalDecl()))
      continue;
    diag(Field->getLocation(),
         "counter %0 of %1 is never registered in registerStats()/"
         "registerGauges(); it will be invisible to the StatRegistry and "
         "every metrics dump")
        << Field << Stats;
  }
}

} // namespace softwalker
} // namespace tidy
} // namespace clang
