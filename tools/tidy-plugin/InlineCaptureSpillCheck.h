//===--- InlineCaptureSpillCheck.h - softwalker- checks ----------*- C++ -*-===//
//
// softwalker-inline-capture-spill
//
// Every event handler handed to sw::EventQueue::schedule()/scheduleIn()
// is stored in an InlineFunction<void(), kEventInlineBytes> slot.  A
// closure larger than the inline buffer spills to the slab pool on every
// schedule — correct, but it re-introduces per-event allocator traffic on
// the hottest path in the simulator, which PR 3 spent a redesign
// removing.  Two hot sites guard this with runtime static_asserts; this
// check extends the guarantee to *every* scheduling site by computing the
// real closure size from the AST record layout.
//
// The InlineBytes option (default 80) must match sw::kEventInlineBytes.
//
//===----------------------------------------------------------------------===//

#ifndef SOFTWALKER_TIDY_INLINE_CAPTURE_SPILL_CHECK_H
#define SOFTWALKER_TIDY_INLINE_CAPTURE_SPILL_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include "llvm/ADT/SmallPtrSet.h"
#include "llvm/ADT/SmallVector.h"

namespace clang {
namespace tidy {
namespace softwalker {

class InlineCaptureSpillCheck : public ClangTidyCheck {
public:
  InlineCaptureSpillCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  void collectLambdas(const Stmt *S,
                      llvm::SmallVectorImpl<const LambdaExpr *> &Out,
                      llvm::SmallPtrSetImpl<const Stmt *> &Visited,
                      int Depth) const;

  /// Inline capture budget; must equal sw::kEventInlineBytes.
  const unsigned InlineBytes;
  /// Closure alignment limit (InlineFunction stores at max_align_t).
  const unsigned MaxAlign;
};

} // namespace softwalker
} // namespace tidy
} // namespace clang

#endif // SOFTWALKER_TIDY_INLINE_CAPTURE_SPILL_CHECK_H
