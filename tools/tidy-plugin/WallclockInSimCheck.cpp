//===--- WallclockInSimCheck.cpp - softwalker- checks ---------------------===//

#include "WallclockInSimCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace softwalker {

WallclockInSimCheck::WallclockInSimCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SimDirs(Options.get(
          "SimDirs",
          "src/sim;src/gpu;src/vm;src/mem;src/core;src/check;src/prof")),
      AllowClockDirs(Options.get("AllowClockDirs", "src/prof")) {}

void WallclockInSimCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SimDirs", SimDirs);
  Options.store(Opts, "AllowClockDirs", AllowClockDirs);
}

void WallclockInSimCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand",
                                              "::std::rand", "::std::srand"))))
          .bind("rand-call"),
      this);
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(hasName("now")))).bind("now-call"), this);
  const auto RandomDevice = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasName("::std::random_device")))));
  Finder->addMatcher(varDecl(hasType(RandomDevice)).bind("random-device"),
                     this);
  Finder->addMatcher(
      cxxTemporaryObjectExpr(hasType(RandomDevice)).bind("random-device"),
      this);
}

static bool fileUnderAnyDir(SourceLocation Loc, const SourceManager &SM,
                            StringRef DirList) {
  const StringRef File = SM.getFilename(SM.getSpellingLoc(Loc));
  if (File.empty())
    return false;
  llvm::SmallVector<StringRef, 8> Dirs;
  DirList.split(Dirs, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (StringRef Dir : Dirs) {
    const std::string Prefixed = Dir.str() + "/";
    if (File.contains(Prefixed))
      return true;
  }
  return false;
}

bool WallclockInSimCheck::inSimDir(SourceLocation Loc,
                                   const SourceManager &SM) const {
  return fileUnderAnyDir(Loc, SM, SimDirs);
}

bool WallclockInSimCheck::inAllowClockDir(SourceLocation Loc,
                                          const SourceManager &SM) const {
  return fileUnderAnyDir(Loc, SM, AllowClockDirs);
}

void WallclockInSimCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("rand-call")) {
    if (inSimDir(Call->getBeginLoc(), SM)) {
      diag(Call->getBeginLoc(),
           "rand()/srand() in simulation code; draw from the run's seeded "
           "sw::Rng so results are reproducible");
    }
    return;
  }
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("now-call")) {
    const auto *Method = dyn_cast_or_null<CXXMethodDecl>(Call->getCalleeDecl());
    if (!Method)
      return;
    const CXXRecordDecl *Class = Method->getParent();
    if (!Class)
      return;
    const std::string Name = Class->getQualifiedNameAsString();
    // rfind(x, 0) == 0 is prefix-test without StringRef::startswith,
    // which LLVM 18 removed.
    const bool IsClock =
        Name.rfind("std::chrono::", 0) == 0 ||
        (Name.size() >= 6 &&
         Name.compare(Name.size() - 6, 6, "_clock") == 0);
    if (IsClock && inSimDir(Call->getBeginLoc(), SM) &&
        !inAllowClockDir(Call->getBeginLoc(), SM)) {
      diag(Call->getBeginLoc(),
           "wall-clock time in simulation code; simulated time comes from "
           "EventQueue::now() and harness timing belongs in src/harness or "
           "bench/ (the host profiler in src/prof is the sanctioned "
           "exception)");
    }
    return;
  }
  SourceLocation Loc;
  if (const auto *Var = Result.Nodes.getNodeAs<VarDecl>("random-device"))
    Loc = Var->getLocation();
  else if (const auto *Tmp =
               Result.Nodes.getNodeAs<CXXTemporaryObjectExpr>("random-device"))
    Loc = Tmp->getBeginLoc();
  if (Loc.isValid() && inSimDir(Loc, SM)) {
    diag(Loc, "std::random_device in simulation code; entropy breaks "
              "record/replay — seed a sw::Rng from the config instead");
  }
}

} // namespace softwalker
} // namespace tidy
} // namespace clang
