//===--- AuditSideEffectCheck.h - softwalker- checks -------------*- C++ -*-===//
//
// softwalker-audit-side-effect
//
// SW_AUDIT(...) compiles to `(void)sizeof(...)` unless SOFTWALKER_AUDIT is
// defined, and SW_TRACE(...) drops its arguments unless tracing is
// compiled in.  An argument expression with a side effect (assignment,
// increment, a mutating container call) therefore executes in some build
// variants and not others — the classic "assert with a side effect" bug,
// but harder to spot because the macros look like plain logging.  This
// check lexes the spelled argument tokens of every SW_AUDIT/SW_TRACE
// expansion and flags ++/--, assignment and compound assignment, and
// calls to well-known mutating members (push_back, insert, erase, ...).
//
//===----------------------------------------------------------------------===//

#ifndef SOFTWALKER_TIDY_AUDIT_SIDE_EFFECT_CHECK_H
#define SOFTWALKER_TIDY_AUDIT_SIDE_EFFECT_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace softwalker {

class AuditSideEffectCheck : public ClangTidyCheck {
public:
  AuditSideEffectCheck(StringRef Name, ClangTidyContext *Context);
  void registerPPCallbacks(const SourceManager &SM, Preprocessor *PP,
                           Preprocessor *ModuleExpanderPP) override;
};

} // namespace softwalker
} // namespace tidy
} // namespace clang

#endif // SOFTWALKER_TIDY_AUDIT_SIDE_EFFECT_CHECK_H
