//===--- AuditSideEffectCheck.cpp - softwalker- checks --------------------===//

#include "AuditSideEffectCheck.h"

#include "clang/Basic/IdentifierTable.h"
#include "clang/Lex/MacroArgs.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/ADT/StringSet.h"

namespace clang {
namespace tidy {
namespace softwalker {

namespace {

const llvm::StringSet<> &mutatorNames() {
  static const llvm::StringSet<> Names = {
      "push_back", "pop_back",  "push_front", "pop_front", "insert",
      "emplace",   "emplace_back", "emplace_front", "erase", "clear",
      "assign",    "resize",    "reserve",    "swap",      "merge",
      "extract",   "push",      "pop",        "reset",     "release",
      "append",    "remove",    "sort",       "splice"};
  return Names;
}

class AuditSideEffectPPCallbacks : public PPCallbacks {
public:
  AuditSideEffectPPCallbacks(AuditSideEffectCheck &Check,
                             const SourceManager &SM)
      : Check(Check), SM(SM) {}

  void MacroExpands(const Token &MacroNameTok, const MacroDefinition &,
                    SourceRange, const MacroArgs *Args) override {
    const IdentifierInfo *Ident = MacroNameTok.getIdentifierInfo();
    if (!Ident || !Args)
      return;
    const StringRef Macro = Ident->getName();
    if (Macro != "SW_AUDIT" && Macro != "SW_TRACE")
      return;
    // Only diagnose expansions spelled in real files (not nested macros).
    const SourceLocation Loc = MacroNameTok.getLocation();
    if (!Loc.isFileID())
      return;
    for (unsigned I = 0, N = Args->getNumMacroArguments(); I != N; ++I)
      scanArg(Args->getUnexpArgument(I), Macro, Loc);
  }

private:
  // Token stream of one unexpanded macro argument, terminated by eof.
  void scanArg(const Token *Tok, StringRef Macro, SourceLocation MacroLoc) {
    if (!Tok)
      return;
    int Depth = 0; // paren/bracket/brace depth inside the argument
    const Token *Prev2 = nullptr;
    const Token *Prev = nullptr;
    for (; Tok->isNot(tok::eof); Prev2 = Prev, Prev = Tok, ++Tok) {
      switch (Tok->getKind()) {
      case tok::plusplus:
      case tok::minusminus:
        report(*Tok, Macro, "increment/decrement");
        return;
      case tok::plusequal:
      case tok::minusequal:
      case tok::starequal:
      case tok::slashequal:
      case tok::percentequal:
      case tok::ampequal:
      case tok::pipeequal:
      case tok::caretequal:
      case tok::lesslessequal:
      case tok::greatergreaterequal:
        report(*Tok, Macro, "compound assignment");
        return;
      case tok::equal:
        // `=` at depth 0 is assignment; inside parens it can be a default
        // argument of a lambda, which the sim code never writes here —
        // still treat as assignment.  `==`/`<=`/... lex as distinct kinds.
        report(*Tok, Macro, "assignment");
        return;
      case tok::l_paren:
      case tok::l_square:
      case tok::l_brace:
        // `x.push_back(` / `x->insert(` — mutating member call.
        if (Tok->is(tok::l_paren) && Prev && Prev->is(tok::raw_identifier) &&
            Prev2 && (Prev2->is(tok::period) || Prev2->is(tok::arrow)) &&
            mutatorNames().contains(Prev->getRawIdentifier())) {
          report(*Prev, Macro, "mutating container call");
          return;
        }
        if (Tok->is(tok::l_paren) && Prev && Prev->is(tok::identifier) &&
            Prev2 && (Prev2->is(tok::period) || Prev2->is(tok::arrow)) &&
            Prev->getIdentifierInfo() &&
            mutatorNames().contains(Prev->getIdentifierInfo()->getName())) {
          report(*Prev, Macro, "mutating container call");
          return;
        }
        ++Depth;
        break;
      case tok::r_paren:
      case tok::r_square:
      case tok::r_brace:
        --Depth;
        break;
      default:
        break;
      }
    }
    (void)Depth;
    (void)MacroLoc;
  }

  void report(const Token &Tok, StringRef Macro, StringRef What) {
    SourceLocation Loc = Tok.getLocation();
    if (!Loc.isValid())
      return;
    Check.diag(SM.getSpellingLoc(Loc),
               "%0 inside %1 argument; %1 compiles out in some build "
               "variants, so this side effect makes behaviour depend on the "
               "build — hoist it out of the macro")
        << What << Macro;
  }

  AuditSideEffectCheck &Check;
  const SourceManager &SM;
};

} // namespace

AuditSideEffectCheck::AuditSideEffectCheck(StringRef Name,
                                           ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context) {}

void AuditSideEffectCheck::registerPPCallbacks(const SourceManager &SM,
                                               Preprocessor *PP,
                                               Preprocessor *) {
  PP->addPPCallbacks(std::make_unique<AuditSideEffectPPCallbacks>(*this, SM));
}

} // namespace softwalker
} // namespace tidy
} // namespace clang
