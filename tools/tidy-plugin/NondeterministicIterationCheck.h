//===--- NondeterministicIterationCheck.h - softwalker- checks ---*- C++ -*-===//
//
// softwalker-nondeterministic-iteration
//
// Flags range-for statements and iterator loops over std::unordered_map /
// std::unordered_set (and their multi variants) in simulator code.  Hash
// iteration order is unspecified and varies across libstdc++ versions,
// ASLR seeds and insertion histories, so any simulated state or printed
// output derived from it breaks the jobs=1-vs-8 sweep determinism suite
// and the record/replay fingerprint contract.  Pure-reporting code can be
// exempted via the AllowedFiles option or NOLINT with a justification.
//
//===----------------------------------------------------------------------===//

#ifndef SOFTWALKER_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H
#define SOFTWALKER_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang {
namespace tidy {
namespace softwalker {

class NondeterministicIterationCheck : public ClangTidyCheck {
public:
  NondeterministicIterationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool isUnorderedContainer(QualType Type) const;
  bool inCheckedFile(SourceLocation Loc, const SourceManager &SM) const;

  /// Semicolon-separated path substrings the check applies to.
  /// (std::string, not StringRef: Options.get returns a temporary.)
  const std::string CheckedDirs;
  /// Semicolon-separated path substrings exempt from the check.
  const std::string AllowedFiles;
};

} // namespace softwalker
} // namespace tidy
} // namespace clang

#endif // SOFTWALKER_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H
