/**
 * @file
 * swtidy: command-line driver for the portable `softwalker-` checks.
 *
 *   swtidy [options] <file>...
 *
 * Prints clang-tidy-style diagnostics (`file:line: warning: ... [check]`)
 * and exits 1 when any check fired, so it slots straight into CI next to
 * (or in place of) the clang-tidy plugin.  See docs/STATIC_ANALYSIS.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyzer.hh"

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: swtidy [options] <file>...\n"
        "\n"
        "Portable runner for the softwalker- static-analysis checks.\n"
        "\n"
        "options:\n"
        "  --checks=a,b,...        comma list of check names to enable\n"
        "                          (default: all; the softwalker- prefix\n"
        "                          may be omitted)\n"
        "  --allow-iteration=SUB   path substring exempt from the\n"
        "                          nondeterministic-iteration check\n"
        "                          (repeatable)\n"
        "  --inline-bytes=N        InlineFunction capture budget\n"
        "                          (default 80)\n"
        "  --type-size=NAME:BYTES  extra type size for capture estimation\n"
        "                          (repeatable)\n"
        "  --list-checks           print the check catalog and exit\n"
        "  --quiet                 suppress the summary line\n"
        "  -h, --help              this text\n");
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    swtidy::Options opts;
    std::vector<std::string> paths;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        }
        if (arg == "--list-checks") {
            for (const std::string &name : swtidy::allChecks())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (startsWith(arg, "--checks=")) {
            for (std::string name : splitCommas(arg.substr(9))) {
                if (name.empty())
                    continue;
                if (!startsWith(name, "softwalker-"))
                    name = "softwalker-" + name;
                bool known = false;
                for (const std::string &c : swtidy::allChecks())
                    known = known || c == name;
                if (!known) {
                    std::fprintf(stderr, "swtidy: unknown check '%s'\n",
                                 name.c_str());
                    return 2;
                }
                opts.enabled.insert(name);
            }
            continue;
        }
        if (startsWith(arg, "--allow-iteration=")) {
            opts.allowIteration.push_back(arg.substr(18));
            continue;
        }
        if (startsWith(arg, "--inline-bytes=")) {
            opts.inlineBytes =
                std::strtoul(arg.c_str() + 15, nullptr, 10);
            if (opts.inlineBytes == 0) {
                std::fprintf(stderr, "swtidy: bad --inline-bytes\n");
                return 2;
            }
            continue;
        }
        if (startsWith(arg, "--type-size=")) {
            std::string kv = arg.substr(12);
            std::size_t colon = kv.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr, "swtidy: --type-size wants NAME:BYTES\n");
                return 2;
            }
            opts.typeSizes[kv.substr(0, colon)] =
                std::strtoul(kv.c_str() + colon + 1, nullptr, 10);
            continue;
        }
        if (startsWith(arg, "-")) {
            std::fprintf(stderr, "swtidy: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
        paths.push_back(arg);
    }

    if (paths.empty()) {
        usage(stderr);
        return 2;
    }

    swtidy::Analyzer analyzer(opts);
    for (const std::string &path : paths) {
        if (!analyzer.addFile(path)) {
            std::fprintf(stderr, "swtidy: cannot read '%s'\n", path.c_str());
            return 2;
        }
    }

    std::vector<swtidy::Diagnostic> diags = analyzer.run();
    for (const swtidy::Diagnostic &d : diags)
        std::printf("%s\n", swtidy::renderDiagnostic(d).c_str());
    if (!quiet) {
        std::fprintf(stderr, "swtidy: %zu file(s), %zu finding(s)\n",
                     paths.size(), diags.size());
    }
    return diags.empty() ? 0 : 1;
}
