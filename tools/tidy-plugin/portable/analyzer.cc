/**
 * @file
 * Lexer-level engine behind the portable `softwalker-` checks.  See
 * analyzer.hh for scope and the relationship to the clang-tidy plugin.
 *
 * The engine works on *stripped* text: comments, string/char literals and
 * preprocessor lines are blanked (length-preserving, so every offset maps
 * straight back to a line/column in the original file).  Collection
 * passes then build a cross-file picture — unordered-container names,
 * struct layouts, type aliases, registerStats bodies — and the checks run
 * over the stripped text consulting it.
 */

#include "analyzer.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>

namespace swtidy {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

/** True when the whole word @p word starts at @p pos of @p text. */
bool
wordAt(const std::string &text, std::size_t pos, const std::string &word)
{
    if (pos + word.size() > text.size())
        return false;
    if (text.compare(pos, word.size(), word) != 0)
        return false;
    if (pos > 0 && identChar(text[pos - 1]))
        return false;
    std::size_t end = pos + word.size();
    return end >= text.size() || !identChar(text[end]);
}

std::size_t
skipSpaces(const std::string &text, std::size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos;
}

/**
 * Position just past the parenthesis/bracket/brace group opening at
 * @p open, or npos when unbalanced.
 */
std::size_t
matchGroup(const std::string &text, std::size_t open)
{
    char o = text[open];
    char c = o == '(' ? ')' : o == '[' ? ']' : o == '{' ? '}' : '\0';
    if (!c)
        return std::string::npos;
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == o)
            ++depth;
        else if (text[i] == c && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

/** Splits @p s on commas at paren/bracket/brace/angle depth 0. */
std::vector<std::string>
splitTopLevel(const std::string &s)
{
    std::vector<std::string> parts;
    int round = 0, square = 0, curly = 0, angle = 0;
    std::string cur;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char ch = s[i];
        switch (ch) {
          case '(': ++round; break;
          case ')': --round; break;
          case '[': ++square; break;
          case ']': --square; break;
          case '{': ++curly; break;
          case '}': --curly; break;
          case '<':
            // "<<" and "<=" are operators, not template opens.
            if (i + 1 < s.size() && (s[i + 1] == '<' || s[i + 1] == '='))
                cur += s[i++];
            else
                ++angle;
            break;
          case '>':
            if (i > 0 && s[i - 1] == '-')
                break; // "->"
            if (i + 1 < s.size() && s[i + 1] == '=')
                { cur += s[i++]; break; } // ">="
            if (angle > 0)
                --angle;
            break;
          case ',':
            if (!round && !square && !curly && !angle) {
                parts.push_back(cur);
                cur.clear();
                continue;
            }
            break;
          default: break;
        }
        cur += ch;
    }
    if (!trim(cur).empty() || !parts.empty())
        parts.push_back(cur);
    return parts;
}

/** Strips comments / string and char literals / preprocessor lines. */
std::string
stripText(const std::string &text)
{
    std::string out = text;
    enum State { Code, Line, Block, Str, Chr, Raw } state = Code;
    std::string rawDelim;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case Code:
            if (c == '/' && n == '/') {
                state = Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                state = Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                // Raw string literal: R"delim( ... )delim"
                if (i > 0 && text[i - 1] == 'R' &&
                    (i < 2 || !identChar(text[i - 2]))) {
                    std::size_t open = text.find('(', i + 1);
                    if (open != std::string::npos) {
                        rawDelim = ")" + text.substr(i + 1, open - i - 1) +
                                   "\"";
                        state = Raw;
                        continue;
                    }
                }
                state = Str;
            } else if (c == '\'') {
                // Digit separators (1'000) are not char literals.
                if (i > 0 && std::isdigit(static_cast<unsigned char>(
                                 text[i - 1])))
                    break;
                state = Chr;
            }
            break;
          case Line:
            if (c == '\n')
                state = Code;
            else
                out[i] = ' ';
            break;
          case Block:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                state = Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case Str:
            if (c == '\\' && n) {
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                state = Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case Chr:
            if (c == '\\' && n) {
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                state = Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case Raw:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (std::size_t k = 0; k < rawDelim.size(); ++k)
                    out[i + k] = ' ';
                i += rawDelim.size() - 1;
                state = Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

struct Field
{
    std::string type;
    std::string name;
    int line = 0;            ///< 1-based
    std::size_t count = 1;   ///< array element count
};

struct StructDef
{
    std::string name;
    std::string file;
    std::string stem;
    int line = 0;
    std::vector<Field> fields;
};

struct SourceFile
{
    std::string path;        ///< as given (used in diagnostics)
    std::string effective;   ///< SWTIDY-AS override, else path
    std::string stem;        ///< effective minus extension
    std::string raw;
    std::string code;        ///< stripped
    /**
     * Preprocessor-directive text (macro bodies included), blank
     * everywhere else.  Offset-aligned with `code` so positions found in
     * it report on the right line.  The wallclock check scans it: a clock
     * read hiding in a #define spelled in a sim file is still a clock
     * read in a sim file.
     */
    std::string ppText;
    std::vector<std::size_t> lineStarts;           ///< offsets into code
    std::vector<std::set<std::string>> nolint;     ///< per 1-based line
    std::vector<std::string> allowIteration;       ///< file directives

    int
    lineOf(std::size_t pos) const
    {
        auto it = std::upper_bound(lineStarts.begin(), lineStarts.end(), pos);
        return static_cast<int>(it - lineStarts.begin());
    }
};

const char *const kUnorderedNames[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const char *const kMutatorNames[] = {
    "push_back", "pop_back",     "push_front", "pop_front", "insert",
    "erase",     "clear",        "emplace",    "emplace_back",
    "reset",     "release",      "resize",     "assign"};

} // namespace

const std::vector<std::string> &
allChecks()
{
    static const std::vector<std::string> names = {
        kNondeterministicIteration, kWallclockInSim, kInlineCaptureSpill,
        kStatRegistration, kAuditSideEffect, kRawVpnKey};
    return names;
}

std::string
renderDiagnostic(const Diagnostic &diag)
{
    std::ostringstream os;
    os << diag.file << ":" << diag.line << ": warning: " << diag.message
       << " [" << diag.check << "]";
    return os.str();
}

struct Analyzer::Impl
{
    Options opts;
    std::vector<SourceFile> files;
    std::vector<Diagnostic> diags;

    // Cross-file knowledge, built by collect().
    std::set<std::string> unorderedVars;
    std::map<std::string, std::string> aliases;      ///< using A = B;
    std::vector<StructDef> structs;
    std::map<std::string, std::string> registerBodies; ///< stem -> text

    explicit Impl(Options o) : opts(std::move(o)) {}

    bool
    checkEnabled(const std::string &name) const
    {
        return opts.enabled.empty() || opts.enabled.count(name) != 0;
    }

    void
    report(const SourceFile &f, std::size_t pos, const std::string &check,
           std::string msg)
    {
        int line = f.lineOf(pos);
        if (line >= 1 && line <= static_cast<int>(f.nolint.size())) {
            const std::set<std::string> &supp =
                f.nolint[static_cast<std::size_t>(line - 1)];
            if (supp.count("*") || supp.count(check))
                return;
        }
        diags.push_back(Diagnostic{f.path, line, check, std::move(msg)});
    }

    // ---- loading ----------------------------------------------------------

    void
    addSource(const std::string &path, std::string text)
    {
        SourceFile f;
        f.path = path;
        f.effective = path;
        f.raw = std::move(text);
        f.code = stripText(f.raw);
        blankPreprocessorLines(f);
        f.lineStarts.push_back(0);
        for (std::size_t i = 0; i < f.code.size(); ++i)
            if (f.code[i] == '\n')
                f.lineStarts.push_back(i + 1);
        parseCommentDirectives(f);
        std::size_t dot = f.effective.find_last_of('.');
        f.stem = dot == std::string::npos ? f.effective
                                          : f.effective.substr(0, dot);
        files.push_back(std::move(f));
    }

    static void
    blankPreprocessorLines(SourceFile &f)
    {
        f.ppText.assign(f.code.size(), ' ');
        std::size_t lineStart = 0;
        bool continuation = false;
        for (std::size_t i = 0; i <= f.code.size(); ++i) {
            if (i == f.code.size() || f.code[i] == '\n') {
                std::size_t firstNonSpace =
                    f.code.find_first_not_of(" \t", lineStart);
                bool pp = continuation ||
                          (firstNonSpace != std::string::npos &&
                           firstNonSpace < i && f.code[firstNonSpace] == '#');
                if (pp) {
                    // A trailing backslash continues the directive; look in
                    // the raw text (the stripped copy preserves lengths).
                    std::size_t back = i;
                    while (back > lineStart &&
                           std::isspace(static_cast<unsigned char>(
                               f.raw[back - 1])))
                        --back;
                    continuation = back > lineStart && f.raw[back - 1] == '\\';
                    for (std::size_t k = lineStart; k < i; ++k) {
                        f.ppText[k] = f.code[k];
                        f.code[k] = ' ';
                    }
                } else {
                    continuation = false;
                }
                lineStart = i + 1;
            }
        }
    }

    /** NOLINT / NOLINTNEXTLINE / SWTIDY-AS / SWTIDY-OPTION from comments. */
    void
    parseCommentDirectives(SourceFile &f)
    {
        std::size_t lineCount = f.lineStarts.size();
        f.nolint.assign(lineCount, {});
        std::istringstream in(f.raw);
        std::string line;
        std::size_t num = 0;
        while (std::getline(in, line)) {
            ++num;
            std::size_t pos;
            if ((pos = line.find("SWTIDY-AS:")) != std::string::npos)
                f.effective = trim(line.substr(pos + 10));
            if ((pos = line.find("SWTIDY-OPTION:")) != std::string::npos) {
                std::string kv = trim(line.substr(pos + 14));
                std::size_t eq = kv.find('=');
                if (eq != std::string::npos &&
                    trim(kv.substr(0, eq)) == "allow-iteration")
                    f.allowIteration.push_back(trim(kv.substr(eq + 1)));
            }
            bool nextLine = false;
            if ((pos = line.find("NOLINTNEXTLINE")) != std::string::npos)
                nextLine = true;
            else
                pos = line.find("NOLINT");
            if (pos == std::string::npos)
                continue;
            std::size_t target = nextLine ? num + 1 : num;
            if (target < 1 || target > lineCount)
                continue;
            std::set<std::string> &supp = f.nolint[target - 1];
            std::size_t open =
                pos + (nextLine ? strlenConst("NOLINTNEXTLINE")
                                : strlenConst("NOLINT"));
            if (open < line.size() && line[open] == '(') {
                std::size_t close = line.find(')', open);
                std::string inner =
                    line.substr(open + 1, close == std::string::npos
                                              ? std::string::npos
                                              : close - open - 1);
                for (const std::string &c : splitTopLevel(inner))
                    supp.insert(trim(c));
            } else {
                supp.insert("*");
            }
        }
    }

    static constexpr std::size_t
    strlenConst(const char *s)
    {
        std::size_t n = 0;
        while (s[n])
            ++n;
        return n;
    }

    // ---- collection -------------------------------------------------------

    void
    collect()
    {
        for (const SourceFile &f : files) {
            collectUnorderedDecls(f);
            collectAliases(f);
            collectStructs(f);
            collectRegisterBodies(f);
        }
    }

    /** Angle-bracket depth of @p pos within its statement. */
    static int
    angleDepthInStatement(const std::string &code, std::size_t pos)
    {
        std::size_t start = pos;
        while (start > 0) {
            char c = code[start - 1];
            if (c == ';' || c == '{' || c == '}')
                break;
            --start;
        }
        int depth = 0;
        for (std::size_t i = start; i < pos; ++i) {
            char c = code[i];
            if (c == '<') {
                if (i + 1 < pos && (code[i + 1] == '<' || code[i + 1] == '='))
                    ++i; // operator
                else
                    ++depth;
            } else if (c == '>') {
                if (i > start && code[i - 1] == '-')
                    continue; // ->
                if (i + 1 < pos && code[i + 1] == '=')
                    { ++i; continue; }
                if (depth > 0)
                    --depth;
            }
        }
        return depth;
    }

    void
    collectUnorderedDecls(const SourceFile &f)
    {
        const std::string &code = f.code;
        for (const char *container : kUnorderedNames) {
            std::size_t pos = 0;
            std::string word = container;
            while ((pos = code.find(word, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += word.size();
                if (!wordAt(code, here, word))
                    continue;
                if (angleDepthInStatement(code, here) != 0)
                    continue; // nested in another template: not the decl type
                std::size_t after = here + word.size();
                std::size_t open = skipSpaces(code, after);
                if (open >= code.size() || code[open] != '<')
                    continue;
                // Match the container's own template argument list.
                int depth = 0;
                std::size_t i = open;
                for (; i < code.size(); ++i) {
                    char c = code[i];
                    if (c == '<')
                        ++depth;
                    else if (c == '>' && --depth == 0)
                        break;
                }
                if (i >= code.size())
                    continue;
                std::size_t p = skipSpaces(code, i + 1);
                while (p < code.size() && (code[p] == '&' || code[p] == '*'))
                    p = skipSpaces(code, p + 1);
                std::size_t nameStart = p;
                while (p < code.size() && identChar(code[p]))
                    ++p;
                if (p == nameStart)
                    continue;
                std::string name = code.substr(nameStart, p - nameStart);
                std::size_t next = skipSpaces(code, p);
                if (next < code.size() &&
                    (code[next] == ';' || code[next] == '=' ||
                     code[next] == ',' || code[next] == ')' ||
                     code[next] == '{')) {
                    unorderedVars.insert(name);
                }
            }
        }
    }

    void
    collectAliases(const SourceFile &f)
    {
        static const std::regex re(
            R"(\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);)");
        auto begin = std::sregex_iterator(f.code.begin(), f.code.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            aliases.emplace((*it)[1].str(), trim((*it)[2].str()));
    }

    void
    collectStructs(const SourceFile &f)
    {
        const std::string &code = f.code;
        std::size_t pos = 0;
        while (pos < code.size()) {
            std::size_t sPos = code.find("struct", pos);
            std::size_t cPos = code.find("class", pos);
            std::size_t here = std::min(sPos, cPos);
            if (here == std::string::npos)
                break;
            std::string kw = here == sPos ? "struct" : "class";
            pos = here + kw.size();
            if (!wordAt(code, here, kw))
                continue;
            std::size_t p = skipSpaces(code, here + kw.size());
            std::size_t nameStart = p;
            while (p < code.size() && identChar(code[p]))
                ++p;
            if (p == nameStart)
                continue;
            std::string name = code.substr(nameStart, p - nameStart);
            p = skipSpaces(code, p);
            if (p < code.size() && wordAt(code, p, "final"))
                p = skipSpaces(code, p + 5);
            // Skip a base-clause up to the opening brace.
            if (p < code.size() && code[p] == ':') {
                while (p < code.size() && code[p] != '{' && code[p] != ';')
                    ++p;
            }
            if (p >= code.size() || code[p] != '{')
                continue; // forward declaration or something else
            std::size_t end = matchGroup(code, p);
            if (end == std::string::npos)
                continue;
            StructDef def;
            def.name = name;
            def.file = f.path;
            def.stem = f.stem;
            def.line = f.lineOf(here);
            collectFields(f, code, p + 1, end - 1, def);
            structs.push_back(std::move(def));
        }
    }

    void
    collectFields(const SourceFile &f, const std::string &code,
                  std::size_t begin, std::size_t end, StructDef &def)
    {
        static const std::regex fieldRe(
            R"(^\s*(?:mutable\s+)?([A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?)\s+([A-Za-z_]\w*)\s*(?:\[\s*(\d+)\s*\])?\s*(?:=[^;]*|\{[^;{}]*\})?;)");
        int depth = 0;
        std::size_t lineStart = begin;
        for (std::size_t i = begin; i <= end; ++i) {
            bool eol = i == end || code[i] == '\n';
            if (eol) {
                if (depth == 0) {
                    std::string line = code.substr(lineStart, i - lineStart);
                    std::smatch m;
                    if (std::regex_search(line, m, fieldRe) &&
                        line.find('(') == std::string::npos) {
                        std::string type = trim(m[1].str());
                        if (type != "return" && type != "using" &&
                            type != "static" && type != "constexpr" &&
                            type != "struct" && type != "class" &&
                            type != "enum" && type != "friend") {
                            Field field;
                            field.type = type;
                            field.name = m[2].str();
                            field.line = f.lineOf(lineStart +
                                                  m.position(2));
                            field.count = m[3].matched
                                              ? std::stoul(m[3].str())
                                              : 1;
                            def.fields.push_back(std::move(field));
                        }
                    }
                }
                lineStart = i + 1;
                continue;
            }
            char c = code[i];
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
            // A '{' on a field line (brace init) closes on the same line,
            // so the depth==0 test at eol still accepts it; member function
            // bodies keep depth > 0 across their lines and are skipped.
        }
    }

    void
    collectRegisterBodies(const SourceFile &f)
    {
        const std::string &code = f.code;
        for (const char *fn : {"registerStats", "registerGauges"}) {
            std::size_t pos = 0;
            while ((pos = code.find(fn, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += strlenConst(fn);
                if (!wordAt(code, here, fn))
                    continue;
                std::size_t open = skipSpaces(code, here + strlenConst(fn));
                if (open >= code.size() || code[open] != '(')
                    continue;
                std::size_t close = matchGroup(code, open);
                if (close == std::string::npos)
                    continue;
                std::size_t p = skipSpaces(code, close);
                // Skip cv-qualifiers / override between ')' and '{'.
                while (p < code.size() && identChar(code[p])) {
                    std::size_t w = p;
                    while (w < code.size() && identChar(code[w]))
                        ++w;
                    p = skipSpaces(code, w);
                }
                if (p >= code.size() || code[p] != '{')
                    continue; // declaration only
                std::size_t bodyEnd = matchGroup(code, p);
                if (bodyEnd == std::string::npos)
                    continue;
                registerBodies[f.stem] +=
                    code.substr(p, bodyEnd - p) + "\n";
            }
        }
    }

    // ---- type sizing (capture estimation) ---------------------------------

    std::string
    resolveAlias(std::string type) const
    {
        for (int hop = 0; hop < 8; ++hop) {
            auto it = aliases.find(type);
            if (it == aliases.end())
                return type;
            type = it->second;
            if (startsWith(type, "std::"))
                return type;
        }
        return type;
    }

    /**
     * Estimated sizeof for a (lexical) type name.  Unknown types estimate
     * as pointer-size, so the engine under-approximates: it never flags a
     * closure it cannot prove oversized.
     */
    std::size_t
    sizeOfType(std::string type, int depth = 0) const
    {
        type = trim(type);
        if (depth > 6 || type.empty())
            return 8;
        for (const char *prefix : {"const ", "volatile ", "typename ",
                                   "struct ", "mutable "})
            if (startsWith(type, prefix))
                return sizeOfType(type.substr(strlenConst(prefix)), depth + 1);
        if (type.back() == '*')
            return 8;
        if (type.back() == '&')
            return sizeOfType(type.substr(0, type.size() - 1), depth + 1);
        auto custom = opts.typeSizes.find(type);
        if (custom != opts.typeSizes.end())
            return custom->second;

        static const std::map<std::string, std::size_t> builtins = {
            {"bool", 1},          {"char", 1},
            {"signed char", 1},   {"unsigned char", 1},
            {"short", 2},         {"unsigned short", 2},
            {"int", 4},           {"unsigned", 4},
            {"unsigned int", 4},  {"float", 4},
            {"long", 8},          {"unsigned long", 8},
            {"long long", 8},     {"unsigned long long", 8},
            {"double", 8},        {"long double", 16},
            {"int8_t", 1},        {"uint8_t", 1},
            {"int16_t", 2},       {"uint16_t", 2},
            {"int32_t", 4},       {"uint32_t", 4},
            {"int64_t", 8},       {"uint64_t", 8},
            {"size_t", 8},        {"ptrdiff_t", 8},
            {"intptr_t", 8},      {"uintptr_t", 8},
        };
        std::string bare = type;
        if (startsWith(bare, "std::"))
            bare = bare.substr(5);
        auto b = builtins.find(bare);
        if (b != builtins.end())
            return b->second;

        // Templated standard vocabulary types.
        std::size_t lt = bare.find('<');
        std::string head = lt == std::string::npos ? bare
                                                   : trim(bare.substr(0, lt));
        std::string args = lt == std::string::npos
                               ? ""
                               : bare.substr(lt + 1,
                                             bare.rfind('>') - lt - 1);
        static const std::map<std::string, std::size_t> templates = {
            {"vector", 24},     {"deque", 80},      {"string", 32},
            {"basic_string", 32}, {"function", 32}, {"unique_ptr", 8},
            {"shared_ptr", 16}, {"weak_ptr", 16},   {"string_view", 16},
            {"span", 16},       {"map", 48},        {"set", 48},
            {"unordered_map", 56}, {"unordered_set", 56}, {"list", 24},
        };
        auto t = templates.find(head);
        if (t != templates.end())
            return t->second;
        if (head == "pair" || head == "tuple") {
            std::size_t total = 0;
            for (const std::string &arg : splitTopLevel(args))
                total += align8(sizeOfType(arg, depth + 1));
            return total ? total : 8;
        }
        if (head == "optional")
            return align8(sizeOfType(args, depth + 1)) + 8;
        if (head == "array") {
            std::vector<std::string> parts = splitTopLevel(args);
            if (parts.size() == 2) {
                char *endp = nullptr;
                std::string n = trim(parts[1]);
                unsigned long count = std::strtoul(n.c_str(), &endp, 10);
                if (endp && *endp == '\0' && count > 0)
                    return count * sizeOfType(parts[0], depth + 1);
            }
            return 8;
        }

        // Project aliases, then project structs.
        std::string resolved = resolveAlias(bare);
        if (resolved != bare && resolved != type)
            return sizeOfType(resolved, depth + 1);
        std::size_t scope = bare.rfind("::");
        std::string leaf = scope == std::string::npos
                               ? bare
                               : bare.substr(scope + 2);
        for (const StructDef &def : structs) {
            if (def.name != leaf)
                continue;
            std::size_t total = 0;
            for (const Field &field : def.fields) {
                std::size_t one = sizeOfType(field.type, depth + 1);
                std::size_t al = std::min<std::size_t>(
                    8, one ? one : 1);
                total = (total + al - 1) / al * al;
                total += one * field.count;
            }
            return align8(total ? total : 1);
        }
        return 8; // unknown: assume pointer-ish
    }

    static std::size_t
    align8(std::size_t n)
    {
        return (n + 7) / 8 * 8;
    }

    /**
     * Looks up the declared type of @p name above @p beforePos in @p f.
     * Returns "" when no plausible declaration is found.
     */
    std::string
    findDeclType(const SourceFile &f, const std::string &name,
                 std::size_t beforePos) const
    {
        const std::string &code = f.code;
        std::size_t searchEnd = std::min(beforePos, code.size());
        std::size_t best = std::string::npos;
        std::size_t pos = 0;
        while ((pos = code.find(name, pos)) != std::string::npos &&
               pos < searchEnd) {
            if (wordAt(code, pos, name))
                best = pos;
            pos += name.size();
        }
        // Walk back from the *latest* plausible mention looking for a
        // declaration-shaped prefix "Type name" on the same statement.
        while (best != std::string::npos) {
            std::size_t typeEnd = best;
            while (typeEnd > 0 && std::isspace(static_cast<unsigned char>(
                                      code[typeEnd - 1])))
                --typeEnd;
            std::size_t typeStart = typeEnd;
            int angle = 0;
            while (typeStart > 0) {
                char c = code[typeStart - 1];
                if (c == '>')
                    ++angle;
                else if (c == '<')
                    --angle;
                else if (angle == 0 && !identChar(c) && c != ':' &&
                         c != '&' && c != '*' && c != ' ' && c != ',')
                    break;
                else if (angle == 0 && c == ',')
                    break;
                --typeStart;
            }
            std::string type =
                trim(code.substr(typeStart, typeEnd - typeStart));
            std::size_t after = skipSpaces(code, best + name.size());
            bool declShaped =
                !type.empty() && type != "auto" && type != "return" &&
                !std::isdigit(static_cast<unsigned char>(type[0])) &&
                after < code.size() &&
                (code[after] == '=' || code[after] == ';' ||
                 code[after] == ',' || code[after] == ')' ||
                 code[after] == '{' || code[after] == '[');
            if (declShaped)
                return type;
            // Try the previous mention.
            std::size_t prev = std::string::npos;
            pos = 0;
            while ((pos = code.find(name, pos)) != std::string::npos &&
                   pos < best) {
                if (wordAt(code, pos, name))
                    prev = pos;
                pos += name.size();
            }
            best = prev;
        }
        return "";
    }

    // ---- checks -----------------------------------------------------------

    bool
    underSrc(const SourceFile &f) const
    {
        return startsWith(f.effective, "src/") ||
               f.effective.find("/src/") != std::string::npos;
    }

    bool
    iterationAllowed(const SourceFile &f) const
    {
        for (const std::string &allow : opts.allowIteration)
            if (f.effective.find(allow) != std::string::npos)
                return true;
        for (const std::string &allow : f.allowIteration)
            if (f.effective.find(allow) != std::string::npos)
                return true;
        return false;
    }

    void
    checkNondeterministicIteration(const SourceFile &f)
    {
        if (!underSrc(f) || iterationAllowed(f))
            return;
        const std::string &code = f.code;
        std::size_t pos = 0;
        while ((pos = code.find("for", pos)) != std::string::npos) {
            std::size_t here = pos;
            pos += 3;
            if (!wordAt(code, here, "for"))
                continue;
            std::size_t open = skipSpaces(code, here + 3);
            if (open >= code.size() || code[open] != '(')
                continue;
            std::size_t close = matchGroup(code, open);
            if (close == std::string::npos)
                continue;
            std::string inner = code.substr(open + 1, close - open - 2);
            std::size_t colon = topLevelColon(inner);
            if (colon != std::string::npos) {
                std::string range = trim(inner.substr(colon + 1));
                std::string base = rangeBaseName(range);
                if (!base.empty() && unorderedVars.count(base)) {
                    report(f, open + 1 + colon, kNondeterministicIteration,
                           "range-for over unordered container '" + base +
                               "'; hash iteration order is nondeterministic "
                               "and breaks the field-identical fingerprint "
                               "contracts — iterate a sorted snapshot "
                               "(sw::sortedKeys) or switch containers");
                }
            } else {
                // Classic iterator loop: for (auto it = m.begin(); ...)
                for (const char *fn : {".begin", ".cbegin"}) {
                    std::size_t b = inner.find(fn);
                    if (b == std::string::npos)
                        continue;
                    std::size_t e = b;
                    while (e > 0 && identChar(inner[e - 1]))
                        --e;
                    std::string base = inner.substr(e, b - e);
                    if (!base.empty() && unorderedVars.count(base)) {
                        report(f, open + 1 + b, kNondeterministicIteration,
                               "iterator loop over unordered container '" +
                                   base +
                                   "'; hash iteration order is "
                                   "nondeterministic — iterate a sorted "
                                   "snapshot (sw::sortedKeys) or switch "
                                   "containers");
                    }
                }
            }
        }
    }

    static std::size_t
    topLevelColon(const std::string &s)
    {
        int round = 0, square = 0, curly = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            char c = s[i];
            if (c == '(') ++round;
            else if (c == ')') --round;
            else if (c == '[') ++square;
            else if (c == ']') --square;
            else if (c == '{') ++curly;
            else if (c == '}') --curly;
            else if (c == ':' && !round && !square && !curly) {
                if (i + 1 < s.size() && s[i + 1] == ':') { ++i; continue; }
                if (i > 0 && s[i - 1] == ':') continue;
                return i;
            }
        }
        return std::string::npos;
    }

    /** Final identifier of a `a.b->c`-shaped range expression, else "". */
    static std::string
    rangeBaseName(std::string range)
    {
        range = trim(range);
        while (!range.empty() &&
               (range.front() == '*' || range.front() == '&'))
            range = trim(range.substr(1));
        while (range.size() >= 2 && range.front() == '(' &&
               range.back() == ')' &&
               matchGroup(range, 0) == range.size())
            range = trim(range.substr(1, range.size() - 2));
        if (range.find('(') != std::string::npos)
            return ""; // call expression; cannot resolve lexically
        std::size_t cut = range.find_last_of(".>");
        std::string last =
            cut == std::string::npos ? range : range.substr(cut + 1);
        last = trim(last);
        for (char c : last)
            if (!identChar(c))
                return "";
        return last;
    }

    static bool
    underAnyDir(const std::string &effective,
                const std::vector<std::string> &dirs)
    {
        for (const std::string &dir : dirs) {
            if (startsWith(effective, dir + "/") ||
                effective.find("/" + dir + "/") != std::string::npos) {
                return true;
            }
        }
        return false;
    }

    void
    checkWallclock(const SourceFile &f)
    {
        if (!underAnyDir(f.effective, opts.simDirs))
            return;
        // The clock half of the check is waived in sanctioned homes
        // (src/prof); the entropy half below never is.
        bool clockAllowed = underAnyDir(f.effective, opts.wallclockAllow);

        auto scan = [&](const std::string &code) {
            // *_clock::now()
            std::size_t pos = 0;
            while (!clockAllowed &&
                   (pos = code.find("_clock", pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += 6;
                std::size_t end = here + 6;
                if (end < code.size() && identChar(code[end]))
                    continue; // part of a longer identifier
                std::size_t p = skipSpaces(code, end);
                if (p + 1 < code.size() && code[p] == ':' &&
                    code[p + 1] == ':') {
                    p = skipSpaces(code, p + 2);
                    if (wordAt(code, p, "now")) {
                        report(f, here, kWallclockInSim,
                               "wall-clock time in simulation code; simulated "
                               "time comes from EventQueue::now() and harness "
                               "timing belongs in src/harness or bench/ (the "
                               "host profiler in src/prof is the sanctioned "
                               "exception)");
                    }
                }
            }
            for (const char *fn : {"rand", "srand"}) {
                pos = 0;
                while ((pos = code.find(fn, pos)) != std::string::npos) {
                    std::size_t here = pos;
                    pos += strlenConst(fn);
                    if (!wordAt(code, here, fn))
                        continue;
                    std::size_t p = skipSpaces(code, here + strlenConst(fn));
                    if (p < code.size() && code[p] == '(') {
                        report(f, here, kWallclockInSim,
                               std::string(fn) +
                                   "() in simulation code; draw from the "
                                   "run's seeded sw::Rng so results are "
                                   "reproducible");
                    }
                }
            }
            pos = 0;
            while ((pos = code.find("random_device", pos)) !=
                   std::string::npos) {
                std::size_t here = pos;
                pos += strlenConst("random_device");
                if (!wordAt(code, here, "random_device"))
                    continue;
                report(f, here, kWallclockInSim,
                       "std::random_device in simulation code; entropy "
                       "breaks record/replay — seed a sw::Rng from the "
                       "config instead");
            }
        };
        // Both the regular code and macro bodies: a #define spelled in a
        // sim file expands wherever it is used, so its clock reads count
        // here (the clang plugin reaches the same verdict via spelling
        // locations).
        scan(f.code);
        scan(f.ppText);
    }

    void
    checkInlineCaptureSpill(const SourceFile &f)
    {
        const std::string &code = f.code;
        for (const char *method : {"schedule", "scheduleIn"}) {
            std::size_t pos = 0;
            while ((pos = code.find(method, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += strlenConst(method);
                if (!wordAt(code, here, method))
                    continue;
                // Member access only: x.schedule( / x->schedule(
                std::size_t before = here;
                while (before > 0 && std::isspace(static_cast<unsigned char>(
                                         code[before - 1])))
                    --before;
                bool member =
                    (before > 0 && code[before - 1] == '.') ||
                    (before > 1 && code[before - 2] == '-' &&
                     code[before - 1] == '>');
                if (!member)
                    continue;
                std::size_t open = skipSpaces(code,
                                              here + strlenConst(method));
                if (open >= code.size() || code[open] != '(')
                    continue;
                std::size_t close = matchGroup(code, open);
                if (close == std::string::npos)
                    continue;
                std::string args =
                    code.substr(open + 1, close - open - 2);
                for (const std::string &rawArg : splitTopLevel(args)) {
                    std::string arg = trim(rawArg);
                    if (arg.empty())
                        continue;
                    if (arg[0] == '[') {
                        analyzeLambda(f, arg, open + 1);
                        continue;
                    }
                    std::string name = arg;
                    if (startsWith(name, "std::move(") &&
                        name.back() == ')')
                        name = trim(name.substr(10, name.size() - 11));
                    bool ident = !name.empty();
                    for (char c : name)
                        if (!identChar(c))
                            ident = false;
                    if (!ident)
                        continue;
                    findAndAnalyzeNamedLambda(f, name, here);
                }
            }
        }
    }

    /** Locates `auto <name> = [captures]...` above @p beforePos. */
    void
    findAndAnalyzeNamedLambda(const SourceFile &f, const std::string &name,
                              std::size_t beforePos)
    {
        const std::string &code = f.code;
        std::size_t best = std::string::npos;
        std::size_t pos = 0;
        while ((pos = code.find(name, pos)) != std::string::npos &&
               pos < beforePos) {
            std::size_t here = pos;
            pos += name.size();
            if (!wordAt(code, here, name))
                continue;
            // require "auto" before
            std::size_t t = here;
            while (t > 0 &&
                   std::isspace(static_cast<unsigned char>(code[t - 1])))
                --t;
            if (t < 4 || code.compare(t - 4, 4, "auto") != 0)
                continue;
            std::size_t eq = skipSpaces(code, here + name.size());
            if (eq >= code.size() || code[eq] != '=')
                continue;
            std::size_t lam = skipSpaces(code, eq + 1);
            if (lam < code.size() && code[lam] == '[')
                best = lam;
        }
        if (best == std::string::npos)
            return;
        std::size_t capEnd = matchGroup(code, best);
        if (capEnd == std::string::npos)
            return;
        analyzeCaptures(f, code.substr(best + 1, capEnd - best - 2), best);
    }

    /** @p lambda starts with '['; analyze its capture list. */
    void
    analyzeLambda(const SourceFile &f, const std::string &lambda,
                  std::size_t atPos)
    {
        std::size_t capEnd = matchGroup(lambda, 0);
        if (capEnd == std::string::npos)
            return;
        analyzeCaptures(f, lambda.substr(1, capEnd - 2), atPos);
    }

    void
    analyzeCaptures(const SourceFile &f, const std::string &captures,
                    std::size_t atPos)
    {
        std::size_t total = 0;
        std::vector<std::string> breakdown;
        for (const std::string &rawCap : splitTopLevel(captures)) {
            std::string cap = trim(rawCap);
            if (cap.empty())
                continue;
            if (cap == "&" || cap == "=" || cap == "*this")
                return; // default / whole-object capture: cannot estimate
            std::size_t sz;
            if (cap == "this" || cap[0] == '&') {
                sz = 8;
            } else {
                std::string name = cap;
                std::size_t eq = cap.find('=');
                if (eq != std::string::npos) {
                    std::string rhs = trim(cap.substr(eq + 1));
                    if (startsWith(rhs, "std::move(") && rhs.back() == ')')
                        rhs = trim(rhs.substr(10, rhs.size() - 11));
                    name = rhs;
                    bool ident = !name.empty();
                    for (char c : name)
                        if (!identChar(c))
                            ident = false;
                    if (!ident) {
                        total += 8; // opaque init-capture: pointer-ish
                        continue;
                    }
                }
                std::string type = findDeclType(f, name, atPos);
                sz = type.empty() ? 8 : sizeOfType(type);
            }
            total += sz;
            breakdown.push_back(cap + "≈" + std::to_string(sz));
        }
        if (total > opts.inlineBytes) {
            std::string detail;
            for (std::size_t i = 0; i < breakdown.size(); ++i)
                detail += (i ? ", " : "") + breakdown[i];
            report(f, atPos, kInlineCaptureSpill,
                   "lambda scheduled on the EventQueue captures an estimated " +
                       std::to_string(total) + " bytes (" + detail +
                       "), over the " + std::to_string(opts.inlineBytes) +
                       "-byte InlineFunction inline buffer; the closure "
                       "spills to the slab pool on every schedule — shrink "
                       "the capture (indices instead of objects)");
        }
    }

    void
    checkStatRegistration(const SourceFile &f)
    {
        for (const StructDef &def : structs) {
            if (def.file != f.path)
                continue;
            if (def.name.size() < 5 ||
                def.name.compare(def.name.size() - 5, 5, "Stats") != 0)
                continue;
            auto bodies = registerBodies.find(def.stem);
            if (bodies == registerBodies.end())
                continue; // no registerStats/registerGauges visible: skip
            const std::string &corpus = bodies->second;
            for (const Field &field : def.fields) {
                if (!isCounterType(field.type))
                    continue;
                bool referenced = false;
                std::size_t pos = 0;
                while ((pos = corpus.find(field.name, pos)) !=
                       std::string::npos) {
                    if (wordAt(corpus, pos, field.name)) {
                        referenced = true;
                        break;
                    }
                    pos += field.name.size();
                }
                if (!referenced && field.line >= 1 &&
                    field.line <= static_cast<int>(f.lineStarts.size())) {
                    report(f,
                           f.lineStarts[static_cast<std::size_t>(
                               field.line - 1)],
                           kStatRegistration,
                           "counter '" + field.name + "' of " + def.name +
                               " is never registered in registerStats()/"
                               "registerGauges(); it will be invisible to "
                               "the StatRegistry and every metrics dump");
                }
            }
        }
    }

    bool
    isCounterType(const std::string &type) const
    {
        static const std::set<std::string> counters = {
            "std::uint64_t", "uint64_t", "std::uint32_t", "uint32_t",
            "std::int64_t",  "int64_t",  "std::int32_t",  "int32_t",
            "std::size_t",   "size_t",   "unsigned",      "int",
            "double",        "float",    "Cycle",         "Histogram",
            "sw::Histogram"};
        if (counters.count(type))
            return true;
        auto it = aliases.find(type);
        return it != aliases.end() && counters.count(trim(it->second));
    }

    void
    checkAuditSideEffect(const SourceFile &f)
    {
        const std::string &code = f.code;
        for (const char *macro : {"SW_AUDIT", "SW_TRACE"}) {
            std::size_t pos = 0;
            while ((pos = code.find(macro, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += strlenConst(macro);
                if (!wordAt(code, here, macro))
                    continue;
                std::size_t open = skipSpaces(code,
                                              here + strlenConst(macro));
                if (open >= code.size() || code[open] != '(')
                    continue;
                std::size_t close = matchGroup(code, open);
                if (close == std::string::npos)
                    continue;
                scanSideEffects(f, macro,
                                code.substr(open + 1, close - open - 2),
                                open + 1);
            }
        }
    }

    void
    scanSideEffects(const SourceFile &f, const char *macro,
                    const std::string &args, std::size_t base)
    {
        auto flag = [&](std::size_t off, const std::string &what) {
            report(f, base + off, kAuditSideEffect,
                   what + " inside " + macro +
                       "(...) — the argument is not evaluated in builds "
                       "that compile the macro out, so audit/tracing and "
                       "release runs would diverge");
        };
        for (std::size_t i = 0; i + 1 < args.size(); ++i) {
            if ((args[i] == '+' && args[i + 1] == '+') ||
                (args[i] == '-' && args[i + 1] == '-')) {
                flag(i, std::string("operator '") + args[i] + args[i] + "'");
                ++i;
            }
        }
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i] != '=')
                continue;
            char prev = i > 0 ? args[i - 1] : '\0';
            char next = i + 1 < args.size() ? args[i + 1] : '\0';
            if (next == '=') {
                ++i;
                continue; // ==
            }
            if (prev == '=' || prev == '!')
                continue;
            if (prev == '<' || prev == '>') {
                // <= / >= comparisons vs. <<= / >>= compound assignment.
                if (i >= 2 && args[i - 2] == prev)
                    flag(i, "compound assignment");
                continue;
            }
            if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
                prev == '%' || prev == '&' || prev == '|' || prev == '^') {
                flag(i, "compound assignment");
                continue;
            }
            flag(i, "assignment");
        }
        for (const char *fn : kMutatorNames) {
            std::size_t pos = 0;
            std::string pat = fn;
            while ((pos = args.find(pat, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += pat.size();
                if (!wordAt(args, here, pat))
                    continue;
                bool member =
                    (here > 0 && args[here - 1] == '.') ||
                    (here > 1 && args[here - 2] == '-' &&
                     args[here - 1] == '>');
                std::size_t p = skipSpaces(args, here + pat.size());
                if (member && p < args.size() && args[p] == '(')
                    flag(here,
                         "call to mutating member '" + pat + "()'");
            }
        }
    }

    void
    checkRawVpnKey(const SourceFile &f)
    {
        // src/vm is the Vpn-level machinery's home: page tables and the
        // address decomposition legitimately traffic in raw VPNs there.
        if (!underSrc(f) ||
            underAnyDir(f.effective, {"src/vm"}))
            return;
        // Member calls whose first argument is the translation key since
        // the TranslationKey migration.
        static const char *const keyApis[] = {
            "lookup",     "probe",        "fill",       "allocPending",
            "hasPending", "clearPending", "invalidate", "translate"};
        const std::string &code = f.code;
        for (const char *fn : keyApis) {
            std::size_t pos = 0;
            while ((pos = code.find(fn, pos)) != std::string::npos) {
                std::size_t here = pos;
                pos += strlenConst(fn);
                if (!wordAt(code, here, fn))
                    continue;
                // Member access only: x.fn( / x->fn(
                bool member =
                    (here > 0 && code[here - 1] == '.') ||
                    (here > 1 && code[here - 2] == '-' &&
                     code[here - 1] == '>');
                if (!member)
                    continue;
                std::size_t open = skipSpaces(code, here + strlenConst(fn));
                if (open >= code.size() || code[open] != '(')
                    continue;
                std::size_t close = matchGroup(code, open);
                if (close == std::string::npos)
                    continue;
                std::vector<std::string> args = splitTopLevel(
                    code.substr(open + 1, close - open - 2));
                if (args.empty())
                    continue;
                std::string first = trim(args[0]);
                // {asid, vpn} braced keys and anything not a plain
                // identifier stay silent: the engine flags only what it
                // can prove is a bare Vpn-typed variable.
                bool ident = !first.empty();
                for (char c : first)
                    if (!identChar(c))
                        ident = false;
                if (!ident)
                    continue;
                std::string type = findDeclType(f, first, here);
                if (type == "Vpn" || type == "sw::Vpn") {
                    report(f, here, kRawVpnKey,
                           "raw Vpn '" + first + "' passed as the key of " +
                               std::string(fn) +
                               "(); translation structures are keyed by "
                               "TranslationKey {asid, vpn} — a bare VPN "
                               "silently means ASID 0 and breaks "
                               "multi-tenant containment (spell the key as "
                               "{asid, " + first + "})");
                }
            }
        }
    }

    // ---- driver -----------------------------------------------------------

    std::vector<Diagnostic>
    run()
    {
        diags.clear();
        unorderedVars.clear();
        aliases.clear();
        structs.clear();
        registerBodies.clear();
        collect();
        for (const SourceFile &f : files) {
            if (checkEnabled(kNondeterministicIteration))
                checkNondeterministicIteration(f);
            if (checkEnabled(kWallclockInSim))
                checkWallclock(f);
            if (checkEnabled(kInlineCaptureSpill))
                checkInlineCaptureSpill(f);
            if (checkEnabled(kStatRegistration))
                checkStatRegistration(f);
            if (checkEnabled(kAuditSideEffect))
                checkAuditSideEffect(f);
            if (checkEnabled(kRawVpnKey))
                checkRawVpnKey(f);
        }
        std::sort(diags.begin(), diags.end());
        diags.erase(std::unique(diags.begin(), diags.end(),
                                [](const Diagnostic &a, const Diagnostic &b) {
                                    return a.file == b.file &&
                                           a.line == b.line &&
                                           a.check == b.check &&
                                           a.message == b.message;
                                }),
                    diags.end());
        return diags;
    }
};

Analyzer::Analyzer(Options opts) : impl(new Impl(std::move(opts))) {}

Analyzer::~Analyzer()
{
    delete impl;
}

bool
Analyzer::addFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    impl->addSource(path, buf.str());
    return true;
}

void
Analyzer::addSource(const std::string &path, std::string text)
{
    impl->addSource(path, std::move(text));
}

std::vector<Diagnostic>
Analyzer::run()
{
    return impl->run();
}

} // namespace swtidy
