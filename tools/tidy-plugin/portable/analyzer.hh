/**
 * @file
 * Portable implementation of the `softwalker-` static-analysis checks
 * (see docs/STATIC_ANALYSIS.md for the catalog and rationale).
 *
 * The authoritative implementation is the out-of-tree clang-tidy plugin
 * in tools/tidy-plugin/ — it sees the real AST and computes exact closure
 * sizes.  This engine is the *portable* twin: a lexer-level analyzer with
 * no LLVM dependency, so the fixture suite and the src/-tree cleanliness
 * gate run under plain ctest on any toolchain.  Both implementations
 * enforce the same contracts with the same check names and the same
 * `// NOLINT(softwalker-...)` suppression mechanism; where the lexical
 * engine cannot prove a property (default captures, macro-generated
 * code) it stays silent rather than guessing, so it under-approximates
 * the plugin and never blocks the build on a false positive.
 *
 * Checks:
 *  - softwalker-nondeterministic-iteration: range-for / .begin() loops
 *    over std::unordered_{map,set,multimap,multiset} in src/ (hash order
 *    breaks the jobs=1-vs-8 and record/replay fingerprint contracts).
 *  - softwalker-wallclock-in-sim: *_clock::now(), rand(), srand(),
 *    std::random_device inside src/{sim,gpu,vm,mem,core,check}.
 *  - softwalker-inline-capture-spill: lambdas handed to EventQueue
 *    schedule()/scheduleIn() whose estimated capture size exceeds the
 *    InlineFunction inline buffer (kEventInlineBytes).
 *  - softwalker-stat-registration: counter fields of *Stats structs never
 *    referenced by the component's registerStats()/registerGauges().
 *  - softwalker-audit-side-effect: SW_AUDIT/SW_TRACE arguments with side
 *    effects (assignment, ++/--, mutating member calls) — they vanish in
 *    builds that compile the macro out.
 *  - softwalker-raw-vpn-key: a bare Vpn-typed variable passed as the key
 *    of a translation-structure call (lookup/probe/fill/...) outside
 *    src/vm; since the TranslationKey migration the key is {asid, vpn},
 *    and a raw VPN silently means "ASID 0" — a containment hazard in
 *    multi-tenant code.  (Portable engine only; the clang plugin's type
 *    system makes the mistake a compile error in-tree, so its twin is a
 *    guard for test/fixture code and future overloads.)
 *
 * Fixture files may carry directives (anywhere in a comment):
 *  - `SWTIDY-AS: <path>`   classify the file as if it lived at <path>
 *  - `SWTIDY-OPTION: allow-iteration=<substr>`   extend the iteration
 *    allowlist for this run
 */

#ifndef SW_TOOLS_TIDY_PORTABLE_ANALYZER_HH
#define SW_TOOLS_TIDY_PORTABLE_ANALYZER_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace swtidy {

/** Check name constants (shared with the clang-tidy plugin). */
inline constexpr const char *kNondeterministicIteration =
    "softwalker-nondeterministic-iteration";
inline constexpr const char *kWallclockInSim = "softwalker-wallclock-in-sim";
inline constexpr const char *kInlineCaptureSpill =
    "softwalker-inline-capture-spill";
inline constexpr const char *kStatRegistration =
    "softwalker-stat-registration";
inline constexpr const char *kAuditSideEffect =
    "softwalker-audit-side-effect";
inline constexpr const char *kRawVpnKey = "softwalker-raw-vpn-key";

/** All check names, in catalog order. */
const std::vector<std::string> &allChecks();

/** One finding. */
struct Diagnostic
{
    std::string file;     ///< path as handed to the analyzer
    int line = 0;         ///< 1-based
    std::string check;    ///< softwalker-... name
    std::string message;

    bool
    operator<(const Diagnostic &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return check < o.check;
    }
};

/** `file:line: warning: message [check]` */
std::string renderDiagnostic(const Diagnostic &diag);

struct Options
{
    /** Enabled check names; empty means all five. */
    std::set<std::string> enabled;

    /**
     * Path substrings exempt from the nondeterministic-iteration check
     * (pure-reporting code where hash order cannot reach simulated
     * state or any fingerprinted output).
     */
    std::vector<std::string> allowIteration;

    /** Directories the wallclock ban applies to. */
    std::vector<std::string> simDirs = {"src/sim", "src/gpu",  "src/vm",
                                        "src/mem", "src/core", "src/check",
                                        "src/prof"};

    /**
     * Directories where *_clock::now() is sanctioned: src/prof is the
     * host self-profiler's home and exists precisely to read the steady
     * clock.  Only the clock half of the wallclock check is waived —
     * rand()/srand()/random_device stay banned there (the profiler must
     * never add entropy), which is why src/prof sits in simDirs too.
     */
    std::vector<std::string> wallclockAllow = {"src/prof"};

    /** InlineFunction inline capture budget (kEventInlineBytes). */
    std::size_t inlineBytes = 80;

    /** Extra `type name -> size in bytes` entries for capture estimation. */
    std::map<std::string, std::size_t> typeSizes;
};

/**
 * Analyzes a set of source files as one unit: declarations collected from
 * every file (container members in headers, registerStats bodies in
 * sibling .cc files) inform checks in every other file.
 */
class Analyzer
{
  public:
    explicit Analyzer(Options opts = {});
    ~Analyzer();

    Analyzer(const Analyzer &) = delete;
    Analyzer &operator=(const Analyzer &) = delete;

    /** Load @p path from disk. @return false (with a note) if unreadable. */
    bool addFile(const std::string &path);

    /** Add in-memory source, e.g. from a test. */
    void addSource(const std::string &path, std::string text);

    /** Run every enabled check over every added file. Sorted output. */
    std::vector<Diagnostic> run();

  private:
    struct Impl;
    Impl *impl;
};

} // namespace swtidy

#endif // SW_TOOLS_TIDY_PORTABLE_ANALYZER_HH
