//===--- SoftWalkerTidyModule.cpp - softwalker- checks --------------------===//
//
// Registers the softwalker- check group as an out-of-tree clang-tidy
// module, loaded with `clang-tidy -load libSoftWalkerTidy.so`.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AuditSideEffectCheck.h"
#include "InlineCaptureSpillCheck.h"
#include "NondeterministicIterationCheck.h"
#include "StatRegistrationCheck.h"
#include "WallclockInSimCheck.h"

namespace clang {
namespace tidy {
namespace softwalker {

class SoftWalkerTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NondeterministicIterationCheck>(
        "softwalker-nondeterministic-iteration");
    Factories.registerCheck<WallclockInSimCheck>("softwalker-wallclock-in-sim");
    Factories.registerCheck<InlineCaptureSpillCheck>(
        "softwalker-inline-capture-spill");
    Factories.registerCheck<StatRegistrationCheck>(
        "softwalker-stat-registration");
    Factories.registerCheck<AuditSideEffectCheck>(
        "softwalker-audit-side-effect");
  }
};

static ClangTidyModuleRegistry::Add<SoftWalkerTidyModule>
    X("softwalker-module", "SoftWalker simulator contract checks.");

} // namespace softwalker

// Anchor the registry entry so the shared object keeps the registration.
volatile int SoftWalkerTidyModuleAnchorSource = 0;

} // namespace tidy
} // namespace clang
