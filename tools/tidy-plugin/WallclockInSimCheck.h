//===--- WallclockInSimCheck.h - softwalker- checks --------------*- C++ -*-===//
//
// softwalker-wallclock-in-sim
//
// Bans wall-clock and ambient-entropy sources — std::chrono::*_clock::now(),
// rand()/srand(), std::random_device — inside the simulation core
// (src/sim, src/gpu, src/vm, src/mem, src/core, src/check, src/prof by
// default).  Simulated time comes from EventQueue::now() and randomness
// from the run's seeded sw::Rng; anything else makes two runs of the same
// RunSpec diverge, which the record/replay and sweep determinism suites
// treat as corruption.  Harness and bench code (outside the listed
// directories) may measure wall-clock time freely.
//
// AllowClockDirs (default src/prof) waives only the clock half: the host
// self-profiler exists to read steady_clock, but entropy stays banned
// there too.  SW_PROF macro expansions in sim files are immune by
// construction — diagnostics anchor on the *spelling* location, which for
// a macro body is src/prof/hostprof.hh.
//
//===----------------------------------------------------------------------===//

#ifndef SOFTWALKER_TIDY_WALLCLOCK_IN_SIM_CHECK_H
#define SOFTWALKER_TIDY_WALLCLOCK_IN_SIM_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace clang {
namespace tidy {
namespace softwalker {

class WallclockInSimCheck : public ClangTidyCheck {
public:
  WallclockInSimCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool inSimDir(SourceLocation Loc, const SourceManager &SM) const;
  bool inAllowClockDir(SourceLocation Loc, const SourceManager &SM) const;

  /// Semicolon-separated path substrings the ban applies to.
  /// (std::string, not StringRef: Options.get returns a temporary.)
  const std::string SimDirs;
  /// Semicolon-separated path substrings where clock reads (only) are
  /// sanctioned; rand()/random_device remain banned there.
  const std::string AllowClockDirs;
};

} // namespace softwalker
} // namespace tidy
} // namespace clang

#endif // SOFTWALKER_TIDY_WALLCLOCK_IN_SIM_CHECK_H
