file(REMOVE_RECURSE
  "CMakeFiles/fig03_access_patterns.dir/fig03_access_patterns.cc.o"
  "CMakeFiles/fig03_access_patterns.dir/fig03_access_patterns.cc.o.d"
  "fig03_access_patterns"
  "fig03_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
