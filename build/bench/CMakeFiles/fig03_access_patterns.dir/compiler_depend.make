# Empty compiler generated dependencies file for fig03_access_patterns.
# This may be replaced when dependencies are built.
