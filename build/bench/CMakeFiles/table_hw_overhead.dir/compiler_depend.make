# Empty compiler generated dependencies file for table_hw_overhead.
# This may be replaced when dependencies are built.
