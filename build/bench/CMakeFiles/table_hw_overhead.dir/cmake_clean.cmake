file(REMOVE_RECURSE
  "CMakeFiles/table_hw_overhead.dir/table_hw_overhead.cc.o"
  "CMakeFiles/table_hw_overhead.dir/table_hw_overhead.cc.o.d"
  "table_hw_overhead"
  "table_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
