file(REMOVE_RECURSE
  "CMakeFiles/fig04_concurrency_latency.dir/fig04_concurrency_latency.cc.o"
  "CMakeFiles/fig04_concurrency_latency.dir/fig04_concurrency_latency.cc.o.d"
  "fig04_concurrency_latency"
  "fig04_concurrency_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_concurrency_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
