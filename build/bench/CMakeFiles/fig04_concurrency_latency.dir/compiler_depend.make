# Empty compiler generated dependencies file for fig04_concurrency_latency.
# This may be replaced when dependencies are built.
