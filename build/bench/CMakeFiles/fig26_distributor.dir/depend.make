# Empty dependencies file for fig26_distributor.
# This may be replaced when dependencies are built.
