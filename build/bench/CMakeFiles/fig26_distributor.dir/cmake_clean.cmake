file(REMOVE_RECURSE
  "CMakeFiles/fig26_distributor.dir/fig26_distributor.cc.o"
  "CMakeFiles/fig26_distributor.dir/fig26_distributor.cc.o.d"
  "fig26_distributor"
  "fig26_distributor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_distributor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
