# Empty dependencies file for fig05_ptw_scaling.
# This may be replaced when dependencies are built.
