file(REMOVE_RECURSE
  "CMakeFiles/fig05_ptw_scaling.dir/fig05_ptw_scaling.cc.o"
  "CMakeFiles/fig05_ptw_scaling.dir/fig05_ptw_scaling.cc.o.d"
  "fig05_ptw_scaling"
  "fig05_ptw_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ptw_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
