file(REMOVE_RECURSE
  "CMakeFiles/fig21_iso_area.dir/fig21_iso_area.cc.o"
  "CMakeFiles/fig21_iso_area.dir/fig21_iso_area.cc.o.d"
  "fig21_iso_area"
  "fig21_iso_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_iso_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
