# Empty dependencies file for fig21_iso_area.
# This may be replaced when dependencies are built.
