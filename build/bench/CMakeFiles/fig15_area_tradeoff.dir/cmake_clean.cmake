file(REMOVE_RECURSE
  "CMakeFiles/fig15_area_tradeoff.dir/fig15_area_tradeoff.cc.o"
  "CMakeFiles/fig15_area_tradeoff.dir/fig15_area_tradeoff.cc.o.d"
  "fig15_area_tradeoff"
  "fig15_area_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_area_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
