# Empty dependencies file for fig15_area_tradeoff.
# This may be replaced when dependencies are built.
