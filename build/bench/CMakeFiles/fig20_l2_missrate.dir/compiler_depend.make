# Empty compiler generated dependencies file for fig20_l2_missrate.
# This may be replaced when dependencies are built.
