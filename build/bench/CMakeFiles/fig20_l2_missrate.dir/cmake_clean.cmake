file(REMOVE_RECURSE
  "CMakeFiles/fig20_l2_missrate.dir/fig20_l2_missrate.cc.o"
  "CMakeFiles/fig20_l2_missrate.dir/fig20_l2_missrate.cc.o.d"
  "fig20_l2_missrate"
  "fig20_l2_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_l2_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
