# Empty dependencies file for fig08_scheduler_breakdown.
# This may be replaced when dependencies are built.
