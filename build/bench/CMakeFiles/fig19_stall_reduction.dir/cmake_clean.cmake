file(REMOVE_RECURSE
  "CMakeFiles/fig19_stall_reduction.dir/fig19_stall_reduction.cc.o"
  "CMakeFiles/fig19_stall_reduction.dir/fig19_stall_reduction.cc.o.d"
  "fig19_stall_reduction"
  "fig19_stall_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_stall_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
