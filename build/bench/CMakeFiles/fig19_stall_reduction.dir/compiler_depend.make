# Empty compiler generated dependencies file for fig19_stall_reduction.
# This may be replaced when dependencies are built.
