file(REMOVE_RECURSE
  "CMakeFiles/fig25_large_pages.dir/fig25_large_pages.cc.o"
  "CMakeFiles/fig25_large_pages.dir/fig25_large_pages.cc.o.d"
  "fig25_large_pages"
  "fig25_large_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_large_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
