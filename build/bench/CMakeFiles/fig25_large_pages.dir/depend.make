# Empty dependencies file for fig25_large_pages.
# This may be replaced when dependencies are built.
