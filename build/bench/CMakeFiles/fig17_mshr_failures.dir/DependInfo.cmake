
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_mshr_failures.cc" "bench/CMakeFiles/fig17_mshr_failures.dir/fig17_mshr_failures.cc.o" "gcc" "bench/CMakeFiles/fig17_mshr_failures.dir/fig17_mshr_failures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sw_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/sw_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/sw_area.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
