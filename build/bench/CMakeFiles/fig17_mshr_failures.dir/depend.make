# Empty dependencies file for fig17_mshr_failures.
# This may be replaced when dependencies are built.
