file(REMOVE_RECURSE
  "CMakeFiles/fig17_mshr_failures.dir/fig17_mshr_failures.cc.o"
  "CMakeFiles/fig17_mshr_failures.dir/fig17_mshr_failures.cc.o.d"
  "fig17_mshr_failures"
  "fig17_mshr_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_mshr_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
