file(REMOVE_RECURSE
  "CMakeFiles/fig24_intlb_capacity.dir/fig24_intlb_capacity.cc.o"
  "CMakeFiles/fig24_intlb_capacity.dir/fig24_intlb_capacity.cc.o.d"
  "fig24_intlb_capacity"
  "fig24_intlb_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_intlb_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
