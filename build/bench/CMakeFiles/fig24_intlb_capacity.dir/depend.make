# Empty dependencies file for fig24_intlb_capacity.
# This may be replaced when dependencies are built.
