# Empty compiler generated dependencies file for fig23_pt_latency.
# This may be replaced when dependencies are built.
