file(REMOVE_RECURSE
  "CMakeFiles/fig23_pt_latency.dir/fig23_pt_latency.cc.o"
  "CMakeFiles/fig23_pt_latency.dir/fig23_pt_latency.cc.o.d"
  "fig23_pt_latency"
  "fig23_pt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_pt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
