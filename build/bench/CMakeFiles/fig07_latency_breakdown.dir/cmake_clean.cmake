file(REMOVE_RECURSE
  "CMakeFiles/fig07_latency_breakdown.dir/fig07_latency_breakdown.cc.o"
  "CMakeFiles/fig07_latency_breakdown.dir/fig07_latency_breakdown.cc.o.d"
  "fig07_latency_breakdown"
  "fig07_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
