# Empty compiler generated dependencies file for fig18_walk_latency.
# This may be replaced when dependencies are built.
