file(REMOVE_RECURSE
  "CMakeFiles/fig18_walk_latency.dir/fig18_walk_latency.cc.o"
  "CMakeFiles/fig18_walk_latency.dir/fig18_walk_latency.cc.o.d"
  "fig18_walk_latency"
  "fig18_walk_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_walk_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
