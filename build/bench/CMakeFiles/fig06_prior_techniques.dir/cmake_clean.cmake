file(REMOVE_RECURSE
  "CMakeFiles/fig06_prior_techniques.dir/fig06_prior_techniques.cc.o"
  "CMakeFiles/fig06_prior_techniques.dir/fig06_prior_techniques.cc.o.d"
  "fig06_prior_techniques"
  "fig06_prior_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prior_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
