# Empty dependencies file for fig06_prior_techniques.
# This may be replaced when dependencies are built.
