file(REMOVE_RECURSE
  "CMakeFiles/fig12_ptw_mshr_scaling.dir/fig12_ptw_mshr_scaling.cc.o"
  "CMakeFiles/fig12_ptw_mshr_scaling.dir/fig12_ptw_mshr_scaling.cc.o.d"
  "fig12_ptw_mshr_scaling"
  "fig12_ptw_mshr_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ptw_mshr_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
