file(REMOVE_RECURSE
  "CMakeFiles/ablation_pw_warp.dir/ablation_pw_warp.cc.o"
  "CMakeFiles/ablation_pw_warp.dir/ablation_pw_warp.cc.o.d"
  "ablation_pw_warp"
  "ablation_pw_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pw_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
