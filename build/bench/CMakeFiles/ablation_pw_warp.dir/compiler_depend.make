# Empty compiler generated dependencies file for ablation_pw_warp.
# This may be replaced when dependencies are built.
