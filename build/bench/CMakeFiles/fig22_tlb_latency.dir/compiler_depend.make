# Empty compiler generated dependencies file for fig22_tlb_latency.
# This may be replaced when dependencies are built.
