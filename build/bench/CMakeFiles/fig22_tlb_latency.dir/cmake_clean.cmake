file(REMOVE_RECURSE
  "CMakeFiles/fig22_tlb_latency.dir/fig22_tlb_latency.cc.o"
  "CMakeFiles/fig22_tlb_latency.dir/fig22_tlb_latency.cc.o.d"
  "fig22_tlb_latency"
  "fig22_tlb_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_tlb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
