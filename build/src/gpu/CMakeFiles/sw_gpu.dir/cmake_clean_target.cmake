file(REMOVE_RECURSE
  "libsw_gpu.a"
)
