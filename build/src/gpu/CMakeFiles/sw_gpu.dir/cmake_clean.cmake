file(REMOVE_RECURSE
  "CMakeFiles/sw_gpu.dir/gpu.cc.o"
  "CMakeFiles/sw_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/sw_gpu.dir/sm.cc.o"
  "CMakeFiles/sw_gpu.dir/sm.cc.o.d"
  "libsw_gpu.a"
  "libsw_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
