# Empty compiler generated dependencies file for sw_gpu.
# This may be replaced when dependencies are built.
