# Empty compiler generated dependencies file for sw_vm.
# This may be replaced when dependencies are built.
