
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/hashed_page_table.cc" "src/vm/CMakeFiles/sw_vm.dir/hashed_page_table.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/hashed_page_table.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/vm/CMakeFiles/sw_vm.dir/page_table.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/page_table.cc.o.d"
  "/root/repo/src/vm/page_walk_cache.cc" "src/vm/CMakeFiles/sw_vm.dir/page_walk_cache.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/page_walk_cache.cc.o.d"
  "/root/repo/src/vm/ptw.cc" "src/vm/CMakeFiles/sw_vm.dir/ptw.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/ptw.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/vm/CMakeFiles/sw_vm.dir/tlb.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/tlb.cc.o.d"
  "/root/repo/src/vm/translation.cc" "src/vm/CMakeFiles/sw_vm.dir/translation.cc.o" "gcc" "src/vm/CMakeFiles/sw_vm.dir/translation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
