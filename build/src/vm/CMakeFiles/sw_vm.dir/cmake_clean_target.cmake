file(REMOVE_RECURSE
  "libsw_vm.a"
)
