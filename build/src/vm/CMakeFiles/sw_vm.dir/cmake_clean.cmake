file(REMOVE_RECURSE
  "CMakeFiles/sw_vm.dir/hashed_page_table.cc.o"
  "CMakeFiles/sw_vm.dir/hashed_page_table.cc.o.d"
  "CMakeFiles/sw_vm.dir/page_table.cc.o"
  "CMakeFiles/sw_vm.dir/page_table.cc.o.d"
  "CMakeFiles/sw_vm.dir/page_walk_cache.cc.o"
  "CMakeFiles/sw_vm.dir/page_walk_cache.cc.o.d"
  "CMakeFiles/sw_vm.dir/ptw.cc.o"
  "CMakeFiles/sw_vm.dir/ptw.cc.o.d"
  "CMakeFiles/sw_vm.dir/tlb.cc.o"
  "CMakeFiles/sw_vm.dir/tlb.cc.o.d"
  "CMakeFiles/sw_vm.dir/translation.cc.o"
  "CMakeFiles/sw_vm.dir/translation.cc.o.d"
  "libsw_vm.a"
  "libsw_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
