file(REMOVE_RECURSE
  "CMakeFiles/sw_area.dir/cacti_lite.cc.o"
  "CMakeFiles/sw_area.dir/cacti_lite.cc.o.d"
  "libsw_area.a"
  "libsw_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
