# Empty compiler generated dependencies file for sw_area.
# This may be replaced when dependencies are built.
