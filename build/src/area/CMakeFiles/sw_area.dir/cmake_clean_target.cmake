file(REMOVE_RECURSE
  "libsw_area.a"
)
