file(REMOVE_RECURSE
  "libsw_harness.a"
)
