# Empty compiler generated dependencies file for sw_harness.
# This may be replaced when dependencies are built.
