file(REMOVE_RECURSE
  "CMakeFiles/sw_harness.dir/experiment.cc.o"
  "CMakeFiles/sw_harness.dir/experiment.cc.o.d"
  "CMakeFiles/sw_harness.dir/report.cc.o"
  "CMakeFiles/sw_harness.dir/report.cc.o.d"
  "libsw_harness.a"
  "libsw_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
