file(REMOVE_RECURSE
  "CMakeFiles/sw_core.dir/pw_warp.cc.o"
  "CMakeFiles/sw_core.dir/pw_warp.cc.o.d"
  "CMakeFiles/sw_core.dir/softwalker.cc.o"
  "CMakeFiles/sw_core.dir/softwalker.cc.o.d"
  "libsw_core.a"
  "libsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
