file(REMOVE_RECURSE
  "CMakeFiles/sw_workload.dir/benchmarks.cc.o"
  "CMakeFiles/sw_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/sw_workload.dir/generators.cc.o"
  "CMakeFiles/sw_workload.dir/generators.cc.o.d"
  "libsw_workload.a"
  "libsw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
