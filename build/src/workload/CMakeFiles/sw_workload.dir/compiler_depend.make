# Empty compiler generated dependencies file for sw_workload.
# This may be replaced when dependencies are built.
