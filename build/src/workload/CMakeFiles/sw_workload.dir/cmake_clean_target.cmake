file(REMOVE_RECURSE
  "libsw_workload.a"
)
