
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/area/test_cacti_lite.cc" "tests/CMakeFiles/sw_tests.dir/area/test_cacti_lite.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/area/test_cacti_lite.cc.o.d"
  "/root/repo/tests/core/test_distributor.cc" "tests/CMakeFiles/sw_tests.dir/core/test_distributor.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/core/test_distributor.cc.o.d"
  "/root/repo/tests/core/test_pw_warp.cc" "tests/CMakeFiles/sw_tests.dir/core/test_pw_warp.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/core/test_pw_warp.cc.o.d"
  "/root/repo/tests/core/test_pw_warp_hashed.cc" "tests/CMakeFiles/sw_tests.dir/core/test_pw_warp_hashed.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/core/test_pw_warp_hashed.cc.o.d"
  "/root/repo/tests/core/test_soft_pwb.cc" "tests/CMakeFiles/sw_tests.dir/core/test_soft_pwb.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/core/test_soft_pwb.cc.o.d"
  "/root/repo/tests/core/test_softwalker.cc" "tests/CMakeFiles/sw_tests.dir/core/test_softwalker.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/core/test_softwalker.cc.o.d"
  "/root/repo/tests/gpu/test_gpu.cc" "tests/CMakeFiles/sw_tests.dir/gpu/test_gpu.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/gpu/test_gpu.cc.o.d"
  "/root/repo/tests/gpu/test_sm.cc" "tests/CMakeFiles/sw_tests.dir/gpu/test_sm.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/gpu/test_sm.cc.o.d"
  "/root/repo/tests/harness/test_experiment.cc" "tests/CMakeFiles/sw_tests.dir/harness/test_experiment.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/harness/test_experiment.cc.o.d"
  "/root/repo/tests/harness/test_report.cc" "tests/CMakeFiles/sw_tests.dir/harness/test_report.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/harness/test_report.cc.o.d"
  "/root/repo/tests/integration/test_failure_injection.cc" "tests/CMakeFiles/sw_tests.dir/integration/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/integration/test_failure_injection.cc.o.d"
  "/root/repo/tests/integration/test_fuzz_translation.cc" "tests/CMakeFiles/sw_tests.dir/integration/test_fuzz_translation.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/integration/test_fuzz_translation.cc.o.d"
  "/root/repo/tests/integration/test_mode_matrix.cc" "tests/CMakeFiles/sw_tests.dir/integration/test_mode_matrix.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/integration/test_mode_matrix.cc.o.d"
  "/root/repo/tests/integration/test_paper_claims.cc" "tests/CMakeFiles/sw_tests.dir/integration/test_paper_claims.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/integration/test_paper_claims.cc.o.d"
  "/root/repo/tests/mem/test_cache.cc" "tests/CMakeFiles/sw_tests.dir/mem/test_cache.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/mem/test_cache.cc.o.d"
  "/root/repo/tests/mem/test_dram.cc" "tests/CMakeFiles/sw_tests.dir/mem/test_dram.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/mem/test_dram.cc.o.d"
  "/root/repo/tests/mem/test_memory_system.cc" "tests/CMakeFiles/sw_tests.dir/mem/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/mem/test_memory_system.cc.o.d"
  "/root/repo/tests/sim/test_config.cc" "tests/CMakeFiles/sw_tests.dir/sim/test_config.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/sim/test_config.cc.o.d"
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/sw_tests.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_logging.cc" "tests/CMakeFiles/sw_tests.dir/sim/test_logging.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/sim/test_logging.cc.o.d"
  "/root/repo/tests/sim/test_rng.cc" "tests/CMakeFiles/sw_tests.dir/sim/test_rng.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/sim/test_rng.cc.o.d"
  "/root/repo/tests/sim/test_stats.cc" "tests/CMakeFiles/sw_tests.dir/sim/test_stats.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/sim/test_stats.cc.o.d"
  "/root/repo/tests/vm/test_address.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_address.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_address.cc.o.d"
  "/root/repo/tests/vm/test_fault_buffer.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_fault_buffer.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_fault_buffer.cc.o.d"
  "/root/repo/tests/vm/test_hashed_page_table.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_hashed_page_table.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_hashed_page_table.cc.o.d"
  "/root/repo/tests/vm/test_page_table.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_page_table.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_page_table.cc.o.d"
  "/root/repo/tests/vm/test_page_walk_cache.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_page_walk_cache.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_page_walk_cache.cc.o.d"
  "/root/repo/tests/vm/test_ptw.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_ptw.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_ptw.cc.o.d"
  "/root/repo/tests/vm/test_ptw_timing.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_ptw_timing.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_ptw_timing.cc.o.d"
  "/root/repo/tests/vm/test_tlb.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_tlb.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_tlb.cc.o.d"
  "/root/repo/tests/vm/test_translation.cc" "tests/CMakeFiles/sw_tests.dir/vm/test_translation.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/vm/test_translation.cc.o.d"
  "/root/repo/tests/workload/test_benchmarks.cc" "tests/CMakeFiles/sw_tests.dir/workload/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/workload/test_benchmarks.cc.o.d"
  "/root/repo/tests/workload/test_generators.cc" "tests/CMakeFiles/sw_tests.dir/workload/test_generators.cc.o" "gcc" "tests/CMakeFiles/sw_tests.dir/workload/test_generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sw_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/sw_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/sw_area.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
