# Empty dependencies file for sw_tests.
# This may be replaced when dependencies are built.
