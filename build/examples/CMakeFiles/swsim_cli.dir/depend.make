# Empty dependencies file for swsim_cli.
# This may be replaced when dependencies are built.
