file(REMOVE_RECURSE
  "CMakeFiles/swsim_cli.dir/swsim_cli.cpp.o"
  "CMakeFiles/swsim_cli.dir/swsim_cli.cpp.o.d"
  "swsim_cli"
  "swsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
