file(REMOVE_RECURSE
  "CMakeFiles/custom_walker_policy.dir/custom_walker_policy.cpp.o"
  "CMakeFiles/custom_walker_policy.dir/custom_walker_policy.cpp.o.d"
  "custom_walker_policy"
  "custom_walker_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_walker_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
