# Empty compiler generated dependencies file for custom_walker_policy.
# This may be replaced when dependencies are built.
