/**
 * @file
 * Example: graph-analytics campaign.
 *
 * Runs the GraphBIG-style benchmarks (bfs, sssp, dc, gc, bc) on the
 * baseline, SoftWalker, and Hybrid machines and reports the
 * address-translation picture an architect would look at: walk counts,
 * queueing-vs-access split, MSHR failures, and the resulting speedups.
 *
 *   ./build/examples/graph_analytics [quota]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace sw;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Gpu::RunLimits limits = defaultLimits();
    if (argc > 1)
        limits.warpInstrQuota = std::strtoull(argv[1], nullptr, 10);

    const char *graph_apps[] = {"bfs", "sssp", "dc", "gc", "bc"};

    TextTable table({"bench", "base walkQ/A (cy)", "SW walkQ/A (cy)",
                     "base MSHR fails", "SW MSHR fails", "SW speedup",
                     "hybrid speedup"});

    std::vector<double> sw_speedups;
    for (const char *abbr : graph_apps) {
        const BenchmarkInfo &info = findBenchmark(abbr);
        std::fprintf(stderr, "running %s (footprint %llu MB)...\n", abbr,
                     (unsigned long long)info.footprintMb);

        auto run_one = [&info, &limits](GpuConfig cfg) {
            RunSpec spec;
            spec.cfg = std::move(cfg);
            spec.benchmark = &info;
            spec.limits = limits;
            return run(std::move(spec));
        };
        RunResult base = run_one(makeDefaultConfig());
        RunResult soft = run_one(makeSoftWalkerConfig());
        RunResult hybrid =
            run_one(makeSoftWalkerConfig(TranslationMode::Hybrid));

        sw_speedups.push_back(speedup(base, soft));
        table.addRow({abbr,
                      strprintf("%.0f/%.0f", base.avgWalkQueueDelay,
                                base.avgWalkAccessLatency),
                      strprintf("%.0f/%.0f", soft.avgWalkQueueDelay,
                                soft.avgWalkAccessLatency),
                      strprintf("%llu",
                                (unsigned long long)base.l2MshrFailures),
                      strprintf("%llu",
                                (unsigned long long)soft.l2MshrFailures),
                      TextTable::num(speedup(base, soft)),
                      TextTable::num(speedup(base, hybrid))});
    }

    std::printf("\n%s\n", table.str().c_str());
    std::printf("graph-suite geomean SoftWalker speedup: %.2fx\n",
                geomean(sw_speedups));
    std::printf("\nReading the table: the baseline's walk latency is almost"
                " entirely queueing (walkQ >> walkA);\nSoftWalker trades a "
                "slightly larger per-walk access time for the elimination "
                "of that queue.\n");
    return 0;
}
