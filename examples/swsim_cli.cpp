/**
 * @file
 * swsim — command-line driver for one-off simulations.
 *
 * Runs a single (benchmark, configuration) pair and dumps the full
 * statistics picture.  Useful for poking at a config without writing a
 * harness.
 *
 * Usage:
 *   swsim_cli [options]
 *     --bench <abbr>        Table 4 benchmark (default bfs)
 *     --mode <m>            hw | sw | hybrid | ideal (default hw)
 *     --ptws <n>            hardware walker count (scales MSHRs/PWB)
 *     --intlb <n>           In-TLB MSHR capacity
 *     --page <64k|2m>       page size
 *     --pt <radix|hashed>   page-table organisation
 *     --nha                 enable NHA page-walk coalescing
 *     --quota <n>           measured warp instructions
 *     --warmup <n>          warmup warp instructions
 *     --scale <f>           footprint scale factor
 *     --policy <rr|rand|stall>  distributor policy
 *     --metrics-out <file>  dump the full stat registry as JSON
 *     --trace-out <file>    dump translation lifecycle trace (Chrome JSON)
 *     --samples-out <file>  dump periodic gauge samples as CSV
 *     --sample-interval <n> sampling interval in cycles (default 10000)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/experiment.hh"
#include "obs/sampler.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

using namespace sw;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: swsim_cli [--bench b] [--mode hw|sw|hybrid|ideal] "
                 "[--ptws n]\n"
                 "  [--intlb n] [--page 64k|2m] [--pt radix|hashed] [--nha]"
                 "\n  [--quota n] [--warmup n] [--scale f] "
                 "[--policy rr|rand|stall]\n"
                 "  [--metrics-out file] [--trace-out file] "
                 "[--samples-out file]\n  [--sample-interval n]\n");
    std::exit(2);
}

const char *
require(int argc, char **argv, int &i)
{
    if (++i >= argc)
        usage();
    return argv[i];
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string bench = "bfs";
    GpuConfig cfg = makeDefaultConfig();
    Gpu::RunLimits limits = defaultLimits();
    bool explicit_limits = false;
    double scale = 1.0;
    std::string metrics_out, trace_out, samples_out;
    Cycle sample_interval = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bench") {
            bench = require(argc, argv, i);
        } else if (arg == "--mode") {
            std::string mode = require(argc, argv, i);
            if (mode == "hw") {
                cfg.mode = TranslationMode::HardwarePtw;
            } else if (mode == "sw") {
                std::uint32_t intlb = cfg.inTlbMshrMax;
                cfg = makeSoftWalkerConfig();
                if (intlb)
                    cfg.inTlbMshrMax = intlb;
            } else if (mode == "hybrid") {
                cfg = makeSoftWalkerConfig(TranslationMode::Hybrid);
            } else if (mode == "ideal") {
                cfg.mode = TranslationMode::Ideal;
            } else {
                usage();
            }
        } else if (arg == "--ptws") {
            scalePtwSubsystem(cfg, std::uint32_t(
                std::strtoul(require(argc, argv, i), nullptr, 10)));
        } else if (arg == "--intlb") {
            cfg.inTlbMshrMax = std::uint32_t(
                std::strtoul(require(argc, argv, i), nullptr, 10));
        } else if (arg == "--page") {
            std::string page = require(argc, argv, i);
            cfg.pageBytes = (page == "2m") ? 2ull * 1024 * 1024
                                           : 64ull * 1024;
        } else if (arg == "--pt") {
            std::string kind = require(argc, argv, i);
            cfg.pageTableKind = (kind == "hashed") ? PageTableKind::Hashed
                                                   : PageTableKind::Radix4;
        } else if (arg == "--nha") {
            cfg.nhaCoalescing = true;
        } else if (arg == "--quota") {
            limits.warpInstrQuota =
                std::strtoull(require(argc, argv, i), nullptr, 10);
            explicit_limits = true;
        } else if (arg == "--warmup") {
            limits.warmupInstrs =
                std::strtoull(require(argc, argv, i), nullptr, 10);
            explicit_limits = true;
        } else if (arg == "--scale") {
            scale = std::strtod(require(argc, argv, i), nullptr);
        } else if (arg == "--policy") {
            std::string policy = require(argc, argv, i);
            cfg.distributorPolicy =
                policy == "rand" ? DistributorPolicy::Random
                : policy == "stall" ? DistributorPolicy::StallAware
                                    : DistributorPolicy::RoundRobin;
        } else if (arg == "--metrics-out") {
            metrics_out = require(argc, argv, i);
        } else if (arg == "--trace-out") {
            trace_out = require(argc, argv, i);
        } else if (arg == "--samples-out") {
            samples_out = require(argc, argv, i);
        } else if (arg == "--sample-interval") {
            sample_interval =
                std::strtoull(require(argc, argv, i), nullptr, 10);
        } else {
            usage();
        }
    }

    const BenchmarkInfo &info = findBenchmark(bench);
    if (!explicit_limits)
        limits = limitsFor(info);

    // Observability bundle: each sink exists only when its output file was
    // requested, so a plain run installs nothing and stays bit-identical.
    StatRegistry registry;
    TranslationTracer tracer;
    TimeSeriesSampler sampler;
    Observability obs;
    if (!metrics_out.empty())
        obs.registry = &registry;
    if (!trace_out.empty())
        obs.tracer = &tracer;
    if (!samples_out.empty()) {
        obs.sampler = &sampler;
        if (sample_interval > 0)
            obs.sampleInterval = sample_interval;
    }

    std::fprintf(stderr, "running %s (%s, mode=%s, quota=%llu)...\n",
                 info.abbr.c_str(), info.fullName.c_str(),
                 toString(cfg.mode),
                 (unsigned long long)limits.warpInstrQuota);
    RunResult r = obs.any() ? runBenchmark(cfg, info, limits, scale, obs)
                            : runBenchmark(cfg, info, limits, scale);

    auto open_out = [](const std::string &path) {
        std::ofstream out(path);
        if (!out)
            fatal("cannot open '%s' for writing", path.c_str());
        return out;
    };
    if (!metrics_out.empty()) {
        std::ofstream out = open_out(metrics_out);
        registry.writeJson(out);
        std::fprintf(stderr, "wrote %zu stats to %s\n", registry.size(),
                     metrics_out.c_str());
    }
    if (!trace_out.empty()) {
        std::ofstream out = open_out(trace_out);
        tracer.writeTraceJson(out);
        std::fprintf(stderr,
                     "wrote %llu stamps / %llu walk spans to %s\n",
                     (unsigned long long)tracer.stampsRecorded(),
                     (unsigned long long)tracer.spansCompleted(),
                     trace_out.c_str());
    }
    if (!samples_out.empty()) {
        std::ofstream out = open_out(samples_out);
        sampler.writeCsv(out);
        std::fprintf(stderr, "wrote %zu samples to %s\n",
                     sampler.numRows(), samples_out.c_str());
    }

    std::printf("benchmark            %s (%s)\n", r.benchmark.c_str(),
                info.irregular ? "irregular" : "regular");
    std::printf("mode                 %s\n", toString(r.mode));
    std::printf("measured cycles      %llu\n",
                (unsigned long long)r.cycles);
    std::printf("warp instructions    %llu\n",
                (unsigned long long)r.warpInstrs);
    std::printf("performance          %.5f warp-instr/cycle\n", r.perf);
    std::printf("L1 TLB hit rate      %.2f%%\n",
                100.0 * double(r.l1TlbHits) /
                double(std::max<std::uint64_t>(1, r.l1TlbHits +
                                                  r.l1TlbMisses)));
    std::printf("L2 TLB accesses      %llu (hit rate %.2f%%)\n",
                (unsigned long long)r.l2TlbAccesses,
                100.0 * r.l2TlbHitRate);
    std::printf("L2 TLB MPKI          %.2f (paper: %.2f)\n", r.l2TlbMpki,
                info.paperMpki);
    std::printf("L2 TLB MSHR failures %llu\n",
                (unsigned long long)r.l2MshrFailures);
    std::printf("In-TLB MSHR allocs   %llu (peak %llu)\n",
                (unsigned long long)r.inTlbMshrAllocs,
                (unsigned long long)r.inTlbMshrPeak);
    std::printf("page walks           %llu\n", (unsigned long long)r.walks);
    std::printf("walk queue delay     %.1f cy\n", r.avgWalkQueueDelay);
    std::printf("walk access latency  %.1f cy\n", r.avgWalkAccessLatency);
    std::printf("translation latency  %.1f cy\n", r.avgTranslationLatency);
    std::printf("L2D miss rate        %.2f%%\n", 100.0 * r.l2dMissRate);
    std::printf("DRAM utilisation     %.2f%%\n",
                100.0 * r.dramUtilisation);
    std::printf("mem-stall fraction   %.2f%%\n",
                100.0 * r.stallFraction(cfg.numSms));
    if (r.swBatches) {
        std::printf("PW warp batches      %llu (avg size %.1f)\n",
                    (unsigned long long)r.swBatches, r.swAvgBatchSize);
        std::printf("PW warp instructions %llu\n",
                    (unsigned long long)r.swInstructions);
        std::printf("to hardware/software %llu / %llu\n",
                    (unsigned long long)r.swToHardware,
                    (unsigned long long)r.swToSoftware);
    }
    std::printf("faults               %llu\n", (unsigned long long)r.faults);
    return 0;
}
