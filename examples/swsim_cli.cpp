/**
 * @file
 * swsim — command-line driver for one-off simulations.
 *
 * Runs a single (benchmark, configuration) pair — or replays a recorded
 * `.swtrace` page-access trace — and dumps the full statistics picture.
 * Useful for poking at a config without writing a harness.
 *
 * Options are declared once in a table (name, argument spec, doc string,
 * setter); the parser, the generated `--help` text, and unknown-flag
 * rejection all derive from that single declaration.  Options apply in
 * command-line order, so e.g. `--intlb 64 --mode sw` seeds the SoftWalker
 * config with the earlier In-TLB capacity, exactly as documented.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "harness/corun.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sampled.hh"
#include "obs/sampler.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "prof/hostprof.hh"
#include "prof/run_manifest.hh"
#include "sim/logging.hh"
#include "trace/trace_convert.hh"
#include "trace/trace_format.hh"
#include "trace/trace_workload.hh"

using namespace sw;

namespace {

/**
 * One command-line option.  `args` is the space-separated metavariable
 * spec shown in --help ("" for a bare flag, "<n>" for one value,
 * "<in> <out>" for two); its word count is the option's arity.
 */
struct CliOption
{
    const char *name;
    const char *args;
    const char *doc;
    std::function<void(const std::vector<std::string> &)> set;

    int
    arity() const
    {
        int words = 0;
        for (const char *c = args; *c; ++c)
            if (*c == '<')
                ++words;
        return words;
    }
};

/** Parse errors: complain on stderr and exit 2 (matching historic usage). */
[[noreturn]] void
cliError(const std::string &message)
{
    std::fprintf(stderr, "swsim_cli: %s (try --help)\n", message.c_str());
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &value, const char *flag)
{
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        cliError(strprintf("%s expects a number, got '%s'", flag,
                           value.c_str()));
    return parsed;
}

double
parseFloat(const std::string &value, const char *flag)
{
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        cliError(strprintf("%s expects a number, got '%s'", flag,
                           value.c_str()));
    return parsed;
}

/** Everything the option setters write into. */
struct Options
{
    std::string bench = "bfs";
    bool benchSet = false;
    GpuConfig cfg = makeDefaultConfig();
    Gpu::RunLimits limits = defaultLimits();
    bool explicitLimits = false;
    double scale = 1.0;
    std::string metricsOut, traceOut, samplesOut, profileOut;
    Cycle sampleInterval = 0;
    std::string recordPath, replayPath, fingerprintOut;
    TraceEndPolicy replayEnd = TraceEndPolicy::Drain;
    std::string convertIn, convertOut;
    std::uint64_t ffwdInstrs = 0;
    std::uint64_t checkpointAt = 0;
    std::string checkpointOut, checkpointIn;
    std::string phaseSampleOut;
    SamplingOptions sampling;
    std::vector<std::string> corunBenches;
    bool corunNoSolo = false;
    bool help = false;
};

/** Split "bfs,gemm" into its comma-separated parts. */
std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        parts.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

std::vector<CliOption>
optionTable(Options &opt)
{
    // Setters receive exactly arity() strings.  Mutating shared state in
    // table order is what preserves the order-dependent --mode semantics.
    return {
        {"--help", "", "print this help and exit",
         [&](const std::vector<std::string> &) { opt.help = true; }},
        {"--bench", "<abbr>", "Table 4 benchmark (default bfs)",
         [&](const std::vector<std::string> &a) {
             opt.bench = a[0];
             opt.benchSet = true;
         }},
        {"--mode", "<m>", "hw | sw | hybrid | ideal (default hw)",
         [&](const std::vector<std::string> &a) {
             if (a[0] == "hw") {
                 opt.cfg.mode = TranslationMode::HardwarePtw;
             } else if (a[0] == "sw") {
                 std::uint32_t intlb = opt.cfg.inTlbMshrMax;
                 opt.cfg = makeSoftWalkerConfig();
                 if (intlb)
                     opt.cfg.inTlbMshrMax = intlb;
             } else if (a[0] == "hybrid") {
                 opt.cfg = makeSoftWalkerConfig(TranslationMode::Hybrid);
             } else if (a[0] == "ideal") {
                 opt.cfg.mode = TranslationMode::Ideal;
             } else {
                 cliError("--mode expects hw|sw|hybrid|ideal, got '" +
                          a[0] + "'");
             }
         }},
        {"--ptws", "<n>", "hardware walker count (scales MSHRs/PWB)",
         [&](const std::vector<std::string> &a) {
             scalePtwSubsystem(opt.cfg,
                               std::uint32_t(parseUint(a[0], "--ptws")));
         }},
        {"--intlb", "<n>", "In-TLB MSHR capacity",
         [&](const std::vector<std::string> &a) {
             opt.cfg.inTlbMshrMax =
                 std::uint32_t(parseUint(a[0], "--intlb"));
         }},
        {"--page", "<64k|2m>", "page size",
         [&](const std::vector<std::string> &a) {
             opt.cfg.pageBytes = (a[0] == "2m") ? 2ull * 1024 * 1024
                                                : 64ull * 1024;
         }},
        {"--pt", "<radix|hashed>", "page-table organisation",
         [&](const std::vector<std::string> &a) {
             opt.cfg.pageTableKind = (a[0] == "hashed")
                 ? PageTableKind::Hashed : PageTableKind::Radix4;
         }},
        {"--nha", "", "enable NHA page-walk coalescing",
         [&](const std::vector<std::string> &) {
             opt.cfg.nhaCoalescing = true;
         }},
        {"--quota", "<n>", "measured warp instructions",
         [&](const std::vector<std::string> &a) {
             opt.limits.warpInstrQuota = parseUint(a[0], "--quota");
             opt.explicitLimits = true;
         }},
        {"--warmup", "<n>", "warmup warp instructions",
         [&](const std::vector<std::string> &a) {
             opt.limits.warmupInstrs = parseUint(a[0], "--warmup");
             opt.explicitLimits = true;
         }},
        {"--scale", "<f>", "footprint scale factor",
         [&](const std::vector<std::string> &a) {
             opt.scale = parseFloat(a[0], "--scale");
         }},
        {"--policy", "<rr|rand|stall>", "distributor policy",
         [&](const std::vector<std::string> &a) {
             opt.cfg.distributorPolicy =
                 a[0] == "rand" ? DistributorPolicy::Random
                 : a[0] == "stall" ? DistributorPolicy::StallAware
                                   : DistributorPolicy::RoundRobin;
         }},
        {"--corun", "<a,b,...>",
         "co-run one benchmark per tenant; prints slowdown/STP/fairness",
         [&](const std::vector<std::string> &a) {
             opt.corunBenches = splitCommas(a[0]);
         }},
        {"--no-solo", "",
         "skip the per-tenant solo baselines of a --corun",
         [&](const std::vector<std::string> &) {
             opt.corunNoSolo = true;
         }},
        {"--mig", "",
         "MIG partitioning: per-tenant SM slices and L2 TLB way slices",
         [&](const std::vector<std::string> &) {
             opt.cfg.migPartitioning = true;
         }},
        {"--pw-arb", "<demand|rr>",
         "PW-Warp dispatch arbitration across tenants (default demand)",
         [&](const std::vector<std::string> &a) {
             if (a[0] == "demand")
                 opt.cfg.pwArbitration = PwArbitration::Demand;
             else if (a[0] == "rr")
                 opt.cfg.pwArbitration = PwArbitration::TenantRoundRobin;
             else
                 cliError("--pw-arb expects demand|rr, got '" + a[0] + "'");
         }},
        {"--subtlb", "<k>",
         "sub-entry L2 TLB: k pages per tag (1 = conventional)",
         [&](const std::vector<std::string> &a) {
             opt.cfg.l2SubEntries =
                 std::uint32_t(parseUint(a[0], "--subtlb"));
         }},
        {"--subtlb-share", "",
         "let co-resident tenants share sub-entry TLB tags",
         [&](const std::vector<std::string> &) {
             opt.cfg.l2SubEntrySharing = true;
         }},
        {"--record", "<file>",
         "record the page-access stream to a .swtrace file",
         [&](const std::vector<std::string> &a) {
             opt.recordPath = a[0];
         }},
        {"--replay", "<file>",
         "replay a .swtrace instead of running a benchmark",
         [&](const std::vector<std::string> &a) {
             opt.replayPath = a[0];
         }},
        {"--replay-end", "<drain|loop>",
         "what an exhausted trace stream does (default drain)",
         [&](const std::vector<std::string> &a) {
             if (a[0] == "drain")
                 opt.replayEnd = TraceEndPolicy::Drain;
             else if (a[0] == "loop")
                 opt.replayEnd = TraceEndPolicy::Loop;
             else
                 cliError("--replay-end expects drain|loop, got '" + a[0] +
                          "'");
         }},
        {"--ffwd", "<n>",
         "functionally fast-forward n warp instructions before the run",
         [&](const std::vector<std::string> &a) {
             opt.ffwdInstrs = parseUint(a[0], "--ffwd");
         }},
        {"--checkpoint-at", "<n>",
         "save a checkpoint at n fetched instructions, then continue",
         [&](const std::vector<std::string> &a) {
             opt.checkpointAt = parseUint(a[0], "--checkpoint-at");
         }},
        {"--checkpoint-out", "<file>",
         "checkpoint path written by --checkpoint-at",
         [&](const std::vector<std::string> &a) {
             opt.checkpointOut = a[0];
         }},
        {"--checkpoint-in", "<file>",
         "resume from a checkpoint (same config and workload source)",
         [&](const std::vector<std::string> &a) {
             opt.checkpointIn = a[0];
         }},
        {"--phase-sample", "<file>",
         "phase-sample a --replay run; write the sampled JSON here",
         [&](const std::vector<std::string> &a) {
             opt.phaseSampleOut = a[0];
         }},
        {"--phase-window", "<n>",
         "phase-sampling window in warp instructions (default 2000)",
         [&](const std::vector<std::string> &a) {
             opt.sampling.windowInstrs = parseUint(a[0], "--phase-window");
         }},
        {"--phase-clusters", "<k>",
         "phase clusters / representative windows (default 4)",
         [&](const std::vector<std::string> &a) {
             opt.sampling.numClusters =
                 std::uint32_t(parseUint(a[0], "--phase-clusters"));
         }},
        {"--phase-warmup", "<n>",
         "timed-but-unmeasured instructions before each window (default 1000)",
         [&](const std::vector<std::string> &a) {
             opt.sampling.windowWarmupInstrs =
                 parseUint(a[0], "--phase-warmup");
         }},
        {"--phase-skip", "<n>",
         "leading instructions excluded from sampling (cold-start region)",
         [&](const std::vector<std::string> &a) {
             opt.sampling.skipInstrs = parseUint(a[0], "--phase-skip");
         }},
        {"--phase-time-weight", "<w>",
         "temporal feature weight; high values stratify in time (default 0.5)",
         [&](const std::vector<std::string> &a) {
             char *end = nullptr;
             opt.sampling.timeFeatureWeight = std::strtod(a[0].c_str(), &end);
             if (end == a[0].c_str() || *end != '\0' ||
                 opt.sampling.timeFeatureWeight < 0.0) {
                 cliError("--phase-time-weight expects a non-negative "
                          "number, got '" + a[0] + "'");
             }
         }},
        {"--trace-convert", "<in.txt> <out.swtrace>",
         "convert a text trace to binary and exit",
         [&](const std::vector<std::string> &a) {
             opt.convertIn = a[0];
             opt.convertOut = a[1];
         }},
        {"--fingerprint-out", "<file>",
         "write the exact result fingerprint (for replay checks)",
         [&](const std::vector<std::string> &a) {
             opt.fingerprintOut = a[0];
         }},
        {"--metrics-out", "<file>",
         "dump the full stat registry as JSON",
         [&](const std::vector<std::string> &a) {
             opt.metricsOut = a[0];
         }},
        {"--trace-out", "<file>",
         "dump translation lifecycle trace (Chrome JSON)",
         [&](const std::vector<std::string> &a) {
             opt.traceOut = a[0];
         }},
        {"--samples-out", "<file>",
         "dump periodic gauge samples as CSV",
         [&](const std::vector<std::string> &a) {
             opt.samplesOut = a[0];
         }},
        {"--sample-interval", "<n>",
         "sampling interval in cycles (default 10000)",
         [&](const std::vector<std::string> &a) {
             opt.sampleInterval = parseUint(a[0], "--sample-interval");
         }},
        {"--profile-out", "<file>",
         "enable the host self-profiler, dump its JSON (hostprof builds)",
         [&](const std::vector<std::string> &a) {
             opt.profileOut = a[0];
         }},
    };
}

void
printHelp(const std::vector<CliOption> &table)
{
    std::printf("usage: swsim_cli [options]\n\n"
                "Run one simulation (or replay/convert a trace) and print "
                "the full\nstatistics picture.\n\noptions:\n");
    for (const CliOption &o : table) {
        std::string left = o.name;
        if (*o.args) {
            left += ' ';
            left += o.args;
        }
        std::printf("  %-28s %s\n", left.c_str(), o.doc);
    }
}

void
parseArgs(int argc, char **argv, const std::vector<CliOption> &table)
{
    for (int i = 1; i < argc;) {
        const std::string arg = argv[i];
        const CliOption *match = nullptr;
        for (const CliOption &o : table)
            if (arg == o.name)
                match = &o;
        if (!match)
            cliError("unknown option '" + arg + "'");
        int arity = match->arity();
        if (i + arity >= argc)
            cliError(strprintf("%s expects %s", match->name, match->args));
        std::vector<std::string> values(argv + i + 1, argv + i + 1 + arity);
        match->set(values);
        i += 1 + arity;
    }
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opt;
    std::vector<CliOption> table = optionTable(opt);
    parseArgs(argc, argv, table);

    if (opt.help) {
        printHelp(table);
        return 0;
    }

    if (!opt.convertIn.empty()) {
        if (opt.benchSet || !opt.replayPath.empty())
            cliError("--trace-convert cannot be combined with a run");
        std::size_t converted =
            convertTextTrace(opt.convertIn, opt.convertOut);
        std::fprintf(stderr, "converted %zu instructions: %s -> %s\n",
                     converted, opt.convertIn.c_str(),
                     opt.convertOut.c_str());
        return 0;
    }
    if (opt.benchSet && !opt.replayPath.empty())
        cliError("--bench and --replay are mutually exclusive");

    if (!opt.corunBenches.empty()) {
        if (opt.benchSet || !opt.replayPath.empty())
            cliError("--corun cannot be combined with --bench or --replay");
        if (opt.corunBenches.size() < 2)
            cliError("--corun needs at least two comma-separated tenants");
        CoRunSpec spec;
        spec.cfg = opt.cfg;
        spec.soloBaselines = !opt.corunNoSolo;
        for (const std::string &bench : opt.corunBenches) {
            findBenchmark(bench);   // reject unknown names before running
            spec.tenants.push_back({bench, opt.scale});
        }
        if (opt.explicitLimits)
            spec.limits = opt.limits;
        std::fprintf(stderr, "co-running %zu tenants (mode=%s, mig=%s, "
                     "arb=%s)...\n", spec.tenants.size(),
                     toString(opt.cfg.mode),
                     opt.cfg.migPartitioning ? "on" : "off",
                     opt.cfg.pwArbitration == PwArbitration::TenantRoundRobin
                         ? "rr" : "demand");
        CoRunResult result = runCoRun(spec);
        std::printf("co-run cycles        %llu\n",
                    (unsigned long long)result.cycles);
        for (const TenantOutcome &t : result.tenants) {
            std::printf("tenant %u             %s: %.5f warp-instr/cycle, "
                        "walkQ %.1f cy", t.asid, t.workload.c_str(), t.perf,
                        t.walkQueueDelay);
            if (spec.soloBaselines)
                std::printf(", slowdown %.3fx (solo walkQ %.1f cy)",
                            t.slowdown, t.soloWalkQueueDelay);
            std::printf("\n");
        }
        if (spec.soloBaselines) {
            std::printf("system throughput    %.4f (of %zu)\n",
                        result.systemThroughput, result.tenants.size());
            std::printf("avg slowdown         %.4fx\n", result.avgSlowdown);
            std::printf("fairness             %.4f\n", result.fairness);
        }
        if (!opt.fingerprintOut.empty()) {
            std::ofstream out = openOut(opt.fingerprintOut);
            out << corunFingerprint(result);
            std::fprintf(stderr, "wrote fingerprint to %s\n",
                         opt.fingerprintOut.c_str());
        }
        return 0;
    }

    // Observability bundle: each sink exists only when its output file was
    // requested, so a plain run installs nothing and stays bit-identical.
    StatRegistry registry;
    TranslationTracer tracer;
    TimeSeriesSampler sampler;
    Observability obs;
    if (!opt.metricsOut.empty())
        obs.registry = &registry;
    if (!opt.traceOut.empty())
        obs.tracer = &tracer;
    if (!opt.samplesOut.empty()) {
        obs.sampler = &sampler;
        if (opt.sampleInterval > 0)
            obs.sampleInterval = opt.sampleInterval;
    }

    RunSpec spec;
    spec.cfg = opt.cfg;
    spec.footprintScale = opt.scale;
    if (obs.any())
        spec.obs = &obs;
    if (opt.explicitLimits)
        spec.limits = opt.limits;
    spec.recordPath = opt.recordPath;
    spec.ffwdInstrs = opt.ffwdInstrs;
    spec.checkpointAtInstrs = opt.checkpointAt;
    spec.checkpointOut = opt.checkpointOut;
    spec.checkpointIn = opt.checkpointIn;

    if (!opt.phaseSampleOut.empty()) {
        if (opt.replayPath.empty())
            cliError("--phase-sample needs a --replay trace to plan over");
        spec.replayPath = opt.replayPath;
        SampledRunResult sampled =
            runSampled(std::move(spec), opt.sampling);
        {
            std::ofstream out = openOut(opt.phaseSampleOut);
            writeSampledJson(out, sampled);
        }
        const MetricEstimate &perf = sampled.metrics.at("perf");
        const MetricEstimate &mpki = sampled.metrics.at("l2_tlb_mpki");
        std::printf("phase-sampled        %s (mode=%s)\n",
                    sampled.combined.benchmark.c_str(),
                    toString(sampled.combined.mode));
        std::printf("windows              %llu of %llu (%u clusters)\n",
                    (unsigned long long)sampled.plan.windows.size(),
                    (unsigned long long)sampled.plan.totalWindows,
                    sampled.plan.clusters);
        std::printf("detailed instrs      %llu of %llu (ratio %.4f)\n",
                    (unsigned long long)sampled.plan.detailedInstrs(),
                    (unsigned long long)sampled.plan.totalInstrs,
                    sampled.detailRatio());
        std::printf("performance          %.5f ± %.5f warp-instr/cycle\n",
                    perf.mean, perf.spread);
        std::printf("L2 TLB MPKI          %.2f ± %.2f\n", mpki.mean,
                    mpki.spread);
        std::fprintf(stderr, "wrote sampled result to %s\n",
                     opt.phaseSampleOut.c_str());
        return 0;
    }

    const BenchmarkInfo *info = nullptr;
    if (!opt.replayPath.empty()) {
        spec.replayPath = opt.replayPath;
        spec.replayEnd = opt.replayEnd;
        std::fprintf(stderr, "replaying %s (mode=%s, end=%s)...\n",
                     opt.replayPath.c_str(), toString(opt.cfg.mode),
                     toString(opt.replayEnd));
    } else {
        info = &findBenchmark(opt.bench);
        spec.benchmark = info;
        // Limits resolution mirrors run(): explicit flags win, otherwise
        // the benchmark's defaults; shown here so the banner matches.
        std::fprintf(stderr, "running %s (%s, mode=%s, quota=%llu)...\n",
                     info->abbr.c_str(), info->fullName.c_str(),
                     toString(opt.cfg.mode),
                     (unsigned long long)(opt.explicitLimits
                         ? opt.limits : limitsFor(*info)).warpInstrQuota);
    }

    // Arm the self-profiler before setup so the Setup zone is captured;
    // in non-hostprof builds the zones are compiled out and this only
    // affects what the profile JSON reports as "enabled".
    if (!opt.profileOut.empty())
        prof::HostProfiler::instance().setEnabled(true);

    RunResult r = run(std::move(spec));

    // Provenance manifest embedded in every JSON artifact below: the
    // effective limits mirror run()'s resolution (explicit flags win,
    // else the benchmark's defaults).
    RunManifest manifest = RunManifest::collect();
    manifest.benchmark = r.benchmark;
    manifest.configDigest = configDigest(opt.cfg);
    {
        Gpu::RunLimits effective =
            opt.explicitLimits ? opt.limits
            : info             ? limitsFor(*info)
                               : defaultLimits();
        manifest.warpInstrQuota = effective.warpInstrQuota;
        manifest.warmupInstrs = effective.warmupInstrs;
        manifest.maxCycles = effective.maxCycles;
    }

    // Profile first: its wall-clock keeps ticking until the snapshot, so
    // writing the other artifacts first would show up as lost coverage.
    if (!opt.profileOut.empty()) {
        prof::HostProfiler &profiler = prof::HostProfiler::instance();
        std::ofstream out = openOut(opt.profileOut);
        profiler.writeJson(out, &manifest);
        prof::ProfileSnapshot snap = profiler.snapshot();
        std::fprintf(stderr,
                     "wrote host profile to %s (coverage %.1f%%, "
                     "%.0f events/s)\n",
                     opt.profileOut.c_str(), 100.0 * snap.coverage(),
                     snap.eventsPerSec);
    }

    if (!opt.fingerprintOut.empty()) {
        std::ofstream out = openOut(opt.fingerprintOut);
        out << fingerprint(r);
        std::fprintf(stderr, "wrote fingerprint to %s\n",
                     opt.fingerprintOut.c_str());
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out = openOut(opt.metricsOut);
        out << "{\n  \"schema\": \"softwalker.metrics/1\",\n"
            << "  \"manifest\": ";
        manifest.writeJson(out, 2);
        out << ",\n  \"stats\": " << registry.dumpJson() << "\n}\n";
        std::fprintf(stderr, "wrote %zu stats to %s\n", registry.size(),
                     opt.metricsOut.c_str());
    }
    if (!opt.traceOut.empty()) {
        std::ofstream out = openOut(opt.traceOut);
        tracer.writeTraceJson(out);
        std::fprintf(stderr,
                     "wrote %llu stamps / %llu walk spans to %s\n",
                     (unsigned long long)tracer.stampsRecorded(),
                     (unsigned long long)tracer.spansCompleted(),
                     opt.traceOut.c_str());
    }
    if (!opt.samplesOut.empty()) {
        std::ofstream out = openOut(opt.samplesOut);
        sampler.writeCsv(out);
        std::fprintf(stderr, "wrote %zu samples to %s\n",
                     sampler.numRows(), opt.samplesOut.c_str());
    }

    // A replayed trace keeps its recorded workload name; if that matches a
    // Table 4 benchmark, the paper comparison still applies.
    if (!info)
        info = findBenchmarkOrNull(r.benchmark);

    if (info) {
        std::printf("benchmark            %s (%s)\n", r.benchmark.c_str(),
                    info->irregular ? "irregular" : "regular");
    } else {
        std::printf("benchmark            %s (trace)\n",
                    r.benchmark.c_str());
    }
    std::printf("mode                 %s\n", toString(r.mode));
    std::printf("measured cycles      %llu\n",
                (unsigned long long)r.cycles);
    std::printf("warp instructions    %llu\n",
                (unsigned long long)r.warpInstrs);
    std::printf("performance          %.5f warp-instr/cycle\n", r.perf);
    std::printf("L1 TLB hit rate      %.2f%%\n",
                100.0 * double(r.l1TlbHits) /
                double(std::max<std::uint64_t>(1, r.l1TlbHits +
                                                  r.l1TlbMisses)));
    std::printf("L2 TLB accesses      %llu (hit rate %.2f%%)\n",
                (unsigned long long)r.l2TlbAccesses,
                100.0 * r.l2TlbHitRate);
    if (info) {
        std::printf("L2 TLB MPKI          %.2f (paper: %.2f)\n",
                    r.l2TlbMpki, info->paperMpki);
    } else {
        std::printf("L2 TLB MPKI          %.2f\n", r.l2TlbMpki);
    }
    std::printf("L2 TLB MSHR failures %llu\n",
                (unsigned long long)r.l2MshrFailures);
    std::printf("In-TLB MSHR allocs   %llu (peak %llu)\n",
                (unsigned long long)r.inTlbMshrAllocs,
                (unsigned long long)r.inTlbMshrPeak);
    std::printf("page walks           %llu\n", (unsigned long long)r.walks);
    std::printf("walk queue delay     %.1f cy\n", r.avgWalkQueueDelay);
    std::printf("walk access latency  %.1f cy\n", r.avgWalkAccessLatency);
    std::printf("translation latency  %.1f cy\n", r.avgTranslationLatency);
    std::printf("L2D miss rate        %.2f%%\n", 100.0 * r.l2dMissRate);
    std::printf("DRAM utilisation     %.2f%%\n",
                100.0 * r.dramUtilisation);
    std::printf("mem-stall fraction   %.2f%%\n",
                100.0 * r.stallFraction(opt.cfg.numSms));
    if (r.swBatches) {
        std::printf("PW warp batches      %llu (avg size %.1f)\n",
                    (unsigned long long)r.swBatches, r.swAvgBatchSize);
        std::printf("PW warp instructions %llu\n",
                    (unsigned long long)r.swInstructions);
        std::printf("to hardware/software %llu / %llu\n",
                    (unsigned long long)r.swToHardware,
                    (unsigned long long)r.swToSoftware);
    }
    std::printf("faults               %llu\n", (unsigned long long)r.faults);
    return 0;
}
