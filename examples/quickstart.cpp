/**
 * @file
 * Quickstart: simulate one irregular benchmark (bfs) on the baseline GPU
 * (32 hardware PTWs) and on SoftWalker, and print the headline comparison.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "sim/logging.hh"

using namespace sw;

int
main()
{
    setVerbose(false);

    const BenchmarkInfo &bench = findBenchmark("bfs");

    // Baseline: Table 3 machine, 32 hardware page-table walkers.
    GpuConfig base_cfg = makeDefaultConfig();
    base_cfg.mode = TranslationMode::HardwarePtw;

    // SoftWalker: PW Warps on every SM + In-TLB MSHR.
    GpuConfig sw_cfg = makeSoftWalkerConfig();

    std::printf("simulating %s (%s, %llu MB footprint)...\n",
                bench.abbr.c_str(), bench.fullName.c_str(),
                static_cast<unsigned long long>(bench.footprintMb));

    RunSpec base_spec;
    base_spec.cfg = base_cfg;
    base_spec.benchmark = &bench;
    RunResult base = run(std::move(base_spec));

    RunSpec soft_spec;
    soft_spec.cfg = sw_cfg;
    soft_spec.benchmark = &bench;
    RunResult soft = run(std::move(soft_spec));

    std::printf("\n%-28s %14s %14s\n", "metric", "baseline", "softwalker");
    std::printf("%-28s %14llu %14llu\n", "cycles",
                (unsigned long long)base.cycles,
                (unsigned long long)soft.cycles);
    std::printf("%-28s %14llu %14llu\n", "warp instructions",
                (unsigned long long)base.warpInstrs,
                (unsigned long long)soft.warpInstrs);
    std::printf("%-28s %14.4f %14.4f\n", "perf (instr/cycle)", base.perf,
                soft.perf);
    std::printf("%-28s %14.1f %14.1f\n", "avg walk queue delay (cy)",
                base.avgWalkQueueDelay, soft.avgWalkQueueDelay);
    std::printf("%-28s %14.1f %14.1f\n", "avg walk access lat (cy)",
                base.avgWalkAccessLatency, soft.avgWalkAccessLatency);
    std::printf("%-28s %14llu %14llu\n", "L2 TLB MSHR failures",
                (unsigned long long)base.l2MshrFailures,
                (unsigned long long)soft.l2MshrFailures);
    std::printf("%-28s %14llu %14llu\n", "page walks",
                (unsigned long long)base.walks,
                (unsigned long long)soft.walks);
    std::printf("%-28s %14.2f %14.2f\n", "L2 TLB MPKI", base.l2TlbMpki,
                soft.l2TlbMpki);
    std::printf("\nSoftWalker speedup over baseline: %.2fx\n",
                speedup(base, soft));
    return 0;
}
