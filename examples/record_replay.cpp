/**
 * @file
 * Record/replay walkthrough: capture a SoftWalker run's page-access
 * stream as a `.swtrace`, replay it, and demonstrate the determinism
 * contract — the replayed RunResult is field-identical to the recorded
 * one (doubles compared bit-for-bit).  See docs/TRACES.md.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "trace/trace_workload.hh"
#include "workload/benchmarks.hh"

using namespace sw;

int
main()
{
    setVerbose(false);
    const char *path = "bfs_example.swtrace";
    GpuConfig cfg = makeSoftWalkerConfig();

    // Keep the example quick: a short measured region.
    Gpu::RunLimits limits = defaultLimits();
    limits.warpInstrQuota = 2000;
    limits.warmupInstrs = 500;

    // 1. Record: run bfs with a TraceRecorder wrapped around it.  The
    //    trace header stamps the config digest and these limits.
    RunSpec record;
    record.cfg = cfg;
    record.benchmark = &findBenchmark("bfs");
    record.limits = limits;
    record.recordPath = path;
    RunResult recorded = run(std::move(record));
    std::printf("recorded  %s: %llu warp instrs, %llu cycles -> %s\n",
                recorded.benchmark.c_str(),
                (unsigned long long)recorded.warpInstrs,
                (unsigned long long)recorded.cycles, path);

    // 2. Inspect: the trace is a first-class workload.
    TraceWorkload trace(path);
    std::printf("trace     %zu streams, %llu instructions, digest %016llx\n",
                trace.numStreams(),
                (unsigned long long)trace.totalInstrs(),
                (unsigned long long)trace.recordedDigest());

    // 3. Replay under the recording configuration.  Limits come from the
    //    trace header, so the replay reruns exactly the captured region.
    RunSpec replay;
    replay.cfg = cfg;
    replay.replayPath = path;
    RunResult replayed = run(std::move(replay));
    std::printf("replayed  %s: %llu warp instrs, %llu cycles\n",
                replayed.benchmark.c_str(),
                (unsigned long long)replayed.warpInstrs,
                (unsigned long long)replayed.cycles);

    // 4. The contract: every RunResult field identical, bit for bit.
    bool identical = fingerprint(recorded) == fingerprint(replayed);
    std::printf("fingerprints %s\n",
                identical ? "MATCH (field-identical replay)" : "DIFFER");
    return identical ? 0 : 1;
}
