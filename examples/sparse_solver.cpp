/**
 * @file
 * Example: sparse linear-algebra workloads and the In-TLB MSHR.
 *
 * spmv/gesummv/syr2k stress the L2 TLB MSHR file the hardest; this example
 * sweeps the In-TLB MSHR capacity on them and shows the two anomalies the
 * paper discusses in §6.3: sy2k's TLB pollution and spmv's per-set
 * saturation.
 *
 *   ./build/examples/sparse_solver
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace sw;

int
main()
{
    setVerbose(false);
    const char *sparse_apps[] = {"spmv", "gesv", "sy2k"};
    const std::uint32_t capacities[] = {0, 128, 512, 1024};

    std::printf("In-TLB MSHR capacity sweep on the sparse suite\n");
    std::printf("(speedup over the 32-PTW hardware baseline)\n\n");

    TextTable table({"bench", "cap 0", "cap 128", "cap 512", "cap 1024",
                     "residual MSHR fails @1024"});
    for (const char *abbr : sparse_apps) {
        const BenchmarkInfo &info = findBenchmark(abbr);
        std::fprintf(stderr, "running %s...\n", abbr);
        RunSpec base_spec;
        base_spec.cfg = makeDefaultConfig();
        base_spec.benchmark = &info;
        RunResult base = run(std::move(base_spec));

        std::vector<std::string> row = {abbr};
        std::uint64_t residual = 0;
        for (std::uint32_t cap : capacities) {
            RunSpec spec;
            spec.cfg = makeSoftWalkerConfig(TranslationMode::SoftWalker,
                                            cap);
            spec.benchmark = &info;
            RunResult r = run(std::move(spec));
            row.push_back(TextTable::num(speedup(base, r)));
            if (cap == 1024)
                residual = r.l2MshrFailures;
        }
        row.push_back(strprintf("%llu", (unsigned long long)residual));
        table.addRow(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("spmv keeps residual MSHR failures even at capacity 1024: "
                "its column gathers pile onto a\nhandful of L2 TLB sets, "
                "and an In-TLB MSHR slot must live in the set of the "
                "missing VPN (§6.3).\n");
    return 0;
}
