/**
 * @file
 * Example: extending the framework — a custom workload and a UVM-style
 * demand-paging run.
 *
 * Shows the two main extension points of the public API:
 *   1. Deriving from Workload to model your own kernel's address stream.
 *   2. Driving the fault path: with map-on-demand disabled, walks on
 *      untouched pages fault into the Fault Buffer (the FFB instruction)
 *      and are replayed after the driver maps the page (§5.5).
 *
 *   ./build/examples/custom_walker_policy
 */

#include <cstdio>

#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "harness/experiment.hh"
#include "sim/logging.hh"

using namespace sw;

namespace {

/**
 * A pointer-chasing hash join probe: each warp alternates between a
 * streamed build-side scan and divergent probes into a hash table region.
 */
class HashJoinWorkload : public Workload
{
  public:
    explicit HashJoinWorkload(std::uint64_t table_bytes)
        : tableBytes(table_bytes)
    {
    }

    WarpInstr
    next(SmId sm, WarpId warp, Rng &rng) override
    {
        WarpInstr instr;
        instr.computeGap = 20;
        instr.activeLanes = 32;
        bool probe_phase = (++count % 3) != 0;
        std::uint64_t stream_pos =
            (std::uint64_t(sm) * 48 + warp) * 4096 + count * 128;
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            if (probe_phase) {
                // Divergent probes, clustered in buckets of 4 lanes.
                std::uint64_t bucket =
                    rng.range(tableBytes / 64) * 64;
                instr.addrs[lane] = kHeap + bucket + (lane % 4) * 8;
            } else {
                instr.addrs[lane] =
                    kHeap + tableBytes +
                    (stream_pos + lane * 8) % (256ull << 20);
            }
        }
        return instr;
    }

    std::uint64_t footprintBytes() const override
    {
        return tableBytes + (256ull << 20);
    }
    std::string name() const override { return "hashjoin"; }
    bool irregular() const override { return true; }

  private:
    static constexpr VirtAddr kHeap = 1ull << 34;
    std::uint64_t tableBytes;
    std::uint64_t count = 0;
};

} // namespace

int
main()
{
    setVerbose(false);

    // ---- Part 1: custom workload under all three machines ------------
    std::printf("== custom workload (hash join probe) ==\n");
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 8000;
    limits.warmupInstrs = 3000;
    limits.maxCycles = 4000000;

    auto run_join = [&limits](GpuConfig cfg) {
        RunSpec spec;
        spec.cfg = std::move(cfg);
        spec.workload = std::make_unique<HashJoinWorkload>(512ull << 20);
        spec.limits = limits;
        return run(std::move(spec));
    };
    RunResult base = run_join(makeDefaultConfig());
    RunResult soft = run_join(makeSoftWalkerConfig());
    std::printf("baseline perf %.4f instr/cy, SoftWalker %.4f instr/cy "
                "-> %.2fx\n",
                base.perf, soft.perf, speedup(base, soft));
    std::printf("walk latency: baseline %.0f cy (%.0f queued), SoftWalker "
                "%.0f cy (%.0f queued)\n\n",
                base.avgWalkTotalLatency, base.avgWalkQueueDelay,
                soft.avgWalkTotalLatency, soft.avgWalkQueueDelay);

    // ---- Part 2: demand paging through the fault buffer ---------------
    std::printf("== UVM-style demand paging (FFB path) ==\n");
    Gpu gpu(makeSoftWalkerConfig(),
            std::make_unique<HashJoinWorkload>(64ull << 20));
    installWalkBackend(gpu);
    // Disable OS map-on-touch: first-touch walks now fault, log the VPN
    // via FFB, and replay after the driver maps the page.
    gpu.engine().setMapOnDemand(false);
    Gpu::RunLimits fault_limits;
    fault_limits.warpInstrQuota = 600;
    fault_limits.maxCycles = 8000000;
    gpu.run(fault_limits);

    const TranslationEngine::Stats &stats = gpu.engine().stats();
    std::printf("walks completed: %llu, page faults serviced: %llu, "
                "fault-buffer records: %llu\n",
                (unsigned long long)stats.walksCompleted,
                (unsigned long long)stats.faults,
                (unsigned long long)gpu.engine().faultBuffer()
                    .stats().recorded);
    std::printf("every faulted page was mapped by the driver and the walk "
                "replayed — the PW Warp's FFB\ninstruction feeds the same "
                "fault protocol a hardware walker would (§5.5).\n");
    return 0;
}
