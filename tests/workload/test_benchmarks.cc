/** @file Tests for the Table 4 benchmark registry. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

TEST(Benchmarks, TwentyEntriesInPaperSplit)
{
    EXPECT_EQ(benchmarkSuite().size(), 20u);
    EXPECT_EQ(irregularSuite().size(), 12u);
    EXPECT_EQ(regularSuite().size(), 8u);
    EXPECT_EQ(scalableSuite().size(), 10u);
}

TEST(Benchmarks, AbbreviationsAreUnique)
{
    std::set<std::string> names;
    for (const auto &info : benchmarkSuite())
        names.insert(info.abbr);
    EXPECT_EQ(names.size(), 20u);
}

TEST(Benchmarks, Table4FootprintsMatchPaper)
{
    EXPECT_EQ(findBenchmark("bc").footprintMb, 1194u);
    EXPECT_EQ(findBenchmark("dc").footprintMb, 1138u);
    EXPECT_EQ(findBenchmark("sssp").footprintMb, 1788u);
    EXPECT_EQ(findBenchmark("gc").footprintMb, 1294u);
    EXPECT_EQ(findBenchmark("nw").footprintMb, 612u);
    EXPECT_EQ(findBenchmark("st2d").footprintMb, 612u);
    EXPECT_EQ(findBenchmark("xsb").footprintMb, 360u);
    EXPECT_EQ(findBenchmark("bfs").footprintMb, 1396u);
    EXPECT_EQ(findBenchmark("sy2k").footprintMb, 192u);
    EXPECT_EQ(findBenchmark("spmv").footprintMb, 288u);
    EXPECT_EQ(findBenchmark("gesv").footprintMb, 226u);
    EXPECT_EQ(findBenchmark("gups").footprintMb, 308u);
    EXPECT_EQ(findBenchmark("cc").footprintMb, 2306u);
    EXPECT_EQ(findBenchmark("kc").footprintMb, 1152u);
    EXPECT_EQ(findBenchmark("2dc").footprintMb, 1120u);
    EXPECT_EQ(findBenchmark("fft").footprintMb, 610u);
    EXPECT_EQ(findBenchmark("histo").footprintMb, 1124u);
    EXPECT_EQ(findBenchmark("red").footprintMb, 1124u);
    EXPECT_EQ(findBenchmark("scan").footprintMb, 516u);
    EXPECT_EQ(findBenchmark("gemm").footprintMb, 288u);
}

TEST(Benchmarks, Table4RequiredPtwsMatchPaper)
{
    EXPECT_EQ(findBenchmark("sy2k").paperRequiredPtws, 1024u);
    EXPECT_EQ(findBenchmark("gups").paperRequiredPtws, 1024u);
    EXPECT_EQ(findBenchmark("nw").paperRequiredPtws, 512u);
    EXPECT_EQ(findBenchmark("bc").paperRequiredPtws, 256u);
    for (const auto *info : regularSuite())
        EXPECT_EQ(info->paperRequiredPtws, 32u);
}

TEST(Benchmarks, IrregularsHaveHigherPaperMpkiThanRegulars)
{
    double min_irregular = 1e18;
    double max_regular = 0.0;
    for (const auto *info : irregularSuite())
        min_irregular = std::min(min_irregular, info->paperMpki);
    for (const auto *info : regularSuite())
        max_regular = std::max(max_regular, info->paperMpki);
    EXPECT_GT(min_irregular, max_regular);
}

TEST(Benchmarks, FactoriesProduceNamedWorkloads)
{
    for (const auto &info : benchmarkSuite()) {
        auto wl = makeWorkload(info);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), info.abbr);
        EXPECT_EQ(wl->irregular(), info.irregular);
        EXPECT_EQ(wl->footprintBytes(), info.footprintMb * 1024 * 1024);
    }
}

TEST(Benchmarks, FootprintScaleMultiplies)
{
    const BenchmarkInfo &info = findBenchmark("bfs");
    auto wl = makeWorkload(info, 2.0);
    EXPECT_EQ(wl->footprintBytes(), info.footprintMb * 1024 * 1024 * 2);
}

TEST(Benchmarks, GeneratorsProduceValidInstructions)
{
    Rng rng(1);
    for (const auto &info : benchmarkSuite()) {
        auto wl = makeWorkload(info);
        for (int i = 0; i < 20; ++i) {
            WarpInstr instr = wl->next(SmId(i % 4), WarpId(i % 8), rng);
            ASSERT_GE(instr.activeLanes, 1u);
            ASSERT_LE(instr.activeLanes, 32u);
        }
    }
}

TEST(Benchmarks, ScalableSubsetIsIrregular)
{
    for (const auto *info : scalableSuite())
        EXPECT_TRUE(info->irregular) << info->abbr;
}

TEST(BenchmarksDeath, UnknownAbbreviationIsFatal)
{
    EXPECT_DEATH(findBenchmark("nope"), "unknown benchmark");
}

} // namespace
