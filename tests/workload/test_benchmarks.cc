/** @file Tests for the Table 4 benchmark registry. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

TEST(Benchmarks, TwentyEntriesInPaperSplit)
{
    EXPECT_EQ(benchmarkSuite().size(), 20u);
    EXPECT_EQ(irregularSuite().size(), 12u);
    EXPECT_EQ(regularSuite().size(), 8u);
    EXPECT_EQ(scalableSuite().size(), 10u);
}

TEST(Benchmarks, AbbreviationsAreUnique)
{
    std::set<std::string> names;
    for (const auto &info : benchmarkSuite())
        names.insert(info.abbr);
    EXPECT_EQ(names.size(), 20u);
}

TEST(Benchmarks, Table4FootprintsMatchPaper)
{
    EXPECT_EQ(findBenchmark("bc").footprintMb, 1194u);
    EXPECT_EQ(findBenchmark("dc").footprintMb, 1138u);
    EXPECT_EQ(findBenchmark("sssp").footprintMb, 1788u);
    EXPECT_EQ(findBenchmark("gc").footprintMb, 1294u);
    EXPECT_EQ(findBenchmark("nw").footprintMb, 612u);
    EXPECT_EQ(findBenchmark("st2d").footprintMb, 612u);
    EXPECT_EQ(findBenchmark("xsb").footprintMb, 360u);
    EXPECT_EQ(findBenchmark("bfs").footprintMb, 1396u);
    EXPECT_EQ(findBenchmark("sy2k").footprintMb, 192u);
    EXPECT_EQ(findBenchmark("spmv").footprintMb, 288u);
    EXPECT_EQ(findBenchmark("gesv").footprintMb, 226u);
    EXPECT_EQ(findBenchmark("gups").footprintMb, 308u);
    EXPECT_EQ(findBenchmark("cc").footprintMb, 2306u);
    EXPECT_EQ(findBenchmark("kc").footprintMb, 1152u);
    EXPECT_EQ(findBenchmark("2dc").footprintMb, 1120u);
    EXPECT_EQ(findBenchmark("fft").footprintMb, 610u);
    EXPECT_EQ(findBenchmark("histo").footprintMb, 1124u);
    EXPECT_EQ(findBenchmark("red").footprintMb, 1124u);
    EXPECT_EQ(findBenchmark("scan").footprintMb, 516u);
    EXPECT_EQ(findBenchmark("gemm").footprintMb, 288u);
}

TEST(Benchmarks, Table4RequiredPtwsMatchPaper)
{
    EXPECT_EQ(findBenchmark("sy2k").paperRequiredPtws, 1024u);
    EXPECT_EQ(findBenchmark("gups").paperRequiredPtws, 1024u);
    EXPECT_EQ(findBenchmark("nw").paperRequiredPtws, 512u);
    EXPECT_EQ(findBenchmark("bc").paperRequiredPtws, 256u);
    for (const auto *info : regularSuite())
        EXPECT_EQ(info->paperRequiredPtws, 32u);
}

TEST(Benchmarks, IrregularsHaveHigherPaperMpkiThanRegulars)
{
    double min_irregular = 1e18;
    double max_regular = 0.0;
    for (const auto *info : irregularSuite())
        min_irregular = std::min(min_irregular, info->paperMpki);
    for (const auto *info : regularSuite())
        max_regular = std::max(max_regular, info->paperMpki);
    EXPECT_GT(min_irregular, max_regular);
}

TEST(Benchmarks, FactoriesProduceNamedWorkloads)
{
    for (const auto &info : benchmarkSuite()) {
        auto wl = makeWorkload(info);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), info.abbr);
        EXPECT_EQ(wl->irregular(), info.irregular);
        EXPECT_EQ(wl->footprintBytes(), info.footprintMb * 1024 * 1024);
    }
}

TEST(Benchmarks, FootprintScaleMultiplies)
{
    const BenchmarkInfo &info = findBenchmark("bfs");
    auto wl = makeWorkload(info, 2.0);
    EXPECT_EQ(wl->footprintBytes(), info.footprintMb * 1024 * 1024 * 2);
}

TEST(Benchmarks, GeneratorsProduceValidInstructions)
{
    Rng rng(1);
    for (const auto &info : benchmarkSuite()) {
        auto wl = makeWorkload(info);
        for (int i = 0; i < 20; ++i) {
            WarpInstr instr = wl->next(SmId(i % 4), WarpId(i % 8), rng);
            ASSERT_GE(instr.activeLanes, 1u);
            ASSERT_LE(instr.activeLanes, 32u);
        }
    }
}

TEST(Benchmarks, ScalableSubsetIsIrregular)
{
    for (const auto *info : scalableSuite())
        EXPECT_TRUE(info->irregular) << info->abbr;
}

TEST(BenchmarksDeath, UnknownAbbreviationIsFatal)
{
    EXPECT_DEATH(findBenchmark("nope"), "unknown benchmark");
}

TEST(BenchmarksDeath, UnknownAbbreviationListsValidNames)
{
    // The diagnostic enumerates the registry so a typo is self-serviced.
    EXPECT_DEATH(findBenchmark("bsf"), "valid:.*bfs");
}

TEST(WorkloadRegistry, FindBenchmarkOrNull)
{
    ASSERT_NE(findBenchmarkOrNull("bfs"), nullptr);
    EXPECT_EQ(findBenchmarkOrNull("bfs")->abbr, "bfs");
    EXPECT_EQ(findBenchmarkOrNull("nope"), nullptr);
    EXPECT_EQ(findBenchmarkOrNull(""), nullptr);
}

TEST(WorkloadRegistry, ListsEveryTable4EntryByName)
{
    std::vector<std::string> names = registeredWorkloads();
    std::set<std::string> set(names.begin(), names.end());
    for (const auto &info : benchmarkSuite())
        EXPECT_TRUE(set.count(info.abbr)) << info.abbr;
}

TEST(WorkloadRegistry, ListsTheTraceScheme)
{
    // Registered by src/trace; exact names lead (sorted), schemes trail.
    std::vector<std::string> names = registeredWorkloads();
    EXPECT_NE(std::find(names.begin(), names.end(), "trace:…"),
              names.end());
}

TEST(WorkloadRegistry, MakeByNameMatchesMakeByInfo)
{
    auto by_name = makeWorkload(std::string("bfs"), 2.0);
    auto by_info = makeWorkload(findBenchmark("bfs"), 2.0);
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->name(), by_info->name());
    EXPECT_EQ(by_name->footprintBytes(), by_info->footprintBytes());
    EXPECT_EQ(by_name->irregular(), by_info->irregular());
}

TEST(WorkloadRegistry, UserRegistrationIsReachable)
{
    class Fixed : public Workload
    {
      public:
        WarpInstr
        next(SmId, WarpId, Rng &) override
        {
            WarpInstr instr;
            instr.activeLanes = 1;
            instr.addrs[0] = 0x1000;
            return instr;
        }
        std::uint64_t footprintBytes() const override { return 4096; }
        std::string name() const override { return "fixed"; }
        bool irregular() const override { return false; }
    };

    registerWorkload("test-fixed", [](double) {
        return std::make_unique<Fixed>();
    });
    auto wl = makeWorkload(std::string("test-fixed"));
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), "fixed");

    std::vector<std::string> names = registeredWorkloads();
    EXPECT_NE(std::find(names.begin(), names.end(), "test-fixed"),
              names.end());
}

TEST(WorkloadRegistry, SchemeHandlerReceivesTheRest)
{
    std::string captured;
    registerWorkloadScheme(
        "echo", [&captured](const std::string &rest, double)
                    -> std::unique_ptr<Workload> {
            captured = rest;
            return nullptr;
        });
    // A scheme may legitimately return nullptr only in tests; the real
    // trace scheme always produces a workload or dies.
    makeWorkload(std::string("echo:hello:world"));
    EXPECT_EQ(captured, "hello:world")
        << "everything after the first ':' belongs to the scheme";
}

TEST(WorkloadRegistryDeath, UnknownNameIsFatalAndListsNames)
{
    EXPECT_DEATH(makeWorkload(std::string("nope")),
                 "unknown benchmark.*valid:");
}

TEST(WorkloadRegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(
        {
            registerWorkload("test-dup", [](double) {
                return std::unique_ptr<Workload>();
            });
            registerWorkload("test-dup", [](double) {
                return std::unique_ptr<Workload>();
            });
        },
        "registered twice");
}

} // namespace
