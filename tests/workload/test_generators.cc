/** @file Unit & property tests for the synthetic workload generators. */

#include <gtest/gtest.h>

#include <set>

#include "workload/generators.hh"

using namespace sw;

namespace {

constexpr std::uint64_t kMB = 1024 * 1024;
constexpr std::uint64_t kPage = 64 * 1024;

/** Count distinct 64 KB pages one instruction touches. */
std::size_t
distinctPages(const WarpInstr &instr)
{
    std::set<std::uint64_t> pages;
    for (std::uint32_t lane = 0; lane < instr.activeLanes; ++lane)
        pages.insert(instr.addrs[lane] / kPage);
    return pages.size();
}

TEST(StreamingWorkload, LanesAreContiguous)
{
    StreamingWorkload::Params params;
    StreamingWorkload wl("s", 64 * kMB, false, 10, params);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    for (std::uint32_t lane = 1; lane < 32; ++lane)
        EXPECT_EQ(instr.addrs[lane], instr.addrs[lane - 1] + 4);
    EXPECT_EQ(distinctPages(instr), 1u);
}

TEST(StreamingWorkload, CursorAdvances)
{
    StreamingWorkload::Params params;
    StreamingWorkload wl("s", 64 * kMB, false, 10, params);
    Rng rng(1);
    WarpInstr a = wl.next(0, 0, rng);
    WarpInstr b = wl.next(0, 0, rng);
    EXPECT_EQ(b.addrs[0], a.addrs[0] + 128);
}

TEST(StreamingWorkload, WarpsOnOneSmShareTheStream)
{
    StreamingWorkload::Params params;
    StreamingWorkload wl("s", 64 * kMB, false, 10, params);
    Rng rng(1);
    WarpInstr a = wl.next(0, 0, rng);
    WarpInstr b = wl.next(0, 5, rng);
    EXPECT_EQ(b.addrs[0], a.addrs[0] + 128) << "shared per-SM cursor";
}

TEST(StreamingWorkload, DistinctSmsHaveDistinctPartitions)
{
    StreamingWorkload::Params params;
    StreamingWorkload wl("s", 512 * kMB, false, 10, params);
    Rng rng(1);
    WarpInstr a = wl.next(0, 0, rng);
    WarpInstr b = wl.next(1, 0, rng);
    EXPECT_NE(a.addrs[0] / kPage, b.addrs[0] / kPage);
}

TEST(StreamingWorkload, MultiStreamRotates)
{
    StreamingWorkload::Params params;
    params.numStreams = 3;
    params.streamPitchBytes = 8 * kMB;
    StreamingWorkload wl("st", 64 * kMB, true, 10, params);
    Rng rng(1);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 9; ++i)
        pages.insert(wl.next(0, 0, rng).addrs[0] / kPage);
    EXPECT_GE(pages.size(), 3u);
}

TEST(StreamingWorkload, AddressesStayInFootprint)
{
    StreamingWorkload::Params params;
    params.strideBytes = 8 * 1024;
    StreamingWorkload wl("s", 16 * kMB, false, 10, params);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            EXPECT_GE(instr.addrs[lane], 1ull << 34);
            EXPECT_LT(instr.addrs[lane], (1ull << 34) + 16 * kMB);
        }
    }
}

TEST(RandomAccessWorkload, FullyColdIsHighlyDivergent)
{
    RandomAccessWorkload wl("gups", 512 * kMB, 10, /*cold=*/1.0);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_TRUE(instr.write);
    EXPECT_GE(distinctPages(instr), 28u);
}

TEST(RandomAccessWorkload, HotRegionReducesDivergenceScope)
{
    RandomAccessWorkload wl("gups", 512 * kMB, 10, /*cold=*/0.0);
    Rng rng(1);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 50; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 32; ++lane)
            pages.insert(instr.addrs[lane] / kPage);
    }
    EXPECT_LE(pages.size(), 512u) << "static hot window bounds the reach";
}

TEST(GraphWorkload, GatherFractionZeroIsPureStream)
{
    GraphWorkload::Params params;
    params.gatherFraction = 0.0;
    params.pagesPerInstr = 0.1;
    GraphWorkload wl("g", 256 * kMB, true, 10, params);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_EQ(distinctPages(instr), 1u);
}

TEST(GraphWorkload, GatherBasesBoundDivergence)
{
    GraphWorkload::Params params;
    params.gatherFraction = 1.0;
    params.gatherBases = 4;
    params.pagesPerInstr = 0.5;
    GraphWorkload wl("g", 256 * kMB, true, 10, params);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_LE(distinctPages(instr), 8u) << "4 bases, runs may straddle";
}

TEST(GraphWorkload, WindowSlidesWithInstructions)
{
    GraphWorkload::Params params;
    params.gatherFraction = 1.0;
    params.windowPages = 4;
    params.pagesPerInstr = 2.0;
    GraphWorkload wl("g", 256 * kMB, true, 10, params);
    Rng rng(1);
    std::set<std::uint64_t> early, late;
    for (int i = 0; i < 5; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 4; ++lane)
            early.insert(instr.addrs[lane] / kPage);
    }
    for (int i = 0; i < 200; ++i)
        wl.next(0, 0, rng);
    for (int i = 0; i < 5; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 4; ++lane)
            late.insert(instr.addrs[lane] / kPage);
    }
    // After 200 instructions at 2 pages/instr the window moved far away.
    for (std::uint64_t page : late)
        EXPECT_EQ(early.count(page), 0u);
}

TEST(GraphWorkload, ColdFractionEscapesWindow)
{
    GraphWorkload::Params params;
    params.gatherFraction = 1.0;
    params.coldFraction = 1.0;
    params.windowPages = 2;
    params.pagesPerInstr = 0.0;
    GraphWorkload wl("g", 1024 * kMB, true, 10, params);
    Rng rng(1);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 30; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 32; ++lane)
            pages.insert(instr.addrs[lane] / kPage);
    }
    EXPECT_GT(pages.size(), 100u);
}

TEST(SparseWorkload, SetStrideClustersGatherPages)
{
    SparseWorkload::Params params;
    params.gatherFraction = 1.0;
    params.setStridePages = 16;
    params.pagesPerInstr = 0.0;   // pure set-conflict mode
    SparseWorkload wl("spmv", 288 * kMB, 10, params);
    Rng rng(1);
    std::set<std::uint64_t> sets;
    for (int i = 0; i < 100; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            std::uint64_t vpn = (instr.addrs[lane] - (1ull << 34)) / kPage;
            sets.insert(vpn % 64);   // RTX3070 L2 TLB has 64 sets
        }
    }
    EXPECT_LE(sets.size(), 4u)
        << "spmv gathers contend for a handful of L2 TLB sets";
}

TEST(SparseWorkload, MixedModeAlternatesStrideAndWindow)
{
    // With both a window slide and a set-stride configured, half the
    // gather bases stay set-clustered and half follow the sliding window.
    SparseWorkload::Params params;
    params.gatherFraction = 1.0;
    params.setStridePages = 16;
    params.pagesPerInstr = 2.0;
    SparseWorkload wl("spmv", 288 * kMB, 10, params);
    Rng rng(1);
    std::set<std::uint64_t> clustered_sets;
    std::size_t clustered = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            std::uint64_t vpn = (instr.addrs[lane] - (1ull << 34)) / kPage;
            ++total;
            if (vpn % 16 == 0) {
                ++clustered;
                clustered_sets.insert(vpn % 64);
            }
        }
    }
    EXPECT_GT(double(clustered) / double(total), 0.3);
    EXPECT_LE(clustered_sets.size(), 4u);
}

TEST(GraphWorkload, WindowSpreadScattersSlotsAcrossLargePages)
{
    GraphWorkload::Params params;
    params.gatherFraction = 1.0;
    params.windowPages = 16;
    params.pagesPerInstr = 0.0;
    GraphWorkload contiguous("g", 1024 * kMB, true, 10, params);
    GraphWorkload spread("g", 1024 * kMB, true, 10, params);
    spread.setWindowSpread(2 * kMB + 64 * 1024);

    Rng rng_a(1), rng_b(1);
    std::set<std::uint64_t> big_pages_contig, big_pages_spread;
    constexpr std::uint64_t kBig = 2 * kMB;
    for (int i = 0; i < 40; ++i) {
        WarpInstr a = contiguous.next(0, 0, rng_a);
        WarpInstr b = spread.next(0, 0, rng_b);
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            big_pages_contig.insert(a.addrs[lane] / kBig);
            big_pages_spread.insert(b.addrs[lane] / kBig);
        }
    }
    // A contiguous 1 MB window fits in one or two 2 MB pages; the spread
    // window lands each 64 KB slot on its own 2 MB page.
    EXPECT_LE(big_pages_contig.size(), 2u);
    EXPECT_GE(big_pages_spread.size(), 10u);
}

TEST(GraphWorkload, WindowSpreadKeepsSmallPageCountSimilar)
{
    GraphWorkload::Params params;
    params.gatherFraction = 1.0;
    params.windowPages = 16;
    params.pagesPerInstr = 0.0;
    GraphWorkload contiguous("g", 1024 * kMB, true, 10, params);
    GraphWorkload spread("g", 1024 * kMB, true, 10, params);
    spread.setWindowSpread(2 * kMB + 64 * 1024);

    Rng rng_a(1), rng_b(1);
    std::set<std::uint64_t> pages_a, pages_b;
    for (int i = 0; i < 60; ++i) {
        WarpInstr a = contiguous.next(0, 0, rng_a);
        WarpInstr b = spread.next(0, 0, rng_b);
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            pages_a.insert(a.addrs[lane] / kPage);
            pages_b.insert(b.addrs[lane] / kPage);
        }
    }
    // 64 KB translation behaviour is unchanged: same window slot count.
    EXPECT_NEAR(double(pages_a.size()), double(pages_b.size()),
                double(pages_a.size()) * 0.4 + 4);
}

TEST(WavefrontWorkload, LanesSpreadAcrossBand)
{
    WavefrontWorkload::Params params;
    params.windowPages = 32;
    WavefrontWorkload wl("nw", 612 * kMB, 10, params);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_GE(distinctPages(instr), 16u)
        << "anti-diagonal lanes land on distinct rows/pages";
}

TEST(HashProbeWorkload, ProbesClusterIntoGroups)
{
    HashProbeWorkload wl("xsb", 360 * kMB, 10, 0.0, 28, 1.0);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_LE(distinctPages(instr), 10u);
    EXPECT_GE(distinctPages(instr), 2u);
}

TEST(HistogramWorkload, AlternatesStreamAndTablePhases)
{
    HistogramWorkload wl("h", 512 * kMB, 10, /*table=*/1 * kMB);
    Rng rng(1);
    bool saw_write = false, saw_read = false;
    for (int i = 0; i < 64; ++i) {
        WarpInstr instr = wl.next(0, 0, rng);
        (instr.write ? saw_write : saw_read) = true;
    }
    EXPECT_TRUE(saw_write);
    EXPECT_TRUE(saw_read);
}

TEST(PointerChaseWorkload, OneActiveLane)
{
    PointerChaseWorkload wl(128 * kMB);
    Rng rng(1);
    WarpInstr instr = wl.next(0, 0, rng);
    EXPECT_EQ(instr.activeLanes, 1u);
    EXPECT_EQ(instr.addrs[0] % 128, 0u) << "distinct cache lines (Fig 4)";
}

TEST(PointerChaseWorkload, AddressesAreScattered)
{
    PointerChaseWorkload wl(512 * kMB);
    Rng rng(1);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 100; ++i)
        pages.insert(wl.next(0, 0, rng).addrs[0] / kPage);
    EXPECT_GT(pages.size(), 90u);
}

TEST(SyntheticWorkloadDeath, ZeroFootprintRejected)
{
    StreamingWorkload::Params params;
    EXPECT_DEATH(StreamingWorkload("bad", 0, false, 1, params),
                 "footprint");
}

/** Property: every generator keeps addresses element-aligned and inside
 *  [heap, heap+footprint). */
class GeneratorBounds : public ::testing::TestWithParam<int>
{
  public:
    static std::unique_ptr<Workload>
    make(int kind)
    {
        switch (kind) {
          case 0: {
            StreamingWorkload::Params params;
            return std::make_unique<StreamingWorkload>("s", 128 * kMB,
                                                       false, 5, params);
          }
          case 1:
            return std::make_unique<RandomAccessWorkload>("r", 128 * kMB,
                                                          5, 0.5);
          case 2: {
            GraphWorkload::Params params;
            params.pagesPerInstr = 0.5;
            return std::make_unique<GraphWorkload>("g", 128 * kMB, true,
                                                   5, params);
          }
          case 3: {
            SparseWorkload::Params params;
            params.pagesPerInstr = 1.0;
            return std::make_unique<SparseWorkload>("sp", 128 * kMB, 5,
                                                    params);
          }
          case 4:
            return std::make_unique<HashProbeWorkload>("x", 128 * kMB, 5);
          case 5: {
            WavefrontWorkload::Params params;
            return std::make_unique<WavefrontWorkload>("w", 128 * kMB, 5,
                                                       params);
          }
          default:
            return std::make_unique<HistogramWorkload>("h", 128 * kMB, 5);
        }
    }
};

TEST_P(GeneratorBounds, AddressesInBounds)
{
    auto wl = make(GetParam());
    Rng rng(123);
    constexpr VirtAddr heap = 1ull << 34;
    for (int i = 0; i < 500; ++i) {
        WarpInstr instr = wl->next(SmId(i % 4), WarpId(i % 8), rng);
        ASSERT_GE(instr.activeLanes, 1u);
        ASSERT_LE(instr.activeLanes, 32u);
        for (std::uint32_t lane = 0; lane < instr.activeLanes; ++lane) {
            ASSERT_GE(instr.addrs[lane], heap);
            ASSERT_LT(instr.addrs[lane], heap + 130 * kMB)
                << "generator " << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorBounds,
                         ::testing::Range(0, 7));

} // namespace
