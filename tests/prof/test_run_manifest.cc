/**
 * @file
 * RunManifest tests: collect() fills the build/host facts, the JSON form
 * is valid and embeds cleanly, and the optional run facts (digest,
 * benchmark, limits) appear exactly when set.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "prof/run_manifest.hh"
#include "swbench.hh"

using namespace sw;

namespace {

TEST(RunManifest, CollectFillsBuildAndHostFacts)
{
    RunManifest manifest = RunManifest::collect();
    // CMake bakes these in for every sw_prof consumer; "unknown" would
    // mean the SW_BUILD_* definitions fell off the target.
    EXPECT_NE(manifest.compiler, "unknown");
    EXPECT_NE(manifest.buildType, "unknown");
    EXPECT_FALSE(manifest.hostname.empty());
    EXPECT_GE(manifest.hardwareConcurrency, 1u);
}

TEST(RunManifest, JsonIsValidAndRunFactsAreConditional)
{
    RunManifest manifest = RunManifest::collect();
    std::string bare = manifest.toJson();
    EXPECT_EQ(bare.find("\"config_digest\""), std::string::npos);
    EXPECT_EQ(bare.find("\"benchmark\""), std::string::npos);
    EXPECT_EQ(bare.find("\"limits\""), std::string::npos);

    manifest.configDigest = 0x1234;
    manifest.benchmark = "bfs";
    manifest.warpInstrQuota = 1500;
    manifest.warmupInstrs = 300;
    manifest.maxCycles = 4000000;
    std::string full = manifest.toJson();

    sw::bench::MetricMap metrics;
    std::string err;
    ASSERT_TRUE(sw::bench::flattenJson(full, metrics, err)) << err;
    EXPECT_EQ(metrics.at("limits.quota"), 1500.0);
    EXPECT_EQ(metrics.at("limits.warmup"), 300.0);
    EXPECT_EQ(metrics.at("limits.max_cycles"), 4000000.0);
    EXPECT_NE(full.find("\"config_digest\": \"0x0000000000001234\""),
              std::string::npos);
    EXPECT_NE(full.find("\"benchmark\": \"bfs\""), std::string::npos);
    EXPECT_NE(full.find("\"schema\": \"softwalker.manifest/1\""),
              std::string::npos);
}

TEST(RunManifest, EscapesHostileStrings)
{
    RunManifest manifest = RunManifest::collect();
    manifest.benchmark = "quote\"back\\slash\nnewline";
    sw::bench::MetricMap metrics;
    std::string err;
    ASSERT_TRUE(sw::bench::flattenJson(manifest.toJson(), metrics, err))
        << err;
}

TEST(RunManifest, IndentedEmbeddingStaysOnItsColumn)
{
    RunManifest manifest = RunManifest::collect();
    std::ostringstream out;
    out << "{\n  \"manifest\": ";
    manifest.writeJson(out, 2);
    out << "\n}";
    sw::bench::MetricMap metrics;
    std::string err;
    ASSERT_TRUE(sw::bench::flattenJson(out.str(), metrics, err)) << err;
    EXPECT_EQ(metrics.count("manifest.hardware_concurrency"), 1u);
}

} // namespace
