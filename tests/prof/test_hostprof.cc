/**
 * @file
 * Host self-profiler unit tests.  The zone arithmetic (self vs total
 * time, nesting, reentrancy, overflow drops) is driven through the
 * detail enter/exit API with *synthetic* timestamps, so these tests are
 * exact and build-independent — they run identically whether or not
 * SOFTWALKER_HOSTPROF compiled the SW_PROF macros in.  The end-to-end
 * sweep test (merged hit counts deterministic across worker counts) is
 * the only part gated on the hostprof build, because only there do the
 * macros record anything.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "prof/hostprof.hh"
#include "prof/run_manifest.hh"
#include "swbench.hh"
#include "workload/benchmarks.hh"

using namespace sw;
using prof::HostProfiler;
using prof::Zone;

namespace {

/** Fresh profiler state; zones and gauges from earlier tests vanish. */
void
resetProfiler()
{
    HostProfiler::instance().setEnabled(false);
    HostProfiler::instance().reset();
}

std::uint64_t
selfNs(const prof::ProfileSnapshot &snap, Zone zone)
{
    return snap.zones[static_cast<std::size_t>(zone)].selfNanos;
}

std::uint64_t
totalNs(const prof::ProfileSnapshot &snap, Zone zone)
{
    return snap.zones[static_cast<std::size_t>(zone)].totalNanos;
}

std::uint64_t
hits(const prof::ProfileSnapshot &snap, Zone zone)
{
    return snap.zones[static_cast<std::size_t>(zone)].hits;
}

TEST(HostProfZones, SelfTimeExcludesNestedZones)
{
    resetProfiler();
    prof::detail::ThreadRecord &rec = prof::detail::threadRecord();

    // SimLoop [100..300] containing EventDispatch [110..250] containing
    // TlbLookup [120..180]: self times must partition the 200ns span.
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::SimLoop, 100));
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::EventDispatch, 110));
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::TlbLookup, 120));
    prof::detail::zoneExit(rec, 180);
    prof::detail::zoneExit(rec, 250);
    prof::detail::zoneExit(rec, 300);

    prof::ProfileSnapshot snap = HostProfiler::instance().snapshot();
    EXPECT_EQ(totalNs(snap, Zone::SimLoop), 200u);
    EXPECT_EQ(selfNs(snap, Zone::SimLoop), 60u);   // 200 - 140 nested
    EXPECT_EQ(totalNs(snap, Zone::EventDispatch), 140u);
    EXPECT_EQ(selfNs(snap, Zone::EventDispatch), 80u);  // 140 - 60
    EXPECT_EQ(totalNs(snap, Zone::TlbLookup), 60u);
    EXPECT_EQ(selfNs(snap, Zone::TlbLookup), 60u);
    EXPECT_EQ(snap.attributedNanos, 200u);  // selves partition the span
    EXPECT_EQ(snap.zoneDrops, 0u);
}

TEST(HostProfZones, ReentrantSameZoneNesting)
{
    resetProfiler();
    prof::detail::ThreadRecord &rec = prof::detail::threadRecord();

    // EventDispatch [0..100] nesting another EventDispatch [20..60]
    // (an event handler draining the queue synchronously).  Total
    // double-counts the overlap by design; self must not.
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::EventDispatch, 0));
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::EventDispatch, 20));
    prof::detail::zoneExit(rec, 60);
    prof::detail::zoneExit(rec, 100);

    prof::ProfileSnapshot snap = HostProfiler::instance().snapshot();
    EXPECT_EQ(hits(snap, Zone::EventDispatch), 2u);
    EXPECT_EQ(totalNs(snap, Zone::EventDispatch), 140u);  // 100 + 40
    EXPECT_EQ(selfNs(snap, Zone::EventDispatch), 100u);   // 60 + 40
    EXPECT_EQ(snap.attributedNanos, 100u);
}

TEST(HostProfZones, StackOverflowDropsNotCorrupts)
{
    resetProfiler();
    prof::detail::ThreadRecord &rec = prof::detail::threadRecord();

    std::uint64_t when = 0;
    std::vector<bool> entered;
    for (int i = 0; i < 70; ++i)
        entered.push_back(
            prof::detail::zoneEnter(rec, Zone::CacheDram, ++when));
    // Exactly the frames past the fixed-depth stack are refused.
    int accepted = 0;
    for (bool ok : entered)
        accepted += ok ? 1 : 0;
    EXPECT_EQ(accepted, 64);
    EXPECT_FALSE(entered.back());
    for (int i = 0; i < accepted; ++i)
        prof::detail::zoneExit(rec, 1000 + std::uint64_t(i));

    prof::ProfileSnapshot snap = HostProfiler::instance().snapshot();
    EXPECT_EQ(hits(snap, Zone::CacheDram), 64u);
    EXPECT_EQ(snap.zoneDrops, 6u);
}

TEST(HostProfGauges, MaximaAndOrdering)
{
    resetProfiler();
    HostProfiler::gaugeSample(1000, 10, 5, 8);
    HostProfiler::gaugeSample(2000, 30, 7, 9);
    HostProfiler::gaugeSample(3000, 20, 6, 9);

    prof::ProfileSnapshot snap = HostProfiler::instance().snapshot();
    EXPECT_EQ(snap.gaugeCount, 3u);
    EXPECT_EQ(snap.maxQueueDepth, 30u);
    EXPECT_EQ(snap.maxSlabLive, 7u);
    EXPECT_EQ(snap.maxSlabCapacity, 9u);

    prof::GaugeSample samples[8];
    std::size_t n = 0;
    HostProfiler::instance().gaugeSamples(samples, 8, n);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(samples[0].simCycle, 1000u);
    EXPECT_EQ(samples[1].simCycle, 2000u);
    EXPECT_EQ(samples[2].simCycle, 3000u);
    EXPECT_LE(samples[0].wallNanos, samples[1].wallNanos);
    EXPECT_LE(samples[1].wallNanos, samples[2].wallNanos);
}

TEST(HostProfJson, ProfileArtifactIsValidJson)
{
    resetProfiler();
    prof::detail::ThreadRecord &rec = prof::detail::threadRecord();
    ASSERT_TRUE(prof::detail::zoneEnter(rec, Zone::SimLoop, 100));
    prof::detail::zoneExit(rec, 400);
    HostProfiler::gaugeSample(500, 4, 2, 3);

    RunManifest manifest = RunManifest::collect();
    manifest.benchmark = "unit";
    manifest.configDigest = 0xdeadbeefu;
    std::ostringstream out;
    HostProfiler::instance().writeJson(out, &manifest);

    // The swbench flattener doubles as a strict-enough JSON validator,
    // and keying the zone array by name is what the regression gate
    // relies on.
    sw::bench::MetricMap metrics;
    std::string err;
    ASSERT_TRUE(sw::bench::flattenJson(out.str(), metrics, err)) << err;
    EXPECT_EQ(metrics.at("zones.sim_loop.self_ns"), 300.0);
    EXPECT_EQ(metrics.at("zones.sim_loop.hits"), 1.0);
    EXPECT_EQ(metrics.at("gauges.queue_depth_max"), 4.0);
    EXPECT_EQ(metrics.at("attributed_ns"), 300.0);
    EXPECT_EQ(metrics.count("manifest.hardware_concurrency"), 1u);
    EXPECT_EQ(metrics.at("compiled"),
              prof::kHostProfCompiled ? 1.0 : 0.0);
}

TEST(HostProfSweep, MergedHitCountsDeterministicAcrossWorkerCounts)
{
    if (!prof::kHostProfCompiled)
        GTEST_SKIP() << "SW_PROF zones compiled out in this build";

    // Zone *times* are host noise; zone *hit counts* derive from the
    // (deterministic) event stream, so a merged snapshot must agree
    // between a serial and an SW_JOBS=8 sweep of the same jobs.
    auto sweepHits = [](unsigned jobs) {
        resetProfiler();
        HostProfiler::instance().setEnabled(true);
        SweepRunner runner(jobs);
        for (const BenchmarkInfo *info :
             {&findBenchmark("bfs"), &findBenchmark("sssp")}) {
            SweepJob job;
            job.cfg = makeSoftWalkerConfig();
            job.info = info;
            job.limits = limitsFor(*info);
            job.limits.warpInstrQuota = 400;
            job.limits.warmupInstrs = 100;
            runner.submit(std::move(job));
        }
        runner.run();
        prof::ProfileSnapshot snap = HostProfiler::instance().snapshot();
        HostProfiler::instance().setEnabled(false);
        std::vector<std::uint64_t> out;
        for (std::size_t z = 0; z < prof::kNumZones; ++z)
            out.push_back(snap.zones[z].hits);
        return out;
    };

    std::vector<std::uint64_t> serial = sweepHits(1);
    std::vector<std::uint64_t> parallel = sweepHits(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_GT(serial[static_cast<std::size_t>(Zone::EventDispatch)], 0u);
    resetProfiler();
}

} // namespace
