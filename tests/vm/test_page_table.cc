/** @file Unit & property tests for the radix page table. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "vm/page_table.hh"

using namespace sw;

namespace {

class RadixPageTableTest : public ::testing::Test
{
  protected:
    RadixPageTableTest()
        : geom(64 * 1024), alloc(64 * 1024), pt(geom, alloc)
    {
    }

    PageGeometry geom;
    FrameAllocator alloc;
    RadixPageTable pt;
};

TEST_F(RadixPageTableTest, FourLevelsFor64KPages)
{
    EXPECT_EQ(pt.topLevel(), 4);
    // 33 VPN bits split {9,8,8,8} top..leaf.
    EXPECT_EQ(pt.bitsBelow(4), 24u);
    EXPECT_EQ(pt.bitsBelow(1), 0u);
}

TEST_F(RadixPageTableTest, ThreeLevelsFor2MPages)
{
    PageGeometry big(2ull * 1024 * 1024);
    FrameAllocator big_alloc(2ull * 1024 * 1024);
    RadixPageTable big_pt(big, big_alloc);
    EXPECT_EQ(big_pt.topLevel(), 3);
}

TEST_F(RadixPageTableTest, EnsureMappedIsIdempotent)
{
    Pfn first = pt.ensureMapped(0x1234);
    Pfn second = pt.ensureMapped(0x1234);
    EXPECT_EQ(first, second);
}

TEST_F(RadixPageTableTest, DistinctVpnsGetDistinctFrames)
{
    std::set<Pfn> frames;
    for (Vpn vpn = 0; vpn < 100; ++vpn)
        frames.insert(pt.ensureMapped(vpn * 977));
    EXPECT_EQ(frames.size(), 100u);
}

TEST_F(RadixPageTableTest, IsMappedReflectsState)
{
    EXPECT_FALSE(pt.isMapped(42));
    pt.ensureMapped(42);
    EXPECT_TRUE(pt.isMapped(42));
    EXPECT_FALSE(pt.isMapped(43));
}

TEST_F(RadixPageTableTest, TranslateMatchesEnsureMapped)
{
    Pfn pfn = pt.ensureMapped(0xABCDE);
    EXPECT_EQ(pt.translate(0xABCDE), pfn);
}

TEST_F(RadixPageTableTest, WalkReachesLeaf)
{
    Pfn pfn = pt.ensureMapped(0x777);
    WalkCursor cur = pt.startWalk(0x777);
    EXPECT_EQ(cur.level, 4);
    int steps = 0;
    while (!cur.done) {
        PhysAddr addr = pt.pteAddr(cur);
        EXPECT_GT(addr, 0u);
        pt.advance(cur);
        ++steps;
    }
    EXPECT_EQ(steps, 4);
    EXPECT_FALSE(cur.fault);
    EXPECT_EQ(cur.pfn, pfn);
}

TEST_F(RadixPageTableTest, WalkOnUnmappedFaults)
{
    WalkCursor cur = pt.startWalk(0xDEAD);
    while (!cur.done)
        pt.advance(cur);
    EXPECT_TRUE(cur.fault);
}

TEST_F(RadixPageTableTest, PartialMappingFaultsAtTheRightLevel)
{
    // Map a VPN so upper levels exist, then walk a sibling sharing the
    // top three levels but with an unmapped leaf entry.
    pt.ensureMapped(0x1000);
    WalkCursor cur = pt.startWalk(0x1001);
    int steps = 0;
    while (!cur.done) {
        pt.advance(cur);
        ++steps;
    }
    EXPECT_TRUE(cur.fault);
    EXPECT_EQ(steps, 4) << "fault detected at the leaf level";
}

TEST_F(RadixPageTableTest, ResumeWalkSkipsLevels)
{
    Pfn pfn = pt.ensureMapped(0x2000);
    // Walk fully once, recording the level-1 table base.
    WalkCursor full = pt.startWalk(0x2000);
    PhysAddr leaf_base = 0;
    while (!full.done) {
        if (full.level == 1)
            leaf_base = full.tableBase;
        pt.advance(full);
    }
    ASSERT_NE(leaf_base, 0u);

    WalkCursor resumed = pt.resumeWalk(0x2000, 1, leaf_base);
    pt.advance(resumed);
    EXPECT_TRUE(resumed.done);
    EXPECT_EQ(resumed.pfn, pfn);
}

TEST_F(RadixPageTableTest, PteAddressesWithinOneLeafTableAreContiguous)
{
    pt.ensureMapped(0x3000);
    pt.ensureMapped(0x3001);
    WalkCursor a = pt.startWalk(0x3000);
    WalkCursor b = pt.startWalk(0x3001);
    while (a.level > 1)
        pt.advance(a);
    while (b.level > 1)
        pt.advance(b);
    EXPECT_EQ(pt.pteAddr(b), pt.pteAddr(a) + kPteBytes);
}

TEST_F(RadixPageTableTest, PwcPrefixSharedWithinSameTable)
{
    // Adjacent VPNs share all upper-level tables.
    EXPECT_EQ(pt.pwcPrefix(1, 0x3000), pt.pwcPrefix(1, 0x3001));
    // VPNs differing in level-2 index differ in the level-1 prefix.
    Vpn far = 0x3000 + (1ull << pt.bitsBelow(2));
    EXPECT_NE(pt.pwcPrefix(1, 0x3000), pt.pwcPrefix(1, far));
}

TEST_F(RadixPageTableTest, WalkReadsEqualsTopLevel)
{
    EXPECT_EQ(pt.walkReads(0x1), 4);
}

TEST_F(RadixPageTableTest, UsesPwc)
{
    EXPECT_TRUE(pt.usesPwc());
}

TEST(FrameAllocator, DataFramesAreDistinctAndAligned)
{
    FrameAllocator alloc(64 * 1024);
    Pfn a = alloc.allocDataFrame();
    Pfn b = alloc.allocDataFrame();
    EXPECT_NE(a, b);
    EXPECT_EQ(alloc.dataFramesAllocated(), 2u);
}

TEST(FrameAllocator, TableRegionDisjointFromDataRegion)
{
    FrameAllocator alloc(64 * 1024);
    PhysAddr table = alloc.allocTable(2048);
    Pfn frame = alloc.allocDataFrame();
    EXPECT_LT(table, frame * 64 * 1024);
}

TEST(FrameAllocator, TablesAre256ByteAligned)
{
    FrameAllocator alloc(64 * 1024);
    alloc.allocTable(100);
    PhysAddr second = alloc.allocTable(100);
    EXPECT_EQ(second % 256, 0u);
}

/** Property: translate() agrees with a full walk for random VPNs. */
class RadixWalkProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RadixWalkProperty, WalkMatchesTranslate)
{
    PageGeometry geom(64 * 1024);
    FrameAllocator alloc(64 * 1024);
    RadixPageTable pt(geom, alloc);
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        Vpn vpn = rng.range(1ull << 33);
        Pfn pfn = pt.ensureMapped(vpn);
        WalkCursor cur = pt.startWalk(vpn);
        while (!cur.done)
            pt.advance(cur);
        ASSERT_FALSE(cur.fault);
        EXPECT_EQ(cur.pfn, pfn);
        EXPECT_EQ(pt.translate(vpn), pfn);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixWalkProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

} // namespace
