/** @file Unit & property tests for the FS-HPT hashed page table. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "vm/hashed_page_table.hh"

using namespace sw;

namespace {

class HashedPageTableTest : public ::testing::Test
{
  protected:
    HashedPageTableTest()
        : geom(64 * 1024), alloc(64 * 1024),
          pt(geom, alloc, /*slots=*/1 << 12)
    {
    }

    PageGeometry geom;
    FrameAllocator alloc;
    HashedPageTable pt;
};

TEST_F(HashedPageTableTest, SingleLevel)
{
    EXPECT_EQ(pt.topLevel(), 1);
    EXPECT_FALSE(pt.usesPwc());
}

TEST_F(HashedPageTableTest, EnsureMappedIdempotent)
{
    Pfn a = pt.ensureMapped(99);
    EXPECT_EQ(pt.ensureMapped(99), a);
}

TEST_F(HashedPageTableTest, TranslateAfterMap)
{
    Pfn pfn = pt.ensureMapped(0x55);
    EXPECT_EQ(pt.translate(0x55), pfn);
    EXPECT_TRUE(pt.isMapped(0x55));
    EXPECT_FALSE(pt.isMapped(0x56));
}

TEST_F(HashedPageTableTest, DirectHitWalkIsOneRead)
{
    Pfn pfn = pt.ensureMapped(0x1000);
    WalkCursor cur = pt.startWalk(0x1000);
    int steps = 0;
    while (!cur.done) {
        pt.advance(cur);
        ++steps;
    }
    // Could be >1 only on a collision chain; with a near-empty table the
    // direct slot hits.
    EXPECT_EQ(steps, pt.walkReads(0x1000));
    EXPECT_FALSE(cur.fault);
    EXPECT_EQ(cur.pfn, pfn);
}

TEST_F(HashedPageTableTest, UnmappedWalkFaults)
{
    WalkCursor cur = pt.startWalk(0xBEEF);
    while (!cur.done)
        pt.advance(cur);
    EXPECT_TRUE(cur.fault);
}

TEST_F(HashedPageTableTest, CollisionsResolveViaProbing)
{
    // Fill enough entries that collisions occur, then verify all resolve.
    Rng rng(3);
    std::vector<std::pair<Vpn, Pfn>> mapped;
    for (int i = 0; i < 1000; ++i) {
        Vpn vpn = rng.range(1ull << 30);
        mapped.emplace_back(vpn, pt.ensureMapped(vpn));
    }
    for (auto [vpn, pfn] : mapped) {
        WalkCursor cur = pt.startWalk(vpn);
        while (!cur.done)
            pt.advance(cur);
        ASSERT_FALSE(cur.fault);
        EXPECT_EQ(cur.pfn, pfn);
    }
}

TEST_F(HashedPageTableTest, LoadFactorTracksInsertions)
{
    EXPECT_DOUBLE_EQ(pt.loadFactor(), 0.0);
    for (Vpn vpn = 0; vpn < 1024; ++vpn)
        pt.ensureMapped(vpn * 31);
    EXPECT_NEAR(pt.loadFactor(), 1024.0 / 4096.0, 1e-9);
}

TEST_F(HashedPageTableTest, WalkReadsGrowWithCollisions)
{
    // At low load, the average probe chain stays near 1 — the low hash
    // collision rate FS-HPT exploits on GPUs.
    Rng rng(7);
    std::uint64_t total_reads = 0;
    constexpr int n = 800;
    for (int i = 0; i < n; ++i) {
        Vpn vpn = rng.range(1ull << 28);
        pt.ensureMapped(vpn);
        total_reads += std::uint64_t(pt.walkReads(vpn));
    }
    EXPECT_LT(double(total_reads) / n, 1.3);
}

TEST_F(HashedPageTableTest, ResumeWalkRestarts)
{
    pt.ensureMapped(5);
    WalkCursor cur = pt.resumeWalk(5, 3, 0x1234);
    EXPECT_EQ(cur.level, 1);
    pt.advance(cur);
    EXPECT_TRUE(cur.done);
}

/** Property: hashed and radix tables give consistent OS-level semantics. */
class PageTableContract : public ::testing::TestWithParam<bool>
{
  public:
    std::unique_ptr<PageTableBase>
    make(PageGeometry &geom, FrameAllocator &alloc)
    {
        if (GetParam())
            return std::make_unique<HashedPageTable>(geom, alloc, 1 << 14);
        return std::make_unique<RadixPageTable>(geom, alloc);
    }
};

TEST_P(PageTableContract, MapTranslateWalkAgree)
{
    PageGeometry geom(64 * 1024);
    FrameAllocator alloc(64 * 1024);
    auto pt = make(geom, alloc);
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
        Vpn vpn = rng.range(1ull << 32);
        Pfn pfn = pt->ensureMapped(vpn);
        EXPECT_TRUE(pt->isMapped(vpn));
        EXPECT_EQ(pt->translate(vpn), pfn);
        WalkCursor cur = pt->startWalk(vpn);
        int guard = 0;
        while (!cur.done && guard++ < 64)
            pt->advance(cur);
        ASSERT_TRUE(cur.done);
        ASSERT_FALSE(cur.fault);
        EXPECT_EQ(cur.pfn, pfn);
    }
}

INSTANTIATE_TEST_SUITE_P(BothKinds, PageTableContract,
                         ::testing::Values(false, true));

} // namespace
