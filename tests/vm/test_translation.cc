/** @file Integration tests for the translation engine. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hh"
#include "test_util.hh"
#include "vm/ptw.hh"
#include "vm/translation.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

/** Standalone rig wiring engine + memory + address space + hardware pool. */
struct EngineRig
{
    explicit EngineRig(const GpuConfig &config)
        : cfg(config), geom(cfg.pageBytes), alloc(cfg.pageBytes),
          spaces(cfg, alloc), pt(spaces.tableFor(0)), mem(eq, cfg),
          engine(eq, cfg, mem, spaces)
    {
        HardwarePtwPool::Params pool;
        pool.numWalkers = cfg.numPtws;
        pool.pwbEntries = cfg.pwbEntries;
        pool.pwbPorts = cfg.pwbPorts;
        engine.setBackend(std::make_unique<HardwarePtwPool>(
            eq, pool, spaces, engine.pwc(),
            [this](PhysAddr addr, std::function<void()> done) {
                engine.ptAccess(addr, std::move(done));
            },
            engine.completionFn()));
    }

    GpuConfig cfg;
    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    PageTableBase &pt;
    MemorySystem mem;
    TranslationEngine engine;
};

/** Fixture wiring engine + memory + address space + hardware pool. */
class TranslationTest : public ::testing::Test
{
  protected:
    TranslationTest() : TranslationTest(sw::test::smallConfig()) {}

    explicit TranslationTest(const GpuConfig &config)
        : cfg(config), geom(cfg.pageBytes), alloc(cfg.pageBytes),
          spaces(cfg, alloc), pt(spaces.tableFor(0)), mem(eq, cfg),
          engine(eq, cfg, mem, spaces)
    {
        installPool();
    }

    void
    installPool()
    {
        HardwarePtwPool::Params pool;
        pool.numWalkers = cfg.numPtws;
        pool.pwbEntries = cfg.pwbEntries;
        pool.pwbPorts = cfg.pwbPorts;
        engine.setBackend(std::make_unique<HardwarePtwPool>(
            eq, pool, spaces, engine.pwc(),
            [this](PhysAddr addr, std::function<void()> done) {
                engine.ptAccess(addr, std::move(done));
            },
            engine.completionFn()));
    }

    /** Translate and wait; returns (pfn, latency). */
    std::pair<Pfn, Cycle>
    translateAndWait(SmId sm, Vpn vpn)
    {
        Cycle start = eq.now();
        Pfn got = 0;
        bool done = false;
        engine.translate(sm, K(vpn), [&](Pfn pfn) {
            got = pfn;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        return {got, eq.now() - start};
    }

    GpuConfig cfg;
    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    PageTableBase &pt;
    MemorySystem mem;
    TranslationEngine engine;
};

TEST_F(TranslationTest, ColdTranslationWalksAndMapsOnDemand)
{
    auto [pfn, latency] = translateAndWait(0, 0x42);
    EXPECT_TRUE(pt.isMapped(0x42));
    EXPECT_EQ(pfn, pt.translate(0x42));
    EXPECT_GE(latency, cfg.l1TlbLatency + cfg.l2TlbLatency);
    EXPECT_EQ(engine.stats().walksCompleted, 1u);
}

TEST_F(TranslationTest, L1HitIsFast)
{
    translateAndWait(0, 0x42);
    auto [pfn, latency] = translateAndWait(0, 0x42);
    EXPECT_EQ(pfn, pt.translate(0x42));
    EXPECT_EQ(latency, cfg.l1TlbLatency);
    EXPECT_EQ(engine.stats().l1Hits, 1u);
}

TEST_F(TranslationTest, L2HitFromAnotherSm)
{
    translateAndWait(0, 0x42);
    auto [pfn, latency] = translateAndWait(1, 0x42);
    EXPECT_EQ(pfn, pt.translate(0x42));
    EXPECT_EQ(latency, cfg.l1TlbLatency + cfg.l2TlbLatency);
    EXPECT_EQ(engine.stats().l2Hits, 1u);
    EXPECT_EQ(engine.stats().walksCompleted, 1u) << "no second walk";
}

TEST_F(TranslationTest, ConcurrentSameVpnMergesAtL1)
{
    int done = 0;
    for (int i = 0; i < 5; ++i)
        engine.translate(0, K(0x99), [&](Pfn) { ++done; });
    eq.run();
    EXPECT_EQ(done, 5);
    EXPECT_EQ(engine.stats().l1MshrMerges, 4u);
    EXPECT_EQ(engine.stats().walksCompleted, 1u);
}

TEST_F(TranslationTest, ConcurrentSameVpnAcrossSmsMergesAtL2)
{
    int done = 0;
    for (SmId sm = 0; sm < 4; ++sm)
        engine.translate(sm, K(0x99), [&](Pfn) { ++done; });
    eq.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(engine.stats().l2MshrMerges, 3u);
    EXPECT_EQ(engine.stats().walksCompleted, 1u);
}

TEST_F(TranslationTest, PwcAcceleratesNeighbourWalks)
{
    translateAndWait(0, 0x100);
    std::uint64_t reads_before = engine.stats().ptReadLatency.count;
    translateAndWait(0, 0x101);   // same leaf table
    std::uint64_t reads = engine.stats().ptReadLatency.count - reads_before;
    EXPECT_EQ(reads, 1u) << "PWC hit lets the walk start at the leaf";
}

TEST_F(TranslationTest, L1MshrFileFullParksAndRecovers)
{
    // More distinct VPNs than L1 MSHRs (8 in the small config).
    int done = 0;
    for (Vpn vpn = 0; vpn < 20; ++vpn)
        engine.translate(0, K(0x1000 + vpn * 64), [&](Pfn) { ++done; });
    eq.run();
    EXPECT_EQ(done, 20);
    EXPECT_GT(engine.stats().l1MshrFailures, 0u);
}

TEST_F(TranslationTest, L2MshrSaturationCountsFailures)
{
    // 16 L2 MSHRs in the small config; no In-TLB MSHR in baseline.
    int done = 0;
    for (Vpn vpn = 0; vpn < 120; ++vpn) {
        SmId sm = SmId(vpn % cfg.numSms);
        engine.translate(sm, K(0x5000 + vpn * 8), [&](Pfn) { ++done; });
    }
    eq.run();
    EXPECT_EQ(done, 120);
    EXPECT_GT(engine.stats().l2MshrFailures, 0u);
}

TEST_F(TranslationTest, QueueDelayIncludesMshrWait)
{
    for (Vpn vpn = 0; vpn < 120; ++vpn)
        engine.translate(SmId(vpn % cfg.numSms), K(0x9000 + vpn * 8),
                         [](Pfn) {});
    eq.run();
    // The last walks waited for MSHR capacity: queueing delay must show it.
    EXPECT_GT(engine.stats().walkQueueDelay.maxv,
              engine.stats().walkAccessLatency.mean());
}

TEST_F(TranslationTest, FaultPathReplaysAfterOsMapping)
{
    engine.setMapOnDemand(false);
    Pfn got = 0;
    bool done = false;
    engine.translate(0, K(0x77), [&](Pfn pfn) {
        got = pfn;
        done = true;
    });
    // The walk faults (page unmapped, logged to the fault buffer); the
    // UVM-style driver maps the page and the walk replays (§5.5).
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine.stats().faults, 1u);
    EXPECT_TRUE(pt.isMapped(0x77));
    EXPECT_EQ(got, pt.translate(0x77));
    EXPECT_EQ(engine.faultBuffer().stats().recorded, 1u);
}

TEST_F(TranslationTest, TranslationLatencyStatCoversAllRequests)
{
    translateAndWait(0, 1);
    translateAndWait(0, 1);
    EXPECT_EQ(engine.stats().translationLatency.count, 2u);
}

TEST_F(TranslationTest, ResetStatsClearsEngineAndArrays)
{
    translateAndWait(0, 0x42);
    engine.resetStats();
    EXPECT_EQ(engine.stats().requests, 0u);
    EXPECT_EQ(engine.stats().walksCompleted, 0u);
    EXPECT_EQ(engine.l2Tlb().stats().lookups, 0u);
    // Contents survive: next lookup hits.
    auto [pfn, latency] = translateAndWait(0, 0x42);
    (void)pfn;
    EXPECT_EQ(latency, cfg.l1TlbLatency);
}

TEST_F(TranslationTest, ShootdownForcesRetranslation)
{
    translateAndWait(0, 0x42);
    translateAndWait(1, 0x42);
    std::uint64_t walks_before = engine.stats().walksCompleted;

    engine.shootdown(K(0x42));

    // Both SMs must re-walk (the translation is gone at both levels).
    auto [pfn0, lat0] = translateAndWait(0, 0x42);
    EXPECT_GT(lat0, cfg.l1TlbLatency + cfg.l2TlbLatency);
    EXPECT_EQ(pfn0, pt.translate(0x42));
    EXPECT_EQ(engine.stats().walksCompleted, walks_before + 1);

    auto [pfn1, lat1] = translateAndWait(1, 0x42);
    EXPECT_EQ(pfn1, pt.translate(0x42));
    EXPECT_EQ(lat1, cfg.l1TlbLatency + cfg.l2TlbLatency)
        << "second SM hits the refilled L2";
}

TEST_F(TranslationTest, ShootdownOfUnknownVpnIsHarmless)
{
    engine.shootdown(K(0xDEADBEEF));
    auto [pfn, lat] = translateAndWait(0, 0x5);
    (void)lat;
    EXPECT_EQ(pfn, pt.translate(0x5));
}

TEST_F(TranslationTest, MpkiComputation)
{
    translateAndWait(0, 0x111);
    EXPECT_DOUBLE_EQ(engine.l2Mpki(1000), 1.0);
    EXPECT_DOUBLE_EQ(engine.l2Mpki(0), 0.0);
}

TEST_F(TranslationTest, FixedPtLatencyOverride)
{
    // Rebuild an engine with the Fig 23 fixed-latency override.
    GpuConfig fixed_cfg = cfg;
    fixed_cfg.fixedPtAccessLatency = 123;
    TranslationEngine fixed_engine(eq, fixed_cfg, mem, spaces);
    HardwarePtwPool::Params pool;
    fixed_engine.setBackend(std::make_unique<HardwarePtwPool>(
        eq, pool, spaces, fixed_engine.pwc(),
        [&](PhysAddr addr, std::function<void()> done) {
            fixed_engine.ptAccess(addr, std::move(done));
        },
        fixed_engine.completionFn()));
    bool done = false;
    fixed_engine.translate(0, K(0x8), [&](Pfn) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(fixed_engine.stats().ptReadLatency.minv, 123u);
    EXPECT_EQ(fixed_engine.stats().ptReadLatency.maxv, 123u);
}

// ---- In-TLB MSHR at the engine level ------------------------------------

class InTlbEngineTest : public TranslationTest
{
  protected:
    InTlbEngineTest() : TranslationTest(configWithInTlb()) {}

    static GpuConfig
    configWithInTlb()
    {
        GpuConfig cfg = sw::test::smallConfig();
        cfg.inTlbMshrMax = 32;
        return cfg;
    }
};

TEST_F(InTlbEngineTest, OverflowUsesInTlbSlots)
{
    int done = 0;
    // Enough distinct VPNs to exhaust the 16 regular MSHRs.
    for (Vpn vpn = 0; vpn < 40; ++vpn)
        engine.translate(SmId(vpn % cfg.numSms), K(0x3000 + vpn * 8),
                         [&](Pfn) { ++done; });
    eq.run();
    EXPECT_EQ(done, 40);
    EXPECT_GT(engine.stats().inTlbMshrAllocs, 0u);
    EXPECT_EQ(engine.l2Tlb().pendingCount(), 0u) << "all cleared at the end";
}

TEST_F(InTlbEngineTest, InTlbReducesFailuresVsBaseline)
{
    int done = 0;
    for (Vpn vpn = 0; vpn < 48; ++vpn)
        engine.translate(SmId(vpn % cfg.numSms), K(0x4000 + vpn * 8),
                         [&](Pfn) { ++done; });
    eq.run();
    std::uint64_t with_intlb = engine.stats().l2MshrFailures;

    // Baseline comparison.
    EngineRig baseline(sw::test::smallConfig());
    int base_done = 0;
    for (Vpn vpn = 0; vpn < 48; ++vpn)
        baseline.engine.translate(SmId(vpn % baseline.cfg.numSms),
                                  K(0x4000 + vpn * 8),
                                  [&](Pfn) { ++base_done; });
    baseline.eq.run();
    EXPECT_EQ(done, 48);
    EXPECT_EQ(base_done, 48);
    EXPECT_LT(with_intlb, baseline.engine.stats().l2MshrFailures);
}

TEST_F(InTlbEngineTest, CapRespected)
{
    for (Vpn vpn = 0; vpn < 200; ++vpn)
        engine.translate(SmId(vpn % cfg.numSms), K(0x9000 + vpn * 8),
                         [](Pfn) {});
    eq.run();
    EXPECT_LE(engine.stats().inTlbMshrPeak, 32u);
}

} // namespace
