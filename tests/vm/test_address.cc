/** @file Unit tests for page geometry / address helpers. */

#include <gtest/gtest.h>

#include "vm/address.hh"

using namespace sw;

TEST(PageGeometry, SixtyFourKiloBytePages)
{
    PageGeometry geom(64 * 1024);
    EXPECT_EQ(geom.pageBytes(), 64u * 1024u);
    EXPECT_EQ(geom.pageOffsetBits(), 16u);
    EXPECT_EQ(geom.vpnBits(), 33u);
}

TEST(PageGeometry, TwoMegaBytePages)
{
    PageGeometry geom(2ull * 1024 * 1024);
    EXPECT_EQ(geom.pageOffsetBits(), 21u);
    EXPECT_EQ(geom.vpnBits(), 28u);
}

TEST(PageGeometry, VpnAndOffsetRoundTrip)
{
    PageGeometry geom(64 * 1024);
    VirtAddr va = (0x123456ull << 16) | 0xABCD;
    EXPECT_EQ(geom.vpnOf(va), 0x123456u);
    EXPECT_EQ(geom.offsetOf(va), 0xABCDu);
    EXPECT_EQ(geom.composeVa(geom.vpnOf(va), geom.offsetOf(va)), va);
}

TEST(PageGeometry, ComposePaMasksOffset)
{
    PageGeometry geom(64 * 1024);
    // Offsets beyond the page size are masked, never leak into the PFN.
    EXPECT_EQ(geom.composePa(1, 0x1FFFF), (1ull << 16) | 0xFFFF);
}

TEST(PageGeometry, AdjacentAddressesSharePage)
{
    PageGeometry geom(64 * 1024);
    EXPECT_EQ(geom.vpnOf(0x10000), geom.vpnOf(0x1FFFF));
    EXPECT_NE(geom.vpnOf(0x1FFFF), geom.vpnOf(0x20000));
}

TEST(PageGeometryDeath, NonPowerOfTwoRejected)
{
    EXPECT_DEATH(PageGeometry(3000), "power of two");
}

TEST(AddressSpace, Constants)
{
    EXPECT_EQ(kVirtAddrBits, 49u);
    EXPECT_EQ(kPhysAddrBits, 47u);
}
