/** @file Precise timing-math tests for the PTW pool's port model. */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "vm/ptw.hh"

using namespace sw;

namespace {

/** Fixture with a fixed-latency memory so timing is exactly predictable. */
class PtwTimingTest : public ::testing::Test
{
  protected:
    PtwTimingTest()
        : geom(64 * 1024), alloc(64 * 1024), spaces(spacesConfig(), alloc),
          pt(spaces.tableFor(0)), pwc(32)
    {
    }

    static GpuConfig
    spacesConfig()
    {
        GpuConfig cfg = makeDefaultConfig();
        cfg.pageBytes = 64 * 1024;
        return cfg;
    }

    std::unique_ptr<HardwarePtwPool>
    makePool(HardwarePtwPool::Params params, Cycle mem_latency)
    {
        return std::make_unique<HardwarePtwPool>(
            eq, params, spaces, pwc,
            [this, mem_latency](PhysAddr, std::function<void()> done) {
                eq.scheduleIn(mem_latency, std::move(done));
            },
            [this](const WalkResult &result) {
                results.push_back(result);
            });
    }

    /** Leaf-level request (one memory read per walk). */
    WalkRequest
    leafRequest(Vpn vpn, std::uint64_t id)
    {
        pt.ensureMapped(vpn);
        WalkCursor cur = pt.startWalk(vpn);
        while (cur.level > 1)
            pt.advance(cur);
        WalkRequest req;
        req.id = id;
        req.key = {0, vpn};
        req.cursor = pt.resumeWalk(vpn, 1, cur.tableBase);
        req.created = eq.now();
        return req;
    }

    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    PageTableBase &pt;
    PageWalkCache pwc;
    std::vector<WalkResult> results;
};

TEST_F(PtwTimingTest, SingleLeafWalkExactLatency)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    auto pool = makePool(params, 100);
    pool->submit(leafRequest(1, 1));
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    // enqueue port (1 cy) + dequeue port (1 cy) + one 100 cy read.
    EXPECT_EQ(eq.now(), 102u);
    EXPECT_EQ(results[0].accessLatency, 100u);
    EXPECT_EQ(results[0].queueDelay, 2u);
}

TEST_F(PtwTimingTest, OnePortSerialisesPortOperations)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 4;
    params.pwbPorts = 1;
    auto pool = makePool(params, 100);
    for (std::uint64_t i = 0; i < 4; ++i)
        pool->submit(leafRequest(Vpn(i) * 4096, i));
    eq.run();
    ASSERT_EQ(results.size(), 4u);
    // 4 enqueues + 4 dequeues share one port: the last walk cannot start
    // before cycle 8 even though walkers are idle.
    Cycle max_queue = 0;
    for (const auto &result : results)
        max_queue = std::max(max_queue, result.queueDelay);
    EXPECT_GE(max_queue, 7u);
}

TEST_F(PtwTimingTest, ManyPortsStartWalksTogether)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 4;
    params.pwbPorts = 8;
    auto pool = makePool(params, 100);
    for (std::uint64_t i = 0; i < 4; ++i)
        pool->submit(leafRequest(Vpn(i) * 4096, i));
    eq.run();
    for (const auto &result : results)
        EXPECT_LE(result.queueDelay, 3u);
    EXPECT_LE(eq.now(), 104u);
}

TEST_F(PtwTimingTest, WalkerReuseBackToBack)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.pwbPorts = 4;
    auto pool = makePool(params, 50);
    pool->submit(leafRequest(1, 1));
    pool->submit(leafRequest(4096, 2));
    eq.run();
    ASSERT_EQ(results.size(), 2u);
    // Second walk starts right after the first finishes (+1 port cycle).
    EXPECT_GE(results[1].queueDelay, 50u);
    EXPECT_LE(results[1].queueDelay, 54u);
}

TEST_F(PtwTimingTest, QueueDelayScalesLinearlyUnderSaturation)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.pwbPorts = 4;
    auto pool = makePool(params, 50);
    constexpr int n = 10;
    for (std::uint64_t i = 0; i < n; ++i)
        pool->submit(leafRequest(Vpn(i) * 4096, i));
    eq.run();
    ASSERT_EQ(results.size(), std::size_t(n));
    // k-th walk waits ~k * 50 cycles: the Fig 7 queueing mechanism in
    // miniature.
    EXPECT_GE(results[n - 1].queueDelay, Cycle((n - 1) * 50));
    EXPECT_LE(results[n - 1].queueDelay, Cycle((n - 1) * 50 + 3 * n));
}

} // namespace
