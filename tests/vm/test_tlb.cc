/** @file Unit & property tests for the TLB array and In-TLB MSHR states. */

#include <gtest/gtest.h>

#include "vm/tlb.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

TEST(TlbArray, MissOnEmpty)
{
    TlbArray tlb("t", 16, 4);
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(K(1), pfn));
    EXPECT_EQ(tlb.stats().lookups, 1u);
    EXPECT_EQ(tlb.stats().hits, 0u);
}

TEST(TlbArray, FillThenHit)
{
    TlbArray tlb("t", 16, 4);
    EXPECT_TRUE(tlb.fill(K(7), 77));
    Pfn pfn = 0;
    EXPECT_TRUE(tlb.lookup(K(7), pfn));
    EXPECT_EQ(pfn, 77u);
    EXPECT_DOUBLE_EQ(tlb.stats().hitRate(), 1.0);
}

TEST(TlbArray, RefillUpdatesInPlace)
{
    TlbArray tlb("t", 16, 4);
    tlb.fill(K(7), 77);
    tlb.fill(K(7), 88);
    Pfn pfn = 0;
    EXPECT_TRUE(tlb.lookup(K(7), pfn));
    EXPECT_EQ(pfn, 88u);
    EXPECT_EQ(tlb.stats().evictions, 0u);
}

TEST(TlbArray, SetOverflowEvictsLru)
{
    TlbArray tlb("t", 16, 4);   // 4 sets, 4 ways
    // Five VPNs mapping to set 0 (vpn % 4 == 0).
    for (Vpn vpn = 0; vpn < 5; ++vpn)
        tlb.fill(K(vpn * 4), vpn);
    EXPECT_EQ(tlb.stats().evictions, 1u);
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(K(0), pfn)) << "LRU entry evicted";
    EXPECT_TRUE(tlb.lookup(K(16), pfn));
}

TEST(TlbArray, LookupRefreshesLru)
{
    TlbArray tlb("t", 16, 4);
    for (Vpn vpn = 0; vpn < 4; ++vpn)
        tlb.fill(K(vpn * 4), vpn);
    Pfn pfn = 0;
    tlb.lookup(K(0), pfn);        // refresh vpn 0
    tlb.fill(K(16), 99);          // evicts vpn 4, not 0
    EXPECT_TRUE(tlb.probe(K(0)));
    EXPECT_FALSE(tlb.probe(K(4)));
}

TEST(TlbArray, FullyAssociativeWhenWaysEqualEntries)
{
    TlbArray tlb("l1", 8, 8);
    EXPECT_EQ(tlb.numSets(), 1u);
    for (Vpn vpn = 0; vpn < 8; ++vpn)
        tlb.fill(K(vpn * 1000 + 3), vpn);
    for (Vpn vpn = 0; vpn < 8; ++vpn)
        EXPECT_TRUE(tlb.probe(K(vpn * 1000 + 3)));
}

TEST(TlbArray, InvalidateRemovesEntry)
{
    TlbArray tlb("t", 16, 4);
    tlb.fill(K(5), 50);
    tlb.invalidate(K(5));
    EXPECT_FALSE(tlb.probe(K(5)));
}

TEST(TlbArray, FlushClearsEverything)
{
    TlbArray tlb("t", 16, 4);
    tlb.fill(K(5), 50);
    tlb.allocPending(K(9));
    tlb.flush();
    EXPECT_FALSE(tlb.probe(K(5)));
    EXPECT_EQ(tlb.pendingCount(), 0u);
}

// ---- In-TLB MSHR behaviour (§4.5) -------------------------------------

TEST(InTlbMshr, AllocPendingOccupiesAWay)
{
    TlbArray tlb("t", 16, 4);
    EXPECT_TRUE(tlb.allocPending(K(8)));
    EXPECT_EQ(tlb.pendingCount(), 1u);
    EXPECT_TRUE(tlb.hasPending(K(8)));
    EXPECT_FALSE(tlb.hasPending(K(12)));
}

TEST(InTlbMshr, SameTagReservationMerges)
{
    TlbArray tlb("t", 16, 4);
    EXPECT_TRUE(tlb.allocPending(K(8)));
    EXPECT_TRUE(tlb.allocPending(K(8)));
    EXPECT_EQ(tlb.pendingCount(), 1u) << "same tag merges onto one slot";
    EXPECT_EQ(tlb.stats().pendingAllocs, 1u);
}

TEST(InTlbMshr, SetFullyPendingFailsFurtherAllocs)
{
    TlbArray tlb("t", 16, 4);
    // Four distinct tags in set 0 consume all ways.
    for (Vpn vpn = 0; vpn < 4; ++vpn)
        EXPECT_TRUE(tlb.allocPending(K(vpn * 4)));
    EXPECT_FALSE(tlb.allocPending(K(16 * 4)));
    EXPECT_EQ(tlb.stats().pendingAllocFailures, 1u);
}

TEST(InTlbMshr, PendingAllocEvictsValidLruEntry)
{
    TlbArray tlb("t", 16, 4);
    for (Vpn vpn = 0; vpn < 4; ++vpn)
        tlb.fill(K(vpn * 4), vpn);
    EXPECT_TRUE(tlb.allocPending(K(100)));   // 100 % 4 == 0 -> set 0
    EXPECT_EQ(tlb.stats().pendingEvictedValid, 1u);
    EXPECT_FALSE(tlb.probe(K(0))) << "LRU translation sacrificed";
}

TEST(InTlbMshr, PendingEntriesAreNotLookupHits)
{
    TlbArray tlb("t", 16, 4);
    tlb.allocPending(K(8));
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(K(8), pfn));
}

TEST(InTlbMshr, FillNeverDisplacesPending)
{
    TlbArray tlb("t", 16, 4);
    for (Vpn vpn = 0; vpn < 4; ++vpn)
        tlb.allocPending(K(vpn * 4));
    // Every way of set 0 is pending: a fill to that set is skipped.
    EXPECT_FALSE(tlb.fill(K(16 * 4), 1));
    EXPECT_EQ(tlb.stats().fillsSkipped, 1u);
    EXPECT_EQ(tlb.pendingCount(), 4u);
}

TEST(InTlbMshr, ClearPendingFreesAllMatchingWays)
{
    TlbArray tlb("t", 16, 4);
    tlb.allocPending(K(8));
    tlb.allocPending(K(12));
    tlb.clearPending(K(8));
    EXPECT_FALSE(tlb.hasPending(K(8)));
    EXPECT_TRUE(tlb.hasPending(K(12)));
    EXPECT_EQ(tlb.pendingCount(), 1u);
}

TEST(InTlbMshr, WalkCompletionFlow)
{
    // The full §4.5 sequence: alloc pending -> walk completes ->
    // clear pending -> fill valid -> subsequent lookups hit.
    TlbArray tlb("t", 16, 4);
    ASSERT_TRUE(tlb.allocPending(K(8)));
    tlb.clearPending(K(8));
    ASSERT_TRUE(tlb.fill(K(8), 80));
    Pfn pfn = 0;
    EXPECT_TRUE(tlb.lookup(K(8), pfn));
    EXPECT_EQ(pfn, 80u);
    EXPECT_EQ(tlb.pendingCount(), 0u);
}

TEST(TlbArrayDeath, RejectsIndivisibleGeometry)
{
    EXPECT_DEATH(TlbArray("bad", 10, 4), "divisible");
}

/** Property sweep over geometries: fills are always retrievable until the
 *  set overflows, and pending counts stay consistent. */
class TlbGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(TlbGeometry, PendingCountConsistency)
{
    auto [entries, ways] = GetParam();
    TlbArray tlb("p", entries, ways);
    std::uint32_t allocated = 0;
    for (Vpn vpn = 0; vpn < entries * 2; ++vpn) {
        if (tlb.allocPending(K(vpn)))
            ++allocated;
    }
    EXPECT_EQ(tlb.pendingCount(), allocated);
    EXPECT_LE(allocated, entries);
    for (Vpn vpn = 0; vpn < entries * 2; ++vpn)
        tlb.clearPending(K(vpn));
    EXPECT_EQ(tlb.pendingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Combine(::testing::Values(16u, 64u, 256u),
                       ::testing::Values(2u, 4u, 16u)));

} // namespace
