/** @file Unit tests for the page walk cache. */

#include <gtest/gtest.h>

#include "vm/hashed_page_table.hh"
#include "vm/page_table.hh"
#include "vm/page_walk_cache.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

class PwcTest : public ::testing::Test
{
  protected:
    PwcTest() : geom(64 * 1024), alloc(64 * 1024), pt(geom, alloc), pwc(4)
    {
    }

    PageGeometry geom;
    FrameAllocator alloc;
    RadixPageTable pt;
    PageWalkCache pwc;
};

TEST_F(PwcTest, MissOnEmpty)
{
    int level = 0;
    PhysAddr base = 0;
    EXPECT_FALSE(pwc.lookup(pt, K(0x100), level, base));
    EXPECT_EQ(pwc.stats().lookups, 1u);
    EXPECT_EQ(pwc.stats().hits, 0u);
}

TEST_F(PwcTest, FillThenHitAtThatLevel)
{
    pwc.fill(pt, 2, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    ASSERT_TRUE(pwc.lookup(pt, K(0x100), level, base));
    EXPECT_EQ(level, 2);
    EXPECT_EQ(base, 0xAA00u);
}

TEST_F(PwcTest, DeepestLevelWins)
{
    pwc.fill(pt, 3, K(0x100), 0xCC00);
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    ASSERT_TRUE(pwc.lookup(pt, K(0x100), level, base));
    EXPECT_EQ(level, 1) << "level 1 lets the walker skip the most";
    EXPECT_EQ(base, 0xAA00u);
}

TEST_F(PwcTest, PrefixSharingAcrossNeighbours)
{
    // Adjacent VPNs share the leaf table: one fill serves both.
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    EXPECT_TRUE(pwc.lookup(pt, K(0x101), level, base));
    EXPECT_EQ(base, 0xAA00u);
}

TEST_F(PwcTest, DistantVpnMisses)
{
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    Vpn far = 0x100 + (1ull << 20);
    EXPECT_FALSE(pwc.lookup(pt, K(far), level, base));
}

TEST_F(PwcTest, RefillUpdatesExistingEntry)
{
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    pwc.fill(pt, 1, K(0x100), 0xBB00);
    int level = 0;
    PhysAddr base = 0;
    ASSERT_TRUE(pwc.lookup(pt, K(0x100), level, base));
    EXPECT_EQ(base, 0xBB00u);
    EXPECT_EQ(pwc.stats().fills, 2u);
}

TEST_F(PwcTest, LruReplacementOnOverflow)
{
    // Capacity 4: fill five distant level-1 entries.
    for (int i = 0; i < 5; ++i) {
        pwc.fill(pt, 1, K(Vpn(i) << 20), PhysAddr(i) * 0x100);
    }
    int level = 0;
    PhysAddr base = 0;
    EXPECT_FALSE(pwc.lookup(pt, K(0), level, base)) << "oldest evicted";
    EXPECT_TRUE(pwc.lookup(pt, K(Vpn(4) << 20), level, base));
}

TEST_F(PwcTest, TopLevelAndInvalidLevelsIgnored)
{
    pwc.fill(pt, pt.topLevel(), K(0x100), 0xAA00);   // root needs no PWC
    pwc.fill(pt, 0, K(0x100), 0xAA00);
    EXPECT_EQ(pwc.stats().fills, 0u);
}

TEST_F(PwcTest, HashedTableNeverUsesPwc)
{
    FrameAllocator halloc(64 * 1024);
    HashedPageTable hpt(geom, halloc, 1 << 10);
    pwc.fill(hpt, 1, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    EXPECT_FALSE(pwc.lookup(hpt, K(0x100), level, base));
}

TEST_F(PwcTest, FlushEmptiesCache)
{
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    pwc.flush();
    int level = 0;
    PhysAddr base = 0;
    EXPECT_FALSE(pwc.lookup(pt, K(0x100), level, base));
}

TEST_F(PwcTest, HitRateStat)
{
    pwc.fill(pt, 1, K(0x100), 0xAA00);
    int level = 0;
    PhysAddr base = 0;
    pwc.lookup(pt, K(0x100), level, base);
    pwc.lookup(pt, K(Vpn(7) << 25), level, base);
    EXPECT_NEAR(pwc.stats().hitRate(), 0.5, 1e-9);
}

} // namespace
