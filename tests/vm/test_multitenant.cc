/**
 * @file
 * Multi-tenant translation structures (docs/MULTITENANCY.md): per-ASID
 * address spaces never alias, ASID-selective flush touches exactly one
 * tenant, and the sub-entry-sharing L2 TLB baseline (Li et al.) shares
 * tags without leaking translations across tenants.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "vm/address_space.hh"
#include "vm/page_walk_cache.hh"
#include "vm/subentry_tlb.hh"
#include "vm/tlb.hh"

using namespace sw;

namespace {

GpuConfig
tenantConfig(std::uint32_t tenants)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.pageBytes = 64 * 1024;
    cfg.numTenants = tenants;
    return cfg;
}

// ---- Address spaces ------------------------------------------------------

TEST(AddressSpaces, SameVpnResolvesToDistinctFramesPerTenant)
{
    FrameAllocator alloc(64 * 1024);
    AddressSpaceManager spaces(tenantConfig(3), alloc);
    ASSERT_EQ(spaces.numSpaces(), 3u);
    constexpr Vpn vpn = 0x42;
    for (Asid asid = 0; asid < 3; ++asid)
        spaces.tableFor(asid).ensureMapped(vpn);
    Pfn p0 = spaces.tableFor(0).translate(vpn);
    Pfn p1 = spaces.tableFor(1).translate(vpn);
    Pfn p2 = spaces.tableFor(2).translate(vpn);
    EXPECT_NE(p0, p1);
    EXPECT_NE(p1, p2);
    EXPECT_NE(p0, p2) << "one shared allocator must never alias frames";
}

TEST(AddressSpaces, MappingOneTenantLeavesOthersUnmapped)
{
    FrameAllocator alloc(64 * 1024);
    AddressSpaceManager spaces(tenantConfig(2), alloc);
    spaces.tableFor(1).ensureMapped(0x99);
    EXPECT_TRUE(spaces.tableFor(1).isMapped(0x99));
    EXPECT_FALSE(spaces.tableFor(0).isMapped(0x99));
}

// ---- ASID-selective flush ------------------------------------------------

TEST(AsidFlush, TlbDropsExactlyOneTenant)
{
    TlbArray tlb("l2", 64, 8);
    for (Vpn vpn = 0; vpn < 16; ++vpn) {
        ASSERT_TRUE(tlb.fill({0, vpn}, Pfn(100 + vpn)));
        ASSERT_TRUE(tlb.fill({1, vpn}, Pfn(200 + vpn)));
    }
    tlb.flushAsid(1);
    Pfn pfn = 0;
    for (Vpn vpn = 0; vpn < 16; ++vpn) {
        EXPECT_TRUE(tlb.lookup({0, vpn}, pfn))
            << "ASID 0 must survive ASID 1's flush (vpn " << vpn << ")";
        EXPECT_EQ(pfn, Pfn(100 + vpn));
        EXPECT_FALSE(tlb.lookup({1, vpn}, pfn));
    }
}

TEST(AsidFlush, PendingWaysSurviveTheFlush)
{
    // An In-TLB MSHR way is an in-flight walk, not a cached translation:
    // like a per-VPN shootdown, the selective flush must not drop it.
    TlbArray tlb("l2", 64, 8);
    ASSERT_TRUE(tlb.allocPending({1, 0x7}));
    tlb.flushAsid(1);
    EXPECT_TRUE(tlb.hasPending({1, 0x7}));
}

TEST(AsidFlush, PwcDropsExactlyOneTenant)
{
    FrameAllocator alloc(64 * 1024);
    AddressSpaceManager spaces(tenantConfig(2), alloc);
    PageWalkCache pwc(32);
    PageTableBase &pt0 = spaces.tableFor(0);
    PageTableBase &pt1 = spaces.tableFor(1);
    constexpr Vpn vpn = Vpn(5) << 20;
    pt0.ensureMapped(vpn);
    pt1.ensureMapped(vpn);
    pwc.fill(pt0, 1, {0, vpn}, 0x1000);
    pwc.fill(pt1, 1, {1, vpn}, 0x2000);

    pwc.flushAsid(1);
    int level = 0;
    PhysAddr base = 0;
    EXPECT_TRUE(pwc.lookup(pt0, {0, vpn}, level, base));
    EXPECT_FALSE(pwc.lookup(pt1, {1, vpn}, level, base));
}

// ---- Sub-entry-sharing TLB (Li et al. baseline) --------------------------

TEST(SubEntryTlb, GroupedFillsShareOneTag)
{
    // 4 sub-entries per tag: four consecutive pages cost one tag alloc.
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/false);
    for (Vpn vpn = 0; vpn < 4; ++vpn)
        tlb.fill({0, vpn}, Pfn(10 + vpn));
    EXPECT_EQ(tlb.stats().tagAllocs, 1u);
    Pfn pfn = 0;
    for (Vpn vpn = 0; vpn < 4; ++vpn) {
        ASSERT_TRUE(tlb.lookup({0, vpn}, pfn));
        EXPECT_EQ(pfn, Pfn(10 + vpn));
    }
}

TEST(SubEntryTlb, UnsharedModeKeepsTenantsInSeparateTags)
{
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/false);
    tlb.fill({0, 0}, 10);
    tlb.fill({1, 0}, 20);
    EXPECT_EQ(tlb.stats().tagAllocs, 2u)
        << "without sharing, aliasing VPN ranges duplicate the tag";
    EXPECT_EQ(tlb.stats().sharedFills, 0u);
}

TEST(SubEntryTlb, SharedModePacksTenantsIntoOneTag)
{
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/true);
    tlb.fill({0, 0}, 10);
    tlb.fill({1, 1}, 21);   // same group, different tenant and page
    EXPECT_EQ(tlb.stats().tagAllocs, 1u)
        << "sharing mode sub-fills into the existing tag";
    EXPECT_EQ(tlb.stats().sharedFills, 1u);

    Pfn pfn = 0;
    ASSERT_TRUE(tlb.lookup({0, 0}, pfn));
    EXPECT_EQ(pfn, 10u);
    ASSERT_TRUE(tlb.lookup({1, 1}, pfn));
    EXPECT_EQ(pfn, 21u);
    EXPECT_EQ(tlb.stats().sharedHits, 1u) << "tenant 1 hit tenant 0's tag";
}

TEST(SubEntryTlb, SharedSubSlotsNeverLeakAcrossTenants)
{
    // Two tenants at the same VPN contend for the same sub-slot of the
    // shared tag: the later fill displaces the earlier one, and the
    // displaced tenant must MISS — never read the other tenant's PFN.
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/true);
    tlb.fill({0, 2}, 10);
    tlb.fill({1, 2}, 20);
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup({0, 2}, pfn))
        << "tenant 0 was displaced; returning tenant 1's PFN is a leak";
    ASSERT_TRUE(tlb.lookup({1, 2}, pfn));
    EXPECT_EQ(pfn, 20u);
    EXPECT_FALSE(tlb.probe({2, 2})) << "a third tenant must miss";
}

TEST(SubEntryTlb, FlushAsidDropsOnlyThatTenantsSubSlots)
{
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/true);
    tlb.fill({0, 0}, 10);
    tlb.fill({1, 1}, 21);
    tlb.flushAsid(0);
    EXPECT_FALSE(tlb.probe({0, 0}));
    EXPECT_TRUE(tlb.probe({1, 1}))
        << "tenant 1's sub-slot survives in the shared tag";
}

TEST(SubEntryTlb, InvalidateDropsOneTranslation)
{
    SubEntryTlb tlb("l2", 64, 8, 4, /*shared=*/false);
    tlb.fill({0, 0}, 10);
    tlb.fill({0, 1}, 11);
    tlb.invalidate({0, 0});
    EXPECT_FALSE(tlb.probe({0, 0}));
    EXPECT_TRUE(tlb.probe({0, 1}));
}

TEST(SubEntryTlb, WayPartitionConfinesVictimsNotLookups)
{
    // 2 tags (8 translations / 4 subs) per... keep it tiny: 2 ways, 1 set
    // of tags, one way per tenant.  Tenant 0 thrashing its way must never
    // evict tenant 1's tag.
    SubEntryTlb tlb("l2", 8, 2, 4, /*shared=*/false);
    ASSERT_EQ(tlb.numTags(), 2u);
    tlb.setWayPartition({{0, 1}, {1, 1}});
    tlb.fill({1, 0}, 20);
    for (Vpn group = 1; group < 8; ++group)
        tlb.fill({0, group * 4}, Pfn(group));
    EXPECT_TRUE(tlb.probe({1, 0}))
        << "tenant 0's thrashing stayed inside its own way";
}

} // namespace
