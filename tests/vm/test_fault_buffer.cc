/** @file Unit tests for the Fault Buffer (FFB target). */

#include <gtest/gtest.h>

#include "vm/fault_buffer.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

} // namespace

TEST(FaultBuffer, RecordsAndDrainsFifo)
{
    FaultBuffer buffer(4);
    EXPECT_TRUE(buffer.record(K(1), 2, 100));
    EXPECT_TRUE(buffer.record(K(3), 1, 200));
    EXPECT_EQ(buffer.size(), 2u);
    FaultBuffer::Record first = buffer.pop();
    EXPECT_EQ(first.key.vpn, 1u);
    EXPECT_EQ(first.level, 2);
    EXPECT_EQ(first.when, 100u);
    EXPECT_EQ(buffer.pop().key.vpn, 3u);
    EXPECT_TRUE(buffer.empty());
}

TEST(FaultBuffer, OverflowRejectsAndCounts)
{
    FaultBuffer buffer(2);
    EXPECT_TRUE(buffer.record(K(1), 1, 0));
    EXPECT_TRUE(buffer.record(K(2), 1, 0));
    EXPECT_FALSE(buffer.record(K(3), 1, 0));
    EXPECT_EQ(buffer.stats().overflows, 1u);
    EXPECT_EQ(buffer.size(), 2u);
}

TEST(FaultBuffer, DrainFreesCapacity)
{
    FaultBuffer buffer(1);
    buffer.record(K(1), 1, 0);
    buffer.pop();
    EXPECT_TRUE(buffer.record(K(2), 1, 0));
    EXPECT_EQ(buffer.stats().recorded, 2u);
    EXPECT_EQ(buffer.stats().drained, 1u);
}

TEST(FaultBuffer, CapacityAccessor)
{
    FaultBuffer buffer(64);
    EXPECT_EQ(buffer.capacity(), 64u);
}
