/** @file Unit tests for the hardware PTW pool, PWB ports, and NHA. */

#include <gtest/gtest.h>

#include <vector>

#include "vm/ptw.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

class PtwTest : public ::testing::Test
{
  protected:
    PtwTest()
        : geom(64 * 1024), alloc(64 * 1024), spaces(spacesConfig(), alloc),
          pt(spaces.tableFor(0)), pwc(32)
    {
    }

    static GpuConfig
    spacesConfig()
    {
        GpuConfig cfg = makeDefaultConfig();
        cfg.pageBytes = 64 * 1024;
        return cfg;
    }

    std::unique_ptr<HardwarePtwPool>
    makePool(HardwarePtwPool::Params params, Cycle mem_latency = 50)
    {
        return std::make_unique<HardwarePtwPool>(
            eq, params, spaces, pwc,
            [this, mem_latency](PhysAddr, std::function<void()> done) {
                ++memReads;
                eq.scheduleIn(mem_latency, std::move(done));
            },
            [this](const WalkResult &result) { results.push_back(result); });
    }

    WalkRequest
    makeRequest(Vpn vpn, std::uint64_t id)
    {
        pt.ensureMapped(vpn);
        WalkRequest req;
        req.id = id;
        req.key = K(vpn);
        req.cursor = pt.startWalk(vpn);
        req.created = eq.now();
        return req;
    }

    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    PageTableBase &pt;
    PageWalkCache pwc;
    int memReads = 0;
    std::vector<WalkResult> results;
};

TEST_F(PtwTest, SingleWalkCompletesWithCorrectPfn)
{
    auto pool = makePool({});
    Pfn expected = pt.translate(pt.ensureMapped(42) ? 42 : 42);
    pool->submit(makeRequest(42, 1));
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, 1u);
    EXPECT_FALSE(results[0].fault);
    EXPECT_EQ(results[0].pfn, pt.translate(42));
    (void)expected;
    EXPECT_EQ(memReads, 4) << "four radix levels read";
    EXPECT_EQ(pool->inFlight(), 0u);
}

TEST_F(PtwTest, WalkLatencyIsLevelsTimesMemory)
{
    auto pool = makePool({}, /*mem_latency=*/50);
    pool->submit(makeRequest(7, 1));
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].accessLatency, 200u);
}

TEST_F(PtwTest, ResumedWalkSkipsLevels)
{
    auto pool = makePool({}, 50);
    pt.ensureMapped(9);
    // Learn the leaf base from a functional walk.
    WalkCursor cur = pt.startWalk(9);
    while (cur.level > 1)
        pt.advance(cur);
    WalkRequest req;
    req.id = 2;
    req.key = K(9);
    req.cursor = pt.resumeWalk(9, 1, cur.tableBase);
    pool->submit(std::move(req));
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].accessLatency, 50u) << "one read from the leaf";
}

TEST_F(PtwTest, ParallelWalkersOverlap)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 4;
    params.pwbPorts = 8;
    auto pool = makePool(params, 50);
    for (std::uint64_t i = 0; i < 4; ++i)
        pool->submit(makeRequest(100 + Vpn(i) * 1000, i));
    eq.run();
    EXPECT_EQ(results.size(), 4u);
    // Four walks of 4 levels at 50cy overlap: well under serial time.
    EXPECT_LT(eq.now(), 4 * 200u);
}

TEST_F(PtwTest, LimitedWalkersSerialiseAndQueueDelayGrows)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    auto pool = makePool(params, 50);
    for (std::uint64_t i = 0; i < 3; ++i)
        pool->submit(makeRequest(100 + Vpn(i) * 1000, i));
    eq.run();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(pool->stats().queueDelay.maxv,
              results[2].queueDelay);
    EXPECT_GE(results[2].queueDelay, 2 * 200u);
}

TEST_F(PtwTest, QueueDelayMeasuredFromCreation)
{
    auto pool = makePool({});
    WalkRequest req = makeRequest(5, 1);
    req.created = 0;
    eq.schedule(100, [&, req]() mutable { pool->submit(std::move(req)); });
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(results[0].queueDelay, 100u);
}

TEST_F(PtwTest, WalksFillThePwc)
{
    auto pool = makePool({});
    pool->submit(makeRequest(0x500, 1));
    eq.run();
    int level = 0;
    PhysAddr base = 0;
    EXPECT_TRUE(pwc.lookup(pt, K(0x500), level, base));
    EXPECT_EQ(level, 1) << "leaf table base cached";
}

TEST_F(PtwTest, FaultReportedForUnmappedVpn)
{
    auto pool = makePool({});
    WalkRequest req;
    req.id = 9;
    req.key = K(0xFFFF);
    req.cursor = pt.startWalk(0xFFFF);
    pool->submit(std::move(req));
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].fault);
}

TEST_F(PtwTest, PwbOverflowSpillsAndRecovers)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.pwbEntries = 2;
    auto pool = makePool(params, 20);
    for (std::uint64_t i = 0; i < 8; ++i)
        pool->submit(makeRequest(Vpn(i) * 4096, i));
    eq.run();
    EXPECT_EQ(results.size(), 8u);
    EXPECT_GT(pool->stats().pwbOverflows, 0u);
}

TEST_F(PtwTest, SinglePortSerialisesDispatch)
{
    HardwarePtwPool::Params one_port;
    one_port.numWalkers = 16;
    one_port.pwbPorts = 1;
    auto pool_one = makePool(one_port, 400);
    for (std::uint64_t i = 0; i < 16; ++i)
        pool_one->submit(makeRequest(Vpn(i) * 4096, i));
    eq.run();
    Cycle one_port_time = eq.now();

    results.clear();
    eq.reset();
    HardwarePtwPool::Params many_ports = one_port;
    many_ports.pwbPorts = 16;
    auto pool_many = makePool(many_ports, 400);
    for (std::uint64_t i = 0; i < 16; ++i)
        pool_many->submit(makeRequest(Vpn(i) * 4096, 100 + i));
    eq.run();
    EXPECT_LE(eq.now(), one_port_time);
}

// ---- NHA coalescing (§2.3) --------------------------------------------

TEST_F(PtwTest, NhaMergesSameSectorWalks)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.nhaCoalescing = true;
    params.nhaSectorBytes = 32;   // 4 PTEs per sector
    auto pool = makePool(params, 30);
    // Four adjacent VPNs share the leaf-PTE sector.  The walker is busy
    // with the first; the next three are in the PWB and coalesce.
    for (std::uint64_t i = 0; i < 4; ++i)
        pool->submit(makeRequest(0x1000 + Vpn(i), i));
    eq.run();
    ASSERT_EQ(results.size(), 4u);
    EXPECT_GT(pool->stats().nhaMerged, 0u);
    // Riders get their own PFNs.
    for (const auto &result : results)
        EXPECT_EQ(result.pfn, pt.translate(result.key.vpn));
}

TEST_F(PtwTest, NhaDoesNotMergeDistantVpns)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.nhaCoalescing = true;
    auto pool = makePool(params, 30);
    for (std::uint64_t i = 0; i < 4; ++i)
        pool->submit(makeRequest(Vpn(i) * (1 << 16), i));
    eq.run();
    EXPECT_EQ(pool->stats().nhaMerged, 0u);
    EXPECT_EQ(results.size(), 4u);
}

TEST_F(PtwTest, NhaMergeLimitIsSectorCapacity)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 1;
    params.nhaCoalescing = true;
    params.nhaSectorBytes = 32;
    auto pool = makePool(params, 30);
    // 8 adjacent VPNs: at most 3 can ride along with each primary (4 PTEs
    // per 32 B sector).
    for (std::uint64_t i = 0; i < 8; ++i)
        pool->submit(makeRequest(0x2000 + Vpn(i), i));
    eq.run();
    EXPECT_EQ(results.size(), 8u);
    EXPECT_LE(pool->stats().nhaMerged, 6u);
}

TEST_F(PtwTest, StatsResetPreservesInFlightAccounting)
{
    auto pool = makePool({});
    pool->submit(makeRequest(1, 1));
    pool->resetStats();
    eq.run();
    EXPECT_EQ(pool->stats().completed, 1u);
    EXPECT_EQ(pool->inFlight(), 0u);
}

TEST_F(PtwTest, PeakInFlightTracksBurst)
{
    HardwarePtwPool::Params params;
    params.numWalkers = 2;
    auto pool = makePool(params, 50);
    for (std::uint64_t i = 0; i < 6; ++i)
        pool->submit(makeRequest(Vpn(i) * 512, i));
    eq.run();
    EXPECT_EQ(pool->stats().peakInFlight, 6u);
}

} // namespace
