/**
 * @file
 * Negative-path tests for every registered conservation audit.
 *
 * Each test corrupts one piece of private bookkeeping through AuditTester
 * (a friend of the audited components) and asserts the matching audit
 * fires under FailurePolicy::Record.  Positive runs first prove the full
 * audit set stays silent on healthy simulations in every translation mode.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/audit_tester.hh"
#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

std::unique_ptr<Workload>
irregularWorkload()
{
    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    return std::make_unique<GraphWorkload>("audit", 256ull << 20, true, 10,
                                           params);
}

/** GPU with recorded (non-fatal) audits sweeping every 500 cycles. */
std::unique_ptr<Gpu>
makeGpu(GpuConfig cfg)
{
    cfg.auditIntervalCycles = 500;
    auto gpu = std::make_unique<Gpu>(cfg, irregularWorkload());
    gpu->auditor().setPolicy(Auditor::FailurePolicy::Record);
    return gpu;
}

void
runQuota(Gpu &gpu, std::uint64_t quota = 300)
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = quota;
    gpu.run(limits);
}

/** A healthy run in every mode: sweeps happen, nothing fires. */
TEST(AuditPositive, AllModesRunClean)
{
    for (TranslationMode mode :
         {TranslationMode::HardwarePtw, TranslationMode::SoftWalker,
          TranslationMode::Hybrid, TranslationMode::Ideal}) {
        GpuConfig cfg = test::smallSoftWalkerConfig();
        cfg.mode = mode;
        if (mode == TranslationMode::HardwarePtw ||
            mode == TranslationMode::Ideal)
            cfg.inTlbMshrMax = 0;
        auto gpu = makeGpu(cfg);
        installWalkBackend(*gpu);
        runQuota(*gpu);
        EXPECT_GT(gpu->auditor().stats().sweeps, 0u)
            << toString(mode);
        EXPECT_TRUE(gpu->auditor().violations().empty())
            << toString(mode) << ": "
            << (gpu->auditor().violations().empty()
                    ? ""
                    : gpu->auditor().violations().front().audit + ": " +
                          gpu->auditor().violations().front().detail);
    }
}

/** The issue's floor: at least eight distinct conservation invariants. */
TEST(AuditPositive, RegistersTheFullInvariantCatalogue)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.mode = TranslationMode::Hybrid;
    auto gpu = makeGpu(cfg);
    installWalkBackend(*gpu);

    const Auditor &auditor = gpu->auditor();
    EXPECT_GE(auditor.numAudits(), 8u);
    for (const char *name :
         {"sim.event-queue.monotonic-time", "gpu.stats.cross-foot",
          "vm.tlb.pending-count", "vm.l2.mshr-conservation",
          "vm.l2.walks-vs-backend", "vm.l2.no-leaked-miss",
          "vm.ptw.slot-conservation", "vm.ptw.inflight-conservation",
          "core.distributor.credit-conservation",
          "core.pwwarp.slot-lifecycle", "mem.cache.mshr-capacity",
          "mem.cache.no-leaked-mshr", "vm.tlb.no-cross-asid-leak"})
        EXPECT_TRUE(auditor.hasAudit(name)) << name;
}

// ---------------------------------------------------------------- sim --

TEST(AuditNegative, EventClockMovingBackwardsFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    ASSERT_GT(gpu->cycles(), 0u);
    gpu->auditor().clearViolations();

    AuditTester::rewindClock(gpu->eventQueue(), 0);
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("sim.event-queue.monotonic-time"));
}

TEST(AuditNegative, StatsThatDoNotCrossFootFire)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    ++AuditTester::engineStats(gpu->engine()).requests;
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("gpu.stats.cross-foot"));

    gpu->auditor().clearViolations();
    ++AuditTester::engineStats(gpu->engine()).l2Accesses;
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("gpu.stats.cross-foot"));
}

// ----------------------------------------------------------------- vm --

TEST(AuditNegative, DriftedTlbPendingCounterFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    ++AuditTester::tlbPendingCounter(AuditTester::l2Tlb(gpu->engine()));
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.tlb.pending-count"));
}

/** Mandated scenario: deliberately leak an In-TLB MSHR. */
TEST(AuditNegative, LeakedInTlbMshrFires)
{
    auto gpu = makeGpu(test::smallSoftWalkerConfig());
    installWalkBackend(*gpu);
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    // A pending L2 TLB way with no outstanding-walk track: the In-TLB
    // MSHR was allocated but its walk will never clear it.
    ASSERT_TRUE(AuditTester::l2Tlb(gpu->engine()).allocPending({0, 0x1234}));
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.l2.mshr-conservation"));

    // At end-of-sim the same leak violates "every L2 miss resolved".
    gpu->auditor().clearViolations();
    gpu->auditor().finalCheck(gpu->cycles(), /*quiescent=*/true);
    EXPECT_TRUE(gpu->auditor().fired("vm.l2.no-leaked-miss"));
}

/** A TLB entry tagged with an ASID the machine never created. */
TEST(AuditNegative, UnknownAsidInTlbFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    // Single-tenant machine: ASID 1 has no address space.
    ASSERT_TRUE(AuditTester::l2Tlb(gpu->engine()).fill({1, 0x42}, 7));
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.tlb.no-cross-asid-leak"));
}

/** A cached PFN disagreeing with the owning address space's mapping. */
TEST(AuditNegative, CrossAsidPfnLeakFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    // A valid ASID caching a PFN its page table never handed out models a
    // fill that crossed tenants (or corrupted the translation).
    ASSERT_TRUE(
        AuditTester::l2Tlb(gpu->engine()).fill({0, 0xdeadbeef}, 0x31337));
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.tlb.no-cross-asid-leak"));
}

TEST(AuditNegative, DriftedRegularMshrCounterFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    ++AuditTester::regularMshrInUse(gpu->engine());
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.l2.mshr-conservation"));
}

/** A backend claiming more walks than the engine tracks is lying. */
TEST(AuditNegative, BackendInFlightAboveTrackedWalksFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    auto *pool = static_cast<HardwarePtwPool *>(gpu->engine().backend());
    ASSERT_NE(pool, nullptr);
    ++AuditTester::ptwInFlight(*pool);
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.l2.walks-vs-backend"));
}

/** Mandated scenario: a backend that drops PTW completions on the floor. */
TEST(AuditNegative, DroppedWalkCompletionFiresAtEndOfSim)
{
    class DroppingBackend : public WalkBackend
    {
      public:
        void submit(WalkRequest) override { ++dropped; }
        std::uint64_t inFlight() const override { return dropped; }
        std::string name() const override { return "dropping"; }
        void resetStats() override {}
        std::uint64_t dropped = 0;
    };

    // SoftWalker mode so construction installs no backend of its own.
    auto gpu = makeGpu(test::smallSoftWalkerConfig());
    auto backend = std::make_unique<DroppingBackend>();
    DroppingBackend *raw = backend.get();
    gpu->installBackend(std::move(backend));

    // Every warp eventually blocks on a swallowed walk; the queue drains
    // with the quota unmet and the machine quiescent-but-leaking.
    runQuota(*gpu);
    ASSERT_GT(raw->dropped, 0u);
    ASSERT_TRUE(gpu->eventQueue().empty());
    EXPECT_TRUE(gpu->auditor().fired("vm.l2.no-leaked-miss"));
}

TEST(AuditNegative, LostPtwWalkerSlotFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    auto *pool = static_cast<HardwarePtwPool *>(gpu->engine().backend());
    ASSERT_NE(pool, nullptr);
    ASSERT_FALSE(AuditTester::ptwIdleSlots(*pool).empty());
    AuditTester::ptwIdleSlots(*pool).pop_back();
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.ptw.slot-conservation"));
}

TEST(AuditNegative, PtwInFlightImbalanceFires)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    auto *pool = static_cast<HardwarePtwPool *>(gpu->engine().backend());
    ASSERT_NE(pool, nullptr);
    ++AuditTester::ptwInFlight(*pool);
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("vm.ptw.inflight-conservation"));
}

// --------------------------------------------------------------- core --

TEST(AuditNegative, DistributorCreditChargedWithoutDispatchFires)
{
    auto gpu = makeGpu(test::smallSoftWalkerConfig());
    installWalkBackend(*gpu);
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    SoftWalkerBackend *backend = softWalkerOf(*gpu);
    ASSERT_NE(backend, nullptr);
    ASSERT_NE(AuditTester::distributor(*backend).select(), kInvalidSm);
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(
        gpu->auditor().fired("core.distributor.credit-conservation"));
}

TEST(AuditNegative, ProcessingSlotUnderIdleWarpFires)
{
    auto gpu = makeGpu(test::smallSoftWalkerConfig());
    installWalkBackend(*gpu);
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    SoftWalkerBackend *backend = softWalkerOf(*gpu);
    ASSERT_NE(backend, nullptr);
    SoftPwb &pwb = AuditTester::softPwb(*backend, 0);
    ASSERT_EQ(pwb.slot(0).state, SoftPwb::SlotState::Invalid);
    pwb.slot(0).state = SoftPwb::SlotState::Processing;
    gpu->auditor().checkNow(gpu->cycles());
    EXPECT_TRUE(gpu->auditor().fired("core.pwwarp.slot-lifecycle"));
}

/**
 * Replacing an installed backend would destroy it under its registered
 * audits (they capture the backend); the GPU refuses.
 */
TEST(AuditNegative, ReinstallingABackendPanics)
{
    auto gpu = makeGpu(test::smallSoftWalkerConfig());
    installWalkBackend(*gpu);
    EXPECT_DEATH(installWalkBackend(*gpu),
                 "walk backend is already installed");
}

// ---------------------------------------------------------------- mem --

TEST(AuditNegative, CacheMshrsPastCapacityFire)
{
    auto gpu = makeGpu(test::smallConfig());
    Cache &l1d = AuditTester::l1d(gpu->memory(), 0);
    for (std::uint64_t i = 0; i <= l1d.params().mshrEntries; ++i)
        AuditTester::insertFakeMshr(l1d, i * l1d.params().sectorBytes);
    gpu->auditor().checkNow(0);
    EXPECT_TRUE(gpu->auditor().fired("mem.cache.mshr-capacity"));
}

TEST(AuditNegative, LeakedCacheMshrFiresWhenQuiescent)
{
    auto gpu = makeGpu(test::smallConfig());
    runQuota(*gpu);
    gpu->auditor().clearViolations();

    AuditTester::insertFakeMshr(AuditTester::l2d(gpu->memory()), 0x80);
    gpu->auditor().finalCheck(gpu->cycles(), /*quiescent=*/true);
    EXPECT_TRUE(gpu->auditor().fired("mem.cache.no-leaked-mshr"));

    // While the machine is still running the same state is legal.
    gpu->auditor().clearViolations();
    gpu->auditor().checkNow(gpu->cycles(), /*quiescent=*/false);
    EXPECT_FALSE(gpu->auditor().fired("mem.cache.no-leaked-mshr"));
}

} // namespace
