/** @file Unit tests for the Auditor registry and its event-queue sweep. */

#include <gtest/gtest.h>

#include "check/audit.hh"
#include "sim/event_queue.hh"

using namespace sw;

namespace {

TEST(Auditor, RegistersNamedAudits)
{
    Auditor auditor;
    EXPECT_EQ(auditor.numAudits(), 0u);
    auditor.registerAudit("a.first", AuditScope::Continuous,
                          [](AuditContext &) {});
    auditor.registerAudit("a.second", AuditScope::Quiescent,
                          [](AuditContext &) {});
    EXPECT_EQ(auditor.numAudits(), 2u);
    EXPECT_TRUE(auditor.hasAudit("a.first"));
    EXPECT_TRUE(auditor.hasAudit("a.second"));
    EXPECT_FALSE(auditor.hasAudit("a.third"));
    EXPECT_EQ(auditor.auditNames(),
              (std::vector<std::string>{"a.first", "a.second"}));
}

TEST(Auditor, DuplicateRegistrationPanics)
{
    Auditor auditor;
    auditor.registerAudit("dup", AuditScope::Continuous,
                          [](AuditContext &) {});
    EXPECT_DEATH(auditor.registerAudit("dup", AuditScope::Continuous,
                                       [](AuditContext &) {}),
                 "duplicate audit registration");
}

TEST(Auditor, RecordPolicyAccumulatesViolations)
{
    Auditor auditor;
    auditor.setPolicy(Auditor::FailurePolicy::Record);
    auditor.registerAudit("always.fails", AuditScope::Continuous,
                          [](AuditContext &ctx) { ctx.fail("broken"); });
    auditor.registerAudit("always.passes", AuditScope::Continuous,
                          [](AuditContext &) {});

    auditor.checkNow(123);
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].audit, "always.fails");
    EXPECT_EQ(auditor.violations()[0].detail, "broken");
    EXPECT_EQ(auditor.violations()[0].cycle, 123u);
    EXPECT_TRUE(auditor.fired("always.fails"));
    EXPECT_FALSE(auditor.fired("always.passes"));

    auditor.clearViolations();
    EXPECT_TRUE(auditor.violations().empty());
    EXPECT_FALSE(auditor.fired("always.fails"));
}

TEST(Auditor, PanicPolicyRoutesThroughFailureSink)
{
    Auditor auditor;
    auditor.registerAudit("fatal.check", AuditScope::Continuous,
                          [](AuditContext &ctx) { ctx.fail("boom"); });
    EXPECT_DEATH(auditor.checkNow(7),
                 "audit 'fatal.check' failed at cycle 7: boom");
}

TEST(Auditor, QuiescentAuditsSkippedWhileRunning)
{
    Auditor auditor;
    auditor.setPolicy(Auditor::FailurePolicy::Record);
    auditor.registerAudit("drain.only", AuditScope::Quiescent,
                          [](AuditContext &ctx) { ctx.fail("leak"); });

    auditor.checkNow(10, /*quiescent=*/false);
    EXPECT_TRUE(auditor.violations().empty());

    auditor.finalCheck(20, /*quiescent=*/false);   // hit the cycle cap
    EXPECT_TRUE(auditor.violations().empty());

    auditor.finalCheck(30, /*quiescent=*/true);    // drained
    EXPECT_TRUE(auditor.fired("drain.only"));
}

TEST(Auditor, StatsCountSweepsAndViolations)
{
    Auditor auditor;
    auditor.setPolicy(Auditor::FailurePolicy::Record);
    auditor.registerAudit("sometimes", AuditScope::Continuous,
                          [n = 0](AuditContext &ctx) mutable {
                              if (++n == 2)
                                  ctx.fail("second sweep only");
                          });
    auditor.checkNow(1);
    auditor.checkNow(2);
    auditor.checkNow(3);
    EXPECT_EQ(auditor.stats().sweeps, 3u);
    EXPECT_EQ(auditor.stats().auditsRun, 3u);
    EXPECT_EQ(auditor.stats().violations, 1u);
}

/** The periodic sweep piggybacks on real events at the given interval. */
TEST(Auditor, PeriodicSweepFollowsTheInterval)
{
    EventQueue eq;
    Auditor auditor;
    auditor.setPolicy(Auditor::FailurePolicy::Record);
    std::vector<Cycle> sweeps;
    auditor.registerAudit("probe", AuditScope::Continuous,
                          [&](AuditContext &) {
                              sweeps.push_back(eq.now());
                          });
    auditor.schedulePeriodic(eq, 100);

    for (Cycle c = 10; c <= 510; c += 10)
        eq.schedule(c, [] {});
    eq.run();

    // Sweeps ride on events: one per elapsed interval, at event times.
    ASSERT_EQ(sweeps.size(), 5u);
    EXPECT_EQ(sweeps, (std::vector<Cycle>{100, 200, 300, 400, 500}));
}

/**
 * Sweeping must not perturb the simulated timeline: the final cycle and
 * event count are identical with auditing on and off (regression for the
 * scheduled-audit-event design that quantised run length to the interval).
 */
TEST(Auditor, PeriodicSweepDoesNotPerturbTheTimeline)
{
    auto run_once = [](bool with_audits) {
        EventQueue eq;
        Auditor auditor;
        auditor.setPolicy(Auditor::FailurePolicy::Record);
        auditor.registerAudit("noop", AuditScope::Continuous,
                              [](AuditContext &) {});
        if (with_audits)
            auditor.schedulePeriodic(eq, 50);
        // A drip of events ending at an interval-unaligned cycle.
        std::function<void(int)> chain = [&](int depth) {
            if (depth > 0)
                eq.scheduleIn(37, [&, depth] { chain(depth - 1); });
        };
        chain(10);
        eq.run();
        return std::make_pair(eq.now(), eq.eventsExecuted());
    };
    EXPECT_EQ(run_once(false), run_once(true));
}

/** An idle queue never sweeps: the hook cannot keep a drained sim alive. */
TEST(Auditor, NoSweepsWithoutEvents)
{
    EventQueue eq;
    Auditor auditor;
    auditor.setPolicy(Auditor::FailurePolicy::Record);
    std::uint64_t sweeps = 0;
    auditor.registerAudit("probe", AuditScope::Continuous,
                          [&](AuditContext &) { ++sweeps; });
    auditor.schedulePeriodic(eq, 10);
    eq.run();
    EXPECT_EQ(sweeps, 0u);
    EXPECT_EQ(eq.now(), 0u);
}

/** Scheduling into the past is rejected in every build flavour. */
TEST(AuditorDeath, PastTimeEventPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduled in the past");
}

} // namespace
