/**
 * @file
 * Test-only friend of every audited component.
 *
 * Negative-path audit tests corrupt private bookkeeping through these
 * accessors to prove each registered conservation invariant can actually
 * fire; the product code never grows test-only mutators.  This header is
 * compiled into sw_tests only.
 */

#ifndef SW_TESTS_CHECK_AUDIT_TESTER_HH
#define SW_TESTS_CHECK_AUDIT_TESTER_HH

#include <cstdint>
#include <vector>

#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "vm/ptw.hh"
#include "vm/tlb.hh"
#include "vm/translation.hh"

namespace sw {

struct AuditTester
{
    // ---- sim --------------------------------------------------------
    /** Force the event clock backwards (a bug no real event can cause). */
    static void
    rewindClock(EventQueue &eq, Cycle cycle)
    {
        eq.curCycle = cycle;
    }

    // ---- vm ---------------------------------------------------------
    /** Drift the running pending-way counter away from the array. */
    static std::uint32_t &
    tlbPendingCounter(TlbArray &tlb)
    {
        return tlb.numPending;
    }

    /** Non-const L2 TLB array (leak an In-TLB MSHR via allocPending). */
    static TlbArray &
    l2Tlb(TranslationEngine &engine)
    {
        return engine.l2Array;
    }

    static std::uint32_t &
    regularMshrInUse(TranslationEngine &engine)
    {
        return engine.regularMshrInUse;
    }

    static TranslationEngine::Stats &
    engineStats(TranslationEngine &engine)
    {
        return engine.stats_;
    }

    static std::vector<std::uint32_t> &
    ptwIdleSlots(HardwarePtwPool &pool)
    {
        return pool.idleSlots;
    }

    static std::uint64_t &
    ptwInFlight(HardwarePtwPool &pool)
    {
        return pool.inFlightCount;
    }

    // ---- core -------------------------------------------------------
    static RequestDistributor &
    distributor(SoftWalkerBackend &backend)
    {
        return *backend.distributor_;
    }

    static SoftPwb &
    softPwb(SoftWalkerBackend &backend, SmId sm)
    {
        return backend.controllers.at(sm)->pwb;
    }

    static std::uint64_t &
    commInTransit(SoftWalkerBackend &backend)
    {
        return backend.commInTransit;
    }

    // ---- mem --------------------------------------------------------
    static Cache &
    l1d(MemorySystem &mem, SmId sm)
    {
        return *mem.l1dCaches.at(sm);
    }

    static Cache &
    l2d(MemorySystem &mem)
    {
        return *mem.l2dCache;
    }

    /** Plant an MSHR entry no fill will ever clear. */
    static void
    insertFakeMshr(Cache &cache, std::uint64_t sector_addr)
    {
        cache.mshrs[sector_addr];
    }
};

} // namespace sw

#endif // SW_TESTS_CHECK_AUDIT_TESTER_HH
