// SWTIDY-AS: src/harness/fixture_wallclock_clean.cc
//
// Clean cases for softwalker-wallclock-in-sim: src/harness is exempt
// (measuring real elapsed time is its job), and simulated-time reads via
// EventQueue::now() never match the wall-clock patterns anywhere.

#include <chrono>
#include <cstdint>

namespace sw {

struct FixtureEventQueue
{
    std::uint64_t cycle = 0;
    std::uint64_t now() const { return cycle; }
};

// Harness timing: exempt directory, no finding.
inline double
fixtureWallMillis()
{
    auto start = std::chrono::steady_clock::now();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

// Simulated time: fine in any directory.
inline std::uint64_t
fixtureSimNow(const FixtureEventQueue &eventq)
{
    return eventq.now();
}

} // namespace sw
