// SWTIDY-AS: src/gpu/fixture_capture_fire.cc
//
// Firing cases for softwalker-inline-capture-spill: closures handed to
// EventQueue::schedule()/scheduleIn() whose by-value captures exceed the
// 80-byte InlineFunction inline buffer.

#include <array>
#include <cstdint>

namespace sw {

struct FixtureQueue
{
    template <typename F> void schedule(std::uint64_t when, F &&fn);
    template <typename F> void scheduleIn(std::uint64_t delta, F &&fn);
};

struct FixtureSm
{
    FixtureQueue eventq;

    void consume(const std::array<std::uint64_t, 16> &payload);

    void
    badLiteralLambda()
    {
        std::array<std::uint64_t, 16> payload{};
        eventq.schedule(100, [this, payload] { consume(payload); }); // FIRE: softwalker-inline-capture-spill
    }

    void
    badNamedLambda()
    {
        std::array<std::uint64_t, 16> payload{};
        auto fire = [this, payload] { consume(payload); }; // FIRE: softwalker-inline-capture-spill
        eventq.scheduleIn(5, std::move(fire));
    }
};

} // namespace sw
