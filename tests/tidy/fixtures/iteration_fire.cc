// SWTIDY-AS: src/vm/fixture_iteration_fire.cc
//
// Firing cases for softwalker-nondeterministic-iteration: direct
// iteration over unordered containers inside src/ observable code.
// Trailing FIRE comments mark lines the analyzer must diagnose.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace sw {

struct FixtureEngine
{
    std::unordered_map<std::uint64_t, int> outstanding;
    std::unordered_set<std::uint64_t> dirty;

    int
    sumTracks() const
    {
        int total = 0;
        for (const auto &entry : outstanding) // FIRE: softwalker-nondeterministic-iteration
            total += entry.second;
        return total;
    }

    std::uint64_t
    firstDirty() const
    {
        for (auto it = dirty.begin(); it != dirty.end(); ++it) // FIRE: softwalker-nondeterministic-iteration
            return *it;
        return 0;
    }
};

} // namespace sw
