// SWTIDY-AS: src/vm/fixture_iteration_clean.cc
//
// Clean cases for softwalker-nondeterministic-iteration: ordered
// containers, sorted snapshots, and NOLINT-suppressed sanctioned loops.

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace sw {

struct FixtureReporter
{
    std::unordered_map<std::uint64_t, int> counts;
    std::map<std::uint64_t, int> ordered;

    // Ordered container: deterministic, no finding.
    int
    sumOrdered() const
    {
        int total = 0;
        for (const auto &entry : ordered)
            total += entry.second;
        return total;
    }

    // The sanctioned snapshot pattern: order never escapes the helper.
    std::vector<std::uint64_t>
    sortedKeysLocal() const
    {
        std::vector<std::uint64_t> keys;
        keys.reserve(counts.size());
        // Keys are sorted before being returned, so hash order does not
        // escape this helper.
        // NOLINTNEXTLINE(softwalker-nondeterministic-iteration)
        for (const auto &entry : counts)
            keys.push_back(entry.first);
        std::sort(keys.begin(), keys.end());
        return keys;
    }
};

} // namespace sw
