// SWTIDY-AS: src/gpu/fixture_capture_clean.cc
//
// Clean cases for softwalker-inline-capture-spill: small index-style
// captures fit the inline buffer; large objects handed to functions other
// than the EventQueue scheduling APIs are out of scope.

#include <array>
#include <cstdint>

namespace sw {

struct FixtureQueue
{
    template <typename F> void schedule(std::uint64_t when, F &&fn);
    template <typename F> void scheduleIn(std::uint64_t delta, F &&fn);
};

template <typename F> void fixtureRunElsewhere(F &&fn);

struct FixtureSm
{
    FixtureQueue eventq;

    void finishWalk(std::uint64_t vpn, std::uint32_t slot);
    void consume(const std::array<std::uint64_t, 16> &payload);

    // Indices instead of objects: 8 + 8 + 4 bytes, comfortably inline.
    void
    goodSmallCapture()
    {
        std::uint64_t vpn = 42;
        std::uint32_t slot = 3;
        eventq.schedule(100, [this, vpn, slot] { finishWalk(vpn, slot); });
    }

    // Same oversized payload, but not an EventQueue scheduling site.
    void
    goodElsewhere()
    {
        std::array<std::uint64_t, 16> payload{};
        fixtureRunElsewhere([this, payload] { consume(payload); });
    }
};

} // namespace sw
