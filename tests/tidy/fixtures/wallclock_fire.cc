// SWTIDY-AS: src/sim/fixture_wallclock_fire.cc
//
// Firing cases for softwalker-wallclock-in-sim: wall-clock reads and
// unseeded entropy inside the simulation directories.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace sw {

inline std::uint64_t
fixtureBadTimestamp()
{
    auto t = std::chrono::steady_clock::now(); // FIRE: softwalker-wallclock-in-sim
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

inline int
fixtureBadJitter()
{
    return rand() % 7; // FIRE: softwalker-wallclock-in-sim
}

inline std::uint32_t
fixtureBadSeed()
{
    std::random_device entropy; // FIRE: softwalker-wallclock-in-sim
    return entropy();
}

} // namespace sw
