// SWTIDY-AS: src/mem/fixture_stats_fire.cc
//
// Firing case for softwalker-stat-registration: a counter field of a
// *Stats struct that the component's registerStats() body never touches.

#include <cstdint>

namespace sw {

class StatGroup;

class FixtureCache
{
  public:
    struct FixtureCacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; // FIRE: softwalker-stat-registration
    };

    void
    registerStats(StatGroup &group)
    {
        registerCounter(group, &stats_.hits);
        registerCounter(group, &stats_.misses);
        // stats_.evictions is forgotten: invisible in every metrics dump.
    }

  private:
    void registerCounter(StatGroup &group, std::uint64_t *counter);

    FixtureCacheStats stats_;
};

} // namespace sw
