// SWTIDY-AS: src/check/fixture_audit_fire.cc
//
// Firing cases for softwalker-audit-side-effect: SW_AUDIT/SW_TRACE
// arguments with side effects execute in audit/tracing builds only, so
// release runs diverge.

#include <cstdint>
#include <vector>

namespace sw {

struct FixtureAuditCtx;
struct FixtureTracer;

struct FixtureComponent
{
    std::uint64_t counter = 0;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> slots;

    void
    badIncrement(FixtureAuditCtx &ctx)
    {
        SW_AUDIT(ctx, counter++ < 100); // FIRE: softwalker-audit-side-effect
    }

    void
    badCompoundAssign(FixtureAuditCtx &ctx, std::uint64_t delta)
    {
        SW_AUDIT(ctx, (total += delta) < 1000); // FIRE: softwalker-audit-side-effect
    }

    void
    badMutatorCall(FixtureTracer *tracer, std::uint64_t vpn)
    {
        SW_TRACE(tracer, slots.push_back(vpn)); // FIRE: softwalker-audit-side-effect
    }
};

} // namespace sw
