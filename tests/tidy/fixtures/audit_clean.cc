// SWTIDY-AS: src/check/fixture_audit_clean.cc
//
// Clean cases for softwalker-audit-side-effect: comparisons, reads, and
// non-mutating member calls are safe in any build variant.

#include <cstdint>
#include <vector>

namespace sw {

struct FixtureAuditCtx;
struct FixtureTracer;

struct FixtureComponent
{
    std::uint64_t counter = 0;
    std::uint64_t limit = 100;
    std::vector<std::uint64_t> slots;

    void
    goodComparisons(FixtureAuditCtx &ctx)
    {
        SW_AUDIT(ctx, counter == limit);
        SW_AUDIT(ctx, counter <= limit);
        SW_AUDIT(ctx, counter >= 1);
        SW_AUDIT(ctx, counter != 0);
    }

    void
    goodReads(FixtureTracer *tracer, std::uint64_t vpn)
    {
        SW_TRACE(tracer, vpn, slots.size());
        SW_AUDIT(ctx_, !slots.empty() && slots.front() < vpn);
    }

    FixtureAuditCtx &ctx_;
};

} // namespace sw
