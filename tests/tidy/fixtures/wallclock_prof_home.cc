// SWTIDY-AS: src/prof/fixture_wallclock_prof_home.cc
//
// src/prof is the sanctioned home for steady_clock (the host
// self-profiler exists to read it), so clock reads are clean here — but
// only the clock half of the check is waived: the profiler must never
// add entropy, so rand()/std::random_device still fire.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace sw {

inline std::uint64_t
fixtureProfNowNanos()
{
    // Sanctioned: this is exactly what prof::detail::nowNanos() does.
    auto t = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

inline int
fixtureProfJitter()
{
    return rand() % 7; // FIRE: softwalker-wallclock-in-sim
}

inline std::uint32_t
fixtureProfSeed()
{
    std::random_device entropy; // FIRE: softwalker-wallclock-in-sim
    return entropy();
}

} // namespace sw
