// SWTIDY-AS: src/mem/fixture_stats_declared_only.hh
//
// Skip path for softwalker-stat-registration: this header only declares
// registerStats(); the body lives in another translation unit the
// analyzer cannot see, so no field may be flagged here.

#include <cstdint>

namespace sw {

class StatGroup;

class FixtureHbm
{
  public:
    struct FixtureHbmStats
    {
        std::uint64_t activates = 0;
        std::uint64_t precharges = 0;
    };

    void registerStats(StatGroup &group);

  private:
    FixtureHbmStats stats_;
};

} // namespace sw
