// SWTIDY-AS: src/core/fixture_rawvpn_clean.cc
//
// Clean cases for softwalker-raw-vpn-key: braced {asid, vpn} keys, a
// TranslationKey-typed variable, non-Vpn first arguments (a cache lookup
// by physical address), and free functions named like the key APIs.

#include <cstdint>

namespace sw {

using Vpn = std::uint64_t;
using Pfn = std::uint64_t;
using PhysAddr = std::uint64_t;
using Asid = std::uint32_t;

struct TranslationKey
{
    Asid asid;
    Vpn vpn;
};

struct FixtureTlb
{
    bool lookup(TranslationKey, Pfn &);
    void fill(TranslationKey, Pfn);
    bool probe(TranslationKey) const;
};

struct FixtureCache
{
    bool lookup(PhysAddr);
};

bool lookup(Vpn);   // free function: not a member-call key API

inline void
fixtureProperKeys(FixtureTlb &tlb, FixtureCache &cache, Asid asid)
{
    Vpn vpn = 0x1234;
    Pfn pfn = 0;
    tlb.lookup({asid, vpn}, pfn);
    tlb.fill({asid, vpn}, pfn);
    TranslationKey key{asid, vpn};
    tlb.probe(key);
    PhysAddr addr = 0x8000;
    cache.lookup(addr);
    lookup(vpn);
}

} // namespace sw
