// SWTIDY-AS: src/mem/fixture_stats_clean.cc
//
// Clean case for softwalker-stat-registration: every counter field is
// wired up in registerStats()/registerGauges(), and non-counter fields
// (names, nested state) are not counters and never audited.

#include <cstdint>
#include <string>

namespace sw {

class StatGroup;

class FixtureDram
{
  public:
    struct FixtureDramStats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        double utilization = 0.0;
        std::string label;
    };

    void
    registerStats(StatGroup &group)
    {
        registerCounter(group, &stats_.reads);
        registerCounter(group, &stats_.writes);
    }

    void
    registerGauges(StatGroup &group)
    {
        registerGauge(group, [this] { return stats_.utilization; });
    }

  private:
    void registerCounter(StatGroup &group, std::uint64_t *counter);
    template <typename F> void registerGauge(StatGroup &group, F &&fn);

    FixtureDramStats stats_;
};

} // namespace sw
