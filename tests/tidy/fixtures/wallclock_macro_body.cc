// SWTIDY-AS: src/sim/fixture_wallclock_macro_body.cc
//
// The src/prof allowlist must not leak through macros *defined in sim
// files*: a clock read spelled in a src/sim file still fires even when
// it hides inside a macro body (the portable engine sees the token in
// this file; the plugin anchors on the spelling location, which for a
// macro defined here is this file).  Contrast with SW_PROF_SCOPE, whose
// body is spelled in src/prof/hostprof.hh and therefore allowed.

#include <chrono>
#include <cstdint>

#define FIXTURE_BAD_STAMP()                                                 \
    std::chrono::steady_clock::now().time_since_epoch().count() // FIRE: softwalker-wallclock-in-sim

namespace sw {

inline std::uint64_t
fixtureMacroTimestamp()
{
    return static_cast<std::uint64_t>(FIXTURE_BAD_STAMP());
}

} // namespace sw
