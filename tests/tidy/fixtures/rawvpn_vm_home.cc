// SWTIDY-AS: src/vm/fixture_rawvpn_vm_home.cc
//
// Clean-by-exemption for softwalker-raw-vpn-key: src/vm is the Vpn-level
// machinery's home — page tables and address decomposition legitimately
// take raw VPNs there, so the same calls that fire in src/core are
// silent.

#include <cstdint>

namespace sw {

using Vpn = std::uint64_t;
using Pfn = std::uint64_t;

struct FixturePageTable
{
    Pfn translate(Vpn) const;
    bool lookup(Vpn, Pfn &);
};

inline void
fixtureVmInternals(FixturePageTable &pt)
{
    Vpn vpn = 0x1234;
    Pfn pfn = 0;
    pt.translate(vpn);
    pt.lookup(vpn, pfn);
}

} // namespace sw
