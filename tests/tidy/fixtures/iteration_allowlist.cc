// SWTIDY-AS: src/obs/fixture_report_sink.cc
// SWTIDY-OPTION: allow-iteration=fixture_report_sink
//
// Allowlist path for softwalker-nondeterministic-iteration: this file is
// classified as pure-reporting code via the allow-iteration option, so a
// direct unordered loop is permitted and nothing may fire.

#include <cstdint>
#include <unordered_map>

namespace sw {

struct FixtureReportSink
{
    std::unordered_map<std::uint64_t, int> samples;

    int
    total() const
    {
        int sum = 0;
        for (const auto &entry : samples)
            sum += entry.second;
        return sum;
    }
};

} // namespace sw
