// SWTIDY-AS: src/core/fixture_rawvpn_fire.cc
//
// Firing cases for softwalker-raw-vpn-key: a bare Vpn-typed variable
// passed as the key of a translation-structure call outside src/vm.
// Since the TranslationKey migration the key is {asid, vpn}; a raw VPN
// silently means ASID 0 and breaks multi-tenant containment.

#include <cstdint>

namespace sw {

using Vpn = std::uint64_t;
using Pfn = std::uint64_t;

struct FixtureTlb
{
    bool lookup(Vpn, Pfn &);
    void fill(Vpn, Pfn);
    bool allocPending(Vpn);
    void invalidate(Vpn);
};

inline void
fixtureRawKeys(FixtureTlb &tlb, FixtureTlb *shared)
{
    Vpn vpn = 0x1234;
    Pfn pfn = 0;
    tlb.lookup(vpn, pfn); // FIRE: softwalker-raw-vpn-key
    tlb.fill(vpn, pfn); // FIRE: softwalker-raw-vpn-key
    shared->allocPending(vpn); // FIRE: softwalker-raw-vpn-key
    shared->invalidate(vpn); // FIRE: softwalker-raw-vpn-key
}

} // namespace sw
