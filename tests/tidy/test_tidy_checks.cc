/**
 * @file
 * Fixture suite for the portable softwalker- static-analysis engine, plus
 * the src/-tree cleanliness gate.
 *
 * Each fixture under tests/tidy/fixtures/ marks every line the analyzer
 * must diagnose with a trailing `// FIRE: <check-name>` comment; the test
 * asserts exact set equality between markers and findings, so both missed
 * diagnostics (false negatives) and extra diagnostics (false positives)
 * fail.  Clean fixtures simply carry no markers.  Fixtures steer the
 * engine with `SWTIDY-AS:` (classify the file as if it lived at a src/
 * path) and `SWTIDY-OPTION:` (per-run options) directives, which is how
 * the allowlist and directory-exemption paths are exercised.
 *
 * The same engine then sweeps every .hh/.cc under src/: the tree must be
 * diagnostic-free, which keeps the determinism/hot-path/observability
 * contracts enforced on toolchains without clang-tidy (the CI tidy-plugin
 * job runs the AST-precise twin).
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "portable/analyzer.hh"

namespace fs = std::filesystem;

namespace {

fs::path
sourceDir()
{
    return fs::path(SW_SOURCE_DIR);
}

fs::path
fixtureDir()
{
    return sourceDir() / "tests" / "tidy" / "fixtures";
}

/** (line, check) pairs from `// FIRE: <check>` markers in @p path. */
std::set<std::pair<int, std::string>>
parseExpected(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
    std::set<std::pair<int, std::string>> expected;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string marker = "// FIRE:";
        std::size_t at = line.find(marker);
        if (at == std::string::npos)
            continue;
        std::string check = line.substr(at + marker.size());
        // trim
        check.erase(0, check.find_first_not_of(" \t"));
        std::size_t end = check.find_last_not_of(" \t\r");
        check.erase(end == std::string::npos ? 0 : end + 1);
        if (check.empty()) {
            ADD_FAILURE() << path << ":" << lineno << ": empty FIRE marker";
            continue;
        }
        expected.emplace(lineno, check);
    }
    return expected;
}

std::set<std::pair<int, std::string>>
runFixture(const fs::path &path)
{
    swtidy::Analyzer analyzer;
    EXPECT_TRUE(analyzer.addFile(path.string()));
    std::set<std::pair<int, std::string>> actual;
    for (const swtidy::Diagnostic &diag : analyzer.run())
        actual.emplace(diag.line, diag.check);
    return actual;
}

void
expectFixture(const std::string &name)
{
    const fs::path path = fixtureDir() / name;
    auto expected = parseExpected(path);
    auto actual = runFixture(path);
    EXPECT_EQ(expected, actual) << "fixture " << name
                                << ": FIRE markers and findings disagree";
}

TEST(TidyFixtures, NondeterministicIterationFires)
{
    auto expected = parseExpected(fixtureDir() / "iteration_fire.cc");
    EXPECT_EQ(expected.size(), 2u) << "fixture should mark two loops";
    expectFixture("iteration_fire.cc");
}

TEST(TidyFixtures, NondeterministicIterationClean)
{
    expectFixture("iteration_clean.cc");
}

TEST(TidyFixtures, NondeterministicIterationAllowlist)
{
    expectFixture("iteration_allowlist.cc");
}

TEST(TidyFixtures, WallclockFires)
{
    auto expected = parseExpected(fixtureDir() / "wallclock_fire.cc");
    EXPECT_EQ(expected.size(), 3u)
        << "fixture should mark clock, rand and random_device";
    expectFixture("wallclock_fire.cc");
}

TEST(TidyFixtures, WallclockCleanInExemptDir)
{
    expectFixture("wallclock_clean.cc");
}

TEST(TidyFixtures, WallclockClockSanctionedInProfHome)
{
    // src/prof may read steady_clock (that is the profiler's whole job),
    // but the entropy half of the check still applies there: exactly the
    // rand/random_device markers fire, the clock read does not.
    auto expected = parseExpected(fixtureDir() / "wallclock_prof_home.cc");
    EXPECT_EQ(expected.size(), 2u)
        << "fixture should mark rand and random_device only";
    expectFixture("wallclock_prof_home.cc");
}

TEST(TidyFixtures, WallclockMacroBodyInSimStillFires)
{
    // The allowlist keys on where the clock read is *spelled*: a macro
    // whose body lives in a sim file keeps firing, so SW_PROF_SCOPE's
    // immunity (spelled in src/prof/hostprof.hh) cannot be forged by
    // wrapping a clock read in a local macro.
    auto expected = parseExpected(fixtureDir() / "wallclock_macro_body.cc");
    EXPECT_EQ(expected.size(), 1u);
    expectFixture("wallclock_macro_body.cc");
}

TEST(TidyFixtures, InlineCaptureSpillFires)
{
    auto expected = parseExpected(fixtureDir() / "capture_fire.cc");
    EXPECT_EQ(expected.size(), 2u)
        << "fixture should mark the literal and the named lambda";
    expectFixture("capture_fire.cc");
}

TEST(TidyFixtures, InlineCaptureSpillClean)
{
    expectFixture("capture_clean.cc");
}

TEST(TidyFixtures, StatRegistrationFires)
{
    expectFixture("stats_fire.cc");
}

TEST(TidyFixtures, StatRegistrationClean)
{
    expectFixture("stats_clean.cc");
}

TEST(TidyFixtures, StatRegistrationSkipsDeclarationOnly)
{
    expectFixture("stats_declared_only.cc");
}

TEST(TidyFixtures, AuditSideEffectFires)
{
    auto expected = parseExpected(fixtureDir() / "audit_fire.cc");
    EXPECT_EQ(expected.size(), 3u)
        << "fixture should mark ++, compound assignment and push_back";
    expectFixture("audit_fire.cc");
}

TEST(TidyFixtures, AuditSideEffectClean)
{
    expectFixture("audit_clean.cc");
}

TEST(TidyFixtures, RawVpnKeyFires)
{
    auto expected = parseExpected(fixtureDir() / "rawvpn_fire.cc");
    EXPECT_EQ(expected.size(), 4u)
        << "fixture should mark lookup, fill, allocPending and invalidate";
    expectFixture("rawvpn_fire.cc");
}

TEST(TidyFixtures, RawVpnKeyClean)
{
    expectFixture("rawvpn_clean.cc");
}

TEST(TidyFixtures, RawVpnKeySanctionedInVmHome)
{
    // src/vm is where the Vpn-level machinery lives (page tables, address
    // decomposition); raw-VPN calls are the intended interface there.
    expectFixture("rawvpn_vm_home.cc");
}

TEST(TidyFixtures, EveryCheckHasAFiringAndACleanFixture)
{
    // Guards against a future check landing without fixtures: every check
    // name must appear in at least one FIRE marker, and every check must
    // have at least one marker-free fixture exercising its clean path.
    std::set<std::string> fired;
    std::size_t cleanFixtures = 0;
    for (const auto &entry : fs::directory_iterator(fixtureDir())) {
        auto expected = parseExpected(entry.path());
        if (expected.empty())
            ++cleanFixtures;
        for (const auto &[line, check] : expected)
            fired.insert(check);
    }
    for (const std::string &check : swtidy::allChecks())
        EXPECT_TRUE(fired.count(check))
            << "no firing fixture for " << check;
    EXPECT_GE(cleanFixtures, 5u);
}

// The gate: the real tree must be diagnostic-free.  True positives get
// fixed in-tree (see src/sim/ordered.hh for the sanctioned iteration
// helper); suppressions require a NOLINT with a justification comment per
// docs/STATIC_ANALYSIS.md.
TEST(TidySourceTree, SrcIsDiagnosticClean)
{
    swtidy::Analyzer analyzer;
    std::vector<std::string> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(sourceDir() / "src")) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".hh" || ext == ".cc")
            files.push_back(entry.path().string());
    }
    ASSERT_GE(files.size(), 50u) << "src/ walk looks wrong";
    std::sort(files.begin(), files.end());
    for (const std::string &file : files)
        ASSERT_TRUE(analyzer.addFile(file)) << "cannot read " << file;

    std::ostringstream report;
    auto diags = analyzer.run();
    for (const swtidy::Diagnostic &diag : diags)
        report << "  " << swtidy::renderDiagnostic(diag) << "\n";
    EXPECT_TRUE(diags.empty())
        << diags.size() << " softwalker- finding(s) in src/ — fix in-tree "
        << "or suppress with a justified NOLINT "
        << "(docs/STATIC_ANALYSIS.md):\n"
        << report.str();
}

} // namespace
