/**
 * @file
 * Fuzz harness for the .swtrace decoder (TraceReader / decodeTrace).
 *
 * decodeTrace() is the one place the simulator parses attacker-shaped
 * bytes: every malformed input must end in a clean fatal() diagnostic,
 * never an out-of-bounds read, unbounded allocation, or panic (a panic is
 * an internal invariant failure and means the decoder itself is broken).
 * The harness drives the decoder through the failure hook: "fatal" is
 * trapped and counts as a graceful rejection, "panic" is left alone so
 * the process aborts and the bug is caught.
 *
 * Two build modes share this file:
 *
 *  - SOFTWALKER_FUZZ=ON (clang only): compiled with -fsanitize=fuzzer as
 *    a libFuzzer entry point (LLVMFuzzerTestOneInput).  CI runs a
 *    60-second smoke with the seed corpus; locally, point it at
 *    tests/trace/corpus/ and let it run.
 *
 *  - default: a standalone regression binary.  With no arguments it
 *    self-generates the seed corpus (a valid trace plus systematic
 *    corruptions: truncations, bit flips, oversized counts) and runs
 *    every input through the decoder; `--write-corpus DIR` additionally
 *    writes the seeds as files for the libFuzzer mode; any other
 *    arguments are treated as corpus files to replay.  ctest runs the
 *    no-argument mode on every build.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "trace/trace_format.hh"

namespace {

/** Thrown by the failure hook to unwind out of fatal() back to the driver. */
struct FatalTrap : std::runtime_error
{
    explicit FatalTrap(const std::string &msg) : std::runtime_error(msg) {}
};

void
installTrap()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    sw::setFailureHook([](const char *kind, const std::string &msg) {
        // Trap fatal (malformed input — expected); let panic abort (a
        // decoder invariant failed — that is the bug being hunted).
        if (std::strcmp(kind, "fatal") == 0)
            throw FatalTrap(msg);
    });
}

/**
 * One fuzz iteration: decode; on success the decoder must also be able to
 * round-trip its own output (encode(decode(x)) re-decodes losslessly).
 */
void
oneInput(const std::uint8_t *data, std::size_t size)
{
    sw::TraceFile decoded;
    try {
        decoded = sw::decodeTrace(data, size, "fuzz-input");
    } catch (const FatalTrap &) {
        return; // graceful rejection
    }
    std::vector<std::uint8_t> bytes = sw::encodeTrace(decoded);
    sw::TraceFile again;
    try {
        again = sw::decodeTrace(bytes.data(), bytes.size(), "fuzz-reencode");
    } catch (const FatalTrap &trap) {
        sw::panic("re-encoded trace failed to decode: %s", trap.what());
    }
    if (again.totalInstrs() != decoded.totalInstrs() ||
        again.streams.size() != decoded.streams.size()) {
        sw::panic("trace round-trip changed shape: %llu/%zu -> %llu/%zu",
                  (unsigned long long)decoded.totalInstrs(),
                  decoded.streams.size(),
                  (unsigned long long)again.totalInstrs(),
                  again.streams.size());
    }
}

} // namespace

#if defined(SOFTWALKER_FUZZ)

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    installTrap();
    oneInput(data, size);
    return 0;
}

#else // standalone regression binary

namespace {

sw::TraceFile
makeSeedTrace()
{
    sw::TraceFile trace;
    trace.header.configDigest = 0x1234'5678'9abc'def0ull;
    trace.header.name = "fuzz-seed";
    trace.header.footprintBytes = 1 << 20;
    trace.header.irregular = true;
    trace.header.limits.warpInstrQuota = 64;
    for (sw::SmId sm = 0; sm < 2; ++sm) {
        for (sw::WarpId warp = 0; warp < 2; ++warp) {
            sw::TraceStream stream;
            stream.sm = sm;
            stream.warp = warp;
            for (unsigned i = 0; i < 8; ++i) {
                sw::WarpInstr instr;
                instr.computeGap = i * 3;
                instr.activeLanes = 1 + (i % 32);
                for (unsigned lane = 0; lane < instr.activeLanes; ++lane)
                    instr.addrs[lane] =
                        0x1000'0000ull + (sm * 4 + warp) * 0x10000ull +
                        i * 64ull + lane * 4ull;
                instr.write = (i % 3) == 0;
                stream.instrs.push_back(instr);
            }
            trace.streams.push_back(std::move(stream));
        }
    }
    return trace;
}

/** Seed corpus: one valid trace plus systematic corruptions of it. */
std::vector<std::vector<std::uint8_t>>
makeSeeds()
{
    std::vector<std::vector<std::uint8_t>> seeds;
    const std::vector<std::uint8_t> valid = sw::encodeTrace(makeSeedTrace());
    seeds.push_back(valid);

    // Truncations at every interesting boundary and a byte into the tail.
    for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{7},
                            std::size_t{8}, std::size_t{12},
                            valid.size() / 2, valid.size() - 1})
        seeds.emplace_back(valid.begin(),
                           valid.begin() +
                               static_cast<std::ptrdiff_t>(
                                   std::min(cut, valid.size())));

    // Single-byte corruptions spread over the whole file: header magic,
    // version, varint length prefixes, record payload.
    for (std::size_t at = 0; at < valid.size();
         at += 1 + valid.size() / 64) {
        std::vector<std::uint8_t> flipped = valid;
        flipped[at] ^= 0xff;
        seeds.push_back(std::move(flipped));
    }

    // An absurd stream-count varint right after the fixed header, to
    // probe for pre-allocation from untrusted counts.
    std::vector<std::uint8_t> huge(valid.begin(), valid.begin() + 12);
    for (int i = 0; i < 9; ++i)
        huge.push_back(0xff);
    huge.push_back(0x7f);
    seeds.push_back(std::move(huge));

    // Continuation bit set forever (malformed varint).
    std::vector<std::uint8_t> runaway(valid.begin(), valid.begin() + 12);
    runaway.insert(runaway.end(), 64, 0x80);
    seeds.push_back(std::move(runaway));

    return seeds;
}

std::vector<std::uint8_t>
readAll(const char *path)
{
    std::FILE *in = std::fopen(path, "rb");
    if (!in) {
        // Not fatal(): the failure hook is already armed to throw.
        std::fprintf(stderr, "cannot open corpus file %s\n", path);
        std::exit(2);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(in);
    return bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    installTrap();

    const char *corpusDir = nullptr;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--write-corpus") == 0 && i + 1 < argc)
            corpusDir = argv[++i];
        else
            files.push_back(argv[i]);
    }

    std::size_t ran = 0;
    if (files.empty()) {
        std::vector<std::vector<std::uint8_t>> seeds = makeSeeds();
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            oneInput(seeds[i].data(), seeds[i].size());
            ++ran;
            if (corpusDir) {
                std::string path =
                    std::string(corpusDir) + "/seed-" + std::to_string(i) +
                    ".swtrace.bin";
                std::FILE *out = std::fopen(path.c_str(), "wb");
                if (!out) {
                    std::fprintf(stderr, "cannot write %s\n", path.c_str());
                    return 2;
                }
                std::fwrite(seeds[i].data(), 1, seeds[i].size(), out);
                std::fclose(out);
            }
        }
    } else {
        for (const char *path : files) {
            std::vector<std::uint8_t> bytes = readAll(path);
            oneInput(bytes.data(), bytes.size());
            ++ran;
        }
    }

    std::printf("fuzz_trace_reader: %zu input(s), no decoder invariant "
                "violations\n", ran);
    return 0;
}

#endif // SOFTWALKER_FUZZ
