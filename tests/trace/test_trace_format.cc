/**
 * @file
 * Unit tests for the `.swtrace` binary format: varint/zigzag primitives,
 * the configuration digest, and encode/decode round trips (in memory and
 * through a file).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_format.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(TraceVarint, RoundTripsRepresentativeValues)
{
    const std::uint64_t values[] = {
        0, 1, 127, 128, 129, 300, 16383, 16384,
        0xDEADBEEFull, 0xFFFFFFFFull, 0x123456789ABCDEFull,
        ~std::uint64_t(0),
    };
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        putVarint(buf, v);
    TraceReader reader(buf.data(), buf.size(), "test");
    for (std::uint64_t v : values)
        EXPECT_EQ(reader.varint(), v);
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceVarint, SmallValuesAreOneByte)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 127);
    EXPECT_EQ(buf.size(), 1u);
    putVarint(buf, 128);
    EXPECT_EQ(buf.size(), 3u) << "128 needs two bytes";
}

TEST(TraceVarint, ZigzagRoundTripsSignedDeltas)
{
    const std::int64_t values[] = {
        0, 1, -1, 2, -2, 63, -63, 64, -64, 4096, -4096,
        std::int64_t(0x7FFFFFFFFFFFFFFF),
        std::int64_t(-0x7FFFFFFFFFFFFFFF) - 1,
    };
    std::vector<std::uint8_t> buf;
    for (std::int64_t v : values)
        putSvarint(buf, v);
    TraceReader reader(buf.data(), buf.size(), "test");
    for (std::int64_t v : values)
        EXPECT_EQ(reader.svarint(), v);
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceVarint, ZigzagKeepsSmallMagnitudesShort)
{
    // The whole point of zigzag: -1 must not cost ten bytes.
    std::vector<std::uint8_t> buf;
    putSvarint(buf, -1);
    EXPECT_EQ(buf.size(), 1u);
    putSvarint(buf, -64);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(TraceDigest, StableForEqualConfigs)
{
    EXPECT_EQ(configDigest(test::smallConfig()),
              configDigest(test::smallConfig()));
    EXPECT_EQ(configDigest(makeSoftWalkerConfig()),
              configDigest(makeSoftWalkerConfig()));
}

TEST(TraceDigest, SensitiveToSimulationRelevantFields)
{
    GpuConfig base = test::smallConfig();
    std::uint64_t digest = configDigest(base);

    GpuConfig changed = base;
    changed.mode = TranslationMode::SoftWalker;
    EXPECT_NE(configDigest(changed), digest);

    changed = base;
    changed.numSms += 1;
    EXPECT_NE(configDigest(changed), digest);

    changed = base;
    changed.pageBytes = 2ull * 1024 * 1024;
    EXPECT_NE(configDigest(changed), digest);

    changed = base;
    changed.rngSeed += 1;
    EXPECT_NE(configDigest(changed), digest);
}

TEST(TraceDigest, IgnoresTheAuditInterval)
{
    // Conservation audits ride the non-perturbing periodic check; a trace
    // recorded with audits on must replay with them off and vice versa.
    GpuConfig base = test::smallConfig();
    GpuConfig audited = base;
    audited.auditIntervalCycles = 5000;
    EXPECT_EQ(configDigest(base), configDigest(audited));
}

TEST(TraceDigest, NeverReturnsTheUnknownSentinel)
{
    EXPECT_NE(configDigest(test::smallConfig()), kUnknownConfigDigest);
}

TEST(TraceEncode, RoundTripsHeaderAndStreams)
{
    TraceFile trace;
    trace.header.configDigest = 0xFEEDFACECAFEBEEFull;
    trace.header.name = "unit";
    trace.header.footprintBytes = 123456789;
    trace.header.irregular = true;
    trace.header.limits.warpInstrQuota = 300;
    trace.header.limits.warmupInstrs = 50;
    trace.header.limits.maxCycles = 1000000;
    trace.header.limits.maxActiveWarps = 8;

    TraceStream s0;
    s0.sm = 0;
    s0.warp = 3;
    WarpInstr a;
    a.computeGap = 7;
    a.activeLanes = 3;
    a.addrs[0] = 0x10000;
    a.addrs[1] = 0x0FFC0;       // negative intra-warp delta
    a.addrs[2] = 0x900000000ull;
    a.write = false;
    s0.instrs.push_back(a);
    WarpInstr b;
    b.computeGap = 0;
    b.activeLanes = 1;
    b.addrs[0] = 0xFF00;        // negative lane-0 chain delta
    b.write = true;
    s0.instrs.push_back(b);
    WarpInstr idle;             // what a drained replay emits
    idle.computeGap = 2;
    idle.activeLanes = 0;
    s0.instrs.push_back(idle);
    trace.streams.push_back(s0);

    TraceStream s1;
    s1.sm = 2;
    s1.warp = 0;
    WarpInstr c;
    c.computeGap = 1;
    c.activeLanes = 32;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        c.addrs[lane] = 0x4000 + 64 * lane;
    s1.instrs.push_back(c);
    trace.streams.push_back(s1);

    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "round-trip");

    EXPECT_EQ(back.header.configDigest, trace.header.configDigest);
    EXPECT_EQ(back.header.name, "unit");
    EXPECT_EQ(back.header.footprintBytes, 123456789u);
    EXPECT_TRUE(back.header.irregular);
    EXPECT_EQ(back.header.limits.warpInstrQuota, 300u);
    EXPECT_EQ(back.header.limits.warmupInstrs, 50u);
    EXPECT_EQ(back.header.limits.maxCycles, 1000000u);
    EXPECT_EQ(back.header.limits.maxActiveWarps, 8u);

    ASSERT_EQ(back.streams.size(), 2u);
    ASSERT_EQ(back.streams[0].instrs.size(), 3u);
    EXPECT_EQ(back.streams[0].sm, 0u);
    EXPECT_EQ(back.streams[0].warp, 3u);
    const WarpInstr &ra = back.streams[0].instrs[0];
    EXPECT_EQ(ra.computeGap, 7u);
    ASSERT_EQ(ra.activeLanes, 3u);
    EXPECT_EQ(ra.addrs[0], 0x10000u);
    EXPECT_EQ(ra.addrs[1], 0x0FFC0u);
    EXPECT_EQ(ra.addrs[2], 0x900000000ull);
    EXPECT_FALSE(ra.write);
    const WarpInstr &rb = back.streams[0].instrs[1];
    EXPECT_EQ(rb.addrs[0], 0xFF00u);
    EXPECT_TRUE(rb.write);
    const WarpInstr &ridle = back.streams[0].instrs[2];
    EXPECT_EQ(ridle.activeLanes, 0u);
    EXPECT_EQ(ridle.computeGap, 2u);

    ASSERT_EQ(back.streams[1].instrs.size(), 1u);
    const WarpInstr &rc = back.streams[1].instrs[0];
    ASSERT_EQ(rc.activeLanes, 32u);
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(rc.addrs[lane], 0x4000u + 64 * lane);

    EXPECT_EQ(back.totalInstrs(), 4u);
}

TEST(TraceEncode, FetchOrderRoundTrips)
{
    TraceFile trace;
    trace.header.name = "ordered";
    for (WarpId warp = 0; warp < 2; ++warp) {
        TraceStream stream;
        stream.sm = 0;
        stream.warp = warp;
        for (int i = 0; i < 3; ++i) {
            WarpInstr instr;
            instr.activeLanes = 1;
            instr.addrs[0] = VirtAddr(0x1000 * (i + 1) + 0x100000 * warp);
            stream.instrs.push_back(instr);
        }
        trace.streams.push_back(std::move(stream));
    }
    // A skewed interleave round-robin could never produce.
    trace.fetchOrder = {0, 0, 1, 0, 1, 1};

    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "order");
    EXPECT_EQ(back.fetchOrder, trace.fetchOrder);
}

/**
 * Hand-encode the fixed header plus the varint-coded trace header for a
 * legacy (pre-v3) file: one stream named "legacy", no digest, no limits.
 * Stream sections and the fetch-order section are the caller's job.
 */
std::vector<std::uint8_t>
legacyHeader(std::uint32_t version)
{
    std::vector<std::uint8_t> bytes;
    for (char c : kTraceMagic)
        bytes.push_back(std::uint8_t(c));
    for (int i = 0; i < 4; ++i)
        bytes.push_back(std::uint8_t(version >> (8 * i)));
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0);             // digest: unknown origin
    const std::string name = "legacy";
    putVarint(bytes, name.size());
    bytes.insert(bytes.end(), name.begin(), name.end());
    putVarint(bytes, 0);                // footprint
    bytes.push_back(0);                 // irregular flag
    for (int i = 0; i < 4; ++i)
        putVarint(bytes, 0);            // limits
    return bytes;
}

/** One stream (sm 0, warp 0) with a single 1-lane read of 0x4000. */
void
appendLegacyStream(std::vector<std::uint8_t> &bytes)
{
    putVarint(bytes, 1);                // stream count
    putVarint(bytes, 0);                // sm
    putVarint(bytes, 0);                // warp — v1/v2 carry no asid
    putVarint(bytes, 1);                // instruction count
    putVarint(bytes, 0);                // computeGap
    bytes.push_back(1);                 // 1 active lane, read
    putSvarint(bytes, 0x4000);
}

TEST(TraceEncode, VersionOneBytesStillDecode)
{
    // A v1 file ends right after the last stream record: no asid field,
    // no fetch-order section.  Readers must keep accepting it (asid
    // decodes as 0, fetchOrder stays empty).
    std::vector<std::uint8_t> bytes = legacyHeader(1);
    appendLegacyStream(bytes);

    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "legacy");
    EXPECT_EQ(back.header.name, "legacy");
    ASSERT_EQ(back.streams.size(), 1u);
    EXPECT_EQ(back.streams[0].instrs[0].addrs[0], 0x4000u);
    EXPECT_EQ(back.streams[0].asid, 0u);
    EXPECT_TRUE(back.fetchOrder.empty());
}

TEST(TraceEncode, VersionTwoBytesStillDecode)
{
    // A v2 file has the fetch-order section but no per-stream asid field;
    // its streams must decode as the single-tenant address space.
    std::vector<std::uint8_t> bytes = legacyHeader(2);
    appendLegacyStream(bytes);
    putVarint(bytes, 1);                // fetch-order entries
    putVarint(bytes, 0);                // ... the one stream

    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "legacy-v2");
    ASSERT_EQ(back.streams.size(), 1u);
    EXPECT_EQ(back.streams[0].asid, 0u);
    EXPECT_EQ(back.fetchOrder, std::vector<std::uint32_t>{0});
}

TEST(TraceEncode, AsidRoundTrips)
{
    TraceFile trace;
    trace.header.name = "tenants";
    const Asid asids[] = {0, 1, 3};
    for (std::size_t i = 0; i < 3; ++i) {
        TraceStream stream;
        stream.sm = SmId(i);
        stream.warp = 0;
        stream.asid = asids[i];
        WarpInstr instr;
        instr.activeLanes = 1;
        instr.addrs[0] = VirtAddr(0x1000 * (i + 1));
        stream.instrs.push_back(instr);
        trace.streams.push_back(std::move(stream));
    }

    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "tenants");
    ASSERT_EQ(back.streams.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(back.streams[i].asid, asids[i]);
}

TEST(TraceEncode, EmptyTraceRoundTrips)
{
    TraceFile trace;
    trace.header.name = "empty";
    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "empty");
    EXPECT_EQ(back.header.name, "empty");
    EXPECT_TRUE(back.streams.empty());
    EXPECT_EQ(back.totalInstrs(), 0u);
}

TEST(TraceEncode, FileRoundTrip)
{
    TraceFile trace;
    trace.header.name = "disk";
    trace.header.footprintBytes = 4096;
    TraceStream stream;
    stream.sm = 1;
    stream.warp = 2;
    WarpInstr instr;
    instr.activeLanes = 2;
    instr.addrs[0] = 0x1000;
    instr.addrs[1] = 0x2000;
    stream.instrs.push_back(instr);
    trace.streams.push_back(stream);

    std::string path = tempPath("format_file_roundtrip.swtrace");
    writeTraceFile(path, trace);
    TraceFile back = readTraceFile(path);
    EXPECT_EQ(back.header.name, "disk");
    ASSERT_EQ(back.streams.size(), 1u);
    EXPECT_EQ(back.streams[0].instrs[0].addrs[1], 0x2000u);
}

} // namespace
