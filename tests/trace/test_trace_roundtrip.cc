/**
 * @file
 * The determinism contract, end to end: recording a run and replaying the
 * trace under the recording configuration reproduces the RunResult
 * field-identically (every field, doubles compared bit-for-bit via the %a
 * fingerprint).  Also covers the replay end policies, the recorded-limits
 * fallback, the "trace:" factory scheme, and the text converter.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/rng.hh"
#include "trace/trace_convert.hh"
#include "trace/trace_format.hh"
#include "trace/trace_recorder.hh"
#include "trace/trace_workload.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

Gpu::RunLimits
tinyLimits()
{
    Gpu::RunLimits limits = defaultLimits();
    limits.warpInstrQuota = 300;
    limits.warmupInstrs = 50;
    return limits;
}

/** Record a benchmark run, then replay the trace; both fingerprints. */
void
expectRoundTripIdentical(const GpuConfig &cfg, const char *bench,
                         const char *path_name)
{
    std::string path = tempPath(path_name);

    RunSpec record;
    record.cfg = cfg;
    record.benchmark = &findBenchmark(bench);
    record.limits = tinyLimits();
    record.recordPath = path;
    RunResult recorded = run(std::move(record));

    RunSpec replay;
    replay.cfg = cfg;
    replay.replayPath = path;   // limits come from the trace header
    RunResult replayed = run(std::move(replay));

    EXPECT_EQ(fingerprint(recorded), fingerprint(replayed))
        << bench << " replay diverged from the recorded run";
}

TEST(TraceRoundTrip, ReplayIsFieldIdenticalHardwarePtw)
{
    expectRoundTripIdentical(test::smallConfig(), "gups",
                             "roundtrip_hw.swtrace");
}

TEST(TraceRoundTrip, ReplayIsFieldIdenticalSoftWalker)
{
    expectRoundTripIdentical(test::smallSoftWalkerConfig(), "bfs",
                             "roundtrip_sw.swtrace");
}

TEST(TraceRoundTrip, ReplayUsesRecordedLimitsByDefault)
{
    GpuConfig cfg = test::smallConfig();
    std::string path = tempPath("recorded_limits.swtrace");

    RunSpec record;
    record.cfg = cfg;
    record.benchmark = &findBenchmark("gups");
    record.limits = tinyLimits();
    record.recordPath = path;
    RunResult recorded = run(std::move(record));

    TraceWorkload trace(path);
    EXPECT_EQ(trace.recordedLimits().warpInstrQuota, 300u);
    EXPECT_EQ(trace.recordedLimits().warmupInstrs, 50u);

    // A bare replay reruns exactly the captured region: same instruction
    // count, not the (much larger) harness default quota.
    RunSpec replay;
    replay.cfg = cfg;
    replay.replayPath = path;
    RunResult replayed = run(std::move(replay));
    EXPECT_EQ(replayed.warpInstrs, recorded.warpInstrs);
}

TEST(TraceRoundTrip, RecorderCapturesMetadataAndStreams)
{
    GpuConfig cfg = test::smallConfig();
    const BenchmarkInfo &info = findBenchmark("gups");
    TraceRecorder recorder(makeWorkload(info));
    EXPECT_EQ(recorder.name(), info.abbr);
    EXPECT_EQ(recorder.irregular(), info.irregular);
    EXPECT_EQ(recorder.footprintBytes(),
              info.footprintMb * 1024 * 1024);

    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        recorder.next(SmId(i % 2), WarpId(i % 4), rng);
    EXPECT_EQ(recorder.recordedInstrs(), 10u);
    EXPECT_EQ(recorder.numStreams(), 4u);   // (0,0) (0,2) (1,1) (1,3)

    TraceLimits limits;
    limits.warpInstrQuota = 10;
    TraceFile snap = recorder.snapshot(cfg, limits);
    EXPECT_EQ(snap.header.name, info.abbr);
    EXPECT_EQ(snap.header.configDigest, configDigest(cfg));
    EXPECT_EQ(snap.totalInstrs(), 10u);
    // Streams are sorted by (sm, warp): the determinism the file order
    // inherits from the recorder's map.
    ASSERT_EQ(snap.streams.size(), 4u);
    EXPECT_LT(snap.streams[0].warp, snap.streams[1].warp);
    EXPECT_LT(snap.streams[0].sm, snap.streams[2].sm);

    // The capture loop above fetched (0,0) (1,1) (0,2) (1,3) cyclically;
    // with sorted stream indexes (0,0)=0 (0,2)=1 (1,1)=2 (1,3)=3 the
    // recorded global fetch order is:
    const std::vector<std::uint32_t> expected =
        {0, 2, 1, 3, 0, 2, 1, 3, 0, 2};
    EXPECT_EQ(snap.fetchOrder, expected);

    // And it survives a disk round trip.
    std::string path = tempPath("recorder_order.swtrace");
    writeTraceFile(path, snap);
    EXPECT_EQ(readTraceFile(path).fetchOrder, expected);
}

TEST(TraceRoundTrip, DrainedStreamEmitsIdleInstructions)
{
    TraceFile trace;
    trace.header.name = "drain";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    WarpInstr instr;
    instr.activeLanes = 1;
    instr.addrs[0] = 0x1000;
    stream.instrs.push_back(instr);
    trace.streams.push_back(stream);

    TraceWorkload workload(trace, "drain-test", TraceEndPolicy::Drain);
    Rng rng(1);
    EXPECT_EQ(workload.next(0, 0, rng).activeLanes, 1u);
    EXPECT_EQ(workload.exhaustedStreams(), 0u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(workload.next(0, 0, rng).activeLanes, 0u)
            << "drained stream must go idle";
    EXPECT_EQ(workload.exhaustedStreams(), 1u);
    // A stream the recording never saw drains immediately too.
    EXPECT_EQ(workload.next(3, 7, rng).activeLanes, 0u);
    EXPECT_EQ(workload.replayedInstrs(), 5u);
}

TEST(TraceRoundTrip, LoopRewindsTheStream)
{
    TraceFile trace;
    trace.header.name = "loop";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    for (VirtAddr addr : {0x1000ull, 0x2000ull}) {
        WarpInstr instr;
        instr.activeLanes = 1;
        instr.addrs[0] = addr;
        stream.instrs.push_back(instr);
    }
    trace.streams.push_back(stream);

    TraceWorkload workload(trace, "loop-test", TraceEndPolicy::Loop);
    Rng rng(1);
    EXPECT_EQ(workload.next(0, 0, rng).addrs[0], 0x1000u);
    EXPECT_EQ(workload.next(0, 0, rng).addrs[0], 0x2000u);
    EXPECT_EQ(workload.next(0, 0, rng).addrs[0], 0x1000u)
        << "loop policy must rewind to the first record";
    EXPECT_EQ(workload.exhaustedStreams(), 1u);
    EXPECT_EQ(workload.next(0, 0, rng).addrs[0], 0x2000u);
}

TEST(TraceRoundTrip, FactorySchemeReplaysAFile)
{
    GpuConfig cfg = test::smallConfig();
    std::string path = tempPath("scheme.swtrace");

    RunSpec record;
    record.cfg = cfg;
    record.benchmark = &findBenchmark("gups");
    record.limits = tinyLimits();
    record.recordPath = path;
    run(std::move(record));

    std::unique_ptr<Workload> workload = makeWorkload("trace:" + path);
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->name(), "gups");
    auto *trace = dynamic_cast<TraceWorkload *>(workload.get());
    ASSERT_NE(trace, nullptr);
    EXPECT_GT(trace->totalInstrs(), 0u);
}

TEST(TraceRoundTrip, ConverterProducesAReplayableTrace)
{
    std::istringstream text(
        "swtrace-text 1\n"
        "# a hand-written trace\n"
        "name toy\n"
        "footprint 1048576\n"
        "irregular 1\n"
        "limits 100 10 50000 0\n"
        "stream 0 0\n"
        "instr 3 r 0x1000 0x2000 0x3000\n"
        "instr 1 w 4096\n"
        "instr 0 r\n"                      // explicit idle record
        "stream 1 2\n"
        "instr 2 r 65536\n");
    TraceFile trace = parseTextTrace(text, "inline");
    EXPECT_EQ(trace.header.name, "toy");
    EXPECT_EQ(trace.header.configDigest, kUnknownConfigDigest);
    EXPECT_EQ(trace.header.limits.warpInstrQuota, 100u);
    EXPECT_EQ(trace.totalInstrs(), 4u);

    // Binary round trip preserves the parse.
    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    TraceFile back = decodeTrace(bytes.data(), bytes.size(), "inline");
    ASSERT_EQ(back.streams.size(), 2u);
    EXPECT_EQ(back.streams[0].instrs[0].addrs[2], 0x3000u);
    EXPECT_TRUE(back.streams[0].instrs[1].write);
    EXPECT_EQ(back.streams[0].instrs[2].activeLanes, 0u);
    EXPECT_EQ(back.streams[1].instrs[0].addrs[0], 65536u);

    TraceWorkload workload(back, "inline");
    Rng rng(1);
    EXPECT_EQ(workload.next(0, 0, rng).addrs[0], 0x1000u);
    EXPECT_EQ(workload.footprintBytes(), 1048576u);
    EXPECT_TRUE(workload.irregular());
}

TEST(TraceRoundTrip, ReRecordingAReplayIsLossless)
{
    // Record a replay of a recorded trace: the second trace must carry the
    // same streams (drain-idle records excluded by using the same limits).
    GpuConfig cfg = test::smallConfig();
    std::string first = tempPath("rerecord_first.swtrace");
    std::string second = tempPath("rerecord_second.swtrace");

    RunSpec record;
    record.cfg = cfg;
    record.benchmark = &findBenchmark("gups");
    record.limits = tinyLimits();
    record.recordPath = first;
    RunResult one = run(std::move(record));

    RunSpec rerecord;
    rerecord.cfg = cfg;
    rerecord.replayPath = first;
    rerecord.recordPath = second;
    RunResult two = run(std::move(rerecord));
    EXPECT_EQ(fingerprint(one), fingerprint(two));

    RunSpec replay;
    replay.cfg = cfg;
    replay.replayPath = second;
    RunResult three = run(std::move(replay));
    EXPECT_EQ(fingerprint(one), fingerprint(three))
        << "second-generation replay diverged";
}

} // namespace
