/**
 * @file
 * Malformed-trace error paths.  The contract: every broken input —
 * truncated header, bad magic, unsupported version, corrupt body, config
 * mismatch, malformed text — dies through fatal() with a diagnostic
 * naming the input, never a crash or a silent misreplay.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace_convert.hh"
#include "trace/trace_format.hh"
#include "trace/trace_workload.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

/** A minimal valid encoded trace to corrupt. */
std::vector<std::uint8_t>
validBytes()
{
    TraceFile trace;
    trace.header.configDigest = configDigest(test::smallConfig());
    trace.header.name = "victim";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    for (int i = 0; i < 4; ++i) {
        WarpInstr instr;
        instr.activeLanes = 2;
        instr.addrs[0] = VirtAddr(0x1000 * (i + 1));
        instr.addrs[1] = VirtAddr(0x1000 * (i + 1) + 64);
        stream.instrs.push_back(instr);
    }
    trace.streams.push_back(stream);
    return encodeTrace(trace);
}

TEST(TraceErrorsDeath, TruncatedHeaderIsFatal)
{
    std::string path = tempPath("truncated_header.swtrace");
    writeBytes(path, {'S', 'W', 'T', 'R'});
    EXPECT_DEATH(readTraceFile(path), "truncated trace");
}

TEST(TraceErrorsDeath, EmptyFileIsFatal)
{
    std::string path = tempPath("empty.swtrace");
    writeBytes(path, {});
    EXPECT_DEATH(readTraceFile(path), "truncated trace");
}

TEST(TraceErrorsDeath, BadMagicIsFatal)
{
    std::vector<std::uint8_t> bytes = validBytes();
    bytes[0] = 'X';
    std::string path = tempPath("bad_magic.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path), "bad magic");
}

TEST(TraceErrorsDeath, UnsupportedVersionIsFatal)
{
    std::vector<std::uint8_t> bytes = validBytes();
    bytes[8] = 99;   // version u32le lives at bytes 8..11
    std::string path = tempPath("bad_version.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path), "unsupported format version");
}

TEST(TraceErrorsDeath, TruncatedBodyIsFatal)
{
    std::vector<std::uint8_t> bytes = validBytes();
    bytes.resize(bytes.size() - bytes.size() / 3);
    std::string path = tempPath("truncated_body.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path), "truncated trace");
}

TEST(TraceErrorsDeath, TrailingGarbageIsFatal)
{
    std::vector<std::uint8_t> bytes = validBytes();
    bytes.push_back(0x42);
    std::string path = tempPath("trailing.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path), "corrupt trace");
}

TEST(TraceErrorsDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(readTraceFile("/nonexistent/trace.swtrace"),
                 "cannot open trace");
}

TEST(TraceErrorsDeath, ConfigDigestMismatchIsFatal)
{
    std::string path = tempPath("digest_mismatch.swtrace");
    writeBytes(path, validBytes());
    TraceWorkload workload(path);

    GpuConfig same = test::smallConfig();
    workload.checkConfig(same);   // must pass silently

    GpuConfig other = test::smallConfig();
    other.numSms += 1;
    EXPECT_DEATH(workload.checkConfig(other), "config digest mismatch");
}

TEST(TraceErrors, UnknownDigestSkipsTheCheck)
{
    TraceFile trace;
    trace.header.name = "external";
    trace.header.configDigest = kUnknownConfigDigest;
    TraceWorkload workload(trace, "external");
    workload.checkConfig(test::smallConfig());   // warns, must not die
}

TEST(TraceErrorsDeath, TextMissingSignatureIsFatal)
{
    std::istringstream text("name toy\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "signature");
}

TEST(TraceErrorsDeath, TextEmptyInputIsFatal)
{
    std::istringstream text("");
    EXPECT_DEATH(parseTextTrace(text, "in"), "signature");
}

TEST(TraceErrorsDeath, TextMissingNameIsFatal)
{
    std::istringstream text("swtrace-text 1\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "missing 'name'");
}

TEST(TraceErrorsDeath, TextUnknownKeywordIsFatalWithLineNumber)
{
    std::istringstream text("swtrace-text 1\nname toy\nfrobnicate 3\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "in:3: unknown keyword");
}

TEST(TraceErrorsDeath, TextInstrBeforeStreamIsFatal)
{
    std::istringstream text("swtrace-text 1\nname toy\ninstr 0 r 4096\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "before any 'stream'");
}

TEST(TraceErrorsDeath, TextBadAccessKindIsFatal)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0\ninstr 0 x 4096\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "must be 'r' or 'w'");
}

TEST(TraceErrorsDeath, TextBadNumberIsFatal)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0\ninstr 0 r banana\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "not a number");
}

TEST(TraceErrorsDeath, TextDuplicateStreamIsFatal)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0\nstream 0 0\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "duplicate stream");
}

TEST(TraceErrors, TextStreamParsesOptionalAsid)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0\nstream 1 0 2\n");
    TraceFile trace = parseTextTrace(text, "in");
    ASSERT_EQ(trace.streams.size(), 2u);
    EXPECT_EQ(trace.streams[0].asid, 0u) << "asid defaults to 0";
    EXPECT_EQ(trace.streams[1].asid, 2u);
}

TEST(TraceErrorsDeath, TextStreamExtraArgumentsAreFatal)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0 1 9\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "optional");
}

TEST(TraceErrorsDeath, TextStreamBadAsidIsFatal)
{
    std::istringstream text(
        "swtrace-text 1\nname toy\nstream 0 0 pear\n");
    EXPECT_DEATH(parseTextTrace(text, "in"), "not a number");
}

TEST(TraceErrorsDeath, AsidTagDisagreeingWithPartitioningIsFatal)
{
    // A converted trace claims ASID 1 for a stream on SM 0, but a
    // single-tenant machine places every SM in ASID 0: replay would run
    // the stream in a different address space than declared.
    TraceFile trace;
    trace.header.name = "mistagged";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    stream.asid = 1;
    trace.streams.push_back(stream);
    TraceWorkload workload(trace, "mistagged");
    EXPECT_DEATH(workload.checkConfig(test::smallConfig()),
                 "tagged ASID 1");
}

TEST(TraceErrors, AsidTagsMatchingThePartitioningPass)
{
    // Two tenants on 4 SMs: SMs 0..1 are ASID 0, SMs 2..3 are ASID 1.
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 4;
    cfg.numTenants = 2;
    TraceFile trace;
    trace.header.name = "tenants";
    for (SmId sm = 0; sm < 4; ++sm) {
        TraceStream stream;
        stream.sm = sm;
        stream.warp = 0;
        stream.asid = tenantOfSm(cfg, sm);
        trace.streams.push_back(stream);
    }
    TraceWorkload workload(trace, "tenants");
    workload.checkConfig(cfg);   // digest-less: warns, must not die
}

TEST(TraceErrorsDeath, TextTooManyLanesIsFatal)
{
    std::ostringstream line;
    line << "swtrace-text 1\nname toy\nstream 0 0\ninstr 0 r";
    for (int i = 0; i < 33; ++i)
        line << " " << 4096 * (i + 1);
    line << "\n";
    std::istringstream text(line.str());
    EXPECT_DEATH(parseTextTrace(text, "in"), "max 32");
}

TEST(TraceErrorsDeath, ConverterMissingInputIsFatal)
{
    EXPECT_DEATH(convertTextTrace("/nonexistent/in.txt",
                                  tempPath("never.swtrace")),
                 "cannot open text trace");
}

/** validBytes() with a 4-entry fetch order replacing the empty one. */
std::vector<std::uint8_t>
orderedBytes(const std::vector<std::uint8_t> &order)
{
    std::vector<std::uint8_t> bytes = validBytes();
    // The file ends with the fetch-order section: count varint (0 for
    // validBytes) and nothing after it.
    EXPECT_EQ(bytes.back(), 0u);
    bytes.back() = std::uint8_t(order.size());
    bytes.insert(bytes.end(), order.begin(), order.end());
    return bytes;
}

TEST(TraceErrorsDeath, FetchOrderWrongCountIsFatal)
{
    // 3 entries for 4 recorded instructions: the order must cover every
    // record or be absent entirely.
    std::string path = tempPath("order_count.swtrace");
    writeBytes(path, orderedBytes({0, 0, 0}));
    EXPECT_DEATH(readTraceFile(path), "fetch order has 3 entries for 4");
}

TEST(TraceErrorsDeath, FetchOrderOverclaimedCountIsFatal)
{
    // Claims more entries than bytes remain: truncation, not allocation.
    // (100 keeps the count a one-byte varint.)
    std::vector<std::uint8_t> bytes = validBytes();
    ASSERT_EQ(bytes.back(), 0u);
    bytes.back() = 100;
    std::string path = tempPath("order_overclaim.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path), "fetch order claims 100 entries");
}

TEST(TraceErrorsDeath, FetchOrderBadStreamIndexIsFatal)
{
    // Entry names stream 7; the trace has one stream.
    std::string path = tempPath("order_index.swtrace");
    writeBytes(path, orderedBytes({0, 0, 7, 0}));
    EXPECT_DEATH(readTraceFile(path), "names stream 7 of 1");
}

TEST(TraceErrorsDeath, FetchOrderOverrunIsFatal)
{
    // Two streams of 4 and 0 records with an order visiting stream 1.
    TraceFile trace;
    trace.header.name = "overrun";
    TraceStream a;
    a.sm = 0;
    a.warp = 0;
    for (int i = 0; i < 4; ++i) {
        WarpInstr instr;
        instr.activeLanes = 1;
        instr.addrs[0] = VirtAddr(0x1000 * (i + 1));
        a.instrs.push_back(instr);
    }
    TraceStream b;
    b.sm = 0;
    b.warp = 1;
    trace.streams.push_back(a);
    trace.streams.push_back(b);
    trace.fetchOrder = {0, 0, 0, 0};
    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    // Redirect the last order entry at the empty stream.
    bytes.back() = 1;
    std::string path = tempPath("order_overrun.swtrace");
    writeBytes(path, bytes);
    EXPECT_DEATH(readTraceFile(path),
                 "visits stream \\(0, 1\\) more often");
}

TEST(TraceErrorsDeath, DuplicateBinaryStreamIsFatal)
{
    // decodeTrace tolerates what encodeTrace would never emit only up to
    // the replayer, which must reject two streams for one (sm, warp).
    TraceFile trace;
    trace.header.name = "dup";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    trace.streams.push_back(stream);
    trace.streams.push_back(stream);
    EXPECT_DEATH(TraceWorkload(trace, "dup"), "duplicate stream");
}

} // namespace
