/** @file Unit tests for the Request Distributor policies and credits. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/distributor.hh"
#include "sim/rng.hh"

using namespace sw;

namespace {

TEST(Distributor, RoundRobinCyclesThroughCores)
{
    RequestDistributor dist(4, 2, DistributorPolicy::RoundRobin, 1);
    EXPECT_EQ(dist.select(), 0u);
    EXPECT_EQ(dist.select(), 1u);
    EXPECT_EQ(dist.select(), 2u);
    EXPECT_EQ(dist.select(), 3u);
    EXPECT_EQ(dist.select(), 0u);
}

TEST(Distributor, CreditsChargeAndRelease)
{
    RequestDistributor dist(2, 1, DistributorPolicy::RoundRobin, 1);
    EXPECT_EQ(dist.select(), 0u);
    EXPECT_EQ(dist.counter(0), 1u);
    dist.release(0);
    EXPECT_EQ(dist.counter(0), 0u);
}

TEST(Distributor, FullCoresAreSkipped)
{
    RequestDistributor dist(3, 1, DistributorPolicy::RoundRobin, 1);
    dist.select();   // 0
    dist.select();   // 1
    dist.select();   // 2
    EXPECT_EQ(dist.select(), kInvalidSm);
    EXPECT_EQ(dist.stats().capacityStalls, 1u);
    dist.release(1);
    EXPECT_EQ(dist.select(), 1u);
}

TEST(Distributor, CapacityBoundsTotalCredits)
{
    RequestDistributor dist(4, 8, DistributorPolicy::RoundRobin, 1);
    int granted = 0;
    for (int i = 0; i < 100; ++i)
        if (dist.select() != kInvalidSm)
            ++granted;
    EXPECT_EQ(granted, 32);
    EXPECT_EQ(dist.totalCredits(), 32u);
}

TEST(Distributor, RandomPolicySpreadsLoad)
{
    RequestDistributor dist(8, 1000, DistributorPolicy::Random, 42);
    std::map<SmId, int> counts;
    for (int i = 0; i < 4000; ++i)
        ++counts[dist.select()];
    EXPECT_EQ(counts.size(), 8u);
    for (auto [sm, count] : counts)
        EXPECT_GT(count, 200) << "SM " << sm << " starved";
}

TEST(Distributor, RandomPolicyFallsBackToScanWhenNearlyFull)
{
    RequestDistributor dist(4, 1, DistributorPolicy::Random, 7);
    std::set<SmId> chosen;
    for (int i = 0; i < 4; ++i)
        chosen.insert(dist.select());
    EXPECT_EQ(chosen.size(), 4u);
    EXPECT_EQ(dist.select(), kInvalidSm);
}

TEST(Distributor, StallAwarePicksMostStalledCore)
{
    std::vector<std::uint32_t> stalls = {1, 9, 3, 5};
    RequestDistributor dist(4, 4, DistributorPolicy::StallAware, 1,
                            [&](SmId sm) { return stalls[sm]; });
    EXPECT_EQ(dist.select(), 1u);
    stalls[1] = 0;
    EXPECT_EQ(dist.select(), 3u);
}

TEST(Distributor, StallAwareSkipsFullCores)
{
    std::vector<std::uint32_t> stalls = {0, 9};
    RequestDistributor dist(2, 1, DistributorPolicy::StallAware, 1,
                            [&](SmId sm) { return stalls[sm]; });
    EXPECT_EQ(dist.select(), 1u);
    EXPECT_EQ(dist.select(), 0u) << "core 1 is at capacity";
}

TEST(Distributor, DispatchStatCounts)
{
    RequestDistributor dist(2, 2, DistributorPolicy::RoundRobin, 1);
    dist.select();
    dist.select();
    EXPECT_EQ(dist.stats().dispatched, 2u);
    dist.resetStats();
    EXPECT_EQ(dist.stats().dispatched, 0u);
    EXPECT_EQ(dist.counter(0), 1u) << "credits survive a stats reset";
}

TEST(DistributorDeath, ReleaseWithoutCreditPanics)
{
    RequestDistributor dist(2, 2, DistributorPolicy::RoundRobin, 1);
    EXPECT_DEATH(dist.release(0), "underflow");
}

TEST(Distributor, RangeSelectStaysInsideTheSlice)
{
    // Two tenants of a 6-SM machine: slices [0, 3) and [3, 6), one
    // round-robin cursor each (MIG-pinned software walks).
    RequestDistributor dist(6, 2, DistributorPolicy::RoundRobin, 1, {}, 2);
    for (int i = 0; i < 8; ++i) {
        SmId sm = dist.select(3, 3, 1);
        ASSERT_NE(sm, kInvalidSm);
        EXPECT_GE(sm, 3u);
        EXPECT_LT(sm, 6u);
        dist.release(sm);
    }
    for (int i = 0; i < 8; ++i) {
        SmId sm = dist.select(0, 3, 0);
        ASSERT_NE(sm, kInvalidSm);
        EXPECT_LT(sm, 3u);
        dist.release(sm);
    }
}

TEST(Distributor, RangeSelectCursorsAreIndependent)
{
    RequestDistributor dist(4, 8, DistributorPolicy::RoundRobin, 1, {}, 2);
    // Tenant 0 advances its cursor inside [0, 2)...
    EXPECT_EQ(dist.select(0, 2, 0), 0u);
    EXPECT_EQ(dist.select(0, 2, 0), 1u);
    // ...without disturbing tenant 1's round-robin inside [2, 4).
    EXPECT_EQ(dist.select(2, 2, 1), 2u);
    EXPECT_EQ(dist.select(2, 2, 1), 3u);
    EXPECT_EQ(dist.select(0, 2, 0), 0u);
}

TEST(Distributor, RangeSelectExhaustsOnlyTheSlice)
{
    RequestDistributor dist(4, 1, DistributorPolicy::RoundRobin, 1, {}, 2);
    EXPECT_NE(dist.select(0, 2, 0), kInvalidSm);
    EXPECT_NE(dist.select(0, 2, 0), kInvalidSm);
    // Slice [0, 2) is full; its tenant stalls while [2, 4) still serves.
    EXPECT_EQ(dist.select(0, 2, 0), kInvalidSm);
    EXPECT_NE(dist.select(2, 2, 1), kInvalidSm);
}

TEST(DistributorDeath, EmptyRangePanics)
{
    // The failure mode of confusing tenantSmRange's {first, count} result
    // with a {begin, end} pair: a zero-count range must die loudly.
    RequestDistributor dist(4, 1, DistributorPolicy::RoundRobin, 1, {}, 2);
    EXPECT_DEATH(dist.select(2, 0, 1), "out of bounds");
}

/** Property: across policies, credits never exceed capacity. */
class DistributorPolicyParam
    : public ::testing::TestWithParam<DistributorPolicy>
{
};

TEST_P(DistributorPolicyParam, CreditsNeverExceedCapacity)
{
    RequestDistributor dist(6, 3, GetParam(), 99,
                            [](SmId) { return 1u; });
    Rng rng(5);
    int outstanding_releases = 0;
    std::vector<SmId> charged;
    for (int i = 0; i < 500; ++i) {
        if (rng.uniform() < 0.6) {
            SmId sm = dist.select();
            if (sm != kInvalidSm)
                charged.push_back(sm);
        } else if (!charged.empty()) {
            dist.release(charged.back());
            charged.pop_back();
            ++outstanding_releases;
        }
        for (SmId sm = 0; sm < 6; ++sm)
            ASSERT_LE(dist.counter(sm), 3u);
    }
    (void)outstanding_releases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DistributorPolicyParam,
                         ::testing::Values(DistributorPolicy::RoundRobin,
                                           DistributorPolicy::Random,
                                           DistributorPolicy::StallAware));

} // namespace
