/** @file Integration tests for the SoftWalker backend on a small GPU. */

#include <gtest/gtest.h>

#include "core/softwalker.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

std::unique_ptr<Workload>
tinyGraphWorkload()
{
    GraphWorkload::Params params;
    params.gatherFraction = 0.6;
    params.pagesPerInstr = 1.0;
    params.windowPages = 8;
    return std::make_unique<GraphWorkload>("tiny", 256ull << 20, true, 10,
                                           params);
}

Gpu::RunLimits
tinyLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 400;
    limits.maxCycles = 2000000;
    return limits;
}

TEST(SoftWalkerBackend, InstallsOnSoftWalkerMode)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    EXPECT_FALSE(gpu.backendInstalled());
    installWalkBackend(gpu);
    ASSERT_TRUE(gpu.backendInstalled());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "softwalker");
    EXPECT_EQ(backend->hardwarePool(), nullptr);
}

TEST(SoftWalkerBackend, HybridKeepsHardwarePool)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.mode = TranslationMode::Hybrid;
    Gpu gpu(cfg, tinyGraphWorkload());
    installWalkBackend(gpu);
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "softwalker-hybrid");
    EXPECT_NE(backend->hardwarePool(), nullptr);
}

TEST(SoftWalkerBackend, HardwareModesSelfInstall)
{
    Gpu gpu(test::smallConfig(), tinyGraphWorkload());
    EXPECT_TRUE(gpu.backendInstalled());
    EXPECT_EQ(softWalkerOf(gpu), nullptr);
}

TEST(SoftWalkerBackend, RunCompletesAllWalks)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    const TranslationEngine::Stats &stats = gpu.engine().stats();
    EXPECT_GT(stats.walksCreated, 0u);
    EXPECT_EQ(stats.walksCompleted, stats.walksCreated);
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    EXPECT_EQ(backend->inFlight(), 0u);
    EXPECT_EQ(backend->stats().toSoftware, stats.walksCreated);
}

TEST(SoftWalkerBackend, PwWarpsExecuteTheWalks)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    PwWarp::Stats pw = backend->aggregatePwWarpStats();
    EXPECT_EQ(pw.walksCompleted, gpu.engine().stats().walksCompleted);
    EXPECT_GT(pw.instructionsIssued, 0u);
    EXPECT_GT(pw.ldptIssued, 0u);
    EXPECT_EQ(pw.ffbIssued, 0u) << "map-on-demand: no faults";
    // PW Warp issue slots were charged to the SMs.
    Sm::Stats sm = gpu.aggregateSmStats();
    EXPECT_EQ(sm.pwIssueCycles, pw.instructionsIssued);
}

TEST(SoftWalkerBackend, DistributorCreditsDrainToZero)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    EXPECT_EQ(backend->distributor().totalCredits(), 0u);
}

TEST(SoftWalkerBackend, TranslationsAreCorrectUnderSoftWalks)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    // Spot-check: L1 TLB contents agree with the page table.
    EXPECT_EQ(gpu.engine().stats().faults, 0u);
    EXPECT_GT(gpu.instructionsIssued(), 0u);
}

TEST(SoftWalkerBackend, HybridPrefersHardwareAtLowPressure)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.mode = TranslationMode::Hybrid;
    // Streaming workload: very few concurrent walks.
    StreamingWorkload::Params params;
    Gpu gpu(cfg, std::make_unique<StreamingWorkload>(
                     "stream", 512ull << 20, false, 10, params));
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    EXPECT_GT(backend->stats().toHardware, 0u);
    EXPECT_GE(backend->stats().toHardware, backend->stats().toSoftware);
}

TEST(SoftWalkerBackend, HybridSpillsToSoftwareUnderPressure)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.mode = TranslationMode::Hybrid;
    cfg.numPtws = 1;   // tiny hardware pool saturates instantly
    cfg.pwbEntries = 1;
    Gpu gpu(cfg, tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    EXPECT_GT(backend->stats().toSoftware, 0u);
    EXPECT_GT(backend->stats().toHardware, 0u);
}

TEST(SoftWalkerBackend, StallAwarePolicyRuns)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.distributorPolicy = DistributorPolicy::StallAware;
    Gpu gpu(cfg, tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    EXPECT_GT(gpu.engine().stats().walksCompleted, 0u);
}

TEST(SoftWalkerBackend, RandomPolicyRuns)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.distributorPolicy = DistributorPolicy::Random;
    Gpu gpu(cfg, tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    EXPECT_GT(gpu.engine().stats().walksCompleted, 0u);
}

TEST(SoftWalkerBackend, ResetStatsZeroesBackend)
{
    Gpu gpu(test::smallSoftWalkerConfig(), tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    backend->resetStats();
    EXPECT_EQ(backend->stats().submitted, 0u);
    EXPECT_EQ(backend->aggregatePwWarpStats().batches, 0u);
}

TEST(SoftWalkerBackendDeath, RejectsHardwareModeConstruction)
{
    Gpu gpu(test::smallConfig(), tinyGraphWorkload());
    EXPECT_DEATH(SoftWalkerBackend(gpu, test::smallConfig()),
                 "hardware mode");
}

/** Property: every distributor policy completes the same walk count. */
class PolicyEquivalence
    : public ::testing::TestWithParam<DistributorPolicy>
{
};

TEST_P(PolicyEquivalence, AllWalksComplete)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.distributorPolicy = GetParam();
    Gpu gpu(cfg, tinyGraphWorkload());
    installWalkBackend(gpu);
    gpu.run(tinyLimits());
    EXPECT_EQ(gpu.engine().stats().walksCompleted,
              gpu.engine().stats().walksCreated);
    EXPECT_EQ(softWalkerOf(gpu)->inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEquivalence,
                         ::testing::Values(DistributorPolicy::RoundRobin,
                                           DistributorPolicy::Random,
                                           DistributorPolicy::StallAware));

} // namespace
