/** @file Unit tests for the PW Warp execution model (Fig 14 routine). */

#include <gtest/gtest.h>

#include <vector>

#include "core/pw_warp.hh"
#include "vm/page_table.hh"
#include "sim/config.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

/** Fixture: PW Warp over a radix table with scripted memory + issue port. */
class PwWarpTest : public ::testing::Test
{
  protected:
    PwWarpTest()
        : geom(64 * 1024), alloc(64 * 1024), spaces(spacesConfig(), alloc),
          pt(spaces.tableFor(0)), pwb(8)
    {
    }

    static GpuConfig
    spacesConfig()
    {
        GpuConfig cfg = makeDefaultConfig();
        cfg.pageBytes = 64 * 1024;
        return cfg;
    }

    std::unique_ptr<PwWarp>
    makeWarp(std::uint32_t lanes = 8, Cycle comm = 40,
             Cycle mem_latency = 50, PwWarpCodeTiming timing = {})
    {
        PwWarp::Hooks hooks;
        hooks.reserveIssue = [this](std::uint32_t slots) {
            Cycle start = std::max(eq.now(), issueFree);
            issueFree = start + slots;
            issueSlots += slots;
            return start + slots;
        };
        hooks.ptAccess = [this, mem_latency](PhysAddr,
                                             std::function<void()> done) {
            ++memReads;
            eq.scheduleIn(mem_latency, std::move(done));
        };
        hooks.pwcFill = [this](int level, TranslationKey, PhysAddr) {
            pwcFills.push_back(level);
        };
        hooks.complete = [this](const WalkResult &result) {
            results.push_back(result);
        };
        return std::make_unique<PwWarp>(eq, spaces, pwb, std::move(hooks),
                                        timing, lanes, comm);
    }

    WalkRequest
    makeRequest(Vpn vpn, std::uint64_t id)
    {
        pt.ensureMapped(vpn);
        WalkRequest req;
        req.id = id;
        req.key = K(vpn);
        req.cursor = pt.startWalk(vpn);
        req.created = eq.now();
        return req;
    }

    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    PageTableBase &pt;
    SoftPwb pwb;
    Cycle issueFree = 0;
    std::uint64_t issueSlots = 0;
    int memReads = 0;
    std::vector<int> pwcFills;
    std::vector<WalkResult> results;
};

TEST_F(PwWarpTest, IdleWithoutWork)
{
    auto warp = makeWarp();
    warp->notifyWork();
    EXPECT_FALSE(warp->busy());
    eq.run();
    EXPECT_TRUE(results.empty());
}

TEST_F(PwWarpTest, SingleWalkCompletes)
{
    auto warp = makeWarp();
    pwb.insert(makeRequest(0x42, 1), eq.now());
    warp->notifyWork();
    EXPECT_TRUE(warp->busy());
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].pfn, pt.translate(0x42));
    EXPECT_FALSE(results[0].fault);
    EXPECT_EQ(memReads, 4);
    EXPECT_FALSE(warp->busy());
    EXPECT_EQ(pwb.freeSlots(), 8u);
}

TEST_F(PwWarpTest, InstructionAccounting)
{
    PwWarpCodeTiming timing;
    auto warp = makeWarp(8, 40, 50, timing);
    pwb.insert(makeRequest(0x42, 1), eq.now());
    warp->notifyWork();
    eq.run();
    // setup + 4 levels * perLevel + FL2T
    std::uint64_t expected = timing.setupInstrs +
        4 * timing.perLevelInstrs + timing.finishInstrs;
    EXPECT_EQ(warp->stats().instructionsIssued, expected);
    EXPECT_EQ(issueSlots, expected);
    EXPECT_EQ(warp->stats().ldptIssued, 4u);
    EXPECT_EQ(warp->stats().fl2tIssued, 1u);
}

TEST_F(PwWarpTest, CommunicationLatencyDelaysCompletion)
{
    auto warp = makeWarp(8, /*comm=*/1000, /*mem=*/10);
    pwb.insert(makeRequest(0x1, 1), eq.now());
    warp->notifyWork();
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(results[0].accessLatency, 1000u);
}

TEST_F(PwWarpTest, BatchProcessesMultipleLanes)
{
    auto warp = makeWarp(8, 40, 50);
    for (std::uint64_t i = 0; i < 5; ++i)
        pwb.insert(makeRequest(Vpn(i) * 999 + 7, i), eq.now());
    warp->notifyWork();
    eq.run();
    EXPECT_EQ(results.size(), 5u);
    EXPECT_EQ(warp->stats().batches, 1u);
    EXPECT_DOUBLE_EQ(warp->stats().batchSize.mean(), 5.0);
    for (const auto &result : results)
        EXPECT_EQ(result.pfn, pt.translate(result.key.vpn));
}

TEST_F(PwWarpTest, BatchBoundedByLaneCount)
{
    auto warp = makeWarp(/*lanes=*/4, 40, 50);
    for (std::uint64_t i = 0; i < 8; ++i)
        pwb.insert(makeRequest(Vpn(i) * 999 + 7, i), eq.now());
    warp->notifyWork();
    eq.run();
    EXPECT_EQ(results.size(), 8u);
    EXPECT_EQ(warp->stats().batches, 2u);
}

TEST_F(PwWarpTest, LockstepLanesShareLevelIterations)
{
    // 8 lanes walking 4 levels each issue their LDPTs in the same four
    // iterations: per-level instruction cost is paid once per iteration.
    PwWarpCodeTiming timing;
    auto warp = makeWarp(8, 40, 50, timing);
    for (std::uint64_t i = 0; i < 8; ++i)
        pwb.insert(makeRequest(Vpn(i) * 999 + 7, i), eq.now());
    warp->notifyWork();
    eq.run();
    std::uint64_t expected = timing.setupInstrs +
        4 * timing.perLevelInstrs + timing.finishInstrs;
    EXPECT_EQ(warp->stats().instructionsIssued, expected);
    EXPECT_EQ(memReads, 32) << "8 lanes x 4 levels";
}

TEST_F(PwWarpTest, FaultLaneIssuesFfb)
{
    auto warp = makeWarp();
    WalkRequest bad;
    bad.id = 1;
    bad.key = K(0xBAD);
    bad.cursor = pt.startWalk(0xBAD);   // unmapped
    pwb.insert(std::move(bad), eq.now());
    warp->notifyWork();
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].fault);
    EXPECT_EQ(warp->stats().ffbIssued, 1u);
    EXPECT_EQ(warp->stats().fl2tIssued, 0u);
}

TEST_F(PwWarpTest, FpwcFillsOnDescent)
{
    auto warp = makeWarp();
    pwb.insert(makeRequest(0x42, 1), eq.now());
    warp->notifyWork();
    eq.run();
    // Levels 3, 2, 1 learned table bases.
    EXPECT_EQ(pwcFills.size(), 3u);
    EXPECT_EQ(warp->stats().fpwcIssued, 3u);
}

TEST_F(PwWarpTest, RequestsArrivingMidBatchJoinNextBatch)
{
    auto warp = makeWarp(8, 40, 200);
    pwb.insert(makeRequest(0x1, 1), eq.now());
    warp->notifyWork();
    // Arrives while the first batch is in flight.
    eq.scheduleIn(50, [&]() {
        pwb.insert(makeRequest(0x2222, 2), eq.now());
        warp->notifyWork();
    });
    eq.run();
    EXPECT_EQ(results.size(), 2u);
    EXPECT_EQ(warp->stats().batches, 2u);
}

TEST_F(PwWarpTest, QueueDelayMeasuredToPickup)
{
    auto warp = makeWarp(8, 40, 200);
    pwb.insert(makeRequest(0x1, 1), eq.now());
    warp->notifyWork();
    eq.scheduleIn(10, [&]() {
        pwb.insert(makeRequest(0x2222, 2), eq.now());
        warp->notifyWork();
    });
    eq.run();
    ASSERT_EQ(results.size(), 2u);
    // The second request waited for batch 1 to finish.
    EXPECT_GT(results[1].queueDelay, 500u);
}

TEST_F(PwWarpTest, ResumedCursorsSkipLevels)
{
    auto warp = makeWarp();
    pt.ensureMapped(0x300);
    WalkCursor cur = pt.startWalk(0x300);
    while (cur.level > 1)
        pt.advance(cur);
    WalkRequest req;
    req.id = 5;
    req.key = K(0x300);
    req.cursor = pt.resumeWalk(0x300, 1, cur.tableBase);
    pwb.insert(std::move(req), eq.now());
    warp->notifyWork();
    eq.run();
    EXPECT_EQ(memReads, 1);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].pfn, pt.translate(0x300));
}

TEST_F(PwWarpTest, PwOpcodeNames)
{
    EXPECT_STREQ(toString(PwOpcode::Ldpt), "LDPT");
    EXPECT_STREQ(toString(PwOpcode::Fl2t), "FL2T");
    EXPECT_STREQ(toString(PwOpcode::Fpwc), "FPWC");
    EXPECT_STREQ(toString(PwOpcode::Ffb), "FFB");
    EXPECT_STREQ(toString(PwOpcode::Alu), "ALU");
}

TEST_F(PwWarpTest, ContextBitsMatchPaperSection52)
{
    PwWarpContextBits bits;
    EXPECT_EQ(bits.total(), 1470u) << "64 + 126 + 8x160, as in §5.2";
    EXPECT_EQ(bits.statusBitmap, 64u);
    EXPECT_EQ(kPwWarpRegisters, 16u);
}

} // namespace
