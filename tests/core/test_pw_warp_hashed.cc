/** @file PW Warp over the hashed page table (FS-HPT + SoftWalker combo). */

#include <gtest/gtest.h>

#include "core/pw_warp.hh"
#include "sim/config.hh"
#include "vm/hashed_page_table.hh"

using namespace sw;

namespace {

/** These legacy tests are single-tenant: everything is tagged ASID 0. */
constexpr TranslationKey
K(Vpn vpn)
{
    return {0, vpn};
}

class PwWarpHashedTest : public ::testing::Test
{
  protected:
    PwWarpHashedTest()
        : geom(64 * 1024), alloc(64 * 1024), spaces(spacesConfig(), alloc),
          pt(static_cast<HashedPageTable &>(spaces.tableFor(0))), pwb(8)
    {
    }

    static GpuConfig
    spacesConfig()
    {
        GpuConfig cfg = makeDefaultConfig();
        cfg.pageBytes = 64 * 1024;
        cfg.pageTableKind = PageTableKind::Hashed;
        return cfg;
    }

    std::unique_ptr<PwWarp>
    makeWarp()
    {
        PwWarp::Hooks hooks;
        hooks.reserveIssue = [this](std::uint32_t slots) {
            return eq.now() + slots;
        };
        hooks.ptAccess = [this](PhysAddr, std::function<void()> done) {
            ++memReads;
            eq.scheduleIn(40, std::move(done));
        };
        hooks.pwcFill = [this](int, TranslationKey, PhysAddr) { ++pwcFills; };
        hooks.complete = [this](const WalkResult &result) {
            results.push_back(result);
        };
        return std::make_unique<PwWarp>(eq, spaces, pwb, std::move(hooks),
                                        PwWarpCodeTiming{}, 8, 40);
    }

    EventQueue eq;
    PageGeometry geom;
    FrameAllocator alloc;
    AddressSpaceManager spaces;
    HashedPageTable &pt;
    SoftPwb pwb;
    int memReads = 0;
    int pwcFills = 0;
    std::vector<WalkResult> results;
};

TEST_F(PwWarpHashedTest, SingleProbeWalk)
{
    pt.ensureMapped(0x99);
    WalkRequest req;
    req.id = 1;
    req.key = K(0x99);
    req.cursor = pt.startWalk(0x99);
    pwb.insert(std::move(req), eq.now());
    auto warp = makeWarp();
    warp->notifyWork();
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].pfn, pt.translate(0x99));
    EXPECT_EQ(memReads, pt.walkReads(0x99));
    EXPECT_EQ(pwcFills, 0) << "hashed tables never fill the PWC";
}

TEST_F(PwWarpHashedTest, BatchOverHashedTable)
{
    auto warp = makeWarp();
    for (std::uint64_t i = 0; i < 6; ++i) {
        Vpn vpn = 100 + i * 977;
        pt.ensureMapped(vpn);
        WalkRequest req;
        req.id = i;
        req.key = K(vpn);
        req.cursor = pt.startWalk(vpn);
        pwb.insert(std::move(req), eq.now());
    }
    warp->notifyWork();
    eq.run();
    ASSERT_EQ(results.size(), 6u);
    for (const auto &result : results) {
        EXPECT_FALSE(result.fault);
        EXPECT_EQ(result.pfn, pt.translate(result.key.vpn));
    }
}

TEST_F(PwWarpHashedTest, UnmappedVpnFaults)
{
    WalkRequest req;
    req.id = 7;
    req.key = K(0xF00D);
    req.cursor = pt.startWalk(0xF00D);
    pwb.insert(std::move(req), eq.now());
    auto warp = makeWarp();
    warp->notifyWork();
    eq.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].fault);
    EXPECT_EQ(warp->stats().ffbIssued, 1u);
}

} // namespace
