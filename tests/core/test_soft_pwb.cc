/** @file Unit tests for the SoftPWB and its status bitmap semantics. */

#include <gtest/gtest.h>

#include "core/soft_pwb.hh"

using namespace sw;

namespace {

WalkRequest
req(Vpn vpn, std::uint64_t id)
{
    WalkRequest request;
    request.id = id;
    request.key = {0, vpn};
    return request;
}

TEST(SoftPwb, StartsEmpty)
{
    SoftPwb pwb(8);
    EXPECT_EQ(pwb.freeSlots(), 8u);
    EXPECT_EQ(pwb.validCount(), 0u);
    EXPECT_EQ(pwb.size(), 8u);
}

TEST(SoftPwb, InsertMakesSlotValid)
{
    SoftPwb pwb(8);
    std::uint32_t slot = pwb.insert(req(1, 10), 100);
    EXPECT_EQ(pwb.validCount(), 1u);
    EXPECT_EQ(pwb.freeSlots(), 7u);
    EXPECT_EQ(pwb.slot(slot).state, SoftPwb::SlotState::Valid);
    EXPECT_EQ(pwb.slot(slot).req.key.vpn, 1u);
    EXPECT_EQ(pwb.slot(slot).arrived, 100u);
}

TEST(SoftPwb, CollectMarksProcessing)
{
    SoftPwb pwb(8);
    pwb.insert(req(1, 1), 0);
    pwb.insert(req(2, 2), 0);
    pwb.insert(req(3, 3), 0);
    auto picked = pwb.collectValid(2);
    EXPECT_EQ(picked.size(), 2u);
    EXPECT_EQ(pwb.validCount(), 1u);
    for (auto idx : picked)
        EXPECT_EQ(pwb.slot(idx).state, SoftPwb::SlotState::Processing);
}

TEST(SoftPwb, CollectAllWhenFewerThanMax)
{
    SoftPwb pwb(8);
    pwb.insert(req(1, 1), 0);
    EXPECT_EQ(pwb.collectValid(32).size(), 1u);
}

TEST(SoftPwb, ReleaseReturnsSlotToInvalid)
{
    SoftPwb pwb(4);
    std::uint32_t slot = pwb.insert(req(7, 7), 0);
    pwb.collectValid(4);
    pwb.release(slot);
    EXPECT_EQ(pwb.freeSlots(), 4u);
    EXPECT_EQ(pwb.slot(slot).state, SoftPwb::SlotState::Invalid);
}

TEST(SoftPwb, TracksPeakOccupancy)
{
    SoftPwb pwb(4);
    pwb.insert(req(1, 1), 0);
    pwb.insert(req(2, 2), 0);
    EXPECT_EQ(pwb.stats().peakOccupancy, 2u);
    EXPECT_EQ(pwb.stats().inserts, 2u);
}

TEST(SoftPwb, SlotsReusedAfterRelease)
{
    SoftPwb pwb(2);
    std::uint32_t a = pwb.insert(req(1, 1), 0);
    pwb.insert(req(2, 2), 0);
    pwb.collectValid(2);
    pwb.release(a);
    std::uint32_t c = pwb.insert(req(3, 3), 0);
    EXPECT_EQ(c, a);
}

TEST(SoftPwbDeath, OverflowPanics)
{
    SoftPwb pwb(1);
    pwb.insert(req(1, 1), 0);
    EXPECT_DEATH(pwb.insert(req(2, 2), 0), "overflow");
}

TEST(SoftPwbDeath, ReleasingNonProcessingSlotPanics)
{
    SoftPwb pwb(2);
    std::uint32_t slot = pwb.insert(req(1, 1), 0);
    EXPECT_DEATH(pwb.release(slot), "non-processing");
}

} // namespace
