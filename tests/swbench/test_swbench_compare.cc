/**
 * @file
 * swbench comparison-engine tests: the JSON flattener (nesting,
 * name-keyed arrays, booleans, malformed input), direction inference,
 * the threshold logic in compare(), and the CLI driver's exit-code
 * contract (0 clean / 1 regression / 2 usage-or-parse failure) that CI's
 * bench-smoke job gates on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "swbench.hh"

using namespace sw::bench;

namespace {

MetricMap
flattenOrDie(const std::string &text)
{
    MetricMap out;
    std::string err;
    EXPECT_TRUE(flattenJson(text, out, err)) << err;
    return out;
}

TEST(SwbenchFlatten, NestedObjectsBecomeDottedPaths)
{
    MetricMap m = flattenOrDie(
        R"({"a": 1, "b": {"c": 2.5, "d": {"e": -3e2}}, "ok": true,)"
        R"( "label": "skipped", "nothing": null})");
    EXPECT_EQ(m.size(), 4u);
    EXPECT_EQ(m.at("a"), 1.0);
    EXPECT_EQ(m.at("b.c"), 2.5);
    EXPECT_EQ(m.at("b.d.e"), -300.0);
    EXPECT_EQ(m.at("ok"), 1.0);
    EXPECT_EQ(m.count("label"), 0u);
}

TEST(SwbenchFlatten, NamedArrayElementsKeyByNameNotIndex)
{
    // google-benchmark style ("name"), sweep style ("name"), and
    // hostprof style ("zone") all key by the string; reordering the
    // array must produce the identical MetricMap.
    const std::string a =
        R"({"benchmarks": [{"name": "BM_A", "cpu_time": 10},)"
        R"( {"name": "BM_B", "cpu_time": 20}],)"
        R"( "zones": [{"zone": "sim_loop", "self_ns": 5}]})";
    const std::string b =
        R"({"benchmarks": [{"name": "BM_B", "cpu_time": 20},)"
        R"( {"name": "BM_A", "cpu_time": 10}],)"
        R"( "zones": [{"zone": "sim_loop", "self_ns": 5}]})";
    MetricMap ma = flattenOrDie(a), mb = flattenOrDie(b);
    EXPECT_EQ(ma, mb);
    EXPECT_EQ(ma.at("benchmarks.BM_A.cpu_time"), 10.0);
    EXPECT_EQ(ma.at("zones.sim_loop.self_ns"), 5.0);
}

TEST(SwbenchFlatten, AnonymousArraysKeyByIndex)
{
    MetricMap m = flattenOrDie(R"({"xs": [4, 5, 6]})");
    EXPECT_EQ(m.at("xs.0"), 4.0);
    EXPECT_EQ(m.at("xs.2"), 6.0);
}

TEST(SwbenchFlatten, MalformedInputFailsWithMessage)
{
    MetricMap m;
    std::string err;
    EXPECT_FALSE(flattenJson(R"({"a": )", m, err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(flattenJson(R"({"a": 1} trailing)", m, err));
    EXPECT_FALSE(err.empty());
}

TEST(SwbenchDirection, HeuristicsMatchMetricFamilies)
{
    EXPECT_EQ(directionFor("benchmarks.BM_A.cpu_time"),
              Direction::HigherIsWorse);
    EXPECT_EQ(directionFor("jobsN_ms"), Direction::HigherIsWorse);
    EXPECT_EQ(directionFor("benchmarks.BM_A.items_per_second"),
              Direction::LowerIsWorse);
    EXPECT_EQ(directionFor("events_per_sec"), Direction::LowerIsWorse);
    EXPECT_EQ(directionFor("sweep.speedup"), Direction::LowerIsWorse);
    EXPECT_EQ(directionFor("coverage"), Direction::LowerIsWorse);
    EXPECT_EQ(directionFor("results_identical"), Direction::ExactMatch);
    EXPECT_EQ(directionFor("zone_drops"), Direction::ExactMatch);
    EXPECT_EQ(directionFor("fingerprint_hash"), Direction::ExactMatch);
}

TEST(SwbenchCompare, IdenticalMapsAreClean)
{
    MetricMap m = {{"t_ms", 100.0}, {"events_per_sec", 5e5}};
    CompareReport report = compare(m, m);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.regressions, 0u);
    EXPECT_EQ(report.improvements, 0u);
    EXPECT_TRUE(report.onlyOld.empty());
    EXPECT_TRUE(report.onlyNew.empty());
}

TEST(SwbenchCompare, RegressionPastTolFlagsAndWithinTolDoesNot)
{
    MetricMap base = {{"t_ms", 100.0}};
    CompareReport quiet = compare(base, {{"t_ms", 120.0}});  // +20% < 25%
    EXPECT_TRUE(quiet.ok());
    CompareReport loud = compare(base, {{"t_ms", 130.0}});   // +30% > 25%
    EXPECT_FALSE(loud.ok());
    ASSERT_EQ(loud.deltas.size(), 1u);
    EXPECT_TRUE(loud.deltas[0].regression);
    EXPECT_NEAR(loud.deltas[0].relWorse, 0.30, 1e-9);
}

TEST(SwbenchCompare, LowerIsWorseInvertsTheSign)
{
    MetricMap base = {{"events_per_sec", 1000.0}};
    // Throughput halved: worse, even though the value went *down*.
    CompareReport worse = compare(base, {{"events_per_sec", 500.0}});
    EXPECT_FALSE(worse.ok());
    // Throughput doubled: an improvement, not a regression.
    CompareReport better = compare(base, {{"events_per_sec", 2000.0}});
    EXPECT_TRUE(better.ok());
    EXPECT_EQ(better.improvements, 1u);
}

TEST(SwbenchCompare, ExactMatchMetricsRejectAnyChange)
{
    MetricMap base = {{"results_identical", 1.0}};
    EXPECT_TRUE(compare(base, {{"results_identical", 1.0}}).ok());
    EXPECT_FALSE(compare(base, {{"results_identical", 0.0}}).ok());
}

TEST(SwbenchCompare, IgnorePrefixesAndMissingMetrics)
{
    MetricMap base = {{"manifest.hardware_concurrency", 64.0},
                      {"t_ms", 100.0},
                      {"gone_ms", 5.0}};
    MetricMap cand = {{"manifest.hardware_concurrency", 1.0},
                      {"t_ms", 100.0},
                      {"new_ms", 7.0}};
    CompareReport report = compare(base, cand);
    // Host facts differ wildly but are ignored; added/removed metrics are
    // reported as coverage gaps, not regressions.
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.onlyOld.size(), 1u);
    EXPECT_EQ(report.onlyOld[0], "gone_ms");
    ASSERT_EQ(report.onlyNew.size(), 1u);
    EXPECT_EQ(report.onlyNew[0], "new_ms");
}

TEST(SwbenchCompare, TolOverridesFirstMatchWins)
{
    CompareOptions opts;
    opts.tolOverrides = {{"t_ms", 0.0}, {"ms", 10.0}};
    MetricMap base = {{"t_ms", 100.0}, {"other_ms", 100.0}};
    // t_ms matches the zero-tolerance override; other_ms falls through to
    // the generous "ms" one.
    CompareReport report =
        compare(base, {{"t_ms", 100.1}, {"other_ms", 900.0}}, opts);
    EXPECT_EQ(report.regressions, 1u);
    ASSERT_FALSE(report.deltas.empty());
    for (const Delta &d : report.deltas) {
        if (d.regression) {
            EXPECT_EQ(d.key, "t_ms");
        }
    }
}

TEST(SwbenchCompare, ZeroBaselineGrowthIsARegression)
{
    // A cost appearing from nothing has no finite relative change; it
    // must read as infinitely worse, not divide-by-zero quiet.
    MetricMap base = {{"rss_kb", 0.0}};
    CompareReport report = compare(base, {{"rss_kb", 3.0}});
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_TRUE(std::isinf(report.deltas[0].relWorse));
}

/** Write @p text to a fresh file under the gtest temp dir. */
std::string
writeTemp(const std::string &name, const std::string &text)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << text;
    return path;
}

TEST(SwbenchCli, ExitCodeContract)
{
    std::string baseline = writeTemp(
        "swbench_base.json", R"({"t_ms": 100.0, "events_per_sec": 1000})");
    std::string same = writeTemp(
        "swbench_same.json", R"({"t_ms": 100.0, "events_per_sec": 1000})");
    std::string slower = writeTemp(
        "swbench_slow.json", R"({"t_ms": 200.0, "events_per_sec": 1000})");
    std::string broken = writeTemp("swbench_broken.json", R"({"t_ms": )");

    std::ostringstream out, err;
    EXPECT_EQ(compareMain({baseline, same}, out, err), 0);
    EXPECT_EQ(compareMain({baseline, slower}, out, err), 1);
    EXPECT_NE(out.str().find("REGRESSION"), std::string::npos);
    EXPECT_EQ(compareMain({baseline, broken}, out, err), 2);
    EXPECT_EQ(compareMain({baseline}, out, err), 2);  // missing operand
    EXPECT_EQ(compareMain({baseline, same, "--default-tol", "bogus"},
                          out, err),
              2);
}

TEST(SwbenchCli, FlagsReachTheComparison)
{
    std::string baseline =
        writeTemp("swbench_flag_base.json", R"({"t_ms": 100.0})");
    std::string slower =
        writeTemp("swbench_flag_slow.json", R"({"t_ms": 130.0})");

    std::ostringstream out, err;
    // +30% fails at the default 25%, passes once the tolerance is raised
    // or the metric is ignored outright.
    EXPECT_EQ(compareMain({baseline, slower}, out, err), 1);
    EXPECT_EQ(
        compareMain({baseline, slower, "--default-tol", "0.5"}, out, err),
        0);
    EXPECT_EQ(compareMain({baseline, slower, "--tol", "t_ms=0.5"}, out,
                          err),
              0);
    EXPECT_EQ(compareMain({baseline, slower, "--ignore", "t_"}, out, err),
              0);
}

} // namespace
