/** @file Tests for the unified stat registry (src/obs). */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stat_registry.hh"

using namespace sw;

namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("sm3.l1tlb.misses"), "sm3.l1tlb.misses");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(StatGroup, QualifiesDottedNames)
{
    StatRegistry registry;
    std::uint64_t misses = 0;
    registry.root().group("sm3").group("l1tlb").counter("misses", &misses);
    EXPECT_TRUE(registry.has("sm3.l1tlb.misses"));
    EXPECT_EQ(registry.size(), 1u);
}

TEST(StatGroup, RootRegistersUnprefixedNames)
{
    StatRegistry registry;
    std::uint64_t walks = 0;
    registry.root().counter("walks", &walks);
    EXPECT_TRUE(registry.has("walks"));
}

TEST(StatRegistry, NamesAreSorted)
{
    StatRegistry registry;
    std::uint64_t v = 0;
    StatGroup root = registry.root();
    root.counter("zeta", &v);
    root.counter("alpha", &v);
    root.counter("mid", &v);
    auto names = registry.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
}

TEST(StatRegistry, DumpReadsLiveValues)
{
    StatRegistry registry;
    std::uint64_t hits = 0;
    registry.root().group("l2tlb").counter("hits", &hits);
    hits = 41;
    EXPECT_NE(registry.dumpJson().find("\"l2tlb.hits\":41"),
              std::string::npos);
    ++hits;
    EXPECT_NE(registry.dumpJson().find("\"l2tlb.hits\":42"),
              std::string::npos);
}

TEST(StatRegistry, CaptureSnapshotsValues)
{
    StatRegistry registry;
    std::uint64_t hits = 7;
    registry.root().counter("hits", &hits);
    registry.capture();
    hits = 99;  // after capture() the live value is ignored
    EXPECT_NE(registry.dumpJson().find("\"hits\":7"), std::string::npos);
    EXPECT_EQ(registry.dumpJson().find("99"), std::string::npos);
}

TEST(StatRegistry, AllEntryKindsSerialise)
{
    StatRegistry registry;
    StatGroup root = registry.root();

    std::uint64_t u64v = 10;
    std::uint32_t u32v = 20;
    double f64v = 0.25;
    LatencyStat lat;
    lat.add(4);
    lat.add(8);
    Histogram hist(10, 10);
    hist.add(15);

    root.counter("c64", &u64v);
    root.counter("c32", &u32v);
    root.value("f", &f64v);
    root.gauge("g", []() { return 1.5; });
    root.latency("lat", &lat);
    root.histogram("hist", &hist);

    std::string json = registry.dumpJson();
    EXPECT_NE(json.find("\"c64\":10"), std::string::npos);
    EXPECT_NE(json.find("\"c32\":20"), std::string::npos);
    EXPECT_NE(json.find("\"f\":0.25"), std::string::npos);
    EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
    // Latency entries expand to a nested object with the moments.
    EXPECT_NE(json.find("\"lat\":{"), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"mean\":6"), std::string::npos);
    // Histogram entries expand to samples/width/percentiles.
    EXPECT_NE(json.find("\"hist\":{"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(StatRegistry, WriteJsonMatchesDump)
{
    StatRegistry registry;
    std::uint64_t v = 3;
    registry.root().counter("v", &v);
    std::ostringstream out;
    registry.writeJson(out);
    EXPECT_EQ(out.str(), registry.dumpJson() + "\n");
}

TEST(StatRegistry, EmptyRegistryDumpsEmptyObject)
{
    StatRegistry registry;
    EXPECT_EQ(registry.dumpJson(), "{}");
}

TEST(StatRegistryDeath, DuplicateNamePanics)
{
    StatRegistry registry;
    std::uint64_t v = 0;
    registry.root().counter("dup", &v);
    EXPECT_DEATH(registry.root().counter("dup", &v), "dup");
}

} // namespace
