/** @file Tests for the translation lifecycle tracer (src/obs). */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.hh"

using namespace sw;

namespace {

TEST(TracePhaseName, CoversLifecycle)
{
    EXPECT_STREQ(toString(TracePhase::L1Miss), "l1_miss");
    EXPECT_STREQ(toString(TracePhase::WalkCreated), "walk_created");
    EXPECT_STREQ(toString(TracePhase::WalkDispatch), "walk_dispatch");
    EXPECT_STREQ(toString(TracePhase::PtRead), "pt_read");
    EXPECT_STREQ(toString(TracePhase::WalkFill), "walk_fill");
    EXPECT_STREQ(toString(TracePhase::Wakeup), "wakeup");
}

TEST(Tracer, RecordsStampsInOrder)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::L1Miss, 10, 0, 0x100, 3);
    tracer.record(TracePhase::L2Lookup, 12, 0, 0x100);
    EXPECT_EQ(tracer.stampsRecorded(), 2u);
    EXPECT_EQ(tracer.stampsDropped(), 0u);
    auto stamps = tracer.stamps();
    ASSERT_EQ(stamps.size(), 2u);
    EXPECT_EQ(stamps[0].phase, TracePhase::L1Miss);
    EXPECT_EQ(stamps[0].cycle, 10u);
    EXPECT_EQ(stamps[0].where, 3u);
    EXPECT_EQ(stamps[1].phase, TracePhase::L2Lookup);
    EXPECT_EQ(stamps[1].where, TranslationTracer::kNoWhere);
}

TEST(Tracer, RingOverwritesOldest)
{
    TranslationTracer tracer(4);
    for (Cycle c = 0; c < 6; ++c)
        tracer.record(TracePhase::L1Miss, c, 0, c);
    EXPECT_EQ(tracer.stampsRecorded(), 6u);
    EXPECT_EQ(tracer.stampsDropped(), 2u);
    auto stamps = tracer.stamps();
    ASSERT_EQ(stamps.size(), 4u);
    // Oldest-first: cycles 2..5 survive.
    EXPECT_EQ(stamps.front().cycle, 2u);
    EXPECT_EQ(stamps.back().cycle, 5u);
}

TEST(Tracer, ReconstructsWalkSpanWithPhaseAttribution)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 100, 7, 0xabc);
    tracer.record(TracePhase::BackendSubmit, 100, 7, 0xabc);
    tracer.record(TracePhase::WalkDispatch, 130, 7, 0xabc, 2);
    tracer.record(TracePhase::PtRead, 140, 7, 0xabc);
    tracer.record(TracePhase::PtRead, 180, 7, 0xabc);
    tracer.record(TracePhase::WalkFill, 230, 7, 0xabc);

    EXPECT_EQ(tracer.spansCompleted(), 1u);
    auto spans = tracer.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].id, 7u);
    EXPECT_EQ(spans[0].created, 100u);
    EXPECT_EQ(spans[0].dispatched, 130u);
    EXPECT_EQ(spans[0].filled, 230u);
    EXPECT_EQ(spans[0].ptReads, 2u);
    EXPECT_EQ(spans[0].where, 2u);

    EXPECT_DOUBLE_EQ(tracer.queuePhase().mean(), 30.0);
    EXPECT_DOUBLE_EQ(tracer.walkPhase().mean(), 100.0);
    EXPECT_DOUBLE_EQ(tracer.totalPhase().mean(), 130.0);
    EXPECT_DOUBLE_EQ(tracer.ptReadsPerWalk().mean(), 2.0);
}

TEST(Tracer, FirstDispatchWins)
{
    // Batched PW-Warp lanes can re-dispatch riders; the queue phase ends
    // at the first pickup.
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 10, 1, 0x1);
    tracer.record(TracePhase::WalkDispatch, 20, 1, 0x1, 0);
    tracer.record(TracePhase::WalkDispatch, 30, 1, 0x1, 1);
    tracer.record(TracePhase::WalkFill, 40, 1, 0x1);
    ASSERT_EQ(tracer.spans().size(), 1u);
    EXPECT_EQ(tracer.spans()[0].dispatched, 20u);
    EXPECT_EQ(tracer.spans()[0].where, 0u);
}

TEST(Tracer, FillWithoutDispatchAttributesToWalkPhase)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 50, 9, 0x9);
    tracer.record(TracePhase::WalkFill, 90, 9, 0x9);
    EXPECT_DOUBLE_EQ(tracer.queuePhase().mean(), 0.0);
    EXPECT_DOUBLE_EQ(tracer.walkPhase().mean(), 40.0);
}

TEST(Tracer, FaultDropsLiveSpan)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 10, 5, 0x5);
    tracer.record(TracePhase::Fault, 20, 5, 0x5);
    // The replayed walk arrives under a fresh id; the faulted one must not
    // complete a span.
    tracer.record(TracePhase::WalkFill, 30, 5, 0x5);
    EXPECT_EQ(tracer.spansCompleted(), 0u);
    EXPECT_EQ(tracer.totalPhase().count, 0u);
}

TEST(Tracer, IdZeroStampsSkipReconstruction)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 10, 0, 0x1);
    tracer.record(TracePhase::WalkFill, 20, 0, 0x1);
    EXPECT_EQ(tracer.spansCompleted(), 0u);
    EXPECT_EQ(tracer.stampsRecorded(), 2u);
}

TEST(Tracer, ResetAttributionKeepsHistory)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 10, 1, 0x1);
    tracer.record(TracePhase::WalkFill, 30, 1, 0x1);
    tracer.resetAttribution();
    EXPECT_EQ(tracer.totalPhase().count, 0u);
    // Raw history survives the warmup reset; only attribution is zeroed.
    EXPECT_EQ(tracer.stamps().size(), 2u);
    EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(Tracer, WriteTraceJsonEmitsEventArray)
{
    TranslationTracer tracer;
    tracer.record(TracePhase::WalkCreated, 100, 7, 0xabc);
    tracer.record(TracePhase::WalkDispatch, 130, 7, 0xabc, 2);
    tracer.record(TracePhase::WalkFill, 230, 7, 0xabc);

    std::ostringstream out;
    tracer.writeTraceJson(out);
    std::string json = out.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after ]
    // One "X" span pair per completed walk plus "i" instants per stamp.
    EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"walk\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"walk_dispatch\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Tracer, MacroSkipsNullTracer)
{
    TranslationTracer *tracer = nullptr;
    // Must not crash; the stamp is a no-op without an installed tracer.
    SW_TRACE(tracer, TracePhase::L1Miss, 1, 0, 0x1);
    TranslationTracer real;
    TranslationTracer *installed = &real;
    SW_TRACE(installed, TracePhase::L1Miss, 1, 0, 0x1);
    if (kTracingCompiled) {
        EXPECT_EQ(real.stampsRecorded(), 1u);
    }
}

} // namespace
