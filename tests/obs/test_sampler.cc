/** @file Tests for the time-series gauge sampler (src/obs). */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/sampler.hh"
#include "sim/event_queue.hh"

using namespace sw;

namespace {

TEST(Sampler, SampleNowSnapshotsGauges)
{
    TimeSeriesSampler sampler;
    double occupancy = 3.0;
    sampler.gauge("occupancy", [&]() { return occupancy; });
    sampler.gauge("constant", []() { return 1.0; });

    sampler.sampleNow(100);
    occupancy = 7.0;
    sampler.sampleNow(200);

    ASSERT_EQ(sampler.numRows(), 2u);
    EXPECT_EQ(sampler.rows()[0].cycle, 100u);
    EXPECT_DOUBLE_EQ(sampler.rows()[0].values[0], 3.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[1].values[0], 7.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[1].values[1], 1.0);
}

TEST(Sampler, CsvHeaderListsCycleThenGauges)
{
    TimeSeriesSampler sampler;
    sampler.gauge("a", []() { return 0.0; });
    sampler.gauge("b", []() { return 0.0; });
    EXPECT_EQ(sampler.csvHeader(), "cycle,a,b");
}

TEST(Sampler, WriteCsvEmitsHeaderAndRows)
{
    TimeSeriesSampler sampler;
    sampler.gauge("x", []() { return 2.5; });
    sampler.sampleNow(10);
    sampler.sampleNow(20);

    std::ostringstream out;
    sampler.writeCsv(out);
    std::string text = out.str();
    EXPECT_EQ(text.rfind("cycle,x\n", 0), 0u);
    EXPECT_NE(text.find("10,2.5"), std::string::npos);
    EXPECT_NE(text.find("20,2.5"), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Sampler, InstalledSamplerRidesSweepHook)
{
    EventQueue eq;
    TimeSeriesSampler sampler;
    int fired = 0;
    sampler.gauge("fired", [&]() { return double(fired); });
    sampler.install(eq, 100);

    // A chain of events 50 cycles apart: sweeps happen when >= 100 cycles
    // elapsed since the last one.
    std::function<void()> chain = [&]() {
        ++fired;
        if (eq.now() < 500)
            eq.scheduleIn(50, chain);
    };
    eq.scheduleIn(50, chain);
    eq.run();

    EXPECT_GE(sampler.numRows(), 4u);
    // Sampling never perturbs the run: events all executed, clock drained.
    EXPECT_EQ(eq.now(), 500u);
    // Rows carry monotonically increasing cycles.
    for (std::size_t i = 1; i < sampler.numRows(); ++i)
        EXPECT_GT(sampler.rows()[i].cycle, sampler.rows()[i - 1].cycle);
}

TEST(Sampler, InstallDoesNotChangeEventCountOrTimeline)
{
    auto run_chain = [](TimeSeriesSampler *sampler) {
        EventQueue eq;
        if (sampler)
            sampler->install(eq, 100);
        std::function<void()> chain = [&]() {
            if (eq.now() < 1000)
                eq.scheduleIn(30, chain);
        };
        eq.scheduleIn(30, chain);
        eq.run();
        auto result = std::make_pair(eq.now(), eq.eventsExecuted());
        if (sampler)
            sampler->uninstall();
        return result;
    };

    TimeSeriesSampler sampler;
    sampler.gauge("g", []() { return 1.0; });
    auto plain = run_chain(nullptr);
    auto sampled = run_chain(&sampler);
    EXPECT_EQ(plain, sampled);
    EXPECT_GT(sampler.numRows(), 0u);
}

TEST(Sampler, UninstallStopsSampling)
{
    EventQueue eq;
    TimeSeriesSampler sampler;
    sampler.gauge("g", []() { return 0.0; });
    sampler.install(eq, 10);

    std::function<void()> chain = [&]() {
        if (eq.now() < 100)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleIn(10, chain);
    eq.run();
    std::size_t rows_before = sampler.numRows();
    EXPECT_GT(rows_before, 0u);

    sampler.uninstall();
    eq.scheduleIn(10, chain);
    eq.run();
    EXPECT_EQ(sampler.numRows(), rows_before);
    // Idempotent.
    sampler.uninstall();
}

TEST(SamplerDeath, GaugeAfterInstallPanics)
{
    EventQueue eq;
    TimeSeriesSampler sampler;
    sampler.gauge("early", []() { return 0.0; });
    sampler.install(eq, 10);
    EXPECT_DEATH(sampler.gauge("late", []() { return 0.0; }), "install");
    sampler.uninstall();
}

} // namespace
