/** @file Integration tests for the top-level GPU. */

#include <gtest/gtest.h>

#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

std::unique_ptr<Workload>
streamWorkload()
{
    StreamingWorkload::Params params;
    return std::make_unique<StreamingWorkload>("s", 256ull << 20, false,
                                               10, params);
}

TEST(Gpu, ConstructsFromTable3Defaults)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    EXPECT_EQ(gpu.numSms(), 4u);
    EXPECT_TRUE(gpu.backendInstalled());
    EXPECT_EQ(gpu.cycles(), 0u);
}

TEST(Gpu, RunIssuesExactlyTheQuota)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 100;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 100u);
    EXPECT_GT(gpu.cycles(), 0u);
    EXPECT_GT(gpu.performance(), 0.0);
}

TEST(Gpu, MaxCyclesCapsTheRun)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 1000000;
    limits.maxCycles = 500;
    gpu.run(limits);
    EXPECT_LE(gpu.cycles(), 500u);
    EXPECT_LT(gpu.instructionsIssued(), 1000000u);
}

TEST(Gpu, MaxActiveWarpsRoundRobinsAcrossSms)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 50;
    limits.maxActiveWarps = 6;   // 4 SMs: 2,2,1,1
    gpu.run(limits);
    std::uint64_t total = 0;
    for (SmId sm = 0; sm < gpu.numSms(); ++sm)
        total += gpu.sm(sm).stats().warpInstrs;
    EXPECT_EQ(total, 50u);
    EXPECT_GT(gpu.sm(0).stats().warpInstrs, 0u);
}

TEST(Gpu, WarmupResetsStatsAndMeasuredRegion)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 200;
    limits.warmupInstrs = 100;
    gpu.run(limits);
    // SM stats were zeroed after warmup: only the measured instructions
    // remain visible.
    EXPECT_LE(gpu.instructionsIssued(), 200u);
    EXPECT_GT(gpu.instructionsIssued(), 0u);
    EXPECT_LT(gpu.measuredCycles(), gpu.cycles());
}

TEST(Gpu, IdealModeUsesHugePool)
{
    GpuConfig cfg = test::smallConfig();
    cfg.mode = TranslationMode::Ideal;
    Gpu gpu(cfg, streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 100;
    gpu.run(limits);
    EXPECT_EQ(gpu.engine().stats().l2MshrFailures, 0u);
    EXPECT_EQ(gpu.instructionsIssued(), 100u);
}

TEST(Gpu, HashedPageTableMode)
{
    GpuConfig cfg = test::smallConfig();
    cfg.pageTableKind = PageTableKind::Hashed;
    Gpu gpu(cfg, streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 100;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 100u);
    EXPECT_GT(gpu.engine().stats().walksCompleted, 0u);
}

TEST(Gpu, LargePageMode)
{
    GpuConfig cfg = test::smallConfig();
    cfg.pageBytes = 2ull * 1024 * 1024;
    Gpu gpu(cfg, streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 100;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 100u);
}

TEST(Gpu, TraceHookDeliversInstructions)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    int traced = 0;
    gpu.setTraceHook([&](SmId, WarpId, Cycle, const WarpInstr &) {
        ++traced;
    });
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 40;
    gpu.run(limits);
    EXPECT_EQ(traced, 40);
}

TEST(Gpu, AggregateSmStatsSumsAcrossSms)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 100;
    gpu.run(limits);
    Sm::Stats agg = gpu.aggregateSmStats();
    EXPECT_EQ(agg.warpInstrs, 100u);
    EXPECT_GT(agg.dataAccesses, 0u);
}

TEST(Gpu, EventQueueDrainsAfterRun)
{
    Gpu gpu(test::smallConfig(), streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 60;
    gpu.run(limits);
    EXPECT_TRUE(gpu.eventQueue().empty())
        << "no leaked events once all warps retire";
}

TEST(GpuDeath, RunWithoutBackendPanics)
{
    Gpu gpu(test::smallSoftWalkerConfig(), streamWorkload());
    Gpu::RunLimits limits;
    EXPECT_DEATH(gpu.run(limits), "backend");
}

/** Property sweep: quota is honoured exactly across machine shapes. */
class GpuShapes
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(GpuShapes, QuotaExact)
{
    auto [sms, warps] = GetParam();
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = sms;
    cfg.maxWarpsPerSm = warps;
    Gpu gpu(cfg, streamWorkload());
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 64;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 64u);
    EXPECT_TRUE(gpu.eventQueue().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GpuShapes,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(1u, 4u, 16u)));

} // namespace
