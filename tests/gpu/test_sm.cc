/** @file Unit tests for the SM model (issue, coalescing, stalls). */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "gpu/sm.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

/** A scripted workload emitting a fixed per-instruction address set. */
class ScriptedWorkload : public Workload
{
  public:
    WarpInstr
    next(SmId, WarpId, Rng &) override
    {
        ++calls;
        return instr;
    }

    std::uint64_t footprintBytes() const override { return 1 << 30; }
    std::string name() const override { return "scripted"; }
    bool irregular() const override { return false; }

    WarpInstr instr;
    int calls = 0;
};

class SmTest : public ::testing::Test
{
  protected:
    Sm::Params
    params()
    {
        Sm::Params p;
        p.id = 0;
        p.numWarps = 4;
        p.warpSize = 32;
        p.pageBytes = 64 * 1024;
        p.sectorBytes = 32;
        return p;
    }

    std::unique_ptr<Sm>
    makeSm(Workload &wl, Cycle translate_latency = 20,
           Cycle data_latency = 30)
    {
        return std::make_unique<Sm>(
            eq, params(), wl,
            [this, translate_latency](Vpn vpn,
                                      std::function<void(Pfn)> done) {
                translations.push_back(vpn);
                eq.scheduleIn(translate_latency,
                              [vpn, done = std::move(done)]() {
                                  done(vpn + 1000);   // fake PFN
                              });
            },
            [this, data_latency](PhysAddr pa, bool write,
                                 std::function<void()> done) {
                dataAccesses.push_back({pa, write});
                eq.scheduleIn(data_latency, std::move(done));
            });
    }

    EventQueue eq;
    std::vector<Vpn> translations;
    std::vector<std::pair<PhysAddr, bool>> dataAccesses;
};

TEST_F(SmTest, CoalescesLanesInOnePageToOneTranslation)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 32;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        wl.instr.addrs[lane] = 0x10000 + lane * 4;   // one page, one sector+
    std::uint64_t quota = 1;
    auto sm = makeSm(wl);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_EQ(translations.size(), 1u);
    EXPECT_EQ(sm->stats().translationsRequested, 1u);
}

TEST_F(SmTest, CoalescesToUniqueSectors)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 32;
    for (std::uint32_t lane = 0; lane < 32; ++lane)
        wl.instr.addrs[lane] = 0x10000 + lane * 4;   // 128 B span: 4 sectors
    std::uint64_t quota = 1;
    auto sm = makeSm(wl);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_EQ(dataAccesses.size(), 4u);
    EXPECT_EQ(sm->stats().dataAccesses, 4u);
}

TEST_F(SmTest, DivergentLanesGetPerPageTranslations)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 8;
    for (std::uint32_t lane = 0; lane < 8; ++lane)
        wl.instr.addrs[lane] = VirtAddr(lane) * (64 * 1024) + 64;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_EQ(translations.size(), 8u);
    EXPECT_EQ(dataAccesses.size(), 8u);
}

TEST_F(SmTest, PhysicalAddressComposedFromPfn)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x12345678;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl);
    sm->start(&quota, 1);
    eq.run();
    ASSERT_EQ(dataAccesses.size(), 1u);
    Vpn vpn = 0x12345678ull >> 16;
    PhysAddr expect = ((vpn + 1000) << 16) | (0x5678ull & ~31ull);
    EXPECT_EQ(dataAccesses[0].first, expect);
}

TEST_F(SmTest, WritesPropagate)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.write = true;
    wl.instr.addrs[0] = 0x9999;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl);
    sm->start(&quota, 1);
    eq.run();
    ASSERT_EQ(dataAccesses.size(), 1u);
    EXPECT_TRUE(dataAccesses[0].second);
}

TEST_F(SmTest, QuotaStopsIssue)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 10;
    auto sm = makeSm(wl);
    sm->start(&quota, 4);
    eq.run();
    EXPECT_EQ(sm->stats().warpInstrs, 10u);
    EXPECT_EQ(quota, 0u);
    EXPECT_EQ(sm->activeWarps(), 0u) << "all warps retired";
}

TEST_F(SmTest, ComputeGapDelaysIssue)
{
    ScriptedWorkload wl;
    wl.instr.computeGap = 500;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl, 1, 1);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_GE(eq.now(), 500u);
    EXPECT_EQ(sm->stats().computeCycles, 500u);
}

TEST_F(SmTest, IssuePortSerialisesWarps)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 4;
    auto sm = makeSm(wl);
    sm->start(&quota, 4);
    eq.run();
    // 4 warps each issued one instruction through the single port.
    EXPECT_EQ(sm->stats().issueSlotCycles, 4u);
}

TEST_F(SmTest, MemStallAccountedWhenAllWarpsBlocked)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 2;
    auto sm = makeSm(wl, /*translate=*/1000, /*data=*/1000);
    sm->start(&quota, 2);
    eq.run();
    EXPECT_GT(sm->stats().memStallCycles, 1000u);
}

TEST_F(SmTest, NoStallWhenWarpsStaggered)
{
    ScriptedWorkload wl;
    wl.instr.computeGap = 1;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 40;
    auto sm = makeSm(wl, 1, 1);   // memory faster than issue
    sm->start(&quota, 4);
    eq.run();
    EXPECT_LT(sm->stats().memStallCycles, eq.now() / 2);
}

TEST_F(SmTest, ReservePwIssueHasPriority)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 0;   // no user work
    auto sm = makeSm(wl);
    sm->start(&quota, 0);
    Cycle end = sm->reservePwIssue(5);
    EXPECT_EQ(end, eq.now() + 5);
    EXPECT_EQ(sm->stats().pwIssueCycles, 5u);
    Cycle next = sm->reservePwIssue(2);
    EXPECT_EQ(next, end + 2);
}

TEST_F(SmTest, WarpMemLatencyMeasured)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl, 100, 200);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_EQ(sm->stats().warpMemLatency.count, 1u);
    EXPECT_GE(sm->stats().warpMemLatency.minv, 300u);
}

TEST_F(SmTest, AccessLatencyMeasuredFromIssue)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 1;
    auto sm = makeSm(wl, 100, 200);
    sm->start(&quota, 1);
    eq.run();
    EXPECT_EQ(sm->stats().accessLatency.count, 1u);
    EXPECT_GE(sm->stats().accessLatency.minv, 300u);
}

TEST_F(SmTest, TraceHookSeesEveryInstruction)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 2;
    wl.instr.addrs[0] = 0x1000;
    wl.instr.addrs[1] = 0x2000;
    std::uint64_t quota = 6;
    auto sm = makeSm(wl);
    int traced = 0;
    sm->traceHook = [&](SmId, WarpId, Cycle, const WarpInstr &instr) {
        ++traced;
        EXPECT_EQ(instr.activeLanes, 2u);
    };
    sm->start(&quota, 2);
    eq.run();
    EXPECT_EQ(traced, 6);
}

TEST_F(SmTest, ResetStatsMidRunKeepsConsistency)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 20;
    auto sm = makeSm(wl);
    sm->start(&quota, 2);
    eq.run(50);
    sm->resetStats();
    eq.run();
    sm->finalizeStats();
    EXPECT_LT(sm->stats().warpInstrs, 20u);
    EXPECT_GT(sm->stats().warpInstrs, 0u);
}

TEST_F(SmTest, OnWarpRetiredFires)
{
    ScriptedWorkload wl;
    wl.instr.activeLanes = 1;
    wl.instr.addrs[0] = 0x1000;
    std::uint64_t quota = 3;
    auto sm = makeSm(wl);
    int retired = 0;
    sm->onWarpRetired = [&]() { ++retired; };
    sm->start(&quota, 3);
    eq.run();
    EXPECT_EQ(retired, 3);
}

} // namespace
