/**
 * @file
 * SweepRunner tests: submission-order results under out-of-order
 * completion, exception propagation, SW_JOBS parsing, and the determinism
 * contract — the same (config, benchmark) job yields a field-identical
 * RunResult whether it runs serially, concurrently, or twice in the same
 * process.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

// Field-identity comparisons use the library's %a fingerprint helper
// (harness/report.hh), shared with the trace round-trip suite and the CI
// record/replay gate.

/** A tiny real simulation job: cheapest benchmark, tight limits. */
SweepJob
tinyJob(TranslationMode mode)
{
    SweepJob job;
    job.cfg = mode == TranslationMode::SoftWalker ? makeSoftWalkerConfig()
                                                  : makeDefaultConfig();
    job.info = &findBenchmark("gups");
    job.limits = limitsFor(*job.info);
    job.limits.warpInstrQuota = 300;
    job.limits.warmupInstrs = 50;
    return job;
}

RunResult
makeResult(const std::string &tag)
{
    RunResult result;
    result.benchmark = tag;
    return result;
}

} // namespace

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    SweepRunner runner(4);
    // Reverse the completion order: earlier submissions sleep longer.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(runner.submit("", [i]() {
            std::this_thread::sleep_for(
                std::chrono::milliseconds((8 - i) * 3));
            return makeResult(strprintf("job%d", i));
        }), std::size_t(i));
    }
    std::vector<RunResult> results = runner.run();
    ASSERT_EQ(results.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(results[std::size_t(i)].benchmark,
                  strprintf("job%d", i));
}

TEST(SweepRunner, SerialRunnerExecutesInline)
{
    SweepRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);
    std::thread::id main_thread = std::this_thread::get_id();
    std::vector<std::thread::id> seen;
    for (int i = 0; i < 3; ++i) {
        runner.submit("", [&seen]() {
            seen.push_back(std::this_thread::get_id());
            return makeResult("serial");
        });
    }
    runner.run();
    ASSERT_EQ(seen.size(), 3u);
    for (std::thread::id id : seen)
        EXPECT_EQ(id, main_thread) << "SW_JOBS=1 must not spawn threads";
}

TEST(SweepRunner, ParallelWorkersActuallyOverlap)
{
    SweepRunner runner(2);
    if (runner.effectiveWorkers(4) < 2)
        GTEST_SKIP() << "single-core host: the pool clamps to one worker";
    std::atomic<int> inside{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 4; ++i) {
        runner.submit("", [&]() {
            int now = ++inside;
            int expected = peak.load();
            while (now > expected &&
                   !peak.compare_exchange_weak(expected, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            --inside;
            return makeResult("overlap");
        });
    }
    runner.run();
    EXPECT_GE(peak.load(), 2) << "two workers never ran concurrently";
}

TEST(SweepRunner, ExceptionPropagatesAndStopsTheSweep)
{
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs);
        runner.submit("", []() { return makeResult("ok"); });
        runner.submit("", []() -> RunResult {
            throw std::runtime_error("boom");
        });
        for (int i = 0; i < 16; ++i)
            runner.submit("", []() { return makeResult("later"); });
        EXPECT_THROW(runner.run(), std::runtime_error)
            << "jobs=" << jobs;
    }
}

TEST(SweepRunner, DefaultJobsHonoursEnvironment)
{
    ::setenv("SW_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    EXPECT_EQ(SweepRunner().jobs(), 3u);

    ::unsetenv("SW_JOBS");
    unsigned fallback = std::thread::hardware_concurrency();
    EXPECT_EQ(SweepRunner::defaultJobs(), fallback ? fallback : 1u);
}

TEST(SweepRunnerDeath, RejectsMalformedSwJobs)
{
    ::setenv("SW_JOBS", "0", 1);
    EXPECT_DEATH(SweepRunner::defaultJobs(), "SW_JOBS");
    ::setenv("SW_JOBS", "lots", 1);
    EXPECT_DEATH(SweepRunner::defaultJobs(), "SW_JOBS");
    ::unsetenv("SW_JOBS");
}

/**
 * The determinism contract, hardware-PTW mode: the same job resubmitted in
 * the same process, and the same job run under 1 vs 8 workers, must agree
 * on every RunResult field bit-for-bit.
 */
TEST(SweepRunner, RepeatedRunsAreFieldIdenticalHardwarePtw)
{
    SweepRunner runner(1);
    runner.submit(tinyJob(TranslationMode::HardwarePtw));
    runner.submit(tinyJob(TranslationMode::HardwarePtw));
    std::vector<RunResult> twice = runner.run();
    ASSERT_EQ(twice.size(), 2u);
    EXPECT_EQ(fingerprint(twice[0]), fingerprint(twice[1]))
        << "same job, same process, different result";
}

TEST(SweepRunner, SerialAndParallelResultsAreFieldIdentical)
{
    const int copies = 4;

    SweepRunner serial(1);
    for (int i = 0; i < copies; ++i)
        serial.submit(tinyJob(TranslationMode::HardwarePtw));
    std::vector<RunResult> ser = serial.run();

    SweepRunner parallel(8);
    for (int i = 0; i < copies; ++i)
        parallel.submit(tinyJob(TranslationMode::HardwarePtw));
    std::vector<RunResult> par = parallel.run();

    ASSERT_EQ(ser.size(), par.size());
    for (std::size_t i = 0; i < ser.size(); ++i)
        EXPECT_EQ(fingerprint(ser[i]), fingerprint(par[i]))
            << "job " << i << " diverged between jobs=1 and jobs=8";
}

TEST(SweepRunner, SerialAndParallelResultsAreFieldIdenticalSoftWalker)
{
    SweepRunner serial(1);
    serial.submit(tinyJob(TranslationMode::SoftWalker));
    std::vector<RunResult> ser = serial.run();

    SweepRunner parallel(8);
    parallel.submit(tinyJob(TranslationMode::SoftWalker));
    // Concurrency pressure from unrelated jobs must not perturb it.
    for (int i = 0; i < 3; ++i)
        parallel.submit(tinyJob(TranslationMode::HardwarePtw));
    std::vector<RunResult> par = parallel.run();

    EXPECT_EQ(fingerprint(ser[0]), fingerprint(par[0]))
        << "SoftWalker run diverged under concurrency";
}

TEST(SweepRunner, RunClearsTheQueue)
{
    SweepRunner runner(1);
    runner.submit("", []() { return makeResult("once"); });
    EXPECT_EQ(runner.submitted(), 1u);
    EXPECT_EQ(runner.run().size(), 1u);
    EXPECT_EQ(runner.submitted(), 0u);
    EXPECT_TRUE(runner.run().empty());
}
