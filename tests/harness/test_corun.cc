/**
 * @file
 * Co-run harness tests (harness/corun.hh): solo-baseline machine shaping,
 * per-tenant attribution, metric arithmetic, and the determinism contract
 * the CI co-run gate compares fingerprints under.
 */

#include <gtest/gtest.h>

#include "harness/corun.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

/** Tiny two-tenant SoftWalker machine that runs in milliseconds. */
CoRunSpec
tinySpec()
{
    CoRunSpec spec;
    spec.cfg = test::smallSoftWalkerConfig();
    spec.cfg.migPartitioning = true;
    spec.tenants.push_back({"gups", 0.05});
    spec.tenants.push_back({"gemm", 0.05});
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 600;
    limits.warmupInstrs = 200;
    limits.maxCycles = 2000000;
    spec.limits = limits;
    return spec;
}

TEST(SoloConfig, ShrinksToTheTenantSlice)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numTenants = 2;
    GpuConfig solo = soloConfigFor(cfg, 1);
    EXPECT_EQ(solo.numSms, 2u) << "half of the 4 SMs";
    EXPECT_EQ(solo.numTenants, 1u);
    EXPECT_FALSE(solo.migPartitioning);
    EXPECT_EQ(solo.l2TlbEntries, cfg.l2TlbEntries)
        << "without MIG the co-run shares the whole L2 TLB";
}

TEST(SoloConfig, MigScalesTheL2TlbToTheWayShare)
{
    GpuConfig cfg = test::smallConfig();   // 64 entries, 8 ways
    cfg.numTenants = 2;
    cfg.migPartitioning = true;
    GpuConfig solo = soloConfigFor(cfg, 0);
    EXPECT_EQ(solo.l2TlbWays, 4u);
    EXPECT_EQ(solo.l2TlbEntries, 32u)
        << "entries follow the way share (8 sets preserved)";
    solo.validate();   // the scaled machine must still be constructible
}

TEST(CoRun, BothTenantsProgressAndMetricsAgree)
{
    CoRunResult result = runCoRun(tinySpec());
    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_GT(result.cycles, 0u);
    for (const TenantOutcome &outcome : result.tenants) {
        EXPECT_GT(outcome.warpInstrs, 0u)
            << "tenant " << outcome.asid << " starved";
        EXPECT_GT(outcome.perf, 0.0);
        EXPECT_GT(outcome.soloPerf, 0.0);
        EXPECT_DOUBLE_EQ(outcome.weightedSpeedup,
                         outcome.perf / outcome.soloPerf);
        EXPECT_DOUBLE_EQ(outcome.slowdown,
                         outcome.soloPerf / outcome.perf);
    }
    double stp = result.tenants[0].weightedSpeedup +
                 result.tenants[1].weightedSpeedup;
    EXPECT_DOUBLE_EQ(result.systemThroughput, stp);
    double lo = std::min(result.tenants[0].weightedSpeedup,
                         result.tenants[1].weightedSpeedup);
    double hi = std::max(result.tenants[0].weightedSpeedup,
                         result.tenants[1].weightedSpeedup);
    EXPECT_DOUBLE_EQ(result.fairness, lo / hi);
    EXPECT_LE(result.fairness, 1.0);
}

TEST(CoRun, SkippingSoloBaselinesLeavesDerivedFieldsZero)
{
    CoRunSpec spec = tinySpec();
    spec.soloBaselines = false;
    CoRunResult result = runCoRun(spec);
    EXPECT_EQ(result.systemThroughput, 0.0);
    EXPECT_EQ(result.fairness, 0.0);
    for (const TenantOutcome &outcome : result.tenants) {
        EXPECT_GT(outcome.perf, 0.0);
        EXPECT_EQ(outcome.soloPerf, 0.0);
        EXPECT_EQ(outcome.weightedSpeedup, 0.0);
    }
}

TEST(CoRun, FingerprintIsDeterministic)
{
    // The CI co-run gate's contract: same spec, bit-identical outcome.
    std::string a = corunFingerprint(runCoRun(tinySpec()));
    std::string b = corunFingerprint(runCoRun(tinySpec()));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("tenant1.weightedSpeedup="), std::string::npos);
}

TEST(CoRun, RegimeChangesTheOutcome)
{
    // Shared vs. MIG-partitioned machines must not silently coincide —
    // the partitioning knobs have to reach the translation path.
    CoRunSpec shared = tinySpec();
    shared.cfg.migPartitioning = false;
    std::string a = corunFingerprint(runCoRun(shared));
    std::string b = corunFingerprint(runCoRun(tinySpec()));
    EXPECT_NE(a, b);
}

TEST(CoRunDeath, EmptySpecIsFatal)
{
    EXPECT_DEATH(runCoRun(CoRunSpec{}), "no tenants");
}

} // namespace
