/**
 * @file
 * Tests for the unified RunSpec entry point: source selection, limits
 * resolution, and the exactly-one-source contract.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "test_util.hh"
#include "workload/benchmarks.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

Gpu::RunLimits
tinyLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 300;
    limits.maxCycles = 2000000;
    return limits;
}

std::unique_ptr<Workload>
tinyWorkload()
{
    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    return std::make_unique<GraphWorkload>("tiny", 128ull << 20, true, 10,
                                           params);
}

TEST(RunSpec, WorkloadNameSourceUsesTheRegistry)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.workloadName = "gups";
    spec.limits = tinyLimits();
    RunResult result = run(std::move(spec));
    EXPECT_EQ(result.benchmark, "gups");
    EXPECT_EQ(result.warpInstrs, 300u);
}

TEST(RunSpec, NamedBenchmarkGetsBenchmarkLimits)
{
    // With no explicit limits, a workloadName that matches a Table 4 entry
    // resolves limitsFor(info) — observable through the larger regular
    // quota (vs. the irregular default).
    setenv("SW_QUOTA", "100", 1);
    setenv("SW_QUOTA_REG", "150", 1);
    setenv("SW_WARMUP", "0", 1);
    setenv("SW_WARMUP_REG", "0", 1);

    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.workloadName = "gemm";   // regular benchmark
    RunResult result = run(std::move(spec));
    EXPECT_EQ(result.warpInstrs, 150u)
        << "named benchmark must pick up limitsFor(), not defaultLimits()";

    unsetenv("SW_QUOTA");
    unsetenv("SW_QUOTA_REG");
    unsetenv("SW_WARMUP");
    unsetenv("SW_WARMUP_REG");
}

TEST(RunSpec, ExplicitLimitsBeatBenchmarkDefaults)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.benchmark = &findBenchmark("gemm");   // regular: big defaults
    spec.limits = tinyLimits();
    RunResult result = run(std::move(spec));
    EXPECT_EQ(result.warpInstrs, 300u);
}

TEST(RunSpecDeath, NoSourceIsFatal)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    EXPECT_DEATH(run(std::move(spec)), "exactly one workload source");
}

TEST(RunSpecDeath, TwoSourcesAreFatal)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.benchmark = &findBenchmark("gups");
    spec.workloadName = "bfs";
    EXPECT_DEATH(run(std::move(spec)), "exactly one workload source");
}

TEST(RunSpecDeath, WorkloadPlusReplayIsFatal)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.workload = tinyWorkload();
    spec.replayPath = "whatever.swtrace";
    EXPECT_DEATH(run(std::move(spec)), "exactly one workload source");
}

} // namespace
