/** @file Tests for the JSON/CSV result writers. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hh"

using namespace sw;

namespace {

RunResult
sample()
{
    RunResult r;
    r.benchmark = "bfs";
    r.mode = TranslationMode::SoftWalker;
    r.cycles = 1000;
    r.warpInstrs = 500;
    r.perf = 0.5;
    r.l2TlbMpki = 22.5;
    r.walks = 42;
    r.avgWalkQueueDelay = 12.25;
    r.swToSoftware = 42;
    return r;
}

TEST(Report, JsonContainsKeyFields)
{
    std::string json = toJson(sample());
    EXPECT_NE(json.find("\"benchmark\":\"bfs\""), std::string::npos);
    EXPECT_NE(json.find("\"mode\":\"softwalker\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"walks\":42"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Report, JsonEscapesSpecialCharacters)
{
    RunResult r = sample();
    r.benchmark = "a\"b\\c";
    std::string json = toJson(r);
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(Report, JsonArray)
{
    std::string json = toJson(std::vector<RunResult>{sample(), sample()});
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    // Two objects, one comma between them at the top level.
    EXPECT_NE(json.find("},{"), std::string::npos);
}

TEST(Report, EmptyJsonArray)
{
    EXPECT_EQ(toJson(std::vector<RunResult>{}), "[]");
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    std::string header = csvHeader();
    std::string row = toCsvRow(sample());
    auto count = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(Report, WriteCsvEmitsHeaderAndRows)
{
    std::ostringstream out;
    writeCsv(out, {sample(), sample()});
    std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_EQ(text.rfind("benchmark,", 0), 0u);
    EXPECT_NE(text.find("bfs,softwalker,1000,500"), std::string::npos);
}

} // namespace
