/** @file Tests for the JSON/CSV result writers. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/report.hh"

using namespace sw;

namespace {

RunResult
sample()
{
    RunResult r;
    r.benchmark = "bfs";
    r.mode = TranslationMode::SoftWalker;
    r.cycles = 1000;
    r.warpInstrs = 500;
    r.perf = 0.5;
    r.l2TlbMpki = 22.5;
    r.walks = 42;
    r.avgWalkQueueDelay = 12.25;
    r.swToSoftware = 42;
    return r;
}

TEST(Report, JsonContainsKeyFields)
{
    std::string json = toJson(sample());
    EXPECT_NE(json.find("\"benchmark\":\"bfs\""), std::string::npos);
    EXPECT_NE(json.find("\"mode\":\"softwalker\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"walks\":42"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Report, JsonEscapesSpecialCharacters)
{
    RunResult r = sample();
    r.benchmark = "a\"b\\c";
    std::string json = toJson(r);
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(Report, JsonEscapesControlCharacters)
{
    RunResult r = sample();
    r.benchmark = "a\nb\tc\x01";
    std::string json = toJson(r);
    EXPECT_NE(json.find("a\\nb\\tc\\u0001"), std::string::npos);
    // No raw control characters survive in the output.
    for (char ch : json)
        EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
}

namespace {

/** Counts fields per type; used to pin the visitor enumeration shape. */
class CountingVisitor : public RunResultFieldVisitor
{
  public:
    void str(const char *, const std::string &) override { ++strs; }
    void u64(const char *, std::uint64_t) override { ++u64s; }
    void f64(const char *, double) override { ++f64s; }

    int strs = 0, u64s = 0, f64s = 0;
};

} // namespace

TEST(Report, JsonRoundTripShapeMatchesFieldEnumeration)
{
    CountingVisitor counter;
    visitFields(sample(), counter);
    int fields = counter.strs + counter.u64s + counter.f64s;
    ASSERT_GT(fields, 0);

    // One "name": per field — keys survive serialisation one-to-one.
    std::string json = toJson(sample());
    int keys = 0;
    for (std::string::size_type pos = 0;
         (pos = json.find("\":", pos)) != std::string::npos; ++pos)
        ++keys;
    EXPECT_EQ(keys, fields);

    // Balanced braces and no nested objects: one flat record.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
    EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 1);
}

TEST(Report, JsonArray)
{
    std::string json = toJson(std::vector<RunResult>{sample(), sample()});
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    // Two objects, one comma between them at the top level.
    EXPECT_NE(json.find("},{"), std::string::npos);
}

TEST(Report, EmptyJsonArray)
{
    EXPECT_EQ(toJson(std::vector<RunResult>{}), "[]");
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    std::string header = csvHeader();
    std::string row = toCsvRow(sample());
    auto count = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
}

TEST(Report, WriteCsvEmitsHeaderAndRows)
{
    std::ostringstream out;
    writeCsv(out, {sample(), sample()});
    std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_EQ(text.rfind("benchmark,", 0), 0u);
    EXPECT_NE(text.find("bfs,softwalker,1000,500"), std::string::npos);
}

} // namespace
