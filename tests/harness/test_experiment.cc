/** @file Tests for the experiment harness. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

Gpu::RunLimits
tinyLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 300;
    limits.maxCycles = 2000000;
    return limits;
}

std::unique_ptr<Workload>
tinyWorkload()
{
    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    return std::make_unique<GraphWorkload>("tiny", 128ull << 20, true, 10,
                                           params);
}

/** run() an ad-hoc workload instance through a RunSpec. */
RunResult
runTiny(const GpuConfig &cfg, std::unique_ptr<Workload> workload,
        const Gpu::RunLimits &limits)
{
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = std::move(workload);
    spec.limits = limits;
    return run(std::move(spec));
}

TEST(Experiment, RunWorkloadProducesPopulatedResult)
{
    RunResult result = runTiny(test::smallConfig(), tinyWorkload(),
                               tinyLimits());
    EXPECT_EQ(result.benchmark, "tiny");
    EXPECT_EQ(result.mode, TranslationMode::HardwarePtw);
    EXPECT_EQ(result.warpInstrs, 300u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.perf, 0.0);
    EXPECT_GT(result.walks, 0u);
    EXPECT_GT(result.l2TlbMpki, 0.0);
    EXPECT_GT(result.avgWalkTotalLatency, 0.0);
    EXPECT_EQ(result.faults, 0u);
}

TEST(Experiment, SoftWalkerResultCarriesBackendStats)
{
    RunResult result = runTiny(test::smallSoftWalkerConfig(),
                               tinyWorkload(), tinyLimits());
    EXPECT_EQ(result.mode, TranslationMode::SoftWalker);
    EXPECT_GT(result.swToSoftware, 0u);
    EXPECT_GT(result.swBatches, 0u);
    EXPECT_GT(result.swInstructions, 0u);
}

TEST(Experiment, HardwareResultHasNoSoftwalkerStats)
{
    RunResult result = runTiny(test::smallConfig(), tinyWorkload(),
                               tinyLimits());
    EXPECT_EQ(result.swToSoftware, 0u);
    EXPECT_EQ(result.swBatches, 0u);
}

TEST(Experiment, SpeedupIsPerfRatio)
{
    RunResult base;
    base.perf = 0.5;
    RunResult opt;
    opt.perf = 1.5;
    EXPECT_DOUBLE_EQ(speedup(base, opt), 3.0);
}

TEST(Experiment, SpeedupsVectorised)
{
    RunResult a1, a2, b1, b2;
    a1.perf = 1.0;
    a2.perf = 2.0;
    b1.perf = 2.0;
    b2.perf = 2.0;
    auto result = speedups({a1, a2}, {b1, b2});
    ASSERT_EQ(result.size(), 2u);
    EXPECT_DOUBLE_EQ(result[0], 2.0);
    EXPECT_DOUBLE_EQ(result[1], 1.0);
}

TEST(Experiment, BenchmarkSourceUsesRegistry)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.benchmark = &findBenchmark("gemm");
    spec.limits = tinyLimits();
    RunResult result = run(std::move(spec));
    EXPECT_EQ(result.benchmark, "gemm");
    EXPECT_EQ(result.warpInstrs, 300u);
}

TEST(Experiment, DefaultLimitsReadEnvironment)
{
    setenv("SW_QUOTA", "777", 1);
    setenv("SW_WARMUP", "111", 1);
    Gpu::RunLimits limits = defaultLimits();
    EXPECT_EQ(limits.warpInstrQuota, 777u);
    EXPECT_EQ(limits.warmupInstrs, 111u);
    unsetenv("SW_QUOTA");
    unsetenv("SW_WARMUP");
}

TEST(Experiment, LimitsForRegularAreLarger)
{
    Gpu::RunLimits regular = limitsFor(findBenchmark("2dc"));
    Gpu::RunLimits irregular = limitsFor(findBenchmark("bfs"));
    EXPECT_GT(regular.warmupInstrs, irregular.warmupInstrs);
}

TEST(Experiment, StallFractionNormalised)
{
    RunResult result;
    result.cycles = 1000;
    result.memStallCycles = 2000;
    EXPECT_DOUBLE_EQ(result.stallFraction(4), 0.5);
}

TEST(ExperimentDeath, SpeedupWithZeroBaselinePanics)
{
    RunResult base, opt;
    opt.perf = 1.0;
    EXPECT_DEATH(speedup(base, opt), "no progress");
}

} // namespace
