/** @file Tests for the CACTI-lite area model. */

#include <gtest/gtest.h>

#include "area/cacti_lite.hh"

using namespace sw;

TEST(CactiLite, SramAreaScalesLinearlyWithBits)
{
    double one = sramAreaMm2(1024);
    double two = sramAreaMm2(2048);
    EXPECT_NEAR(two / one, 2.0, 1e-9);
}

TEST(CactiLite, CamCostsMoreThanSram)
{
    EXPECT_GT(camAreaMm2(128, 96), sramAreaMm2(128 * 96));
}

TEST(CactiLite, PortScalingIsSuperLinear)
{
    EXPECT_DOUBLE_EQ(portScale(1), 1.0);
    double p2 = portScale(2);
    double p4 = portScale(4);
    double p8 = portScale(8);
    EXPECT_GT(p2, 1.0);
    EXPECT_GT(p4 / p2, p2 / 1.0 * 0.99)
        << "area per port grows with port count";
    EXPECT_GT(p8, 4.0);
}

TEST(CactiLite, PtwSubsystemAreaGrowsWithEverything)
{
    PtwSubsystemArea base = ptwSubsystemArea(32, 64, 1, 128);
    PtwSubsystemArea more_walkers = ptwSubsystemArea(128, 64, 1, 128);
    PtwSubsystemArea more_ports = ptwSubsystemArea(32, 64, 8, 128);
    PtwSubsystemArea more_entries = ptwSubsystemArea(32, 256, 1, 512);
    EXPECT_GT(more_walkers.totalMm2, base.totalMm2);
    EXPECT_GT(more_ports.totalMm2, base.totalMm2);
    EXPECT_GT(more_entries.totalMm2, base.totalMm2);
    EXPECT_DOUBLE_EQ(base.totalMm2,
                     base.pwbMm2 + base.mshrMm2 + base.walkerMm2);
}

TEST(CactiLite, PriorWorkDatapointIsPlausible)
{
    // Lee et al. (HPCA'25): 192 walkers with an 18-port PWB occupy ~3.9%
    // of a GPU chip.  Our model should land within the same magnitude
    // relative to the GA102 die.
    PtwSubsystemArea big = ptwSubsystemArea(192, 384, 18, 768);
    double fraction = big.totalMm2 / kGa102ChipMm2;
    EXPECT_GT(fraction, 0.002);
    EXPECT_LT(fraction, 0.1);
}

TEST(CactiLite, SoftwalkerOverheadIsTiny)
{
    double overhead = softwalkerOverheadMm2(46, 1024);
    EXPECT_LT(overhead, 0.1) << "well under 0.02% of the GA102 die";
    EXPECT_GT(overhead, kInTlbMshrLogicMm2);
}

TEST(CactiLite, SoftwalkerBeatsIsoAreaPtwScaling)
{
    // The premise of Fig 15: SoftWalker's added area is far below even a
    // modest hardware scaling step.
    double softwalker = softwalkerOverheadMm2(46, 1024);
    PtwSubsystemArea step = ptwSubsystemArea(64, 128, 2, 256);
    PtwSubsystemArea base = ptwSubsystemArea(32, 64, 1, 128);
    EXPECT_LT(softwalker, step.totalMm2 - base.totalMm2);
}

TEST(CactiLiteDeath, ZeroPortsRejected)
{
    EXPECT_DEATH(portScale(0), "port");
}
