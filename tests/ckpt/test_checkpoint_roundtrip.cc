/**
 * @file
 * The checkpoint determinism contract: splitting a run at a barrier,
 * saving, and restoring into a fresh machine yields a final result
 * fingerprint identical to the save-and-continue run — for every
 * backend, for barriers inside and past warmup, for both page-table
 * organisations, and for trace-replay workload sources.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

Gpu::RunLimits
smallLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 1500;
    limits.warmupInstrs = 500;
    limits.maxCycles = 4000000;
    return limits;
}

RunSpec
baseSpec(const GpuConfig &cfg)
{
    RunSpec spec;
    spec.cfg = cfg;
    spec.benchmark = &findBenchmark("bfs");
    spec.limits = smallLimits();
    return spec;
}

/** Save-and-continue run: checkpoint at @p barrier, full-run result. */
std::string
saveContinueFingerprint(const GpuConfig &cfg, std::uint64_t barrier,
                        const std::string &path)
{
    RunSpec spec = baseSpec(cfg);
    spec.checkpointAtInstrs = barrier;
    spec.checkpointOut = path;
    return fingerprint(run(std::move(spec)));
}

/** Restore-and-finish run from the file @p path. */
std::string
restoredFingerprint(const GpuConfig &cfg, const std::string &path)
{
    RunSpec spec = baseSpec(cfg);
    spec.checkpointIn = path;
    return fingerprint(run(std::move(spec)));
}

void
expectRoundtrip(const GpuConfig &cfg, std::uint64_t barrier,
                const char *tag)
{
    std::string path = ::testing::TempDir() + "roundtrip-" + tag + ".swckpt";
    std::string saved = saveContinueFingerprint(cfg, barrier, path);
    std::string restored = restoredFingerprint(cfg, path);
    EXPECT_EQ(saved, restored);
}

TEST(CheckpointRoundtrip, HardwareBackend)
{
    expectRoundtrip(test::smallConfig(), 1000, "hw");
}

TEST(CheckpointRoundtrip, SoftWalkerBackend)
{
    expectRoundtrip(test::smallSoftWalkerConfig(), 1000, "sw");
}

TEST(CheckpointRoundtrip, HybridBackend)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.mode = TranslationMode::Hybrid;
    expectRoundtrip(cfg, 1000, "hybrid");
}

TEST(CheckpointRoundtrip, BarrierInsideWarmup)
{
    // Barrier at 300 < warmup 500: the restored segment must finish the
    // warmup (stat reset included) exactly as the continued one does.
    expectRoundtrip(test::smallConfig(), 300, "early");
}

TEST(CheckpointRoundtrip, HashedPageTable)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.pageTableKind = PageTableKind::Hashed;
    expectRoundtrip(cfg, 1000, "hashed");
}

TEST(CheckpointRoundtrip, RestoreIsDeterministic)
{
    GpuConfig cfg = test::smallConfig();
    std::string path = ::testing::TempDir() + "roundtrip-redo.swckpt";
    saveContinueFingerprint(cfg, 800, path);
    EXPECT_EQ(restoredFingerprint(cfg, path),
              restoredFingerprint(cfg, path));
}

TEST(CheckpointRoundtrip, TraceReplaySource)
{
    GpuConfig cfg = test::smallConfig();
    std::string trace_path = ::testing::TempDir() + "roundtrip.swtrace";
    {
        RunSpec record = baseSpec(cfg);
        record.recordPath = trace_path;
        run(std::move(record));
    }

    std::string ckpt_path = ::testing::TempDir() + "roundtrip-trace.swckpt";
    RunSpec save;
    save.cfg = cfg;
    save.replayPath = trace_path;
    save.limits = smallLimits();
    save.checkpointAtInstrs = 1000;
    save.checkpointOut = ckpt_path;
    std::string saved = fingerprint(run(std::move(save)));

    RunSpec restore;
    restore.cfg = cfg;
    restore.replayPath = trace_path;
    restore.limits = smallLimits();
    restore.checkpointIn = ckpt_path;
    EXPECT_EQ(saved, fingerprint(run(std::move(restore))));
}

TEST(CheckpointRoundtrip, InMemoryEncodeDecode)
{
    // Gpu-level variant with no file I/O: encode at the barrier, restore
    // the image into a second machine, and both remainders must agree.
    GpuConfig cfg = test::smallSoftWalkerConfig();
    Gpu::RunLimits limits = smallLimits();
    std::uint64_t total = limits.warpInstrQuota + limits.warmupInstrs;
    std::uint64_t barrier = 900;
    const BenchmarkInfo &info = findBenchmark("bfs");

    Gpu first(cfg, makeWorkload(info));
    installWalkBackend(first);
    first.runSegment(barrier, std::min(limits.warmupInstrs, barrier),
                     limits);
    std::vector<std::uint8_t> image = encodeCheckpoint(first, barrier);
    EXPECT_GT(image.size(), 64u);
    first.runSegment(total - barrier,
                     limits.warmupInstrs > barrier
                         ? limits.warmupInstrs - barrier : 0,
                     limits);

    Gpu second(cfg, makeWorkload(info));
    installWalkBackend(second);
    CheckpointMeta meta =
        decodeCheckpoint(second, image.data(), image.size(), "in-memory");
    EXPECT_EQ(meta.instrsFetched, barrier);
    EXPECT_EQ(meta.workloadName, first.workload().name());
    second.runSegment(total - barrier,
                      limits.warmupInstrs > barrier
                          ? limits.warmupInstrs - barrier : 0,
                      limits);

    EXPECT_EQ(fingerprint(collectResult(first, "bfs")),
              fingerprint(collectResult(second, "bfs")));
}

TEST(CheckpointRoundtrip, CheckpointBytesGaugeAdvances)
{
    GpuConfig cfg = test::smallConfig();
    std::uint64_t before = checkpointBytesWritten();
    std::string path = ::testing::TempDir() + "roundtrip-gauge.swckpt";
    saveContinueFingerprint(cfg, 700, path);
    EXPECT_GT(checkpointBytesWritten(), before);
}

} // namespace
