/**
 * @file
 * Phase sampling: the clustering pass separates synthetic phases, the
 * plan is deterministic and well-formed, and the end-to-end sampled run
 * reconstructs metrics from a fraction of the detailed instructions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/sampling.hh"
#include "harness/experiment.hh"
#include "harness/sampled.hh"
#include "trace/trace_format.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

WarpInstr
instrAt(std::uint64_t base, std::uint64_t step)
{
    WarpInstr instr;
    instr.activeLanes = 4;
    for (std::uint32_t lane = 0; lane < instr.activeLanes; ++lane)
        instr.addrs[lane] = base + step * lane;
    return instr;
}

/**
 * A single-stream trace with two blatantly different phases: the first
 * 100 instructions walk pages near 256 MiB, the next 100 near 1 GiB.
 */
TraceFile
twoPhaseTrace()
{
    TraceFile trace;
    trace.header.name = "two-phase";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        stream.instrs.push_back(instrAt(0x10000000 + i * 64, 4096));
    for (std::uint64_t i = 0; i < 100; ++i)
        stream.instrs.push_back(instrAt(0x40000000 + i * 64, 4096));
    trace.streams.push_back(std::move(stream));
    return trace;
}

SamplingOptions
twoPhaseOptions()
{
    SamplingOptions opts;
    opts.windowInstrs = 20;
    opts.numClusters = 2;
    return opts;
}

TEST(Sampling, SeparatesSyntheticPhases)
{
    SamplingPlan plan = buildSamplingPlan(twoPhaseTrace(), twoPhaseOptions());
    EXPECT_EQ(plan.totalInstrs, 200u);
    EXPECT_EQ(plan.totalWindows, 10u);
    ASSERT_EQ(plan.windows.size(), 2u);
    // One representative from each half of the run.
    EXPECT_LT(plan.windows[0].startInstr, 100u);
    EXPECT_GE(plan.windows[1].startInstr, 100u);
    EXPECT_NE(plan.windows[0].cluster, plan.windows[1].cluster);
}

TEST(Sampling, PlanIsWellFormed)
{
    SamplingPlan plan = buildSamplingPlan(twoPhaseTrace(), twoPhaseOptions());
    double total_weight = 0.0;
    std::uint64_t prev_end = 0;
    for (const SampleWindow &w : plan.windows) {
        EXPECT_GE(w.startInstr, prev_end);   // sorted, non-overlapping
        EXPECT_GT(w.instrs, 0u);
        EXPECT_LE(w.startInstr + w.instrs,
                  plan.skipInstrs + plan.totalInstrs);
        EXPECT_GT(w.weight, 0.0);
        total_weight += w.weight;
        prev_end = w.startInstr + w.instrs;
    }
    EXPECT_NEAR(total_weight, 1.0, 1e-9);
    EXPECT_LT(plan.detailedInstrs(), plan.totalInstrs);
}

TEST(Sampling, PlanIsDeterministic)
{
    TraceFile trace = twoPhaseTrace();
    SamplingOptions opts = twoPhaseOptions();
    SamplingPlan a = buildSamplingPlan(trace, opts);
    SamplingPlan b = buildSamplingPlan(trace, opts);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].index, b.windows[i].index);
        EXPECT_EQ(a.windows[i].cluster, b.windows[i].cluster);
        EXPECT_DOUBLE_EQ(a.windows[i].weight, b.windows[i].weight);
    }
}

TEST(Sampling, SingleClusterCoversEverything)
{
    SamplingOptions opts = twoPhaseOptions();
    opts.numClusters = 1;
    SamplingPlan plan = buildSamplingPlan(twoPhaseTrace(), opts);
    ASSERT_EQ(plan.windows.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.windows[0].weight, 1.0);
}

TEST(Sampling, StationaryFootprintStratifiesInTime)
{
    // Every window touches the same pages, so the histograms carry no
    // phase signal at all; the temporal feature must then spread the
    // representatives across the run instead of letting them collapse
    // wherever the seeding landed.
    TraceFile trace;
    trace.header.name = "stationary";
    TraceStream stream;
    stream.sm = 0;
    stream.warp = 0;
    for (std::uint64_t i = 0; i < 400; ++i)
        stream.instrs.push_back(instrAt(0x10000000 + (i % 20) * 64, 4096));
    trace.streams.push_back(std::move(stream));

    SamplingOptions opts;
    opts.windowInstrs = 20;  // 20 windows
    opts.numClusters = 4;
    SamplingPlan plan = buildSamplingPlan(trace, opts);
    ASSERT_EQ(plan.windows.size(), 4u);
    // One representative per quarter of the run, equally weighted.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GE(plan.windows[i].startInstr, i * 100)
            << "representative " << i << " outside its time stratum";
        EXPECT_LT(plan.windows[i].startInstr, (i + 1) * 100)
            << "representative " << i << " outside its time stratum";
        // k-means strata need not be exactly equal, but none may collapse
        // or swallow the run.
        EXPECT_NEAR(plan.windows[i].weight, 0.25, 0.1);
    }

    // With the temporal feature disabled the windows are
    // indistinguishable and the plan degenerates (fewer representatives
    // or skewed weights) — pin that the knob is what does the work.
    opts.timeFeatureWeight = 0.0;
    SamplingPlan flat = buildSamplingPlan(trace, opts);
    bool degenerate = flat.windows.size() < 4;
    for (const SampleWindow &w : flat.windows)
        degenerate = degenerate || std::abs(w.weight - 0.25) > 0.1;
    EXPECT_TRUE(degenerate);
}

TEST(Sampling, SkipExcludesColdStartRegion)
{
    // Skipping the first phase leaves only phase-B windows: every
    // representative lands past the skip boundary and the sampled region
    // shrinks accordingly.
    SamplingOptions opts = twoPhaseOptions();
    opts.skipInstrs = 100;
    SamplingPlan plan = buildSamplingPlan(twoPhaseTrace(), opts);
    EXPECT_EQ(plan.skipInstrs, 100u);
    EXPECT_EQ(plan.totalInstrs, 100u);
    EXPECT_EQ(plan.totalWindows, 5u);
    double total_weight = 0.0;
    for (const SampleWindow &w : plan.windows) {
        EXPECT_GE(w.startInstr, 100u);
        EXPECT_LE(w.startInstr + w.instrs, 200u);
        total_weight += w.weight;
    }
    EXPECT_NEAR(total_weight, 1.0, 1e-9);
}

TEST(Sampling, SkipCoveringWholeTraceIsFatal)
{
    SamplingOptions opts = twoPhaseOptions();
    opts.skipInstrs = 200;
    EXPECT_DEATH(buildSamplingPlan(twoPhaseTrace(), opts),
                 "covers the whole");
}

TEST(Sampling, EmptyTraceIsFatal)
{
    TraceFile trace;
    trace.header.name = "empty";
    EXPECT_DEATH(buildSamplingPlan(trace, SamplingOptions{}), "empty trace");
}

TEST(Sampling, WeightedEstimateKnownValues)
{
    // Mean: 0.25*2 + 0.75*6 = 5; variance: 0.25*9 + 0.75*1 = 3.
    MetricEstimate e = weightedEstimate({2.0, 6.0}, {0.25, 0.75});
    EXPECT_DOUBLE_EQ(e.mean, 5.0);
    EXPECT_NEAR(e.spread, 1.7320508, 1e-6);

    MetricEstimate uniform = weightedEstimate({4.0}, {1.0});
    EXPECT_DOUBLE_EQ(uniform.mean, 4.0);
    EXPECT_DOUBLE_EQ(uniform.spread, 0.0);
}

TEST(Sampling, EndToEndSampledRun)
{
    // Record a short bfs run, then sample it: the sampled result must
    // cover fewer detailed instructions and still produce estimates for
    // the headline metrics.
    GpuConfig cfg = test::smallConfig();
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 4000;
    limits.warmupInstrs = 0;
    limits.maxCycles = 4000000;

    std::string trace_path = ::testing::TempDir() + "sampling-e2e.swtrace";
    {
        RunSpec record;
        record.cfg = cfg;
        record.benchmark = &findBenchmark("bfs");
        record.limits = limits;
        record.recordPath = trace_path;
        run(std::move(record));
    }

    RunSpec spec;
    spec.cfg = cfg;
    spec.replayPath = trace_path;
    spec.limits = limits;
    SamplingOptions opts;
    opts.windowInstrs = 500;
    opts.numClusters = 3;
    SampledRunResult sampled = runSampled(std::move(spec), opts);

    EXPECT_FALSE(sampled.windows.empty());
    EXPECT_LE(sampled.windows.size(), 3u);
    EXPECT_LT(sampled.detailRatio(), 1.0);
    EXPECT_GT(sampled.detailRatio(), 0.0);
    ASSERT_TRUE(sampled.metrics.count("perf"));
    EXPECT_GT(sampled.metrics.at("perf").mean, 0.0);
    ASSERT_TRUE(sampled.metrics.count("l2_tlb_mpki"));
    EXPECT_GT(sampled.combined.warpInstrs, 0u);
}

} // namespace
