/**
 * @file
 * Functional fast-forward: state warms, time does not advance, and the
 * harness integration replaces warmup without disturbing the detailed
 * region's determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "ckpt/ffwd.hh"
#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "trace/trace_workload.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

Gpu::RunLimits
smallLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 1000;
    limits.warmupInstrs = 0;
    limits.maxCycles = 4000000;
    return limits;
}

std::unique_ptr<Gpu>
freshGpu(const GpuConfig &cfg)
{
    auto gpu = std::make_unique<Gpu>(cfg, makeWorkload(findBenchmark("bfs")));
    installWalkBackend(*gpu);
    return gpu;
}

TEST(Ffwd, FunctionalTouchFillsTlbs)
{
    // First touch of a page walks; an immediate repeat hits L1.
    std::unique_ptr<Gpu> gpu = freshGpu(test::smallConfig());
    EXPECT_EQ(gpu->engine().functionalTouch(0, {0, 0x12345}), TouchResult::Walk);
    EXPECT_EQ(gpu->engine().functionalTouch(0, {0, 0x12345}), TouchResult::L1Hit);
    // A different SM misses its private L1 but hits the shared L2.
    EXPECT_EQ(gpu->engine().functionalTouch(1, {0, 0x12345}), TouchResult::L2Hit);
}

TEST(Ffwd, AccountingIsConsistent)
{
    std::unique_ptr<Gpu> gpu = freshGpu(test::smallConfig());
    FfwdStats stats = fastForward(*gpu, 2000, smallLimits());
    EXPECT_EQ(stats.instrs, 2000u);
    EXPECT_GT(stats.pagesTouched, 0u);
    EXPECT_GT(stats.walks, 0u);
    EXPECT_EQ(stats.pagesTouched,
              stats.l1TlbHits + stats.l2TlbHits + stats.walks);
}

TEST(Ffwd, ConsumesNoSimulatedTime)
{
    std::unique_ptr<Gpu> gpu = freshGpu(test::smallConfig());
    fastForward(*gpu, 1000, smallLimits());
    EXPECT_EQ(gpu->cycles(), 0u);
    EXPECT_TRUE(gpu->eventQueue().empty());
}

TEST(Ffwd, HarnessRunCompletesQuota)
{
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.benchmark = &findBenchmark("bfs");
    spec.limits = smallLimits();
    spec.ffwdInstrs = 3000;
    RunResult r = run(std::move(spec));
    EXPECT_EQ(r.warpInstrs, smallLimits().warpInstrQuota);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Ffwd, HarnessRunIsDeterministic)
{
    auto once = [] {
        RunSpec spec;
        spec.cfg = test::smallSoftWalkerConfig();
        spec.benchmark = &findBenchmark("bfs");
        spec.limits = smallLimits();
        spec.ffwdInstrs = 2000;
        return fingerprint(run(std::move(spec)));
    };
    EXPECT_EQ(once(), once());
}

/**
 * Two-stream trace whose fetch order is maximally skewed: the recording
 * fetched all of stream 0 before any of stream 1.
 */
TraceFile
skewedTrace()
{
    TraceFile trace;
    trace.header.name = "skewed";
    for (WarpId warp = 0; warp < 2; ++warp) {
        TraceStream stream;
        stream.sm = 0;
        stream.warp = warp;
        for (std::uint32_t i = 0; i < 4; ++i) {
            WarpInstr instr;
            instr.activeLanes = 1;
            instr.addrs[0] = VirtAddr(0x100000) * (warp + 1) + 0x1000 * i;
            stream.instrs.push_back(instr);
        }
        trace.streams.push_back(std::move(stream));
    }
    trace.fetchOrder = {0, 0, 0, 0, 1, 1, 1, 1};
    return trace;
}

TEST(Ffwd, ReplaysRecordedFetchOrder)
{
    // Round-robin would advance each active warp equally; the recorded
    // order says stream 0 ran entirely before stream 1, and ffwd must
    // leave the cursors at that phase relationship.
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg, std::make_unique<TraceWorkload>(skewedTrace(), "skewed"));
    installWalkBackend(gpu);

    fastForward(gpu, 4, smallLimits());
    auto &replay = dynamic_cast<TraceWorkload &>(gpu.workload());
    EXPECT_EQ(replay.streamPos(0), 4u);
    EXPECT_EQ(replay.streamPos(1), 0u);

    // A second leg resumes the scan past the consumed prefix.
    fastForward(gpu, 4, smallLimits());
    EXPECT_EQ(replay.streamPos(0), 4u);
    EXPECT_EQ(replay.streamPos(1), 4u);
}

TEST(Ffwd, OrderlessTraceFallsBackToRoundRobin)
{
    // A v1 trace (no recorded order) still fast-forwards; streams advance
    // round-robin across every active warp of the machine.
    TraceFile trace = skewedTrace();
    trace.fetchOrder.clear();
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg, std::make_unique<TraceWorkload>(std::move(trace), "v1"));
    installWalkBackend(gpu);

    FfwdStats stats = fastForward(gpu, 4, smallLimits());
    EXPECT_EQ(stats.instrs, 4u);
    auto &replay = dynamic_cast<TraceWorkload &>(gpu.workload());
    EXPECT_EQ(replay.streamPos(0), 1u);
    EXPECT_EQ(replay.streamPos(1), 1u);
}

TEST(Ffwd, WarmupReducesColdMisses)
{
    // The whole point: a warmed run sees fewer L1 TLB misses in its
    // measured region than a cold run of the same quota.
    auto missesWith = [](std::uint64_t ffwd) {
        RunSpec spec;
        spec.cfg = test::smallConfig();
        spec.benchmark = &findBenchmark("bfs");
        spec.limits = smallLimits();
        spec.ffwdInstrs = ffwd;
        return run(std::move(spec)).l1TlbMisses;
    };
    EXPECT_LE(missesWith(20000), missesWith(0));
}

} // namespace
