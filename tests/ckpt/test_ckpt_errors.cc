/**
 * @file
 * Malformed-checkpoint error paths.  The contract mirrors the trace
 * decoder's: every broken input — bad magic, wrong version, truncation,
 * trailing bytes, missing file — dies through fatal() with a located
 * diagnostic.  Two checks are *stricter* than trace replay: a config
 * digest mismatch is a hard fatal with no unknown-origin escape hatch,
 * and the workload name must match exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

using namespace sw;

namespace {

Gpu::RunLimits
smallLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 400;
    limits.warmupInstrs = 0;
    limits.maxCycles = 4000000;
    return limits;
}

std::unique_ptr<Gpu>
freshGpu(const GpuConfig &cfg, const char *bench = "bfs")
{
    auto gpu = std::make_unique<Gpu>(cfg, makeWorkload(findBenchmark(bench)));
    installWalkBackend(*gpu);
    return gpu;
}

/** A valid checkpoint image of a small quiesced run to corrupt. */
std::vector<std::uint8_t>
validImage(const GpuConfig &cfg)
{
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    gpu->runSegment(smallLimits().warpInstrQuota, 0, smallLimits());
    return encodeCheckpoint(*gpu, smallLimits().warpInstrQuota);
}

std::string
writeBytes(const char *name, const std::vector<std::uint8_t> &bytes)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    return path;
}

TEST(CkptErrors, BadMagicIsFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    bytes[0] ^= 0xff;
    std::string path = writeBytes("bad-magic.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path),
                 "not a SoftWalker checkpoint");
}

TEST(CkptErrors, WrongVersionIsFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    bytes[8] = 0x7f;   // version word follows the 8-byte magic
    std::string path = writeBytes("bad-version.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path),
                 "checkpoint format version");
}

TEST(CkptErrors, ConfigDigestMismatchIsHardFatal)
{
    // The satellite contract: unlike trace replay (which downgrades an
    // unknown digest to a warning), restore NEVER proceeds on a digest
    // mismatch — the machine shapes differ and state would be corrupted.
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    std::string path = writeBytes("digest-mismatch.swckpt", bytes);
    GpuConfig other = cfg;
    other.numPtws = cfg.numPtws * 2;
    std::unique_ptr<Gpu> gpu = freshGpu(other);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path), "config digest");
}

TEST(CkptErrors, WorkloadNameMismatchIsFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    std::string path = writeBytes("workload-mismatch.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg, "sssp");
    EXPECT_DEATH(restoreCheckpoint(*gpu, path), "restored against");
}

TEST(CkptErrors, TruncationIsFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    bytes.resize(bytes.size() / 2);
    std::string path = writeBytes("truncated.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path), "checkpoint");
}

TEST(CkptErrors, TrailingBytesAreFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    bytes.push_back(0);
    std::string path = writeBytes("trailing.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path), "trailing byte");
}

TEST(CkptErrors, MissingFileIsFatal)
{
    GpuConfig cfg = test::smallConfig();
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, "/nonexistent/x.swckpt"),
                 "cannot open checkpoint file");
}

TEST(CkptErrors, TenantCountMismatchIsFatal)
{
    // A multi-tenant checkpoint carries one page table per address space;
    // restoring it on a single-tenant machine must die on the config
    // digest (numTenants is digested) — never truncate address spaces.
    GpuConfig cfg = test::smallConfig();
    cfg.numTenants = 2;
    std::vector<std::unique_ptr<Workload>> pair;
    pair.push_back(makeWorkload(findBenchmark("bfs")));
    pair.push_back(makeWorkload(findBenchmark("gemm")));
    auto multi = std::make_unique<Gpu>(cfg, std::move(pair));
    installWalkBackend(*multi);
    multi->runSegment(smallLimits().warpInstrQuota, 0, smallLimits());
    std::vector<std::uint8_t> bytes =
        encodeCheckpoint(*multi, smallLimits().warpInstrQuota);

    std::string path = writeBytes("tenant-mismatch.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(test::smallConfig());
    EXPECT_DEATH(restoreCheckpoint(*gpu, path),
                 "config digest|address spaces");
}

TEST(CkptErrors, SectionSkewIsFatal)
{
    // Writer/reader ordering drift must die with a located diagnostic,
    // not silently mis-assign state: decode a stream whose first
    // component section name was altered.
    GpuConfig cfg = test::smallConfig();
    std::vector<std::uint8_t> bytes = validImage(cfg);
    // Find the first "gpu" section marker (u32 len 3 + "gpu") after the
    // header and corrupt its name.
    const std::uint8_t pattern[] = {3, 0, 0, 0, 'g', 'p', 'u'};
    auto it = std::search(bytes.begin(), bytes.end(), std::begin(pattern),
                          std::end(pattern));
    ASSERT_NE(it, bytes.end());
    *(it + 4) = 'x';
    std::string path = writeBytes("skew.swckpt", bytes);
    std::unique_ptr<Gpu> gpu = freshGpu(cfg);
    EXPECT_DEATH(restoreCheckpoint(*gpu, path), "section skew");
}

} // namespace
