/**
 * @file
 * Fuzz harness for the checkpoint decoder (CkptReader / decodeCheckpoint).
 *
 * Like the trace decoder, decodeCheckpoint() parses attacker-shaped
 * bytes: every malformed input must end in a clean fatal() diagnostic,
 * never an out-of-bounds read, unbounded allocation, or panic.  The
 * harness traps "fatal" as a graceful rejection and lets "panic" abort —
 * a panic means the decoder itself is broken.
 *
 * The accepted-input property is a canonical fixed point rather than
 * byte-identity with the original input: a mutated image can decode
 * successfully yet differ from what the writer would emit (e.g. map keys
 * arriving in a different but still-sorted order).  So: if input x
 * decodes into machine A, then y = encode(A) must decode into machine B
 * with encode(B) == y — the encoder's own output is a fixed point.
 *
 * Two build modes share this file, mirroring fuzz_trace_reader.cc:
 *
 *  - SOFTWALKER_FUZZ=ON (clang only): libFuzzer entry point; CI runs a
 *    60-second smoke with the seed corpus.
 *
 *  - default: a standalone regression binary.  No arguments: self-seed
 *    (a valid checkpoint plus truncations, bit flips, oversized counts)
 *    and replay; `--write-corpus DIR` also writes the seeds as files;
 *    other arguments are corpus files.  ctest runs the no-argument mode
 *    on every build.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

#include "../test_util.hh"

namespace {

/** Thrown by the failure hook to unwind out of fatal() back to the driver. */
struct FatalTrap : std::runtime_error
{
    explicit FatalTrap(const std::string &msg) : std::runtime_error(msg) {}
};

void
installTrap()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    sw::setFailureHook([](const char *kind, const std::string &msg) {
        // Trap fatal (malformed input — expected); let panic abort (a
        // decoder invariant failed — that is the bug being hunted).
        if (std::strcmp(kind, "fatal") == 0)
            throw FatalTrap(msg);
    });
}

/** The machine every image decodes into; must match the seed's config. */
std::unique_ptr<sw::Gpu>
freshGpu()
{
    auto gpu = std::make_unique<sw::Gpu>(
        sw::test::smallConfig(),
        sw::makeWorkload(sw::findBenchmark("bfs")));
    sw::installWalkBackend(*gpu);
    return gpu;
}

/**
 * One fuzz iteration: decode into a fresh machine; on acceptance the
 * decoded state must reach the encoder's canonical fixed point.
 */
void
oneInput(const std::uint8_t *data, std::size_t size)
{
    std::unique_ptr<sw::Gpu> first = freshGpu();
    sw::CheckpointMeta meta;
    try {
        meta = sw::decodeCheckpoint(*first, data, size, "fuzz-input");
    } catch (const FatalTrap &) {
        return; // graceful rejection
    }

    std::vector<std::uint8_t> canon =
        sw::encodeCheckpoint(*first, meta.instrsFetched);
    std::unique_ptr<sw::Gpu> second = freshGpu();
    try {
        sw::decodeCheckpoint(*second, canon.data(), canon.size(),
                             "fuzz-reencode");
    } catch (const FatalTrap &trap) {
        sw::panic("re-encoded checkpoint failed to decode: %s", trap.what());
    }
    std::vector<std::uint8_t> again =
        sw::encodeCheckpoint(*second, meta.instrsFetched);
    if (again != canon) {
        sw::panic("checkpoint canonical form is not a fixed point: "
                  "%zu vs %zu byte(s)", canon.size(), again.size());
    }
}

} // namespace

#if defined(SOFTWALKER_FUZZ)

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    installTrap();
    oneInput(data, size);
    return 0;
}

#else // standalone regression binary

namespace {

/** A valid image of a small quiesced run, the corpus's one good seed. */
std::vector<std::uint8_t>
makeSeedImage()
{
    std::unique_ptr<sw::Gpu> gpu = freshGpu();
    sw::Gpu::RunLimits limits;
    limits.warpInstrQuota = 64;
    limits.warmupInstrs = 0;
    limits.maxCycles = 4000000;
    gpu->runSegment(limits.warpInstrQuota, 0, limits);
    return sw::encodeCheckpoint(*gpu, limits.warpInstrQuota);
}

/** Seed corpus: one valid checkpoint plus systematic corruptions of it. */
std::vector<std::vector<std::uint8_t>>
makeSeeds()
{
    std::vector<std::vector<std::uint8_t>> seeds;
    const std::vector<std::uint8_t> valid = makeSeedImage();
    seeds.push_back(valid);

    // Truncations at every interesting boundary and a byte into the tail:
    // mid-magic, after magic, mid-version, after digest, halfway, end-1.
    for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                            std::size_t{10}, std::size_t{20},
                            valid.size() / 2, valid.size() - 1})
        seeds.emplace_back(valid.begin(),
                           valid.begin() +
                               static_cast<std::ptrdiff_t>(
                                   std::min(cut, valid.size())));

    // Single-byte corruptions spread over the whole image: magic, version,
    // digest, section names, counts, payload.
    for (std::size_t at = 0; at < valid.size();
         at += 1 + valid.size() / 64) {
        std::vector<std::uint8_t> flipped = valid;
        flipped[at] ^= 0xff;
        seeds.push_back(std::move(flipped));
    }

    // Trailing garbage after a valid image.
    std::vector<std::uint8_t> padded = valid;
    padded.insert(padded.end(), 16, 0xee);
    seeds.push_back(std::move(padded));

    // An absurd 64-bit count spliced over the first section's body, to
    // probe for pre-allocation from untrusted counts.
    if (valid.size() > 64) {
        std::vector<std::uint8_t> huge = valid;
        std::fill(huge.begin() + 40, huge.begin() + 48, 0xff);
        seeds.push_back(std::move(huge));
    }

    return seeds;
}

std::vector<std::uint8_t>
readAll(const char *path)
{
    std::FILE *in = std::fopen(path, "rb");
    if (!in) {
        // Not fatal(): the failure hook is already armed to throw.
        std::fprintf(stderr, "cannot open corpus file %s\n", path);
        std::exit(2);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(in);
    return bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    installTrap();

    const char *corpusDir = nullptr;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--write-corpus") == 0 && i + 1 < argc)
            corpusDir = argv[++i];
        else
            files.push_back(argv[i]);
    }

    std::size_t ran = 0;
    if (files.empty()) {
        std::vector<std::vector<std::uint8_t>> seeds = makeSeeds();
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            oneInput(seeds[i].data(), seeds[i].size());
            ++ran;
            if (corpusDir) {
                std::string path =
                    std::string(corpusDir) + "/seed-" + std::to_string(i) +
                    ".swckpt.bin";
                std::FILE *out = std::fopen(path.c_str(), "wb");
                if (!out) {
                    std::fprintf(stderr, "cannot write %s\n", path.c_str());
                    return 2;
                }
                std::fwrite(seeds[i].data(), 1, seeds[i].size(), out);
                std::fclose(out);
            }
        }
    } else {
        for (const char *path : files) {
            std::vector<std::uint8_t> bytes = readAll(path);
            oneInput(bytes.data(), bytes.size());
            ++ran;
        }
    }

    std::printf("fuzz_ckpt_reader: %zu input(s), no decoder invariant "
                "violations\n", ran);
    return 0;
}

#endif // SOFTWALKER_FUZZ
