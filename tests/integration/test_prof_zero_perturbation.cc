/**
 * @file
 * The host self-profiler observes without perturbing: a run with the
 * profiler enabled must produce a bit-identical RunResult fingerprint
 * (%a-exact doubles over every field) to a run with it disabled, in both
 * hardware-PTW and SoftWalker modes.  In the default build this holds
 * trivially (the macros compile out); in the hostprof build it is the
 * zero-perturbation proof the profiler's whole design rests on — zones
 * only read the wall clock, never the simulation.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "prof/hostprof.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

std::string
fingerprintOnce(const GpuConfig &cfg)
{
    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 500;
    limits.warmupInstrs = 100;
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = std::make_unique<GraphWorkload>("pzp", 256ull << 20,
                                                    true, 10, params);
    spec.limits = limits;
    RunResult result = run(std::move(spec));
    return fingerprint(result);
}

class ProfZeroPerturbation
    : public ::testing::TestWithParam<TranslationMode>
{
  protected:
    GpuConfig
    config() const
    {
        return GetParam() == TranslationMode::SoftWalker
            ? test::smallSoftWalkerConfig()
            : test::smallConfig();
    }
};

TEST_P(ProfZeroPerturbation, EnabledProfilerIsBitIdenticalToDisabled)
{
    prof::HostProfiler &profiler = prof::HostProfiler::instance();
    profiler.setEnabled(false);
    profiler.reset();
    std::string off = fingerprintOnce(config());

    profiler.reset();
    profiler.setEnabled(true);
    std::string on = fingerprintOnce(config());
    prof::ProfileSnapshot snap = profiler.snapshot();
    profiler.setEnabled(false);
    profiler.reset();

    EXPECT_EQ(off, on);

    if (prof::kHostProfCompiled) {
        // Not a vacuous comparison: the enabled run actually attributed
        // host time to the hot zones.
        EXPECT_GT(snap.zones[static_cast<std::size_t>(
                                 prof::Zone::EventDispatch)]
                      .hits,
                  0u);
        EXPECT_GT(snap.attributedNanos, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ProfZeroPerturbation,
                         ::testing::Values(TranslationMode::HardwarePtw,
                                           TranslationMode::SoftWalker));

} // namespace
