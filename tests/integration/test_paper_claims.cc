/**
 * @file
 * Integration tests asserting the paper's qualitative claims hold on a
 * scaled-down machine.  These are the repository's regression net for the
 * headline results: if one of these breaks, the figures will too.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

/** run() an ad-hoc workload instance through a RunSpec. */
RunResult
runOne(const GpuConfig &cfg, std::unique_ptr<Workload> workload,
       const Gpu::RunLimits &limits)
{
    RunSpec spec;
    spec.cfg = cfg;
    spec.workload = std::move(workload);
    spec.limits = limits;
    return run(std::move(spec));
}

/** Shared slow fixture: run the four configurations once on an irregular
 *  workload and test many claims against the cached results. */
class PaperClaims : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 2500;
        limits.warmupInstrs = 800;
        limits.maxCycles = 4000000;

        GpuConfig base = test::smallConfig();
        GpuConfig soft = test::smallSoftWalkerConfig();
        GpuConfig soft_no_intlb = test::smallSoftWalkerConfig();
        soft_no_intlb.inTlbMshrMax = 0;
        GpuConfig ideal = test::smallConfig();
        ideal.mode = TranslationMode::Ideal;
        GpuConfig hybrid = test::smallSoftWalkerConfig();
        hybrid.mode = TranslationMode::Hybrid;

        baseline = new RunResult(runOne(base, irregular(), limits));
        softwalker = new RunResult(runOne(soft, irregular(), limits));
        noInTlb = new RunResult(
            runOne(soft_no_intlb, irregular(), limits));
        idealRun = new RunResult(runOne(ideal, irregular(), limits));
        hybridRun = new RunResult(runOne(hybrid, irregular(), limits));
    }

    static void
    TearDownTestSuite()
    {
        delete baseline;
        delete softwalker;
        delete noInTlb;
        delete idealRun;
        delete hybridRun;
    }

    static std::unique_ptr<Workload>
    irregular()
    {
        GraphWorkload::Params params;
        params.gatherFraction = 0.6;
        params.pagesPerInstr = 1.2;
        params.windowPages = 8;
        return std::make_unique<GraphWorkload>("irr", 512ull << 20, true,
                                               15, params);
    }

    static RunResult *baseline;
    static RunResult *softwalker;
    static RunResult *noInTlb;
    static RunResult *idealRun;
    static RunResult *hybridRun;
};

RunResult *PaperClaims::baseline = nullptr;
RunResult *PaperClaims::softwalker = nullptr;
RunResult *PaperClaims::noInTlb = nullptr;
RunResult *PaperClaims::idealRun = nullptr;
RunResult *PaperClaims::hybridRun = nullptr;

TEST_F(PaperClaims, QueueingDominatesBaselineWalkLatency)
{
    // §3.2: queueing delay is ~95% of walk latency for irregular apps.
    double queue_share = baseline->avgWalkQueueDelay /
                         baseline->avgWalkTotalLatency;
    EXPECT_GT(queue_share, 0.80);
}

TEST_F(PaperClaims, SoftWalkerOutperformsBaseline)
{
    EXPECT_GT(speedup(*baseline, *softwalker), 1.3);
}

TEST_F(PaperClaims, SoftWalkerCutsWalkLatency)
{
    // §6.2: ~72.8% average reduction in total page-walk latency.
    EXPECT_LT(softwalker->avgWalkTotalLatency,
              0.6 * baseline->avgWalkTotalLatency);
}

TEST_F(PaperClaims, SoftWalkerNearIdeal)
{
    // The scaled-down test machine gives SoftWalker only 4 SMs x 8 SoftPWB
    // slots of concurrency, so it trails the unbounded ideal more than the
    // full Table 3 machine does.
    EXPECT_GT(softwalker->perf, 0.55 * idealRun->perf);
}

TEST_F(PaperClaims, InTlbMshrAddsOnTopOfSoftWalks)
{
    EXPECT_GE(softwalker->perf, noInTlb->perf * 0.95)
        << "In-TLB MSHR must not hurt, and usually helps";
    EXPECT_GT(softwalker->inTlbMshrAllocs, 0u);
    EXPECT_EQ(noInTlb->inTlbMshrAllocs, 0u);
}

TEST_F(PaperClaims, InTlbMshrReducesMshrFailures)
{
    // Fig 17: enabling In-TLB MSHR removes most L2 TLB MSHR failures.
    EXPECT_LT(double(softwalker->l2MshrFailures),
              0.6 * double(baseline->l2MshrFailures));
}

TEST_F(PaperClaims, SoftWalkerReducesStalls)
{
    // Fig 19: stall-cycle reduction for irregular workloads.
    EXPECT_LT(softwalker->memStallCycles, baseline->memStallCycles);
}

TEST_F(PaperClaims, HybridMatchesSoftWalkerOnIrregular)
{
    EXPECT_GT(hybridRun->perf, 0.85 * softwalker->perf);
}

TEST_F(PaperClaims, PerWalkLatencySlightlyHigherInSoftware)
{
    // Fig 9: software walks pay communication + instruction overhead per
    // walk, traded against the eliminated queueing.
    EXPECT_GT(softwalker->avgWalkAccessLatency,
              baseline->avgWalkAccessLatency);
    EXPECT_LT(softwalker->avgWalkQueueDelay, baseline->avgWalkQueueDelay);
}

TEST_F(PaperClaims, SameWorkSameWalkDemand)
{
    // Both configs translate the same address stream.  The warmup-reset
    // poll (every 200 cycles) can shift the measured boundary by a few
    // instructions.
    EXPECT_NEAR(double(baseline->warpInstrs),
                double(softwalker->warpInstrs), 25.0);
    double ratio = double(softwalker->walks) / double(baseline->walks);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST_F(PaperClaims, L2CacheMissRateBarelyChanges)
{
    // Fig 20: the added page-walk traffic does not blow up the L2 data
    // cache miss rate.
    EXPECT_NEAR(softwalker->l2dMissRate, baseline->l2dMissRate, 0.15);
}

// ---- Regular-workload contract -----------------------------------------

TEST(PaperClaimsRegular, SoftWalkerDoesNotHelpRegularApps)
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 3000;
    limits.warmupInstrs = 3000;
    StreamingWorkload::Params params;
    auto make = []() {
        StreamingWorkload::Params params;
        return std::make_unique<StreamingWorkload>("reg", 512ull << 20,
                                                   false, 10, params);
    };
    RunResult base = runOne(test::smallConfig(), make(), limits);
    RunResult soft =
        runOne(test::smallSoftWalkerConfig(), make(), limits);
    double ratio = speedup(base, soft);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(PaperClaimsRegular, HybridRestoresHardwareLatency)
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 3000;
    limits.warmupInstrs = 3000;
    auto make = []() {
        StreamingWorkload::Params params;
        return std::make_unique<StreamingWorkload>("reg", 512ull << 20,
                                                   false, 10, params);
    };
    GpuConfig hybrid = test::smallSoftWalkerConfig();
    hybrid.mode = TranslationMode::Hybrid;
    RunResult base = runOne(test::smallConfig(), make(), limits);
    RunResult hyb = runOne(hybrid, make(), limits);
    // Hybrid keeps hardware walkers as the fast path: per-walk latency
    // stays near the baseline's.
    EXPECT_LT(hyb.avgWalkAccessLatency,
              base.avgWalkAccessLatency * 1.5 + 100);
    EXPECT_GT(speedup(base, hyb), 0.9);
}

// ---- PTW scaling (Fig 5 shape) ------------------------------------------

TEST(PaperClaimsScaling, MorePtwsHelpIrregularUntilSaturation)
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 2000;
    limits.warmupInstrs = 500;
    auto make = []() {
        GraphWorkload::Params params;
        params.gatherFraction = 0.6;
        params.pagesPerInstr = 1.2;
        params.windowPages = 8;
        return std::make_unique<GraphWorkload>("irr", 512ull << 20, true,
                                               15, params);
    };
    std::vector<double> perfs;
    for (std::uint32_t ptws : {2u, 8u, 64u}) {
        GpuConfig cfg = test::smallConfig();
        scalePtwSubsystem(cfg, ptws);
        perfs.push_back(runOne(cfg, make(), limits).perf);
    }
    EXPECT_GT(perfs[1], perfs[0] * 1.1) << "2 -> 8 PTWs must help";
    EXPECT_GT(perfs[2], perfs[1] * 0.95) << "more never hurts much";
}

} // namespace
