/**
 * @file
 * Property matrix: every (translation mode x page size x page-table kind)
 * combination must complete the same work with consistent invariants —
 * walks created == walks completed, no leaked credits or events, no
 * faults under map-on-demand.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

using ModeMatrixParam =
    std::tuple<TranslationMode, std::uint64_t, PageTableKind>;

class ModeMatrix : public ::testing::TestWithParam<ModeMatrixParam>
{
};

TEST_P(ModeMatrix, CompletesWithConsistentInvariants)
{
    auto [mode, page_bytes, pt_kind] = GetParam();

    GpuConfig cfg = (mode == TranslationMode::SoftWalker ||
                     mode == TranslationMode::Hybrid)
        ? test::smallSoftWalkerConfig()
        : test::smallConfig();
    cfg.mode = mode;
    cfg.pageBytes = page_bytes;
    cfg.pageTableKind = pt_kind;

    GraphWorkload::Params params;
    params.gatherFraction = 0.5;
    params.pagesPerInstr = 0.8;
    params.windowPages = 8;
    Gpu gpu(cfg, std::make_unique<GraphWorkload>("mm", 512ull << 20, true,
                                                 10, params));
    installWalkBackend(gpu);

    Gpu::RunLimits limits;
    limits.warpInstrQuota = 600;
    limits.maxCycles = 3000000;
    gpu.run(limits);

    const TranslationEngine::Stats &stats = gpu.engine().stats();
    EXPECT_EQ(gpu.instructionsIssued(), 600u);
    EXPECT_EQ(stats.walksCreated, stats.walksCompleted);
    EXPECT_EQ(stats.faults, 0u);
    EXPECT_EQ(gpu.engine().outstandingWalks(), 0u);
    EXPECT_EQ(gpu.engine().backend()->inFlight(), 0u);
    EXPECT_TRUE(gpu.eventQueue().empty());
    EXPECT_EQ(gpu.engine().l2Tlb().pendingCount(), 0u);

    if (SoftWalkerBackend *backend = softWalkerOf(gpu)) {
        EXPECT_EQ(backend->distributor().totalCredits(), 0u);
    }

    // Walk-latency stats are populated and internally consistent.
    if (stats.walksCompleted > 0) {
        EXPECT_EQ(stats.walkQueueDelay.count, stats.walksCompleted);
        EXPECT_EQ(stats.walkAccessLatency.count, stats.walksCompleted);
        EXPECT_GT(stats.walkAccessLatency.mean(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ModeMatrix,
    ::testing::Combine(
        ::testing::Values(TranslationMode::HardwarePtw,
                          TranslationMode::SoftWalker,
                          TranslationMode::Hybrid, TranslationMode::Ideal),
        ::testing::Values(64ull * 1024, 2ull * 1024 * 1024),
        ::testing::Values(PageTableKind::Radix4, PageTableKind::Hashed)));

/** NHA composes with every page-size / workload combination. */
class NhaMatrix : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NhaMatrix, NhaCompletesAndMerges)
{
    GpuConfig cfg = test::smallConfig();
    cfg.nhaCoalescing = true;
    cfg.pageBytes = GetParam();

    // Streaming neighbours produce exactly the same-sector walks NHA
    // merges.
    StreamingWorkload::Params params;
    params.strideBytes = 16 * 1024;
    Gpu gpu(cfg, std::make_unique<StreamingWorkload>("nha", 1ull << 30,
                                                     true, 5, params));
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 800;
    limits.maxCycles = 3000000;
    gpu.run(limits);

    const TranslationEngine::Stats &stats = gpu.engine().stats();
    EXPECT_EQ(stats.walksCreated, stats.walksCompleted);
    EXPECT_TRUE(gpu.eventQueue().empty());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, NhaMatrix,
                         ::testing::Values(64ull * 1024,
                                           2ull * 1024 * 1024));

/** Determinism: identical seeds give identical simulations. */
TEST(Determinism, SameSeedSameCycles)
{
    auto run_once = []() {
        GpuConfig cfg = test::smallSoftWalkerConfig();
        cfg.rngSeed = 42;
        GraphWorkload::Params params;
        params.pagesPerInstr = 0.5;
        Gpu gpu(cfg, std::make_unique<GraphWorkload>("det", 256ull << 20,
                                                     true, 10, params));
        installWalkBackend(gpu);
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 500;
        gpu.run(limits);
        return std::make_tuple(gpu.cycles(),
                               gpu.engine().stats().walksCompleted,
                               gpu.eventQueue().eventsExecuted());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, DifferentSeedsDiverge)
{
    auto run_once = [](std::uint64_t seed) {
        GpuConfig cfg = test::smallConfig();
        cfg.rngSeed = seed;
        GraphWorkload::Params params;
        params.pagesPerInstr = 0.5;
        Gpu gpu(cfg, std::make_unique<GraphWorkload>("det", 256ull << 20,
                                                     true, 10, params));
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 500;
        gpu.run(limits);
        return gpu.cycles();
    };
    EXPECT_NE(run_once(1), run_once(2));
}

/** Large pages shorten walks: 3 radix levels instead of 4. */
TEST(LargePages, WalksDoFewerReads)
{
    auto reads_per_walk = [](std::uint64_t page_bytes) {
        GpuConfig cfg = test::smallConfig();
        cfg.pageBytes = page_bytes;
        cfg.pwcEntries = 1;   // mostly-cold PWC: count full walks
        GpuConfig tweaked = cfg;
        Gpu gpu(tweaked, std::make_unique<RandomAccessWorkload>(
                             "rand", 2ull << 30, 10, 1.0));
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 200;
        limits.maxCycles = 3000000;
        gpu.run(limits);
        const TranslationEngine::Stats &stats = gpu.engine().stats();
        return double(stats.ptReadLatency.count) /
               double(std::max<std::uint64_t>(1, stats.walksCompleted));
    };
    double small = reads_per_walk(64 * 1024);
    double large = reads_per_walk(2ull * 1024 * 1024);
    EXPECT_GT(small, large);
    EXPECT_LE(large, 3.2);
    EXPECT_GT(small, 3.0);
}

} // namespace
