/**
 * @file
 * The observability layer observes without perturbing: a run with the full
 * bundle installed (stat registry + lifecycle tracer + time-series
 * sampler) must be bit-identical — same final cycle, same executed event
 * count, same walk totals — to a run that never heard of observability.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "obs/sampler.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

using Outcome = std::tuple<Cycle, std::uint64_t, std::uint64_t>;

Outcome
runOnce(const GpuConfig &cfg, const Observability *obs)
{
    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    Gpu gpu(cfg, std::make_unique<GraphWorkload>("zp", 256ull << 20, true,
                                                 10, params));
    installWalkBackend(gpu);
    if (obs)
        gpu.installObservability(*obs);

    Gpu::RunLimits limits;
    limits.warpInstrQuota = 500;
    limits.warmupInstrs = 100;
    gpu.run(limits);

    Outcome out{gpu.cycles(), gpu.eventQueue().eventsExecuted(),
                gpu.engine().stats().walksCompleted};
    if (obs && obs->sampler)
        obs->sampler->uninstall();
    return out;
}

class ObsZeroPerturbation
    : public ::testing::TestWithParam<TranslationMode>
{
  protected:
    GpuConfig
    config() const
    {
        return GetParam() == TranslationMode::SoftWalker
            ? test::smallSoftWalkerConfig()
            : test::smallConfig();
    }
};

TEST_P(ObsZeroPerturbation, FullBundleIsBitIdenticalToPlainRun)
{
    Outcome plain = runOnce(config(), nullptr);

    StatRegistry registry;
    TranslationTracer tracer;
    TimeSeriesSampler sampler;
    Observability obs;
    obs.registry = &registry;
    obs.tracer = &tracer;
    obs.sampler = &sampler;
    obs.sampleInterval = 200;
    Outcome observed = runOnce(config(), &obs);

    EXPECT_EQ(plain, observed);

    // The bundle actually collected something — this is not a vacuous
    // comparison against an inert observer.
    EXPECT_GT(registry.size(), 0u);
    EXPECT_GT(sampler.numRows(), 0u);
    if (kTracingCompiled) {
        EXPECT_GT(tracer.stampsRecorded(), 0u);
        EXPECT_GT(tracer.spansCompleted(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ObsZeroPerturbation,
                         ::testing::Values(TranslationMode::HardwarePtw,
                                           TranslationMode::SoftWalker));

TEST(ObsRegistry, ReachesEveryLayerOfTheMachine)
{
    StatRegistry registry;
    Observability obs;
    obs.registry = &registry;
    runOnce(test::smallSoftWalkerConfig(), &obs);

    // One representative name per subsystem proves the registration tree
    // spans the whole machine.
    EXPECT_TRUE(registry.has("gpu.cycles"));
    EXPECT_TRUE(registry.has("sm0.warp_instrs"));
    EXPECT_TRUE(registry.has("sm0.l1tlb.misses"));
    EXPECT_TRUE(registry.has("l2tlb.hits"));
    EXPECT_TRUE(registry.has("l2tlb.intlb_mshr.allocs"));
    EXPECT_TRUE(registry.has("walks.completed"));
    EXPECT_TRUE(registry.has("pwc.hits"));
    EXPECT_TRUE(registry.has("faults.recorded"));
    EXPECT_TRUE(registry.has("mem.l2d.misses"));
    EXPECT_TRUE(registry.has("mem.dram.accesses"));
    EXPECT_TRUE(registry.has("audit.sweeps"));
    EXPECT_TRUE(registry.has("softwalker.sm0.pwwarp.batches"));
    EXPECT_TRUE(registry.has("softwalker.distributor.dispatched"));
}

TEST(ObsRegistry, TracerStatsRegisterOnlyWhenInstalled)
{
    {
        StatRegistry registry;
        Observability obs;
        obs.registry = &registry;
        runOnce(test::smallConfig(), &obs);
        EXPECT_FALSE(registry.has("trace.queue_phase"));
    }
    {
        StatRegistry registry;
        TranslationTracer tracer;
        Observability obs;
        obs.registry = &registry;
        obs.tracer = &tracer;
        runOnce(test::smallConfig(), &obs);
        EXPECT_TRUE(registry.has("trace.queue_phase"));
        EXPECT_TRUE(registry.has("trace.walk_phase"));
    }
}

TEST(ObsHarness, RunWorkloadCapturesRegistryBeforeTeardown)
{
    StatRegistry registry;
    Observability obs;
    obs.registry = &registry;

    GraphWorkload::Params params;
    params.pagesPerInstr = 0.5;
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 300;
    RunSpec spec;
    spec.cfg = test::smallConfig();
    spec.workload = std::make_unique<GraphWorkload>("cap", 128ull << 20,
                                                    true, 10, params);
    spec.limits = limits;
    spec.obs = &obs;
    RunResult result = run(std::move(spec));
    EXPECT_GT(result.walks, 0u);

    // The GPU is gone; the captured snapshot must still serve a dump with
    // real (non-zero) values in it.
    std::string json = registry.dumpJson();
    EXPECT_NE(json.find("\"walks.completed\":"), std::string::npos);
    EXPECT_EQ(json.find("\"walks.completed\":0,"), std::string::npos);
}

} // namespace
