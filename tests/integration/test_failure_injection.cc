/**
 * @file
 * Failure injection: drive the translation machinery into its rare paths
 * — sustained page faults, fault-buffer overflow, pathologically small
 * structures, saturated In-TLB sets — and verify the system degrades
 * gracefully instead of deadlocking or corrupting state.
 */

#include <gtest/gtest.h>

#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "test_util.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

TEST(FailureInjection, SustainedFaultStormResolves)
{
    // Every page is initially unmapped and map-on-demand is off: every
    // first-touch walk faults, gets logged (FFB), and replays after the
    // driver maps the page.
    GpuConfig cfg = test::smallSoftWalkerConfig();
    Gpu gpu(cfg, std::make_unique<RandomAccessWorkload>("faulty",
                                                        64ull << 20, 5,
                                                        1.0));
    installWalkBackend(gpu);
    gpu.engine().setMapOnDemand(false);
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 150;
    limits.maxCycles = 20000000;
    gpu.run(limits);

    const TranslationEngine::Stats &stats = gpu.engine().stats();
    EXPECT_EQ(gpu.instructionsIssued(), 150u);
    EXPECT_GT(stats.faults, 0u);
    EXPECT_EQ(stats.walksCreated, stats.walksCompleted);
    EXPECT_TRUE(gpu.eventQueue().empty());
}

TEST(FailureInjection, FaultBufferOverflowIsCountedNotFatal)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg, std::make_unique<RandomAccessWorkload>("faulty",
                                                        64ull << 20, 5,
                                                        1.0));
    gpu.engine().setMapOnDemand(false);
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 200;
    limits.maxCycles = 20000000;
    gpu.run(limits);
    const FaultBuffer::Stats &fb = gpu.engine().faultBuffer().stats();
    // A random 32-lane workload faults far faster than the 64-entry
    // buffer drains; overflows are recorded and the run still completes.
    EXPECT_GT(fb.recorded + fb.overflows, 64u);
    EXPECT_EQ(gpu.instructionsIssued(), 200u);
}

TEST(FailureInjection, OneMshrOneWalkerStillCompletes)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numPtws = 1;
    cfg.pwbEntries = 1;
    cfg.l2TlbMshrs = 1;
    cfg.l1TlbMshrs = 1;
    Gpu gpu(cfg, std::make_unique<RandomAccessWorkload>("hostile",
                                                        128ull << 20, 5,
                                                        1.0));
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 60;
    limits.maxCycles = 60000000;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 60u);
    EXPECT_GT(gpu.engine().stats().l2MshrFailures, 0u);
    EXPECT_GT(gpu.engine().stats().l1MshrFailures, 0u);
    EXPECT_TRUE(gpu.eventQueue().empty());
}

TEST(FailureInjection, SingleLaneSoftWalkerSurvivesPressure)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.pwWarpThreads = 1;
    cfg.softPwbEntries = 1;
    GraphWorkload::Params params;
    params.pagesPerInstr = 1.5;
    params.windowPages = 8;
    Gpu gpu(cfg, std::make_unique<GraphWorkload>("pressure", 256ull << 20,
                                                 true, 5, params));
    installWalkBackend(gpu);
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 300;
    limits.maxCycles = 60000000;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 300u);
    SoftWalkerBackend *backend = softWalkerOf(gpu);
    // With 4 lanes total GPU-wide, the distributor queue must have been
    // exercised — and fully drained.
    EXPECT_GT(backend->stats().queuedNoCapacity, 0u);
    EXPECT_EQ(backend->inFlight(), 0u);
    EXPECT_EQ(backend->distributor().totalCredits(), 0u);
}

TEST(FailureInjection, InTlbSetSaturationDoesNotDeadlock)
{
    // Gathers confined to one L2 TLB set: pending slots saturate that set
    // and further misses must wait for completions, never deadlock.
    GpuConfig cfg = test::smallSoftWalkerConfig();
    cfg.l2TlbMshrs = 2;
    SparseWorkload::Params params;
    params.gatherFraction = 1.0;
    params.setStridePages = cfg.l2TlbEntries / cfg.l2TlbWays; // one set
    params.pagesPerInstr = 0.0;
    Gpu gpu(cfg, std::make_unique<SparseWorkload>("oneset", 512ull << 20,
                                                  5, params));
    installWalkBackend(gpu);
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 300;
    limits.maxCycles = 60000000;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 300u);
    const TlbArray::Stats &l2 = gpu.engine().l2Tlb().stats();
    EXPECT_GT(l2.pendingAllocFailures, 0u)
        << "the saturated set must have rejected pending allocations";
    EXPECT_EQ(gpu.engine().l2Tlb().pendingCount(), 0u);
}

TEST(FailureInjection, ZeroComputeGapBackToBackIssue)
{
    GpuConfig cfg = test::smallConfig();
    StreamingWorkload::Params params;
    Gpu gpu(cfg, std::make_unique<StreamingWorkload>("b2b", 64ull << 20,
                                                     false, 0, params));
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 500;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 500u);
}

TEST(FailureInjection, TinyFootprintSaturatesTlbsHarmlessly)
{
    GpuConfig cfg = test::smallSoftWalkerConfig();
    StreamingWorkload::Params params;
    // One page of footprint: everything hits after the first walk.
    Gpu gpu(cfg, std::make_unique<StreamingWorkload>("tiny", 64 * 1024,
                                                     false, 5, params));
    installWalkBackend(gpu);
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 400;
    gpu.run(limits);
    EXPECT_EQ(gpu.instructionsIssued(), 400u);
    EXPECT_LE(gpu.engine().stats().walksCompleted, 4u);
}

} // namespace
