/**
 * @file
 * Randomised end-to-end fuzz of the translation path: thousands of
 * translations with adversarial vpn/sm/timing distributions, checked
 * against the functional page table.  Runs across every backend.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "test_util.hh"
#include "workload/workload.hh"

using namespace sw;

namespace {

/** A workload is required to build a Gpu; the fuzz drives translate()
 *  directly, so warps get an inert single-page stream. */
class InertWorkload : public Workload
{
  public:
    WarpInstr
    next(SmId, WarpId, Rng &) override
    {
        WarpInstr instr;
        instr.computeGap = 1;
        instr.activeLanes = 1;
        instr.addrs[0] = 1ull << 34;
        return instr;
    }
    std::uint64_t footprintBytes() const override { return 1 << 20; }
    std::string name() const override { return "inert"; }
    bool irregular() const override { return false; }
};

using FuzzParam = std::tuple<TranslationMode, std::uint64_t /*seed*/>;

class TranslationFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(TranslationFuzz, AllTranslationsCorrectAndComplete)
{
    auto [mode, seed] = GetParam();
    GpuConfig cfg = (mode == TranslationMode::SoftWalker ||
                     mode == TranslationMode::Hybrid)
        ? test::smallSoftWalkerConfig()
        : test::smallConfig();
    cfg.mode = mode;
    cfg.rngSeed = seed;

    Gpu gpu(cfg, std::make_unique<InertWorkload>());
    installWalkBackend(gpu);
    TranslationEngine &engine = gpu.engine();
    EventQueue &eq = gpu.eventQueue();
    PageTableBase &pt = gpu.pageTable();

    Rng rng(seed * 7919 + 13);
    constexpr int kRequests = 3000;
    int completed = 0;
    std::map<Vpn, Pfn> observed;

    // Burst schedule: clusters of same-vpn requests (merge pressure),
    // wide scans (capacity pressure), random singles.
    Cycle when = 1;
    for (int i = 0; i < kRequests; ++i) {
        std::uint64_t shape = rng.range(100);
        Vpn vpn;
        if (shape < 40) {
            vpn = rng.range(64);                  // hot: heavy merging
        } else if (shape < 80) {
            vpn = 1000 + rng.range(100000);       // wide: MSHR pressure
        } else {
            vpn = rng.range(1ull << 30);          // cold singles
        }
        SmId sm = SmId(rng.range(cfg.numSms));
        when += rng.range(20);
        eq.schedule(when, [&, sm, vpn]() {
            engine.translate(sm, TranslationKey{0, vpn}, [&, vpn](Pfn pfn) {
                ++completed;
                auto [it, inserted] = observed.try_emplace(vpn, pfn);
                // A VPN must always resolve to the same frame.
                EXPECT_EQ(it->second, pfn);
                (void)inserted;
            });
        });
    }
    eq.run();

    EXPECT_EQ(completed, kRequests);
    for (auto [vpn, pfn] : observed)
        EXPECT_EQ(pt.translate(vpn), pfn);

    const TranslationEngine::Stats &stats = engine.stats();
    EXPECT_EQ(stats.walksCreated, stats.walksCompleted);
    EXPECT_EQ(engine.outstandingWalks(), 0u);
    EXPECT_EQ(engine.backend()->inFlight(), 0u);
    EXPECT_EQ(engine.l2Tlb().pendingCount(), 0u);
    EXPECT_TRUE(eq.empty());
    if (SoftWalkerBackend *backend = softWalkerOf(gpu)) {
        EXPECT_EQ(backend->distributor().totalCredits(), 0u);
    }

    // Conservation: every request is accounted for exactly once.
    EXPECT_EQ(stats.requests, std::uint64_t(kRequests));
    EXPECT_EQ(stats.translationLatency.count, std::uint64_t(kRequests));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, TranslationFuzz,
    ::testing::Combine(
        ::testing::Values(TranslationMode::HardwarePtw,
                          TranslationMode::SoftWalker,
                          TranslationMode::Hybrid, TranslationMode::Ideal),
        ::testing::Values(1u, 2u, 3u)));

} // namespace
