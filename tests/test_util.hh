/**
 * @file
 * Shared helpers for the test suite: a scaled-down GPU configuration that
 * keeps end-to-end tests fast while exercising every subsystem.
 */

#ifndef SW_TESTS_TEST_UTIL_HH
#define SW_TESTS_TEST_UTIL_HH

#include "sim/config.hh"

namespace sw::test {

/** A small machine: 4 SMs, 8 warps each, tiny TLBs. */
inline GpuConfig
smallConfig()
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.numSms = 4;
    cfg.maxWarpsPerSm = 8;
    cfg.l1TlbEntries = 8;
    cfg.l1TlbMshrs = 8;
    cfg.l2TlbEntries = 64;
    cfg.l2TlbWays = 8;
    cfg.l2TlbMshrs = 16;
    cfg.numPtws = 4;
    cfg.pwbEntries = 8;
    cfg.softPwbEntries = 8;
    cfg.pwWarpThreads = 8;
    return cfg;
}

/** Small machine in SoftWalker mode with In-TLB MSHR enabled. */
inline GpuConfig
smallSoftWalkerConfig()
{
    GpuConfig cfg = smallConfig();
    cfg.mode = TranslationMode::SoftWalker;
    cfg.inTlbMshrMax = 32;
    return cfg;
}

} // namespace sw::test

#endif // SW_TESTS_TEST_UTIL_HH
