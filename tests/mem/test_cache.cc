/** @file Unit tests for the sectored non-blocking cache model. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"

using namespace sw;

namespace {

/** Fixture: a small cache over a scripted "memory" with fixed latency. */
class CacheTest : public ::testing::Test
{
  protected:
    Cache::Params
    smallParams()
    {
        Cache::Params params;
        params.name = "test";
        params.sizeBytes = 4 * 1024;   // 32 lines of 128 B
        params.ways = 4;
        params.lineBytes = 128;
        params.sectorBytes = 32;
        params.latency = 10;
        params.mshrEntries = 4;
        params.maxMergesPerMshr = 4;
        return params;
    }

    std::unique_ptr<Cache>
    makeCache(Cache::Params params, Cycle mem_latency = 100)
    {
        return std::make_unique<Cache>(
            eq, params,
            [this, mem_latency](PhysAddr, bool,
                                std::function<void()> on_fill) {
                ++memAccesses;
                eq.scheduleIn(mem_latency, std::move(on_fill));
            });
    }

    /** Blocking helper: access and run until completion; returns latency. */
    Cycle
    accessAndWait(Cache &cache, PhysAddr addr, bool write = false)
    {
        Cycle start = eq.now();
        bool done = false;
        cache.access(addr, write, [&]() { done = true; });
        eq.run(kCycleMax, [&]() { return done; });
        while (!done && eq.runOne()) {
        }
        return eq.now() - start;
    }

    EventQueue eq;
    int memAccesses = 0;
};

TEST_F(CacheTest, ColdMissGoesToMemory)
{
    auto cache = makeCache(smallParams());
    Cycle latency = accessAndWait(*cache, 0x1000);
    EXPECT_EQ(memAccesses, 1);
    EXPECT_EQ(cache->stats().misses, 1u);
    EXPECT_GE(latency, 110u);   // lookup + memory
}

TEST_F(CacheTest, SecondAccessHits)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    Cycle latency = accessAndWait(*cache, 0x1000);
    EXPECT_EQ(cache->stats().hits, 1u);
    EXPECT_EQ(latency, 10u);    // hit latency only
    EXPECT_EQ(memAccesses, 1);
}

TEST_F(CacheTest, DifferentSectorSameLineIsSectorMiss)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    accessAndWait(*cache, 0x1000 + 32);   // next sector, same 128 B line
    EXPECT_EQ(cache->stats().sectorMisses, 1u);
    EXPECT_EQ(cache->stats().misses, 2u);
    EXPECT_EQ(memAccesses, 2);
}

TEST_F(CacheTest, SameSectorDifferentOffsetHits)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    Cycle latency = accessAndWait(*cache, 0x1000 + 8);
    EXPECT_EQ(latency, 10u);
    EXPECT_EQ(cache->stats().hits, 1u);
}

TEST_F(CacheTest, ConcurrentMissesToSameSectorMerge)
{
    auto cache = makeCache(smallParams());
    int done = 0;
    cache->access(0x2000, false, [&]() { ++done; });
    cache->access(0x2000, false, [&]() { ++done; });
    cache->access(0x2008, false, [&]() { ++done; });
    eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(memAccesses, 1);
    EXPECT_EQ(cache->stats().mshrMerges, 2u);
}

TEST_F(CacheTest, MshrFileFullParksRequests)
{
    Cache::Params params = smallParams();
    params.mshrEntries = 2;
    auto cache = makeCache(params);
    int done = 0;
    // Three distinct sectors: third must wait for an MSHR.
    cache->access(0x0000, false, [&]() { ++done; });
    cache->access(0x1000, false, [&]() { ++done; });
    cache->access(0x2000, false, [&]() { ++done; });
    eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(cache->stats().mshrFailures, 1u);
    EXPECT_EQ(memAccesses, 3);
}

TEST_F(CacheTest, MergeCapacityExhaustedParksAndEventuallyCompletes)
{
    Cache::Params params = smallParams();
    params.maxMergesPerMshr = 2;
    auto cache = makeCache(params);
    int done = 0;
    for (int i = 0; i < 6; ++i)
        cache->access(0x3000, false, [&]() { ++done; });
    eq.run();
    EXPECT_EQ(done, 6);
    EXPECT_GT(cache->stats().mshrFailures, 0u);
}

TEST_F(CacheTest, LruEvictionOnSetOverflow)
{
    Cache::Params params = smallParams();
    auto cache = makeCache(params);
    // 8 sets; lines mapping to set 0 are 1024 B apart.
    for (PhysAddr i = 0; i < 5; ++i)
        accessAndWait(*cache, i * 1024);
    EXPECT_EQ(cache->stats().evictions, 1u);
    // The first line (LRU victim) is gone; the others are resident.
    EXPECT_FALSE(cache->isResident(0));
    EXPECT_TRUE(cache->isResident(4 * 1024));
}

TEST_F(CacheTest, LruKeepsRecentlyUsed)
{
    auto cache = makeCache(smallParams());
    for (PhysAddr i = 0; i < 4; ++i)
        accessAndWait(*cache, i * 1024);
    accessAndWait(*cache, 0);          // refresh line 0
    accessAndWait(*cache, 4 * 1024);   // evicts line 1, not 0
    EXPECT_TRUE(cache->isResident(0));
    EXPECT_FALSE(cache->isResident(1024));
}

TEST_F(CacheTest, FlushInvalidatesAll)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    cache->flush();
    EXPECT_FALSE(cache->isResident(0x1000));
    accessAndWait(*cache, 0x1000);
    EXPECT_EQ(cache->stats().misses, 2u);
}

TEST_F(CacheTest, WritesAllocateLikeReads)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000, /*write=*/true);
    EXPECT_TRUE(cache->isResident(0x1000));
    Cycle latency = accessAndWait(*cache, 0x1000, /*write=*/false);
    EXPECT_EQ(latency, 10u);
}

TEST_F(CacheTest, StatsResetZeroesCounters)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    cache->resetStats();
    EXPECT_EQ(cache->stats().accesses, 0u);
    EXPECT_EQ(cache->stats().misses, 0u);
    // Contents survive the reset.
    EXPECT_TRUE(cache->isResident(0x1000));
}

TEST_F(CacheTest, MissRateComputation)
{
    auto cache = makeCache(smallParams());
    accessAndWait(*cache, 0x1000);
    accessAndWait(*cache, 0x1000);
    accessAndWait(*cache, 0x1000);
    EXPECT_NEAR(cache->stats().missRate(), 1.0 / 3.0, 1e-9);
}

/** Property sweep: for any (ways, sectors) the cache stays consistent. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheGeometry, FillThenProbeConsistent)
{
    auto [ways, sector] = GetParam();
    EventQueue eq;
    Cache::Params params;
    params.sizeBytes = 8 * 1024;
    params.ways = ways;
    params.lineBytes = 128;
    params.sectorBytes = sector;
    params.latency = 1;
    params.mshrEntries = 64;
    Cache cache(eq, params,
                [&eq](PhysAddr, bool, std::function<void()> fill) {
                    eq.scheduleIn(5, std::move(fill));
                });
    // Touch a set-worth of lines; all must be resident afterwards.
    for (std::uint32_t i = 0; i < ways; ++i) {
        bool done = false;
        cache.access(PhysAddr(i) * 8 * 1024 / ways, false,
                     [&]() { done = true; });
        eq.run();
        ASSERT_TRUE(done);
    }
    for (std::uint32_t i = 0; i < ways; ++i)
        EXPECT_TRUE(cache.isResident(PhysAddr(i) * 8 * 1024 / ways));
    EXPECT_EQ(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(32u, 64u, 128u)));

} // namespace
