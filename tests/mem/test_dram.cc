/** @file Unit tests for the GDDR6 DRAM channel model. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace sw;

namespace {

Dram::Params
smallParams()
{
    Dram::Params params;
    params.channels = 4;
    params.accessLatency = 100;
    params.cyclesPerSector = 2;
    params.channelShift = 5;
    return params;
}

TEST(Dram, SingleAccessTakesDeviceLatency)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    Cycle done_at = 0;
    dram.access(0, false, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(done_at, 100u);
    EXPECT_EQ(dram.stats().accesses, 1u);
}

TEST(Dram, SameChannelAccessesQueue)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    std::vector<Cycle> done;
    // Same channel: addresses differ by channels*32 B.
    for (int i = 0; i < 3; ++i)
        dram.access(PhysAddr(i) * 4 * 32, false,
                    [&]() { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 100u);
    EXPECT_EQ(done[1], 102u);
    EXPECT_EQ(done[2], 104u);
    EXPECT_GT(dram.stats().queueDelay.sum, 0u);
}

TEST(Dram, DifferentChannelsDontQueue)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    std::vector<Cycle> done;
    for (int i = 0; i < 4; ++i)
        dram.access(PhysAddr(i) * 32, false,
                    [&]() { done.push_back(eq.now()); });
    eq.run();
    for (Cycle c : done)
        EXPECT_EQ(c, 100u);
    EXPECT_EQ(dram.stats().queueDelay.sum, 0u);
}

TEST(Dram, ChannelSelectionBits)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    // Address bits below channelShift do not change the channel: two
    // accesses within one sector of the same channel serialise.
    std::vector<Cycle> done;
    dram.access(0, false, [&]() { done.push_back(eq.now()); });
    dram.access(16, false, [&]() { done.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(done[0], 100u);
    EXPECT_EQ(done[1], 102u);
}

TEST(Dram, UtilisationGrowsWithTraffic)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    for (int i = 0; i < 50; ++i)
        dram.access(0, false, []() {});
    eq.run();
    EXPECT_GT(dram.utilisation(), 0.5);
}

TEST(Dram, ResetStatsClearsCountersAndWindow)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    for (int i = 0; i < 10; ++i)
        dram.access(0, false, []() {});
    eq.run();
    dram.resetStats();
    EXPECT_EQ(dram.stats().accesses, 0u);
    EXPECT_DOUBLE_EQ(dram.utilisation(), 0.0);
}

TEST(Dram, WritesShareTiming)
{
    EventQueue eq;
    Dram dram(eq, smallParams());
    Cycle done_at = 0;
    dram.access(64, true, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(done_at, 100u);
}

/** Bandwidth property: N back-to-back accesses on one channel take
 *  N * cyclesPerSector of channel time. */
class DramBandwidth : public ::testing::TestWithParam<int>
{
};

TEST_P(DramBandwidth, ChannelOccupancyScalesLinearly)
{
    int n = GetParam();
    EventQueue eq;
    Dram::Params params = smallParams();
    Dram dram(eq, params);
    Cycle last = 0;
    for (int i = 0; i < n; ++i)
        dram.access(0, false, [&]() { last = eq.now(); });
    eq.run();
    EXPECT_EQ(last, params.accessLatency +
                    Cycle(n - 1) * params.cyclesPerSector);
}

INSTANTIATE_TEST_SUITE_P(Loads, DramBandwidth,
                         ::testing::Values(1, 2, 8, 32, 128));

} // namespace
