/** @file Unit tests for the memory-system façade (L1D/L2D/DRAM wiring). */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "test_util.hh"

using namespace sw;

namespace {

class MemorySystemTest : public ::testing::Test
{
  protected:
    MemorySystemTest() : cfg(test::smallConfig()), mem(eq, cfg) {}

    Cycle
    accessAndWait(PhysAddr addr, bool pte, SmId sm = 0)
    {
        Cycle start = eq.now();
        bool done = false;
        MemAccess acc;
        acc.addr = addr;
        acc.pte = pte;
        acc.sm = sm;
        acc.onDone = [&]() { done = true; };
        mem.access(std::move(acc));
        eq.run();
        EXPECT_TRUE(done);
        return eq.now() - start;
    }

    EventQueue eq;
    GpuConfig cfg;
    MemorySystem mem;
};

TEST_F(MemorySystemTest, DataAccessGoesThroughL1d)
{
    accessAndWait(0x10000, /*pte=*/false, /*sm=*/0);
    EXPECT_EQ(mem.l1d(0).stats().accesses, 1u);
    EXPECT_EQ(mem.l2d().stats().accesses, 1u);
    EXPECT_EQ(mem.dram().stats().accesses, 1u);
}

TEST_F(MemorySystemTest, PteAccessBypassesL1d)
{
    accessAndWait(0x20000, /*pte=*/true);
    for (SmId sm = 0; sm < cfg.numSms; ++sm)
        EXPECT_EQ(mem.l1d(sm).stats().accesses, 0u);
    EXPECT_EQ(mem.l2d().stats().accesses, 1u);
}

TEST_F(MemorySystemTest, PteCachedInL2Only)
{
    accessAndWait(0x20000, /*pte=*/true);
    Cycle second = accessAndWait(0x20000, /*pte=*/true);
    EXPECT_EQ(second, cfg.l2dLatency);   // L2D hit, no DRAM
    EXPECT_EQ(mem.dram().stats().accesses, 1u);
}

TEST_F(MemorySystemTest, L1dHitAfterFill)
{
    accessAndWait(0x30000, false, 1);
    Cycle second = accessAndWait(0x30000, false, 1);
    EXPECT_EQ(second, cfg.l1dLatency);
}

TEST_F(MemorySystemTest, L1dsArePerSm)
{
    accessAndWait(0x40000, false, 0);
    // Another SM missing the same line hits only in the shared L2D.
    Cycle other_sm = accessAndWait(0x40000, false, 1);
    EXPECT_EQ(other_sm, cfg.l1dLatency + cfg.l2dLatency);
    EXPECT_EQ(mem.dram().stats().accesses, 1u);
}

TEST_F(MemorySystemTest, ColdMissLatencyIsSumOfLevels)
{
    Cycle latency = accessAndWait(0x50000, false, 2);
    EXPECT_GE(latency, cfg.l1dLatency + cfg.l2dLatency + cfg.dramLatency);
}

TEST_F(MemorySystemTest, AggregateL1dStats)
{
    accessAndWait(0x60000, false, 0);
    accessAndWait(0x61000, false, 1);
    Cache::Stats agg = mem.aggregateL1dStats();
    EXPECT_EQ(agg.accesses, 2u);
    EXPECT_EQ(agg.misses, 2u);
}

TEST_F(MemorySystemTest, ResetStatsZeroesEverything)
{
    accessAndWait(0x70000, false, 0);
    mem.resetStats();
    EXPECT_EQ(mem.l2d().stats().accesses, 0u);
    EXPECT_EQ(mem.dram().stats().accesses, 0u);
    EXPECT_EQ(mem.aggregateL1dStats().accesses, 0u);
}

TEST(MemorySystemDeath, DataAccessFromUnknownSmPanics)
{
    EventQueue eq;
    GpuConfig cfg = test::smallConfig();
    MemorySystem mem(eq, cfg);
    MemAccess acc;
    acc.addr = 0x1000;
    acc.sm = 999;
    acc.onDone = []() {};
    EXPECT_DEATH(mem.access(std::move(acc)), "unknown SM");
}

} // namespace
