/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace sw;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(7);
    std::uint64_t first = rng.next();
    rng.next();
    rng.reseed(7);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(42);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.range(bound), bound);
    }
}

TEST(Rng, RangeOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.range(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsRoughlyHalf)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, RangeIsRoughlyUniform)
{
    Rng rng(13);
    constexpr std::uint64_t buckets = 10;
    constexpr int n = 50000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        ++counts[rng.range(buckets)];
    for (std::uint64_t b = 0; b < buckets; ++b)
        EXPECT_NEAR(double(counts[b]), n / double(buckets),
                    0.1 * n / double(buckets));
}

TEST(Rng, ProducesDistinctValues)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.next());
    EXPECT_EQ(seen.size(), 1000u);
}
