/** @file Unit tests for the event queue kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace sw;

TEST(EventQueue, StartsAtCycleZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunOneAdvancesClock)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(42, [&]() { fired = true; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, EventsExecuteInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleEventsExecuteInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(50, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, SchedulingAtCurrentCycleIsAllowed)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { ++count; });
    });
    eq.run();
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunHonoursCycleLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    eq.run(/*cycle_limit=*/20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunHonoursPredicate)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle c = 1; c <= 10; ++c)
        eq.schedule(c, [&]() { ++fired; });
    eq.run(kCycleMax, [&]() { return fired >= 4; });
    EXPECT_EQ(fired, 4);
}

TEST(EventQueue, EventsExecutedCounts)
{
    EventQueue eq;
    for (Cycle c = 1; c <= 5; ++c)
        eq.schedule(c, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.runOne();
    eq.schedule(20, []() {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

/**
 * Regression: reset() used to leave periodic-check subscriptions (and the
 * legacy single-slot id) behind, so a recycled queue kept firing hooks
 * owned by the previous simulation.
 */
TEST(EventQueue, ResetDropsPeriodicCheckSubscriptions)
{
    EventQueue eq;
    int stale = 0;
    eq.addPeriodicCheck(1, [&](Cycle) { ++stale; });
    eq.setPeriodicCheck(1, [&](Cycle) { ++stale; });
    EXPECT_EQ(eq.numPeriodicChecks(), 2u);

    eq.reset();
    EXPECT_EQ(eq.numPeriodicChecks(), 0u);

    for (Cycle c = 1; c <= 10; ++c)
        eq.schedule(c, []() {});
    eq.run();
    EXPECT_EQ(stale, 0) << "stale sweep hooks fired after reset()";
}

TEST(EventQueue, ResetRestartsSweepIdsSoLegacySlotStillReplaces)
{
    EventQueue eq;
    eq.setPeriodicCheck(5, [](Cycle) {});
    eq.reset();

    // After reset the legacy slot must behave like a fresh queue: two
    // installs leave exactly one subscription.
    int fired = 0;
    eq.setPeriodicCheck(1, [&](Cycle) { ++fired; });
    eq.setPeriodicCheck(1, [&](Cycle) { ++fired; });
    EXPECT_EQ(eq.numPeriodicChecks(), 1u);

    for (Cycle c = 1; c <= 4; ++c)
        eq.schedule(c, []() {});
    eq.run();
    EXPECT_EQ(fired, 4);
}

TEST(EventQueue, ResetRecyclesSlabSlots)
{
    EventQueue eq;
    for (int round = 0; round < 3; ++round) {
        int n = 0;
        for (Cycle c = 1; c <= 100; ++c)
            eq.schedule(c, [&]() { ++n; });
        eq.run();
        EXPECT_EQ(n, 100);
        eq.reset();
        EXPECT_TRUE(eq.empty());
        EXPECT_EQ(eq.now(), 0u);
    }
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.runOne();
    EXPECT_DEATH(eq.schedule(50, []() {}), "scheduled in the past");
}

/** Dense stress: interleaved schedules keep strict ordering. */
TEST(EventQueue, StressOrderingInvariant)
{
    EventQueue eq;
    Cycle last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        Cycle when = Cycle((i * 7919) % 997);
        eq.schedule(when, [&, when]() {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
            EXPECT_EQ(eq.now(), when);
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.eventsExecuted(), 1000u);
}
