/** @file Unit tests for GpuConfig (Table 3 defaults and validation). */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace sw;

TEST(Config, Table3Defaults)
{
    GpuConfig cfg = makeDefaultConfig();
    EXPECT_EQ(cfg.numSms, 46u);
    EXPECT_EQ(cfg.maxWarpsPerSm, 48u);
    EXPECT_EQ(cfg.warpSize, 32u);
    EXPECT_EQ(cfg.l1TlbEntries, 32u);
    EXPECT_EQ(cfg.l1TlbLatency, 10u);
    EXPECT_EQ(cfg.l1TlbMshrs, 32u);
    EXPECT_EQ(cfg.l1TlbMergesPerMshr, 192u);
    EXPECT_EQ(cfg.l2TlbEntries, 1024u);
    EXPECT_EQ(cfg.l2TlbWays, 16u);
    EXPECT_EQ(cfg.l2TlbLatency, 80u);
    EXPECT_EQ(cfg.l2TlbMshrs, 128u);
    EXPECT_EQ(cfg.l2TlbMergesPerMshr, 46u);
    EXPECT_EQ(cfg.pageBytes, 64u * 1024u);
    EXPECT_EQ(cfg.numPtws, 32u);
    EXPECT_EQ(cfg.pwcEntries, 32u);
    EXPECT_EQ(cfg.dramChannels, 16u);
    EXPECT_EQ(cfg.mode, TranslationMode::HardwarePtw);
    EXPECT_EQ(cfg.inTlbMshrMax, 0u) << "In-TLB MSHR is off in the baseline";
}

TEST(Config, SoftWalkerConfigEnablesInTlbMshr)
{
    GpuConfig cfg = makeSoftWalkerConfig();
    EXPECT_EQ(cfg.mode, TranslationMode::SoftWalker);
    EXPECT_EQ(cfg.inTlbMshrMax, 1024u);
    EXPECT_EQ(cfg.pwWarpThreads, 32u);
    EXPECT_EQ(cfg.softPwbEntries, 32u);
    cfg.validate();
}

TEST(Config, HybridConfig)
{
    GpuConfig cfg = makeSoftWalkerConfig(TranslationMode::Hybrid);
    EXPECT_EQ(cfg.mode, TranslationMode::Hybrid);
    cfg.validate();
}

TEST(Config, PageTableLevels)
{
    GpuConfig cfg = makeDefaultConfig();
    EXPECT_EQ(cfg.pageTableLevels(), 4u);
    cfg.pageBytes = 2ull * 1024 * 1024;
    EXPECT_EQ(cfg.pageTableLevels(), 3u);
}

TEST(Config, EffectiveCommLatencyDefaultsToL2Latency)
{
    GpuConfig cfg = makeDefaultConfig();
    EXPECT_EQ(cfg.effectiveCommLatency(), cfg.l2TlbLatency);
    cfg.commLatency = 120;
    EXPECT_EQ(cfg.effectiveCommLatency(), 120u);
}

TEST(Config, ScalePtwSubsystem)
{
    GpuConfig cfg = makeDefaultConfig();
    scalePtwSubsystem(cfg, 128);
    EXPECT_EQ(cfg.numPtws, 128u);
    EXPECT_EQ(cfg.pwbEntries, 256u);
    EXPECT_EQ(cfg.l2TlbMshrs, 512u);
}

TEST(Config, ScalePtwOnly)
{
    GpuConfig cfg = makeDefaultConfig();
    scalePtwSubsystem(cfg, 256, /*scale_mshrs=*/false, /*scale_pwb=*/true);
    EXPECT_EQ(cfg.numPtws, 256u);
    EXPECT_EQ(cfg.l2TlbMshrs, 128u);
    EXPECT_EQ(cfg.pwbEntries, 512u);
}

TEST(Config, ValidateAcceptsDefaults)
{
    makeDefaultConfig().validate();
}

TEST(ConfigDeath, RejectsBadPageSize)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.pageBytes = 4096;
    EXPECT_DEATH(cfg.validate(), "page size");
}

TEST(ConfigDeath, RejectsIndivisibleL2Tlb)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.l2TlbEntries = 1000;
    EXPECT_DEATH(cfg.validate(), "divisible");
}

TEST(ConfigDeath, RejectsZeroSms)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.numSms = 0;
    EXPECT_DEATH(cfg.validate(), "non-zero");
}

TEST(ConfigDeath, RejectsOversizedInTlbMshr)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.inTlbMshrMax = cfg.l2TlbEntries + 1;
    EXPECT_DEATH(cfg.validate(), "In-TLB");
}

TEST(ConfigDeath, SoftWalkerConfigRejectsHardwareMode)
{
    EXPECT_DEATH(makeSoftWalkerConfig(TranslationMode::HardwarePtw),
                 "SoftWalker or Hybrid");
}

TEST(Config, ModeNames)
{
    EXPECT_STREQ(toString(TranslationMode::HardwarePtw), "hw-ptw");
    EXPECT_STREQ(toString(TranslationMode::SoftWalker), "softwalker");
    EXPECT_STREQ(toString(TranslationMode::Hybrid), "hybrid");
    EXPECT_STREQ(toString(TranslationMode::Ideal), "ideal");
    EXPECT_STREQ(toString(PageTableKind::Radix4), "radix4");
    EXPECT_STREQ(toString(PageTableKind::Hashed), "hashed");
    EXPECT_STREQ(toString(DistributorPolicy::RoundRobin), "round-robin");
    EXPECT_STREQ(toString(DistributorPolicy::Random), "random");
    EXPECT_STREQ(toString(DistributorPolicy::StallAware), "stall-aware");
}
