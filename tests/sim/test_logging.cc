/** @file Unit tests for logging/formatting helpers. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace sw;

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strprintf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, StrprintfLongStrings)
{
    std::string big(5000, 'q');
    std::string out = strprintf("[%s]", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "xyz"),
                ::testing::ExitedWithCode(1), "fatal: bad config xyz");
}

TEST(LoggingDeath, AssertMessageCarriesConditionText)
{
    // The condition text may contain '%' without corrupting the output.
    int value = 3;
    EXPECT_DEATH(SW_ASSERT(value % 2 == 0, "value was %d", value),
                 "value % 2 == 0");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning %d", 1);
    setVerbose(false);
    inform("suppressed");
    setVerbose(true);
    inform("visible");
    SUCCEED();
}

TEST(Logging, LogLevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setVerbose(true);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setVerbose(false);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(before);
}

TEST(Logging, LogLevelParsesFromEnvironment)
{
    struct Case { const char *value; LogLevel expect; };
    for (const Case &c : {Case{"0", LogLevel::Quiet},
                          Case{"quiet", LogLevel::Quiet},
                          Case{"error", LogLevel::Quiet},
                          Case{"1", LogLevel::Warn},
                          Case{"warn", LogLevel::Warn},
                          Case{"2", LogLevel::Info},
                          Case{"info", LogLevel::Info},
                          Case{"verbose", LogLevel::Info},
                          Case{"", LogLevel::Info},
                          Case{"gibberish", LogLevel::Info}}) {
        ASSERT_EQ(setenv("SW_LOG_LEVEL", c.value, 1), 0);
        EXPECT_EQ(logLevelFromEnv(), c.expect) << "'" << c.value << "'";
    }
    unsetenv("SW_LOG_LEVEL");
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Info);
}

/** Every failure class reaches a hook installed on the single sink. */
TEST(LoggingDeath, FailureHookSeesEveryFailureClass)
{
    auto with_hook = [](auto doom) {
        setFailureHook([](const char *kind, const std::string &msg) {
            std::fprintf(stderr, "hook[%s] %s\n", kind, msg.c_str());
        });
        doom();
    };
    EXPECT_DEATH(with_hook([] { panic("p"); }), "hook\\[panic\\] p");
    EXPECT_EXIT(with_hook([] { fatal("f"); }),
                ::testing::ExitedWithCode(1), "hook\\[fatal\\] f");
    EXPECT_DEATH(with_hook([] { SW_ASSERT(false, "a"); }),
                 "hook\\[panic\\] assertion 'false' failed: a");
}
