/** @file Unit tests for logging/formatting helpers. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace sw;

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strprintf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, StrprintfLongStrings)
{
    std::string big(5000, 'q');
    std::string out = strprintf("[%s]", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "xyz"),
                ::testing::ExitedWithCode(1), "fatal: bad config xyz");
}

TEST(LoggingDeath, AssertMessageCarriesConditionText)
{
    // The condition text may contain '%' without corrupting the output.
    int value = 3;
    EXPECT_DEATH(SW_ASSERT(value % 2 == 0, "value was %d", value),
                 "value % 2 == 0");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning %d", 1);
    setVerbose(false);
    inform("suppressed");
    setVerbose(true);
    inform("visible");
    SUCCEED();
}
