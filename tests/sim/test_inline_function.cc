/** @file Unit tests for InlineFunction and its slab pool. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"

using namespace sw;

namespace {

using Fn48 = InlineFunction<int(), 48>;

/** Counts live instances so destruction/move balance can be asserted. */
struct Tracked
{
    static int live;
    static int destroyed;

    Tracked() { ++live; }
    Tracked(const Tracked &) { ++live; }
    Tracked(Tracked &&) noexcept { ++live; }
    ~Tracked()
    {
        --live;
        ++destroyed;
    }

    static void
    resetCounters()
    {
        live = 0;
        destroyed = 0;
    }
};

int Tracked::live = 0;
int Tracked::destroyed = 0;

} // namespace

TEST(InlineFunction, DefaultConstructedIsEmpty)
{
    Fn48 fn;
    EXPECT_FALSE(fn);
    EXPECT_FALSE(fn.onHeap());
    Fn48 null_fn(nullptr);
    EXPECT_FALSE(null_fn);
}

TEST(InlineFunction, SmallCaptureStaysInline)
{
    int x = 41;
    Fn48 fn = [x]() { return x + 1; };
    static_assert(Fn48::fitsInline<decltype([x]() { return x; })>());
    ASSERT_TRUE(fn);
    EXPECT_FALSE(fn.onHeap());
    EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, CaptureAtExactCapacityStaysInline)
{
    std::array<std::uint8_t, 48> blob{};
    blob[0] = 7;
    auto lam = [blob]() { return int(blob[0]); };
    static_assert(sizeof(lam) == 48);
    static_assert(Fn48::fitsInline<decltype(lam)>());
    Fn48 fn = lam;
    EXPECT_FALSE(fn.onHeap());
    EXPECT_EQ(fn(), 7);
}

TEST(InlineFunction, OversizedCaptureSpillsToSlab)
{
    std::array<std::uint8_t, 64> blob{};
    blob[5] = 9;
    auto lam = [blob]() { return int(blob[5]); };
    static_assert(!Fn48::fitsInline<decltype(lam)>());
    Fn48 fn = lam;
    ASSERT_TRUE(fn);
    EXPECT_TRUE(fn.onHeap());
    EXPECT_EQ(fn(), 9);
}

TEST(InlineFunction, EventFnCapacityMatchesHotPathCaptures)
{
    // The event queue's inline budget must keep covering the largest
    // hot-path capture shape: this + a 64-byte WalkRequest-sized payload.
    struct FakeReq
    {
        std::uint8_t bytes[64];
    };
    void *self = nullptr;
    FakeReq req{};
    auto hop = [self, req]() { (void)self; };
    static_assert(
        InlineFunction<void(), 80>::fitsInline<decltype(hop)>(),
        "80-byte inline budget no longer fits this+WalkRequest captures");
}

TEST(InlineFunction, MoveOnlyCallable)
{
    auto ptr = std::make_unique<int>(99);
    Fn48 fn = [p = std::move(ptr)]() { return *p; };
    ASSERT_TRUE(fn);
    EXPECT_EQ(fn(), 99);

    Fn48 moved = std::move(fn);
    EXPECT_FALSE(fn);
    EXPECT_EQ(moved(), 99);
}

TEST(InlineFunction, MoveTransfersInlineCapture)
{
    Tracked::resetCounters();
    {
        Tracked t;
        Fn48 a = [t]() { return Tracked::live; };
        Fn48 b = std::move(a);
        EXPECT_FALSE(a);
        ASSERT_TRUE(b);
        b();
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, MoveOfHeapCaptureOnlyMovesThePointer)
{
    Tracked::resetCounters();
    {
        std::array<std::uint8_t, 100> pad{};
        Tracked t;
        Fn48 a = [t, pad]() { return int(pad[0]); };
        ASSERT_TRUE(a.onHeap());
        int live_before_move = Tracked::live;
        Fn48 b = std::move(a);
        // A slab-resident capture changes hands by pointer: no Tracked
        // instance is constructed or destroyed by the move itself.
        EXPECT_EQ(Tracked::live, live_before_move);
        EXPECT_TRUE(b.onHeap());
        b();
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, DestructionBalancesForBothStorageKinds)
{
    Tracked::resetCounters();
    {
        Tracked t;
        Fn48 inline_fn = [t]() { return 0; };
        std::array<std::uint8_t, 100> pad{};
        Fn48 heap_fn = [t, pad]() { return int(pad[0]); };
        EXPECT_FALSE(inline_fn.onHeap());
        EXPECT_TRUE(heap_fn.onHeap());
    }
    EXPECT_EQ(Tracked::live, 0) << "a capture leaked";
}

TEST(InlineFunction, MoveAssignmentDestroysPreviousTarget)
{
    Tracked::resetCounters();
    {
        Tracked t;
        Fn48 a = [t]() { return 1; };
        Fn48 b = [t]() { return 2; };
        int destroyed_before = Tracked::destroyed;
        b = std::move(a);
        EXPECT_GT(Tracked::destroyed, destroyed_before)
            << "move-assign must destroy the old capture";
        EXPECT_EQ(b(), 1);
        EXPECT_FALSE(a);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, SelfMoveAssignIsHarmless)
{
    int x = 5;
    Fn48 fn = [x]() { return x; };
    Fn48 &alias = fn;
    fn = std::move(alias);
    ASSERT_TRUE(fn);
    EXPECT_EQ(fn(), 5);
}

TEST(InlineFunction, ArgumentsAndReturnForwarding)
{
    InlineFunction<int(int, int), 48> add = [](int a, int b) {
        return a + b;
    };
    EXPECT_EQ(add(20, 22), 42);

    InlineFunction<std::unique_ptr<int>(int), 48> box = [](int v) {
        return std::make_unique<int>(v);
    };
    EXPECT_EQ(*box(7), 7);
}

TEST(InlineFunctionDeath, InvokingEmptyPanics)
{
    Fn48 fn;
    EXPECT_DEATH(fn(), "empty InlineFunction invoked");
}

TEST(SlabPool, RecyclesBlocksThroughTheFreelist)
{
    std::size_t base = detail::SlabPool::freeBlocks();
    void *block = detail::SlabPool::allocate(100);
    ASSERT_NE(block, nullptr);
    detail::SlabPool::deallocate(block, 100);
    EXPECT_EQ(detail::SlabPool::freeBlocks(), base + 1);

    // Same size class: the freelist block is handed straight back.
    void *again = detail::SlabPool::allocate(120);
    EXPECT_EQ(again, block);
    EXPECT_EQ(detail::SlabPool::freeBlocks(), base);
    detail::SlabPool::deallocate(again, 120);
}

TEST(SlabPool, OversizedRequestsBypassTheFreelists)
{
    std::size_t base = detail::SlabPool::freeBlocks();
    void *big = detail::SlabPool::allocate(4096);
    ASSERT_NE(big, nullptr);
    detail::SlabPool::deallocate(big, 4096);
    EXPECT_EQ(detail::SlabPool::freeBlocks(), base);
}

TEST(SlabPool, DistinctSizeClassesDoNotMix)
{
    std::size_t base = detail::SlabPool::freeBlocks();
    void *small = detail::SlabPool::allocate(64);
    void *large = detail::SlabPool::allocate(512);
    detail::SlabPool::deallocate(small, 64);
    detail::SlabPool::deallocate(large, 512);
    EXPECT_EQ(detail::SlabPool::freeBlocks(), base + 2);

    // A 512-class request must not be satisfied by the 64-byte block.
    void *again = detail::SlabPool::allocate(400);
    EXPECT_EQ(again, large);
    detail::SlabPool::deallocate(again, 400);
}
