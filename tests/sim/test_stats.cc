/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace sw;

TEST(LatencyStat, EmptyIsZero)
{
    LatencyStat stat;
    EXPECT_EQ(stat.count, 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
}

TEST(LatencyStat, AccumulatesMoments)
{
    LatencyStat stat;
    stat.add(10);
    stat.add(20);
    stat.add(30);
    EXPECT_EQ(stat.count, 3u);
    EXPECT_EQ(stat.sum, 60u);
    EXPECT_EQ(stat.minv, 10u);
    EXPECT_EQ(stat.maxv, 30u);
    EXPECT_DOUBLE_EQ(stat.mean(), 20.0);
}

TEST(LatencyStat, MergeCombines)
{
    LatencyStat a, b;
    a.add(5);
    a.add(15);
    b.add(100);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_EQ(a.minv, 5u);
    EXPECT_EQ(a.maxv, 100u);
    EXPECT_DOUBLE_EQ(a.mean(), 40.0);
}

TEST(LatencyStat, ResetClears)
{
    LatencyStat stat;
    stat.add(7);
    stat.reset();
    EXPECT_EQ(stat.count, 0u);
    EXPECT_EQ(stat.sum, 0u);
}

TEST(Histogram, CountsIntoBuckets)
{
    Histogram hist(4, 10);
    hist.add(0);
    hist.add(9);
    hist.add(10);
    hist.add(39);
    EXPECT_EQ(hist.bucket(0), 2u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(3), 1u);
    EXPECT_EQ(hist.samples(), 4u);
}

TEST(Histogram, OverflowLandsInLastBucket)
{
    Histogram hist(4, 10);
    hist.add(1000000);
    EXPECT_EQ(hist.bucket(4), 1u);
}

TEST(Histogram, PercentileIsMonotonic)
{
    Histogram hist(100, 1);
    for (std::uint64_t v = 0; v < 100; ++v)
        hist.add(v);
    EXPECT_LE(hist.percentile(0.5), hist.percentile(0.9));
    EXPECT_LE(hist.percentile(0.9), hist.percentile(0.99));
}

TEST(Histogram, PercentileZeroReturnsFirstOccupiedBucketEdge)
{
    // fraction 0 used to stop the scan at bucket 0 even when it was
    // empty; the smallest meaningful rank is the first sample.
    Histogram hist(10, 10);
    hist.add(35);  // only bucket 3 occupied
    EXPECT_EQ(hist.percentile(0.0), 40u);
    EXPECT_EQ(hist.percentile(0.0), hist.percentile(1.0));
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram hist(10, 10);
    EXPECT_EQ(hist.percentile(0.0), 0u);
    EXPECT_EQ(hist.percentile(0.99), 0u);
}

TEST(Histogram, PercentileShortcuts)
{
    Histogram hist(100, 1);
    for (std::uint64_t v = 0; v < 100; ++v)
        hist.add(v);
    EXPECT_EQ(hist.p50(), hist.percentile(0.50));
    EXPECT_EQ(hist.p95(), hist.percentile(0.95));
    EXPECT_EQ(hist.p99(), hist.percentile(0.99));
    // 100 uniform samples of width 1: the p50 upper edge is 50.
    EXPECT_EQ(hist.p50(), 50u);
    EXPECT_EQ(hist.p99(), 99u);
}

TEST(Histogram, ResetClears)
{
    Histogram hist(4, 10);
    hist.add(5);
    hist.reset();
    EXPECT_EQ(hist.samples(), 0u);
    EXPECT_EQ(hist.bucket(0), 0u);
}

TEST(Geomean, OfIdenticalValuesIsThatValue)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Geomean, OfTwoAndEightIsFour)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, Arithmetic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableDeath, WrongArityPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "arity");
}
