/**
 * @file
 * Golden test over `swsim_cli --help`: the CLI surface is an interface
 * contract (scripts, CI jobs, and docs/EXPERIMENTS.md recipes all parse
 * or cite it), so any flag addition, removal, or rewording must show up
 * as an explicit golden-file diff in review.
 *
 * Regenerate after an intentional change:
 *   build/examples/swsim_cli --help > tests/cli/swsim_cli_help.golden
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
runHelp()
{
    std::string cmd = std::string(SWSIM_CLI_PATH) + " --help 2>&1";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    int status = pclose(pipe);
    EXPECT_EQ(status, 0) << "swsim_cli --help exited non-zero";
    return out;
}

TEST(CliHelp, MatchesGolden)
{
    std::string golden =
        readFile(std::string(SW_SOURCE_DIR) + "/tests/cli/swsim_cli_help.golden");
    EXPECT_EQ(runHelp(), golden)
        << "swsim_cli --help drifted from tests/cli/swsim_cli_help.golden; "
           "if the change is intentional, regenerate the golden file "
           "(command in this file's header) and commit it";
}

TEST(CliHelp, DocumentsCheckpointFlags)
{
    // Belt and braces beyond the byte-exact golden: the checkpoint /
    // sampling surface this PR adds must be present by name.
    std::string help = runHelp();
    for (const char *flag :
         {"--ffwd", "--checkpoint-at", "--checkpoint-out", "--checkpoint-in",
          "--phase-sample", "--phase-window", "--phase-clusters"}) {
        EXPECT_NE(help.find(flag), std::string::npos)
            << "missing " << flag << " in --help output";
    }
}

} // namespace
