/**
 * @file
 * Figure 12 — Scaling PTWs and L2 TLB MSHRs independently and jointly,
 * for 64 KB and 2 MB pages, normalised to 32 PTWs + 128 MSHRs.
 *
 * Paper: with 64 KB pages, scaling only PTWs reaches 59.3% of ideal and
 * only MSHRs just 30.4%; both must scale together.
 */

#include "bench_common.hh"

using namespace swbench;

namespace {

void
sweep(std::uint64_t page_bytes, double footprint_scale)
{
    std::printf("---- %s pages ----\n",
                page_bytes >= 2ull << 20 ? "2MB" : "64KB");
    auto suite = irregularSuite();
    auto scale_of = [=](const BenchmarkInfo &info) {
        return page_bytes > 64 * 1024 ? largePageScale(info)
                                      : footprint_scale;
    };

    GpuConfig base = baselineCfg();
    base.pageBytes = page_bytes;

    GpuConfig ptws_only = base;
    scalePtwSubsystem(ptws_only, 512, /*scale_mshrs=*/false);

    GpuConfig mshrs_only = base;
    mshrs_only.l2TlbMshrs = 1024;

    GpuConfig both = base;
    scalePtwSubsystem(both, 512, /*scale_mshrs=*/false);
    both.l2TlbMshrs = 1024;

    GpuConfig ideal = idealCfg();
    ideal.pageBytes = page_bytes;

    auto groups = runSuites(suite, {{base, "base", 1.0, scale_of},
                                    {ptws_only, "ptws", 1.0, scale_of},
                                    {mshrs_only, "mshrs", 1.0, scale_of},
                                    {both, "both", 1.0, scale_of},
                                    {ideal, "ideal", 1.0, scale_of}});
    auto &base_r = groups[0];
    auto &ptw_r = groups[1];
    auto &mshr_r = groups[2];
    auto &both_r = groups[3];
    auto &ideal_r = groups[4];

    TextTable table({"bench", "PTWs", "MSHRs", "PTWs+MSHRs", "ideal"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      TextTable::num(speedup(base_r[i], ptw_r[i])),
                      TextTable::num(speedup(base_r[i], mshr_r[i])),
                      TextTable::num(speedup(base_r[i], both_r[i])),
                      TextTable::num(speedup(base_r[i], ideal_r[i]))});
    }
    std::printf("%s", table.str().c_str());
    double g_ptw = geomeanSpeedup(base_r, ptw_r);
    double g_mshr = geomeanSpeedup(base_r, mshr_r);
    double g_both = geomeanSpeedup(base_r, both_r);
    double g_ideal = geomeanSpeedup(base_r, ideal_r);
    std::printf("geomean: PTWs %.2fx (%.0f%% of ideal)  MSHRs %.2fx "
                "(%.0f%% of ideal)  both %.2fx  ideal %.2fx\n\n",
                g_ptw, 100.0 * g_ptw / g_ideal, g_mshr,
                100.0 * g_mshr / g_ideal, g_both, g_ideal);
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 12", "scaling PTWs vs L2 TLB MSHRs vs both");
    sweep(64 * 1024, 1.0);
    // 2 MB pages: grow the footprints past the large-page L2 TLB coverage
    // (2 GB at 1024 entries), as the paper does for Figs 6 and 25.
    sweep(2ull * 1024 * 1024, 0.0 /*per-benchmark largePageScale*/);
    std::printf("paper (64KB): PTWs-only 59.3%% of ideal, MSHRs-only "
                "30.4%%; (2MB): 83.4%% and 63.7%%\n");
    return 0;
}
