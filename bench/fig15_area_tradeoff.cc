/**
 * @file
 * Figure 15 — Speedup versus area overhead of hardware page-walk scaling
 * (PTW count x PWB port count), compared with SoftWalker's near-zero
 * added area.
 *
 * Area comes from the CACTI-lite model (src/area): PWB/MSHR CAMs grow
 * super-linearly with ports.  Paper: within a relative-area budget of
 * 16-64x, hardware reaches 1.1-2.1x while SoftWalker exceeds 2.6x.
 */

#include "area/cacti_lite.hh"
#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 15", "speedup vs area overhead of PTW scaling");

    auto suite = irregularSuite();
    double base_area = ptwSubsystemArea(32, 64, 1, 128).totalMm2;

    const std::vector<std::uint32_t> ptw_counts = {64, 128, 256};
    const std::vector<std::uint32_t> port_counts = {1, 4, 8};
    std::vector<SuiteRun> specs = {{baselineCfg(), "32-ptw/1-port"}};
    std::vector<double> rel_areas;
    for (std::uint32_t n : ptw_counts) {
        for (std::uint32_t ports : port_counts) {
            GpuConfig cfg = baselineCfg();
            scalePtwSubsystem(cfg, n);
            cfg.pwbPorts = ports;
            specs.push_back({cfg, strprintf("%up/%uport", n, ports)});
            rel_areas.push_back(ptwSubsystemArea(n, cfg.pwbEntries, ports,
                                                 cfg.l2TlbMshrs).totalMm2 /
                                base_area);
        }
    }
    specs.push_back({swCfg(), "softwalker"});
    auto groups = runSuites(suite, specs);
    auto &base = groups.front();
    auto &sw_run = groups.back();

    TextTable table({"config", "ports", "rel area", "geomean speedup"});
    table.addRow({"32 PTWs", "1", "1.00", "1.00"});

    std::size_t g = 1;
    for (std::uint32_t n : ptw_counts) {
        for (std::uint32_t ports : port_counts) {
            table.addRow({strprintf("%u PTWs", n), strprintf("%u", ports),
                          TextTable::num(rel_areas[g - 1]),
                          TextTable::num(geomeanSpeedup(base, groups[g]))});
            ++g;
        }
    }
    GpuConfig table3 = baselineCfg();
    double sw_area = base_area +
        softwalkerOverheadMm2(table3.numSms, table3.l2TlbEntries);
    table.addRow({"SoftWalker", "-", TextTable::num(sw_area / base_area),
                  TextTable::num(geomeanSpeedup(base, sw_run))});

    std::printf("%s\n", table.str().c_str());
    std::printf("paper: hardware reaches 1.1-2.1x within a 16-64x area "
                "budget; SoftWalker >2.6x at ~baseline area\n");
    return 0;
}
