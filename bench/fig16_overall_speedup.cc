/**
 * @file
 * Figure 16 — Overall performance.
 *
 * Speedup over the 32-PTW baseline for: NHA, FS-HPT, SoftWalker without
 * In-TLB MSHR, SoftWalker, SoftWalker Hybrid, and the ideal (unbounded
 * PTWs + MSHRs), across the full Table 4 suite.
 *
 * Paper reference points: NHA 1.22x, FS-HPT 1.13x, SW w/o In-TLB 1.63x,
 * SoftWalker 2.24x (3.94x irregular), Ideal 2.58x (averages).
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 16", "overall speedup over the 32-PTW baseline");

    auto suite = wholeSuite();
    // One job pool for all 7 configurations x the whole suite; SW_JOBS
    // workers drain it and the groups come back in the order listed.
    auto runs = runSuites(suite, {{baselineCfg(), "baseline"},
                                  {nhaCfg(), "nha"},
                                  {fsHptCfg(), "fs-hpt"},
                                  {swNoInTlbCfg(), "sw-no-intlb"},
                                  {swCfg(), "softwalker"},
                                  {hybridCfg(), "hybrid"},
                                  {idealCfg(), "ideal"}});
    auto &base = runs[0];
    auto &nha = runs[1];
    auto &hpt = runs[2];
    auto &sw_no = runs[3];
    auto &sw_full = runs[4];
    auto &hybrid = runs[5];
    auto &ideal = runs[6];

    TextTable table({"bench", "type", "NHA", "FS-HPT", "SW w/o In-TLB",
                     "SoftWalker", "SW Hybrid", "Ideal"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      suite[i]->irregular ? "irr" : "reg",
                      TextTable::num(speedup(base[i], nha[i])),
                      TextTable::num(speedup(base[i], hpt[i])),
                      TextTable::num(speedup(base[i], sw_no[i])),
                      TextTable::num(speedup(base[i], sw_full[i])),
                      TextTable::num(speedup(base[i], hybrid[i])),
                      TextTable::num(speedup(base[i], ideal[i]))});
    }
    std::printf("%s\n", table.str().c_str());

    auto split = [&](bool irregular) {
        std::vector<RunResult> b, n, h, s0, s1, hy, id;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (suite[i]->irregular != irregular)
                continue;
            b.push_back(base[i]);
            n.push_back(nha[i]);
            h.push_back(hpt[i]);
            s0.push_back(sw_no[i]);
            s1.push_back(sw_full[i]);
            hy.push_back(hybrid[i]);
            id.push_back(ideal[i]);
        }
        std::printf("%s geomean: NHA %.2fx  FS-HPT %.2fx  SW w/o In-TLB "
                    "%.2fx  SoftWalker %.2fx  Hybrid %.2fx  Ideal %.2fx\n",
                    irregular ? "irregular" : "regular  ",
                    geomeanSpeedup(b, n), geomeanSpeedup(b, h),
                    geomeanSpeedup(b, s0), geomeanSpeedup(b, s1),
                    geomeanSpeedup(b, hy), geomeanSpeedup(b, id));
    };
    split(true);
    split(false);

    std::printf("overall   geomean: NHA %.2fx  FS-HPT %.2fx  SW w/o In-TLB "
                "%.2fx  SoftWalker %.2fx  Hybrid %.2fx  Ideal %.2fx\n",
                geomeanSpeedup(base, nha), geomeanSpeedup(base, hpt),
                geomeanSpeedup(base, sw_no), geomeanSpeedup(base, sw_full),
                geomeanSpeedup(base, hybrid), geomeanSpeedup(base, ideal));
    std::printf("\npaper: NHA 1.22x, FS-HPT 1.13x, SW w/o In-TLB 1.63x, "
                "SoftWalker 2.24x (3.94x irregular), Ideal 2.58x\n");
    return 0;
}
