/**
 * @file
 * Figure 22 — Sensitivity of SoftWalker to the L2 TLB (communication)
 * latency, 40..200 cycles.
 *
 * Paper: 2.31x at 40 cycles (near the 2.58x ideal) degrading gracefully
 * to 2.07x at 200 cycles.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 22", "L2 TLB access-latency sensitivity");

    const std::vector<Cycle> latencies = {40, 80, 120, 160, 200};
    // Irregular suite: regular apps are latency-insensitive here and
    // dominate the sweep's runtime.
    auto suite = irregularSuite();

    std::vector<SuiteRun> specs;
    for (Cycle lat : latencies) {
        GpuConfig base = baselineCfg();
        base.l2TlbLatency = lat;
        GpuConfig soft = swCfg();
        soft.l2TlbLatency = lat;   // comm latency follows (§6.1)
        specs.push_back({base, strprintf("base@%llu",
                                         (unsigned long long)lat)});
        specs.push_back({soft, strprintf("sw@%llu",
                                         (unsigned long long)lat)});
    }
    auto groups = runSuites(suite, specs);

    TextTable table({"L2 TLB latency", "SoftWalker geomean speedup"});
    for (std::size_t l = 0; l < latencies.size(); ++l) {
        table.addRow({strprintf("%llu", (unsigned long long)latencies[l]),
                      TextTable::num(geomeanSpeedup(groups[2 * l],
                                                    groups[2 * l + 1]))});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper: 40cy 2.31x ... 200cy 2.07x (queueing still "
                "dominates)\n");
    return 0;
}
