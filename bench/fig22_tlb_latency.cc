/**
 * @file
 * Figure 22 — Sensitivity of SoftWalker to the L2 TLB (communication)
 * latency, 40..200 cycles.
 *
 * Paper: 2.31x at 40 cycles (near the 2.58x ideal) degrading gracefully
 * to 2.07x at 200 cycles.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 22", "L2 TLB access-latency sensitivity");

    const std::vector<Cycle> latencies = {40, 80, 120, 160, 200};
    // Irregular suite: regular apps are latency-insensitive here and
    // dominate the sweep's runtime.
    auto suite = irregularSuite();

    TextTable table({"L2 TLB latency", "SoftWalker geomean speedup"});
    for (Cycle lat : latencies) {
        GpuConfig base = baselineCfg();
        base.l2TlbLatency = lat;
        GpuConfig soft = swCfg();
        soft.l2TlbLatency = lat;   // comm latency follows (§6.1)
        auto base_r = runSuite(base, suite,
                               strprintf("base@%llu",
                                         (unsigned long long)lat).c_str());
        auto soft_r = runSuite(soft, suite,
                               strprintf("sw@%llu",
                                         (unsigned long long)lat).c_str());
        table.addRow({strprintf("%llu", (unsigned long long)lat),
                      TextTable::num(geomeanSpeedup(base_r, soft_r))});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper: 40cy 2.31x ... 200cy 2.07x (queueing still "
                "dominates)\n");
    return 0;
}
