/**
 * @file
 * Figure 19 — Reduction of warp-scheduler stall cycles under SoftWalker.
 *
 * Paper: SoftWalker removes ~71% of stall cycles for irregular apps by
 * resolving L2 TLB MSHR and PTW contention.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 19", "stall-cycle reduction vs baseline");

    auto suite = wholeSuite();
    auto groups = runSuites(suite, {{baselineCfg(), "baseline"},
                                    {swCfg(), "softwalker"}});
    auto &base = groups[0];
    auto &sw_full = groups[1];

    GpuConfig cfg = baselineCfg();
    TextTable table({"bench", "type", "base stall%", "sw stall%",
                     "stall reduction%"});
    std::vector<double> reductions_irregular;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double base_frac = base[i].stallFraction(cfg.numSms);
        double sw_frac = sw_full[i].stallFraction(cfg.numSms);
        // Stall cycles per unit of work (stall cycles per instruction):
        // comparing fractions alone would ignore that SoftWalker finishes
        // the same work in fewer cycles.
        double base_per_instr = base[i].warpInstrs
            ? double(base[i].memStallCycles) / double(base[i].warpInstrs)
            : 0.0;
        double sw_per_instr = sw_full[i].warpInstrs
            ? double(sw_full[i].memStallCycles) /
              double(sw_full[i].warpInstrs)
            : 0.0;
        double reduction = base_per_instr > 0
            ? 100.0 * (1.0 - sw_per_instr / base_per_instr)
            : 0.0;
        if (suite[i]->irregular)
            reductions_irregular.push_back(reduction);
        table.addRow({suite[i]->abbr,
                      suite[i]->irregular ? "irr" : "reg",
                      TextTable::num(100.0 * base_frac, 1),
                      TextTable::num(100.0 * sw_frac, 1),
                      TextTable::num(reduction, 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("average stall reduction (irregular): %.1f%%\n",
                mean(reductions_irregular));
    std::printf("\npaper: ~71%% stall reduction for irregular apps\n");
    return 0;
}
