/**
 * @file
 * §5.2 — Hardware overhead of SoftWalker: per-SM context bits, In-TLB
 * MSHR pending bits, and the synthesized control-logic area, put in
 * perspective against the GA102 die.
 */

#include "area/cacti_lite.hh"
#include "bench_common.hh"
#include "core/isa.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Section 5.2", "SoftWalker hardware overhead");

    GpuConfig cfg = makeDefaultConfig();
    PwWarpContextBits bits;

    TextTable table({"structure", "cost"});
    table.addRow({"SoftPWB status bitmap (per SM)",
                  strprintf("%u bits (2 b x %u threads)", bits.statusBitmap,
                            cfg.pwWarpThreads)});
    table.addRow({"PW Warp instruction buffer",
                  strprintf("%u bits", bits.instructionBuffer)});
    table.addRow({"PW Warp scoreboard entry",
                  strprintf("%u bits", bits.scoreboardEntry)});
    table.addRow({"PW Warp SIMT stack (8 x 160 b)",
                  strprintf("%u bits", bits.simtStackEntries)});
    table.addRow({"PW Warp context total (per SM)",
                  strprintf("%u bits (paper: 1470)", bits.total())});
    table.addRow({"PW Warp registers",
                  strprintf("%u registers", kPwWarpRegisters)});
    table.addRow({"In-TLB MSHR pending bits",
                  strprintf("%u bits (1 b per L2 TLB entry)",
                            cfg.l2TlbEntries)});
    table.addRow({"In-TLB MSHR control logic",
                  strprintf("%.4f mm^2 (paper, 28 nm synthesis)",
                            kInTlbMshrLogicMm2)});
    double total = softwalkerOverheadMm2(cfg.numSms, cfg.l2TlbEntries);
    table.addRow({"Total modeled area",
                  strprintf("%.4f mm^2 (%.5f%% of the GA102's %.1f mm^2)",
                            total, 100.0 * total / kGa102ChipMm2,
                            kGa102ChipMm2)});
    std::printf("%s\n", table.str().c_str());

    std::printf("for contrast, hardware PTW scaling (CACTI-lite):\n");
    TextTable hw({"config", "area mm^2", "vs 32-PTW baseline"});
    double base = ptwSubsystemArea(32, 64, 1, 128).totalMm2;
    for (std::uint32_t n : {32u, 64u, 128u, 256u, 1024u}) {
        double area = ptwSubsystemArea(n, n * 2, 1, n * 4).totalMm2;
        hw.addRow({strprintf("%u PTWs", n), TextTable::num(area, 3),
                   TextTable::num(area / base, 1)});
    }
    std::printf("%s\n", hw.str().c_str());
    return 0;
}
