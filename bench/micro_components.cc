/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * simulator's hot structures.  These validate that the simulator itself is
 * fast enough to sweep the paper's experiments, not paper results.
 */

#include <benchmark/benchmark.h>

#include "bench_main.hh"

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "vm/page_table.hh"
#include "vm/page_walk_cache.hh"
#include "vm/tlb.hh"

using namespace sw;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(Cycle(i * 7 % 997), [&]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_TlbLookupHit(benchmark::State &state)
{
    TlbArray tlb("bench", 1024, 16);
    for (Vpn vpn = 0; vpn < 1024; ++vpn)
        tlb.fill({0, vpn}, vpn + 1);
    Pfn pfn = 0;
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup({0, vpn}, pfn));
        vpn = (vpn + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupHit);

static void
BM_TlbFillEvict(benchmark::State &state)
{
    TlbArray tlb("bench", 1024, 16);
    Vpn vpn = 0;
    for (auto _ : state) {
        tlb.fill({0, vpn}, vpn);
        vpn += 64;   // always a new set conflict eventually
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbFillEvict);

static void
BM_RadixWalkFunctional(benchmark::State &state)
{
    PageGeometry geom(64 * 1024);
    FrameAllocator alloc(64 * 1024);
    RadixPageTable pt(geom, alloc);
    Rng rng(1);
    std::vector<Vpn> vpns;
    for (int i = 0; i < 4096; ++i) {
        Vpn vpn = rng.range(1ull << 30);
        pt.ensureMapped(vpn);
        vpns.push_back(vpn);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        WalkCursor cur = pt.startWalk(vpns[i % vpns.size()]);
        while (!cur.done)
            pt.advance(cur);
        benchmark::DoNotOptimize(cur.pfn);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadixWalkFunctional);

static void
BM_PwcLookup(benchmark::State &state)
{
    PageGeometry geom(64 * 1024);
    FrameAllocator alloc(64 * 1024);
    RadixPageTable pt(geom, alloc);
    PageWalkCache pwc(32);
    for (Vpn vpn = 0; vpn < 32; ++vpn)
        pwc.fill(pt, 1, {0, vpn << 10}, vpn * 0x1000);
    int level = 0;
    PhysAddr base = 0;
    Vpn vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pwc.lookup(pt, {0, (vpn << 10) + 1}, level, base));
        vpn = (vpn + 1) % 32;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PwcLookup);

static void
BM_CacheAccessHit(benchmark::State &state)
{
    EventQueue eq;
    Cache::Params params;
    params.sizeBytes = 128 * 1024;
    params.latency = 1;
    Cache cache(eq, params,
                [&eq](PhysAddr, bool, std::function<void()> fill) {
                    eq.scheduleIn(1, std::move(fill));
                });
    // Warm one sector.
    cache.access(0, false, []() {});
    eq.run();
    for (auto _ : state) {
        cache.access(0, false, []() {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

static void
BM_RngRange(benchmark::State &state)
{
    Rng rng(9);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.range(1000003));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngRange);

SW_BENCHMARK_MAIN_WITH_MANIFEST();
