/**
 * @file
 * Figure 7 — Breakdown of page-table walk latency (queueing vs access)
 * as the number of PTWs grows.
 *
 * Paper claim (§3.2): with 32 PTWs, queueing delay is ~95% of the total
 * walk latency for irregular applications.
 *
 * The phase attribution comes from the translation lifecycle tracer
 * (src/obs): queue = WalkCreated -> walker pickup, access = pickup ->
 * WalkFill, stamped per walk rather than read from coarse engine
 * aggregates, so the breakdown is exact even when walks overlap.
 */

#include "bench_common.hh"
#include "obs/trace.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 7", "walk-latency breakdown vs number of PTWs");

    const std::vector<std::uint32_t> ptws = {32, 128, 512};
    auto suite = irregularSuite();

    TextTable table({"bench", "PTWs", "queue(cy)", "access(cy)",
                     "total(cy)", "queue%", "PT reads/walk"});
    std::vector<double> queue_shares_at_32;
    for (const BenchmarkInfo *info : suite) {
        for (std::uint32_t n : ptws) {
            GpuConfig cfg = baselineCfg();
            scalePtwSubsystem(cfg, n);
            std::fprintf(stderr, "  [%u ptws] %s...\n", n,
                         info->abbr.c_str());

            TranslationTracer tracer;
            Observability obs;
            obs.tracer = &tracer;
            runBenchmark(cfg, *info, limitsFor(*info), 1.0, obs);

            double queue = tracer.queuePhase().mean();
            double access = tracer.walkPhase().mean();
            double total = tracer.totalPhase().mean();
            double share = total > 0 ? queue / total : 0.0;
            if (n == 32)
                queue_shares_at_32.push_back(share);
            table.addRow({info->abbr, strprintf("%u", n),
                          TextTable::num(queue, 0),
                          TextTable::num(access, 0),
                          TextTable::num(total, 0),
                          TextTable::num(100.0 * share, 1),
                          TextTable::num(tracer.ptReadsPerWalk().mean(),
                                         2)});
        }
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("average queue share at 32 PTWs: %.1f%%\n",
                100.0 * mean(queue_shares_at_32));
    std::printf("\npaper: queueing delay is ~95%% of walk latency for "
                "irregular apps at 32 PTWs\n");
    return 0;
}
