/**
 * @file
 * Figure 7 — Breakdown of page-table walk latency (queueing vs access)
 * as the number of PTWs grows.
 *
 * Paper claim (§3.2): with 32 PTWs, queueing delay is ~95% of the total
 * walk latency for irregular applications.
 *
 * The phase attribution comes from the translation lifecycle tracer
 * (src/obs): queue = WalkCreated -> walker pickup, access = pickup ->
 * WalkFill, stamped per walk rather than read from coarse engine
 * aggregates, so the breakdown is exact even when walks overlap.
 */

#include "bench_common.hh"
#include "obs/trace.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 7", "walk-latency breakdown vs number of PTWs");

    const std::vector<std::uint32_t> ptws = {32, 128, 512};
    auto suite = irregularSuite();

    // Each job owns its tracer (observability bundles are single-run
    // instruments) and deposits the phase means into its own slot, so any
    // number of jobs may run concurrently.
    struct Phases
    {
        double queue = 0.0;
        double access = 0.0;
        double total = 0.0;
        double ptReads = 0.0;
    };
    std::vector<Phases> phases(suite.size() * ptws.size());

    SweepRunner runner;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const BenchmarkInfo *info = suite[i];
        for (std::size_t p = 0; p < ptws.size(); ++p) {
            std::uint32_t n = ptws[p];
            GpuConfig cfg = baselineCfg();
            scalePtwSubsystem(cfg, n);
            std::size_t slot = i * ptws.size() + p;
            runner.submit(
                strprintf("  [%u ptws] %s...", n, info->abbr.c_str()),
                [cfg, info, slot, &phases]() {
                    TranslationTracer tracer;
                    Observability obs;
                    obs.tracer = &tracer;
                    RunSpec spec;
                    spec.cfg = cfg;
                    spec.benchmark = info;
                    spec.limits = limitsFor(*info);
                    spec.obs = &obs;
                    RunResult result = run(std::move(spec));
                    phases[slot] = {tracer.queuePhase().mean(),
                                    tracer.walkPhase().mean(),
                                    tracer.totalPhase().mean(),
                                    tracer.ptReadsPerWalk().mean()};
                    return result;
                });
        }
    }
    runner.run();

    TextTable table({"bench", "PTWs", "queue(cy)", "access(cy)",
                     "total(cy)", "queue%", "PT reads/walk"});
    std::vector<double> queue_shares_at_32;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        for (std::size_t p = 0; p < ptws.size(); ++p) {
            const Phases &ph = phases[i * ptws.size() + p];
            double share = ph.total > 0 ? ph.queue / ph.total : 0.0;
            if (ptws[p] == 32)
                queue_shares_at_32.push_back(share);
            table.addRow({suite[i]->abbr, strprintf("%u", ptws[p]),
                          TextTable::num(ph.queue, 0),
                          TextTable::num(ph.access, 0),
                          TextTable::num(ph.total, 0),
                          TextTable::num(100.0 * share, 1),
                          TextTable::num(ph.ptReads, 2)});
        }
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("average queue share at 32 PTWs: %.1f%%\n",
                100.0 * mean(queue_shares_at_32));
    std::printf("\npaper: queueing delay is ~95%% of walk latency for "
                "irregular apps at 32 PTWs\n");
    return 0;
}
