/**
 * @file
 * End-to-end simulation micro-benchmarks (google-benchmark): simulated
 * warp instructions per wall-clock second for each translation mode on a
 * small machine.  Guards against performance regressions that would make
 * the figure sweeps impractical.
 */

#include <benchmark/benchmark.h>

#include "bench_main.hh"

#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "sim/config.hh"
#include "workload/generators.hh"

using namespace sw;

namespace {

GpuConfig
smallCfg(TranslationMode mode)
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.numSms = 8;
    cfg.maxWarpsPerSm = 16;
    if (mode == TranslationMode::SoftWalker ||
        mode == TranslationMode::Hybrid) {
        cfg = makeSoftWalkerConfig(mode);
        cfg.numSms = 8;
        cfg.maxWarpsPerSm = 16;
    } else {
        cfg.mode = mode;
    }
    return cfg;
}

std::unique_ptr<Workload>
workload()
{
    GraphWorkload::Params params;
    params.gatherFraction = 0.5;
    params.pagesPerInstr = 0.7;
    return std::make_unique<GraphWorkload>("bench", 512ull << 20, true, 20,
                                           params);
}

void
runMode(benchmark::State &state, TranslationMode mode)
{
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Gpu gpu(smallCfg(mode), workload());
        installWalkBackend(gpu);
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 1500;
        limits.maxCycles = 4000000;
        gpu.run(limits);
        instrs += gpu.instructionsIssued();
    }
    state.SetItemsProcessed(std::int64_t(instrs));
    state.SetLabel("simulated warp instructions");
}

} // namespace

static void
BM_SimulateBaseline(benchmark::State &state)
{
    runMode(state, TranslationMode::HardwarePtw);
}
BENCHMARK(BM_SimulateBaseline)->Unit(benchmark::kMillisecond);

static void
BM_SimulateSoftWalker(benchmark::State &state)
{
    runMode(state, TranslationMode::SoftWalker);
}
BENCHMARK(BM_SimulateSoftWalker)->Unit(benchmark::kMillisecond);

static void
BM_SimulateHybrid(benchmark::State &state)
{
    runMode(state, TranslationMode::Hybrid);
}
BENCHMARK(BM_SimulateHybrid)->Unit(benchmark::kMillisecond);

static void
BM_SimulateIdeal(benchmark::State &state)
{
    runMode(state, TranslationMode::Ideal);
}
BENCHMARK(BM_SimulateIdeal)->Unit(benchmark::kMillisecond);

SW_BENCHMARK_MAIN_WITH_MANIFEST();
