/**
 * @file
 * Table 3 — Experimental setup.  Prints the default simulated-machine
 * configuration so runs are self-documenting.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Table 3", "experimental setup (simulated machine)");

    GpuConfig cfg = makeDefaultConfig();
    TextTable table({"component", "parameter"});
    table.addRow({"# of SMs", strprintf("%u SMs", cfg.numSms)});
    table.addRow({"Clock frequency", strprintf("%.0f MHz",
                                               cfg.clockGhz * 1000)});
    table.addRow({"Max warps", strprintf("%u warps per SM",
                                         cfg.maxWarpsPerSm)});
    table.addRow({"L1 TLB (per SM)",
                  strprintf("%u entries, %llu KB page, %llu cycles, "
                            "fully-assoc, %u MSHRs, %u merges",
                            cfg.l1TlbEntries,
                            (unsigned long long)(cfg.pageBytes / 1024),
                            (unsigned long long)cfg.l1TlbLatency,
                            cfg.l1TlbMshrs, cfg.l1TlbMergesPerMshr)});
    table.addRow({"L2 TLB (shared)",
                  strprintf("%u entries, %llu cycles, %u-way, %u MSHRs, "
                            "%u merges",
                            cfg.l2TlbEntries,
                            (unsigned long long)cfg.l2TlbLatency,
                            cfg.l2TlbWays, cfg.l2TlbMshrs,
                            cfg.l2TlbMergesPerMshr)});
    table.addRow({"L1D cache",
                  strprintf("%llu KB per SM, %llu cycles, %u B line "
                            "(%u B sector)",
                            (unsigned long long)(cfg.l1dBytes / 1024),
                            (unsigned long long)cfg.l1dLatency,
                            cfg.lineBytes, cfg.sectorBytes)});
    table.addRow({"L2D cache",
                  strprintf("%llu MB, %llu cycles",
                            (unsigned long long)(cfg.l2dBytes >> 20),
                            (unsigned long long)cfg.l2dLatency)});
    table.addRow({"Memory",
                  strprintf("GDDR6, %u channels, ~448 GB/s aggregate",
                            cfg.dramChannels)});
    table.addRow({"Page table", strprintf("%u-level radix",
                                          cfg.pageTableLevels())});
    table.addRow({"Page walk cache", strprintf("%u entries, fully-assoc",
                                               cfg.pwcEntries)});
    table.addRow({"Page table walkers", strprintf("%u walkers",
                                                  cfg.numPtws)});
    GpuConfig sw = makeSoftWalkerConfig();
    table.addRow({"SoftWalker",
                  strprintf("%u PW threads/SM, %u SoftPWB entries/SM, "
                            "up to %u In-TLB MSHRs",
                            sw.pwWarpThreads, sw.softPwbEntries,
                            sw.inTlbMshrMax)});
    std::printf("%s\n", table.str().c_str());
    return 0;
}
