/**
 * @file
 * Figure 20 — L2 data-cache miss rate, baseline vs SoftWalker.
 *
 * Paper claim: the extra page-walk traffic does not change the L2 miss
 * rate; the baseline leaves the memory system underutilised (~6.7% of
 * bandwidth for irregular apps).
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 20", "L2 data-cache miss rate");

    auto suite = wholeSuite();
    auto groups = runSuites(suite, {{baselineCfg(), "baseline"},
                                    {swCfg(), "softwalker"}});
    auto &base = groups[0];
    auto &sw_full = groups[1];

    TextTable table({"bench", "type", "base miss%", "sw miss%",
                     "base dram util%", "sw dram util%"});
    std::vector<double> base_util;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (suite[i]->irregular)
            base_util.push_back(base[i].dramUtilisation);
        table.addRow({suite[i]->abbr,
                      suite[i]->irregular ? "irr" : "reg",
                      TextTable::num(100.0 * base[i].l2dMissRate, 1),
                      TextTable::num(100.0 * sw_full[i].l2dMissRate, 1),
                      TextTable::num(100.0 * base[i].dramUtilisation, 1),
                      TextTable::num(100.0 * sw_full[i].dramUtilisation,
                                     1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("baseline irregular DRAM utilisation: %.1f%% (paper: "
                "~6.7%% of bandwidth)\n", 100.0 * mean(base_util));
    std::printf("\npaper: L2 miss rate unchanged by SoftWalker's added "
                "walk traffic\n");
    return 0;
}
