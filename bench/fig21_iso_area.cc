/**
 * @file
 * Figure 21 — SoftWalker vs an iso-area hardware baseline (128 PTWs),
 * each with and without the In-TLB MSHR.
 *
 * Paper: SoftWalker beats the 128-PTW configuration by ~18.5% on irregular
 * workloads, and In-TLB MSHR alone (without matching walker throughput)
 * does not help — it can even hurt (gc, xsb, bfs, sy2k) by polluting the
 * L2 TLB with long-lived pending entries.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 21", "iso-area comparison: SoftWalker vs 128 PTWs");

    auto suite = irregularSuite();

    GpuConfig base_intlb = baselineCfg();
    base_intlb.inTlbMshrMax = 1024;

    GpuConfig hw128 = baselineCfg();
    scalePtwSubsystem(hw128, 128);

    GpuConfig hw128_intlb = hw128;
    hw128_intlb.inTlbMshrMax = 1024;

    auto groups = runSuites(suite, {{baselineCfg(), "32-ptw"},
                                    {base_intlb, "32-ptw+intlb"},
                                    {hw128, "128-ptw"},
                                    {hw128_intlb, "128-ptw+intlb"},
                                    {swNoInTlbCfg(), "sw-no-intlb"},
                                    {swCfg(), "softwalker"}});
    auto &base = groups[0];
    auto &base_intlb_r = groups[1];
    auto &hw128_r = groups[2];
    auto &hw128_intlb_r = groups[3];
    auto &sw_no = groups[4];
    auto &sw_full = groups[5];

    TextTable table({"bench", "32+InTLB", "128 PTWs", "128+InTLB",
                     "SW w/o InTLB", "SoftWalker"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      TextTable::num(speedup(base[i], base_intlb_r[i])),
                      TextTable::num(speedup(base[i], hw128_r[i])),
                      TextTable::num(speedup(base[i], hw128_intlb_r[i])),
                      TextTable::num(speedup(base[i], sw_no[i])),
                      TextTable::num(speedup(base[i], sw_full[i]))});
    }
    std::printf("%s\n", table.str().c_str());
    double g128 = geomeanSpeedup(base, hw128_r);
    double gsw = geomeanSpeedup(base, sw_full);
    std::printf("geomean: 32+InTLB %.2fx  128 PTWs %.2fx  128+InTLB %.2fx  "
                "SW w/o InTLB %.2fx  SoftWalker %.2fx\n",
                geomeanSpeedup(base, base_intlb_r), g128,
                geomeanSpeedup(base, hw128_intlb_r),
                geomeanSpeedup(base, sw_no), gsw);
    std::printf("SoftWalker over iso-area 128 PTWs: %+.1f%%\n",
                100.0 * (gsw / g128 - 1.0));
    std::printf("\npaper: SoftWalker ~18.5%% over 128 PTWs; In-TLB MSHR "
                "alone does not help\n");
    return 0;
}
