/**
 * @file
 * Figure 8 — Warp-scheduler cycle breakdown (issued / memory+scoreboard
 * stall / other).
 *
 * The paper profiles an A2000; here the same breakdown comes from the
 * simulator's per-SM accounting.  Claim: irregular apps spend ~90% of
 * scheduler cycles unable to issue, dominated by memory stalls.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 8", "warp-scheduler cycle breakdown (baseline)");

    auto suite = wholeSuite();
    auto runs = runSuite(baselineCfg(), suite, "baseline");
    GpuConfig cfg = baselineCfg();

    TextTable table({"bench", "type", "issued%", "mem stall%", "other%"});
    std::vector<double> irregular_stall;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const RunResult &r = runs[i];
        double total = double(r.cycles) * double(cfg.numSms);
        double issued = total > 0
            ? std::min(1.0, double(r.issueSlotCycles + r.computeCycles +
                                   r.pwIssueCycles) / total)
            : 0.0;
        double stall = r.stallFraction(cfg.numSms);
        stall = std::min(stall, 1.0 - issued);
        double other = std::max(0.0, 1.0 - issued - stall);
        if (suite[i]->irregular)
            irregular_stall.push_back(stall + other);
        table.addRow({suite[i]->abbr,
                      suite[i]->irregular ? "irr" : "reg",
                      TextTable::num(100.0 * issued, 1),
                      TextTable::num(100.0 * stall, 1),
                      TextTable::num(100.0 * other, 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("irregular average non-issue share: %.1f%%\n",
                100.0 * mean(irregular_stall));
    std::printf("\npaper: ~90%% of scheduler cycles are memory/scoreboard "
                "stalls for irregular apps\n");
    return 0;
}
