/**
 * @file
 * Figure 4 — Average memory access latency as the number of concurrent
 * page walks grows (the paper's NVIDIA A2000 microbenchmark: one active
 * thread per warp, each chasing distinct cache lines and pages).
 *
 * Paper: latency grows ~4x from 1 to 256 concurrent walks, demonstrating
 * real page-walk contention.
 */

#include "bench_common.hh"
#include "workload/generators.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 4", "memory latency vs concurrent page walks");

    const std::vector<std::uint64_t> concurrency = {1, 8, 32, 64, 128, 256};
    std::vector<double> latency(concurrency.size(), 0.0);

    SweepRunner runner;
    for (std::size_t c = 0; c < concurrency.size(); ++c) {
        std::uint64_t n = concurrency[c];
        runner.submit(
            strprintf("  [%llu walkers]...", (unsigned long long)n),
            [n, c, &latency]() {
                Gpu gpu(baselineCfg(),
                        std::make_unique<PointerChaseWorkload>(2ull << 30));
                Gpu::RunLimits limits;
                limits.warpInstrQuota = 220 * n; // comparable run lengths
                limits.maxActiveWarps = n;
                limits.maxCycles = 6000000;
                gpu.run(limits);
                latency[c] = gpu.aggregateSmStats().accessLatency.mean();
                return collectResult(gpu, "ptr-chase");
            });
    }
    runner.run();

    TextTable table({"concurrent walks", "avg access latency (cy)",
                     "vs 1 walk"});
    double single = latency.front();
    for (std::size_t c = 0; c < concurrency.size(); ++c) {
        table.addRow({strprintf("%llu",
                                (unsigned long long)concurrency[c]),
                      TextTable::num(latency[c], 0),
                      TextTable::num(single > 0 ? latency[c] / single
                                                : 1.0)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper: ~4x latency growth at 256 concurrent walks "
                "(A2000 hardware)\n");
    return 0;
}
