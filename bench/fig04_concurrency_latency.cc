/**
 * @file
 * Figure 4 — Average memory access latency as the number of concurrent
 * page walks grows (the paper's NVIDIA A2000 microbenchmark: one active
 * thread per warp, each chasing distinct cache lines and pages).
 *
 * Paper: latency grows ~4x from 1 to 256 concurrent walks, demonstrating
 * real page-walk contention.
 */

#include "bench_common.hh"
#include "workload/generators.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 4", "memory latency vs concurrent page walks");

    const std::vector<std::uint64_t> concurrency = {1, 8, 32, 64, 128, 256};
    TextTable table({"concurrent walks", "avg access latency (cy)",
                     "vs 1 walk"});
    double single = 0.0;
    for (std::uint64_t n : concurrency) {
        Gpu gpu(baselineCfg(),
                std::make_unique<PointerChaseWorkload>(2ull << 30));
        Gpu::RunLimits limits;
        limits.warpInstrQuota = 220 * n;   // keep run lengths comparable
        limits.maxActiveWarps = n;
        limits.maxCycles = 6000000;
        std::fprintf(stderr, "  [%llu walkers]...\n",
                     (unsigned long long)n);
        gpu.run(limits);
        double latency = gpu.aggregateSmStats().accessLatency.mean();
        if (n == 1)
            single = latency;
        table.addRow({strprintf("%llu", (unsigned long long)n),
                      TextTable::num(latency, 0),
                      TextTable::num(single > 0 ? latency / single : 1.0)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper: ~4x latency growth at 256 concurrent walks "
                "(A2000 hardware)\n");
    return 0;
}
