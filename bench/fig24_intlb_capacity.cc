/**
 * @file
 * Figure 24 — Impact of the maximum number of In-TLB MSHR entries.
 *
 * Paper: speedups of 1.63x / 1.88x / 2.04x / 2.12x / 2.24x for capacities
 * 0 / 128 / 256 / 512 / 1024.  sy2k regresses at large capacities (TLB
 * pollution); spmv stops improving past 128 (per-set saturation).
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 24", "In-TLB MSHR capacity sweep");

    const std::vector<std::uint32_t> capacities = {0, 128, 256, 512, 1024};
    auto suite = wholeSuite();
    std::vector<SuiteRun> specs = {{baselineCfg(), "baseline"}};
    for (std::uint32_t cap : capacities) {
        specs.push_back({makeSoftWalkerConfig(TranslationMode::SoftWalker,
                                              cap),
                         strprintf("in-tlb %u", cap)});
    }
    auto groups = runSuites(suite, specs);
    auto &base = groups.front();
    std::vector<std::vector<RunResult>> runs(groups.begin() + 1,
                                             groups.end());

    std::vector<std::string> header = {"bench", "type"};
    for (std::uint32_t cap : capacities)
        header.push_back(strprintf("%u", cap));
    TextTable table(header);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::vector<std::string> row = {suite[i]->abbr,
                                        suite[i]->irregular ? "irr" : "reg"};
        for (std::size_t c = 0; c < capacities.size(); ++c)
            row.push_back(TextTable::num(speedup(base[i], runs[c][i])));
        table.addRow(row);
    }
    std::printf("%s\n", table.str().c_str());

    std::printf("overall geomean by capacity:");
    for (std::size_t c = 0; c < capacities.size(); ++c)
        std::printf("  %u: %.2fx", capacities[c],
                    geomeanSpeedup(base, runs[c]));
    std::printf("\n\npaper: 0:1.63x  128:1.88x  256:2.04x  512:2.12x  "
                "1024:2.24x\n");
    return 0;
}
