/**
 * @file
 * Figure 3 — Page-granularity access patterns of two irregular apps
 * (nw, bfs) and one regular app (2dc).
 *
 * The paper scatter-plots (cycle, page index) samples from real-GPU
 * profiles; this harness dumps the same series from the simulator to
 * fig03_<bench>.csv and prints summary dispersion statistics: irregular
 * apps touch a wide page range within short windows, the regular app
 * streams contiguously.
 */

#include <algorithm>
#include <fstream>
#include <set>

#include "bench_common.hh"
#include "core/softwalker.hh"

using namespace swbench;

namespace {

struct Sample
{
    Cycle cycle;
    std::uint64_t page;
};

void
trace(const char *abbr)
{
    const BenchmarkInfo &info = findBenchmark(abbr);
    Gpu gpu(baselineCfg(), makeWorkload(info));

    std::vector<Sample> samples;
    constexpr std::uint64_t kPage = 64 * 1024;
    gpu.setTraceHook([&](SmId, WarpId, Cycle cycle,
                         const WarpInstr &instr) {
        for (std::uint32_t lane = 0; lane < instr.activeLanes; ++lane)
            samples.push_back({cycle, instr.addrs[lane] / kPage});
    });

    Gpu::RunLimits limits;
    limits.warpInstrQuota = 3000;
    limits.maxCycles = 2000000;
    gpu.run(limits);

    std::string path = strprintf("fig03_%s.csv", abbr);
    std::ofstream out(path);
    out << "cycle,page_index\n";
    for (const Sample &sample : samples)
        out << sample.cycle << ',' << sample.page << '\n';

    // Dispersion: distinct pages per 1000-cycle window.
    std::uint64_t min_page = ~0ull, max_page = 0;
    std::set<std::uint64_t> pages;
    std::vector<double> window_spread;
    Cycle window_start = 0;
    std::set<std::uint64_t> window_pages;
    for (const Sample &sample : samples) {
        pages.insert(sample.page);
        min_page = std::min(min_page, sample.page);
        max_page = std::max(max_page, sample.page);
        if (sample.cycle - window_start > 1000) {
            window_spread.push_back(double(window_pages.size()));
            window_pages.clear();
            window_start = sample.cycle;
        }
        window_pages.insert(sample.page);
    }

    std::printf("%-5s %-4s samples=%-8zu distinct pages=%-6zu page span="
                "%-8llu avg pages / 1k-cycle window=%.1f  -> %s\n",
                abbr, info.irregular ? "irr" : "reg", samples.size(),
                pages.size(),
                (unsigned long long)(max_page - min_page),
                mean(window_spread), path.c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 3", "page-granularity access-pattern traces");
    trace("nw");
    trace("bfs");
    trace("2dc");
    std::printf("\npaper: nw/bfs scatter across a wide page range in short "
                "windows; 2dc streams contiguously\n");
    return 0;
}
