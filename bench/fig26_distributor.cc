/**
 * @file
 * Figure 26 — Request Distributor policy comparison: round-robin (the
 * default), random, and stall-aware.
 *
 * Paper: no significant differences — irregular apps have so many stalled
 * SMs that any policy finds idle execution resources.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 26", "Request Distributor policies");

    auto suite = irregularSuite();

    const DistributorPolicy policies[] = {DistributorPolicy::RoundRobin,
                                          DistributorPolicy::Random,
                                          DistributorPolicy::StallAware};
    std::vector<SuiteRun> specs = {{baselineCfg(), "baseline"}};
    for (DistributorPolicy policy : policies) {
        GpuConfig cfg = swCfg();
        cfg.distributorPolicy = policy;
        specs.push_back({cfg, toString(policy)});
    }
    auto groups = runSuites(suite, specs);
    auto &base = groups.front();
    std::vector<std::vector<RunResult>> runs(groups.begin() + 1,
                                             groups.end());

    TextTable table({"bench", "round-robin", "random", "stall-aware"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      TextTable::num(speedup(base[i], runs[0][i])),
                      TextTable::num(speedup(base[i], runs[1][i])),
                      TextTable::num(speedup(base[i], runs[2][i]))});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("geomean: round-robin %.2fx  random %.2fx  stall-aware "
                "%.2fx\n",
                geomeanSpeedup(base, runs[0]), geomeanSpeedup(base, runs[1]),
                geomeanSpeedup(base, runs[2]));
    std::printf("\npaper: no significant difference; round-robin chosen "
                "for simplicity\n");
    return 0;
}
