/**
 * @file
 * Sweep smoke test + wall-clock benchmark: runs a small multi-config,
 * multi-benchmark sweep twice — once serial (jobs=1), once with the full
 * worker pool (SW_JOBS or hardware_concurrency) — asserts every RunResult
 * field is identical between the two, and writes the timings to
 * BENCH_sweep.json (or argv[1]).
 *
 * Exit status is non-zero when the parallel sweep diverges from the
 * serial one, so CI can gate on determinism as well as collect timings.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "prof/run_manifest.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

/** Flattens every RunResult field into one exact string (%a for doubles). */
class FieldPrinter : public RunResultFieldVisitor
{
  public:
    std::string text;

    void
    str(const char *name, const std::string &value) override
    {
        text += strprintf("%s=%s\n", name, value.c_str());
    }

    void
    u64(const char *name, std::uint64_t value) override
    {
        text += strprintf("%s=%llu\n", name, (unsigned long long)value);
    }

    void
    f64(const char *name, double value) override
    {
        text += strprintf("%s=%a\n", name, value);
    }
};

std::string
fingerprint(const std::vector<RunResult> &results)
{
    FieldPrinter printer;
    for (const RunResult &result : results)
        visitFields(result, printer);
    return printer.text;
}

void
submitAll(SweepRunner &runner, std::vector<std::string> &names)
{
    // Two configs x the irregular suite with short quotas: enough work to
    // keep several workers busy, small enough for a CI smoke step.
    const std::vector<GpuConfig> cfgs = {makeDefaultConfig(),
                                         makeSoftWalkerConfig()};
    names.clear();
    for (const GpuConfig &cfg : cfgs) {
        for (const BenchmarkInfo *info : irregularSuite()) {
            SweepJob job;
            job.cfg = cfg;
            job.info = info;
            job.limits = limitsFor(*info);
            job.limits.warpInstrQuota = 1500;
            job.limits.warmupInstrs = 300;
            names.push_back(strprintf("%s.%s", toString(cfg.mode),
                                      info->abbr.c_str()));
            runner.submit(std::move(job));
        }
    }
}

double
timedRun(SweepRunner &runner, std::vector<RunResult> &out)
{
    auto begin = std::chrono::steady_clock::now();
    out = runner.run();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - begin).count();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const char *out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

    unsigned pool = SweepRunner::defaultJobs();

    std::vector<std::string> names;
    SweepRunner serial(1);
    submitAll(serial, names);
    std::vector<RunResult> ser;
    double jobs1_ms = timedRun(serial, ser);
    std::vector<double> ser_job_ms = serial.lastJobMillis();

    SweepRunner parallel(pool);
    submitAll(parallel, names);
    // What the pool will actually use once clamped by core count and job
    // count — on a one-core host this is 1 and the run is inline-serial.
    unsigned workers = parallel.effectiveWorkers(parallel.submitted());
    std::vector<RunResult> par;
    double jobsn_ms = timedRun(parallel, par);
    std::vector<double> par_job_ms = parallel.lastJobMillis();

    bool identical = fingerprint(ser) == fingerprint(par);
    double speedup = jobsn_ms > 0 ? jobs1_ms / jobsn_ms : 0.0;

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 2;
    }
    RunManifest manifest = RunManifest::collect();
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"softwalker.bench_sweep/1\",\n"
                 "  \"manifest\": %s,\n"
                 "  \"sweep_jobs\": %zu,\n"
                 "  \"workers_jobs1\": 1,\n"
                 "  \"workers_jobsN\": %u,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"jobs1_ms\": %.1f,\n"
                 "  \"jobsN_ms\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"results_identical\": %s,\n"
                 "  \"per_job\": [\n",
                 manifest.toJson(2).c_str(), ser.size(), workers,
                 std::thread::hardware_concurrency(), jobs1_ms, jobsn_ms,
                 speedup, identical ? "true" : "false");
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"jobs1_ms\": %.1f, "
                     "\"jobsN_ms\": %.1f}%s\n",
                     names[i].c_str(),
                     i < ser_job_ms.size() ? ser_job_ms[i] : 0.0,
                     i < par_job_ms.size() ? par_job_ms[i] : 0.0,
                     i + 1 < names.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);

    std::printf("sweep of %zu jobs: jobs=1 %.1f ms, workers=%u %.1f ms "
                "(%.2fx), results %s -> %s\n",
                ser.size(), jobs1_ms, workers, jobsn_ms, speedup,
                identical ? "identical" : "DIVERGED", out_path);
    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: parallel sweep diverged from serial sweep\n");
        return 1;
    }
    return 0;
}
