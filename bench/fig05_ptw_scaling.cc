/**
 * @file
 * Figure 5 — Impact of increasing hardware PTWs on performance.
 *
 * Speedup vs. PTW count (MSHRs and PWB scaled proportionally, as the paper
 * does), normalised to the 32-PTW baseline, plus the ideal upper bound.
 * The paper's headline: ideal reaches 2.58x average (4.84x irregular);
 * irregular apps need 256-1024 PTWs to saturate, regular apps are happy
 * at 32.  Also prints the "Required # PTWs" column of Table 4 (smallest
 * count reaching 95% of ideal).
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 5", "speedup vs number of hardware PTWs");

    const std::vector<std::uint32_t> ptws = {32, 64, 128, 256, 512, 1024};
    auto suite = wholeSuite();

    std::vector<SuiteRun> specs = {{baselineCfg(), "32-ptw"}};
    for (std::uint32_t n : ptws) {
        if (n == 32)
            continue;
        GpuConfig cfg = baselineCfg();
        scalePtwSubsystem(cfg, n);
        specs.push_back({cfg, strprintf("%u-ptw", n)});
    }
    specs.push_back({idealCfg(), "ideal"});
    auto groups = runSuites(suite, specs);

    auto &base = groups.front();
    auto &ideal = groups.back();
    std::vector<std::vector<RunResult>> scaled;
    scaled.push_back(base);   // ptws[0] == 32 is the baseline itself
    for (std::size_t g = 1; g + 1 < groups.size(); ++g)
        scaled.push_back(groups[g]);

    std::vector<std::string> header = {"bench", "type"};
    for (std::uint32_t n : ptws)
        header.push_back(strprintf("%u", n));
    header.push_back("ideal");
    header.push_back("req#PTW");
    TextTable table(header);

    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::vector<std::string> row = {suite[i]->abbr,
                                        suite[i]->irregular ? "irr" : "reg"};
        double ideal_speedup = speedup(base[i], ideal[i]);
        std::uint32_t required = ptws.back();
        for (std::size_t p = 0; p < ptws.size(); ++p) {
            double s = speedup(base[i], scaled[p][i]);
            row.push_back(TextTable::num(s));
            if (s >= 0.95 * ideal_speedup && required == ptws.back() &&
                ptws[p] < required) {
                required = ptws[p];
            }
        }
        row.push_back(TextTable::num(ideal_speedup));
        row.push_back(strprintf("%u", required));
        table.addRow(row);
    }
    std::printf("%s\n", table.str().c_str());

    // Geomeans per class, as the paper quotes them.
    auto classGeomean = [&](bool irregular, const std::vector<RunResult> &r) {
        std::vector<RunResult> b, o;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (suite[i]->irregular == irregular) {
                b.push_back(base[i]);
                o.push_back(r[i]);
            }
        }
        return geomeanSpeedup(b, o);
    };
    std::printf("ideal geomean: irregular %.2fx  regular %.2fx  overall "
                "%.2fx\n",
                classGeomean(true, ideal), classGeomean(false, ideal),
                geomeanSpeedup(base, ideal));
    std::printf("\npaper: ideal 2.58x average, 4.84x irregular; regular "
                "apps saturate at 32 PTWs\n");
    return 0;
}
