/**
 * @file
 * Shared main() for the google-benchmark micro benches: identical to
 * BENCHMARK_MAIN() except that the RunManifest's build/host facts are
 * registered as custom context first, so every --benchmark_out JSON
 * carries its provenance ("context" keys; tools/swbench excludes them
 * from regression comparison by default).
 */

#ifndef SW_BENCH_BENCH_MAIN_HH
#define SW_BENCH_BENCH_MAIN_HH

#include <string>

#include <benchmark/benchmark.h>

#include "prof/run_manifest.hh"

#define SW_BENCHMARK_MAIN_WITH_MANIFEST()                                   \
    int main(int argc, char **argv)                                         \
    {                                                                       \
        const ::sw::RunManifest swManifest = ::sw::RunManifest::collect();  \
        ::benchmark::AddCustomContext("git_describe",                       \
                                      swManifest.gitDescribe);              \
        ::benchmark::AddCustomContext("compiler", swManifest.compiler);     \
        ::benchmark::AddCustomContext("flags", swManifest.flags);           \
        ::benchmark::AddCustomContext("build_type", swManifest.buildType);  \
        ::benchmark::AddCustomContext("hostname", swManifest.hostname);     \
        ::benchmark::AddCustomContext(                                      \
            "hardware_concurrency",                                         \
            std::to_string(swManifest.hardwareConcurrency));                \
        ::benchmark::AddCustomContext("sw_jobs", swManifest.swJobs);        \
        ::benchmark::AddCustomContext(                                      \
            "hostprof_compiled",                                            \
            swManifest.hostprofCompiled ? "true" : "false");                \
        ::benchmark::AddCustomContext(                                      \
            "audit_compiled",                                               \
            swManifest.auditCompiled ? "true" : "false");                   \
        ::benchmark::Initialize(&argc, argv);                               \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))           \
            return 1;                                                       \
        ::benchmark::RunSpecifiedBenchmarks();                              \
        ::benchmark::Shutdown();                                            \
        return 0;                                                           \
    }                                                                       \
    int main(int, char **)

#endif // SW_BENCH_BENCH_MAIN_HH
