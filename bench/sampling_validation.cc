/**
 * @file
 * Phase-sampling fidelity gate: for the Fig 16 / Fig 19 headline metrics
 * (SoftWalker speedup over hardware walkers, reduction of stall cycles
 * per warp instruction), a phase-sampled run must land within 5% of the
 * full detailed run while simulating at least 10x fewer detailed
 * instructions.  Results go to
 * BENCH_sampling.json (or argv[1]); the exit status enforces the gate so
 * CI fails when the estimator drifts.
 *
 * Method: record each (mode, benchmark) run to a trace, replay it once
 * in full detail (the reference), then phase-sample the same trace
 * (buildSamplingPlan + runSampled) and compare the reconstruction.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "ckpt/sampling.hh"
#include "harness/sampled.hh"
#include "prof/run_manifest.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

constexpr double kTolerance = 0.05;    // ≤5% on every headline metric
constexpr double kMinDetailGain = 10.0;  // ≥10x fewer detailed instrs

// Sampling parameters.  windowInstrs must be much larger than the
// machine's warp count (docs/CHECKPOINTS.md §Phase sampling: a window
// measures steady state only once every warp has refilled its pipeline,
// so windows of a few instructions per warp measure restart/drain
// transients instead).  The validation machine is therefore scaled to 64
// warps — the estimator's fidelity, not the paper's absolute numbers, is
// what this gate holds down.
constexpr std::uint64_t kColdStart = 16000;
constexpr std::uint64_t kWindow = 3200;
constexpr std::uint64_t kWindowWarmup = 3200;
constexpr std::uint32_t kClusters = 5;
constexpr std::uint64_t kRegion = 320000;

struct ModeOutcome
{
    double perfFull = 0.0;
    double perfSampled = 0.0;
    double perfSpread = 0.0;
    double stallFull = 0.0;     ///< mem-stall fraction
    double stallSampled = 0.0;
    /**
     * Stall cycles per warp instruction — the Fig 19 input.  The figure
     * harness (bench/fig19_stall_reduction.cc) reports the reduction of
     * stall cycles *per unit of work*, not the difference of stall
     * fractions: SoftWalker finishes the same instructions in fewer
     * cycles, and fractions alone would hide that.
     */
    double stallPerInstrFull = 0.0;
    double stallPerInstrSampled = 0.0;
    double detailRatio = 0.0;

    double
    perfError() const
    {
        return perfFull ? std::fabs(perfSampled - perfFull) / perfFull : 0.0;
    }

    double
    stallError() const
    {
        return stallFull ? std::fabs(stallSampled - stallFull) / stallFull
                         : 0.0;
    }
};

Gpu::RunLimits
validationLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = kColdStart + kRegion;
    limits.warmupInstrs = 0;
    limits.maxCycles = 4000000000ull;
    return limits;
}

/** Scale a full configuration down to 64 warps, TLBs in proportion. */
GpuConfig
scaledDown(GpuConfig cfg)
{
    cfg.numSms = 8;
    cfg.maxWarpsPerSm = 8;
    cfg.l1TlbEntries = 32;
    cfg.l2TlbEntries = 512;
    cfg.l2TlbWays = 8;
    cfg.numPtws = 8;
    if (cfg.inTlbMshrMax > 0)
        cfg.inTlbMshrMax = 64;
    // The scaled machine is bistable around L2 TLB MSHR saturation: a
    // synchronized miss burst (any segment restart produces one — every
    // warp re-issues on the same cycle) can park the wait queue in a
    // congested regime that a continuous run never enters and never
    // exits.  The validation gate measures *estimator* fidelity — does a
    // sampled run reproduce a full run on the same machine — so the
    // machine must not be bistable; deepen the MSHR file past the burst
    // size and apply the identical config to reference and sampled runs.
    cfg.l2TlbMshrs = 1024;
    return cfg;
}

/**
 * Record, replay in full, and phase-sample one (config, benchmark) pair.
 * @p plan implements paired sampling across modes (see runSampled): the
 * first mode of a benchmark builds the plan from its own trace and
 * leaves it here; later modes sample at the same windows with the same
 * weights, so per-mode estimation errors cancel in the cross-mode
 * fig16/fig19 comparisons instead of adding.
 */
ModeOutcome
validateOne(const GpuConfig &cfg, const BenchmarkInfo &info,
            const char *mode_tag, SamplingPlan &plan)
{
    Gpu::RunLimits limits = validationLimits();
    std::string trace_path = std::string("/tmp/sampling_validation_") +
                             info.abbr + "_" + mode_tag + ".swtrace";

    {
        RunSpec record;
        record.cfg = cfg;
        record.benchmark = &info;
        record.limits = limits;
        record.recordPath = trace_path;
        run(std::move(record));
    }

    // Both sides discard the same cold-start region: the reference run
    // treats it as warmup, the sampler as its skip region.  The compared
    // metrics then cover an identical steady-state instruction range.
    Gpu::RunLimits measured = limits;
    measured.warmupInstrs = kColdStart;
    measured.warpInstrQuota = limits.warpInstrQuota - kColdStart;

    RunSpec full;
    full.cfg = cfg;
    full.replayPath = trace_path;
    full.limits = measured;
    RunResult reference = run(std::move(full));

    RunSpec spec;
    spec.cfg = cfg;
    spec.replayPath = trace_path;
    spec.limits = limits;
    SamplingOptions opts;
    opts.windowInstrs = kWindow;
    opts.numClusters = kClusters;
    opts.windowWarmupInstrs = kWindowWarmup;
    opts.skipInstrs = kColdStart;
    // The synthetic workloads have stationary footprints with a long
    // monotonic TLB-warmth transient, so the histogram features carry no
    // phase signal; a strong temporal weight turns clustering into exact
    // stratified time sampling (equal strata, central representatives),
    // which is the right estimator for a drifting single-phase trace.
    opts.timeFeatureWeight = 4.0;
    // Lloyd's algorithm moves stratum boundaries about one window per
    // iteration from the evenly spaced seeding; give it enough to settle
    // on (near-)equal strata over 80 windows.
    opts.kmeansIters = 64;
    SampledRunResult sampled = plan.windows.empty()
        ? runSampled(std::move(spec), opts)
        : runSampled(std::move(spec), opts, &plan);
    if (plan.windows.empty())
        plan = sampled.plan;

    if (std::getenv("SW_SAMPLING_PROBE")) {
        // Ground truth for each sampled window: a single continuous run
        // measured over exactly that instruction range (no mid-run drain).
        for (const SampleWindow &window : sampled.plan.windows) {
            RunSpec probe;
            probe.cfg = cfg;
            probe.replayPath = trace_path;
            Gpu::RunLimits pl = limits;
            pl.warmupInstrs = window.startInstr;
            pl.warpInstrQuota = window.instrs;
            probe.limits = pl;
            RunResult r = run(std::move(probe));
            std::fprintf(stderr,
                         "  %s/%s probe @%llu: instrs %llu cycles %llu "
                         "perf %.4f stall %.4f walks %llu l1 %llu/%llu "
                         "l2 %llu/%llu mshrfail %llu\n",
                         info.abbr.c_str(), mode_tag,
                         (unsigned long long)window.startInstr,
                         (unsigned long long)r.warpInstrs,
                         (unsigned long long)r.cycles, r.perf,
                         r.stallFraction(cfg.numSms),
                         (unsigned long long)r.walks,
                         (unsigned long long)r.l1TlbHits,
                         (unsigned long long)r.l1TlbMisses,
                         (unsigned long long)r.l2TlbHits,
                         (unsigned long long)r.l2TlbMisses,
                         (unsigned long long)r.l2MshrFailures);
        }
    }

    std::remove(trace_path.c_str());

    if (std::getenv("SW_SAMPLING_DEBUG")) {
        for (std::size_t i = 0; i < sampled.windows.size(); ++i) {
            const RunResult &w = sampled.windows[i];
            std::fprintf(stderr,
                         "  %s/%s window %zu @%llu w=%.3f: instrs %llu "
                         "cycles %llu perf %.4f stall %.4f walks %llu\n",
                         info.abbr.c_str(), mode_tag, i,
                         (unsigned long long)sampled.plan.windows[i].startInstr,
                         sampled.plan.windows[i].weight,
                         (unsigned long long)w.warpInstrs,
                         (unsigned long long)w.cycles, w.perf,
                         w.stallFraction(cfg.numSms),
                         (unsigned long long)w.walks);
            std::fprintf(stderr,
                         "    l1 %llu/%llu l2 %llu/%llu mshrfail %llu\n",
                         (unsigned long long)w.l1TlbHits,
                         (unsigned long long)w.l1TlbMisses,
                         (unsigned long long)w.l2TlbHits,
                         (unsigned long long)w.l2TlbMisses,
                         (unsigned long long)w.l2MshrFailures);
        }
        std::fprintf(stderr, "  %s/%s reference: instrs %llu cycles %llu "
                     "perf %.4f stall %.4f walks %llu\n",
                     info.abbr.c_str(), mode_tag,
                     (unsigned long long)reference.warpInstrs,
                     (unsigned long long)reference.cycles, reference.perf,
                     reference.stallFraction(cfg.numSms),
                     (unsigned long long)reference.walks);
        std::fprintf(stderr,
                     "    l1 %llu/%llu l2 %llu/%llu mshrfail %llu\n",
                     (unsigned long long)reference.l1TlbHits,
                     (unsigned long long)reference.l1TlbMisses,
                     (unsigned long long)reference.l2TlbHits,
                     (unsigned long long)reference.l2TlbMisses,
                     (unsigned long long)reference.l2MshrFailures);
    }

    ModeOutcome out;
    out.perfFull = reference.perf;
    out.perfSampled = sampled.combined.perf;
    out.perfSpread = sampled.metrics.at("perf").spread;
    out.stallFull = reference.stallFraction(cfg.numSms);
    out.stallSampled = sampled.combined.stallFraction(cfg.numSms);
    out.stallPerInstrFull = reference.warpInstrs
        ? double(reference.memStallCycles) / double(reference.warpInstrs)
        : 0.0;
    out.stallPerInstrSampled = sampled.combined.warpInstrs
        ? double(sampled.combined.memStallCycles) /
              double(sampled.combined.warpInstrs)
        : 0.0;
    out.detailRatio = sampled.detailRatio();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const char *out_path = argc > 1 ? argv[1] : "BENCH_sampling.json";

    const std::vector<const BenchmarkInfo *> suite = {
        &findBenchmark("bfs"), &findBenchmark("sssp")};

    bool pass = true;
    std::string rows;
    for (const BenchmarkInfo *info : suite) {
        SamplingPlan plan;   // built by the hw run, shared with sw
        ModeOutcome hw =
            validateOne(scaledDown(swbench::baselineCfg()), *info, "hw",
                        plan);
        ModeOutcome sw_ =
            validateOne(scaledDown(swbench::swCfg()), *info, "sw", plan);

        // Fig 16 headline: SoftWalker speedup over the hardware baseline.
        double speedup_full = hw.perfFull ? sw_.perfFull / hw.perfFull : 0.0;
        double speedup_sampled =
            hw.perfSampled ? sw_.perfSampled / hw.perfSampled : 0.0;
        double speedup_err = speedup_full
            ? std::fabs(speedup_sampled - speedup_full) / speedup_full
            : 0.0;
        // Fig 19 headline: reduction of stall cycles per instruction
        // hw -> sw (the metric fig19_stall_reduction prints).
        double stall_red_full = hw.stallPerInstrFull
            ? 1.0 - sw_.stallPerInstrFull / hw.stallPerInstrFull
            : 0.0;
        double stall_red_sampled = hw.stallPerInstrSampled
            ? 1.0 - sw_.stallPerInstrSampled / hw.stallPerInstrSampled
            : 0.0;
        double stall_red_err = stall_red_full
            ? std::fabs(stall_red_sampled - stall_red_full) /
                  std::fabs(stall_red_full)
            : 0.0;
        double worst_detail = std::max(hw.detailRatio, sw_.detailRatio);

        bool row_pass = hw.perfError() <= kTolerance &&
                        sw_.perfError() <= kTolerance &&
                        speedup_err <= kTolerance &&
                        stall_red_err <= kTolerance &&
                        worst_detail <= 1.0 / kMinDetailGain;
        pass = pass && row_pass;

        rows += strprintf(
            "    {\"bench\": \"%s\",\n"
            "     \"hw\": {\"perf_full\": %.6f, \"perf_sampled\": %.6f, "
            "\"perf_err\": %.4f, \"stall_full\": %.6f, "
            "\"stall_sampled\": %.6f, \"stall_per_instr_full\": %.4f, "
            "\"stall_per_instr_sampled\": %.4f, \"detail_ratio\": %.4f},\n"
            "     \"sw\": {\"perf_full\": %.6f, \"perf_sampled\": %.6f, "
            "\"perf_err\": %.4f, \"stall_full\": %.6f, "
            "\"stall_sampled\": %.6f, \"stall_per_instr_full\": %.4f, "
            "\"stall_per_instr_sampled\": %.4f, \"detail_ratio\": %.4f},\n"
            "     \"fig16_speedup_full\": %.4f, "
            "\"fig16_speedup_sampled\": %.4f, "
            "\"fig16_speedup_err\": %.4f,\n"
            "     \"fig19_stall_reduction_full\": %.6f, "
            "\"fig19_stall_reduction_sampled\": %.6f, "
            "\"fig19_stall_reduction_err\": %.4f,\n"
            "     \"pass\": %s},\n",
            info->abbr.c_str(), hw.perfFull, hw.perfSampled, hw.perfError(),
            hw.stallFull, hw.stallSampled, hw.stallPerInstrFull,
            hw.stallPerInstrSampled, hw.detailRatio, sw_.perfFull,
            sw_.perfSampled, sw_.perfError(), sw_.stallFull,
            sw_.stallSampled, sw_.stallPerInstrFull,
            sw_.stallPerInstrSampled, sw_.detailRatio, speedup_full,
            speedup_sampled, speedup_err, stall_red_full, stall_red_sampled,
            stall_red_err, row_pass ? "true" : "false");

        std::printf("%-6s fig16 %.3f vs %.3f (err %.1f%%)  fig19 %.4f vs "
                    "%.4f (err %.1f%%)  detail %.1fx  %s\n",
                    info->abbr.c_str(), speedup_full, speedup_sampled,
                    100.0 * speedup_err, stall_red_full, stall_red_sampled,
                    100.0 * stall_red_err,
                    worst_detail > 0 ? 1.0 / worst_detail : 0.0,
                    row_pass ? "ok" : "FAIL");
    }
    if (!rows.empty())
        rows.erase(rows.size() - 2, 1);   // drop the trailing comma

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 2;
    }
    RunManifest manifest = RunManifest::collect();
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"softwalker.bench_sampling/1\",\n"
                 "  \"manifest\": %s,\n"
                 "  \"tolerance\": %.2f,\n"
                 "  \"min_detail_gain\": %.1f,\n"
                 "  \"window_instrs\": %llu,\n"
                 "  \"window_warmup\": %llu,\n"
                 "  \"skip_instrs\": %llu,\n"
                 "  \"clusters\": %u,\n"
                 "  \"pass\": %s,\n"
                 "  \"rows\": [\n%s  ]\n}\n",
                 manifest.toJson(2).c_str(), kTolerance, kMinDetailGain,
                 static_cast<unsigned long long>(kWindow),
                 static_cast<unsigned long long>(kWindowWarmup),
                 static_cast<unsigned long long>(kColdStart), kClusters,
                 pass ? "true" : "false", rows.c_str());
    std::fclose(out);

    std::printf("sampling validation: %s -> %s\n",
                pass ? "all rows within tolerance" : "TOLERANCE EXCEEDED",
                out_path);
    return pass ? 0 : 1;
}
