/**
 * @file
 * Figure 25 — SoftWalker speedup with 2 MB pages on the ten scalable
 * benchmarks (footprints grown past the large-page L2 TLB coverage).
 *
 * Paper: seven of ten apps improve; xsb/spmv/gups still gain 5.1x/4.5x/7x.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 25", "SoftWalker speedup with 2MB pages");

    auto suite = scalableSuite();

    GpuConfig base = baselineCfg();
    base.pageBytes = 2ull * 1024 * 1024;
    GpuConfig soft = swCfg();
    soft.pageBytes = 2ull * 1024 * 1024;

    // Grow every footprint past the 2 GB large-page L2 TLB coverage.
    auto scale_of = [](const BenchmarkInfo &info) {
        return largePageScale(info);
    };
    auto groups = runSuites(suite, {{base, "base-2mb", 1.0, scale_of},
                                    {soft, "sw-2mb", 1.0, scale_of}});
    auto &base_r = groups[0];
    auto &soft_r = groups[1];

    TextTable table({"bench", "speedup", "base walkQ(cy)", "sw walkQ(cy)"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      TextTable::num(speedup(base_r[i], soft_r[i])),
                      TextTable::num(base_r[i].avgWalkQueueDelay, 0),
                      TextTable::num(soft_r[i].avgWalkQueueDelay, 0)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("geomean: %.2fx\n", geomeanSpeedup(base_r, soft_r));
    std::printf("\npaper: sssp 1.26x, nw 1.18x, gesv 2.29x, xsb 5.1x, "
                "spmv 4.5x, gups 7.0x\n");
    return 0;
}
