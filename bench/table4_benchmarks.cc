/**
 * @file
 * Table 4 — Benchmark characterisation: footprint, measured L2 TLB MPKI
 * (per thousand thread-level instructions, measured on the baseline), and
 * the paper's published values for comparison.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Table 4", "benchmark suite characterisation");

    auto suite = wholeSuite();
    auto runs = runSuite(baselineCfg(), suite, "baseline");

    TextTable table({"bench", "type", "footprint(MB)", "measured MPKI",
                     "paper MPKI", "paper req#PTW"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.addRow({suite[i]->abbr,
                      suite[i]->irregular ? "irregular" : "regular",
                      strprintf("%llu", (unsigned long long)
                                suite[i]->footprintMb),
                      TextTable::num(runs[i].l2TlbMpki),
                      TextTable::num(suite[i]->paperMpki),
                      strprintf("%u", suite[i]->paperRequiredPtws)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("notes: measured MPKI = L2 TLB misses per 1000 "
                "thread-instructions on the baseline; generators are\n"
                "calibrated to the published class (irregular >> regular), "
                "see EXPERIMENTS.md for per-app deltas.\n");
    return 0;
}
