/**
 * @file
 * Ablation — SoftWalker design parameters the paper fixes (32 PW-Warp
 * threads and 32 SoftPWB entries per SM, Table 3): how much concurrency
 * per SM does the software walker actually need?
 *
 * Sweeps PW-Warp lanes x SoftPWB entries on the irregular suite.  The
 * expectation: speedup saturates once the per-SM walk concurrency covers
 * the per-SM miss demand; tiny buffers re-create the queueing problem in
 * the distributor.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Ablation", "PW-Warp lanes x SoftPWB entries per SM");

    // A representative irregular trio keeps the sweep affordable.
    std::vector<const BenchmarkInfo *> suite = {
        &findBenchmark("bfs"), &findBenchmark("sssp"),
        &findBenchmark("gups")};

    const std::vector<std::uint32_t> lanes = {4, 8, 16, 32};
    std::vector<SuiteRun> specs = {{baselineCfg(), "baseline"}};
    for (std::uint32_t n : lanes) {
        GpuConfig cfg = swCfg();
        cfg.pwWarpThreads = n;
        cfg.softPwbEntries = n;
        specs.push_back({cfg, strprintf("%u-lane", n)});
    }
    // Decouple buffer depth from lane count: extra buffering without extra
    // lanes only smooths bursts.
    GpuConfig deep = swCfg();
    deep.pwWarpThreads = 16;
    deep.softPwbEntries = 64;
    specs.push_back({deep, "16-lane/64-pwb"});

    auto groups = runSuites(suite, specs);
    auto &base = groups.front();

    TextTable table({"PW lanes", "SoftPWB entries", "geomean speedup"});
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        table.addRow({strprintf("%u", lanes[l]),
                      strprintf("%u", lanes[l]),
                      TextTable::num(geomeanSpeedup(base, groups[1 + l]))});
    }
    table.addRow({"16", "64",
                  TextTable::num(geomeanSpeedup(base, groups.back()))});
    std::printf("%s\n", table.str().c_str());
    std::printf("expectation: saturation near the Table 3 design point "
                "(32 lanes, 32 entries)\n");
    return 0;
}
