/**
 * @file
 * Event-scheduler micro-benchmarks (google-benchmark): events/second on
 * the slab-backed EventQueue, with capture sizes matching the simulator's
 * real hot paths (16-byte issue events up to 80-byte interconnect hops
 * carrying a WalkRequest), plus self-scheduling chains and a periodic
 * sweep-hook workload.
 *
 * BM_LegacyQueue* replicate the pre-InlineFunction design in-file — a
 * std::priority_queue of {cycle, seq, std::function} — so the speedup of
 * the slab design is measured against the exact structure it replaced
 * rather than against memory.
 */

#include <benchmark/benchmark.h>

#include "bench_main.hh"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"

using namespace sw;

namespace {

constexpr int kEvents = 4096;

/** Capture payloads shaped like the simulator's real events. */
struct Pad16
{
    std::uint64_t a[2] = {};
};
struct Pad40
{
    std::uint64_t a[5] = {};
};
struct Pad64
{
    std::uint64_t a[8] = {};
};

/** The design InlineFunction replaced, reproduced for comparison. */
class LegacyQueue
{
  public:
    void
    schedule(Cycle when, std::function<void()> fn)
    {
        heap.push(Event{when, nextSeq++, std::move(fn)});
    }

    void
    run()
    {
        while (!heap.empty()) {
            // std::priority_queue::top() is const; the historical code
            // const_cast the event out to move its closure.
            Event &top = const_cast<Event &>(heap.top());
            now = top.when;
            std::function<void()> fn = std::move(top.fn);
            heap.pop();
            fn();
        }
    }

    Cycle now = 0;

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
    std::uint64_t nextSeq = 0;
};

template <typename Queue, typename Pad>
void
scheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Queue eq;
        std::uint64_t sink = 0;
        Pad pad;
        for (int i = 0; i < kEvents; ++i) {
            pad.a[0] = std::uint64_t(i);
            eq.schedule(Cycle(i * 7 % 997),
                        [&sink, pad]() { sink += pad.a[0]; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * kEvents);
}

} // namespace

static void
BM_Schedule16B(benchmark::State &state)
{
    scheduleRun<EventQueue, Pad16>(state);
}
BENCHMARK(BM_Schedule16B);

static void
BM_Schedule40B(benchmark::State &state)
{
    scheduleRun<EventQueue, Pad40>(state);
}
BENCHMARK(BM_Schedule40B);

static void
BM_Schedule64B(benchmark::State &state)
{
    scheduleRun<EventQueue, Pad64>(state);
}
BENCHMARK(BM_Schedule64B);

static void
BM_LegacyQueue16B(benchmark::State &state)
{
    scheduleRun<LegacyQueue, Pad16>(state);
}
BENCHMARK(BM_LegacyQueue16B);

static void
BM_LegacyQueue40B(benchmark::State &state)
{
    scheduleRun<LegacyQueue, Pad40>(state);
}
BENCHMARK(BM_LegacyQueue40B);

static void
BM_LegacyQueue64B(benchmark::State &state)
{
    scheduleRun<LegacyQueue, Pad64>(state);
}
BENCHMARK(BM_LegacyQueue64B);

/** Self-scheduling chain: the simulator's dominant pattern (tryIssue). */
static void
BM_SelfSchedulingChain(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int remaining = kEvents;
        std::function<void()> step = [&]() {
            if (--remaining > 0)
                eq.scheduleIn(1, [&]() { step(); });
        };
        eq.scheduleIn(1, [&]() { step(); });
        eq.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SelfSchedulingChain);

/** Scheduling with a live periodic sweep hook (Auditor/sampler overhead). */
static void
BM_ScheduleWithPeriodicCheck(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sweeps = 0;
        eq.addPeriodicCheck(64, [&](Cycle) { ++sweeps; });
        std::uint64_t sink = 0;
        for (int i = 0; i < kEvents; ++i)
            eq.schedule(Cycle(i), [&sink]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sweeps);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_ScheduleWithPeriodicCheck);

/** Slab-spilling captures (larger than kEventInlineBytes): the slow path. */
static void
BM_ScheduleOversized(benchmark::State &state)
{
    struct Pad128
    {
        std::uint64_t a[16] = {};
    };
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        Pad128 pad;
        for (int i = 0; i < kEvents; ++i) {
            pad.a[0] = std::uint64_t(i);
            eq.schedule(Cycle(i * 7 % 997),
                        [&sink, pad]() { sink += pad.a[0]; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_ScheduleOversized);

SW_BENCHMARK_MAIN_WITH_MANIFEST();
