/**
 * @file
 * Multi-tenant co-runs (docs/MULTITENANCY.md): irregular x regular
 * benchmark pairs sharing one SoftWalker machine, under two sharing
 * regimes — a fully shared translation path, and MIG-style partitioning
 * (per-tenant L2 TLB way slices, pinned software walks, round-robin
 * PW-Warp arbitration).  Reports the standard multi-programmed metrics
 * (per-tenant slowdown, system throughput, min/max fairness) plus the
 * walk-queue delay each tenant saw co-running vs. alone — the channel
 * the paper's contention analysis predicts irregular tenants pollute.
 */

#include "bench_common.hh"
#include "harness/corun.hh"

using namespace swbench;

namespace {

struct Pair
{
    const char *irregular;
    const char *regular;
};

/** Irregular aggressor x regular victim, spanning the Table 4 suite. */
constexpr Pair kPairs[] = {
    {"bfs", "gemm"},
    {"gups", "fft"},
    {"spmv", "histo"},
    {"sssp", "scan"},
};

CoRunSpec
specFor(const Pair &pair, bool mig)
{
    CoRunSpec spec;
    spec.cfg = makeSoftWalkerConfig();
    spec.cfg.migPartitioning = mig;
    if (mig)
        spec.cfg.pwArbitration = PwArbitration::TenantRoundRobin;
    spec.tenants.push_back({pair.irregular, 1.0});
    spec.tenants.push_back({pair.regular, 1.0});
    return spec;
}

void
regime(const char *title, bool mig)
{
    std::printf("---- %s ----\n", title);
    TextTable table({"pair", "slow(irr)", "slow(reg)", "STP", "fairness",
                     "walkQ irr co/solo", "walkQ reg co/solo"});
    for (const Pair &pair : kPairs) {
        CoRunResult result = runCoRun(specFor(pair, mig));
        const TenantOutcome &irr = result.tenants[0];
        const TenantOutcome &reg = result.tenants[1];
        table.addRow({strprintf("%s+%s", pair.irregular, pair.regular),
                      TextTable::num(irr.slowdown),
                      TextTable::num(reg.slowdown),
                      TextTable::num(result.systemThroughput),
                      TextTable::num(result.fairness),
                      strprintf("%.0f/%.0f", irr.walkQueueDelay,
                                irr.soloWalkQueueDelay),
                      strprintf("%.0f/%.0f", reg.walkQueueDelay,
                                reg.soloWalkQueueDelay)});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Co-run", "multi-tenant irregular x regular pairs");

    regime("(a) shared translation path", false);
    regime("(b) MIG partitioning + round-robin PW-Warp arbitration", true);

    std::printf("expectation: partitioning trades a little irregular-side "
                "throughput for\nregular-side isolation (fairness closer "
                "to 1, regular walk queues near solo)\n");
    return 0;
}
