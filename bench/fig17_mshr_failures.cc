/**
 * @file
 * Figure 17 — Reduction of L2 TLB MSHR failures when In-TLB MSHR is
 * enabled, relative to the 32-PTW baseline.
 *
 * Paper: In-TLB MSHR eliminates 95.3% of MSHR failures on average; spmv
 * only ~65% because its accesses saturate specific L2 TLB sets.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 17", "L2 TLB MSHR-failure reduction from In-TLB MSHR");

    auto suite = irregularSuite();
    auto groups = runSuites(suite, {{baselineCfg(), "baseline"},
                                    {swCfg(), "softwalker"}});
    auto &base = groups[0];
    auto &sw_full = groups[1];

    TextTable table({"bench", "baseline failures", "softwalker failures",
                     "reduction%"});
    std::vector<double> reductions;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double reduction = base[i].l2MshrFailures
            ? 100.0 * (1.0 - double(sw_full[i].l2MshrFailures) /
                             double(base[i].l2MshrFailures))
            : 0.0;
        if (base[i].l2MshrFailures)
            reductions.push_back(reduction);
        table.addRow({suite[i]->abbr,
                      strprintf("%llu", (unsigned long long)
                                base[i].l2MshrFailures),
                      strprintf("%llu", (unsigned long long)
                                sw_full[i].l2MshrFailures),
                      TextTable::num(reduction, 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("average reduction: %.1f%%\n", mean(reductions));
    std::printf("\npaper: 95.3%% average; spmv limited (~65%%) by per-set "
                "contention\n");
    return 0;
}
