/**
 * @file
 * Figure 18 — Page-walk latency of each technique, normalised to the
 * baseline, with the queueing-delay share.
 *
 * Paper: NHA -20%, FS-HPT -16%, SoftWalker -72.8% total walk latency.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 18", "normalised page-walk latency w/ queueing split");

    auto suite = wholeSuite();
    auto groups = runSuites(suite, {{baselineCfg(), "baseline"},
                                    {nhaCfg(), "nha"},
                                    {fsHptCfg(), "fs-hpt"},
                                    {swCfg(), "softwalker"}});
    auto &base = groups[0];
    auto &nha = groups[1];
    auto &hpt = groups[2];
    auto &sw_full = groups[3];

    TextTable table({"bench", "base q/a", "NHA norm", "FS-HPT norm",
                     "SW norm", "SW q/a"});
    std::vector<double> nha_norm, hpt_norm, sw_norm;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double b = base[i].avgWalkTotalLatency;
        auto norm = [&](const RunResult &r) {
            return b > 0 ? r.avgWalkTotalLatency / b : 0.0;
        };
        if (b > 0 && suite[i]->irregular) {
            nha_norm.push_back(norm(nha[i]));
            hpt_norm.push_back(norm(hpt[i]));
            sw_norm.push_back(norm(sw_full[i]));
        }
        table.addRow({suite[i]->abbr,
                      strprintf("%.0f/%.0f", base[i].avgWalkQueueDelay,
                                base[i].avgWalkAccessLatency),
                      TextTable::num(norm(nha[i])),
                      TextTable::num(norm(hpt[i])),
                      TextTable::num(norm(sw_full[i])),
                      strprintf("%.0f/%.0f", sw_full[i].avgWalkQueueDelay,
                                sw_full[i].avgWalkAccessLatency)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("irregular mean normalised walk latency: NHA %.2f  FS-HPT "
                "%.2f  SoftWalker %.2f\n",
                mean(nha_norm), mean(hpt_norm), mean(sw_norm));
    std::printf("(reductions: NHA %.1f%%, FS-HPT %.1f%%, SoftWalker "
                "%.1f%%)\n",
                100.0 * (1.0 - mean(nha_norm)),
                100.0 * (1.0 - mean(hpt_norm)),
                100.0 * (1.0 - mean(sw_norm)));
    std::printf("\npaper: NHA -20%%, FS-HPT -16%%, SoftWalker -72.8%%\n");
    return 0;
}
