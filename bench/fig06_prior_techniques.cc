/**
 * @file
 * Figure 6 — PTW contention persists under prior techniques: (a) page-walk
 * coalescing (NHA) and (b) 2 MB large pages.  Speedup from scaling PTWs
 * with each technique already applied.
 *
 * Footprints are scaled beyond the large-page L2 TLB coverage on the ten
 * scalable benchmarks, as in the paper.
 */

#include "bench_common.hh"

using namespace swbench;

namespace {

void
sweep(const char *title, const GpuConfig &base, double footprint_scale)
{
    std::printf("---- %s ----\n", title);
    const std::vector<std::uint32_t> ptws = {32, 128, 512};
    auto suite = scalableSuite();

    auto scale_of = [footprint_scale,
                     &base](const BenchmarkInfo &info) {
        return base.pageBytes > 64 * 1024 ? largePageScale(info)
                                          : footprint_scale;
    };
    std::vector<SuiteRun> specs;
    for (std::uint32_t n : ptws) {
        GpuConfig cfg = base;
        scalePtwSubsystem(cfg, n);
        specs.push_back({cfg, strprintf("%u-ptw", n), 1.0, scale_of});
    }
    auto runs = runSuites(suite, specs);

    std::vector<std::string> header = {"bench"};
    for (std::uint32_t n : ptws)
        header.push_back(strprintf("%u PTWs", n));
    TextTable table(header);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::vector<std::string> row = {suite[i]->abbr};
        for (std::size_t p = 0; p < ptws.size(); ++p)
            row.push_back(TextTable::num(speedup(runs[0][i], runs[p][i])));
        table.addRow(row);
    }
    std::printf("%s", table.str().c_str());
    std::printf("geomean at 512 PTWs: %.2fx over 32 PTWs\n\n",
                geomeanSpeedup(runs[0], runs[2]));
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 6", "PTW scaling under NHA coalescing and 2MB pages");

    sweep("(a) page-walk coalescing (NHA)", nhaCfg(), 4.0);

    GpuConfig large = baselineCfg();
    large.pageBytes = 2ull * 1024 * 1024;
    sweep("(b) 2MB large pages", large, 8.0);

    std::printf("paper: increasing PTWs still helps substantially under "
                "both techniques\n");
    return 0;
}
