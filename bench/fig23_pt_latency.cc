/**
 * @file
 * Figure 23 — Sensitivity to the per-level page-table access latency
 * (50..400 cycles, fixed).
 *
 * Paper: speedup grows with the per-level latency — 1.6x / 2.3x / 3.5x /
 * 4.2x / 4.8x at 50/100/200/300/400 cycles — and so does the queueing-
 * delay reduction.
 */

#include "bench_common.hh"

using namespace swbench;

int
main()
{
    setVerbose(false);
    banner("Figure 23", "per-level page-table latency sensitivity");

    const std::vector<Cycle> latencies = {50, 100, 200, 300, 400};
    auto suite = irregularSuite();

    std::vector<SuiteRun> specs;
    for (Cycle lat : latencies) {
        GpuConfig base = baselineCfg();
        base.fixedPtAccessLatency = lat;
        GpuConfig soft = swCfg();
        soft.fixedPtAccessLatency = lat;
        specs.push_back({base, strprintf("base@%llu",
                                         (unsigned long long)lat)});
        specs.push_back({soft, strprintf("sw@%llu",
                                         (unsigned long long)lat)});
    }
    auto groups = runSuites(suite, specs);

    TextTable table({"per-level latency", "speedup", "queue reduction%"});
    for (std::size_t l = 0; l < latencies.size(); ++l) {
        Cycle lat = latencies[l];
        auto &base_r = groups[2 * l];
        auto &soft_r = groups[2 * l + 1];
        std::vector<double> queue_reductions;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (base_r[i].avgWalkQueueDelay > 0) {
                queue_reductions.push_back(
                    1.0 - soft_r[i].avgWalkQueueDelay /
                          base_r[i].avgWalkQueueDelay);
            }
        }
        table.addRow({strprintf("%llu", (unsigned long long)lat),
                      TextTable::num(geomeanSpeedup(base_r, soft_r)),
                      TextTable::num(100.0 * mean(queue_reductions), 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("paper: 50cy 1.6x, 100cy 2.3x, 200cy 3.5x, 300cy 4.2x, "
                "400cy 4.8x (irregular)\n");
    return 0;
}
