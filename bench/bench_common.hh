/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: the standard
 * configurations compared throughout the paper, suite runners with progress
 * output, and consistent headers.
 *
 * Every harness honours SW_QUOTA / SW_WARMUP / SW_QUOTA_REG / SW_WARMUP_REG
 * (see harness/experiment.cc) so sweeps can be shortened or lengthened
 * without recompiling.
 */

#ifndef SW_BENCH_COMMON_HH
#define SW_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace swbench {

using namespace sw;

/** Baseline: Table 3, 32 hardware PTWs. */
inline GpuConfig
baselineCfg()
{
    return makeDefaultConfig();
}

/** NHA: baseline + page-walk coalescing (Shin et al., MICRO'18). */
inline GpuConfig
nhaCfg()
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.nhaCoalescing = true;
    return cfg;
}

/** FS-HPT: baseline + fixed-size hashed page table (Jang et al., PACT'24). */
inline GpuConfig
fsHptCfg()
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.pageTableKind = PageTableKind::Hashed;
    return cfg;
}

/** SoftWalker without the In-TLB MSHR. */
inline GpuConfig
swNoInTlbCfg()
{
    return makeSoftWalkerConfig(TranslationMode::SoftWalker, 0);
}

/** Full SoftWalker (In-TLB MSHR = 1024). */
inline GpuConfig
swCfg()
{
    return makeSoftWalkerConfig();
}

/** Hybrid: hardware walkers preferred, software overflow (§5.4). */
inline GpuConfig
hybridCfg()
{
    return makeSoftWalkerConfig(TranslationMode::Hybrid);
}

/** Ideal: unbounded walkers and MSHRs. */
inline GpuConfig
idealCfg()
{
    GpuConfig cfg = makeDefaultConfig();
    cfg.mode = TranslationMode::Ideal;
    return cfg;
}

/** Print the standard harness banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("============================================================"
                "====\n");
    std::printf("%s — %s\n", figure, description);
    std::printf("SoftWalker reproduction (MICRO'25); shapes, not absolute "
                "numbers.\n");
    std::printf("============================================================"
                "====\n\n");
}

/**
 * One configuration swept across the suite: the unit every figure is built
 * from.  Either a fixed footprint scale or a per-benchmark scale function
 * (the Fig 6b / Fig 25 pattern); scaleOf wins when set.
 */
struct SuiteRun
{
    SuiteRun(GpuConfig cfg_, std::string label_, double scale_ = 1.0,
             std::function<double(const BenchmarkInfo &)> scale_of = {})
        : cfg(std::move(cfg_)), label(std::move(label_)), scale(scale_),
          scaleOf(std::move(scale_of))
    {
    }

    GpuConfig cfg;
    std::string label;
    double scale;
    std::function<double(const BenchmarkInfo &)> scaleOf;
};

/**
 * Run several configurations across one suite on the SweepRunner: all
 * (config, benchmark) pairs become one job pool drained by SW_JOBS
 * workers, and results come back grouped per configuration, each group in
 * suite order.  Submission order is config-major, so SW_JOBS=1 reproduces
 * the historical back-to-back runSuite() loop exactly — same simulations,
 * same order, same progress lines.
 */
inline std::vector<std::vector<RunResult>>
runSuites(const std::vector<const BenchmarkInfo *> &suite,
          const std::vector<SuiteRun> &runs)
{
    SweepRunner runner;
    for (const SuiteRun &run : runs) {
        for (const BenchmarkInfo *info : suite) {
            SweepJob job;
            job.cfg = run.cfg;
            job.info = info;
            job.limits = limitsFor(*info);
            job.footprintScale =
                run.scaleOf ? run.scaleOf(*info) : run.scale;
            job.label = run.label;
            runner.submit(std::move(job));
        }
    }
    std::vector<RunResult> flat = runner.run();
    std::vector<std::vector<RunResult>> out;
    out.reserve(runs.size());
    auto it = flat.begin();
    for (std::size_t r = 0; r < runs.size(); ++r) {
        out.emplace_back(std::make_move_iterator(it),
                         std::make_move_iterator(it +
                             static_cast<std::ptrdiff_t>(suite.size())));
        it += static_cast<std::ptrdiff_t>(suite.size());
    }
    return out;
}

/** Run one configuration across a suite, with progress on stderr. */
inline std::vector<RunResult>
runSuite(const GpuConfig &cfg, const std::vector<const BenchmarkInfo *> &suite,
         const char *label, double footprint_scale = 1.0)
{
    return std::move(
        runSuites(suite, {{cfg, label, footprint_scale, {}}}).front());
}

/** Pointers to every Table 4 entry, paper order. */
inline std::vector<const BenchmarkInfo *>
wholeSuite()
{
    std::vector<const BenchmarkInfo *> out;
    for (const auto &info : benchmarkSuite())
        out.push_back(&info);
    return out;
}

/**
 * Footprint scale pushing a benchmark past the large-page L2 TLB coverage
 * (1024 entries x 2 MB = 2 GB): the paper grows each scalable app beyond
 * coverage before the Fig 6b / Fig 12b / Fig 25 experiments.
 */
inline double
largePageScale(const BenchmarkInfo &info, double min_bytes = 5.0 * (1ull << 30))
{
    double footprint = double(info.footprintMb) * 1024.0 * 1024.0;
    return std::max(8.0, min_bytes / footprint);
}

/** Run one configuration across a suite with per-benchmark scaling. */
inline std::vector<RunResult>
runSuiteScaled(const GpuConfig &cfg,
               const std::vector<const BenchmarkInfo *> &suite,
               const char *label,
               const std::function<double(const BenchmarkInfo &)> &scale_of)
{
    return std::move(
        runSuites(suite, {{cfg, label, 1.0, scale_of}}).front());
}

/** Geomean helper over paired results. */
inline double
geomeanSpeedup(const std::vector<RunResult> &base,
               const std::vector<RunResult> &opt)
{
    return geomean(speedups(base, opt));
}

} // namespace swbench

#endif // SW_BENCH_COMMON_HH
