/**
 * @file
 * Checkpoint subsystem micro-benchmarks (google-benchmark): encode and
 * decode throughput over a quiesced small machine, the full file
 * save/restore round trip, and functional fast-forward instruction rate.
 * The numbers bound how much a checkpointed or phase-sampled campaign
 * pays per barrier — the overhead the docs/CHECKPOINTS.md methodology
 * claims is negligible next to detailed simulation.
 */

#include <benchmark/benchmark.h>

#include "bench_main.hh"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/ffwd.hh"
#include "core/softwalker.hh"
#include "gpu/gpu.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

using namespace sw;

namespace {

GpuConfig
benchConfig()
{
    GpuConfig cfg = makeSoftWalkerConfig();
    cfg.numSms = 8;
    cfg.maxWarpsPerSm = 16;
    return cfg;
}

Gpu::RunLimits
benchLimits()
{
    Gpu::RunLimits limits;
    limits.warpInstrQuota = 20000;
    limits.warmupInstrs = 0;
    limits.maxCycles = 100000000;
    return limits;
}

/** A machine run to a quiesced barrier, the state every bench serialises. */
std::unique_ptr<Gpu>
quiescedGpu()
{
    auto gpu = std::make_unique<Gpu>(benchConfig(),
                                     makeWorkload(findBenchmark("bfs")));
    installWalkBackend(*gpu);
    gpu->runSegment(benchLimits().warpInstrQuota, 0, benchLimits());
    return gpu;
}

} // namespace

static void
BM_EncodeCheckpoint(benchmark::State &state)
{
    setVerbose(false);
    std::unique_ptr<Gpu> gpu = quiescedGpu();
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::vector<std::uint8_t> image =
            encodeCheckpoint(*gpu, benchLimits().warpInstrQuota);
        bytes = image.size();
        benchmark::DoNotOptimize(image.data());
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(bytes));
    state.counters["image_bytes"] = double(bytes);
}
BENCHMARK(BM_EncodeCheckpoint);

static void
BM_DecodeCheckpoint(benchmark::State &state)
{
    setVerbose(false);
    std::unique_ptr<Gpu> source = quiescedGpu();
    std::vector<std::uint8_t> image =
        encodeCheckpoint(*source, benchLimits().warpInstrQuota);
    Gpu target(benchConfig(), makeWorkload(findBenchmark("bfs")));
    installWalkBackend(target);
    for (auto _ : state) {
        CheckpointMeta meta =
            decodeCheckpoint(target, image.data(), image.size(), "bench");
        benchmark::DoNotOptimize(meta.instrsFetched);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(image.size()));
}
BENCHMARK(BM_DecodeCheckpoint);

static void
BM_SaveRestoreFile(benchmark::State &state)
{
    setVerbose(false);
    std::unique_ptr<Gpu> source = quiescedGpu();
    Gpu target(benchConfig(), makeWorkload(findBenchmark("bfs")));
    installWalkBackend(target);
    std::string path = "/tmp/micro_checkpoint.swckpt";
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        CheckpointMeta meta =
            saveCheckpoint(*source, benchLimits().warpInstrQuota, path);
        bytes = meta.fileBytes;
        restoreCheckpoint(target, path);
    }
    std::remove(path.c_str());
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(2 * bytes));
}
BENCHMARK(BM_SaveRestoreFile);

static void
BM_FastForward(benchmark::State &state)
{
    setVerbose(false);
    constexpr std::uint64_t kInstrs = 10000;
    for (auto _ : state) {
        // Fresh machine per iteration: ffwd cost is dominated by cold
        // page-table fills, which is exactly the warmup it replaces.
        Gpu gpu(benchConfig(), makeWorkload(findBenchmark("bfs")));
        installWalkBackend(gpu);
        FfwdStats stats = fastForward(gpu, kInstrs, benchLimits());
        benchmark::DoNotOptimize(stats.pagesTouched);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(kInstrs));
}
BENCHMARK(BM_FastForward);

SW_BENCHMARK_MAIN_WITH_MANIFEST();
