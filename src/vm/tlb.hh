/**
 * @file
 * Set-associative TLB tag/data array with In-TLB MSHR support.
 *
 * Each entry is in one of three states (valid translation, invalid, or
 * *pending* — repurposed as an In-TLB MSHR slot holding metadata for an
 * outstanding miss, §4.5).  The same array class backs the fully
 * associative per-SM L1 TLBs (ways == entries) and the shared 16-way
 * L2 TLB.
 *
 * Entries are keyed by TranslationKey {asid, vpn}: tenants share the
 * array, with the ASID participating in the tag compare only — the set
 * index stays vpn % sets so ASID-0 (single-tenant) indexing, victim
 * selection, and therefore fingerprints are unchanged.  Under MIG
 * partitioning each tenant's victim selection is confined to its own way
 * slice (setWayPartition); lookups still scan every way, which is safe
 * because tags are ASID-qualified.
 */

#ifndef SW_VM_TLB_HH
#define SW_VM_TLB_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "vm/address.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/** TLB tag store with LRU replacement and tri-state entries. */
class TlbArray
{
  public:
    enum class EntryState : std::uint8_t { Invalid, Valid, Pending };

    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t fills = 0;
        std::uint64_t evictions = 0;
        std::uint64_t fillsSkipped = 0;      ///< all ways pending: no fill
        std::uint64_t pendingAllocs = 0;     ///< In-TLB MSHR allocations
        std::uint64_t pendingAllocFailures = 0; ///< set fully pending
        std::uint64_t pendingEvictedValid = 0;  ///< valid entry sacrificed

        double
        hitRate() const
        {
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    TlbArray(std::string name, std::uint32_t entries, std::uint32_t ways);

    /**
     * Confine victim selection for each ASID to [first way, way count)
     * (MIG way slices).  An empty vector (the default) lets every ASID
     * use the full way range; an ASID beyond the vector also falls back
     * to the full range.
     */
    void setWayPartition(
        std::vector<std::pair<std::uint32_t, std::uint32_t>> slices);

    /** Look up a translation; updates LRU on hit. */
    bool lookup(TranslationKey key, Pfn &pfn);

    /** Tag-only probe without LRU side effects. */
    bool probe(TranslationKey key) const;

    /**
     * Install a valid translation (TLB fill / FL2T).
     * Victim preference: invalid way, else LRU valid way; pending ways are
     * never displaced.
     * @retval false if every candidate way of the set is pending.
     */
    bool fill(TranslationKey key, Pfn pfn);

    /**
     * Convert a victim entry of the key's set into an In-TLB MSHR slot.
     * @retval false if every candidate way of the set is already pending.
     */
    bool allocPending(TranslationKey key);

    /** True if @p key currently occupies a pending (In-TLB MSHR) way. */
    bool hasPending(TranslationKey key) const;

    /** Clear every pending way whose tag matches @p key (walk completion). */
    void clearPending(TranslationKey key);

    /** Invalidate a specific translation (TLB shootdown). */
    void invalidate(TranslationKey key);

    /**
     * Drop every *valid* translation belonging to @p asid (tenant
     * teardown / ASID-selective shootdown).  Pending (In-TLB MSHR) ways
     * survive: their walks are still in flight and will clear them on
     * completion, exactly like a per-VPN shootdown.
     */
    void flushAsid(Asid asid);

    /** Drop everything. */
    void flush();

    std::uint32_t pendingCount() const { return numPending; }

    /**
     * Recount pending ways by scanning the array; the Simulation Auditor
     * cross-checks this against the running pendingCount() counter.
     */
    std::uint32_t countPendingScan() const;

    /**
     * Invoke @p fn for every valid translation (cross-ASID containment
     * audit); never called on the hot path.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const Entry &entry : entries) {
            if (entry.state == EntryState::Valid)
                fn(TranslationKey{entry.asid, entry.vpn}, entry.pfn);
        }
    }

    std::uint32_t numEntries() const { return std::uint32_t(entries.size()); }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t numSets() const { return sets; }
    std::uint64_t setOf(Vpn vpn) const { return vpn % sets; }

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats() { stats_ = Stats{}; }

    /** Register the array's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Serialise the full array (entries incl. In-TLB MSHR ways, LRU
     *  clock, counters) into a checkpoint. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(CkptReader &r);

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    struct Entry
    {
        EntryState state = EntryState::Invalid;
        Asid asid = 0;
        Vpn vpn = 0;
        Pfn pfn = 0;
        std::uint64_t lruTick = 0;
    };

    Entry *findValid(TranslationKey key);
    const Entry *findValidConst(TranslationKey key) const;
    /** Way range victim selection may touch for @p asid. */
    std::pair<std::uint32_t, std::uint32_t> victimWays(Asid asid) const;

    std::string name_;
    std::uint32_t ways;
    std::uint32_t sets;
    std::vector<Entry> entries;
    /** Per-ASID (first way, way count); empty = no partitioning. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> waySlices;
    std::uint64_t lruCounter = 0;
    std::uint32_t numPending = 0;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_TLB_HH
