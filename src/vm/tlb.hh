/**
 * @file
 * Set-associative TLB tag/data array with In-TLB MSHR support.
 *
 * Each entry is in one of three states (valid translation, invalid, or
 * *pending* — repurposed as an In-TLB MSHR slot holding metadata for an
 * outstanding miss, §4.5).  The same array class backs the fully
 * associative per-SM L1 TLBs (ways == entries) and the shared 16-way
 * L2 TLB.
 */

#ifndef SW_VM_TLB_HH
#define SW_VM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/** TLB tag store with LRU replacement and tri-state entries. */
class TlbArray
{
  public:
    enum class EntryState : std::uint8_t { Invalid, Valid, Pending };

    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t fills = 0;
        std::uint64_t evictions = 0;
        std::uint64_t fillsSkipped = 0;      ///< all ways pending: no fill
        std::uint64_t pendingAllocs = 0;     ///< In-TLB MSHR allocations
        std::uint64_t pendingAllocFailures = 0; ///< set fully pending
        std::uint64_t pendingEvictedValid = 0;  ///< valid entry sacrificed

        double
        hitRate() const
        {
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    TlbArray(std::string name, std::uint32_t entries, std::uint32_t ways);

    /** Look up a translation; updates LRU on hit. */
    bool lookup(Vpn vpn, Pfn &pfn);

    /** Tag-only probe without LRU side effects. */
    bool probe(Vpn vpn) const;

    /**
     * Install a valid translation (TLB fill / FL2T).
     * Victim preference: invalid way, else LRU valid way; pending ways are
     * never displaced.
     * @retval false if every way of the set is pending (fill skipped).
     */
    bool fill(Vpn vpn, Pfn pfn);

    /**
     * Convert a victim entry of vpn's set into an In-TLB MSHR slot.
     * @retval false if every way of the set is already pending.
     */
    bool allocPending(Vpn vpn);

    /** True if @p vpn currently occupies a pending (In-TLB MSHR) way. */
    bool hasPending(Vpn vpn) const;

    /** Clear every pending way whose tag matches @p vpn (walk completion). */
    void clearPending(Vpn vpn);

    /** Invalidate a specific translation (TLB shootdown). */
    void invalidate(Vpn vpn);

    /** Drop everything. */
    void flush();

    std::uint32_t pendingCount() const { return numPending; }

    /**
     * Recount pending ways by scanning the array; the Simulation Auditor
     * cross-checks this against the running pendingCount() counter.
     */
    std::uint32_t countPendingScan() const;

    std::uint32_t numEntries() const { return std::uint32_t(entries.size()); }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t numSets() const { return sets; }
    std::uint64_t setOf(Vpn vpn) const { return vpn % sets; }

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats() { stats_ = Stats{}; }

    /** Register the array's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Serialise the full array (entries incl. In-TLB MSHR ways, LRU
     *  clock, counters) into a checkpoint. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(CkptReader &r);

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    struct Entry
    {
        EntryState state = EntryState::Invalid;
        Vpn vpn = 0;
        Pfn pfn = 0;
        std::uint64_t lruTick = 0;
    };

    Entry *findValid(Vpn vpn);
    const Entry *findValidConst(Vpn vpn) const;

    std::string name_;
    std::uint32_t ways;
    std::uint32_t sets;
    std::vector<Entry> entries;
    std::uint64_t lruCounter = 0;
    std::uint32_t numPending = 0;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_TLB_HH
