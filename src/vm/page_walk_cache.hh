/**
 * @file
 * Page Walk Cache: fully associative cache of page-directory entries that
 * lets walkers skip upper page-table levels (§2.1 item 7).
 *
 * Keyed by (level, VPN prefix) -> table base.  Both hardware PTWs and PW
 * Warps fill it (the FPWC instruction), and the Request Distributor consults
 * it before dispatching a software walk so PW Warps start at the deepest
 * cached level (§4.6).
 */

#ifndef SW_VM_PAGE_WALK_CACHE_HH
#define SW_VM_PAGE_WALK_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "vm/address.hh"

namespace sw {

class PageTableBase;
class StatGroup;
class CkptWriter;
class CkptReader;

/** Fully associative LRU cache of (level, prefix) -> table base. */
class PageWalkCache
{
  public:
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;     ///< any level hit
        std::uint64_t fills = 0;

        double
        hitRate() const
        {
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    explicit PageWalkCache(std::uint32_t num_entries = 32);

    /**
     * Find the deepest cached level for @p key.  Entries are ASID-tagged:
     * tenants with aliasing VPN prefixes never resolve through each
     * other's page-directory bases.
     * @param pt the *requesting ASID's* page table (prefix extraction)
     * @param[out] level deepest level whose table base is cached
     * @param[out] base that table's base address
     * @retval false on a complete miss (walk starts from the root).
     */
    bool lookup(const PageTableBase &pt, TranslationKey key, int &level,
                PhysAddr &base);

    /** Cache the base of the level-@p level table covering @p key (FPWC). */
    void fill(const PageTableBase &pt, int level, TranslationKey key,
              PhysAddr base);

    /** Drop every entry belonging to @p asid (tenant teardown). */
    void flushAsid(Asid asid);

    void flush();

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats() { stats_ = Stats{}; }

    /** Register the cache's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    std::uint32_t size() const { return std::uint32_t(entries.size()); }

    /** Serialise entries + LRU clock + counters into a checkpoint. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); capacity must match. */
    void restoreState(CkptReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        int level = 0;
        std::uint64_t prefix = 0;
        PhysAddr base = 0;
        std::uint64_t lruTick = 0;
    };

    std::vector<Entry> entries;
    std::uint64_t lruCounter = 0;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_PAGE_WALK_CACHE_HH
