#include "vm/ptw.hh"

#include <algorithm>

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

HardwarePtwPool::HardwarePtwPool(EventQueue &eq, Params params,
                                 const AddressSpaceManager &aspaces,
                                 PageWalkCache &cache, PtAccessFn pt_access,
                                 WalkCompleteFn on_complete)
    : eventq(eq), params_(params), spaces(aspaces), pwc(cache),
      ptAccess(std::move(pt_access)), onComplete(std::move(on_complete))
{
    SW_ASSERT(params_.numWalkers > 0, "need at least one walker");
    SW_ASSERT(params_.pwbPorts > 0, "need at least one PWB port");
    active.resize(params_.numWalkers);
    idleSlots.reserve(params_.numWalkers);
    for (std::uint32_t i = 0; i < params_.numWalkers; ++i)
        idleSlots.push_back(params_.numWalkers - 1 - i);
    portFree.assign(params_.pwbPorts, 0);
}

Cycle
HardwarePtwPool::reservePort()
{
    // Pick the earliest-free port; each PWB CAM operation occupies it for
    // one cycle.  With few ports and many walkers this becomes the
    // dispatch-rate bottleneck Fig 15 sweeps.
    std::size_t best = 0;
    for (std::size_t i = 1; i < portFree.size(); ++i) {
        if (portFree[i] < portFree[best])
            best = i;
    }
    Cycle start = std::max(eventq.now(), portFree[best]);
    portFree[best] = start + 1;
    return start + 1;
}

std::uint64_t
HardwarePtwPool::nhaKey(const WalkRequest &req) const
{
    std::uint64_t ptes_per_sector = params_.nhaSectorBytes / kPteBytes;
    std::uint64_t sector =
        req.key.vpn / std::max<std::uint64_t>(1, ptes_per_sector);
    // The sector index needs fewer than 40 bits; the ASID tag above it
    // keeps tenants' sectors disjoint (ASID-0 keys unchanged).
    return (std::uint64_t(req.key.asid) << 40) | sector;
}

void
HardwarePtwPool::submit(WalkRequest req)
{
    ++stats_.submitted;
    ++inFlightCount;
    stats_.peakInFlight = std::max(stats_.peakInFlight, inFlightCount);

    Cycle enq_done = reservePort();
    ++enqInTransit;
    auto fire = [this, req = std::move(req)]() mutable {
        SW_ASSERT(enqInTransit > 0, "PWB enqueue transit underflow");
        --enqInTransit;
        if (pwb.size() < params_.pwbEntries) {
            pwb.push_back(std::move(req));
        } else {
            ++stats_.pwbOverflows;
            overflow.push_back(std::move(req));
        }
        dispatch();
    };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "PWB enqueue event must not spill to the slab pool");
    eventq.schedule(enq_done, std::move(fire));
}

void
HardwarePtwPool::dispatch()
{
    SW_PROF_SCOPE(prof::Zone::PtwWalk);
    while (!idleSlots.empty() && !(pwb.empty() && overflow.empty())) {
        std::uint32_t slot = idleSlots.back();
        idleSlots.pop_back();
        ++activeWalkers;
        SW_AUDIT(activeWalkers <= params_.numWalkers,
                 "more active walkers (%u) than the pool has (%u)",
                 activeWalkers, params_.numWalkers);

        WalkRequest req;
        if (!pwb.empty()) {
            req = std::move(pwb.front());
            pwb.pop_front();
        } else {
            req = std::move(overflow.front());
            overflow.pop_front();
        }
        // Backfill the PWB from the overflow spill.
        while (!overflow.empty() && pwb.size() < params_.pwbEntries) {
            pwb.push_back(std::move(overflow.front()));
            overflow.pop_front();
        }

        ActiveWalk &walk = active[slot];
        walk.primary = std::move(req);
        walk.coalesced.clear();
        walk.live = true;

        // NHA: absorb queued walks whose leaf PTEs share this walk's
        // sector of the page table (Shin et al., MICRO'18).  The ASID-
        // qualified key restricts merging to one tenant's page table.
        if (params_.nhaCoalescing &&
            spaces.tableFor(walk.primary.key.asid).usesPwc()) {
            std::uint64_t key = nhaKey(walk.primary);
            std::uint64_t limit = params_.nhaSectorBytes / kPteBytes;
            auto absorb = [&](std::deque<WalkRequest> &queue) {
                for (auto it = queue.begin();
                     it != queue.end() &&
                     walk.coalesced.size() + 1 < limit;) {
                    if (nhaKey(*it) == key && it->key != walk.primary.key) {
                        walk.coalesced.push_back(std::move(*it));
                        ++stats_.nhaMerged;
                        it = queue.erase(it);
                    } else {
                        ++it;
                    }
                }
            };
            absorb(pwb);
            absorb(overflow);
        }

        Cycle deq_done = reservePort();
        eventq.schedule(deq_done, [this, slot]() {
            ActiveWalk &w = active[slot];
            w.started = eventq.now();
            w.cursor = w.primary.cursor;
            stats_.queueDelay.add(w.started - w.primary.created);
            SW_TRACE(tracer_, TracePhase::WalkDispatch, w.started,
                     w.primary.id, w.primary.key.vpn, std::uint32_t(slot),
                     w.primary.key.asid);
            for (const auto &rider : w.coalesced) {
                stats_.queueDelay.add(w.started - rider.created);
                SW_TRACE(tracer_, TracePhase::WalkDispatch, w.started,
                         rider.id, rider.key.vpn, std::uint32_t(slot),
                         rider.key.asid);
            }
            walkStep(slot);
        });
    }
}

void
HardwarePtwPool::walkStep(std::uint64_t slot)
{
    SW_PROF_SCOPE(prof::Zone::PtwWalk);
    ActiveWalk &walk = active[slot];
    SW_ASSERT(walk.live, "walk step on an idle walker");
    if (walk.cursor.done) {
        finishWalk(walk);
        return;
    }

    const PageTableBase &pt = spaces.tableFor(walk.primary.key.asid);
    PhysAddr addr = pt.pteAddr(walk.cursor);
    ++stats_.memReads;
    SW_TRACE(tracer_, TracePhase::PtRead, eventq.now(), walk.primary.id,
             walk.primary.key.vpn, std::uint32_t(slot),
             walk.primary.key.asid);
    ptAccess(addr, [this, slot]() {
        ActiveWalk &w = active[slot];
        const PageTableBase &table = spaces.tableFor(w.primary.key.asid);
        int level_read = w.cursor.level;
        table.advance(w.cursor);
        if (!w.cursor.done && level_read > 1) {
            // The read returned the base of the next-lower table: cache it
            // so later walks can skip the levels above it.
            pwc.fill(table, w.cursor.level,
                     TranslationKey{w.primary.key.asid, w.cursor.vpn},
                     w.cursor.tableBase);
        }
        if (w.cursor.done) {
            finishWalk(w);
        } else {
            walkStep(slot);
        }
    });
}

void
HardwarePtwPool::finishWalk(ActiveWalk &walk)
{
    SW_PROF_SCOPE(prof::Zone::PtwWalk);
    Cycle now = eventq.now();
    Cycle access = now - walk.started;

    auto complete_one = [&](const WalkRequest &req, Pfn pfn, bool fault) {
        WalkResult result;
        result.id = req.id;
        result.key = req.key;
        result.pfn = pfn;
        result.fault = fault;
        result.queueDelay = walk.started - req.created;
        result.accessLatency = access;
        ++stats_.completed;
        stats_.accessLatency.add(access);
        SW_ASSERT(inFlightCount > 0, "in-flight underflow");
        --inFlightCount;
        onComplete(result);
    };

    complete_one(walk.primary, walk.cursor.pfn, walk.cursor.fault);
    for (const auto &rider : walk.coalesced) {
        // Riders resolve through their own address space (the NHA key is
        // ASID-qualified, so in practice it is the primary's).
        const PageTableBase &pt = spaces.tableFor(rider.key.asid);
        bool mapped = pt.isMapped(rider.key.vpn);
        complete_one(rider, mapped ? pt.translate(rider.key.vpn) : 0,
                     !mapped);
    }

    walk.live = false;
    walk.coalesced.clear();
    std::uint32_t slot = std::uint32_t(&walk - active.data());
    idleSlots.push_back(slot);
    SW_ASSERT(activeWalkers > 0, "active walker underflow");
    --activeWalkers;
    dispatch();
}

void
HardwarePtwPool::saveState(CkptWriter &w) const
{
    // Checkpoints are taken at a quiesced tick: the transient walk state
    // (queues, active slots, in-transit counters) must all be empty —
    // anything else means the caller checkpointed mid-flight.
    SW_ASSERT(pwb.empty() && overflow.empty() && activeWalkers == 0 &&
              inFlightCount == 0 && enqInTransit == 0,
              "hardware PTW pool checkpointed while walks are in flight");
    w.section("hw_ptw");
    w.u64(stats_.submitted);
    w.u64(stats_.completed);
    w.u64(stats_.nhaMerged);
    w.u64(stats_.pwbOverflows);
    w.u64(stats_.memReads);
    w.latency(stats_.queueDelay);
    w.latency(stats_.accessLatency);
    w.u64(stats_.peakInFlight);
    // Port next-free cycles are absolute times and shape the resumed
    // timeline; idle-slot order decides which walker slot the next walk
    // lands in (observable through the tracer).
    w.u32(std::uint32_t(portFree.size()));
    for (Cycle free_at : portFree)
        w.u64(free_at);
    w.u32(std::uint32_t(idleSlots.size()));
    for (std::uint32_t slot : idleSlots)
        w.u32(slot);
}

void
HardwarePtwPool::restoreState(CkptReader &r)
{
    r.expectSection("hw_ptw");
    stats_.submitted = r.u64();
    stats_.completed = r.u64();
    stats_.nhaMerged = r.u64();
    stats_.pwbOverflows = r.u64();
    stats_.memReads = r.u64();
    r.latency(stats_.queueDelay);
    r.latency(stats_.accessLatency);
    stats_.peakInFlight = r.u64();
    std::uint32_t ports = r.u32();
    if (ports != portFree.size()) {
        fatal("checkpoint PTW pool has %u ports, this config has %zu",
              ports, portFree.size());
    }
    for (auto &free_at : portFree)
        free_at = r.u64();
    std::uint32_t idle = r.u32();
    if (idle != params_.numWalkers) {
        fatal("checkpoint PTW pool has %u idle walkers of %u (not "
              "quiesced?)", idle, params_.numWalkers);
    }
    idleSlots.clear();
    for (std::uint32_t i = 0; i < idle; ++i) {
        std::uint32_t slot = r.u32();
        if (slot >= params_.numWalkers)
            fatal("checkpoint PTW idle slot %u out of range", slot);
        idleSlots.push_back(slot);
    }
}

void
HardwarePtwPool::registerStats(StatGroup group)
{
    group.counter("submitted", &stats_.submitted);
    group.counter("completed", &stats_.completed);
    group.counter("nha_merged", &stats_.nhaMerged);
    group.counter("pwb_overflows", &stats_.pwbOverflows);
    group.counter("mem_reads", &stats_.memReads);
    group.counter("peak_inflight", &stats_.peakInFlight);
    group.latency("queue_delay", &stats_.queueDelay);
    group.latency("access_latency", &stats_.accessLatency);
    group.gauge("inflight", [this]() { return double(inFlightCount); });
    group.gauge("busy_walkers", [this]() { return double(activeWalkers); });
    group.gauge("pwb_occupancy",
                [this]() { return double(pwbOccupancy()); });
}

void
HardwarePtwPool::registerGauges(TimeSeriesSampler &sampler)
{
    sampler.gauge("ptw_busy_walkers",
                  [this]() { return double(activeWalkers); });
    sampler.gauge("ptw_queue_depth",
                  [this]() { return double(pwbOccupancy()); });
}

void
HardwarePtwPool::registerAudits(Auditor &auditor)
{
    // PW slots allocated == released: every walker is either idle or
    // accounted as active, and the live flags agree with the counter.
    auditor.registerAudit(
        "vm.ptw.slot-conservation", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            if (activeWalkers + idleSlots.size() != params_.numWalkers) {
                ctx.fail(strprintf(
                    "active (%u) + idle (%zu) walkers != pool size (%u)",
                    activeWalkers, idleSlots.size(), params_.numWalkers));
            }
            std::uint64_t live = 0;
            for (const auto &walk : active)
                if (walk.live)
                    ++live;
            if (live != activeWalkers) {
                ctx.fail(strprintf(
                    "live walk slots (%llu) != active walker counter (%u)",
                    static_cast<unsigned long long>(live), activeWalkers));
            }
        });

    // Walks in flight match sum(queues) + sum(walkers): nothing is lost
    // between the submit port, the PWB, the overflow spill, and the
    // walkers (including NHA-coalesced riders).
    auditor.registerAudit(
        "vm.ptw.inflight-conservation", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            std::uint64_t walking = 0;
            for (const auto &walk : active)
                if (walk.live)
                    walking += 1 + walk.coalesced.size();
            std::uint64_t accounted =
                enqInTransit + pwb.size() + overflow.size() + walking;
            if (accounted != inFlightCount) {
                ctx.fail(strprintf(
                    "in-flight %llu != enq-transit %llu + PWB %zu + "
                    "overflow %zu + walking %llu",
                    static_cast<unsigned long long>(inFlightCount),
                    static_cast<unsigned long long>(enqInTransit),
                    pwb.size(), overflow.size(),
                    static_cast<unsigned long long>(walking)));
            }
        });
}

} // namespace sw
