/**
 * @file
 * Translation engine: the full GPU address-translation path of Fig 2.
 *
 * Per-SM L1 TLBs with MSHRs feed the shared L2 TLB; L2 misses allocate a
 * regular MSHR — or, when those are exhausted and In-TLB MSHR is enabled,
 * repurpose an L2 TLB entry (§4.5) — consult the page walk cache, and hand a
 * WalkRequest to the configured backend (hardware PTW pool, SoftWalker, or
 * hybrid).  Completions fill the TLBs, wake all merged waiters, and record
 * the queueing-delay / access-latency split the paper's Figs 7 and 18 plot.
 *
 * The whole path is keyed by TranslationKey {asid, vpn}: each tenant
 * resolves against its own page table (AddressSpaceManager), TLB/PWC/MSHR
 * entries are ASID-tagged, and per-tenant counters keep attribution
 * separable.  A single-tenant machine runs everything at ASID 0 and is
 * bit-identical to the pre-multi-tenant engine.
 */

#ifndef SW_VM_TRANSLATION_HH
#define SW_VM_TRANSLATION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/memory_system.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"
#include "vm/fault_buffer.hh"
#include "vm/page_walk_cache.hh"
#include "vm/subentry_tlb.hh"
#include "vm/tlb.hh"
#include "vm/walk.hh"

namespace sw {

class Auditor;

/** Delivered with the PFN when a translation resolves. */
using TransDoneFn = std::function<void(Pfn)>;

/** Outcome of a functional (zero-time) translation touch. */
enum class TouchResult
{
    L1Hit,
    L2Hit,
    Walk,   ///< missed both TLB levels; a full walk ran functionally
};

/** Orchestrates L1 TLB -> L2 TLB -> PWC -> walk backend. */
class TranslationEngine
{
  public:
    struct Stats
    {
        std::uint64_t requests = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l1MshrMerges = 0;
        std::uint64_t l1MshrFailures = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t l2MshrMerges = 0;
        /** Rejected reservation attempts at the L2 TLB ("MSHR failures"). */
        std::uint64_t l2MshrFailures = 0;
        std::uint64_t inTlbMshrAllocs = 0;
        std::uint64_t walksCreated = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t faults = 0;
        std::uint64_t regularMshrPeak = 0;
        std::uint64_t inTlbMshrPeak = 0;
        LatencyStat walkQueueDelay;
        LatencyStat walkAccessLatency;
        LatencyStat translationLatency;   ///< translate() -> completion
        LatencyStat ptReadLatency;        ///< per page-table memory read
    };

    /** Per-tenant attribution (registered only when tenants > 1). */
    struct TenantStats
    {
        std::uint64_t requests = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t walksCompleted = 0;
        LatencyStat walkQueueDelay;       ///< walk-queue interference metric
        LatencyStat translationLatency;
    };

    TranslationEngine(EventQueue &eq, const GpuConfig &cfg,
                      MemorySystem &mem, AddressSpaceManager &spaces);

    TranslationEngine(const TranslationEngine &) = delete;
    TranslationEngine &operator=(const TranslationEngine &) = delete;

    /** Install the walk backend (must happen before the first miss). */
    void setBackend(std::unique_ptr<WalkBackend> backend);
    WalkBackend *backend() { return walkBackend.get(); }

    /** Translate @p key for SM @p sm; @p done fires with the PFN. */
    void translate(SmId sm, TranslationKey key, TransDoneFn done);

    /**
     * Functional warmup touch (fast-forward, §checkpoints doc): performs
     * the same TLB/PWC/page-table state transitions as a timed translate
     * — L1 lookup, L2 lookup + L1 fill, or a complete walk with PWC fills
     * and TLB fills — but consumes no simulated time and allocates no
     * MSHR / queue state.  Pages are mapped on first touch.
     */
    TouchResult functionalTouch(SmId sm, TranslationKey key);

    /**
     * Page-table memory read used by all walk backends: routes to the
     * PTE path of the memory hierarchy, or to the fixed latency of the
     * Fig 23 sensitivity sweep.
     */
    void ptAccess(PhysAddr addr, std::function<void()> done);

    /** Walk-completion entry point, bound into backends at construction. */
    WalkCompleteFn
    completionFn()
    {
        return [this](const WalkResult &result) { onWalkComplete(result); };
    }

    /**
     * When false, walks on unmapped pages fault into the Fault Buffer and
     * are replayed after the OS maps the page (UVM flow, §5.5).  Default
     * true: the OS maps pages on first touch, so no walk faults.
     */
    void setMapOnDemand(bool on) { mapOnDemand = on; }

    /**
     * TLB shootdown: drop @p key from every L1 TLB and the L2 TLB (page
     * migration / unmap).  In-flight walks are not cancelled — as in real
     * GPUs, the driver orders shootdowns against outstanding translations.
     */
    void shootdown(TranslationKey key);

    /**
     * ASID-selective flush (tenant teardown / context switch): drop every
     * *valid* entry belonging to @p asid from all L1 TLBs, the L2 TLB, and
     * the PWC.  Other tenants' entries are untouched; pending (In-TLB
     * MSHR) ways survive until their walks complete, like shootdown().
     */
    void flushAsid(Asid asid);

    PageWalkCache &pwc() { return pwcCache; }
    const PageWalkCache &pwc() const { return pwcCache; }
    /** The single-tenant (ASID 0) page table. */
    PageTableBase &pageTable() { return spaces_.tableFor(0); }
    /** Tenant @p asid's page table. */
    PageTableBase &pageTableFor(Asid asid) { return spaces_.tableFor(asid); }
    const PageTableBase &pageTableFor(Asid asid) const
    {
        return spaces_.tableFor(asid);
    }
    AddressSpaceManager &spaces() { return spaces_; }
    const TlbArray &l1Tlb(SmId sm) const { return l1Arrays.at(sm); }
    const TlbArray &l2Tlb() const { return l2Array; }
    /** The sub-entry L2 TLB, or nullptr when l2SubEntries == 1. */
    const SubEntryTlb *subEntryL2() const { return subL2.get(); }
    const FaultBuffer &faultBuffer() const { return faults_; }
    /** Zero all statistics (engine, TLBs, PWC) after warmup. */
    void resetStats();

    const Stats &stats() const { return stats_; }
    /** Per-tenant counters; always sized config().numTenants. */
    const TenantStats &tenantStats(Asid asid) const
    {
        return tenantStats_.at(asid);
    }
    const GpuConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return eventq; }

    /** Outstanding L2 misses currently tracked (regular + In-TLB). */
    std::size_t outstandingWalks() const { return outstanding.size(); }

    /**
     * Register the translation-path conservation audits: In-TLB MSHR /
     * regular-MSHR bookkeeping, TLB pending counters, backend in-flight
     * accounting, cross-ASID PFN containment, and the end-of-sim "every
     * L2 miss resolved" check.
     */
    void registerAudits(Auditor &auditor);

    /**
     * Register the whole translation path with the unified stat registry:
     * per-SM L1 TLBs ("sm<N>.l1tlb.*"), the L2 TLB and its MSHRs
     * ("l2tlb.*", "l2tlb.intlb_mshr.*"), walks, the PWC, the fault
     * buffer, per-tenant groups ("tenant<N>.*", multi-tenant only), and
     * the installed backend ("ptw.*" / "softwalker.*").
     */
    void registerStats(StatGroup root);

    /**
     * Install a TranslationTracer (nullptr detaches).  Forwarded to the
     * walk backend; stamps are disabled while no tracer is installed.
     */
    void setTracer(TranslationTracer *tracer);
    TranslationTracer *tracer() const { return tracer_; }

    /**
     * Serialise the full translation path (L1/L2 TLBs, PWC, fault buffer,
     * walk counters, the installed backend) into a checkpoint.  Must only
     * be called at a quiesced tick: no MSHRs held, no parked requesters,
     * no outstanding walks.
     */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(CkptReader &r);

    /** L2 TLB misses per kilo "instruction" given an instruction count. */
    double
    l2Mpki(std::uint64_t instructions) const
    {
        return instructions
            ? 1000.0 * double(stats_.l2Misses) / double(instructions)
            : 0.0;
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    /** Tracking record for one outstanding L2 TLB miss. */
    struct L2Track
    {
        bool inTlbSlot = false;     ///< held in an In-TLB MSHR
        std::uint32_t merges = 0;
        Cycle created = 0;
        std::vector<SmId> waiterSms;
    };

    void l1Lookup(SmId sm, TranslationKey key, TransDoneFn done,
                  Cycle start);
    void sendToL2(SmId sm, TranslationKey key);
    void l2Access(SmId sm, TranslationKey key);
    /**
     * Merge into or allocate L2 miss tracking; false when saturated.
     * @param arrival when the request first reached the L2 TLB — walk
     *        queueing delay is measured from here (§3.2), so time spent
     *        waiting for an MSHR counts as queueing.
     */
    bool tryHandleL2Miss(SmId sm, TranslationKey key, Cycle arrival);
    void drainL2WaitQueue();
    void drainL1WaitQueue(SmId sm);
    void createWalk(TranslationKey key, Cycle created);
    void onWalkComplete(const WalkResult &result);
    void resolveL1(SmId sm, TranslationKey key, Pfn pfn);

    // L2 array dispatch: the conventional TlbArray or (when configured)
    // the sub-entry-sharing SubEntryTlb of Li et al.
    bool l2Lookup(TranslationKey key, Pfn &pfn);
    void l2Fill(TranslationKey key, Pfn pfn);
    void l2Invalidate(TranslationKey key);

    EventQueue &eventq;
    GpuConfig cfg;
    MemorySystem &mem;
    AddressSpaceManager &spaces_;

    std::vector<TlbArray> l1Arrays;
    /** Per-SM L1 MSHRs: key -> waiting completions (with start stamps). */
    struct L1Waiter
    {
        TransDoneFn done;
        Cycle start;
    };
    std::vector<std::unordered_map<TranslationKey, std::vector<L1Waiter>>>
        l1Mshrs;

    /** Requests rejected by a full L1 MSHR file, woken on any L1 resolve. */
    struct L1WaitEntry
    {
        TranslationKey key;
        TransDoneFn done;
        Cycle start;
    };
    std::vector<std::deque<L1WaitEntry>> l1WaitQueues;

    /** L2 arrivals rejected for lack of miss-tracking capacity. */
    struct L2WaitEntry
    {
        SmId sm;
        TranslationKey key;
        Cycle arrival;
    };
    std::deque<L2WaitEntry> l2WaitQueue;

    TlbArray l2Array;
    std::unique_ptr<SubEntryTlb> subL2;   ///< replaces l2Array when set
    std::unordered_map<TranslationKey, L2Track> outstanding;
    std::uint32_t regularMshrInUse = 0;
    bool idealMshrs = false;

    PageWalkCache pwcCache;
    FaultBuffer faults_;
    std::unique_ptr<WalkBackend> walkBackend;
    std::uint64_t nextWalkId = 1;
    bool mapOnDemand = true;
    TranslationTracer *tracer_ = nullptr;

    /** Driver-side page-fault service time (UVM replay, §5.5). */
    static constexpr Cycle kOsFaultLatency = 2000;

    Stats stats_;
    std::vector<TenantStats> tenantStats_;
};

} // namespace sw

#endif // SW_VM_TRANSLATION_HH
