#include "vm/page_table.hh"

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"
#include "sim/ordered.hh"

namespace sw {

// Physical layout of simulated memory: data pages grow from 4 GB up,
// page-table storage from 1 GB up.  Keeping the regions disjoint makes
// address-based assertions cheap.
namespace {
constexpr PhysAddr kTableRegionBase = 1ull << 30;
constexpr PhysAddr kDataRegionBase = 4ull << 30;
} // namespace

FrameAllocator::FrameAllocator(std::uint64_t page_bytes)
    : pageBytes(page_bytes),
      dataCursor(kDataRegionBase),
      tableCursor(kTableRegionBase)
{
}

Pfn
FrameAllocator::allocDataFrame()
{
    PhysAddr base = dataCursor;
    dataCursor += pageBytes;
    ++dataFrames;
    SW_ASSERT(dataCursor < (1ull << kPhysAddrBits),
              "simulated physical memory exhausted");
    return base / pageBytes;
}

PhysAddr
FrameAllocator::allocTable(std::uint64_t bytes)
{
    // Keep table nodes 256 B aligned so PTE sectors never straddle nodes.
    std::uint64_t aligned = (bytes + 255) & ~std::uint64_t(255);
    PhysAddr base = tableCursor;
    tableCursor += aligned;
    tableBytes += aligned;
    SW_ASSERT(tableCursor < kDataRegionBase,
              "page-table region exhausted");
    return base;
}

RadixPageTable::RadixPageTable(const PageGeometry &geom,
                               FrameAllocator &alloc)
    : geometry(geom), allocator(alloc)
{
    // Split the VPN bits across levels, giving the leaf level the remainder.
    // 64 KB pages: 33 VPN bits -> {9, 8, 8, 8} (top..leaf).
    // 2 MB pages:  28 VPN bits -> {10, 9, 9} (top..leaf).
    unsigned vpn_bits = geometry.vpnBits();
    unsigned levels = vpn_bits > 30 ? 4 : 3;
    levelBits.assign(levels + 1, 0);
    unsigned remaining = vpn_bits;
    for (unsigned lvl = levels; lvl >= 1; --lvl) {
        unsigned share = (remaining + lvl - 1) / lvl;
        levelBits[lvl] = share;
        remaining -= share;
    }
    SW_ASSERT(remaining == 0, "level split failed");
    root = allocNode(int(levels));
}

unsigned
RadixPageTable::bitsBelow(int level) const
{
    unsigned bits = 0;
    for (int l = 1; l < level; ++l)
        bits += levelBits[std::size_t(l)];
    return bits;
}

std::uint64_t
RadixPageTable::levelIndex(int level, Vpn vpn) const
{
    unsigned shift = bitsBelow(level);
    std::uint64_t mask = (1ull << levelBits[std::size_t(level)]) - 1;
    return (vpn >> shift) & mask;
}

std::uint64_t
RadixPageTable::pwcPrefix(int level, Vpn vpn) const
{
    // The base of the level-L table is determined by the VPN bits consumed
    // by all levels above L.
    unsigned shift = bitsBelow(level) + levelBits[std::size_t(level)];
    return vpn >> shift;
}

PhysAddr
RadixPageTable::allocNode(int level)
{
    std::uint64_t entries = 1ull << levelBits[std::size_t(level)];
    PhysAddr base = allocator.allocTable(entries * kPteBytes);
    auto node = std::make_unique<Node>();
    node->base = base;
    node->entries.resize(entries);
    nodes.emplace(base, std::move(node));
    return base;
}

RadixPageTable::Node &
RadixPageTable::nodeAt(PhysAddr base)
{
    auto it = nodes.find(base);
    SW_ASSERT(it != nodes.end(), "dangling page-table node base %llx",
              static_cast<unsigned long long>(base));
    return *it->second;
}

const RadixPageTable::Node *
RadixPageTable::findNode(PhysAddr base) const
{
    auto it = nodes.find(base);
    return it == nodes.end() ? nullptr : it->second.get();
}

Pfn
RadixPageTable::ensureMapped(Vpn vpn)
{
    PhysAddr base = root;
    for (int level = topLevel(); level >= 1; --level) {
        Node &node = nodeAt(base);
        Entry &entry = node.entries[levelIndex(level, vpn)];
        if (level == 1) {
            if (!entry.valid) {
                entry.valid = true;
                entry.leaf = true;
                entry.next = allocator.allocDataFrame();
            }
            return entry.next;
        }
        if (!entry.valid) {
            entry.valid = true;
            entry.leaf = false;
            entry.next = allocNode(level - 1);
        }
        base = entry.next;
    }
    panic("unreachable: radix walk fell through");
}

bool
RadixPageTable::isMapped(Vpn vpn) const
{
    const Node *node = findNode(root);
    for (int level = topLevel(); level >= 1; --level) {
        if (!node)
            return false;
        const Entry &entry = node->entries[levelIndex(level, vpn)];
        if (!entry.valid)
            return false;
        if (level == 1)
            return true;
        node = findNode(entry.next);
    }
    return false;
}

Pfn
RadixPageTable::translate(Vpn vpn) const
{
    const Node *node = findNode(root);
    for (int level = topLevel(); level >= 1; --level) {
        SW_ASSERT(node != nullptr, "translate() on unmapped VPN");
        const Entry &entry = node->entries[levelIndex(level, vpn)];
        SW_ASSERT(entry.valid, "translate() on unmapped VPN %llx",
                  static_cast<unsigned long long>(vpn));
        if (level == 1)
            return entry.next;
        node = findNode(entry.next);
    }
    panic("unreachable: radix translate fell through");
}

WalkCursor
RadixPageTable::startWalk(Vpn vpn) const
{
    WalkCursor cur;
    cur.vpn = vpn;
    cur.level = topLevel();
    cur.tableBase = root;
    return cur;
}

WalkCursor
RadixPageTable::resumeWalk(Vpn vpn, int level, PhysAddr base) const
{
    SW_ASSERT(level >= 1 && level <= topLevel(),
              "resumeWalk at invalid level %d", level);
    WalkCursor cur;
    cur.vpn = vpn;
    cur.level = level;
    cur.tableBase = base;
    return cur;
}

PhysAddr
RadixPageTable::pteAddr(const WalkCursor &cur) const
{
    SW_ASSERT(!cur.done, "pteAddr on a finished walk");
    return cur.tableBase + levelIndex(cur.level, cur.vpn) * kPteBytes;
}

void
RadixPageTable::advance(WalkCursor &cur) const
{
    SW_ASSERT(!cur.done, "advance on a finished walk");
    const Node *node = findNode(cur.tableBase);
    if (!node) {
        cur.done = true;
        cur.fault = true;
        return;
    }
    const Entry &entry = node->entries[levelIndex(cur.level, cur.vpn)];
    if (!entry.valid) {
        cur.done = true;
        cur.fault = true;
        return;
    }
    if (cur.level == 1) {
        SW_ASSERT(entry.leaf, "leaf level holds a non-leaf entry");
        cur.done = true;
        cur.pfn = entry.next;
        return;
    }
    cur.tableBase = entry.next;
    --cur.level;
}

void
FrameAllocator::saveState(CkptWriter &w) const
{
    w.section("frame_allocator");
    w.u64(pageBytes);
    w.u64(dataFrames);
    w.u64(dataCursor);
    w.u64(tableCursor);
    w.u64(tableBytes);
}

void
FrameAllocator::restoreState(CkptReader &r)
{
    r.expectSection("frame_allocator");
    std::uint64_t page_bytes = r.u64();
    if (page_bytes != pageBytes) {
        fatal("checkpoint frame allocator page size %llu != configured %llu",
              static_cast<unsigned long long>(page_bytes),
              static_cast<unsigned long long>(pageBytes));
    }
    dataFrames = r.u64();
    dataCursor = r.u64();
    tableCursor = r.u64();
    tableBytes = r.u64();
}

void
RadixPageTable::saveState(CkptWriter &w) const
{
    w.section("radix_pt");
    w.u64(root);
    w.u64(nodes.size());
    // Nodes sit in an unordered map; serialise in sorted-base order so the
    // byte stream is deterministic (fingerprint/round-trip contracts).
    for (PhysAddr base : sortedKeys(nodes)) {
        const Node &node = *nodes.at(base);
        w.u64(node.base);
        w.u32(std::uint32_t(node.entries.size()));
        std::uint32_t valid = 0;
        for (const Entry &entry : node.entries)
            valid += entry.valid ? 1 : 0;
        w.u32(valid);
        for (std::uint32_t i = 0; i < node.entries.size(); ++i) {
            const Entry &entry = node.entries[i];
            if (!entry.valid)
                continue;
            w.u32(i);
            w.u8(entry.leaf ? 1 : 0);
            w.u64(entry.next);
        }
    }
}

void
RadixPageTable::restoreState(CkptReader &r)
{
    r.expectSection("radix_pt");
    root = r.u64();
    std::uint64_t num_nodes = r.count(16, "page-table nodes");
    nodes.clear();
    for (std::uint64_t n = 0; n < num_nodes; ++n) {
        auto node = std::make_unique<Node>();
        node->base = r.u64();
        std::uint32_t entries = r.u32();
        // Node sizes are bounded by the largest level's radix.
        std::uint32_t max_entries = 0;
        for (unsigned bits : levelBits)
            max_entries = std::max(max_entries, std::uint32_t(1u << bits));
        if (entries == 0 || entries > max_entries) {
            fatal("checkpoint page-table node with %u entries (max %u)",
                  entries, max_entries);
        }
        node->entries.resize(entries);
        std::uint32_t valid = r.u32();
        if (valid > entries)
            fatal("checkpoint page-table node has %u valid of %u entries",
                  valid, entries);
        for (std::uint32_t i = 0; i < valid; ++i) {
            std::uint32_t idx = r.u32();
            if (idx >= entries)
                fatal("checkpoint page-table entry index %u out of range",
                      idx);
            Entry &entry = node->entries[idx];
            entry.valid = true;
            entry.leaf = r.u8() != 0;
            entry.next = r.u64();
        }
        PhysAddr base = node->base;
        if (!nodes.emplace(base, std::move(node)).second)
            fatal("checkpoint page-table node base %llx duplicated",
                  static_cast<unsigned long long>(base));
    }
    if (nodes.find(root) == nodes.end())
        fatal("checkpoint page-table root node missing");
}

} // namespace sw
