#include "vm/translation.hh"

#include <algorithm>

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "sim/ordered.hh"

namespace sw {

TranslationEngine::TranslationEngine(EventQueue &eq, const GpuConfig &config,
                                     MemorySystem &memory,
                                     AddressSpaceManager &spaces)
    : eventq(eq), cfg(config), mem(memory), spaces_(spaces),
      l2Array("l2tlb", config.l2TlbEntries, config.l2TlbWays),
      pwcCache(config.pwcEntries)
{
    idealMshrs = (cfg.mode == TranslationMode::Ideal);
    l1Arrays.reserve(cfg.numSms);
    l1Mshrs.resize(cfg.numSms);
    l1WaitQueues.resize(cfg.numSms);
    for (SmId sm = 0; sm < cfg.numSms; ++sm) {
        // Per-SM L1 TLBs are fully associative (ways == entries).
        l1Arrays.emplace_back(strprintf("l1tlb[%u]", sm), cfg.l1TlbEntries,
                              cfg.l1TlbEntries);
    }
    if (cfg.l2SubEntries > 1) {
        subL2 = std::make_unique<SubEntryTlb>(
            "l2tlb-sub", cfg.l2TlbEntries, cfg.l2TlbWays, cfg.l2SubEntries,
            cfg.l2SubEntrySharing);
    }
    if (cfg.migPartitioning && cfg.numTenants > 1) {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> slices;
        slices.reserve(cfg.numTenants);
        for (Asid t = 0; t < cfg.numTenants; ++t)
            slices.push_back(tenantWayRange(cfg, t));
        if (subL2)
            subL2->setWayPartition(std::move(slices));
        else
            l2Array.setWayPartition(std::move(slices));
    }
    tenantStats_.resize(cfg.numTenants);
}

void
TranslationEngine::setBackend(std::unique_ptr<WalkBackend> backend)
{
    walkBackend = std::move(backend);
}

bool
TranslationEngine::l2Lookup(TranslationKey key, Pfn &pfn)
{
    return subL2 ? subL2->lookup(key, pfn) : l2Array.lookup(key, pfn);
}

void
TranslationEngine::l2Fill(TranslationKey key, Pfn pfn)
{
    if (subL2)
        subL2->fill(key, pfn);
    else
        l2Array.fill(key, pfn);
}

void
TranslationEngine::l2Invalidate(TranslationKey key)
{
    if (subL2)
        subL2->invalidate(key);
    else
        l2Array.invalidate(key);
}

void
TranslationEngine::translate(SmId sm, TranslationKey key, TransDoneFn done)
{
    SW_PROF_SCOPE(prof::Zone::TlbLookup);
    SW_ASSERT(sm < cfg.numSms, "translate from unknown SM %u", sm);
    SW_ASSERT(key.asid < cfg.numTenants, "translate for unknown ASID %u",
              key.asid);
    ++stats_.requests;
    ++tenantStats_[key.asid].requests;
    Cycle start = eventq.now();
    auto fire = [this, sm, key, done = std::move(done), start]() mutable {
        l1Lookup(sm, key, std::move(done), start);
    };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "L1 lookup event must not spill to the slab pool");
    eventq.scheduleIn(cfg.l1TlbLatency, std::move(fire));
}

void
TranslationEngine::l1Lookup(SmId sm, TranslationKey key, TransDoneFn done,
                            Cycle start)
{
    Pfn pfn = 0;
    if (l1Arrays[sm].lookup(key, pfn)) {
        ++stats_.l1Hits;
        stats_.translationLatency.add(eventq.now() - start);
        tenantStats_[key.asid].translationLatency.add(eventq.now() - start);
        done(pfn);
        return;
    }
    ++stats_.l1Misses;
    SW_TRACE(tracer_, TracePhase::L1Miss, eventq.now(), 0, key.vpn, sm,
             key.asid);

    auto &mshrs = l1Mshrs[sm];
    auto it = mshrs.find(key);
    if (it != mshrs.end()) {
        if (idealMshrs ||
            it->second.size() <
                static_cast<std::size_t>(cfg.l1TlbMergesPerMshr)) {
            ++stats_.l1MshrMerges;
            it->second.push_back({std::move(done), start});
            return;
        }
        // Merge capacity exhausted: park until this SM resolves something.
        ++stats_.l1MshrFailures;
        l1WaitQueues[sm].push_back({key, std::move(done), start});
        return;
    }

    if (!idealMshrs && mshrs.size() >=
        static_cast<std::size_t>(cfg.l1TlbMshrs)) {
        ++stats_.l1MshrFailures;
        l1WaitQueues[sm].push_back({key, std::move(done), start});
        return;
    }

    mshrs[key].push_back({std::move(done), start});
    sendToL2(sm, key);
}

void
TranslationEngine::drainL1WaitQueue(SmId sm)
{
    auto &queue = l1WaitQueues[sm];
    while (!queue.empty()) {
        std::size_t before = queue.size();
        L1WaitEntry entry = std::move(queue.front());
        queue.pop_front();
        l1Lookup(sm, entry.key, std::move(entry.done), entry.start);
        if (queue.size() >= before) {
            // No progress: the retried request was parked again.
            break;
        }
    }
}

void
TranslationEngine::sendToL2(SmId sm, TranslationKey key)
{
    auto fire = [this, sm, key]() { l2Access(sm, key); };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "L2 hop event must not spill to the slab pool");
    eventq.scheduleIn(cfg.l2TlbLatency, std::move(fire));
}

void
TranslationEngine::l2Access(SmId sm, TranslationKey key)
{
    SW_PROF_SCOPE(prof::Zone::TlbLookup);
    ++stats_.l2Accesses;
    SW_TRACE(tracer_, TracePhase::L2Lookup, eventq.now(), 0, key.vpn, sm,
             key.asid);
    Pfn pfn = 0;
    if (l2Lookup(key, pfn)) {
        ++stats_.l2Hits;
        SW_TRACE(tracer_, TracePhase::L2Hit, eventq.now(), 0, key.vpn, sm,
                 key.asid);
        resolveL1(sm, key, pfn);
        return;
    }
    ++stats_.l2Misses;
    ++tenantStats_[key.asid].l2Misses;
    SW_TRACE(tracer_, TracePhase::L2Miss, eventq.now(), 0, key.vpn, sm,
             key.asid);

    if (!tryHandleL2Miss(sm, key, eventq.now())) {
        // "MSHR failure" (§4.5): the L2 TLB cannot reserve the request.
        // The requester parks until a walk completion frees capacity.
        ++stats_.l2MshrFailures;
        SW_TRACE(tracer_, TracePhase::MshrFail, eventq.now(), 0, key.vpn,
                 sm, key.asid);
        l2WaitQueue.push_back({sm, key, eventq.now()});
    }
}

bool
TranslationEngine::tryHandleL2Miss(SmId sm, TranslationKey key,
                                   Cycle arrival)
{
    auto it = outstanding.find(key);
    if (it != outstanding.end()) {
        L2Track &track = it->second;
        if (idealMshrs || track.merges < cfg.l2TlbMergesPerMshr) {
            ++track.merges;
            ++stats_.l2MshrMerges;
            track.waiterSms.push_back(sm);
            return true;
        }
        return false;
    }

    // Allocate miss-tracking state: a regular MSHR if one is free, else an
    // In-TLB MSHR slot (§4.5).  The In-TLB path is defined on whole L2 TLB
    // entries, so the sub-entry array never takes it (validate() enforces
    // the exclusion).
    bool in_tlb_slot = false;
    if (idealMshrs || regularMshrInUse < cfg.l2TlbMshrs) {
        ++regularMshrInUse;
        stats_.regularMshrPeak =
            std::max<std::uint64_t>(stats_.regularMshrPeak,
                                    regularMshrInUse);
        SW_TRACE(tracer_, TracePhase::MshrAlloc, eventq.now(), 0, key.vpn,
                 sm, key.asid);
    } else if (!subL2 && cfg.inTlbMshrMax > 0 &&
               l2Array.pendingCount() < cfg.inTlbMshrMax &&
               l2Array.allocPending(key)) {
        in_tlb_slot = true;
        SW_TRACE(tracer_, TracePhase::InTlbAlloc, eventq.now(), 0, key.vpn,
                 sm, key.asid);
        ++stats_.inTlbMshrAllocs;
        stats_.inTlbMshrPeak =
            std::max<std::uint64_t>(stats_.inTlbMshrPeak,
                                    l2Array.pendingCount());
    } else {
        return false;
    }

    SW_AUDIT(idealMshrs || in_tlb_slot ||
             regularMshrInUse <= cfg.l2TlbMshrs,
             "regular L2 MSHR overallocation (%u > %u)",
             regularMshrInUse, cfg.l2TlbMshrs);

    L2Track track;
    track.inTlbSlot = in_tlb_slot;
    track.created = arrival;
    track.waiterSms.push_back(sm);
    outstanding.emplace(key, std::move(track));
    createWalk(key, arrival);
    return true;
}

void
TranslationEngine::drainL2WaitQueue()
{
    SW_PROF_SCOPE(prof::Zone::TlbLookup);
    while (!l2WaitQueue.empty()) {
        L2WaitEntry entry = l2WaitQueue.front();
        // The blocking walk may have filled this entry's translation.
        Pfn pfn = 0;
        if (l2Lookup(entry.key, pfn)) {
            ++stats_.l2Accesses;
            ++stats_.l2Hits;
            l2WaitQueue.pop_front();
            resolveL1(entry.sm, entry.key, pfn);
            continue;
        }
        if (!tryHandleL2Miss(entry.sm, entry.key, entry.arrival))
            break;
        l2WaitQueue.pop_front();
    }
}

void
TranslationEngine::createWalk(TranslationKey key, Cycle created)
{
    ++stats_.walksCreated;
    SW_ASSERT(walkBackend != nullptr, "no walk backend installed");
    if (mapOnDemand)
        spaces_.tableFor(key.asid).ensureMapped(key.vpn);

    auto fire = [this, key, created]() {
        PageTableBase &pt = spaces_.tableFor(key.asid);
        int level = 0;
        PhysAddr base = 0;
        WalkRequest req;
        req.id = nextWalkId++;
        req.key = key;
        req.created = created;
        if (pwcCache.lookup(pt, key, level, base)) {
            req.cursor = pt.resumeWalk(key.vpn, level, base);
        } else {
            req.cursor = pt.startWalk(key.vpn);
        }
        SW_TRACE(tracer_, TracePhase::WalkCreated, created, req.id, key.vpn,
                 TranslationTracer::kNoWhere, key.asid);
        SW_TRACE(tracer_, TracePhase::BackendSubmit, eventq.now(), req.id,
                 key.vpn, TranslationTracer::kNoWhere, key.asid);
        walkBackend->submit(std::move(req));
    };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "walk-creation event must not spill to the slab pool");
    eventq.scheduleIn(cfg.pwcLatency, std::move(fire));
}

void
TranslationEngine::onWalkComplete(const WalkResult &result)
{
    SW_PROF_SCOPE(prof::Zone::TlbLookup);
    if (result.fault) {
        ++stats_.faults;
        SW_TRACE(tracer_, TracePhase::Fault, eventq.now(), result.id,
                 result.key.vpn, TranslationTracer::kNoWhere,
                 result.key.asid);
        faults_.record(result.key, 0, eventq.now());
        // UVM-style handling: the driver maps the page, then the walk is
        // replayed from scratch (§5.5).
        eventq.scheduleIn(kOsFaultLatency, [this, key = result.key]() {
            spaces_.tableFor(key.asid).ensureMapped(key.vpn);
            auto it = outstanding.find(key);
            SW_ASSERT(it != outstanding.end(),
                      "fault replay without tracking state");
            createWalk(key, eventq.now());
            --stats_.walksCreated;   // replay, not a new demand walk
        });
        return;
    }

    auto it = outstanding.find(result.key);
    SW_ASSERT(it != outstanding.end(), "walk completion without tracker");
    L2Track track = std::move(it->second);
    outstanding.erase(it);

    if (track.inTlbSlot) {
        l2Array.clearPending(result.key);
        SW_AUDIT(!l2Array.hasPending(result.key),
                 "In-TLB MSHR slot survived walk completion for vpn %llu",
                 static_cast<unsigned long long>(result.key.vpn));
    } else {
        SW_ASSERT(regularMshrInUse > 0, "regular MSHR underflow");
        --regularMshrInUse;
    }
    l2Fill(result.key, result.pfn);
    SW_TRACE(tracer_, TracePhase::WalkFill, eventq.now(), result.id,
             result.key.vpn, TranslationTracer::kNoWhere, result.key.asid);

    ++stats_.walksCompleted;
    stats_.walkQueueDelay.add(result.queueDelay);
    stats_.walkAccessLatency.add(result.accessLatency);
    TenantStats &ts = tenantStats_[result.key.asid];
    ++ts.walksCompleted;
    ts.walkQueueDelay.add(result.queueDelay);

    for (SmId sm : track.waiterSms)
        resolveL1(sm, result.key, result.pfn);

    drainL2WaitQueue();
}

void
TranslationEngine::resolveL1(SmId sm, TranslationKey key, Pfn pfn)
{
    l1Arrays[sm].fill(key, pfn);
    auto &mshrs = l1Mshrs[sm];
    auto it = mshrs.find(key);
    SW_ASSERT(it != mshrs.end(), "L1 resolve without an MSHR");
    std::vector<L1Waiter> waiters = std::move(it->second);
    mshrs.erase(it);
    Cycle now = eventq.now();
    SW_TRACE(tracer_, TracePhase::Wakeup, now, 0, key.vpn, sm, key.asid);
    for (auto &waiter : waiters) {
        stats_.translationLatency.add(now - waiter.start);
        tenantStats_[key.asid].translationLatency.add(now - waiter.start);
        waiter.done(pfn);
    }
    drainL1WaitQueue(sm);
}

TouchResult
TranslationEngine::functionalTouch(SmId sm, TranslationKey key)
{
    SW_ASSERT(sm < cfg.numSms, "functional touch from unknown SM %u", sm);
    SW_ASSERT(key.asid < cfg.numTenants, "touch for unknown ASID %u",
              key.asid);
    Pfn pfn = 0;
    if (l1Arrays[sm].lookup(key, pfn))
        return TouchResult::L1Hit;
    if (l2Lookup(key, pfn)) {
        l1Arrays[sm].fill(key, pfn);
        return TouchResult::L2Hit;
    }
    // Full functional walk.  Map on first touch (warmup never takes the
    // UVM fault path), consult the PWC, then descend — filling the PWC at
    // exactly the points a timed walker would (see HardwarePtwPool::
    // walkStep), so warmed PWC contents match detailed-walk behaviour.
    PageTableBase &pt = spaces_.tableFor(key.asid);
    pt.ensureMapped(key.vpn);
    int level = 0;
    PhysAddr base = 0;
    WalkCursor cursor;
    if (pwcCache.lookup(pt, key, level, base))
        cursor = pt.resumeWalk(key.vpn, level, base);
    else
        cursor = pt.startWalk(key.vpn);
    while (!cursor.done) {
        int level_read = cursor.level;
        pt.advance(cursor);
        if (!cursor.done && level_read > 1) {
            pwcCache.fill(pt, cursor.level, key, cursor.tableBase);
        }
    }
    SW_ASSERT(!cursor.fault, "functional walk faulted on a mapped page");
    l2Fill(key, cursor.pfn);
    l1Arrays[sm].fill(key, cursor.pfn);
    return TouchResult::Walk;
}

void
TranslationEngine::saveState(CkptWriter &w) const
{
    // The quiesce contract: nothing on the translation path is in flight.
    for (SmId sm = 0; sm < cfg.numSms; ++sm) {
        SW_ASSERT(l1Mshrs[sm].empty() && l1WaitQueues[sm].empty(),
                  "SM %u has L1 translation state in flight at checkpoint",
                  sm);
    }
    SW_ASSERT(outstanding.empty() && l2WaitQueue.empty() &&
              regularMshrInUse == 0,
              "L2 TLB has misses in flight at checkpoint");
    w.section("translation");
    for (const auto &l1 : l1Arrays)
        l1.saveState(w);
    l2Array.saveState(w);
    if (subL2)
        subL2->saveState(w);
    pwcCache.saveState(w);
    faults_.saveState(w);
    w.u64(nextWalkId);
    w.u64(stats_.requests);
    w.u64(stats_.l1Hits);
    w.u64(stats_.l1Misses);
    w.u64(stats_.l1MshrMerges);
    w.u64(stats_.l1MshrFailures);
    w.u64(stats_.l2Accesses);
    w.u64(stats_.l2Hits);
    w.u64(stats_.l2Misses);
    w.u64(stats_.l2MshrMerges);
    w.u64(stats_.l2MshrFailures);
    w.u64(stats_.inTlbMshrAllocs);
    w.u64(stats_.walksCreated);
    w.u64(stats_.walksCompleted);
    w.u64(stats_.faults);
    w.u64(stats_.regularMshrPeak);
    w.u64(stats_.inTlbMshrPeak);
    w.latency(stats_.walkQueueDelay);
    w.latency(stats_.walkAccessLatency);
    w.latency(stats_.translationLatency);
    w.latency(stats_.ptReadLatency);
    // Per-tenant attribution (count pinned by the config digest).
    for (const TenantStats &ts : tenantStats_) {
        w.u64(ts.requests);
        w.u64(ts.l2Misses);
        w.u64(ts.walksCompleted);
        w.latency(ts.walkQueueDelay);
        w.latency(ts.translationLatency);
    }
    SW_ASSERT(walkBackend != nullptr, "checkpoint before backend install");
    walkBackend->saveState(w);
}

void
TranslationEngine::restoreState(CkptReader &r)
{
    r.expectSection("translation");
    for (auto &l1 : l1Arrays)
        l1.restoreState(r);
    l2Array.restoreState(r);
    if (subL2)
        subL2->restoreState(r);
    pwcCache.restoreState(r);
    faults_.restoreState(r);
    nextWalkId = r.u64();
    stats_.requests = r.u64();
    stats_.l1Hits = r.u64();
    stats_.l1Misses = r.u64();
    stats_.l1MshrMerges = r.u64();
    stats_.l1MshrFailures = r.u64();
    stats_.l2Accesses = r.u64();
    stats_.l2Hits = r.u64();
    stats_.l2Misses = r.u64();
    stats_.l2MshrMerges = r.u64();
    stats_.l2MshrFailures = r.u64();
    stats_.inTlbMshrAllocs = r.u64();
    stats_.walksCreated = r.u64();
    stats_.walksCompleted = r.u64();
    stats_.faults = r.u64();
    stats_.regularMshrPeak = r.u64();
    stats_.inTlbMshrPeak = r.u64();
    r.latency(stats_.walkQueueDelay);
    r.latency(stats_.walkAccessLatency);
    r.latency(stats_.translationLatency);
    r.latency(stats_.ptReadLatency);
    for (TenantStats &ts : tenantStats_) {
        ts.requests = r.u64();
        ts.l2Misses = r.u64();
        ts.walksCompleted = r.u64();
        r.latency(ts.walkQueueDelay);
        r.latency(ts.translationLatency);
    }
    SW_ASSERT(walkBackend != nullptr, "restore before backend install");
    walkBackend->restoreState(r);
}

void
TranslationEngine::shootdown(TranslationKey key)
{
    for (auto &l1 : l1Arrays)
        l1.invalidate(key);
    l2Invalidate(key);
}

void
TranslationEngine::flushAsid(Asid asid)
{
    for (auto &l1 : l1Arrays)
        l1.flushAsid(asid);
    if (subL2)
        subL2->flushAsid(asid);
    else
        l2Array.flushAsid(asid);
    pwcCache.flushAsid(asid);
}

void
TranslationEngine::resetStats()
{
    stats_ = Stats{};
    for (TenantStats &ts : tenantStats_)
        ts = TenantStats{};
    for (auto &l1 : l1Arrays)
        l1.resetStats();
    l2Array.resetStats();
    if (subL2)
        subL2->resetStats();
    pwcCache.resetStats();
    if (walkBackend)
        walkBackend->resetStats();
}

void
TranslationEngine::setTracer(TranslationTracer *tracer)
{
    tracer_ = tracer;
    if (walkBackend)
        walkBackend->setTracer(tracer);
}

void
TranslationEngine::registerStats(StatGroup root)
{
    for (SmId sm = 0; sm < cfg.numSms; ++sm) {
        l1Arrays[sm].registerStats(
            root.group(strprintf("sm%u", sm)).group("l1tlb"));
    }

    StatGroup l1 = root.group("l1tlb");
    l1.counter("hits", &stats_.l1Hits);
    l1.counter("misses", &stats_.l1Misses);
    l1.counter("mshr_merges", &stats_.l1MshrMerges);
    l1.counter("mshr_fail", &stats_.l1MshrFailures);

    StatGroup l2 = root.group("l2tlb");
    l2.counter("accesses", &stats_.l2Accesses);
    l2.counter("hits", &stats_.l2Hits);
    l2.counter("misses", &stats_.l2Misses);
    l2.counter("mshr_merges", &stats_.l2MshrMerges);
    l2.counter("mshr_fail", &stats_.l2MshrFailures);
    l2.counter("regular_mshr_peak", &stats_.regularMshrPeak);
    if (subL2)
        subL2->registerStats(l2.group("array"));
    else
        l2Array.registerStats(l2.group("array"));

    StatGroup intlb = l2.group("intlb_mshr");
    intlb.counter("allocs", &stats_.inTlbMshrAllocs);
    intlb.counter("peak", &stats_.inTlbMshrPeak);
    intlb.counter("alloc_fail", &l2Array.stats().pendingAllocFailures);
    intlb.gauge("occupancy",
                [this]() { return double(l2Array.pendingCount()); });

    StatGroup walks = root.group("walks");
    walks.counter("created", &stats_.walksCreated);
    walks.counter("completed", &stats_.walksCompleted);
    walks.counter("faults", &stats_.faults);
    walks.gauge("outstanding",
                [this]() { return double(outstanding.size()); });
    walks.latency("queue_delay", &stats_.walkQueueDelay);
    walks.latency("access_latency", &stats_.walkAccessLatency);
    walks.latency("pt_read_latency", &stats_.ptReadLatency);

    StatGroup trans = root.group("translation");
    trans.counter("requests", &stats_.requests);
    trans.latency("latency", &stats_.translationLatency);

    // Per-tenant attribution only when tenants exist: the single-tenant
    // registry keeps its exact pre-multi-tenant entry set.
    if (cfg.numTenants > 1) {
        for (Asid t = 0; t < cfg.numTenants; ++t) {
            StatGroup tenant = root.group(strprintf("tenant%u", t));
            TenantStats &ts = tenantStats_[t];
            tenant.counter("requests", &ts.requests);
            tenant.counter("l2_misses", &ts.l2Misses);
            tenant.counter("walks_completed", &ts.walksCompleted);
            tenant.latency("walk_queue_delay", &ts.walkQueueDelay);
            tenant.latency("translation_latency", &ts.translationLatency);
        }
    }

    pwcCache.registerStats(root.group("pwc"));
    faults_.registerStats(root.group("faults"));
    if (walkBackend)
        walkBackend->registerStats(root.group(walkBackend->name()));
}

void
TranslationEngine::registerAudits(Auditor &auditor)
{
    // Running pending counters never drift from an array recount.
    auditor.registerAudit(
        "vm.tlb.pending-count", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            auto check = [&ctx](const TlbArray &tlb) {
                std::uint32_t scanned = tlb.countPendingScan();
                if (tlb.pendingCount() != scanned) {
                    ctx.fail(strprintf(
                        "%s: pending counter %u != array scan %u",
                        tlb.name().c_str(), tlb.pendingCount(), scanned));
                }
            };
            check(l2Array);
            for (const auto &l1 : l1Arrays)
                check(l1);
        });

    // Every outstanding L2 miss holds exactly one miss-tracking slot:
    // a regular MSHR or an In-TLB MSHR (pending L2 TLB way), never both,
    // never neither.
    auditor.registerAudit(
        "vm.l2.mshr-conservation", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            std::uint64_t in_tlb = 0;
            for (TranslationKey key : sortedKeys(outstanding)) {
                const L2Track &track = outstanding.at(key);
                if (!track.inTlbSlot)
                    continue;
                ++in_tlb;
                if (!l2Array.hasPending(key)) {
                    ctx.fail(strprintf(
                        "outstanding In-TLB track for asid %u vpn %llu has "
                        "no pending L2 TLB way", key.asid,
                        static_cast<unsigned long long>(key.vpn)));
                }
            }
            std::uint64_t regular = outstanding.size() - in_tlb;
            if (regularMshrInUse != regular) {
                ctx.fail(strprintf(
                    "regular MSHRs in use (%u) != regular-slot tracks (%llu)",
                    regularMshrInUse,
                    static_cast<unsigned long long>(regular)));
            }
            if (l2Array.pendingCount() != in_tlb) {
                ctx.fail(strprintf(
                    "L2 TLB pending ways (%u) != In-TLB-slot tracks (%llu)",
                    l2Array.pendingCount(),
                    static_cast<unsigned long long>(in_tlb)));
            }
        });

    // The backend never holds more walks than the engine is tracking:
    // a completion must always find its tracker.
    auditor.registerAudit(
        "vm.l2.walks-vs-backend", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            if (!walkBackend)
                return;
            std::uint64_t backend_inflight = walkBackend->inFlight();
            if (backend_inflight > outstanding.size()) {
                ctx.fail(strprintf(
                    "backend '%s' has %llu walks in flight but only %zu "
                    "outstanding L2 misses are tracked",
                    walkBackend->name().c_str(),
                    static_cast<unsigned long long>(backend_inflight),
                    outstanding.size()));
            }
        });

    // Cross-ASID containment: every valid TLB translation must agree with
    // *its own* address space's page table.  A PFN that belongs to another
    // tenant (or to no mapping at all) is a containment breach.
    auditor.registerAudit(
        "vm.tlb.no-cross-asid-leak", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            auto check = [this, &ctx](const char *where, TranslationKey key,
                                      Pfn pfn) {
                if (key.asid >= spaces_.numSpaces()) {
                    ctx.fail(strprintf(
                        "%s: entry tagged with unknown ASID %u", where,
                        key.asid));
                    return;
                }
                const PageTableBase &pt = spaces_.tableFor(key.asid);
                if (!pt.isMapped(key.vpn) ||
                    pt.translate(key.vpn) != pfn) {
                    ctx.fail(strprintf(
                        "%s: asid %u vpn %llu caches pfn %llu, which is "
                        "not that address space's mapping", where,
                        key.asid,
                        static_cast<unsigned long long>(key.vpn),
                        static_cast<unsigned long long>(pfn)));
                }
            };
            for (const auto &l1 : l1Arrays) {
                l1.forEachValid([&](TranslationKey key, Pfn pfn) {
                    check(l1.name().c_str(), key, pfn);
                });
            }
            if (subL2) {
                subL2->forEachValid([&](TranslationKey key, Pfn pfn) {
                    check(subL2->name().c_str(), key, pfn);
                });
            } else {
                l2Array.forEachValid([&](TranslationKey key, Pfn pfn) {
                    check(l2Array.name().c_str(), key, pfn);
                });
            }
        });

    // Once the machine drains, every L2 TLB miss must have resolved: no
    // leaked In-TLB MSHR or pending entry, no parked requester, no MSHR
    // still charged.
    auditor.registerAudit(
        "vm.l2.no-leaked-miss", AuditScope::Quiescent,
        [this](AuditContext &ctx) {
            if (!outstanding.empty()) {
                ctx.fail(strprintf("%zu L2 misses never resolved",
                                   outstanding.size()));
            }
            if (!l2WaitQueue.empty()) {
                ctx.fail(strprintf("%zu requesters still parked at the "
                                   "L2 TLB", l2WaitQueue.size()));
            }
            if (regularMshrInUse != 0) {
                ctx.fail(strprintf("%u regular L2 MSHRs never released",
                                   regularMshrInUse));
            }
            if (l2Array.pendingCount() != 0) {
                ctx.fail(strprintf("%u In-TLB MSHR slots leaked",
                                   l2Array.pendingCount()));
            }
            for (SmId sm = 0; sm < SmId(l1Mshrs.size()); ++sm) {
                if (!l1Mshrs[sm].empty()) {
                    ctx.fail(strprintf("SM %u: %zu L1 MSHRs never resolved",
                                       sm, l1Mshrs[sm].size()));
                }
                if (!l1WaitQueues[sm].empty()) {
                    ctx.fail(strprintf(
                        "SM %u: %zu requests still parked at the L1 TLB",
                        sm, l1WaitQueues[sm].size()));
                }
            }
            if (walkBackend && walkBackend->inFlight() != 0) {
                ctx.fail(strprintf(
                    "backend '%s' still reports %llu walks in flight",
                    walkBackend->name().c_str(),
                    static_cast<unsigned long long>(
                        walkBackend->inFlight())));
            }
        });
}

void
TranslationEngine::ptAccess(PhysAddr addr, std::function<void()> done)
{
    if (cfg.fixedPtAccessLatency > 0) {
        stats_.ptReadLatency.add(cfg.fixedPtAccessLatency);
        eventq.scheduleIn(cfg.fixedPtAccessLatency, std::move(done));
        return;
    }
    MemAccess acc;
    acc.addr = addr;
    acc.write = false;
    acc.pte = true;
    acc.onDone = [this, start = eventq.now(),
                  done = std::move(done)]() {
        stats_.ptReadLatency.add(eventq.now() - start);
        done();
    };
    mem.access(std::move(acc));
}

} // namespace sw
