#include "vm/tlb.hh"

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace sw {

TlbArray::TlbArray(std::string name, std::uint32_t num_entries,
                   std::uint32_t num_ways)
    : name_(std::move(name)), ways(num_ways)
{
    SW_ASSERT(num_entries > 0 && num_ways > 0,
              "TLB must have entries and ways");
    SW_ASSERT(num_entries % num_ways == 0,
              "TLB entries (%u) not divisible by ways (%u)",
              num_entries, num_ways);
    sets = num_entries / num_ways;
    entries.resize(num_entries);
}

void
TlbArray::setWayPartition(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> slices)
{
    for (const auto &[first, count] : slices) {
        SW_ASSERT(count > 0 && first + count <= ways,
                  "%s: way slice [%u, +%u) outside %u ways",
                  name_.c_str(), first, count, ways);
    }
    waySlices = std::move(slices);
}

std::pair<std::uint32_t, std::uint32_t>
TlbArray::victimWays(Asid asid) const
{
    if (asid < waySlices.size())
        return waySlices[asid];
    return {0, ways};
}

TlbArray::Entry *
TlbArray::findValid(TranslationKey key)
{
    std::uint64_t set = setOf(key.vpn);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Valid && entry.vpn == key.vpn &&
            entry.asid == key.asid)
            return &entry;
    }
    return nullptr;
}

const TlbArray::Entry *
TlbArray::findValidConst(TranslationKey key) const
{
    std::uint64_t set = setOf(key.vpn);
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Valid && entry.vpn == key.vpn &&
            entry.asid == key.asid)
            return &entry;
    }
    return nullptr;
}

bool
TlbArray::lookup(TranslationKey key, Pfn &pfn)
{
    ++stats_.lookups;
    if (Entry *entry = findValid(key)) {
        ++stats_.hits;
        entry->lruTick = ++lruCounter;
        pfn = entry->pfn;
        return true;
    }
    return false;
}

bool
TlbArray::probe(TranslationKey key) const
{
    return findValidConst(key) != nullptr;
}

bool
TlbArray::fill(TranslationKey key, Pfn pfn)
{
    ++stats_.fills;
    std::uint64_t set = setOf(key.vpn);

    // Refresh an existing valid entry in place.
    if (Entry *entry = findValid(key)) {
        entry->pfn = pfn;
        entry->lruTick = ++lruCounter;
        return true;
    }

    auto [way0, waycount] = victimWays(key.asid);
    Entry *victim = nullptr;
    for (std::uint32_t w = way0; w < way0 + waycount; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Pending)
            continue;
        if (entry.state == EntryState::Invalid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruTick < victim->lruTick)
            victim = &entry;
    }
    if (!victim) {
        ++stats_.fillsSkipped;
        return false;
    }
    SW_AUDIT(victim->state != EntryState::Pending,
             "fill displaced an In-TLB MSHR slot in %s", name_.c_str());
    if (victim->state == EntryState::Valid)
        ++stats_.evictions;
    victim->state = EntryState::Valid;
    victim->asid = key.asid;
    victim->vpn = key.vpn;
    victim->pfn = pfn;
    victim->lruTick = ++lruCounter;
    return true;
}

bool
TlbArray::allocPending(TranslationKey key)
{
    std::uint64_t set = setOf(key.vpn);

    // Same-tag pending reservation: merge onto the existing slot (§4.5
    // "we allow the In-TLB MSHR to reserve the same tag in a set index").
    for (std::uint32_t w = 0; w < ways; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Pending && entry.vpn == key.vpn &&
            entry.asid == key.asid)
            return true;
    }

    auto [way0, waycount] = victimWays(key.asid);
    Entry *victim = nullptr;
    for (std::uint32_t w = way0; w < way0 + waycount; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Pending)
            continue;
        if (entry.state == EntryState::Invalid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruTick < victim->lruTick)
            victim = &entry;
    }
    if (!victim) {
        ++stats_.pendingAllocFailures;
        return false;
    }
    if (victim->state == EntryState::Valid)
        ++stats_.pendingEvictedValid;
    victim->state = EntryState::Pending;
    victim->asid = key.asid;
    victim->vpn = key.vpn;
    victim->pfn = 0;
    victim->lruTick = ++lruCounter;
    ++numPending;
    ++stats_.pendingAllocs;
    return true;
}

std::uint32_t
TlbArray::countPendingScan() const
{
    std::uint32_t count = 0;
    for (const auto &entry : entries)
        if (entry.state == EntryState::Pending)
            ++count;
    return count;
}

bool
TlbArray::hasPending(TranslationKey key) const
{
    std::uint64_t set = setOf(key.vpn);
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Pending && entry.vpn == key.vpn &&
            entry.asid == key.asid)
            return true;
    }
    return false;
}

void
TlbArray::clearPending(TranslationKey key)
{
    std::uint64_t set = setOf(key.vpn);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.state == EntryState::Pending && entry.vpn == key.vpn &&
            entry.asid == key.asid) {
            entry.state = EntryState::Invalid;
            SW_ASSERT(numPending > 0, "pending underflow");
            --numPending;
        }
    }
    SW_AUDIT(numPending == countPendingScan(),
             "%s: pending counter %u diverged from array scan %u",
             name_.c_str(), numPending, countPendingScan());
}

void
TlbArray::invalidate(TranslationKey key)
{
    if (Entry *entry = findValid(key))
        entry->state = EntryState::Invalid;
}

void
TlbArray::flushAsid(Asid asid)
{
    for (auto &entry : entries) {
        if (entry.state == EntryState::Valid && entry.asid == asid)
            entry.state = EntryState::Invalid;
    }
}

void
TlbArray::flush()
{
    for (auto &entry : entries)
        entry = Entry{};
    numPending = 0;
}

void
TlbArray::registerStats(StatGroup group)
{
    group.counter("lookups", &stats_.lookups);
    group.counter("hits", &stats_.hits);
    group.counter("fills", &stats_.fills);
    group.counter("evictions", &stats_.evictions);
    group.counter("fills_skipped", &stats_.fillsSkipped);
    group.counter("pending_allocs", &stats_.pendingAllocs);
    group.counter("pending_alloc_fail", &stats_.pendingAllocFailures);
    group.counter("pending_evicted_valid", &stats_.pendingEvictedValid);
    group.gauge("misses",
                [this]() { return double(stats_.lookups - stats_.hits); });
    group.gauge("hit_rate", [this]() { return stats_.hitRate(); });
    group.gauge("pending", [this]() { return double(numPending); });
}

void
TlbArray::saveState(CkptWriter &w) const
{
    w.section("tlb");
    w.str(name_);
    w.u32(std::uint32_t(entries.size()));
    for (const Entry &entry : entries) {
        w.u8(std::uint8_t(entry.state));
        w.u32(entry.asid);
        w.u64(entry.vpn);
        w.u64(entry.pfn);
        w.u64(entry.lruTick);
    }
    w.u64(lruCounter);
    w.u32(numPending);
    w.u64(stats_.lookups);
    w.u64(stats_.hits);
    w.u64(stats_.fills);
    w.u64(stats_.evictions);
    w.u64(stats_.fillsSkipped);
    w.u64(stats_.pendingAllocs);
    w.u64(stats_.pendingAllocFailures);
    w.u64(stats_.pendingEvictedValid);
}

void
TlbArray::restoreState(CkptReader &r)
{
    r.expectSection("tlb");
    std::string saved_name = r.str();
    if (saved_name != name_) {
        fatal("checkpoint TLB \"%s\" restored into \"%s\"",
              saved_name.c_str(), name_.c_str());
    }
    std::uint32_t n = r.u32();
    if (n != entries.size()) {
        fatal("checkpoint TLB \"%s\" has %u entries, this config has %zu",
              name_.c_str(), n, entries.size());
    }
    for (Entry &entry : entries) {
        std::uint8_t state = r.u8();
        if (state > std::uint8_t(EntryState::Pending))
            fatal("checkpoint TLB entry state %u out of range", state);
        entry.state = EntryState(state);
        entry.asid = r.u32();
        entry.vpn = r.u64();
        entry.pfn = r.u64();
        entry.lruTick = r.u64();
    }
    lruCounter = r.u64();
    numPending = r.u32();
    stats_.lookups = r.u64();
    stats_.hits = r.u64();
    stats_.fills = r.u64();
    stats_.evictions = r.u64();
    stats_.fillsSkipped = r.u64();
    stats_.pendingAllocs = r.u64();
    stats_.pendingAllocFailures = r.u64();
    stats_.pendingEvictedValid = r.u64();
    if (numPending != countPendingScan())
        fatal("checkpoint TLB \"%s\" pending counter disagrees with the "
              "restored array", name_.c_str());
}

} // namespace sw
