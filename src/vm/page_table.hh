/**
 * @file
 * Simulated page tables: the walker protocol shared by the radix and hashed
 * organisations, plus the four-level radix implementation and the physical
 * frame allocator behind both.
 *
 * Tables are materialised at concrete simulated physical addresses so that
 * walkers (hardware PTWs and PW Warps alike) generate real memory traffic
 * through the L2 cache and DRAM — the paper measures page-table access
 * latency dynamically through the memory model, and so do we.
 */

#ifndef SW_VM_PAGE_TABLE_HH
#define SW_VM_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "vm/address.hh"

namespace sw {

class CkptWriter;
class CkptReader;

/** Size of one page-table entry in simulated memory. */
inline constexpr std::uint64_t kPteBytes = 8;

/**
 * Bump allocator for simulated physical memory.
 *
 * Hands out data frames and page-table node storage from disjoint regions;
 * no freeing (kernels in this simulator run to completion).
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint64_t page_bytes);

    /** Allocate one data page; returns its PFN. */
    Pfn allocDataFrame();

    /** Allocate @p bytes of page-table storage; returns its base address. */
    PhysAddr allocTable(std::uint64_t bytes);

    std::uint64_t dataFramesAllocated() const { return dataFrames; }
    std::uint64_t tableBytesAllocated() const { return tableBytes; }

    /** Serialise the allocation cursors into a checkpoint. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); page size must match. */
    void restoreState(CkptReader &r);

  private:
    std::uint64_t pageBytes;
    std::uint64_t dataFrames = 0;
    PhysAddr dataCursor;
    PhysAddr tableCursor;
    std::uint64_t tableBytes = 0;
};

/**
 * Walker-visible cursor over an in-progress page walk.
 *
 * A walk is a sequence of (read PTE at pteAddr, advance) steps; the page
 * table implementation interprets the cursor.  level counts down to 1 (the
 * leaf); done/fault/pfn are the terminal outputs.
 */
struct WalkCursor
{
    Vpn vpn = 0;
    int level = 0;          ///< level whose entry is read next (top..1)
    PhysAddr tableBase = 0; ///< base address of the current-level table
    bool done = false;
    bool fault = false;
    Pfn pfn = 0;
};

/** Common interface for the radix and hashed page tables. */
class PageTableBase
{
  public:
    virtual ~PageTableBase() = default;

    // ---- OS side -------------------------------------------------------
    /** Map @p vpn (idempotent), allocating frames/tables on demand. */
    virtual Pfn ensureMapped(Vpn vpn) = 0;

    /** True if a translation exists. */
    virtual bool isMapped(Vpn vpn) const = 0;

    /** Functional translation (tests / reference model). */
    virtual Pfn translate(Vpn vpn) const = 0;

    // ---- Walker protocol -------------------------------------------------
    /** Begin a walk from the root. */
    virtual WalkCursor startWalk(Vpn vpn) const = 0;

    /** Resume from a page-walk-cache hit at @p level with @p base. */
    virtual WalkCursor resumeWalk(Vpn vpn, int level,
                                  PhysAddr base) const = 0;

    /** Physical address of the PTE the cursor reads next. */
    virtual PhysAddr pteAddr(const WalkCursor &cur) const = 0;

    /** Consume the PTE read: descend a level or terminate the cursor. */
    virtual void advance(WalkCursor &cur) const = 0;

    /** Topmost level number (== number of levels). */
    virtual int topLevel() const = 0;

    /** Whether walks through this table can use the page walk cache. */
    virtual bool usesPwc() const { return topLevel() > 1; }

    /**
     * Key prefix identifying the level-@p level table that @p vpn walks
     * through (used as the PWC tag).  Only meaningful when usesPwc().
     */
    virtual std::uint64_t pwcPrefix(int level, Vpn vpn) const = 0;

    /** Total simulated memory reads a full (uncached) walk performs. */
    virtual int walkReads(Vpn vpn) const = 0;

    // ---- Checkpointing ---------------------------------------------------
    /** Serialise all mappings into a checkpoint. */
    virtual void saveState(CkptWriter &w) const = 0;

    /** Restore mappings saved by saveState(); geometry must match. */
    virtual void restoreState(CkptReader &r) = 0;
};

/**
 * Multi-level radix page table (four levels for 64 KB pages, three for
 * 2 MB pages — §2.1, Table 3).
 */
class RadixPageTable : public PageTableBase
{
  public:
    /**
     * @param geom page geometry (determines VPN width and level split)
     * @param alloc frame allocator owning simulated physical memory
     */
    RadixPageTable(const PageGeometry &geom, FrameAllocator &alloc);

    Pfn ensureMapped(Vpn vpn) override;
    bool isMapped(Vpn vpn) const override;
    Pfn translate(Vpn vpn) const override;

    WalkCursor startWalk(Vpn vpn) const override;
    WalkCursor resumeWalk(Vpn vpn, int level, PhysAddr base) const override;
    PhysAddr pteAddr(const WalkCursor &cur) const override;
    void advance(WalkCursor &cur) const override;
    int topLevel() const override { return int(levelBits.size()) - 1; }
    std::uint64_t pwcPrefix(int level, Vpn vpn) const override;
    int walkReads(Vpn) const override { return topLevel(); }

    /** Radix index of @p vpn at @p level. */
    std::uint64_t levelIndex(int level, Vpn vpn) const;

    /** VPN bits consumed by levels strictly below @p level. */
    unsigned bitsBelow(int level) const;

    std::uint64_t nodesAllocated() const { return nodes.size(); }

    void saveState(CkptWriter &w) const override;
    void restoreState(CkptReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        bool leaf = false;
        std::uint64_t next = 0;   ///< next table base, or PFN when leaf
    };

    struct Node
    {
        PhysAddr base = 0;
        std::vector<Entry> entries;
    };

    Node &nodeAt(PhysAddr base);
    const Node *findNode(PhysAddr base) const;
    PhysAddr allocNode(int level);

    PageGeometry geometry;
    FrameAllocator &allocator;
    std::vector<unsigned> levelBits;  ///< index 0 unused; [1..top]
    PhysAddr root;
    std::unordered_map<PhysAddr, std::unique_ptr<Node>> nodes;
};

} // namespace sw

#endif // SW_VM_PAGE_TABLE_HH
