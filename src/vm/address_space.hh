/**
 * @file
 * Per-ASID page tables over one shared frame allocator.
 *
 * Each tenant owns a private page table (its address space); physical
 * frames come from the single machine-wide FrameAllocator, so tenants
 * compete for — and can never alias — physical memory.  ASID 0 is the
 * only space of a single-tenant machine and tableFor(0) is exactly the
 * page table the pre-multi-tenant GPU constructed, allocated in the same
 * order from the same allocator (fingerprint compatibility).
 */

#ifndef SW_VM_ADDRESS_SPACE_HH
#define SW_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace sw {

class CkptWriter;
class CkptReader;

/** Owns one PageTableBase per tenant; all share @p alloc. */
class AddressSpaceManager
{
  public:
    AddressSpaceManager(const GpuConfig &cfg, FrameAllocator &alloc);

    AddressSpaceManager(const AddressSpaceManager &) = delete;
    AddressSpaceManager &operator=(const AddressSpaceManager &) = delete;

    PageTableBase &
    tableFor(Asid asid)
    {
        return *tables.at(asid);
    }

    const PageTableBase &
    tableFor(Asid asid) const
    {
        return *tables.at(asid);
    }

    std::uint32_t numSpaces() const { return std::uint32_t(tables.size()); }

    /** Serialise every address space (count + per-ASID tables). */
    void saveState(CkptWriter &w) const;

    /** Restore; fatal() if the checkpoint's space count disagrees. */
    void restoreState(CkptReader &r);

  private:
    std::vector<std::unique_ptr<PageTableBase>> tables;
};

} // namespace sw

#endif // SW_VM_ADDRESS_SPACE_HH
