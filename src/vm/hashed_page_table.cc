#include "vm/hashed_page_table.hh"

#include <bit>

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"

namespace sw {

HashedPageTable::HashedPageTable(const PageGeometry &geom,
                                 FrameAllocator &alloc, std::uint64_t nslots)
    : geometry(geom), allocator(alloc), numSlots(nslots)
{
    SW_ASSERT(std::has_single_bit(numSlots),
              "hash table slots must be a power of two");
    tableBase = allocator.allocTable(numSlots * kSlotBytes);
    slots.resize(numSlots);
}

std::uint64_t
HashedPageTable::hashVpn(Vpn vpn) const
{
    // Fibonacci hashing: cheap and well distributed for sequential VPNs.
    return (vpn * 0x9e3779b97f4a7c15ULL) >> (64 - std::countr_zero(numSlots));
}

Pfn
HashedPageTable::ensureMapped(Vpn vpn)
{
    std::uint64_t idx = hashVpn(vpn);
    for (std::uint64_t probe = 0; probe < numSlots; ++probe) {
        Slot &slot = slots[(idx + probe) & (numSlots - 1)];
        if (slot.used && slot.vpn == vpn)
            return slot.pfn;
        if (!slot.used) {
            slot.used = true;
            slot.vpn = vpn;
            slot.pfn = allocator.allocDataFrame();
            ++usedSlots;
            if (probe > 0)
                ++collisionCount;
            return slot.pfn;
        }
    }
    fatal("hashed page table full (%llu slots)",
          static_cast<unsigned long long>(numSlots));
}

bool
HashedPageTable::isMapped(Vpn vpn) const
{
    std::uint64_t idx = hashVpn(vpn);
    for (std::uint64_t probe = 0; probe < numSlots; ++probe) {
        const Slot &slot = slots[(idx + probe) & (numSlots - 1)];
        if (!slot.used)
            return false;
        if (slot.vpn == vpn)
            return true;
    }
    return false;
}

Pfn
HashedPageTable::translate(Vpn vpn) const
{
    std::uint64_t idx = hashVpn(vpn);
    for (std::uint64_t probe = 0; probe < numSlots; ++probe) {
        const Slot &slot = slots[(idx + probe) & (numSlots - 1)];
        SW_ASSERT(slot.used, "translate() on unmapped VPN");
        if (slot.vpn == vpn)
            return slot.pfn;
    }
    panic("translate() fell off the hash table");
}

WalkCursor
HashedPageTable::startWalk(Vpn vpn) const
{
    WalkCursor cur;
    cur.vpn = vpn;
    cur.level = 1;
    cur.tableBase = 0;   // probe counter lives in tableBase
    return cur;
}

WalkCursor
HashedPageTable::resumeWalk(Vpn vpn, int, PhysAddr) const
{
    return startWalk(vpn);
}

std::uint64_t
HashedPageTable::probeOf(const WalkCursor &cur) const
{
    return cur.tableBase;   // linear-probe distance so far
}

PhysAddr
HashedPageTable::pteAddr(const WalkCursor &cur) const
{
    SW_ASSERT(!cur.done, "pteAddr on a finished walk");
    std::uint64_t idx = (hashVpn(cur.vpn) + probeOf(cur)) & (numSlots - 1);
    return tableBase + idx * kSlotBytes;
}

void
HashedPageTable::advance(WalkCursor &cur) const
{
    SW_ASSERT(!cur.done, "advance on a finished walk");
    std::uint64_t idx = (hashVpn(cur.vpn) + probeOf(cur)) & (numSlots - 1);
    const Slot &slot = slots[idx];
    if (!slot.used) {
        cur.done = true;
        cur.fault = true;
        return;
    }
    if (slot.vpn == cur.vpn) {
        cur.done = true;
        cur.pfn = slot.pfn;
        return;
    }
    // Collision: continue the probe chain with another memory read.
    ++cur.tableBase;
    if (cur.tableBase >= numSlots) {
        cur.done = true;
        cur.fault = true;
    }
}

int
HashedPageTable::walkReads(Vpn vpn) const
{
    std::uint64_t idx = hashVpn(vpn);
    for (std::uint64_t probe = 0; probe < numSlots; ++probe) {
        const Slot &slot = slots[(idx + probe) & (numSlots - 1)];
        if (!slot.used || slot.vpn == vpn)
            return int(probe) + 1;
    }
    return int(numSlots);
}

double
HashedPageTable::loadFactor() const
{
    return double(usedSlots) / double(numSlots);
}

void
HashedPageTable::saveState(CkptWriter &w) const
{
    w.section("hashed_pt");
    w.u64(numSlots);
    w.u64(tableBase);
    w.u64(usedSlots);
    w.u64(collisionCount);
    w.u64(usedSlots);   // element count of the sparse slot list below
    for (std::uint64_t i = 0; i < numSlots; ++i) {
        const Slot &slot = slots[i];
        if (!slot.used)
            continue;
        w.u64(i);
        w.u64(slot.vpn);
        w.u64(slot.pfn);
    }
}

void
HashedPageTable::restoreState(CkptReader &r)
{
    r.expectSection("hashed_pt");
    std::uint64_t n = r.u64();
    if (n != numSlots) {
        fatal("checkpoint hashed page table has %llu slots, this config "
              "has %llu", static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(numSlots));
    }
    tableBase = r.u64();
    usedSlots = r.u64();
    collisionCount = r.u64();
    std::uint64_t used = r.count(24, "hashed page-table slots");
    if (used != usedSlots)
        fatal("checkpoint hashed page table slot list disagrees with its "
              "used counter");
    for (auto &slot : slots)
        slot = Slot{};
    for (std::uint64_t i = 0; i < used; ++i) {
        std::uint64_t idx = r.u64();
        if (idx >= numSlots)
            fatal("checkpoint hashed page-table slot index out of range");
        Slot &slot = slots[idx];
        if (slot.used)
            fatal("checkpoint hashed page-table slot duplicated");
        slot.used = true;
        slot.vpn = r.u64();
        slot.pfn = r.u64();
    }
}

} // namespace sw
