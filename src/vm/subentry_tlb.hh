/**
 * @file
 * Sub-entry-sharing L2 TLB (the MIG TLB of Li et al., PAPERS.md).
 *
 * Each tag entry covers a naturally aligned group of K = l2SubEntries
 * consecutive pages: the tag stores the group base (vpn >> log2(K)) and K
 * sub-slots each hold one page's translation.  Spatially contiguous
 * workloads reach K pages per tag, multiplying effective capacity without
 * growing the tag store.
 *
 * In *sharing* mode the tag matches on the group base alone and each
 * sub-slot carries its own ASID, so co-resident tenants whose VPN ranges
 * alias (typical — every address space starts near VA 0) populate
 * different sub-slots of the *same* tag entry instead of duplicating the
 * tag per tenant.  Under MIG way partitioning, victim (tag) allocation is
 * still confined to the allocating tenant's way slice, but sub-fills into
 * an existing tag land regardless of which tenant allocated it — that is
 * the capacity benefit the baseline is meant to show.
 *
 * The pending-entry (In-TLB MSHR) protocol is defined on whole entries
 * and is not supported here; GpuConfig::validate() enforces the
 * exclusion, and the engine routes misses through the regular MSHRs.
 */

#ifndef SW_VM_SUBENTRY_TLB_HH
#define SW_VM_SUBENTRY_TLB_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "vm/address.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/** Sectored TLB: one tag per K-page group, K per-page sub-slots. */
class SubEntryTlb
{
  public:
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t fills = 0;
        std::uint64_t evictions = 0;   ///< valid tag entries displaced
        std::uint64_t tagAllocs = 0;   ///< fills that claimed a new tag
        /** Hits/fills landing in a tag another tenant allocated. */
        std::uint64_t sharedHits = 0;
        std::uint64_t sharedFills = 0;

        double
        hitRate() const
        {
            return lookups ? double(hits) / double(lookups) : 0.0;
        }
    };

    /**
     * @param translations total translation capacity (pages, not tags);
     *        the tag store holds translations / sub_entries entries.
     * @param shared cross-tenant sub-entry sharing (base-only tag match).
     */
    SubEntryTlb(std::string name, std::uint32_t translations,
                std::uint32_t ways, std::uint32_t sub_entries, bool shared);

    /** Confine tag-victim selection per ASID (MIG way slices). */
    void setWayPartition(
        std::vector<std::pair<std::uint32_t, std::uint32_t>> slices);

    /** Look up a translation; updates LRU on hit. */
    bool lookup(TranslationKey key, Pfn &pfn);

    /** Tag+sub probe without LRU side effects. */
    bool probe(TranslationKey key) const;

    /** Install a translation; allocates a tag entry when none matches. */
    void fill(TranslationKey key, Pfn pfn);

    /** Invalidate one translation (TLB shootdown). */
    void invalidate(TranslationKey key);

    /** Drop every sub-slot belonging to @p asid. */
    void flushAsid(Asid asid);

    /** Drop everything. */
    void flush();

    std::uint32_t numTags() const { return std::uint32_t(entries.size()); }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t subEntries() const { return subs; }
    bool sharing() const { return shared_; }

    /**
     * Invoke @p fn for every valid translation (cross-ASID containment
     * audit); never called on the hot path.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const Entry &entry : entries) {
            if (!entry.valid)
                continue;
            for (std::uint32_t s = 0; s < subs; ++s) {
                const Sub &sub = entry.slots[s];
                if (sub.valid)
                    fn(TranslationKey{sub.asid, entry.base * subs + s},
                       sub.pfn);
            }
        }
    }

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats() { stats_ = Stats{}; }

    /** Register the array's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Serialise tags + sub-slots + LRU clock + counters. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(CkptReader &r);

  private:
    struct Sub
    {
        bool valid = false;
        Asid asid = 0;
        Pfn pfn = 0;
    };

    struct Entry
    {
        bool valid = false;          ///< any sub-slot valid
        Asid asid = 0;               ///< allocating tenant (way accounting)
        std::uint64_t base = 0;      ///< vpn >> log2(subs)
        std::uint64_t lruTick = 0;
        std::vector<Sub> slots;
    };

    std::uint64_t baseOf(Vpn vpn) const { return vpn / subs; }
    std::uint32_t subOf(Vpn vpn) const { return std::uint32_t(vpn % subs); }
    std::uint64_t setOf(std::uint64_t base) const { return base % sets; }
    /** Tag entry matching @p key's group, or nullptr. */
    Entry *findTag(TranslationKey key);
    const Entry *findTagConst(TranslationKey key) const;
    std::pair<std::uint32_t, std::uint32_t> victimWays(Asid asid) const;

    std::string name_;
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint32_t subs;
    bool shared_;
    std::vector<Entry> entries;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> waySlices;
    std::uint64_t lruCounter = 0;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_SUBENTRY_TLB_HH
