/**
 * @file
 * Walk-backend abstraction: the contract between the L2 TLB miss path and
 * whatever resolves walks — the hardware PTW pool, the SoftWalker, or the
 * hybrid of both.
 */

#ifndef SW_VM_WALK_HH
#define SW_VM_WALK_HH

#include <cstdint>
#include <functional>
#include <string>

#include "obs/stat_registry.hh"
#include "sim/types.hh"
#include "vm/address.hh"
#include "vm/page_table.hh"

namespace sw {

class Auditor;
class TimeSeriesSampler;
class TranslationTracer;

/** One outstanding page-table walk. */
struct WalkRequest
{
    std::uint64_t id = 0;
    TranslationKey key;     ///< {asid, vpn} this walk resolves
    WalkCursor cursor;      ///< start point (after the PWC consult)
    Cycle created = 0;      ///< cycle the L2 TLB miss spawned the walk
};

/** Terminal outcome of a walk, with the paper's latency split (§3.2). */
struct WalkResult
{
    std::uint64_t id = 0;
    TranslationKey key;
    Pfn pfn = 0;
    bool fault = false;
    Cycle queueDelay = 0;    ///< created -> picked up by a walker
    Cycle accessLatency = 0; ///< picked up -> completed
};

/** Invoked by a backend when a walk finishes. */
using WalkCompleteFn = std::function<void(const WalkResult &)>;

/**
 * Issues one page-table memory read; the engine routes it to the PTE path
 * of the memory hierarchy (or a fixed latency in sensitivity sweeps).
 */
using PtAccessFn = std::function<void(PhysAddr, std::function<void()>)>;

/** Resolver of page-table walks behind the L2 TLB. */
class WalkBackend
{
  public:
    virtual ~WalkBackend() = default;

    /** Accept a walk; completion arrives via the WalkCompleteFn. */
    virtual void submit(WalkRequest req) = 0;

    /** Number of walks accepted but not yet completed. */
    virtual std::uint64_t inFlight() const = 0;

    virtual std::string name() const = 0;

    /** Zero the statistics (post-warmup measurement reset). */
    virtual void resetStats() = 0;

    /**
     * Register this backend's conservation audits (slot lifecycle,
     * in-flight accounting) with the Simulation Auditor.  Default: none.
     */
    virtual void registerAudits(Auditor &auditor) { (void)auditor; }

    /**
     * Install a TranslationTracer (nullptr detaches); backends stamp
     * WalkDispatch / PtRead through it.  Default: ignore.
     */
    virtual void setTracer(TranslationTracer *tracer) { (void)tracer; }

    /**
     * Register this backend's counters with the unified stat registry
     * under @p group's prefix ("ptw." / "softwalker.").  Default: none.
     */
    virtual void registerStats(StatGroup group) { (void)group; }

    /**
     * Register backend-specific time-series gauges (walker occupancy,
     * queue depth) with @p sampler.  Default: none.
     */
    virtual void registerGauges(TimeSeriesSampler &sampler)
    {
        (void)sampler;
    }

    /**
     * Serialise backend state into a checkpoint.  Called only at a
     * quiesced tick (no walks in flight); backends with no durable state
     * beyond statistics may keep the default no-op.
     */
    virtual void saveState(CkptWriter &w) const { (void)w; }

    /** Restore state saved by saveState(). */
    virtual void restoreState(CkptReader &r) { (void)r; }
};

} // namespace sw

#endif // SW_VM_WALK_HH
