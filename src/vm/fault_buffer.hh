/**
 * @file
 * Fault Buffer: the target of the FFB instruction (Table 2).
 *
 * When a walker (hardware or PW Warp) loads an invalid PTE it logs the
 * faulting VPN here; the UVM-style driver drains the buffer, maps the page,
 * and the walk is replayed (§5.5).
 */

#ifndef SW_VM_FAULT_BUFFER_HH
#define SW_VM_FAULT_BUFFER_HH

#include <cstdint>
#include <deque>

#include "obs/stat_registry.hh"
#include "sim/types.hh"

namespace sw {

/** Bounded log of pending page faults. */
class FaultBuffer
{
  public:
    struct Record
    {
        Vpn vpn;
        int level;       ///< page-table level at which the walk faulted
        Cycle when;
    };

    struct Stats
    {
        std::uint64_t recorded = 0;
        std::uint64_t drained = 0;
        std::uint64_t overflows = 0;
    };

    explicit FaultBuffer(std::size_t capacity = 64) : capacity_(capacity) {}

    /** Log a fault (FFB). @retval false if the buffer is full. */
    bool
    record(Vpn vpn, int level, Cycle when)
    {
        if (records.size() >= capacity_) {
            ++stats_.overflows;
            return false;
        }
        records.push_back({vpn, level, when});
        ++stats_.recorded;
        return true;
    }

    bool empty() const { return records.empty(); }
    std::size_t size() const { return records.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Driver side: pop the oldest fault. */
    Record
    pop()
    {
        Record record = records.front();
        records.pop_front();
        ++stats_.drained;
        return record;
    }

    const Stats &stats() const { return stats_; }

    /** Register the buffer's counters with the unified stat registry. */
    void
    registerStats(StatGroup group)
    {
        group.counter("recorded", &stats_.recorded);
        group.counter("drained", &stats_.drained);
        group.counter("overflows", &stats_.overflows);
        group.gauge("pending", [this]() { return double(records.size()); });
    }

  private:
    std::size_t capacity_;
    std::deque<Record> records;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_FAULT_BUFFER_HH
