/**
 * @file
 * Fault Buffer: the target of the FFB instruction (Table 2).
 *
 * When a walker (hardware or PW Warp) loads an invalid PTE it logs the
 * faulting VPN here; the UVM-style driver drains the buffer, maps the page,
 * and the walk is replayed (§5.5).
 */

#ifndef SW_VM_FAULT_BUFFER_HH
#define SW_VM_FAULT_BUFFER_HH

#include <cstdint>
#include <deque>

#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/types.hh"
#include "vm/address.hh"

namespace sw {

/** Bounded log of pending page faults. */
class FaultBuffer
{
  public:
    struct Record
    {
        TranslationKey key;  ///< faulting {asid, vpn}
        int level;           ///< page-table level at which the walk faulted
        Cycle when;
    };

    struct Stats
    {
        std::uint64_t recorded = 0;
        std::uint64_t drained = 0;
        std::uint64_t overflows = 0;
    };

    explicit FaultBuffer(std::size_t capacity = 64) : capacity_(capacity) {}

    /** Log a fault (FFB). @retval false if the buffer is full. */
    bool
    record(TranslationKey key, int level, Cycle when)
    {
        if (records.size() >= capacity_) {
            ++stats_.overflows;
            return false;
        }
        records.push_back({key, level, when});
        ++stats_.recorded;
        return true;
    }

    bool empty() const { return records.empty(); }
    std::size_t size() const { return records.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Driver side: pop the oldest fault. */
    Record
    pop()
    {
        Record record = records.front();
        records.pop_front();
        ++stats_.drained;
        return record;
    }

    const Stats &stats() const { return stats_; }

    /** Register the buffer's counters with the unified stat registry. */
    void
    registerStats(StatGroup group)
    {
        group.counter("recorded", &stats_.recorded);
        group.counter("drained", &stats_.drained);
        group.counter("overflows", &stats_.overflows);
        group.gauge("pending", [this]() { return double(records.size()); });
    }

    /** Serialise pending records + counters into a checkpoint. */
    void
    saveState(CkptWriter &w) const
    {
        w.section("fault_buffer");
        w.u64(capacity_);
        w.u64(records.size());
        for (const Record &record : records) {
            w.u32(record.key.asid);
            w.u64(record.key.vpn);
            w.u32(std::uint32_t(record.level));
            w.u64(record.when);
        }
        w.u64(stats_.recorded);
        w.u64(stats_.drained);
        w.u64(stats_.overflows);
    }

    /** Restore state saved by saveState(); capacity must match. */
    void
    restoreState(CkptReader &r)
    {
        r.expectSection("fault_buffer");
        std::uint64_t cap = r.u64();
        if (cap != capacity_) {
            fatal("checkpoint fault buffer capacity %llu != configured %zu",
                  static_cast<unsigned long long>(cap), capacity_);
        }
        std::uint64_t n = r.count(20, "fault records");
        if (n > capacity_)
            fatal("checkpoint fault buffer holds more records than fit");
        records.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Record record;
            record.key.asid = r.u32();
            record.key.vpn = r.u64();
            record.level = int(r.u32());
            record.when = r.u64();
            records.push_back(record);
        }
        stats_.recorded = r.u64();
        stats_.drained = r.u64();
        stats_.overflows = r.u64();
    }

  private:
    std::size_t capacity_;
    std::deque<Record> records;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_FAULT_BUFFER_HH
