#include "vm/subentry_tlb.hh"

#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace sw {

SubEntryTlb::SubEntryTlb(std::string name, std::uint32_t translations,
                         std::uint32_t num_ways, std::uint32_t sub_entries,
                         bool shared)
    : name_(std::move(name)), ways(num_ways), subs(sub_entries),
      shared_(shared)
{
    SW_ASSERT(sub_entries > 1, "use TlbArray for one sub-entry per tag");
    SW_ASSERT(translations % (sub_entries * num_ways) == 0,
              "%u translations not divisible by subs*ways (%u*%u)",
              translations, sub_entries, num_ways);
    std::uint32_t tags = translations / sub_entries;
    sets = tags / ways;
    entries.resize(tags);
    for (Entry &entry : entries)
        entry.slots.resize(subs);
}

void
SubEntryTlb::setWayPartition(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> slices)
{
    for (const auto &[first, count] : slices) {
        SW_ASSERT(count > 0 && first + count <= ways,
                  "%s: way slice [%u, +%u) outside %u ways",
                  name_.c_str(), first, count, ways);
    }
    waySlices = std::move(slices);
}

std::pair<std::uint32_t, std::uint32_t>
SubEntryTlb::victimWays(Asid asid) const
{
    if (asid < waySlices.size())
        return waySlices[asid];
    return {0, ways};
}

SubEntryTlb::Entry *
SubEntryTlb::findTag(TranslationKey key)
{
    std::uint64_t base = baseOf(key.vpn);
    std::uint64_t set = setOf(base);
    for (std::uint32_t w = 0; w < ways; ++w) {
        Entry &entry = entries[set * ways + w];
        if (entry.valid && entry.base == base &&
            (shared_ || entry.asid == key.asid))
            return &entry;
    }
    return nullptr;
}

const SubEntryTlb::Entry *
SubEntryTlb::findTagConst(TranslationKey key) const
{
    std::uint64_t base = baseOf(key.vpn);
    std::uint64_t set = setOf(base);
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Entry &entry = entries[set * ways + w];
        if (entry.valid && entry.base == base &&
            (shared_ || entry.asid == key.asid))
            return &entry;
    }
    return nullptr;
}

bool
SubEntryTlb::lookup(TranslationKey key, Pfn &pfn)
{
    ++stats_.lookups;
    Entry *entry = findTag(key);
    if (!entry)
        return false;
    Sub &sub = entry->slots[subOf(key.vpn)];
    if (!sub.valid || sub.asid != key.asid)
        return false;
    ++stats_.hits;
    if (entry->asid != key.asid)
        ++stats_.sharedHits;
    entry->lruTick = ++lruCounter;
    pfn = sub.pfn;
    return true;
}

bool
SubEntryTlb::probe(TranslationKey key) const
{
    const Entry *entry = findTagConst(key);
    if (!entry)
        return false;
    const Sub &sub = entry->slots[subOf(key.vpn)];
    return sub.valid && sub.asid == key.asid;
}

void
SubEntryTlb::fill(TranslationKey key, Pfn pfn)
{
    ++stats_.fills;
    if (Entry *entry = findTag(key)) {
        // Sub-fill into the existing tag: lands in any tenant's entry in
        // sharing mode — MIG way slices do not apply here, which is the
        // capacity win Li et al. measure.
        if (entry->asid != key.asid)
            ++stats_.sharedFills;
        Sub &sub = entry->slots[subOf(key.vpn)];
        sub.valid = true;
        sub.asid = key.asid;
        sub.pfn = pfn;
        entry->lruTick = ++lruCounter;
        return;
    }

    std::uint64_t base = baseOf(key.vpn);
    std::uint64_t set = setOf(base);
    auto [way0, waycount] = victimWays(key.asid);
    Entry *victim = nullptr;
    for (std::uint32_t w = way0; w < way0 + waycount; ++w) {
        Entry &entry = entries[set * ways + w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (!victim || entry.lruTick < victim->lruTick)
            victim = &entry;
    }
    SW_ASSERT(victim != nullptr, "%s: empty way slice", name_.c_str());
    if (victim->valid)
        ++stats_.evictions;
    ++stats_.tagAllocs;
    victim->valid = true;
    victim->asid = key.asid;
    victim->base = base;
    victim->lruTick = ++lruCounter;
    for (Sub &sub : victim->slots)
        sub = Sub{};
    Sub &sub = victim->slots[subOf(key.vpn)];
    sub.valid = true;
    sub.asid = key.asid;
    sub.pfn = pfn;
}

void
SubEntryTlb::invalidate(TranslationKey key)
{
    Entry *entry = findTag(key);
    if (!entry)
        return;
    Sub &sub = entry->slots[subOf(key.vpn)];
    if (!sub.valid || sub.asid != key.asid)
        return;
    sub.valid = false;
    bool any = false;
    for (const Sub &s : entry->slots)
        any = any || s.valid;
    entry->valid = any;
}

void
SubEntryTlb::flushAsid(Asid asid)
{
    for (Entry &entry : entries) {
        if (!entry.valid)
            continue;
        bool any = false;
        for (Sub &sub : entry.slots) {
            if (sub.valid && sub.asid == asid)
                sub.valid = false;
            any = any || sub.valid;
        }
        entry.valid = any;
    }
}

void
SubEntryTlb::flush()
{
    for (Entry &entry : entries) {
        entry.valid = false;
        entry.asid = 0;
        entry.base = 0;
        entry.lruTick = 0;
        for (Sub &sub : entry.slots)
            sub = Sub{};
    }
}

void
SubEntryTlb::registerStats(StatGroup group)
{
    group.counter("lookups", &stats_.lookups);
    group.counter("hits", &stats_.hits);
    group.counter("fills", &stats_.fills);
    group.counter("evictions", &stats_.evictions);
    group.counter("tag_allocs", &stats_.tagAllocs);
    group.counter("shared_hits", &stats_.sharedHits);
    group.counter("shared_fills", &stats_.sharedFills);
    group.gauge("misses",
                [this]() { return double(stats_.lookups - stats_.hits); });
    group.gauge("hit_rate", [this]() { return stats_.hitRate(); });
}

void
SubEntryTlb::saveState(CkptWriter &w) const
{
    w.section("subtlb");
    w.str(name_);
    w.u32(std::uint32_t(entries.size()));
    w.u32(subs);
    for (const Entry &entry : entries) {
        w.u8(entry.valid ? 1 : 0);
        w.u32(entry.asid);
        w.u64(entry.base);
        w.u64(entry.lruTick);
        for (const Sub &sub : entry.slots) {
            w.u8(sub.valid ? 1 : 0);
            w.u32(sub.asid);
            w.u64(sub.pfn);
        }
    }
    w.u64(lruCounter);
    w.u64(stats_.lookups);
    w.u64(stats_.hits);
    w.u64(stats_.fills);
    w.u64(stats_.evictions);
    w.u64(stats_.tagAllocs);
    w.u64(stats_.sharedHits);
    w.u64(stats_.sharedFills);
}

void
SubEntryTlb::restoreState(CkptReader &r)
{
    r.expectSection("subtlb");
    std::string saved_name = r.str();
    if (saved_name != name_) {
        fatal("checkpoint sub-entry TLB \"%s\" restored into \"%s\"",
              saved_name.c_str(), name_.c_str());
    }
    std::uint32_t n = r.u32();
    std::uint32_t k = r.u32();
    if (n != entries.size() || k != subs) {
        fatal("checkpoint sub-entry TLB \"%s\" geometry %ux%u does not "
              "match this config's %zux%u", name_.c_str(), n, k,
              entries.size(), subs);
    }
    for (Entry &entry : entries) {
        entry.valid = r.u8() != 0;
        entry.asid = r.u32();
        entry.base = r.u64();
        entry.lruTick = r.u64();
        for (Sub &sub : entry.slots) {
            sub.valid = r.u8() != 0;
            sub.asid = r.u32();
            sub.pfn = r.u64();
        }
    }
    lruCounter = r.u64();
    stats_.lookups = r.u64();
    stats_.hits = r.u64();
    stats_.fills = r.u64();
    stats_.evictions = r.u64();
    stats_.tagAllocs = r.u64();
    stats_.sharedHits = r.u64();
    stats_.sharedFills = r.u64();
}

} // namespace sw
