/**
 * @file
 * Fixed-size hashed page table (the FS-HPT baseline, Jang et al. PACT'24).
 *
 * Replaces the radix hierarchy with a single open-addressed hash table in
 * simulated physical memory: a walk is one PTE read on a direct hit, plus
 * one extra read per linear probe on collision.  FS-HPT reduces memory
 * accesses per walk but does not raise walker throughput — which is exactly
 * the contrast the paper draws (Table 1, Fig 16).
 */

#ifndef SW_VM_HASHED_PAGE_TABLE_HH
#define SW_VM_HASHED_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vm/page_table.hh"

namespace sw {

/** Open-addressing (linear probing) hashed page table. */
class HashedPageTable : public PageTableBase
{
  public:
    /**
     * @param geom page geometry
     * @param alloc frame allocator
     * @param slots hash-table capacity (power of two); the paper sizes it
     *        so GPU workloads see a low collision rate.
     */
    HashedPageTable(const PageGeometry &geom, FrameAllocator &alloc,
                    std::uint64_t slots = 1ull << 20);

    Pfn ensureMapped(Vpn vpn) override;
    bool isMapped(Vpn vpn) const override;
    Pfn translate(Vpn vpn) const override;

    WalkCursor startWalk(Vpn vpn) const override;
    WalkCursor resumeWalk(Vpn vpn, int level, PhysAddr base) const override;
    PhysAddr pteAddr(const WalkCursor &cur) const override;
    void advance(WalkCursor &cur) const override;
    int topLevel() const override { return 1; }
    bool usesPwc() const override { return false; }
    std::uint64_t pwcPrefix(int, Vpn) const override { return 0; }
    int walkReads(Vpn vpn) const override;

    double loadFactor() const;
    std::uint64_t collisions() const { return collisionCount; }

    void saveState(CkptWriter &w) const override;
    void restoreState(CkptReader &r) override;

  private:
    /** Slot in the simulated hash table (16 B each: tag + PTE). */
    struct Slot
    {
        bool used = false;
        Vpn vpn = 0;
        Pfn pfn = 0;
    };

    static constexpr std::uint64_t kSlotBytes = 16;

    std::uint64_t hashVpn(Vpn vpn) const;
    std::uint64_t probeOf(const WalkCursor &cur) const;

    PageGeometry geometry;
    FrameAllocator &allocator;
    std::uint64_t numSlots;
    PhysAddr tableBase;
    std::vector<Slot> slots;
    std::uint64_t usedSlots = 0;
    std::uint64_t collisionCount = 0;
};

} // namespace sw

#endif // SW_VM_HASHED_PAGE_TABLE_HH
