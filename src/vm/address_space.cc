#include "vm/address_space.hh"

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"
#include "vm/address.hh"
#include "vm/hashed_page_table.hh"

namespace sw {

AddressSpaceManager::AddressSpaceManager(const GpuConfig &cfg,
                                         FrameAllocator &alloc)
{
    PageGeometry geom(cfg.pageBytes);
    tables.reserve(cfg.numTenants);
    for (std::uint32_t t = 0; t < cfg.numTenants; ++t) {
        if (cfg.pageTableKind == PageTableKind::Hashed)
            tables.push_back(std::make_unique<HashedPageTable>(geom, alloc));
        else
            tables.push_back(std::make_unique<RadixPageTable>(geom, alloc));
    }
}

void
AddressSpaceManager::saveState(CkptWriter &w) const
{
    w.section("aspaces");
    w.u32(std::uint32_t(tables.size()));
    for (const auto &table : tables)
        table->saveState(w);
}

void
AddressSpaceManager::restoreState(CkptReader &r)
{
    r.expectSection("aspaces");
    std::uint32_t n = r.u32();
    if (n != tables.size()) {
        fatal("checkpoint carries %u address spaces but this machine is "
              "configured for %zu tenants", n, tables.size());
    }
    for (auto &table : tables)
        table->restoreState(r);
}

} // namespace sw
