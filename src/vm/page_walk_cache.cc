#include "vm/page_walk_cache.hh"

#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"
#include "vm/page_table.hh"

namespace sw {

PageWalkCache::PageWalkCache(std::uint32_t num_entries)
{
    SW_ASSERT(num_entries > 0, "PWC needs at least one entry");
    entries.resize(num_entries);
}

bool
PageWalkCache::lookup(const PageTableBase &pt, TranslationKey key,
                      int &level, PhysAddr &base)
{
    ++stats_.lookups;
    if (!pt.usesPwc())
        return false;

    // Search for the deepest (lowest-numbered) cached level.
    Entry *best = nullptr;
    for (int lvl = 1; lvl < pt.topLevel(); ++lvl) {
        std::uint64_t prefix = pt.pwcPrefix(lvl, key.vpn);
        for (auto &entry : entries) {
            if (entry.valid && entry.asid == key.asid &&
                entry.level == lvl && entry.prefix == prefix) {
                best = &entry;
                break;
            }
        }
        if (best)
            break;
    }
    if (!best)
        return false;

    ++stats_.hits;
    best->lruTick = ++lruCounter;
    level = best->level;
    base = best->base;
    return true;
}

void
PageWalkCache::fill(const PageTableBase &pt, int level, TranslationKey key,
                    PhysAddr base)
{
    if (!pt.usesPwc() || level >= pt.topLevel() || level < 1)
        return;
    ++stats_.fills;
    std::uint64_t prefix = pt.pwcPrefix(level, key.vpn);

    Entry *victim = nullptr;
    for (auto &entry : entries) {
        if (entry.valid && entry.asid == key.asid &&
            entry.level == level && entry.prefix == prefix) {
            entry.base = base;
            entry.lruTick = ++lruCounter;
            return;
        }
        if (!entry.valid) {
            if (!victim || victim->valid)
                victim = &entry;
        } else if (!victim ||
                   (victim->valid && entry.lruTick < victim->lruTick)) {
            victim = &entry;
        }
    }
    SW_ASSERT(victim != nullptr, "PWC victim selection failed");
    victim->valid = true;
    victim->asid = key.asid;
    victim->level = level;
    victim->prefix = prefix;
    victim->base = base;
    victim->lruTick = ++lruCounter;
}

void
PageWalkCache::flushAsid(Asid asid)
{
    for (auto &entry : entries) {
        if (entry.valid && entry.asid == asid)
            entry.valid = false;
    }
}

void
PageWalkCache::flush()
{
    for (auto &entry : entries)
        entry.valid = false;
}

void
PageWalkCache::registerStats(StatGroup group)
{
    group.counter("lookups", &stats_.lookups);
    group.counter("hits", &stats_.hits);
    group.counter("fills", &stats_.fills);
    group.gauge("hit_rate", [this]() { return stats_.hitRate(); });
}

void
PageWalkCache::saveState(CkptWriter &w) const
{
    w.section("pwc");
    w.u32(std::uint32_t(entries.size()));
    for (const Entry &entry : entries) {
        w.u8(entry.valid ? 1 : 0);
        w.u32(entry.asid);
        w.u32(std::uint32_t(entry.level));
        w.u64(entry.prefix);
        w.u64(entry.base);
        w.u64(entry.lruTick);
    }
    w.u64(lruCounter);
    w.u64(stats_.lookups);
    w.u64(stats_.hits);
    w.u64(stats_.fills);
}

void
PageWalkCache::restoreState(CkptReader &r)
{
    r.expectSection("pwc");
    std::uint32_t n = r.u32();
    if (n != entries.size()) {
        fatal("checkpoint PWC has %u entries, this config has %zu",
              n, entries.size());
    }
    for (Entry &entry : entries) {
        entry.valid = r.u8() != 0;
        entry.asid = r.u32();
        entry.level = int(r.u32());
        entry.prefix = r.u64();
        entry.base = r.u64();
        entry.lruTick = r.u64();
    }
    lruCounter = r.u64();
    stats_.lookups = r.u64();
    stats_.hits = r.u64();
    stats_.fills = r.u64();
}

} // namespace sw
