/**
 * @file
 * Virtual/physical address helpers.
 *
 * The simulated machine uses 49-bit virtual and 47-bit physical addresses
 * (GP100 MMU format, as the paper assumes in §4.4).
 */

#ifndef SW_VM_ADDRESS_HH
#define SW_VM_ADDRESS_HH

#include <bit>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sw {

inline constexpr unsigned kVirtAddrBits = 49;
inline constexpr unsigned kPhysAddrBits = 47;

/**
 * The unit of translation: a virtual page number qualified by the address
 * space it belongs to.  Every translation-path API (TLB lookup/fill, In-TLB
 * MSHR reservation, PWC, walk requests, fault records) is keyed by a
 * TranslationKey so entries from different tenants can coexist in shared
 * structures without aliasing.  ASID 0 is the single-tenant address space;
 * a key's ordering and hash for asid 0 keep the same relative order the
 * bare-Vpn code paths had, which the determinism suites rely on.
 */
struct TranslationKey
{
    Asid asid = 0;
    Vpn vpn = 0;

    /** Ordered (asid, vpn) — usable with sortedKeys() and std::map. */
    friend auto operator<=>(const TranslationKey &,
                            const TranslationKey &) = default;
};

} // namespace sw

template <>
struct std::hash<sw::TranslationKey>
{
    std::size_t
    operator()(const sw::TranslationKey &key) const noexcept
    {
        // ASID folded into the high VA bits: for asid 0 the hash equals
        // std::hash<Vpn>, preserving the container iteration behaviour of
        // the pre-multi-tenant code (defence in depth on top of
        // sortedKeys(); single-tenant fingerprints must not move).
        return std::hash<sw::Vpn>()(
            key.vpn ^ (static_cast<std::uint64_t>(key.asid) << 49));
    }
};

namespace sw {

/** Page-size plumbing: offset bits, VPN extraction, recomposition. */
class PageGeometry
{
  public:
    explicit PageGeometry(std::uint64_t page_bytes)
        : bytes(page_bytes),
          offsetBits(static_cast<unsigned>(std::countr_zero(page_bytes)))
    {
        SW_ASSERT(std::has_single_bit(page_bytes),
                  "page size must be a power of two");
    }

    std::uint64_t pageBytes() const { return bytes; }
    unsigned pageOffsetBits() const { return offsetBits; }

    Vpn vpnOf(VirtAddr va) const { return va >> offsetBits; }
    std::uint64_t offsetOf(VirtAddr va) const { return va & (bytes - 1); }

    VirtAddr
    composeVa(Vpn vpn, std::uint64_t offset) const
    {
        return (vpn << offsetBits) | (offset & (bytes - 1));
    }

    PhysAddr
    composePa(Pfn pfn, std::uint64_t offset) const
    {
        return (pfn << offsetBits) | (offset & (bytes - 1));
    }

    /** Number of VPN bits for this page size in the 49-bit VA space. */
    unsigned vpnBits() const { return kVirtAddrBits - offsetBits; }

  private:
    std::uint64_t bytes;
    unsigned offsetBits;
};

} // namespace sw

#endif // SW_VM_ADDRESS_HH
