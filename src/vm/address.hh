/**
 * @file
 * Virtual/physical address helpers.
 *
 * The simulated machine uses 49-bit virtual and 47-bit physical addresses
 * (GP100 MMU format, as the paper assumes in §4.4).
 */

#ifndef SW_VM_ADDRESS_HH
#define SW_VM_ADDRESS_HH

#include <bit>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sw {

inline constexpr unsigned kVirtAddrBits = 49;
inline constexpr unsigned kPhysAddrBits = 47;

/** Page-size plumbing: offset bits, VPN extraction, recomposition. */
class PageGeometry
{
  public:
    explicit PageGeometry(std::uint64_t page_bytes)
        : bytes(page_bytes),
          offsetBits(static_cast<unsigned>(std::countr_zero(page_bytes)))
    {
        SW_ASSERT(std::has_single_bit(page_bytes),
                  "page size must be a power of two");
    }

    std::uint64_t pageBytes() const { return bytes; }
    unsigned pageOffsetBits() const { return offsetBits; }

    Vpn vpnOf(VirtAddr va) const { return va >> offsetBits; }
    std::uint64_t offsetOf(VirtAddr va) const { return va & (bytes - 1); }

    VirtAddr
    composeVa(Vpn vpn, std::uint64_t offset) const
    {
        return (vpn << offsetBits) | (offset & (bytes - 1));
    }

    PhysAddr
    composePa(Pfn pfn, std::uint64_t offset) const
    {
        return (pfn << offsetBits) | (offset & (bytes - 1));
    }

    /** Number of VPN bits for this page size in the 49-bit VA space. */
    unsigned vpnBits() const { return kVirtAddrBits - offsetBits; }

  private:
    std::uint64_t bytes;
    unsigned offsetBits;
};

} // namespace sw

#endif // SW_VM_ADDRESS_HH
