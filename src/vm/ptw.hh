/**
 * @file
 * Hardware page-table-walker pool: the baseline Page Walk Subsystem of
 * §2.1 — a Page Walk Buffer (PWB) feeding a fixed number of highly threaded
 * walkers, with a port model for the PWB CAM and optional NHA-style
 * coalescing of walks whose final PTEs share a cache sector.
 */

#ifndef SW_VM_PTW_HH
#define SW_VM_PTW_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"
#include "vm/page_walk_cache.hh"
#include "vm/walk.hh"

namespace sw {

/** Pool of hardware PTWs behind a ported PWB. */
class HardwarePtwPool : public WalkBackend
{
  public:
    struct Params
    {
        std::uint32_t numWalkers = 32;
        std::uint32_t pwbEntries = 64;
        std::uint32_t pwbPorts = 1;
        bool nhaCoalescing = false;
        std::uint32_t nhaSectorBytes = 32;   ///< coalescing window
        Cycle fixedPtAccessLatency = 0;      ///< 0: use the memory model
    };

    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t nhaMerged = 0;     ///< walks absorbed by coalescing
        std::uint64_t pwbOverflows = 0;  ///< arrivals past PWB capacity
        std::uint64_t memReads = 0;      ///< page-table memory accesses
        LatencyStat queueDelay;
        LatencyStat accessLatency;
        std::uint64_t peakInFlight = 0;
    };

    /**
     * @param eq event queue
     * @param params pool configuration
     * @param spaces per-ASID page tables; each walk descends the table of
     *        its request's ASID
     * @param pwc shared page walk cache (filled as walks descend)
     * @param pt_access page-table memory read issuer
     * @param on_complete walk-completion sink (the translation engine)
     */
    HardwarePtwPool(EventQueue &eq, Params params,
                    const AddressSpaceManager &spaces, PageWalkCache &pwc,
                    PtAccessFn pt_access, WalkCompleteFn on_complete);

    void submit(WalkRequest req) override;
    std::uint64_t inFlight() const override { return inFlightCount; }
    std::string name() const override { return "hw-ptw"; }

    void resetStats() override { stats_ = Stats{}; }

    /** PTW slot lifecycle + in-flight conservation audits. */
    void registerAudits(Auditor &auditor) override;

    void setTracer(TranslationTracer *tracer) override { tracer_ = tracer; }
    void registerStats(StatGroup group) override;
    void registerGauges(TimeSeriesSampler &sampler) override;

    const Stats &stats() const { return stats_; }
    std::size_t pwbOccupancy() const
    {
        return pwb.size() + overflow.size();
    }
    std::uint32_t busyWalkers() const { return activeWalkers; }

    void saveState(CkptWriter &w) const override;
    void restoreState(CkptReader &r) override;

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    /** Reserve one PWB port operation; returns the cycle it completes. */
    Cycle reservePort();

    /** Start as many walks as idle walkers + PWB occupancy allow. */
    void dispatch();

    /** Run one level step of an active walk. */
    void walkStep(std::uint64_t active_idx);

    struct ActiveWalk
    {
        WalkRequest primary;
        std::vector<WalkRequest> coalesced;   ///< NHA-merged riders
        WalkCursor cursor;
        Cycle started = 0;
        bool live = false;
    };

    void finishWalk(ActiveWalk &walk);

    /**
     * NHA key: walks whose leaf PTEs share one sector can merge.  The key
     * is ASID-qualified — different tenants' PTEs live in different page
     * tables, so their walks never share a sector.
     */
    std::uint64_t nhaKey(const WalkRequest &req) const;

    EventQueue &eventq;
    Params params_;
    const AddressSpaceManager &spaces;
    PageWalkCache &pwc;
    PtAccessFn ptAccess;
    WalkCompleteFn onComplete;

    std::deque<WalkRequest> pwb;        ///< bounded buffer
    std::deque<WalkRequest> overflow;   ///< spill past PWB capacity
    std::vector<ActiveWalk> active;     ///< slot per walker
    std::vector<std::uint32_t> idleSlots;
    std::uint32_t activeWalkers = 0;
    std::vector<Cycle> portFree;        ///< per-port next-free cycle
    std::uint64_t inFlightCount = 0;
    /** Walks accepted but still crossing the PWB enqueue port. */
    std::uint64_t enqInTransit = 0;
    TranslationTracer *tracer_ = nullptr;
    Stats stats_;
};

} // namespace sw

#endif // SW_VM_PTW_HH
