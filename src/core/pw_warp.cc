#include "core/pw_warp.hh"

#include "check/audit.hh"
#include "obs/trace.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

const char *
toString(PwOpcode op)
{
    switch (op) {
      case PwOpcode::Alu:  return "ALU";
      case PwOpcode::Ldpt: return "LDPT";
      case PwOpcode::Fl2t: return "FL2T";
      case PwOpcode::Fpwc: return "FPWC";
      case PwOpcode::Ffb:  return "FFB";
    }
    return "?";
}

PwWarp::PwWarp(EventQueue &eq, const AddressSpaceManager &aspaces,
               SoftPwb &buffer, Hooks hooks_in, PwWarpCodeTiming timing_in,
               std::uint32_t num_lanes, Cycle comm_latency)
    : eventq(eq), spaces(aspaces), pwb(buffer), hooks(std::move(hooks_in)),
      timing(timing_in), numLanes(num_lanes), commLatency(comm_latency)
{
    SW_ASSERT(numLanes > 0 && numLanes <= 32, "PW Warp lanes out of range");
}

void
PwWarp::notifyWork()
{
    if (running)
        return;
    if (pwb.validCount() == 0)
        return;
    startBatch();
}

void
PwWarp::startBatch()
{
    SW_PROF_SCOPE(prof::Zone::PwWarpExec);
    running = true;
    batchStart = eventq.now();

    std::vector<std::uint32_t> picked = pwb.collectValid(numLanes);
    SW_ASSERT(!picked.empty(), "batch started with no valid entries");

    lanes.clear();
    lanes.reserve(picked.size());
    for (std::uint32_t slot_idx : picked) {
        const SoftPwb::Slot &slot = pwb.slot(slot_idx);
        Lane lane;
        lane.slot = slot_idx;
        lane.cursor = slot.req.cursor;
        lane.pickedUp = eventq.now();
        lane.created = slot.req.created;
        lane.id = slot.req.id;
        lane.key = slot.req.key;
        lanes.push_back(lane);
        SW_TRACE(tracer_, TracePhase::WalkDispatch, eventq.now(), lane.id,
                 lane.key.vpn, tracerWhere, lane.key.asid);
    }

    ++stats_.batches;
    stats_.batchSize.add(lanes.size());

    // Fig 14 lines 1-6: load the requests from SoftPWB and decode them.
    stats_.instructionsIssued += timing.setupInstrs;
    Cycle setup_done = hooks.reserveIssue(timing.setupInstrs);
    auto fire = [this]() { levelIteration(); };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "batch setup event must not spill to the slab pool");
    eventq.schedule(setup_done, std::move(fire));
}

void
PwWarp::levelIteration()
{
    SW_PROF_SCOPE(prof::Zone::PwWarpExec);
    // Lanes proceed in SIMT lockstep: each iteration handles one radix
    // level for every lane that still has levels to read.
    std::vector<std::uint32_t> active;
    for (std::uint32_t i = 0; i < lanes.size(); ++i)
        if (!lanes[i].cursor.done)
            active.push_back(i);

    if (active.empty()) {
        finishBatch();
        return;
    }

    // Offset computation, LDPT issue, validity check, FPWC store.
    stats_.instructionsIssued += timing.perLevelInstrs;
    stats_.ldptIssued += active.size();
    Cycle issue_done = hooks.reserveIssue(timing.perLevelInstrs);

    pendingLoads = std::uint32_t(active.size());
    for (std::uint32_t lane_idx : active) {
        const PageTableBase &pt =
            spaces.tableFor(lanes[lane_idx].key.asid);
        PhysAddr addr = pt.pteAddr(lanes[lane_idx].cursor);
        auto fire = [this, lane_idx, addr]() {
            SW_TRACE(tracer_, TracePhase::PtRead, eventq.now(),
                     lanes[lane_idx].id, lanes[lane_idx].key.vpn,
                     tracerWhere, lanes[lane_idx].key.asid);
            hooks.ptAccess(addr, [this, lane_idx]() {
                Lane &lane = lanes[lane_idx];
                const PageTableBase &table = spaces.tableFor(lane.key.asid);
                int level_read = lane.cursor.level;
                table.advance(lane.cursor);
                if (!lane.cursor.done && level_read > 1) {
                    // FPWC: publish the just-learned table base.
                    ++stats_.fpwcIssued;
                    hooks.pwcFill(lane.cursor.level, lane.key,
                                  lane.cursor.tableBase);
                }
                SW_ASSERT(pendingLoads > 0, "LDPT completion underflow");
                if (--pendingLoads == 0)
                    levelIteration();
            });
        };
        static_assert(EventFn::fitsInline<decltype(fire)>(),
                      "LDPT issue event must not spill to the slab pool");
        eventq.schedule(issue_done, std::move(fire));
    }
}

void
PwWarp::registerStats(StatGroup group)
{
    group.counter("batches", &stats_.batches);
    group.counter("walks_completed", &stats_.walksCompleted);
    group.counter("instructions", &stats_.instructionsIssued);
    group.counter("ldpt", &stats_.ldptIssued);
    group.counter("fl2t", &stats_.fl2tIssued);
    group.counter("fpwc", &stats_.fpwcIssued);
    group.counter("ffb", &stats_.ffbIssued);
    group.latency("batch_size", &stats_.batchSize);
    group.latency("batch_latency", &stats_.batchLatency);
    group.gauge("busy", [this]() { return running ? 1.0 : 0.0; });
}

void
PwWarp::finishBatch()
{
    SW_PROF_SCOPE(prof::Zone::PwWarpExec);
    // FL2T for every lane (plus FFB for faulted lanes), then the fills
    // travel back to the L2 TLB over the interconnect.
    std::uint32_t fault_lanes = 0;
    for (const Lane &lane : lanes)
        if (lane.cursor.fault)
            ++fault_lanes;

    std::uint32_t instrs =
        timing.finishInstrs + fault_lanes * timing.faultInstrs;
    stats_.instructionsIssued += instrs;
    stats_.fl2tIssued += lanes.size() - fault_lanes;
    stats_.ffbIssued += fault_lanes;

    Cycle issue_done = hooks.reserveIssue(instrs);
    Cycle arrive = issue_done + commLatency;

    SW_AUDIT(lanes.size() <= numLanes,
             "batch carries %zu lanes but the warp has %u",
             lanes.size(), numLanes);

    for (const Lane &lane : lanes) {
        WalkResult result;
        result.id = lane.id;
        result.key = lane.key;
        result.pfn = lane.cursor.pfn;
        result.fault = lane.cursor.fault;
        result.queueDelay = lane.pickedUp - lane.created;
        result.accessLatency = arrive - lane.pickedUp;
        // The SoftPWB slot frees now; the fill is in transit until the
        // FL2T/FFB lands at the L2 TLB and the distributor credit drops.
        ++fillsInTransit_;
        auto fire = [this, result]() {
            SW_ASSERT(fillsInTransit_ > 0, "FL2T transit underflow");
            --fillsInTransit_;
            hooks.complete(result);
        };
        static_assert(EventFn::fitsInline<decltype(fire)>(),
                      "FL2T fill event must not spill to the slab pool");
        eventq.schedule(arrive, std::move(fire));
        pwb.release(lane.slot);
        ++stats_.walksCompleted;
    }
    stats_.batchLatency.add(eventq.now() - batchStart);

    running = false;
    lanes.clear();
    // More requests may have become valid while this batch ran.
    notifyWork();
}

void
PwWarp::saveState(CkptWriter &w) const
{
    SW_ASSERT(!running && pendingLoads == 0 && fillsInTransit_ == 0,
              "PW Warp checkpointed mid-batch");
    w.section("pw_warp");
    w.u64(stats_.batches);
    w.u64(stats_.walksCompleted);
    w.u64(stats_.instructionsIssued);
    w.u64(stats_.ldptIssued);
    w.u64(stats_.fl2tIssued);
    w.u64(stats_.fpwcIssued);
    w.u64(stats_.ffbIssued);
    w.latency(stats_.batchSize);
    w.latency(stats_.batchLatency);
}

void
PwWarp::restoreState(CkptReader &r)
{
    r.expectSection("pw_warp");
    stats_.batches = r.u64();
    stats_.walksCompleted = r.u64();
    stats_.instructionsIssued = r.u64();
    stats_.ldptIssued = r.u64();
    stats_.fl2tIssued = r.u64();
    stats_.fpwcIssued = r.u64();
    stats_.ffbIssued = r.u64();
    r.latency(stats_.batchSize);
    r.latency(stats_.batchLatency);
}

} // namespace sw
