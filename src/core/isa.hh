/**
 * @file
 * ISA extension for SoftWalker (Table 2) and the timing of the PW Warp
 * code sequence (Fig 14).
 *
 * | LDPT | Load a PTE from the page table, bypassing the TLB.        |
 * | FL2T | Fill an L2 TLB entry with the final PTE.                  |
 * | FPWC | Fill a Page Walk Cache entry.                             |
 * | FFB  | Log an invalid PTE into the Fault Buffer.                 |
 *
 * The paper reports that the compiled page-walk routine needs only 16
 * registers; the instruction counts below abstract the SASS sequence of
 * Fig 14 into per-phase issue-slot costs charged to the SM's port.
 */

#ifndef SW_CORE_ISA_HH
#define SW_CORE_ISA_HH

#include <cstdint>

namespace sw {

/** Opcodes a PW Warp can issue (plain ALU ops plus Table 2). */
enum class PwOpcode : std::uint8_t
{
    Alu,    ///< address arithmetic, loop control
    Ldpt,   ///< page-table load (TLB bypass)
    Fl2t,   ///< L2 TLB fill
    Fpwc,   ///< page walk cache fill
    Ffb,    ///< fault buffer fill
};

const char *toString(PwOpcode op);

/** Issue-slot costs of the Fig 14 routine, by phase. */
struct PwWarpCodeTiming
{
    /** Load the request from SoftPWB and decode it (Fig 14 lines 1-6). */
    std::uint32_t setupInstrs = 6;
    /**
     * One radix level: offset computation, LDPT issue, validity check and
     * FPWC store (Fig 14 lines 8-23).
     */
    std::uint32_t perLevelInstrs = 4;
    /** Final FL2T (Fig 14 line 26). */
    std::uint32_t finishInstrs = 1;
    /** FFB on an invalid PTE (Fig 14 lines 16-19). */
    std::uint32_t faultInstrs = 1;
};

/** Architectural registers one PW Warp occupies (§4.2). */
inline constexpr std::uint32_t kPwWarpRegisters = 16;

/** Per-SM storage for the PW Warp context, in bits (§5.2). */
struct PwWarpContextBits
{
    /** Controller-side SoftPWB status bitmap: 2 b x 32 threads. */
    std::uint32_t statusBitmap = 64;
    std::uint32_t instructionBuffer = 64;
    std::uint32_t scoreboardEntry = 126;
    std::uint32_t simtStackEntries = 8 * 160;

    /** The paper's per-SM figure: 1470 bits (64 + 126 + 8 x 160). */
    std::uint32_t
    total() const
    {
        return instructionBuffer + scoreboardEntry + simtStackEntries;
    }
};

} // namespace sw

#endif // SW_CORE_ISA_HH
