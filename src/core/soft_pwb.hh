/**
 * @file
 * SoftPWB: the shared-memory request buffer holding pending page-walk
 * requests on each SM, together with the SoftPWB Status Bitmap the
 * SoftWalker Controller uses to track per-slot state (§4.4).
 *
 * Each slot mirrors one 96-bit shared-memory record (33-bit VPN, 31-bit
 * table-base PFN, 2-bit level) and is invalid / valid / processing.
 */

#ifndef SW_CORE_SOFT_PWB_HH
#define SW_CORE_SOFT_PWB_HH

#include <cstdint>
#include <vector>

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "vm/walk.hh"

namespace sw {

/** Per-SM software page walk buffer. */
class SoftPwb
{
  public:
    enum class SlotState : std::uint8_t { Invalid, Valid, Processing };

    struct Slot
    {
        SlotState state = SlotState::Invalid;
        WalkRequest req;
        Cycle arrived = 0;
    };

    struct Stats
    {
        std::uint64_t inserts = 0;
        std::uint64_t peakOccupancy = 0;
    };

    explicit SoftPwb(std::uint32_t num_entries) : slots(num_entries)
    {
        SW_ASSERT(num_entries > 0, "SoftPWB needs entries");
    }

    std::uint32_t
    freeSlots() const
    {
        std::uint32_t free_count = 0;
        for (const auto &slot : slots)
            if (slot.state == SlotState::Invalid)
                ++free_count;
        return free_count;
    }

    std::uint32_t
    validCount() const
    {
        std::uint32_t count = 0;
        for (const auto &slot : slots)
            if (slot.state == SlotState::Valid)
                ++count;
        return count;
    }

    std::uint32_t
    processingCount() const
    {
        std::uint32_t count = 0;
        for (const auto &slot : slots)
            if (slot.state == SlotState::Processing)
                ++count;
        return count;
    }

    /** Valid + processing slots (everything holding a live request). */
    std::uint32_t
    occupiedCount() const
    {
        return std::uint32_t(slots.size()) - freeSlots();
    }

    /** Fill an invalid slot with a request (controller step 4-5). */
    std::uint32_t
    insert(WalkRequest req, Cycle now)
    {
        for (std::uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].state == SlotState::Invalid) {
                slots[i].state = SlotState::Valid;
                slots[i].req = std::move(req);
                slots[i].arrived = now;
                ++stats_.inserts;
                std::uint64_t occ = slots.size() - freeSlots();
                stats_.peakOccupancy = std::max(stats_.peakOccupancy, occ);
                return i;
            }
        }
        panic("SoftPWB overflow: distributor credit accounting broken");
    }

    /** Mark up to @p max valid slots processing; returns their indices. */
    std::vector<std::uint32_t>
    collectValid(std::uint32_t max)
    {
        std::vector<std::uint32_t> picked;
        for (std::uint32_t i = 0; i < slots.size() && picked.size() < max;
             ++i) {
            if (slots[i].state == SlotState::Valid) {
                slots[i].state = SlotState::Processing;
                picked.push_back(i);
            }
        }
        return picked;
    }

    Slot &slot(std::uint32_t idx) { return slots.at(idx); }
    const Slot &slot(std::uint32_t idx) const { return slots.at(idx); }

    /** Walk finished: processing -> invalid (controller step 10). */
    void
    release(std::uint32_t idx)
    {
        SW_ASSERT(slots.at(idx).state == SlotState::Processing,
                  "release of a non-processing SoftPWB slot");
        slots[idx].state = SlotState::Invalid;
    }

    std::uint32_t size() const { return std::uint32_t(slots.size()); }
    void resetStats() { stats_ = Stats{}; }

    /** Register the buffer's counters with the unified stat registry. */
    void
    registerStats(StatGroup group)
    {
        group.counter("inserts", &stats_.inserts);
        group.counter("peak_occupancy", &stats_.peakOccupancy);
        group.gauge("occupied",
                    [this]() { return double(occupiedCount()); });
    }

    const Stats &stats() const { return stats_; }

    /** Serialise counters (slots must all be invalid: quiesced tick). */
    void
    saveState(CkptWriter &w) const
    {
        SW_ASSERT(occupiedCount() == 0,
                  "SoftPWB checkpointed with live requests");
        w.section("soft_pwb");
        w.u32(std::uint32_t(slots.size()));
        w.u64(stats_.inserts);
        w.u64(stats_.peakOccupancy);
    }

    /** Restore state saved by saveState(); capacity must match. */
    void
    restoreState(CkptReader &r)
    {
        r.expectSection("soft_pwb");
        std::uint32_t entries = r.u32();
        if (entries != slots.size()) {
            fatal("checkpoint SoftPWB has %u entries, this config has %zu",
                  entries, slots.size());
        }
        stats_.inserts = r.u64();
        stats_.peakOccupancy = r.u64();
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    std::vector<Slot> slots;
    Stats stats_;
};

} // namespace sw

#endif // SW_CORE_SOFT_PWB_HH
