/**
 * @file
 * Request Distributor (§4.4): the L2-TLB-side unit that assigns each L2 TLB
 * miss to an SM with free PW Warp capacity.
 *
 * Maintains a per-core credit counter capped at the SoftPWB size so that a
 * core is never handed more requests than its buffer can hold; the counter
 * is decremented when the core's FL2T fill arrives back.  Selection policy
 * is round-robin by default, with random and stall-aware alternatives
 * (Fig 26).
 */

#ifndef SW_CORE_DISTRIBUTOR_HH
#define SW_CORE_DISTRIBUTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace sw {

/** Returns how many warps are stalled on SM @p sm (stall-aware policy). */
using StallProbeFn = std::function<std::uint32_t(SmId)>;

/** SM selector with per-core credit counters. */
class RequestDistributor
{
  public:
    struct Stats
    {
        std::uint64_t dispatched = 0;
        std::uint64_t capacityStalls = 0;   ///< select() found no free core
    };

    /**
     * @param num_cursors independent round-robin cursors — one per tenant
     *        when MIG partitioning pins software walks to SM slices, else 1.
     */
    RequestDistributor(std::uint32_t num_sms, std::uint32_t per_core_capacity,
                       DistributorPolicy policy, std::uint64_t seed,
                       StallProbeFn stall_probe = {},
                       std::uint32_t num_cursors = 1)
        : counters(num_sms, 0), capacity(per_core_capacity),
          policy_(policy), rng(seed), stallProbe(std::move(stall_probe)),
          rrCursors(num_cursors, 0)
    {
        SW_ASSERT(num_sms > 0 && per_core_capacity > 0,
                  "distributor needs cores and capacity");
        SW_ASSERT(num_cursors > 0, "distributor needs a cursor");
    }

    /**
     * Pick a target SM with spare credit and charge one credit.
     * @retval kInvalidSm if every core is at capacity.
     */
    SmId select() { return select(0, std::uint32_t(counters.size()), 0); }

    /**
     * Range-restricted selection (MIG partitioning): pick a target within
     * [@p begin, @p begin + @p count) using round-robin cursor
     * @p cursor_slot.  The unrestricted select() is the (0, numSms, 0)
     * special case, so single-tenant behaviour is unchanged.
     * @retval kInvalidSm if every core in the range is at capacity.
     */
    SmId
    select(SmId begin, std::uint32_t count, std::uint32_t cursor_slot)
    {
        SW_ASSERT(begin + count <= counters.size() && count > 0,
                  "distributor range [%u, %u) out of bounds", begin,
                  begin + count);
        SmId choice = kInvalidSm;
        switch (policy_) {
          case DistributorPolicy::RoundRobin:
            choice = selectRoundRobin(begin, count, cursor_slot);
            break;
          case DistributorPolicy::Random:
            choice = selectRandom(begin, count);
            break;
          case DistributorPolicy::StallAware:
            choice = selectStallAware(begin, count);
            break;
        }
        if (choice == kInvalidSm) {
            ++stats_.capacityStalls;
            return choice;
        }
        ++counters[choice];
        SW_AUDIT(counters[choice] <= capacity,
                 "SM %u charged past its SoftPWB capacity (%u > %u)",
                 choice, counters[choice], capacity);
        ++stats_.dispatched;
        return choice;
    }

    /** FL2T arrived from @p sm: release one credit. */
    void
    release(SmId sm)
    {
        SW_ASSERT(counters.at(sm) > 0, "distributor credit underflow");
        --counters[sm];
    }

    std::uint32_t counter(SmId sm) const { return counters.at(sm); }
    std::uint32_t perCoreCapacity() const { return capacity; }
    DistributorPolicy policy() const { return policy_; }
    void resetStats() { stats_ = Stats{}; }

    /** Register the distributor's counters with the unified stat registry. */
    void
    registerStats(StatGroup group)
    {
        group.counter("dispatched", &stats_.dispatched);
        group.counter("capacity_stalls", &stats_.capacityStalls);
        group.gauge("credits", [this]() { return double(totalCredits()); });
    }

    const Stats &stats() const { return stats_; }

    std::uint64_t
    totalCredits() const
    {
        std::uint64_t total = 0;
        for (auto count : counters)
            total += count;
        return total;
    }

    /**
     * Serialise selection state + counters; every credit must have been
     * released (quiesced tick).  The RNG and round-robin cursor shape the
     * resumed dispatch order, so both are part of the checkpoint.
     */
    void
    saveState(CkptWriter &w) const
    {
        SW_ASSERT(totalCredits() == 0,
                  "distributor checkpointed with outstanding credits");
        w.section("distributor");
        w.u32(std::uint32_t(counters.size()));
        std::uint64_t rng_state[4];
        rng.snapshot(rng_state);
        for (std::uint64_t word : rng_state)
            w.u64(word);
        w.u32(std::uint32_t(rrCursors.size()));
        for (std::uint32_t cursor : rrCursors)
            w.u32(cursor);
        w.u64(stats_.dispatched);
        w.u64(stats_.capacityStalls);
    }

    /** Restore state saved by saveState(); SM count must match. */
    void
    restoreState(CkptReader &r)
    {
        r.expectSection("distributor");
        std::uint32_t sms = r.u32();
        if (sms != counters.size()) {
            fatal("checkpoint distributor has %u SMs, this config has %zu",
                  sms, counters.size());
        }
        std::uint64_t rng_state[4];
        for (auto &word : rng_state)
            word = r.u64();
        rng.restore(rng_state);
        std::uint32_t cursors = r.u32();
        if (cursors != rrCursors.size()) {
            fatal("checkpoint distributor has %u cursors, this config has "
                  "%zu", cursors, rrCursors.size());
        }
        for (auto &cursor : rrCursors) {
            cursor = r.u32();
            if (cursor >= counters.size())
                fatal("checkpoint distributor cursor %u out of range",
                      cursor);
        }
        stats_.dispatched = r.u64();
        stats_.capacityStalls = r.u64();
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    SmId
    selectRoundRobin(SmId begin, std::uint32_t count,
                     std::uint32_t cursor_slot)
    {
        // Cursors hold absolute SM ids; the full-range cursor 0 behaves
        // exactly like the single-cursor distributor did.
        std::uint32_t &cursor = rrCursors.at(cursor_slot);
        if (cursor < begin || cursor >= begin + count)
            cursor = begin;
        for (std::uint32_t i = 0; i < count; ++i) {
            SmId sm = SmId(begin + (cursor - begin + i) % count);
            if (counters[sm] < capacity) {
                cursor = begin + (sm - begin + 1) % count;
                return sm;
            }
        }
        return kInvalidSm;
    }

    SmId
    selectRandom(SmId begin, std::uint32_t count)
    {
        // A few random probes, then fall back to a scan.
        for (int attempt = 0; attempt < 4; ++attempt) {
            SmId sm = SmId(begin + rng.range(count));
            if (counters[sm] < capacity)
                return sm;
        }
        for (SmId sm = begin; sm < SmId(begin + count); ++sm)
            if (counters[sm] < capacity)
                return sm;
        return kInvalidSm;
    }

    SmId
    selectStallAware(SmId begin, std::uint32_t count)
    {
        SW_ASSERT(bool(stallProbe), "stall-aware policy needs a probe");
        SmId best = kInvalidSm;
        std::uint32_t best_stalled = 0;
        for (SmId sm = begin; sm < SmId(begin + count); ++sm) {
            if (counters[sm] >= capacity)
                continue;
            std::uint32_t stalled = stallProbe(sm);
            if (best == kInvalidSm || stalled > best_stalled) {
                best = sm;
                best_stalled = stalled;
            }
        }
        return best;
    }

    std::vector<std::uint32_t> counters;
    std::uint32_t capacity;
    DistributorPolicy policy_;
    Rng rng;
    StallProbeFn stallProbe;
    /** Per-tenant round-robin cursors (absolute SM ids); [0] = global. */
    std::vector<std::uint32_t> rrCursors;
    Stats stats_;
};

} // namespace sw

#endif // SW_CORE_DISTRIBUTOR_HH
