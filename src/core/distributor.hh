/**
 * @file
 * Request Distributor (§4.4): the L2-TLB-side unit that assigns each L2 TLB
 * miss to an SM with free PW Warp capacity.
 *
 * Maintains a per-core credit counter capped at the SoftPWB size so that a
 * core is never handed more requests than its buffer can hold; the counter
 * is decremented when the core's FL2T fill arrives back.  Selection policy
 * is round-robin by default, with random and stall-aware alternatives
 * (Fig 26).
 */

#ifndef SW_CORE_DISTRIBUTOR_HH
#define SW_CORE_DISTRIBUTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace sw {

/** Returns how many warps are stalled on SM @p sm (stall-aware policy). */
using StallProbeFn = std::function<std::uint32_t(SmId)>;

/** SM selector with per-core credit counters. */
class RequestDistributor
{
  public:
    struct Stats
    {
        std::uint64_t dispatched = 0;
        std::uint64_t capacityStalls = 0;   ///< select() found no free core
    };

    RequestDistributor(std::uint32_t num_sms, std::uint32_t per_core_capacity,
                       DistributorPolicy policy, std::uint64_t seed,
                       StallProbeFn stall_probe = {})
        : counters(num_sms, 0), capacity(per_core_capacity),
          policy_(policy), rng(seed), stallProbe(std::move(stall_probe))
    {
        SW_ASSERT(num_sms > 0 && per_core_capacity > 0,
                  "distributor needs cores and capacity");
    }

    /**
     * Pick a target SM with spare credit and charge one credit.
     * @retval kInvalidSm if every core is at capacity.
     */
    SmId
    select()
    {
        SmId choice = kInvalidSm;
        switch (policy_) {
          case DistributorPolicy::RoundRobin:
            choice = selectRoundRobin();
            break;
          case DistributorPolicy::Random:
            choice = selectRandom();
            break;
          case DistributorPolicy::StallAware:
            choice = selectStallAware();
            break;
        }
        if (choice == kInvalidSm) {
            ++stats_.capacityStalls;
            return choice;
        }
        ++counters[choice];
        SW_AUDIT(counters[choice] <= capacity,
                 "SM %u charged past its SoftPWB capacity (%u > %u)",
                 choice, counters[choice], capacity);
        ++stats_.dispatched;
        return choice;
    }

    /** FL2T arrived from @p sm: release one credit. */
    void
    release(SmId sm)
    {
        SW_ASSERT(counters.at(sm) > 0, "distributor credit underflow");
        --counters[sm];
    }

    std::uint32_t counter(SmId sm) const { return counters.at(sm); }
    std::uint32_t perCoreCapacity() const { return capacity; }
    DistributorPolicy policy() const { return policy_; }
    void resetStats() { stats_ = Stats{}; }

    /** Register the distributor's counters with the unified stat registry. */
    void
    registerStats(StatGroup group)
    {
        group.counter("dispatched", &stats_.dispatched);
        group.counter("capacity_stalls", &stats_.capacityStalls);
        group.gauge("credits", [this]() { return double(totalCredits()); });
    }

    const Stats &stats() const { return stats_; }

    std::uint64_t
    totalCredits() const
    {
        std::uint64_t total = 0;
        for (auto count : counters)
            total += count;
        return total;
    }

    /**
     * Serialise selection state + counters; every credit must have been
     * released (quiesced tick).  The RNG and round-robin cursor shape the
     * resumed dispatch order, so both are part of the checkpoint.
     */
    void
    saveState(CkptWriter &w) const
    {
        SW_ASSERT(totalCredits() == 0,
                  "distributor checkpointed with outstanding credits");
        w.section("distributor");
        w.u32(std::uint32_t(counters.size()));
        std::uint64_t rng_state[4];
        rng.snapshot(rng_state);
        for (std::uint64_t word : rng_state)
            w.u64(word);
        w.u32(rrNext);
        w.u64(stats_.dispatched);
        w.u64(stats_.capacityStalls);
    }

    /** Restore state saved by saveState(); SM count must match. */
    void
    restoreState(CkptReader &r)
    {
        r.expectSection("distributor");
        std::uint32_t sms = r.u32();
        if (sms != counters.size()) {
            fatal("checkpoint distributor has %u SMs, this config has %zu",
                  sms, counters.size());
        }
        std::uint64_t rng_state[4];
        for (auto &word : rng_state)
            word = r.u64();
        rng.restore(rng_state);
        rrNext = r.u32();
        if (rrNext >= counters.size())
            fatal("checkpoint distributor cursor %u out of range", rrNext);
        stats_.dispatched = r.u64();
        stats_.capacityStalls = r.u64();
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    SmId
    selectRoundRobin()
    {
        for (std::size_t i = 0; i < counters.size(); ++i) {
            SmId sm = SmId((rrNext + i) % counters.size());
            if (counters[sm] < capacity) {
                rrNext = (sm + 1) % std::uint32_t(counters.size());
                return sm;
            }
        }
        return kInvalidSm;
    }

    SmId
    selectRandom()
    {
        // A few random probes, then fall back to a scan.
        for (int attempt = 0; attempt < 4; ++attempt) {
            SmId sm = SmId(rng.range(counters.size()));
            if (counters[sm] < capacity)
                return sm;
        }
        for (SmId sm = 0; sm < SmId(counters.size()); ++sm)
            if (counters[sm] < capacity)
                return sm;
        return kInvalidSm;
    }

    SmId
    selectStallAware()
    {
        SW_ASSERT(bool(stallProbe), "stall-aware policy needs a probe");
        SmId best = kInvalidSm;
        std::uint32_t best_stalled = 0;
        for (SmId sm = 0; sm < SmId(counters.size()); ++sm) {
            if (counters[sm] >= capacity)
                continue;
            std::uint32_t stalled = stallProbe(sm);
            if (best == kInvalidSm || stalled > best_stalled) {
                best = sm;
                best_stalled = stalled;
            }
        }
        return best;
    }

    std::vector<std::uint32_t> counters;
    std::uint32_t capacity;
    DistributorPolicy policy_;
    Rng rng;
    StallProbeFn stallProbe;
    std::uint32_t rrNext = 0;
    Stats stats_;
};

} // namespace sw

#endif // SW_CORE_DISTRIBUTOR_HH
