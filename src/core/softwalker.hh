/**
 * @file
 * SoftWalker backend: the paper's contribution, assembled.
 *
 * Installs a Request Distributor at the L2 TLB, a SoftWalker Controller +
 * SoftPWB + PW Warp on every SM, and (in Hybrid mode, §5.4) keeps the
 * hardware PTW pool as the preferred fast path, spilling to software
 * walkers only when no hardware walker is free.
 */

#ifndef SW_CORE_SOFTWALKER_HH
#define SW_CORE_SOFTWALKER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/controller.hh"
#include "core/distributor.hh"
#include "gpu/gpu.hh"
#include "sim/config.hh"
#include "vm/ptw.hh"
#include "vm/walk.hh"

namespace sw {

/** Software (or hybrid software+hardware) walk backend. */
class SoftWalkerBackend : public WalkBackend
{
  public:
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t toSoftware = 0;
        std::uint64_t toHardware = 0;      ///< hybrid fast path
        std::uint64_t queuedNoCapacity = 0;///< all PW Warps at capacity
        std::uint64_t peakQueued = 0;
    };

    /**
     * @param gpu fully constructed GPU (SMs and engine exist)
     * @param cfg configuration (mode selects pure SoftWalker vs Hybrid)
     */
    SoftWalkerBackend(Gpu &gpu, const GpuConfig &cfg);

    void submit(WalkRequest req) override;
    std::uint64_t inFlight() const override { return inFlightCount; }
    std::string name() const override;
    void resetStats() override;

    /**
     * Distributor credit conservation + PW-Warp slot lifecycle audits;
     * in Hybrid mode also registers the hardware pool's audits.
     */
    void registerAudits(Auditor &auditor) override;

    /** Forward the tracer to every PW Warp (and the hybrid hw pool). */
    void setTracer(TranslationTracer *tracer) override;

    /** Register backend, distributor, per-SM controller + warp counters. */
    void registerStats(StatGroup group) override;

    /** PW-Warp occupancy / SoftPWB / queue-depth time-series gauges. */
    void registerGauges(TimeSeriesSampler &sampler) override;

    /** Requests parked at the distributor awaiting PW-Warp capacity. */
    std::size_t queuedRequests() const;

    const Stats &stats() const { return stats_; }
    const RequestDistributor &distributor() const { return *distributor_; }
    const SoftWalkerController &controller(SmId sm) const
    {
        return *controllers.at(sm);
    }
    const HardwarePtwPool *hardwarePool() const { return hwPool.get(); }

    /** Aggregate PW Warp stats across all SMs. */
    PwWarp::Stats aggregatePwWarpStats() const;

    /**
     * Serialise distributor + per-SM controllers (+ hybrid hw pool) into a
     * checkpoint; must be called only at a quiesced tick.
     */
    void saveState(CkptWriter &w) const override;

    /** Restore state saved by saveState(). */
    void restoreState(CkptReader &r) override;

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    void dispatchSoftware(WalkRequest req);
    void onSoftwareComplete(SmId sm, const WalkResult &result);
    void drainQueue();
    /**
     * Distributor pick for @p asid's walk: the full SM range normally,
     * the tenant's own SM slice under MIG partitioning.
     */
    SmId selectTarget(Asid asid);
    /** Ship a dispatched request across the L2 TLB -> SM interconnect. */
    void sendToSm(SmId target, WalkRequest req);

    Gpu &gpu;
    GpuConfig cfg;
    bool hybrid;
    WalkCompleteFn engineComplete;

    std::unique_ptr<RequestDistributor> distributor_;
    std::vector<std::unique_ptr<SoftWalkerController>> controllers;
    std::unique_ptr<HardwarePtwPool> hwPool;

    /**
     * Requests waiting for PW-Warp capacity, one queue per tenant.  The
     * arrival sequence number lets the Demand arbiter reconstruct the
     * single global FIFO (head-of-line blocking across tenants is the
     * walk-queue interference the co-run harness measures); the
     * TenantRoundRobin arbiter instead rotates across non-empty queues.
     */
    struct QueuedWalk
    {
        WalkRequest req;
        std::uint64_t seq = 0;
    };
    std::vector<std::deque<QueuedWalk>> waiting;
    std::uint64_t nextQueueSeq = 0;
    /** Next tenant the round-robin arbiter offers capacity to. */
    std::uint32_t drainRrTenant = 0;
    std::uint64_t inFlightCount = 0;
    /** Dispatched requests still crossing the L2 TLB -> SM interconnect. */
    std::uint64_t commInTransit = 0;

    Stats stats_;
};

/**
 * Build and install the right backend for @p cfg.mode on @p gpu.
 * HardwarePtw/Ideal GPUs already self-installed; this is the entry point
 * harnesses use for every mode.
 */
void installWalkBackend(Gpu &gpu);

/** Access the SoftWalker backend of a GPU (nullptr in hardware modes). */
SoftWalkerBackend *softWalkerOf(Gpu &gpu);

} // namespace sw

#endif // SW_CORE_SOFTWALKER_HH
