/**
 * @file
 * SoftWalker Controller (§4.4): the per-SM unit that accepts page-walk
 * requests from the Request Distributor, fills them into the SoftPWB
 * (updating the status bitmap), and triggers the PW Warp.
 */

#ifndef SW_CORE_CONTROLLER_HH
#define SW_CORE_CONTROLLER_HH

#include <cstdint>
#include <memory>

#include "core/pw_warp.hh"
#include "core/soft_pwb.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "vm/walk.hh"

namespace sw {

/** Per-SM controller: SoftPWB + PW Warp pair. */
class SoftWalkerController
{
  public:
    struct Stats
    {
        std::uint64_t accepted = 0;
    };

    SoftWalkerController(EventQueue &eq, SmId sm,
                         std::uint32_t pwb_entries,
                         const AddressSpaceManager &spaces,
                         PwWarp::Hooks hooks, PwWarpCodeTiming timing,
                         std::uint32_t lanes, Cycle comm_latency)
        : eventq(eq), smId(sm), pwb(pwb_entries),
          warp(std::make_unique<PwWarp>(eq, spaces, pwb, std::move(hooks),
                                        timing, lanes, comm_latency))
    {
    }

    /** A request arrived from the distributor (after the comm latency). */
    void
    accept(WalkRequest req)
    {
        ++stats_.accepted;
        pwb.insert(std::move(req), eventq.now());
        warp->notifyWork();
    }

    SmId sm() const { return smId; }
    const SoftPwb &buffer() const { return pwb; }
    const PwWarp &pwWarp() const { return *warp; }
    const Stats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_ = Stats{};
        pwb.resetStats();
        warp->resetStats();
    }

    /** Forward the tracer to the PW Warp, stamping with this SM's id. */
    void setTracer(TranslationTracer *tracer) { warp->setTracer(tracer, smId); }

    /** Register controller + SoftPWB + PW Warp counters. */
    void
    registerStats(StatGroup group)
    {
        group.counter("accepted", &stats_.accepted);
        pwb.registerStats(group.group("softpwb"));
        warp->registerStats(group.group("pwwarp"));
    }

    /** Serialise controller + SoftPWB + PW Warp counters (quiesced). */
    void
    saveState(CkptWriter &w) const
    {
        w.section("sw_controller");
        w.u32(smId);
        w.u64(stats_.accepted);
        pwb.saveState(w);
        warp->saveState(w);
    }

    /** Restore state saved by saveState(). */
    void
    restoreState(CkptReader &r)
    {
        r.expectSection("sw_controller");
        std::uint32_t sm = r.u32();
        if (sm != smId)
            fatal("checkpoint controller for SM %u restored into SM %u",
                  sm, smId);
        stats_.accepted = r.u64();
        pwb.restoreState(r);
        warp->restoreState(r);
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    EventQueue &eventq;
    SmId smId;
    SoftPwb pwb;
    std::unique_ptr<PwWarp> warp;
    Stats stats_;
};

} // namespace sw

#endif // SW_CORE_CONTROLLER_HH
