#include "core/softwalker.hh"

#include <algorithm>

#include "check/audit.hh"
#include "obs/sampler.hh"
#include "sim/logging.hh"

namespace sw {

SoftWalkerBackend::SoftWalkerBackend(Gpu &gpu_ref, const GpuConfig &config)
    : gpu(gpu_ref), cfg(config),
      hybrid(config.mode == TranslationMode::Hybrid),
      engineComplete(gpu_ref.engine().completionFn())
{
    SW_ASSERT(cfg.mode == TranslationMode::SoftWalker ||
              cfg.mode == TranslationMode::Hybrid,
              "SoftWalkerBackend built for a hardware mode");

    StallProbeFn probe;
    if (cfg.distributorPolicy == DistributorPolicy::StallAware) {
        probe = [this](SmId sm) { return gpu.sm(sm).stalledWarps(); };
    }
    bool pinned = cfg.migPartitioning && cfg.numTenants > 1;
    distributor_ = std::make_unique<RequestDistributor>(
        cfg.numSms, cfg.softPwbEntries, cfg.distributorPolicy,
        cfg.rngSeed ^ 0x5077a1cebeefULL, std::move(probe),
        pinned ? cfg.numTenants : 1);
    waiting.resize(cfg.numTenants);

    EventQueue &eq = gpu.eventQueue();
    TranslationEngine &engine = gpu.engine();
    Cycle comm = cfg.effectiveCommLatency();
    PwWarpCodeTiming timing;

    controllers.reserve(cfg.numSms);
    for (SmId sm = 0; sm < cfg.numSms; ++sm) {
        PwWarp::Hooks hooks;
        hooks.reserveIssue = [this, sm](std::uint32_t slots) {
            return gpu.sm(sm).reservePwIssue(slots);
        };
        hooks.ptAccess = [&engine](PhysAddr addr,
                                   std::function<void()> done) {
            engine.ptAccess(addr, std::move(done));
        };
        hooks.pwcFill = [&engine](int level, TranslationKey key,
                                  PhysAddr base) {
            engine.pwc().fill(engine.pageTableFor(key.asid), level, key,
                              base);
        };
        hooks.complete = [this, sm](const WalkResult &result) {
            onSoftwareComplete(sm, result);
        };
        controllers.push_back(std::make_unique<SoftWalkerController>(
            eq, sm, cfg.softPwbEntries, engine.spaces(), std::move(hooks),
            timing, cfg.pwWarpThreads, comm));
    }

    if (hybrid) {
        HardwarePtwPool::Params pool;
        pool.numWalkers = cfg.numPtws;
        pool.pwbEntries = cfg.pwbEntries;
        pool.pwbPorts = cfg.pwbPorts;
        pool.nhaCoalescing = cfg.nhaCoalescing;
        pool.nhaSectorBytes = cfg.sectorBytes;
        hwPool = std::make_unique<HardwarePtwPool>(
            eq, pool, engine.spaces(), engine.pwc(),
            [&engine](PhysAddr addr, std::function<void()> done) {
                engine.ptAccess(addr, std::move(done));
            },
            [this](const WalkResult &result) {
                SW_ASSERT(inFlightCount > 0, "hybrid in-flight underflow");
                --inFlightCount;
                engineComplete(result);
            });
    }
}

std::string
SoftWalkerBackend::name() const
{
    return hybrid ? "softwalker-hybrid" : "softwalker";
}

void
SoftWalkerBackend::resetStats()
{
    stats_ = Stats{};
    distributor_->resetStats();
    for (auto &controller : controllers)
        controller->resetStats();
    if (hwPool)
        hwPool->resetStats();
}

void
SoftWalkerBackend::submit(WalkRequest req)
{
    ++stats_.submitted;
    ++inFlightCount;

    // Hybrid fast path (§5.4): prefer a free hardware walker; spill to
    // software only once the hardware subsystem is saturated.
    if (hybrid) {
        bool hw_free =
            hwPool->busyWalkers() + hwPool->pwbOccupancy() < cfg.numPtws;
        if (hw_free) {
            ++stats_.toHardware;
            hwPool->submit(std::move(req));
            return;
        }
    }
    dispatchSoftware(std::move(req));
}

SmId
SoftWalkerBackend::selectTarget(Asid asid)
{
    if (cfg.migPartitioning && cfg.numTenants > 1) {
        // MIG partitioning pins software walks to the tenant's own SM
        // slice: one tenant's PW Warps never execute another's walks.
        auto [begin, count] = tenantSmRange(cfg, asid);
        return distributor_->select(begin, count, asid);
    }
    return distributor_->select();
}

void
SoftWalkerBackend::sendToSm(SmId target, WalkRequest req)
{
    ++stats_.toSoftware;
    // L2 TLB -> SM interconnect hop (modeled as the L2 TLB latency, §6.1).
    ++commInTransit;
    // WalkRequest outgrew the inline event budget when it gained the
    // {asid, vpn} key; box it so the hop event stays inline.
    auto boxed = std::make_unique<WalkRequest>(std::move(req));
    auto fire = [this, target, boxed = std::move(boxed)]() {
        SW_ASSERT(commInTransit > 0, "interconnect transit underflow");
        --commInTransit;
        controllers[target]->accept(std::move(*boxed));
    };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "interconnect hop event must not spill to the slab pool");
    gpu.eventQueue().scheduleIn(cfg.effectiveCommLatency(), std::move(fire));
}

std::size_t
SoftWalkerBackend::queuedRequests() const
{
    std::size_t total = 0;
    for (const auto &queue : waiting)
        total += queue.size();
    return total;
}

void
SoftWalkerBackend::dispatchSoftware(WalkRequest req)
{
    SmId target = selectTarget(req.key.asid);
    if (target == kInvalidSm) {
        // Every eligible PW Warp is at SoftPWB capacity: the request
        // queues at the distributor (this wait is part of the measured
        // queueing delay).
        waiting[req.key.asid].push_back({std::move(req), nextQueueSeq++});
        ++stats_.queuedNoCapacity;
        stats_.peakQueued =
            std::max<std::uint64_t>(stats_.peakQueued, queuedRequests());
        return;
    }
    sendToSm(target, std::move(req));
}

void
SoftWalkerBackend::onSoftwareComplete(SmId sm, const WalkResult &result)
{
    distributor_->release(sm);
    SW_ASSERT(inFlightCount > 0, "software in-flight underflow");
    --inFlightCount;
    engineComplete(result);
    drainQueue();
}

void
SoftWalkerBackend::drainQueue()
{
    if (cfg.pwArbitration == PwArbitration::Demand) {
        // Demand: one global FIFO reconstructed from the arrival sequence
        // numbers.  The oldest queued walk gets the freed capacity; if its
        // tenant's slice is still full, everything behind it waits
        // (cross-tenant head-of-line blocking — the interference signal).
        while (true) {
            std::deque<QueuedWalk> *head = nullptr;
            for (auto &queue : waiting) {
                if (queue.empty())
                    continue;
                if (!head || queue.front().seq < head->front().seq)
                    head = &queue;
            }
            if (!head)
                return;
            SmId target = selectTarget(head->front().req.key.asid);
            if (target == kInvalidSm)
                return;
            WalkRequest req = std::move(head->front().req);
            head->pop_front();
            sendToSm(target, std::move(req));
        }
    }

    // TenantRoundRobin: rotate freed capacity across tenants with queued
    // walks, so a walk-heavy tenant cannot monopolize the PW Warps.
    std::uint32_t tenants = std::uint32_t(waiting.size());
    std::uint32_t barren = 0;
    while (barren < tenants) {
        std::uint32_t tenant = drainRrTenant;
        drainRrTenant = (drainRrTenant + 1) % tenants;
        if (waiting[tenant].empty()) {
            ++barren;
            continue;
        }
        SmId target = selectTarget(waiting[tenant].front().req.key.asid);
        if (target == kInvalidSm) {
            ++barren;
            continue;
        }
        WalkRequest req = std::move(waiting[tenant].front().req);
        waiting[tenant].pop_front();
        sendToSm(target, std::move(req));
        barren = 0;
    }
}

void
SoftWalkerBackend::setTracer(TranslationTracer *tracer)
{
    for (auto &controller : controllers)
        controller->setTracer(tracer);
    if (hwPool)
        hwPool->setTracer(tracer);
}

void
SoftWalkerBackend::registerStats(StatGroup group)
{
    group.counter("submitted", &stats_.submitted);
    group.counter("to_software", &stats_.toSoftware);
    group.counter("to_hardware", &stats_.toHardware);
    group.counter("queued_no_capacity", &stats_.queuedNoCapacity);
    group.counter("peak_queued", &stats_.peakQueued);
    group.gauge("inflight", [this]() { return double(inFlightCount); });
    group.gauge("queued", [this]() { return double(queuedRequests()); });
    distributor_->registerStats(group.group("distributor"));
    for (SmId sm = 0; sm < SmId(controllers.size()); ++sm)
        controllers[sm]->registerStats(group.group(strprintf("sm%u", sm)));
    if (hwPool)
        hwPool->registerStats(group.group("hw_pool"));
}

void
SoftWalkerBackend::registerGauges(TimeSeriesSampler &sampler)
{
    sampler.gauge("pw_warps_busy", [this]() {
        double busy = 0;
        for (const auto &controller : controllers)
            if (controller->pwWarp().busy())
                ++busy;
        return busy;
    });
    sampler.gauge("softpwb_occupied", [this]() {
        double occupied = 0;
        for (const auto &controller : controllers)
            occupied += controller->buffer().occupiedCount();
        return occupied;
    });
    sampler.gauge("distributor_queue_depth",
                  [this]() { return double(queuedRequests()); });
    if (hwPool)
        hwPool->registerGauges(sampler);
}

void
SoftWalkerBackend::registerAudits(Auditor &auditor)
{
    // Distributor credits charged == requests alive on the software path:
    // crossing the interconnect, sitting in a SoftPWB slot, or riding a
    // finished batch's FL2T back to the L2 TLB.  A credit leak starves the
    // distributor; an early release overflows a SoftPWB.
    auditor.registerAudit(
        "core.distributor.credit-conservation", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            std::uint64_t on_sms = 0;
            for (const auto &controller : controllers) {
                on_sms += controller->buffer().occupiedCount();
                on_sms += controller->pwWarp().fillsInTransit();
            }
            std::uint64_t credits = distributor_->totalCredits();
            if (credits != commInTransit + on_sms) {
                ctx.fail(strprintf(
                    "distributor credits %llu != interconnect transit %llu "
                    "+ on-SM requests %llu",
                    static_cast<unsigned long long>(credits),
                    static_cast<unsigned long long>(commInTransit),
                    static_cast<unsigned long long>(on_sms)));
            }
            for (SmId sm = 0; sm < SmId(controllers.size()); ++sm) {
                if (distributor_->counter(sm) >
                    distributor_->perCoreCapacity()) {
                    ctx.fail(strprintf(
                        "SM %u credit counter %u exceeds capacity %u",
                        sm, distributor_->counter(sm),
                        distributor_->perCoreCapacity()));
                }
            }
        });

    // PW-Warp slot lifecycle: Processing slots exist only while the warp
    // is running a batch, and never more than it has lanes.
    auditor.registerAudit(
        "core.pwwarp.slot-lifecycle", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            for (SmId sm = 0; sm < SmId(controllers.size()); ++sm) {
                const SoftWalkerController &controller = *controllers[sm];
                std::uint32_t processing =
                    controller.buffer().processingCount();
                if (processing > cfg.pwWarpThreads) {
                    ctx.fail(strprintf(
                        "SM %u: %u slots processing but the PW Warp has "
                        "%u lanes", sm, processing, cfg.pwWarpThreads));
                }
                if (!controller.pwWarp().busy() && processing != 0) {
                    ctx.fail(strprintf(
                        "SM %u: %u slots stuck in Processing while the "
                        "PW Warp is idle", sm, processing));
                }
            }
        });

    if (hwPool)
        hwPool->registerAudits(auditor);
}

PwWarp::Stats
SoftWalkerBackend::aggregatePwWarpStats() const
{
    PwWarp::Stats agg;
    for (const auto &controller : controllers) {
        const PwWarp::Stats &s = controller->pwWarp().stats();
        agg.batches += s.batches;
        agg.walksCompleted += s.walksCompleted;
        agg.instructionsIssued += s.instructionsIssued;
        agg.ldptIssued += s.ldptIssued;
        agg.fl2tIssued += s.fl2tIssued;
        agg.fpwcIssued += s.fpwcIssued;
        agg.ffbIssued += s.ffbIssued;
        agg.batchSize.merge(s.batchSize);
        agg.batchLatency.merge(s.batchLatency);
    }
    return agg;
}

void
SoftWalkerBackend::saveState(CkptWriter &w) const
{
    SW_ASSERT(queuedRequests() == 0 && inFlightCount == 0 &&
              commInTransit == 0,
              "SoftWalker backend checkpointed with walks in flight");
    w.section("softwalker");
    w.u64(stats_.submitted);
    w.u64(stats_.toSoftware);
    w.u64(stats_.toHardware);
    w.u64(stats_.queuedNoCapacity);
    w.u64(stats_.peakQueued);
    // The arrival counter and arbitration cursor shape post-resume
    // dispatch order even though the queues themselves are drained.
    w.u64(nextQueueSeq);
    w.u32(drainRrTenant);
    distributor_->saveState(w);
    for (const auto &controller : controllers)
        controller->saveState(w);
    w.u8(hwPool ? 1 : 0);
    if (hwPool)
        hwPool->saveState(w);
}

void
SoftWalkerBackend::restoreState(CkptReader &r)
{
    r.expectSection("softwalker");
    stats_.submitted = r.u64();
    stats_.toSoftware = r.u64();
    stats_.toHardware = r.u64();
    stats_.queuedNoCapacity = r.u64();
    stats_.peakQueued = r.u64();
    nextQueueSeq = r.u64();
    drainRrTenant = r.u32();
    if (drainRrTenant >= waiting.size())
        fatal("checkpoint arbitration cursor %u out of range", drainRrTenant);
    distributor_->restoreState(r);
    for (auto &controller : controllers)
        controller->restoreState(r);
    bool has_pool = r.u8() != 0;
    if (has_pool != bool(hwPool)) {
        fatal("checkpoint %s a hybrid hardware pool, this config %s",
              has_pool ? "includes" : "lacks",
              hwPool ? "expects one" : "does not");
    }
    if (hwPool)
        hwPool->restoreState(r);
}

void
installWalkBackend(Gpu &gpu)
{
    const GpuConfig &cfg = gpu.config();
    if (cfg.mode == TranslationMode::HardwarePtw ||
        cfg.mode == TranslationMode::Ideal) {
        // The GPU self-installed these at construction.
        SW_ASSERT(gpu.backendInstalled(), "hardware backend missing");
        return;
    }
    gpu.installBackend(std::make_unique<SoftWalkerBackend>(gpu, cfg));
}

SoftWalkerBackend *
softWalkerOf(Gpu &gpu)
{
    return dynamic_cast<SoftWalkerBackend *>(gpu.engine().backend());
}

} // namespace sw
