/**
 * @file
 * Page Walk Warp (§4.2, §4.6): the dedicated, isolated warp resident on
 * each SM that executes the Fig 14 software page-walk routine.
 *
 * The warp sits in a wait-execute loop.  When the SoftWalker Controller
 * signals valid SoftPWB entries, it claims a batch (one request per lane,
 * up to 32), charges the SM issue port for the routine's instructions
 * (with highest scheduling priority), performs the per-level LDPT memory
 * loads in SIMT lockstep, fills the PWC (FPWC), and finally sends FL2T
 * fills back to the L2 TLB across the interconnect.
 */

#ifndef SW_CORE_PW_WARP_HH
#define SW_CORE_PW_WARP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/isa.hh"
#include "core/soft_pwb.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"
#include "vm/page_walk_cache.hh"
#include "vm/walk.hh"

namespace sw {

/** Per-lane software page walk executor. */
class PwWarp
{
  public:
    /** Environment supplied by the SoftWalker backend. */
    struct Hooks
    {
        /** Sm::reservePwIssue — charge issue slots, returns finish cycle. */
        std::function<Cycle(std::uint32_t)> reserveIssue;
        /** Engine's page-table memory read (LDPT). */
        PtAccessFn ptAccess;
        /** FPWC: cache (level, {asid, vpn}) -> table base. */
        std::function<void(int, TranslationKey, PhysAddr)> pwcFill;
        /**
         * FL2T arrival at the L2 TLB (after the communication latency):
         * resolves the walk and releases the distributor credit.
         */
        WalkCompleteFn complete;
    };

    struct Stats
    {
        std::uint64_t batches = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t instructionsIssued = 0;
        std::uint64_t ldptIssued = 0;
        std::uint64_t fl2tIssued = 0;
        std::uint64_t fpwcIssued = 0;
        std::uint64_t ffbIssued = 0;
        LatencyStat batchSize;
        LatencyStat batchLatency;
    };

    PwWarp(EventQueue &eq, const AddressSpaceManager &spaces, SoftPwb &pwb,
           Hooks hooks, PwWarpCodeTiming timing, std::uint32_t lanes,
           Cycle comm_latency);

    PwWarp(const PwWarp &) = delete;
    PwWarp &operator=(const PwWarp &) = delete;

    /** Controller signal: valid entries are available. */
    void notifyWork();

    bool busy() const { return running; }

    /**
     * FL2T/FFB fills issued by a finished batch that are still crossing
     * the interconnect back to the L2 TLB.  The Simulation Auditor uses
     * this to balance distributor credits against SoftPWB occupancy.
     */
    std::uint32_t fillsInTransit() const { return fillsInTransit_; }

    void resetStats() { stats_ = Stats{}; }

    /**
     * Install a TranslationTracer; @p where identifies this warp's SM in
     * the emitted stamps (the warp itself doesn't know its SM id).
     */
    void
    setTracer(TranslationTracer *tracer, std::uint32_t where)
    {
        tracer_ = tracer;
        tracerWhere = where;
    }

    /** Register the warp's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }

    /** Serialise counters (the warp must be idle: quiesced tick). */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(CkptReader &r);

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    struct Lane
    {
        std::uint32_t slot = 0;
        WalkCursor cursor;
        Cycle pickedUp = 0;
        Cycle created = 0;
        std::uint64_t id = 0;
        TranslationKey key;
    };

    void startBatch();
    void levelIteration();
    void finishBatch();

    EventQueue &eventq;
    const AddressSpaceManager &spaces;
    SoftPwb &pwb;
    Hooks hooks;
    PwWarpCodeTiming timing;
    std::uint32_t numLanes;
    Cycle commLatency;

    bool running = false;
    std::vector<Lane> lanes;
    std::uint32_t pendingLoads = 0;
    std::uint32_t fillsInTransit_ = 0;
    Cycle batchStart = 0;
    TranslationTracer *tracer_ = nullptr;
    std::uint32_t tracerWhere = 0;

    Stats stats_;
};

} // namespace sw

#endif // SW_CORE_PW_WARP_HH
