#include "area/cacti_lite.hh"

#include "sim/logging.hh"

namespace sw {

double
portScale(std::uint32_t ports)
{
    SW_ASSERT(ports >= 1, "structure needs at least one port");
    // Each additional port adds ~30% pitch per dimension.
    double linear = 1.0 + 0.3 * double(ports - 1);
    return linear * linear;
}

double
sramAreaMm2(std::uint64_t bits, std::uint32_t ports)
{
    double cell_um2 = kSramBitCellUm2 * portScale(ports);
    return double(bits) * cell_um2 * kPeripheryFactor * 1e-6;
}

double
camAreaMm2(std::uint64_t entries, std::uint32_t bits_per_entry,
           std::uint32_t search_ports)
{
    double cell_um2 = kCamBitCellUm2 * portScale(search_ports);
    return double(entries) * double(bits_per_entry) * cell_um2 *
           kPeripheryFactor * 1e-6;
}

PtwSubsystemArea
ptwSubsystemArea(std::uint32_t num_ptws, std::uint32_t pwb_entries,
                 std::uint32_t pwb_ports, std::uint32_t mshr_entries)
{
    PtwSubsystemArea area;
    // PWB entry: 33 b VPN + 31 b base PFN + level/state bits ~ 96 b (§4.4).
    area.pwbMm2 = camAreaMm2(pwb_entries, 96, pwb_ports);
    // L2 TLB MSHR entry: tag + requester metadata + merge list head ~128 b.
    area.mshrMm2 = camAreaMm2(mshr_entries, 128, pwb_ports);
    // Walker FSM + per-walk registers: modest per-walker constant derived
    // from the prior-work datapoint of 192 walkers + 18-port PWB ~ 3.9% of
    // chip area (Lee et al., HPCA'25).
    area.walkerMm2 = 0.011 * double(num_ptws);
    area.totalMm2 = area.pwbMm2 + area.mshrMm2 + area.walkerMm2;
    return area;
}

double
softwalkerOverheadMm2(std::uint32_t num_sms, std::uint32_t l2_tlb_entries)
{
    // 1470 bits of PW Warp context + status bitmap per SM (§5.2).
    double per_sm = sramAreaMm2(1470, 1);
    // One pending bit per L2 TLB entry plus the synthesized control logic.
    double pending_bits = sramAreaMm2(l2_tlb_entries, 1);
    return per_sm * double(num_sms) + pending_bits + kInTlbMshrLogicMm2;
}

} // namespace sw
