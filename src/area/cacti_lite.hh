/**
 * @file
 * CACTI-lite: analytical area model for the SRAM/CAM structures the paper
 * costs out (§5.2, §5.3, Fig 15).
 *
 * The paper uses CACTI 7 for the PWB/MSHR CAMs and a 28 nm synthesis for
 * the In-TLB MSHR control logic.  Absolute mm² are process-dependent; what
 * Fig 15 needs is the *relative* area of PWB/MSHR configurations, whose
 * shape is dominated by two well-established behaviours this model keeps:
 * CAM cells cost ~2x SRAM cells, and multi-porting grows cell area
 * super-linearly (wire pitch per port in both dimensions).
 */

#ifndef SW_AREA_CACTI_LITE_HH
#define SW_AREA_CACTI_LITE_HH

#include <cstdint>

namespace sw {

/** 7 nm-class HD SRAM bit cell (um^2). */
inline constexpr double kSramBitCellUm2 = 0.031;

/** CAM bit cell: match line + 2 search lines; ~2x the SRAM cell. */
inline constexpr double kCamBitCellUm2 = 0.062;

/** Peripheral overhead factor (decoders, sense amps, comparators). */
inline constexpr double kPeripheryFactor = 1.35;

/**
 * Port scaling: each extra port adds a wordline/bitline pair in both
 * dimensions, growing cell area roughly quadratically in port count.
 */
double portScale(std::uint32_t ports);

/** Area of a @p bits SRAM structure with @p ports ports, in mm^2. */
double sramAreaMm2(std::uint64_t bits, std::uint32_t ports = 1);

/**
 * Area of a CAM with @p entries x @p bits_per_entry and @p search_ports
 * search ports, in mm^2.
 */
double camAreaMm2(std::uint64_t entries, std::uint32_t bits_per_entry,
                  std::uint32_t search_ports = 1);

/** Area breakdown of the hardware page-walk subsystem. */
struct PtwSubsystemArea
{
    double pwbMm2 = 0;      ///< page walk buffer (CAM)
    double mshrMm2 = 0;     ///< L2 TLB MSHR file (CAM)
    double walkerMm2 = 0;   ///< walker state machines
    double totalMm2 = 0;
};

/**
 * Cost of a hardware configuration: @p num_ptws walkers, a @p pwb_entries
 * PWB with @p pwb_ports ports, and @p mshr_entries L2 TLB MSHRs.
 */
PtwSubsystemArea ptwSubsystemArea(std::uint32_t num_ptws,
                                  std::uint32_t pwb_entries,
                                  std::uint32_t pwb_ports,
                                  std::uint32_t mshr_entries);

/**
 * SoftWalker's added hardware (§5.2): per-SM controller state (1470 bits)
 * plus the In-TLB MSHR pending bits and control logic.
 */
double softwalkerOverheadMm2(std::uint32_t num_sms,
                             std::uint32_t l2_tlb_entries);

/** The paper's synthesized In-TLB MSHR control logic (28 nm): 0.0061 mm^2. */
inline constexpr double kInTlbMshrLogicMm2 = 0.0061;

/** GA102 full-chip area the paper cites for perspective (mm^2). */
inline constexpr double kGa102ChipMm2 = 628.4;

} // namespace sw

#endif // SW_AREA_CACTI_LITE_HH
