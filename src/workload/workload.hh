/**
 * @file
 * Workload abstraction: the address-stream side of a GPU kernel.
 *
 * The simulator abstracts computation as issue gaps between global memory
 * instructions; what it models faithfully is the *page-level access
 * pattern* — footprint, lanes-per-warp divergence, and locality — which is
 * what drives address-translation behaviour (§2.2).  Concrete generators
 * mimicking the paper's Table 4 suite live in generators.hh/benchmarks.hh.
 */

#ifndef SW_WORKLOAD_WORKLOAD_HH
#define SW_WORKLOAD_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace sw {

class CkptWriter;
class CkptReader;

/** One warp-level global memory instruction. */
struct WarpInstr
{
    /** Compute cycles the warp spends before issuing this instruction. */
    std::uint32_t computeGap = 0;
    /**
     * Number of active lanes (0..32).  Generators emit 1..32; 0 is the
     * idle instruction a drained trace replay produces — no memory
     * access, the warp just burns the issue slot (see trace/).
     */
    std::uint32_t activeLanes = 32;
    /** Per-lane virtual byte addresses (only [0, activeLanes) are used). */
    std::array<VirtAddr, 32> addrs{};
    bool write = false;
};

/** Generator of per-warp address streams. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next memory instruction for warp (sm, warp). */
    virtual WarpInstr next(SmId sm, WarpId warp, Rng &rng) = 0;

    /** Total bytes the kernel touches (Table 4 "Footprint"). */
    virtual std::uint64_t footprintBytes() const = 0;

    virtual std::string name() const = 0;

    /** Table 4 classification (required PTWs > 32). */
    virtual bool irregular() const = 0;

    /**
     * Serialise generator-internal cursor state into a checkpoint.  The
     * default is a no-op: stateless generators reproduce their stream from
     * the (checkpointed) per-SM RNGs alone.  Generators with persistent
     * cursors must override both hooks or the resumed stream diverges.
     */
    virtual void saveState(CkptWriter &w) const { (void)w; }

    /** Restore state saved by saveState(). */
    virtual void restoreState(CkptReader &r) { (void)r; }
};

} // namespace sw

#endif // SW_WORKLOAD_WORKLOAD_HH
