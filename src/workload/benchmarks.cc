#include "workload/benchmarks.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "sim/logging.hh"
#include "workload/generators.hh"

namespace sw {

namespace {

constexpr std::uint64_t MB = 1024ull * 1024;

std::vector<BenchmarkInfo>
buildSuite()
{
    std::vector<BenchmarkInfo> suite;

    // The window slide rate (pages per warp instruction) is calibrated to
    // each benchmark's published L2 TLB MPKI: rate ~= 32 * MPKI / 1000.
    auto graph = [](std::string name, double gather, double rate,
                    double cold, bool irregular, std::uint32_t gap) {
        return [=](std::uint64_t bytes) -> std::unique_ptr<Workload> {
            GraphWorkload::Params params;
            params.gatherFraction = gather;
            params.pagesPerInstr = rate;
            params.coldFraction = cold;
            return std::make_unique<GraphWorkload>(name, bytes, irregular,
                                                   gap, params);
        };
    };
    auto sparse = [](std::string name, double gather, double rate,
                     double cold, std::uint64_t set_stride,
                     std::uint32_t gap) {
        return [=](std::uint64_t bytes) -> std::unique_ptr<Workload> {
            SparseWorkload::Params params;
            params.gatherFraction = gather;
            params.pagesPerInstr = rate;
            params.coldFraction = cold;
            params.setStridePages = set_stride;
            return std::make_unique<SparseWorkload>(name, bytes, gap,
                                                    params);
        };
    };
    auto streaming = [](std::string name, bool irregular, std::uint32_t gap,
                        std::uint64_t stride, std::uint32_t streams) {
        return [=](std::uint64_t bytes) -> std::unique_ptr<Workload> {
            StreamingWorkload::Params params;
            params.strideBytes = stride;
            params.numStreams = streams;
            return std::make_unique<StreamingWorkload>(name, bytes,
                                                       irregular, gap,
                                                       params);
        };
    };

    // ---- Irregular (required # PTWs > 32), Table 4 order ----------------
    suite.push_back({"bc", "betweenness centrality [GraphBIG]", 1194,
                     9.0819, 256, true, false,
                     graph("bc", 0.35, 0.29, 0.0, true, 30)});
    suite.push_back({"dc", "degree centrality [GraphBIG]", 1138, 26.17,
                     512, true, true,
                     graph("dc", 0.60, 0.84, 0.0, true, 25)});
    suite.push_back({"sssp", "single-source shortest path [GraphBIG]",
                     1788, 30.2808, 512, true, true,
                     graph("sssp", 0.65, 0.97, 0.0, true, 25)});
    suite.push_back({"gc", "graph coloring [GraphBIG]", 1294, 13.7029,
                     256, true, true,
                     graph("gc", 0.45, 0.44, 0.0, true, 30)});
    suite.push_back({"nw", "needleman-wunsch [Rodinia]", 612, 44.5329,
                     512, true, true,
                     [](std::uint64_t bytes) -> std::unique_ptr<Workload> {
                         WavefrontWorkload::Params params;
                         params.windowPages = 32;
                         params.pagesPerInstr = 1.42;
                         return std::make_unique<WavefrontWorkload>(
                             "nw", bytes, 20, params);
                     }});
    suite.push_back({"st2d", "stencil2d [SHOC]", 612, 4.8493, 256, true,
                     false,
                     streaming("st2d", true, 20, 8 * 1024, 3)});
    suite.push_back({"xsb", "xsbench [XSBench]", 360, 57.9595, 512, true,
                     true,
                     [](std::uint64_t bytes) -> std::unique_ptr<Workload> {
                         return std::make_unique<HashProbeWorkload>(
                             "xsb", bytes, 35, 0.10, 28, 1.85);
                     }});
    suite.push_back({"bfs", "breadth-first search [GraphBIG]", 1396,
                     22.1519, 256, true, true,
                     graph("bfs", 0.55, 0.71, 0.0, true, 25)});
    suite.push_back({"sy2k", "syr2k [Polybench]", 192, 120.696, 1024,
                     true, true, sparse("sy2k", 0.80, 3.86, 0.0, 0, 15)});
    suite.push_back({"spmv", "sparse matrix-vector multiply [SHOC]", 288,
                     2517.196, 512, true, true,
                     sparse("spmv", 0.85, 2.0, 0.0, 16, 15)});
    suite.push_back({"gesv", "gesummv [Polybench]", 226, 1320.543, 512,
                     true, true, sparse("gesv", 0.80, 1.0, 0.5, 0, 15)});
    suite.push_back({"gups", "giga-updates per second [GUPS]", 308,
                     318.8202, 1024, true, true,
                     [](std::uint64_t bytes) -> std::unique_ptr<Workload> {
                         return std::make_unique<RandomAccessWorkload>(
                             "gups", bytes, 40, /*cold_fraction=*/0.30);
                     }});

    // ---- Regular (required # PTWs <= 32) ---------------------------------
    suite.push_back({"cc", "connected components [GraphBIG]", 2306,
                     0.1309, 32, false, false,
                     graph("cc", 0.10, 0.004, 0.0, false, 30)});
    suite.push_back({"kc", "kcore [GraphBIG]", 1152, 0.5271, 32, false,
                     false, graph("kc", 0.10, 0.017, 0.0, false, 30)});
    suite.push_back({"2dc", "2dconv [Polybench]", 1120, 0.0767, 32, false,
                     false, streaming("2dc", false, 25, 0, 1)});
    suite.push_back({"fft", "fast fourier transform [SHOC]", 610, 0.077,
                     32, false, false, streaming("fft", false, 30, 0, 1)});
    suite.push_back({"histo", "histogram [CUDA samples]", 1124, 0.0976,
                     32, false, false,
                     [](std::uint64_t bytes) -> std::unique_ptr<Workload> {
                         return std::make_unique<HistogramWorkload>(
                             "histo", bytes, 25);
                     }});
    suite.push_back({"red", "reduction [CUDA samples]", 1124, 0.3383, 32,
                     false, false, streaming("red", false, 15, 0, 1)});
    suite.push_back({"scan", "scan [CUDA samples]", 516, 0.1458, 32,
                     false, false, streaming("scan", false, 20, 0, 1)});
    suite.push_back({"gemm", "gemm [CUDA samples]", 288, 0.0614, 32,
                     false, false, streaming("gemm", false, 10, 0, 1)});
    return suite;
}

/**
 * The name-keyed factory registry.  Static registrars (e.g. the "trace:"
 * scheme in src/trace) may run before the first lookup, so the registry
 * itself is a Meyers singleton and every entry point goes through it; the
 * Table 4 suite self-registers on first access.  A mutex guards mutation
 * because SweepRunner workers may instantiate workloads concurrently.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &
    instance()
    {
        static WorkloadRegistry registry;
        return registry;
    }

    void
    add(const std::string &name, WorkloadFactoryFn factory)
    {
        SW_ASSERT(factory != nullptr, "null workload factory");
        std::lock_guard<std::mutex> lock(mutex);
        if (!factories.emplace(name, std::move(factory)).second)
            fatal("workload '%s' registered twice", name.c_str());
    }

    void
    addScheme(const std::string &scheme, WorkloadSchemeFn factory)
    {
        SW_ASSERT(factory != nullptr, "null workload scheme factory");
        SW_ASSERT(scheme.find(':') == std::string::npos,
                  "scheme name '%s' must not contain ':'", scheme.c_str());
        std::lock_guard<std::mutex> lock(mutex);
        if (!schemes.emplace(scheme, std::move(factory)).second)
            fatal("workload scheme '%s' registered twice", scheme.c_str());
    }

    std::unique_ptr<Workload>
    make(const std::string &name, double footprint_scale)
    {
        WorkloadFactoryFn factory;
        WorkloadSchemeFn scheme_factory;
        std::string rest;
        {
            std::lock_guard<std::mutex> lock(mutex);
            ensureBuiltinsLocked();
            if (auto it = factories.find(name); it != factories.end()) {
                factory = it->second;
            } else if (std::size_t colon = name.find(':');
                       colon != std::string::npos) {
                if (auto sit = schemes.find(name.substr(0, colon));
                    sit != schemes.end()) {
                    scheme_factory = sit->second;
                    rest = name.substr(colon + 1);
                }
            }
        }
        // Factories run outside the lock: a trace factory does file I/O
        // and a scheme may legitimately call back into the registry.
        if (factory)
            return factory(footprint_scale);
        if (scheme_factory)
            return scheme_factory(rest, footprint_scale);
        fatal("unknown benchmark '%s' (valid: %s)", name.c_str(),
              validNames().c_str());
    }

    std::vector<std::string>
    names()
    {
        std::lock_guard<std::mutex> lock(mutex);
        ensureBuiltinsLocked();
        std::vector<std::string> out;
        out.reserve(factories.size() + schemes.size());
        for (const auto &[name, factory] : factories)
            out.push_back(name);
        for (const auto &[scheme, factory] : schemes)
            out.push_back(scheme + ":…");
        return out;
    }

  private:
    void
    ensureBuiltinsLocked()
    {
        if (builtinsRegistered)
            return;
        builtinsRegistered = true;
        for (const BenchmarkInfo &info : benchmarkSuite()) {
            auto [it, inserted] = factories.emplace(
                info.abbr, [&info](double scale) {
                    return makeWorkload(info, scale);
                });
            if (!inserted)
                fatal("workload '%s' registered twice",
                      info.abbr.c_str());
        }
    }

    std::string
    validNames()
    {
        // names() re-locks; only reached after make() dropped the lock,
        // on the way to fatal().
        std::string out;
        for (const std::string &name : names()) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        return out;
    }

    std::mutex mutex;
    std::map<std::string, WorkloadFactoryFn> factories;
    std::map<std::string, WorkloadSchemeFn> schemes;
    bool builtinsRegistered = false;
};

} // namespace

const std::vector<BenchmarkInfo> &
benchmarkSuite()
{
    static const std::vector<BenchmarkInfo> suite = buildSuite();
    return suite;
}

const BenchmarkInfo *
findBenchmarkOrNull(const std::string &abbr)
{
    for (const auto &info : benchmarkSuite())
        if (info.abbr == abbr)
            return &info;
    return nullptr;
}

const BenchmarkInfo &
findBenchmark(const std::string &abbr)
{
    if (const BenchmarkInfo *info = findBenchmarkOrNull(abbr))
        return *info;
    std::string valid;
    for (const auto &info : benchmarkSuite()) {
        if (!valid.empty())
            valid += ", ";
        valid += info.abbr;
    }
    fatal("unknown benchmark '%s' (valid: %s)", abbr.c_str(),
          valid.c_str());
}

std::vector<const BenchmarkInfo *>
irregularSuite()
{
    std::vector<const BenchmarkInfo *> out;
    for (const auto &info : benchmarkSuite())
        if (info.irregular)
            out.push_back(&info);
    return out;
}

std::vector<const BenchmarkInfo *>
regularSuite()
{
    std::vector<const BenchmarkInfo *> out;
    for (const auto &info : benchmarkSuite())
        if (!info.irregular)
            out.push_back(&info);
    return out;
}

std::vector<const BenchmarkInfo *>
scalableSuite()
{
    std::vector<const BenchmarkInfo *> out;
    for (const auto &info : benchmarkSuite())
        if (info.footprintScalable)
            out.push_back(&info);
    return out;
}

std::unique_ptr<Workload>
makeWorkload(const BenchmarkInfo &info, double footprint_scale)
{
    SW_ASSERT(footprint_scale > 0.0, "footprint scale must be positive");
    auto bytes = static_cast<std::uint64_t>(
        double(info.footprintMb * MB) * footprint_scale);
    return info.factory(bytes);
}

void
registerWorkload(const std::string &name, WorkloadFactoryFn factory)
{
    WorkloadRegistry::instance().add(name, std::move(factory));
}

void
registerWorkloadScheme(const std::string &scheme, WorkloadSchemeFn factory)
{
    WorkloadRegistry::instance().addScheme(scheme, std::move(factory));
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double footprint_scale)
{
    SW_ASSERT(footprint_scale > 0.0, "footprint scale must be positive");
    return WorkloadRegistry::instance().make(name, footprint_scale);
}

std::vector<std::string>
registeredWorkloads()
{
    return WorkloadRegistry::instance().names();
}

} // namespace sw
