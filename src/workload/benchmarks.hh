/**
 * @file
 * The Table 4 benchmark suite: twenty workloads with the paper's published
 * footprints, L2 TLB MPKI, and required-PTW classification, each mapped to
 * a synthetic generator (see generators.hh and DESIGN.md substitutions).
 */

#ifndef SW_WORKLOAD_BENCHMARKS_HH
#define SW_WORKLOAD_BENCHMARKS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace sw {

/** Registry entry for one Table 4 benchmark. */
struct BenchmarkInfo
{
    std::string abbr;           ///< Table 4 abbreviation (e.g. "bfs")
    std::string fullName;       ///< e.g. "breadth-first search [GraphBIG]"
    std::uint64_t footprintMb;  ///< Table 4 footprint
    double paperMpki;           ///< Table 4 L2 TLB MPKI (published)
    std::uint32_t paperRequiredPtws; ///< Table 4 "Required # PTWs"
    bool irregular;             ///< required PTWs > 32
    bool footprintScalable;     ///< in the Fig 6 / Fig 25 ten-app subset
    /** Build the generator at @p footprint_bytes. */
    std::function<std::unique_ptr<Workload>(std::uint64_t)> factory;
};

/** All twenty Table 4 benchmarks, paper order (irregular first). */
const std::vector<BenchmarkInfo> &benchmarkSuite();

/** Find by abbreviation; fatal() if unknown. */
const BenchmarkInfo &findBenchmark(const std::string &abbr);

/** The twelve irregular entries. */
std::vector<const BenchmarkInfo *> irregularSuite();

/** The eight regular entries. */
std::vector<const BenchmarkInfo *> regularSuite();

/** The ten footprint-scalable entries (Fig 6 / Fig 25). */
std::vector<const BenchmarkInfo *> scalableSuite();

/**
 * Instantiate a benchmark's workload.
 * @param footprint_scale multiplies the published footprint (Fig 6 grows
 *        footprints beyond large-page L2 TLB coverage this way).
 */
std::unique_ptr<Workload> makeWorkload(const BenchmarkInfo &info,
                                       double footprint_scale = 1.0);

} // namespace sw

#endif // SW_WORKLOAD_BENCHMARKS_HH
