/**
 * @file
 * The Table 4 benchmark suite: twenty workloads with the paper's published
 * footprints, L2 TLB MPKI, and required-PTW classification, each mapped to
 * a synthetic generator (see generators.hh and DESIGN.md substitutions).
 */

#ifndef SW_WORKLOAD_BENCHMARKS_HH
#define SW_WORKLOAD_BENCHMARKS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace sw {

/** Registry entry for one Table 4 benchmark. */
struct BenchmarkInfo
{
    std::string abbr;           ///< Table 4 abbreviation (e.g. "bfs")
    std::string fullName;       ///< e.g. "breadth-first search [GraphBIG]"
    std::uint64_t footprintMb;  ///< Table 4 footprint
    double paperMpki;           ///< Table 4 L2 TLB MPKI (published)
    std::uint32_t paperRequiredPtws; ///< Table 4 "Required # PTWs"
    bool irregular;             ///< required PTWs > 32
    bool footprintScalable;     ///< in the Fig 6 / Fig 25 ten-app subset
    /** Build the generator at @p footprint_bytes. */
    std::function<std::unique_ptr<Workload>(std::uint64_t)> factory;
};

/** All twenty Table 4 benchmarks, paper order (irregular first). */
const std::vector<BenchmarkInfo> &benchmarkSuite();

/** Find by abbreviation; fatal() (listing all valid names) if unknown. */
const BenchmarkInfo &findBenchmark(const std::string &abbr);

/** Find by abbreviation; nullptr if unknown. */
const BenchmarkInfo *findBenchmarkOrNull(const std::string &abbr);

/** The twelve irregular entries. */
std::vector<const BenchmarkInfo *> irregularSuite();

/** The eight regular entries. */
std::vector<const BenchmarkInfo *> regularSuite();

/** The ten footprint-scalable entries (Fig 6 / Fig 25). */
std::vector<const BenchmarkInfo *> scalableSuite();

/**
 * Instantiate a benchmark's workload.
 * @param footprint_scale multiplies the published footprint (Fig 6 grows
 *        footprints beyond large-page L2 TLB coverage this way).
 */
std::unique_ptr<Workload> makeWorkload(const BenchmarkInfo &info,
                                       double footprint_scale = 1.0);

// ---- Workload factory registry ------------------------------------------
//
// Every workload source — the twenty Table 4 synthetic generators, trace
// replays, anything a user registers — is reachable through one name-keyed
// registry, so harnesses and the CLI never special-case where a stream
// comes from.  Exact names ("bfs") resolve first; a name of the form
// "<scheme>:<rest>" then routes to its scheme handler (e.g.
// "trace:run.swtrace" → TraceWorkload, registered by src/trace).

/** Build a workload at @p footprint_scale (× the published footprint). */
using WorkloadFactoryFn =
    std::function<std::unique_ptr<Workload>(double footprint_scale)>;

/** Handler for "<scheme>:<rest>" names; receives the "<rest>" part. */
using WorkloadSchemeFn = std::function<std::unique_ptr<Workload>(
    const std::string &rest, double footprint_scale)>;

/** Register an exact-name factory; duplicate names are fatal(). */
void registerWorkload(const std::string &name, WorkloadFactoryFn factory);

/** Register a scheme handler; duplicate schemes are fatal(). */
void registerWorkloadScheme(const std::string &scheme,
                            WorkloadSchemeFn factory);

/**
 * Instantiate by registry name ("bfs", "trace:run.swtrace", ...);
 * fatal() — listing every valid name and scheme — when unknown.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double footprint_scale = 1.0);

/** All registered names: exact names sorted, then "<scheme>:…" entries. */
std::vector<std::string> registeredWorkloads();

} // namespace sw

#endif // SW_WORKLOAD_BENCHMARKS_HH
