#include "workload/generators.hh"

#include <cmath>

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"
#include "sim/ordered.hh"

namespace sw {

SyntheticWorkload::SyntheticWorkload(std::string name,
                                     std::uint64_t footprint_bytes,
                                     bool irregular,
                                     std::uint32_t compute_gap)
    : name_(std::move(name)), footprint(footprint_bytes),
      irregular_(irregular), computeGap(compute_gap)
{
    SW_ASSERT(footprint > 0, "workload needs a footprint");
}

VirtAddr
SyntheticWorkload::randomAddr(Rng &rng, std::uint64_t align) const
{
    std::uint64_t offset = rng.range(footprint / align) * align;
    return kHeapBase + offset;
}

std::uint64_t &
SyntheticWorkload::cursor(SmId sm, WarpId warp)
{
    std::uint64_t key = (std::uint64_t(sm) << 32) | warp;
    auto [it, inserted] = cursors.try_emplace(key, 0);
    if (inserted) {
        // Seed each warp at a distinct, element-aligned partition start.
        // Full avalanche (murmur finaliser): a plain multiply loses the
        // key's high bits under the power-of-two modulus below.
        std::uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ULL;
        h ^= h >> 33;
        it->second = (h % (footprint / 256)) * 256;
    }
    return it->second;
}

void
SyntheticWorkload::initWindow(std::uint64_t window_pages,
                              double pages_per_instr)
{
    windowBytes = window_pages * kWindowPageBytes;
    windowAdvanceBytes = pages_per_instr * double(kWindowPageBytes);
    SW_ASSERT(windowBytes > 0 && windowBytes <= footprint,
              "window must fit inside the footprint");
}

void
SyntheticWorkload::windowTick(SmId sm)
{
    ++windowClock[sm];
}

VirtAddr
SyntheticWorkload::windowAddr(SmId sm, Rng &rng, std::uint64_t align)
{
    SW_ASSERT(windowBytes > 0, "windowAddr before initWindow");
    // Each SM works a disjoint region of the footprint (thread-block
    // partitioning), sliding forward as it issues instructions.
    std::uint64_t sm_base = (std::uint64_t(sm) * (footprint / 64)) % footprint;
    auto slide = static_cast<std::uint64_t>(
        double(windowClock[sm]) * windowAdvanceBytes);

    std::uint64_t offset;
    if (windowSpreadBytes > kWindowPageBytes) {
        // Scattered mode: the window is windowPages 64 KB slots spaced
        // windowSpreadBytes apart, sliding slot by slot.
        std::uint64_t slots = windowBytes / kWindowPageBytes;
        std::uint64_t slot = rng.range(std::max<std::uint64_t>(1, slots));
        std::uint64_t slide_slots = slide / kWindowPageBytes;
        offset = (sm_base + (slide_slots + slot) * windowSpreadBytes +
                  rng.range(kWindowPageBytes / align) * align)
                 % footprint;
    } else {
        offset = (sm_base + slide + rng.range(windowBytes / align) * align)
                 % footprint;
    }
    return kHeapBase + (offset / align) * align;
}

void
SyntheticWorkload::saveState(CkptWriter &w) const
{
    // Cursors and window clocks are lazily populated unordered maps:
    // serialise in sorted-key order so the byte stream is deterministic.
    w.section("synthetic_workload");
    w.u64(cursors.size());
    for (std::uint64_t key : sortedKeys(cursors)) {
        w.u64(key);
        w.u64(cursors.at(key));
    }
    w.u64(windowClock.size());
    for (SmId sm : sortedKeys(windowClock)) {
        w.u32(sm);
        w.u64(windowClock.at(sm));
    }
}

void
SyntheticWorkload::restoreState(CkptReader &r)
{
    r.expectSection("synthetic_workload");
    cursors.clear();
    std::uint64_t num_cursors = r.count(16, "workload cursors");
    for (std::uint64_t i = 0; i < num_cursors; ++i) {
        std::uint64_t key = r.u64();
        std::uint64_t pos = r.u64();
        if (!cursors.emplace(key, pos).second)
            fatal("checkpoint workload cursor key %llu duplicated",
                  static_cast<unsigned long long>(key));
    }
    windowClock.clear();
    std::uint64_t num_clocks = r.count(12, "workload window clocks");
    for (std::uint64_t i = 0; i < num_clocks; ++i) {
        SmId sm = r.u32();
        std::uint64_t ticks = r.u64();
        if (!windowClock.emplace(sm, ticks).second)
            fatal("checkpoint workload window clock for SM %u duplicated",
                  sm);
    }
}

// --------------------------------------------------------------------------

StreamingWorkload::StreamingWorkload(std::string name,
                                     std::uint64_t footprint_bytes,
                                     bool irregular,
                                     std::uint32_t compute_gap,
                                     Params params)
    : SyntheticWorkload(std::move(name), footprint_bytes, irregular,
                        compute_gap),
      params_(params)
{
    SW_ASSERT(params_.numStreams >= 1, "need at least one stream");
}

WarpInstr
StreamingWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)rng;
    (void)warp;
    // Thread blocks on one SM work adjacent tiles: warps share the SM's
    // stream position, keeping the stream L1-TLB-resident.
    std::uint64_t &pos = sharedCursor(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;

    // Rotate across the stencil's row streams instruction by instruction.
    std::uint64_t stream = (pos / (32 * params_.elemBytes))
                           % params_.numStreams;
    std::uint64_t stream_offset = stream * params_.streamPitchBytes;

    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        std::uint64_t offset =
            (pos + stream_offset + lane * params_.elemBytes) % footprint;
        instr.addrs[lane] = kHeapBase + offset;
    }
    pos = (pos + 32 * params_.elemBytes + params_.strideBytes) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

RandomAccessWorkload::RandomAccessWorkload(std::string name,
                                           std::uint64_t footprint_bytes,
                                           std::uint32_t compute_gap,
                                           double cold_fraction)
    : SyntheticWorkload(std::move(name), footprint_bytes,
                        /*irregular=*/true, compute_gap),
      coldFraction(cold_fraction)
{
    // Hot region: a static, L2-TLB-coverable slice of the table.
    initWindow(std::min<std::uint64_t>(512, footprint / kWindowPageBytes),
               /*pages_per_instr=*/0.0);
}

WarpInstr
RandomAccessWorkload::next(SmId sm, WarpId, Rng &rng)
{
    windowTick(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;
    instr.write = true;   // GUPS updates
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        if (rng.uniform() < coldFraction) {
            instr.addrs[lane] = randomAddr(rng);
        } else {
            instr.addrs[lane] = windowAddr(sm, rng);
        }
    }
    return instr;
}

// --------------------------------------------------------------------------

GraphWorkload::GraphWorkload(std::string name,
                             std::uint64_t footprint_bytes, bool irregular,
                             std::uint32_t compute_gap, Params params)
    : SyntheticWorkload(std::move(name), footprint_bytes, irregular,
                        compute_gap),
      params_(params)
{
    initWindow(params_.windowPages, params_.pagesPerInstr);
}

WarpInstr
GraphWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)warp;
    windowTick(sm);
    std::uint64_t &pos = sharedCursor(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;

    // Gather bases: the distinct adjacency runs this instruction reads.
    std::uint32_t num_bases = std::max<std::uint32_t>(1,
                                                      params_.gatherBases);
    VirtAddr bases[32];
    for (std::uint32_t b = 0; b < num_bases; ++b) {
        if (params_.coldFraction > 0.0 &&
            rng.uniform() < params_.coldFraction) {
            // Far edge: neighbour outside the frontier neighbourhood.
            bases[b] = randomAddr(rng, params_.elemBytes);
        } else {
            bases[b] = windowAddr(sm, rng, params_.elemBytes);
        }
    }

    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        if (rng.uniform() < params_.gatherFraction) {
            // Contiguous run off a shared base (CSR neighbour list).
            std::uint32_t base_idx = lane % num_bases;
            instr.addrs[lane] = bases[base_idx] +
                (lane / num_bases) * params_.elemBytes;
        } else {
            // Frontier / offset array: coalesced stream.
            std::uint64_t offset =
                (pos + lane * params_.elemBytes) % footprint;
            instr.addrs[lane] = kHeapBase + offset;
        }
    }
    pos = (pos + 32 * params_.elemBytes) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

SparseWorkload::SparseWorkload(std::string name,
                               std::uint64_t footprint_bytes,
                               std::uint32_t compute_gap, Params params)
    : SyntheticWorkload(std::move(name), footprint_bytes,
                        /*irregular=*/true, compute_gap),
      params_(params)
{
    initWindow(params_.windowPages, params_.pagesPerInstr);
}

WarpInstr
SparseWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)warp;
    windowTick(sm);
    std::uint64_t &pos = sharedCursor(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;

    std::uint64_t page = params_.pageBytesHint;
    std::uint64_t pages = std::max<std::uint64_t>(1, footprint / page);

    // Column-gather bases: distinct x-vector regions this instruction
    // reads (each a short contiguous run).
    std::uint32_t num_bases = std::max<std::uint32_t>(1,
                                                      params_.gatherBases);
    VirtAddr bases[32];
    for (std::uint32_t b = 0; b < num_bases; ++b) {
        // With both a set-stride and a sliding window configured,
        // alternate between them: spmv has set-conflicting column gathers
        // *and* sustained row-block misses.
        bool use_stride = params_.setStridePages > 0 &&
            (params_.pagesPerInstr <= 0.0 || b % 2 == 0);
        if (use_stride) {
            // Gather pages a fixed set-stride apart: they contend for the
            // same few L2 TLB sets (spmv).
            std::uint64_t cluster = pages / params_.setStridePages;
            std::uint64_t k =
                rng.range(std::max<std::uint64_t>(1, cluster));
            std::uint64_t target_page =
                (k * params_.setStridePages) % pages;
            std::uint64_t in_page =
                rng.range(page / params_.elemBytes) * params_.elemBytes;
            bases[b] = kHeapBase + target_page * page + in_page;
        } else if (params_.coldFraction > 0.0 &&
                   rng.uniform() < params_.coldFraction) {
            bases[b] = randomAddr(rng, params_.elemBytes);
        } else {
            bases[b] = windowAddr(sm, rng, params_.elemBytes);
        }
    }

    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        if (rng.uniform() < params_.gatherFraction) {
            std::uint32_t base_idx = lane % num_bases;
            instr.addrs[lane] = bases[base_idx] +
                (lane / num_bases) * params_.elemBytes;
        } else {
            std::uint64_t offset =
                (pos + lane * params_.elemBytes) % footprint;
            instr.addrs[lane] = kHeapBase + offset;
        }
    }
    pos = (pos + 32 * params_.elemBytes) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

HashProbeWorkload::HashProbeWorkload(std::string name,
                                     std::uint64_t footprint_bytes,
                                     std::uint32_t compute_gap,
                                     double sequential_fraction,
                                     std::uint64_t window_pages,
                                     double pages_per_instr)
    : SyntheticWorkload(std::move(name), footprint_bytes,
                        /*irregular=*/true, compute_gap),
      seqFraction(sequential_fraction)
{
    initWindow(window_pages, pages_per_instr);
}

WarpInstr
HashProbeWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)warp;
    windowTick(sm);
    std::uint64_t &pos = sharedCursor(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;
    // Probe groups: a handful of distinct grid entries per instruction,
    // each read as a short contiguous run of cross-section data.
    constexpr std::uint32_t kProbeBases = 8;
    VirtAddr bases[kProbeBases];
    for (std::uint32_t b = 0; b < kProbeBases; ++b)
        bases[b] = windowAddr(sm, rng, 16);

    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        if (rng.uniform() < seqFraction) {
            std::uint64_t offset = (pos + lane * 8) % footprint;
            instr.addrs[lane] = kHeapBase + offset;
        } else {
            instr.addrs[lane] =
                bases[lane % kProbeBases] + (lane / kProbeBases) * 16;
        }
    }
    pos = (pos + 32 * 8) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

WavefrontWorkload::WavefrontWorkload(std::string name,
                                     std::uint64_t footprint_bytes,
                                     std::uint32_t compute_gap,
                                     Params params)
    : SyntheticWorkload(std::move(name), footprint_bytes,
                        /*irregular=*/true, compute_gap),
      params_(params)
{
    initWindow(params_.windowPages, params_.pagesPerInstr);
}

WarpInstr
WavefrontWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    windowTick(sm);
    std::uint64_t &diag = cursor(sm, warp);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;
    // Anti-diagonal band: lanes spread evenly across the sliding band of
    // matrix rows (lane i owns one row of the diagonal).
    std::uint64_t lane_pitch =
        (params_.windowPages * kWindowPageBytes) / 32;
    VirtAddr band = windowAddr(sm, rng, params_.elemBytes);
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
        std::uint64_t offset =
            (band - kHeapBase + lane * lane_pitch +
             (diag % lane_pitch)) % footprint;
        instr.addrs[lane] = kHeapBase + offset;
    }
    diag = (diag + params_.elemBytes * 32) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

HistogramWorkload::HistogramWorkload(std::string name,
                                     std::uint64_t footprint_bytes,
                                     std::uint32_t compute_gap,
                                     std::uint64_t table_bytes)
    : SyntheticWorkload(std::move(name), footprint_bytes,
                        /*irregular=*/false, compute_gap),
      tableBytes(table_bytes)
{
}

WarpInstr
HistogramWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)warp;
    std::uint64_t &pos = sharedCursor(sm);
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 32;
    bool table_phase = (pos / 128) % 2 == 1;
    if (table_phase) {
        // Scattered bin updates into the small, TLB-resident table.
        instr.write = true;
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            std::uint64_t off = rng.range(tableBytes / 4) * 4;
            instr.addrs[lane] = kHeapBase + off;
        }
    } else {
        for (std::uint32_t lane = 0; lane < 32; ++lane) {
            std::uint64_t offset = (pos + lane * 4) % footprint;
            instr.addrs[lane] = kHeapBase + tableBytes + offset;
        }
    }
    pos = (pos + 32 * 4) % footprint;
    return instr;
}

// --------------------------------------------------------------------------

PointerChaseWorkload::PointerChaseWorkload(std::uint64_t footprint_bytes,
                                           std::uint32_t compute_gap)
    : SyntheticWorkload("ptrchase", footprint_bytes, /*irregular=*/true,
                        compute_gap)
{
}

WarpInstr
PointerChaseWorkload::next(SmId, WarpId, Rng &rng)
{
    WarpInstr instr;
    instr.computeGap = computeGap;
    instr.activeLanes = 1;   // one active thread per warp (Fig 4 setup)
    instr.addrs[0] = randomAddr(rng, 128);
    return instr;
}

} // namespace sw
