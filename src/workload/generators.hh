/**
 * @file
 * Synthetic workload generators.
 *
 * Each class reproduces the page-level access pattern of one family from
 * the paper's Table 4 suite (Rodinia, GraphBIG, SHOC, Polybench, XSBench,
 * CUDA samples).  The CUDA binaries themselves are proprietary-trace
 * territory for a simulator; what address translation cares about is the
 * footprint, the per-warp page divergence, and the reuse pattern — which
 * these generators parameterise directly (see DESIGN.md, substitutions).
 */

#ifndef SW_WORKLOAD_GENERATORS_HH
#define SW_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "workload/workload.hh"

namespace sw {

/** Virtual base of all synthetic generators: footprint + naming. */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(std::string name, std::uint64_t footprint_bytes,
                      bool irregular, std::uint32_t compute_gap);

    std::uint64_t footprintBytes() const override { return footprint; }
    std::string name() const override { return name_; }
    bool irregular() const override { return irregular_; }

    void saveState(CkptWriter &w) const override;
    void restoreState(CkptReader &r) override;

  protected:
    /** Base virtual address of the data segment. */
    static constexpr VirtAddr kHeapBase = 1ull << 34;

    /** Page size irregular-locality windows are denominated in. */
    static constexpr std::uint64_t kWindowPageBytes = 64 * 1024;

    /** Uniform random element-aligned address within the footprint. */
    VirtAddr randomAddr(Rng &rng, std::uint64_t align = 8) const;

    /** Persistent per-(sm,warp) cursor, lazily seeded from a hash. */
    std::uint64_t &cursor(SmId sm, WarpId warp);

    /**
     * Per-SM shared stream cursor: warps of one SM interleave over the
     * same array region (consecutive thread blocks process consecutive
     * chunks), so an SM's streams occupy only a page or two of its L1 TLB.
     */
    std::uint64_t &sharedCursor(SmId sm) { return cursor(sm, 0xFFFFFFu); }

    // ---- Sliding hot-window machinery ----------------------------------
    //
    // Irregular GPU kernels (graph frontiers, sparse row blocks, grid
    // lookups) gather within a working set that fits the per-SM L1 TLB but
    // slides through a footprint far beyond the shared L2 TLB — which is
    // why the paper sees ~2.4% L2 TLB hit rates (§4.5): by the time a page
    // leaves the window it has also left the L2 TLB.  The window slide
    // rate, in 64 KB pages per SM instruction, directly sets the L2 TLB
    // MPKI each Table 4 entry publishes.

    /**
     * @param window_pages working-set size in 64 KB pages (L1-TLB scale)
     * @param pages_per_instr slide rate; ~= L2 TLB misses per warp instr
     */
    void initWindow(std::uint64_t window_pages, double pages_per_instr);

    /** Advance the SM's window clock; call once per next(). */
    void windowTick(SmId sm);

    /** Random address inside the SM's current hot window. */
    VirtAddr windowAddr(SmId sm, Rng &rng, std::uint64_t align = 8);

  public:
    /**
     * Scatter the window's 64 KB slots @p spacing_bytes apart instead of
     * keeping them contiguous.  At the 64 KB base page size contiguity is
     * irrelevant to translation (same page count either way); real
     * irregular working sets are scattered objects, though, so large-page
     * (2 MB) experiments must spread the slots or a single huge page
     * swallows the whole window.  The harness enables this for 2 MB runs.
     */
    void
    setWindowSpread(std::uint64_t spacing_bytes)
    {
        windowSpreadBytes = spacing_bytes;
    }

  protected:

    std::string name_;
    std::uint64_t footprint;
    bool irregular_;
    std::uint32_t computeGap;

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> cursors;
    std::unordered_map<SmId, std::uint64_t> windowClock;
    std::uint64_t windowBytes = 0;
    double windowAdvanceBytes = 0.0;
    std::uint64_t windowSpreadBytes = 0;   ///< 0: contiguous slots
};

/**
 * Coalesced streaming (2dconv, reduction, scan, gemm, fft, stencil2d):
 * every lane reads consecutive elements, so a warp instruction touches one
 * page (or a handful for multi-stream stencils).
 */
class StreamingWorkload : public SyntheticWorkload
{
  public:
    struct Params
    {
        std::uint32_t elemBytes = 4;
        /** Extra jump between warp instructions (strided FFT phases). */
        std::uint64_t strideBytes = 0;
        /** Concurrent row streams (3 for a 2D stencil's row triple). */
        std::uint32_t numStreams = 1;
        /** Distance between streams (the stencil's row pitch). */
        std::uint64_t streamPitchBytes = 1ull << 20;
    };

    StreamingWorkload(std::string name, std::uint64_t footprint_bytes,
                      bool irregular, std::uint32_t compute_gap,
                      Params params);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    Params params_;
};

/**
 * GUPS-style random updates: scattered writes, partially covered by a
 * TLB-resident hot region (the update table's dense head).
 */
class RandomAccessWorkload : public SyntheticWorkload
{
  public:
    /**
     * @param cold_fraction per-lane probability of a fully uniform access;
     *        the rest land in a static TLB-resident hot region.
     */
    RandomAccessWorkload(std::string name, std::uint64_t footprint_bytes,
                         std::uint32_t compute_gap,
                         double cold_fraction = 1.0);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    double coldFraction;
};

/**
 * Graph analytics (bc, dc, sssp, gc, bfs, cc, kcore): sequential frontier
 * and offset-array reads mixed with divergent power-law neighbour gathers.
 * gatherFraction near zero gives the "regular" graph kernels (cc, kcore).
 */
class GraphWorkload : public SyntheticWorkload
{
  public:
    struct Params
    {
        double gatherFraction = 0.5;  ///< per-lane probability of a gather
        std::uint64_t windowPages = 24;  ///< frontier working set (L1 scale)
        double pagesPerInstr = 0.5;   ///< window slide rate (sets MPKI)
        double coldFraction = 0.0;    ///< gathers that escape the window
        /**
         * Distinct gather targets per warp instruction: CSR adjacency
         * lists are contiguous runs, so lanes cluster onto a few bases
         * rather than 32 independent cachelines.
         */
        std::uint32_t gatherBases = 8;
        std::uint32_t elemBytes = 8;
    };

    GraphWorkload(std::string name, std::uint64_t footprint_bytes,
                  bool irregular, std::uint32_t compute_gap, Params params);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    Params params_;
};

/**
 * Sparse linear algebra (spmv, gesummv, syr2k): dense row streaming plus
 * column-index gathers.  setStridePages > 0 clusters the gathers on a few
 * L2 TLB sets (reproducing spmv's per-set In-TLB MSHR saturation, §6.3).
 */
class SparseWorkload : public SyntheticWorkload
{
  public:
    struct Params
    {
        double gatherFraction = 0.75;
        std::uint64_t windowPages = 32;  ///< row-block working set
        double pagesPerInstr = 1.0;      ///< slide rate (sets MPKI)
        double coldFraction = 0.0;       ///< column gathers past the window
        std::uint32_t gatherBases = 8;   ///< distinct gather runs per instr
        /** 0: windowed gathers; N: gather pages strided N pages apart
         *  (clustering them on a few L2 TLB sets — the spmv anomaly). */
        std::uint64_t setStridePages = 0;
        std::uint64_t pageBytesHint = 64 * 1024;
        std::uint32_t elemBytes = 8;
    };

    SparseWorkload(std::string name, std::uint64_t footprint_bytes,
                   std::uint32_t compute_gap, Params params);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    Params params_;
};

/**
 * XSBench-style energy-grid probes: divergent lookups within a sliding
 * band of the unionised grid.
 */
class HashProbeWorkload : public SyntheticWorkload
{
  public:
    HashProbeWorkload(std::string name, std::uint64_t footprint_bytes,
                      std::uint32_t compute_gap,
                      double sequential_fraction = 0.1,
                      std::uint64_t window_pages = 64,
                      double pages_per_instr = 1.85);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    double seqFraction;
};

/**
 * Needleman-Wunsch anti-diagonal wavefront: lanes walk one matrix
 * anti-diagonal, so consecutive lanes sit a full row pitch apart and land
 * on distinct pages.
 */
class WavefrontWorkload : public SyntheticWorkload
{
  public:
    struct Params
    {
        std::uint64_t windowPages = 32;  ///< anti-diagonal band
        double pagesPerInstr = 1.42;     ///< band advance rate (sets MPKI)
        std::uint32_t elemBytes = 4;
    };

    WavefrontWorkload(std::string name, std::uint64_t footprint_bytes,
                      std::uint32_t compute_gap, Params params);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    Params params_;
};

/**
 * Histogram: streaming input reads alternating with scattered updates to a
 * small bin table that stays TLB-resident — high locality despite the
 * random writes.
 */
class HistogramWorkload : public SyntheticWorkload
{
  public:
    HistogramWorkload(std::string name, std::uint64_t footprint_bytes,
                      std::uint32_t compute_gap,
                      std::uint64_t table_bytes = 1ull << 20);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;

  private:
    std::uint64_t tableBytes;
};

/**
 * Fig 4 microbenchmark: every warp has one active thread chasing distinct
 * pages and cache lines, generating one concurrent page walk per warp.
 */
class PointerChaseWorkload : public SyntheticWorkload
{
  public:
    PointerChaseWorkload(std::uint64_t footprint_bytes,
                         std::uint32_t compute_gap = 4);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;
};

} // namespace sw

#endif // SW_WORKLOAD_GENERATORS_HH
