#include "gpu/sm.hh"

#include <algorithm>

#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

Sm::Sm(EventQueue &eq, Params params, Workload &wl,
       SmTranslateFn translate_fn, SmDataAccessFn data_fn)
    : eventq(eq), params_(params), workload(wl),
      translate(std::move(translate_fn)), dataAccess(std::move(data_fn)),
      geometry(params.pageBytes),
      rng(params.rngSeed * 0x100000001b3ULL + params.id)
{
    SW_ASSERT(params_.numWarps > 0, "SM needs warps");
    warps.resize(params_.numWarps);
}

void
Sm::start(std::uint64_t *instr_quota, std::uint32_t active_warps,
          Cycle skew_base, Cycle skew_stride)
{
    quota = instr_quota;
    std::uint32_t count = std::min(active_warps, params_.numWarps);
    for (WarpId w = 0; w < count; ++w) {
        warps[w].live = true;
        ++liveWarps;
    }
    for (WarpId w = 0; w < count; ++w) {
        Cycle delay = skew_base + skew_stride * w;
        if (delay == 0) {
            fetchAndSchedule(w);
        } else {
            eventq.scheduleIn(delay, [this, w]() { fetchAndSchedule(w); });
        }
    }
}

Cycle
Sm::reservePwIssue(std::uint32_t slots)
{
    Cycle start = std::max(eventq.now(), nextIssueFree);
    nextIssueFree = start + slots;
    stats_.pwIssueCycles += slots;
    return start + slots;
}

void
Sm::fetchAndSchedule(WarpId warp)
{
    SW_PROF_SCOPE(prof::Zone::SmExec);
    WarpState &ws = warps[warp];
    SW_ASSERT(ws.live, "fetch on a dead warp");
    if (*quota == 0) {
        retireWarp(warp);
        return;
    }
    --*quota;
    ws.pending = workload.next(params_.id, warp, rng);
    stats_.computeCycles += ws.pending.computeGap;
    auto fire = [this, warp]() { tryIssue(warp); };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "warp issue event must not spill to the slab pool");
    eventq.scheduleIn(ws.pending.computeGap, std::move(fire));
}

void
Sm::tryIssue(WarpId warp)
{
    Cycle now = eventq.now();
    if (nextIssueFree > now) {
        // Issue port busy (another warp or the PW Warp): retry when free.
        eventq.schedule(nextIssueFree, [this, warp]() { tryIssue(warp); });
        return;
    }
    nextIssueFree = now + 1;
    ++stats_.issueSlotCycles;
    ++stats_.warpInstrs;
    execMemInstr(warp);
}

void
Sm::execMemInstr(WarpId warp)
{
    SW_PROF_SCOPE(prof::Zone::SmExec);
    WarpState &ws = warps[warp];
    const WarpInstr &instr = ws.pending;
    ws.issuedAt = eventq.now();

    if (traceHook)
        traceHook(params_.id, warp, ws.issuedAt, instr);

    // Coalesce the warp's lanes: unique pages for translation, unique
    // sectors within each page for data accesses.
    struct PageGroup
    {
        Vpn vpn;
        std::vector<std::uint64_t> sectorOffsets;   ///< within the page
    };
    std::vector<PageGroup> groups;
    std::uint32_t lanes = std::min<std::uint32_t>(instr.activeLanes,
                                                  params_.warpSize);
    std::uint32_t total_sectors = 0;
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        VirtAddr va = instr.addrs[lane];
        Vpn vpn = geometry.vpnOf(va);
        std::uint64_t sector_off =
            geometry.offsetOf(va) / params_.sectorBytes;
        PageGroup *group = nullptr;
        for (auto &candidate : groups) {
            if (candidate.vpn == vpn) {
                group = &candidate;
                break;
            }
        }
        if (!group) {
            groups.push_back({vpn, {}});
            group = &groups.back();
        }
        if (std::find(group->sectorOffsets.begin(),
                      group->sectorOffsets.end(),
                      sector_off) == group->sectorOffsets.end()) {
            group->sectorOffsets.push_back(sector_off);
            ++total_sectors;
        }
    }

    if (total_sectors == 0) {
        // Degenerate instruction: nothing to do, move on next cycle.
        eventq.scheduleIn(1, [this, warp]() { fetchAndSchedule(warp); });
        return;
    }

    ws.outstanding = total_sectors;
    enterBlocked(warp);
    stats_.translationsRequested += groups.size();

    bool write = instr.write;
    for (auto &group : groups) {
        translate(group.vpn,
                  [this, warp, write, offsets = std::move(group.sectorOffsets),
                   start = ws.issuedAt](Pfn pfn) {
                      for (std::uint64_t off : offsets) {
                          PhysAddr pa = geometry.composePa(
                              pfn, off * params_.sectorBytes);
                          ++stats_.dataAccesses;
                          dataAccess(pa, write, [this, warp, start]() {
                              stats_.accessLatency.add(eventq.now() - start);
                              accessDone(warp);
                          });
                      }
                  });
    }
}

void
Sm::accessDone(WarpId warp)
{
    SW_PROF_SCOPE(prof::Zone::SmExec);
    WarpState &ws = warps[warp];
    SW_ASSERT(ws.outstanding > 0, "access completion underflow");
    if (--ws.outstanding == 0) {
        stats_.warpMemLatency.add(eventq.now() - ws.issuedAt);
        leaveBlocked(warp);
        fetchAndSchedule(warp);
    }
}

void
Sm::enterBlocked(WarpId warp)
{
    WarpState &ws = warps[warp];
    SW_ASSERT(!ws.blocked, "double block");
    ws.blocked = true;
    ++blockedWarps;
    updateStallWindow();
}

void
Sm::leaveBlocked(WarpId warp)
{
    WarpState &ws = warps[warp];
    SW_ASSERT(ws.blocked, "unblock of a running warp");
    ws.blocked = false;
    SW_ASSERT(blockedWarps > 0, "blocked warp underflow");
    --blockedWarps;
    updateStallWindow();
}

void
Sm::retireWarp(WarpId warp)
{
    WarpState &ws = warps[warp];
    ws.live = false;
    SW_ASSERT(liveWarps > 0, "live warp underflow");
    --liveWarps;
    updateStallWindow();
    if (onWarpRetired)
        onWarpRetired();
}

void
Sm::updateStallWindow()
{
    bool stalled_now = liveWarps > 0 && blockedWarps >= liveWarps;
    Cycle now = eventq.now();
    if (stalled_now && !fullyStalled) {
        fullyStalled = true;
        stallStart = now;
    } else if (!stalled_now && fullyStalled) {
        fullyStalled = false;
        stats_.memStallCycles += now - stallStart;
    }
}

void
Sm::saveState(CkptWriter &w) const
{
    // At a drained barrier every warp has retired (start() re-activates
    // them when the next segment begins), so warp state needs no bytes.
    SW_ASSERT(liveWarps == 0 && blockedWarps == 0 && !fullyStalled,
              "SM %u checkpointed with live warps", params_.id);
    w.section("sm");
    w.u32(params_.id);
    std::uint64_t rng_state[4];
    rng.snapshot(rng_state);
    for (std::uint64_t word : rng_state)
        w.u64(word);
    w.u64(nextIssueFree);
    w.u64(stats_.warpInstrs);
    w.u64(stats_.issueSlotCycles);
    w.u64(stats_.pwIssueCycles);
    w.u64(stats_.computeCycles);
    w.u64(stats_.memStallCycles);
    w.u64(stats_.translationsRequested);
    w.u64(stats_.dataAccesses);
    w.latency(stats_.warpMemLatency);
    w.latency(stats_.accessLatency);
}

void
Sm::restoreState(CkptReader &r)
{
    r.expectSection("sm");
    std::uint32_t id = r.u32();
    if (id != params_.id)
        fatal("checkpoint SM %u restored into SM %u", id, params_.id);
    std::uint64_t rng_state[4];
    for (auto &word : rng_state)
        word = r.u64();
    rng.restore(rng_state);
    nextIssueFree = r.u64();
    stats_.warpInstrs = r.u64();
    stats_.issueSlotCycles = r.u64();
    stats_.pwIssueCycles = r.u64();
    stats_.computeCycles = r.u64();
    stats_.memStallCycles = r.u64();
    stats_.translationsRequested = r.u64();
    stats_.dataAccesses = r.u64();
    r.latency(stats_.warpMemLatency);
    r.latency(stats_.accessLatency);
}

void
Sm::registerStats(StatGroup group)
{
    group.counter("warp_instrs", &stats_.warpInstrs);
    group.counter("issue_slot_cycles", &stats_.issueSlotCycles);
    group.counter("pw_issue_cycles", &stats_.pwIssueCycles);
    group.counter("compute_cycles", &stats_.computeCycles);
    group.counter("mem_stall_cycles", &stats_.memStallCycles);
    group.counter("translations", &stats_.translationsRequested);
    group.counter("data_accesses", &stats_.dataAccesses);
    group.latency("warp_mem_latency", &stats_.warpMemLatency);
    group.latency("access_latency", &stats_.accessLatency);
    group.gauge("stalled_warps",
                [this]() { return double(blockedWarps); });
}

} // namespace sw
