/**
 * @file
 * Top-level simulated GPU: SMs + translation engine + memory hierarchy +
 * page table, bound to a workload.
 *
 * Construction wires everything except — for SoftWalker/Hybrid modes — the
 * walk backend, which lives in the core library (src/core) and is attached
 * via installBackend() (see makeSoftWalkerBackend()).  Hardware and Ideal
 * modes are self-contained and install their backend here.
 */

#ifndef SW_GPU_GPU_HH
#define SW_GPU_GPU_HH

#include <memory>
#include <vector>

#include "check/audit.hh"
#include "gpu/sm.hh"
#include "mem/memory_system.hh"
#include "obs/observability.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "vm/address_space.hh"
#include "vm/hashed_page_table.hh"
#include "vm/page_table.hh"
#include "vm/translation.hh"

namespace sw {

/** The whole simulated machine. */
class Gpu
{
  public:
    /** Stopping conditions for a simulation run. */
    struct RunLimits
    {
        /** Warp memory instructions to issue across the whole GPU. */
        std::uint64_t warpInstrQuota = 10000;
        /**
         * Warp instructions issued before all statistics are zeroed.
         * Removes the cold-start transient (TLB/cache/window fill) from
         * the measured region; standard simulator warmup methodology.
         */
        std::uint64_t warmupInstrs = 0;
        /** Hard cycle cap (contention-bound configs may not finish). */
        Cycle maxCycles = 3000000;
        /** Cap on concurrently active warps (0 = all); Fig 4 uses this. */
        std::uint64_t maxActiveWarps = 0;
        /**
         * Stagger warp (re)starts: globally, warp k begins fetching k *
         * restartSkewCycles after the segment starts (0 = all at once).
         * A lock-step restart of a *warm* machine keeps warps phase-
         * aligned; the resulting miss bursts can park the shared L2 TLB
         * MSHRs in a persistently saturated state that a continuous run
         * never reaches.  Sampled/segmented runs set a small skew so each
         * detailed window re-enters the same steady state the full run
         * occupies (docs/CHECKPOINTS.md §Phase sampling).
         */
        Cycle restartSkewCycles = 0;
    };

    /** Single-tenant machine (cfg.numTenants must be 1). */
    Gpu(GpuConfig cfg, std::unique_ptr<Workload> workload);

    /**
     * Multi-tenant machine: one workload per tenant (the vector size must
     * equal cfg.numTenants).  Tenant t owns the contiguous SM slice
     * tenantSmRange(cfg, t), runs its workload there, and translates
     * through its own address space (ASID t).
     */
    Gpu(GpuConfig cfg, std::vector<std::unique_ptr<Workload>> workloads);
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** Attach the walk backend (SoftWalker/Hybrid modes). */
    void installBackend(std::unique_ptr<WalkBackend> backend);
    bool backendInstalled() const;

    /** Run until the quota completes, the queue drains, or the cap hits. */
    void run(const RunLimits &limits);

    /**
     * Run one segment of a (possibly checkpointed) simulation: issue up to
     * @p fetch_quota further warp instructions, of which the first
     * @p warmup_fetch_remaining still belong to the warmup region (stats
     * are zeroed once they have been fetched; pass 0 when warmup already
     * ended in an earlier segment).  run() is exactly one whole-run
     * segment; checkpoint save/restore splits a run into two.
     * limits.maxCycles stays an absolute cycle cap.
     */
    void runSegment(std::uint64_t fetch_quota,
                    std::uint64_t warmup_fetch_remaining,
                    const RunLimits &limits);

    /**
     * Serialise the entire machine state into @p w.  Only legal at a
     * quiesced tick: the event queue drained and every warp retired
     * (i.e. immediately after a runSegment() that ran out of quota).
     */
    void saveState(CkptWriter &w) const;

    /** Restore machine state saved by saveState() into this (fresh) GPU. */
    void restoreState(CkptReader &r);

    /** Simulated cycles elapsed (including warmup). */
    Cycle cycles() const { return eventq.now(); }

    /** Cycles in the measured (post-warmup) region. */
    Cycle measuredCycles() const { return eventq.now() - measureStart; }

    /** Warp instructions issued across all SMs. */
    std::uint64_t instructionsIssued() const;

    /** Sum of per-SM stats. */
    Sm::Stats aggregateSmStats() const;

    /** Completed fraction of quota / elapsed cycles: the speedup metric. */
    double performance() const;

    /**
     * The Simulation Auditor holding every registered conservation audit.
     * Components register at construction/installBackend time; run()
     * schedules periodic sweeps (cfg.auditIntervalCycles) and performs the
     * end-of-sim check.
     */
    Auditor &auditor() { return auditor_; }
    const Auditor &auditor() const { return auditor_; }

    TranslationEngine &engine() { return *engine_; }
    const TranslationEngine &engine() const { return *engine_; }
    MemorySystem &memory() { return *mem; }
    const MemorySystem &memory() const { return *mem; }
    EventQueue &eventQueue() { return eventq; }
    /** The single-tenant (ASID 0) page table. */
    PageTableBase &pageTable() { return spaces_->tableFor(0); }
    AddressSpaceManager &spaces() { return *spaces_; }
    const AddressSpaceManager &spaces() const { return *spaces_; }
    Workload &workload() { return *workloads_.at(0); }
    const Workload &workload() const { return *workloads_.at(0); }
    /** Tenant @p asid's workload. */
    Workload &workloadOf(Asid asid) { return *workloads_.at(asid); }
    const Workload &workloadOf(Asid asid) const
    {
        return *workloads_.at(asid);
    }
    std::uint32_t numTenants() const
    {
        return std::uint32_t(workloads_.size());
    }
    Sm &sm(SmId id) { return *sms.at(id); }
    const Sm &sm(SmId id) const { return *sms.at(id); }
    std::uint32_t numSms() const { return std::uint32_t(sms.size()); }
    const GpuConfig &config() const { return cfg; }

    /** Install a per-instruction trace hook on every SM (Fig 3). */
    void setTraceHook(TraceHookFn hook);

    /**
     * Attach the observability bundle: registers every component with the
     * stat registry, installs the lifecycle tracer on the translation
     * path, and arms the time-series sampler's periodic sweep.  Call
     * AFTER the walk backend is installed so backend stats and gauges
     * register too.  A GPU run with no observability (or a null bundle)
     * is bit-identical to one that never called this.
     */
    void installObservability(const Observability &obs);

    /** Register every component's stats with @p registry (dotted names). */
    void registerStats(StatRegistry &registry);

    /** Register machine-level time-series gauges with @p sampler. */
    void registerSamplerGauges(TimeSeriesSampler &sampler);

    /** Zero every component's statistics (end of warmup). */
    void resetAllStats();

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    void scheduleWarmupCheck(std::uint64_t measured_quota);
    void registerGpuAudits();

    GpuConfig cfg;
    EventQueue eventq;
    Auditor auditor_;
    std::unique_ptr<FrameAllocator> allocator;
    std::unique_ptr<AddressSpaceManager> spaces_;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<TranslationEngine> engine_;
    /** One workload per tenant; index == ASID. */
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<Sm>> sms;

    TranslationTracer *tracer_ = nullptr;
    TimeSeriesSampler *sampler_ = nullptr;

    std::uint64_t quotaRemaining = 0;
    std::uint64_t warpsAlive = 0;
    Cycle measureStart = 0;        ///< cycle the measured region began
    std::uint64_t warmupBaseline = 0; ///< instrs issued when warmup ended
};

} // namespace sw

#endif // SW_GPU_GPU_HH
