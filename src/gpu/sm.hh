/**
 * @file
 * Streaming Multiprocessor model.
 *
 * Each SM hosts up to 48 warps that alternate compute gaps and global
 * memory instructions drawn from the workload.  Memory instructions are
 * coalesced to unique pages (translation requests) and unique 32 B sectors
 * (data accesses); the warp blocks until every access completes
 * (scoreboard semantics).  The single issue port serialises instruction
 * issue, and is shared — with priority — by the PW Warp (§4.2).
 *
 * Scheduler-cycle accounting distinguishes issued/compute cycles from
 * cycles where *every* resident warp is blocked on memory, which is the
 * stall population Figs 8 and 19 measure.
 */

#ifndef SW_GPU_SM_HH
#define SW_GPU_SM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/address.hh"
#include "workload/workload.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/** Translation issued on behalf of this SM: (vpn, completion). */
using SmTranslateFn =
    std::function<void(Vpn, std::function<void(Pfn)>)>;

/** Data-memory access: (physical sector address, write, completion). */
using SmDataAccessFn =
    std::function<void(PhysAddr, bool, std::function<void()>)>;

/** Optional per-instruction trace hook (Fig 3 dumps). */
using TraceHookFn =
    std::function<void(SmId, WarpId, Cycle, const WarpInstr &)>;

/** One GPU core. */
class Sm
{
  public:
    struct Params
    {
        SmId id = 0;
        std::uint32_t numWarps = 48;
        std::uint32_t warpSize = 32;
        std::uint64_t pageBytes = 64 * 1024;
        std::uint32_t sectorBytes = 32;
        std::uint64_t rngSeed = 1;
    };

    struct Stats
    {
        std::uint64_t warpInstrs = 0;      ///< memory instructions issued
        std::uint64_t issueSlotCycles = 0; ///< port cycles, user warps
        std::uint64_t pwIssueCycles = 0;   ///< port cycles, PW Warp
        std::uint64_t computeCycles = 0;   ///< modeled compute-gap work
        std::uint64_t memStallCycles = 0;  ///< all warps blocked on memory
        std::uint64_t translationsRequested = 0;
        std::uint64_t dataAccesses = 0;
        LatencyStat warpMemLatency;        ///< issue -> all accesses done
        LatencyStat accessLatency;         ///< per data access (Fig 4)
    };

    Sm(EventQueue &eq, Params params, Workload &workload,
       SmTranslateFn translate, SmDataAccessFn data_access);

    Sm(const Sm &) = delete;
    Sm &operator=(const Sm &) = delete;

    /**
     * Activate warps and begin issuing.
     * @param quota shared pool of warp instructions left to issue
     * @param active_warps number of warps to enable on this SM
     * @param skew_base delay (cycles) before this SM's first warp starts
     * @param skew_stride additional delay between successive warps
     *
     * A zero skew starts every warp at the current cycle, which is the
     * cold-start behaviour.  Segmented runs restarting a *warm* machine
     * pass a non-zero skew: a lock-step restart keeps warps phase-aligned
     * and can drive the shared L2 TLB MSHRs into a persistent saturated
     * regime that a continuously-run machine never enters.
     */
    void start(std::uint64_t *quota, std::uint32_t active_warps,
               Cycle skew_base = 0, Cycle skew_stride = 0);

    /**
     * Reserve @p slots consecutive issue-port cycles for the PW Warp
     * (highest scheduling priority).
     * @return the cycle at which the last slot completes.
     */
    Cycle reservePwIssue(std::uint32_t slots);

    /** Warps currently blocked on outstanding memory (stall-aware policy). */
    std::uint32_t stalledWarps() const { return blockedWarps; }

    /** Warps still executing. */
    std::uint32_t activeWarps() const { return liveWarps; }

    SmId id() const { return params_.id; }
    const Stats &stats() const { return stats_; }

    /**
     * Zero the statistics (post-warmup reset).  An open all-warps-stalled
     * window restarts at the current cycle.
     */
    void
    resetStats()
    {
        stats_ = Stats{};
        if (fullyStalled)
            stallStart = eventq.now();
    }

    /** Register the SM's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    /** Close an open stall window (end-of-run accounting). */
    void
    finalizeStats()
    {
        if (fullyStalled) {
            stats_.memStallCycles += eventq.now() - stallStart;
            stallStart = eventq.now();
        }
    }

    /**
     * The RNG this SM feeds to Workload::next().  Fast-forward pulls the
     * workload stream functionally through the same generator so detailed
     * simulation resumes exactly where warmup left the stream.
     */
    Rng &workloadRng() { return rng; }

    /** Serialise RNG + issue-port + counters (all warps must be retired). */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(CkptReader &r);

    /** Set by the GPU when tracing is requested. */
    TraceHookFn traceHook;

    /** Invoked whenever a warp retires (all work done). */
    std::function<void()> onWarpRetired;

  private:
    struct WarpState
    {
        bool live = false;
        bool blocked = false;        ///< waiting on memory
        WarpInstr pending;           ///< next instruction to issue
        std::uint32_t outstanding = 0;
        Cycle issuedAt = 0;
    };

    void fetchAndSchedule(WarpId warp);
    void tryIssue(WarpId warp);
    void execMemInstr(WarpId warp);
    void accessDone(WarpId warp);
    void enterBlocked(WarpId warp);
    void leaveBlocked(WarpId warp);
    void retireWarp(WarpId warp);
    void updateStallWindow();

    EventQueue &eventq;
    Params params_;
    Workload &workload;
    SmTranslateFn translate;
    SmDataAccessFn dataAccess;
    PageGeometry geometry;
    Rng rng;

    std::vector<WarpState> warps;
    std::uint64_t *quota = nullptr;
    std::uint32_t liveWarps = 0;
    std::uint32_t blockedWarps = 0;

    Cycle nextIssueFree = 0;
    bool fullyStalled = false;
    Cycle stallStart = 0;

    Stats stats_;
};

} // namespace sw

#endif // SW_GPU_SM_HH
