#include "gpu/gpu.hh"

#include "ckpt/ckpt_io.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "vm/ptw.hh"

namespace sw {

Gpu::Gpu(GpuConfig config, std::unique_ptr<Workload> wl)
    : Gpu(std::move(config), [&wl]() {
          std::vector<std::unique_ptr<Workload>> list;
          list.push_back(std::move(wl));
          return list;
      }())
{
}

Gpu::Gpu(GpuConfig config, std::vector<std::unique_ptr<Workload>> wls)
    : cfg(config), workloads_(std::move(wls))
{
    cfg.validate();
    SW_ASSERT(!workloads_.empty(), "GPU needs a workload");
    SW_ASSERT(workloads_.size() == cfg.numTenants,
              "GPU built with %zu workloads for %u tenants",
              workloads_.size(), cfg.numTenants);
    for (const auto &workload : workloads_)
        SW_ASSERT(workload != nullptr, "GPU needs a workload per tenant");

    allocator = std::make_unique<FrameAllocator>(cfg.pageBytes);
    spaces_ = std::make_unique<AddressSpaceManager>(cfg, *allocator);

    mem = std::make_unique<MemorySystem>(eventq, cfg);
    engine_ = std::make_unique<TranslationEngine>(eventq, cfg, *mem,
                                                  *spaces_);

    sms.reserve(cfg.numSms);
    for (SmId id = 0; id < cfg.numSms; ++id) {
        Sm::Params params;
        params.id = id;
        params.numWarps = cfg.maxWarpsPerSm;
        params.warpSize = cfg.warpSize;
        params.pageBytes = cfg.pageBytes;
        params.sectorBytes = cfg.sectorBytes;
        params.rngSeed = cfg.rngSeed;
        // The SM stays tenant-agnostic: its slice's ASID is baked into the
        // translate hook, and it fetches from its tenant's workload.
        Asid asid = tenantOfSm(cfg, id);
        sms.push_back(std::make_unique<Sm>(
            eventq, params, *workloads_[asid],
            [this, id, asid](Vpn vpn, std::function<void(Pfn)> done) {
                engine_->translate(id, TranslationKey{asid, vpn},
                                   std::move(done));
            },
            [this, id](PhysAddr pa, bool write, std::function<void()> done) {
                MemAccess acc;
                acc.addr = pa;
                acc.write = write;
                acc.pte = false;
                acc.sm = id;
                acc.onDone = std::move(done);
                mem->access(std::move(acc));
            }));
    }

    // Hardware and Ideal backends are self-contained; SoftWalker/Hybrid
    // backends come from src/core via installBackend().
    if (cfg.mode == TranslationMode::HardwarePtw ||
        cfg.mode == TranslationMode::Ideal) {
        HardwarePtwPool::Params pool;
        if (cfg.mode == TranslationMode::Ideal) {
            pool.numWalkers = 1u << 15;
            pool.pwbEntries = 1u << 20;
            pool.pwbPorts = 64;
            pool.nhaCoalescing = false;
        } else {
            pool.numWalkers = cfg.numPtws;
            pool.pwbEntries = cfg.pwbEntries;
            pool.pwbPorts = cfg.pwbPorts;
            pool.nhaCoalescing = cfg.nhaCoalescing;
            pool.nhaSectorBytes = cfg.sectorBytes;
        }
        engine_->setBackend(std::make_unique<HardwarePtwPool>(
            eventq, pool, *spaces_, engine_->pwc(),
            [this](PhysAddr addr, std::function<void()> done) {
                engine_->ptAccess(addr, std::move(done));
            },
            engine_->completionFn()));
    }

    registerGpuAudits();
    engine_->registerAudits(auditor_);
    mem->registerAudits(auditor_);
    if (WalkBackend *backend = engine_->backend())
        backend->registerAudits(auditor_);
}

void
Gpu::registerGpuAudits()
{
    // Event time only ever moves forward between audit sweeps.
    auditor_.registerAudit(
        "sim.event-queue.monotonic-time", AuditScope::Continuous,
        [this, last = std::make_shared<Cycle>(0)](AuditContext &ctx) {
            Cycle now = eventq.now();
            if (now < *last) {
                ctx.fail(strprintf(
                    "event clock moved backwards: %llu after %llu",
                    static_cast<unsigned long long>(now),
                    static_cast<unsigned long long>(*last)));
            }
            *last = now;
        });

    // Per-component stats cross-foot against the machine totals.  Only
    // counters bumped atomically within one event are comparable: SMs
    // count a translation request in the same call chain that enters the
    // engine, and the L2 access split is recorded in a single function.
    auditor_.registerAudit(
        "gpu.stats.cross-foot", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            std::uint64_t sm_requests = 0;
            for (const auto &sm : sms)
                sm_requests += sm->stats().translationsRequested;
            const TranslationEngine::Stats &es = engine_->stats();
            if (sm_requests != es.requests) {
                ctx.fail(strprintf(
                    "SMs requested %llu translations but the engine "
                    "counted %llu",
                    static_cast<unsigned long long>(sm_requests),
                    static_cast<unsigned long long>(es.requests)));
            }
            if (es.l2Accesses != es.l2Hits + es.l2Misses) {
                ctx.fail(strprintf(
                    "L2 TLB accesses (%llu) != hits (%llu) + misses (%llu)",
                    static_cast<unsigned long long>(es.l2Accesses),
                    static_cast<unsigned long long>(es.l2Hits),
                    static_cast<unsigned long long>(es.l2Misses)));
            }
        });
}

Gpu::~Gpu() = default;

void
Gpu::installBackend(std::unique_ptr<WalkBackend> backend)
{
    // Replacing a backend would destroy it while its registered audits
    // still capture it; one backend per GPU lifetime.
    SW_ASSERT(!backendInstalled(),
              "a walk backend is already installed (its audits would "
              "dangle)");
    WalkBackend *raw = backend.get();
    engine_->setBackend(std::move(backend));
    if (raw)
        raw->registerAudits(auditor_);
}

bool
Gpu::backendInstalled() const
{
    return const_cast<TranslationEngine &>(*engine_).backend() != nullptr;
}

void
Gpu::run(const RunLimits &limits)
{
    measureStart = 0;
    runSegment(limits.warpInstrQuota + limits.warmupInstrs,
               limits.warmupInstrs, limits);
}

void
Gpu::runSegment(std::uint64_t fetch_quota,
                std::uint64_t warmup_fetch_remaining,
                const RunLimits &limits)
{
    SW_ASSERT(backendInstalled(),
              "run() before a walk backend was installed");
    SW_ASSERT(warmup_fetch_remaining <= fetch_quota,
              "warmup extends past this segment's quota");
    quotaRemaining = fetch_quota;

    // Distribute active warps across SMs (round-robin when capped).
    std::vector<std::uint32_t> active(sms.size(), cfg.maxWarpsPerSm);
    if (limits.maxActiveWarps > 0) {
        std::fill(active.begin(), active.end(), 0u);
        for (std::uint64_t k = 0; k < limits.maxActiveWarps; ++k) {
            SmId sm = SmId(k % sms.size());
            if (active[sm] < cfg.maxWarpsPerSm)
                ++active[sm];
        }
    }

    warpsAlive = 0;
    for (auto &sm : sms) {
        sm->onWarpRetired = [this]() {
            SW_ASSERT(warpsAlive > 0, "warp retirement underflow");
            --warpsAlive;
        };
    }
    // Global warp index k = sm + numSms * warp interleaves SMs, so the
    // skewed restart spreads load across SMs rather than one SM at a time.
    for (std::size_t i = 0; i < sms.size(); ++i) {
        warpsAlive += active[i];
        if (active[i] > 0) {
            sms[i]->start(&quotaRemaining, active[i],
                          limits.restartSkewCycles * i,
                          limits.restartSkewCycles * sms.size());
        }
    }

    if (warmup_fetch_remaining > 0)
        scheduleWarmupCheck(fetch_quota - warmup_fetch_remaining);

    if (cfg.auditIntervalCycles > 0)
        auditor_.schedulePeriodic(eventq, cfg.auditIntervalCycles);

    eventq.run(limits.maxCycles);

    SW_PROF_SCOPE(prof::Zone::StatsAudit);
    for (auto &sm : sms)
        sm->finalizeStats();

    // End-of-sim audit: quiescent-only invariants (no leaked MSHR / miss)
    // apply only when the run drained rather than hitting its cycle cap.
    auditor_.finalCheck(eventq.now(), eventq.empty());
}

void
Gpu::scheduleWarmupCheck(std::uint64_t measured_quota)
{
    // Poll until the warmup portion of the quota has been issued, then
    // zero every component's statistics.
    eventq.scheduleIn(200, [this, measured_quota]() {
        if (quotaRemaining <= measured_quota) {
            resetAllStats();
            return;
        }
        if (warpsAlive > 0)
            scheduleWarmupCheck(measured_quota);
    });
}

void
Gpu::saveState(CkptWriter &w) const
{
    // Quiesce contract: only a drained machine serialises.  Pending events
    // are closures and cannot be written to disk; the segmented-run design
    // guarantees a barrier tick where none exist.
    SW_ASSERT(eventq.empty(), "checkpoint with events still pending");
    SW_ASSERT(quotaRemaining == 0 && warpsAlive == 0,
              "checkpoint before the segment's quota drained");
    w.section("gpu");
    w.u64(eventq.now());
    w.u64(eventq.seqCounter());
    w.u64(eventq.eventsExecuted());
    w.u64(measureStart);
    for (const auto &sm : sms)
        sm->saveState(w);
    engine_->saveState(w);   // TLBs, PWC, faults, walk backend
    allocator->saveState(w);
    spaces_->saveState(w);
    mem->saveState(w);
    for (const auto &workload : workloads_)
        workload->saveState(w);
}

void
Gpu::restoreState(CkptReader &r)
{
    r.expectSection("gpu");
    Cycle cycle = r.u64();
    std::uint64_t seq = r.u64();
    std::uint64_t executed = r.u64();
    eventq.restoreClock(cycle, seq, executed);
    measureStart = r.u64();
    for (auto &sm : sms)
        sm->restoreState(r);
    engine_->restoreState(r);
    allocator->restoreState(r);
    spaces_->restoreState(r);
    mem->restoreState(r);
    for (auto &workload : workloads_)
        workload->restoreState(r);
}

void
Gpu::installObservability(const Observability &obs)
{
    if (obs.tracer) {
        tracer_ = obs.tracer;
        engine_->setTracer(obs.tracer);
    }
    // After the tracer: registerStats() exposes "trace.*" only when one
    // is installed.
    if (obs.registry)
        registerStats(*obs.registry);
    if (obs.sampler) {
        sampler_ = obs.sampler;
        registerSamplerGauges(*obs.sampler);
        if (WalkBackend *backend = engine_->backend())
            backend->registerGauges(*obs.sampler);
        obs.sampler->install(
            eventq, obs.sampleInterval > 0 ? obs.sampleInterval : 10000);
    }
}

void
Gpu::registerStats(StatRegistry &registry)
{
    StatGroup root = registry.root();

    StatGroup gpu_group = root.group("gpu");
    gpu_group.gauge("cycles", [this]() { return double(eventq.now()); });
    gpu_group.gauge("measured_cycles",
                    [this]() { return double(measuredCycles()); });
    gpu_group.gauge("events_executed",
                    [this]() { return double(eventq.eventsExecuted()); });
    gpu_group.gauge("performance", [this]() { return performance(); });

    for (SmId id = 0; id < SmId(sms.size()); ++id)
        sms[id]->registerStats(root.group(strprintf("sm%u", id)));

    engine_->registerStats(root);
    mem->registerStats(root.group("mem"));
    auditor_.registerStats(root.group("audit"));

    if (tracer_) {
        StatGroup trace = root.group("trace");
        trace.latency("queue_phase", &tracer_->queuePhase());
        trace.latency("walk_phase", &tracer_->walkPhase());
        trace.latency("total_phase", &tracer_->totalPhase());
        trace.latency("pt_reads_per_walk", &tracer_->ptReadsPerWalk());
    }
}

void
Gpu::registerSamplerGauges(TimeSeriesSampler &sampler)
{
    sampler.gauge("l2tlb_pending",
                  [this]() { return double(engine_->l2Tlb().pendingCount()); });
    sampler.gauge("outstanding_walks",
                  [this]() { return double(engine_->outstandingWalks()); });
    sampler.gauge("backend_inflight", [this]() {
        WalkBackend *backend = engine_->backend();
        return backend ? double(backend->inFlight()) : 0.0;
    });
    sampler.gauge("l2tlb_miss_rate", [this]() {
        const TranslationEngine::Stats &s = engine_->stats();
        return s.l2Accesses ? double(s.l2Misses) / double(s.l2Accesses)
                            : 0.0;
    });
    sampler.gauge("stalled_warps", [this]() {
        double stalled = 0;
        for (const auto &sm : sms)
            stalled += sm->stalledWarps();
        return stalled;
    });
}

void
Gpu::resetAllStats()
{
    SW_PROF_SCOPE(prof::Zone::StatsAudit);
    measureStart = eventq.now();
    for (auto &sm : sms)
        sm->resetStats();
    engine_->resetStats();
    mem->resetStats();
    if (tracer_)
        tracer_->resetAttribution();
}

std::uint64_t
Gpu::instructionsIssued() const
{
    std::uint64_t total = 0;
    for (const auto &sm : sms)
        total += sm->stats().warpInstrs;
    return total;
}

Sm::Stats
Gpu::aggregateSmStats() const
{
    Sm::Stats agg;
    for (const auto &sm : sms) {
        const Sm::Stats &s = sm->stats();
        agg.warpInstrs += s.warpInstrs;
        agg.issueSlotCycles += s.issueSlotCycles;
        agg.pwIssueCycles += s.pwIssueCycles;
        agg.computeCycles += s.computeCycles;
        agg.memStallCycles += s.memStallCycles;
        agg.translationsRequested += s.translationsRequested;
        agg.dataAccesses += s.dataAccesses;
        agg.warpMemLatency.merge(s.warpMemLatency);
        agg.accessLatency.merge(s.accessLatency);
    }
    return agg;
}

double
Gpu::performance() const
{
    // SM stats are zeroed when the measured region starts, so
    // instructionsIssued() already counts only measured instructions.
    Cycle elapsed = measuredCycles();
    if (elapsed == 0)
        return 0.0;
    return double(instructionsIssued()) / double(elapsed);
}

void
Gpu::setTraceHook(TraceHookFn hook)
{
    for (auto &sm : sms)
        sm->traceHook = hook;
}

} // namespace sw
