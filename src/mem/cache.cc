#include "mem/cache.hh"

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

Cache::Cache(EventQueue &eq, Params params, CacheForwardFn fwd)
    : eventq(eq), params_(std::move(params)), forward(std::move(fwd))
{
    SW_ASSERT(params_.lineBytes % params_.sectorBytes == 0,
              "line size must be a multiple of sector size");
    std::uint64_t num_lines = params_.sizeBytes / params_.lineBytes;
    SW_ASSERT(num_lines % params_.ways == 0,
              "cache lines (%llu) not divisible by ways (%u)",
              static_cast<unsigned long long>(num_lines), params_.ways);
    numSets = static_cast<std::uint32_t>(num_lines / params_.ways);
    sectorsPerLine = params_.lineBytes / params_.sectorBytes;
    SW_ASSERT(sectorsPerLine <= 32, "sector mask limited to 32 sectors");
    lines.resize(num_lines);
}

std::uint64_t
Cache::lineAddr(PhysAddr addr) const
{
    return addr / params_.lineBytes;
}

std::uint64_t
Cache::sectorAddr(PhysAddr addr) const
{
    return addr / params_.sectorBytes;
}

std::uint32_t
Cache::sectorIndex(PhysAddr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / params_.sectorBytes) % sectorsPerLine);
}

std::uint64_t
Cache::setIndex(std::uint64_t line_addr) const
{
    return line_addr % numSets;
}

std::uint64_t
Cache::tagOf(std::uint64_t line_addr) const
{
    return line_addr / numSets;
}

void
Cache::access(PhysAddr addr, bool write, std::function<void()> on_done)
{
    ++stats_.accesses;
    auto fire = [this, addr, write, cb = std::move(on_done)]() mutable {
        lookup(addr, write, std::move(cb));
    };
    static_assert(EventFn::fitsInline<decltype(fire)>(),
                  "cache access event must not spill to the slab pool");
    eventq.scheduleIn(params_.latency, std::move(fire));
}

bool
Cache::isResident(PhysAddr addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = setIndex(la);
    std::uint64_t tag = tagOf(la);
    std::uint32_t sector_bit = 1u << sectorIndex(addr);
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        const Line &line = lines[set * params_.ways + w];
        if (line.valid && line.tag == tag && (line.sectorMask & sector_bit))
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

void
Cache::lookup(PhysAddr addr, bool write, std::function<void()> on_done,
              bool retry)
{
    SW_PROF_SCOPE(prof::Zone::CacheDram);
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = setIndex(la);
    std::uint64_t tag = tagOf(la);
    std::uint32_t sector_bit = 1u << sectorIndex(addr);

    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = lines[set * params_.ways + w];
        if (line.valid && line.tag == tag) {
            if (line.sectorMask & sector_bit) {
                if (!retry)
                    ++stats_.hits;
                line.lruTick = ++lruCounter;
                on_done();
                return;
            }
            if (!retry)
                ++stats_.sectorMisses;
            break;
        }
    }

    if (!retry)
        ++stats_.misses;

    // Writes allocate like reads in this model (write-allocate,
    // fetch-on-write); the timing consequence is identical.
    std::uint64_t sa = sectorAddr(addr);
    auto it = mshrs.find(sa);
    if (it != mshrs.end()) {
        if (it->second.waiters.size() <
            static_cast<std::size_t>(params_.maxMergesPerMshr)) {
            ++stats_.mshrMerges;
            it->second.waiters.push_back(std::move(on_done));
            return;
        }
        // Merge capacity exhausted: treat like a full MSHR file.
        ++stats_.mshrFailures;
        waitingForMshr.push_back({addr, write, std::move(on_done)});
        return;
    }

    if (mshrs.size() >= params_.mshrEntries) {
        ++stats_.mshrFailures;
        waitingForMshr.push_back({addr, write, std::move(on_done)});
        return;
    }

    Mshr &mshr = mshrs[sa];
    mshr.waiters.push_back(std::move(on_done));
    SW_AUDIT(mshrs.size() <= params_.mshrEntries,
             "%s: MSHR file overallocated (%zu > %u)",
             params_.name.c_str(), mshrs.size(), params_.mshrEntries);
    forward(addr, write, [this, addr]() { handleFill(addr); });
}

void
Cache::handleFill(PhysAddr addr)
{
    SW_PROF_SCOPE(prof::Zone::CacheDram);
    install(addr);

    std::uint64_t sa = sectorAddr(addr);
    auto it = mshrs.find(sa);
    SW_ASSERT(it != mshrs.end(), "fill for sector without an MSHR");
    std::vector<std::function<void()>> waiters = std::move(it->second.waiters);
    mshrs.erase(it);

    for (auto &waiter : waiters)
        waiter();

    retryWaiting();
}

void
Cache::install(PhysAddr addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = setIndex(la);
    std::uint64_t tag = tagOf(la);
    std::uint32_t sector_bit = 1u << sectorIndex(addr);

    // Existing line: just set the sector bit.
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = lines[set * params_.ways + w];
        if (line.valid && line.tag == tag) {
            line.sectorMask |= sector_bit;
            line.lruTick = ++lruCounter;
            return;
        }
    }

    // Pick invalid way, else LRU victim.
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = lines[set * params_.ways + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruTick < victim->lruTick)
            victim = &line;
    }
    if (victim->valid)
        ++stats_.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->sectorMask = sector_bit;
    victim->lruTick = ++lruCounter;
}

void
Cache::retryWaiting()
{
    SW_PROF_SCOPE(prof::Zone::CacheDram);
    // Re-issue queued requests now that an MSHR has freed.  Each retry goes
    // through the full lookup path again (it may now hit thanks to the
    // fill).  A retry can park itself again (e.g. its target MSHR is still
    // merge-full); stop as soon as the queue makes no progress.
    while (!waitingForMshr.empty() && mshrs.size() < params_.mshrEntries) {
        std::size_t before = waitingForMshr.size();
        Waiting wait_entry = std::move(waitingForMshr.front());
        waitingForMshr.pop_front();
        lookup(wait_entry.addr, wait_entry.write,
               std::move(wait_entry.onDone), /*retry=*/true);
        if (waitingForMshr.size() >= before)
            break;
    }
}

void
Cache::saveState(CkptWriter &w) const
{
    SW_ASSERT(mshrs.empty() && waitingForMshr.empty(),
              "cache '%s' checkpointed with misses in flight",
              params_.name.c_str());
    w.section("cache");
    w.str(params_.name);
    // Tag stores are mostly invalid early in a run: write valid lines
    // sparsely, keyed by their index in the flat line array.
    std::uint32_t valid = 0;
    for (const Line &line : lines)
        valid += line.valid ? 1 : 0;
    w.u32(std::uint32_t(lines.size()));
    w.u32(valid);
    for (std::uint32_t i = 0; i < lines.size(); ++i) {
        const Line &line = lines[i];
        if (!line.valid)
            continue;
        w.u32(i);
        w.u64(line.tag);
        w.u32(line.sectorMask);
        w.u64(line.lruTick);
    }
    w.u64(lruCounter);
    w.u64(stats_.accesses);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.sectorMisses);
    w.u64(stats_.mshrMerges);
    w.u64(stats_.mshrFailures);
    w.u64(stats_.evictions);
}

void
Cache::restoreState(CkptReader &r)
{
    r.expectSection("cache");
    std::string name = r.str();
    if (name != params_.name) {
        fatal("checkpoint cache '%s' restored into '%s'", name.c_str(),
              params_.name.c_str());
    }
    std::uint32_t total = r.u32();
    if (total != lines.size()) {
        fatal("checkpoint cache '%s' has %u lines, this config has %zu",
              name.c_str(), total, lines.size());
    }
    std::uint32_t valid = r.u32();
    if (valid > total) {
        fatal("checkpoint cache '%s' has %u valid of %u lines",
              name.c_str(), valid, total);
    }
    for (Line &line : lines)
        line = Line{};
    for (std::uint32_t n = 0; n < valid; ++n) {
        std::uint32_t idx = r.u32();
        if (idx >= lines.size())
            fatal("checkpoint cache line index %u out of range", idx);
        Line &line = lines[idx];
        if (line.valid)
            fatal("checkpoint cache line index %u duplicated", idx);
        line.valid = true;
        line.tag = r.u64();
        line.sectorMask = r.u32();
        line.lruTick = r.u64();
    }
    lruCounter = r.u64();
    stats_.accesses = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.sectorMisses = r.u64();
    stats_.mshrMerges = r.u64();
    stats_.mshrFailures = r.u64();
    stats_.evictions = r.u64();
}

void
Cache::registerStats(StatGroup group)
{
    group.counter("accesses", &stats_.accesses);
    group.counter("hits", &stats_.hits);
    group.counter("misses", &stats_.misses);
    group.counter("sector_misses", &stats_.sectorMisses);
    group.counter("mshr_merges", &stats_.mshrMerges);
    group.counter("mshr_fail", &stats_.mshrFailures);
    group.counter("evictions", &stats_.evictions);
    group.gauge("miss_rate", [this]() { return stats_.missRate(); });
    group.gauge("outstanding_mshrs",
                [this]() { return double(mshrs.size()); });
}

} // namespace sw
