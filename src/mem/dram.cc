#include "mem/dram.hh"

#include <algorithm>

#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace sw {

Dram::Dram(EventQueue &eq, Params params)
    : eventq(eq), params_(params),
      channelFree(params.channels, 0),
      channelBusyCycles(params.channels, 0)
{
    SW_ASSERT(params_.channels > 0, "DRAM needs at least one channel");
}

void
Dram::access(PhysAddr addr, bool write, std::function<void()> on_done)
{
    (void)write; // reads and writes share timing in this model
    ++stats_.accesses;

    std::uint32_t chan = static_cast<std::uint32_t>(
        (addr >> params_.channelShift) % params_.channels);

    Cycle now = eventq.now();
    Cycle start = std::max(now, channelFree[chan]);
    channelFree[chan] = start + params_.cyclesPerSector;
    channelBusyCycles[chan] += params_.cyclesPerSector;

    Cycle done_at = start + params_.accessLatency;
    stats_.queueDelay.add(start - now);
    stats_.totalLatency.add(done_at - now);

    eventq.schedule(done_at, std::move(on_done));
}

void
Dram::resetStats()
{
    stats_ = Stats{};
    std::fill(channelBusyCycles.begin(), channelBusyCycles.end(), 0);
    statsSince = eventq.now();
}

double
Dram::utilisation() const
{
    Cycle now = eventq.now();
    if (now <= statsSince)
        return 0.0;
    std::uint64_t busiest = 0;
    for (auto busy : channelBusyCycles)
        busiest = std::max(busiest, busy);
    return double(busiest) / double(now - statsSince);
}

void
Dram::saveState(CkptWriter &w) const
{
    w.section("dram");
    w.u32(std::uint32_t(channelFree.size()));
    // channelFree holds absolute cycles: a channel busy into the future
    // stays busy across the restore, preserving bandwidth contention.
    for (Cycle free_at : channelFree)
        w.u64(free_at);
    for (std::uint64_t busy : channelBusyCycles)
        w.u64(busy);
    w.u64(statsSince);
    w.u64(stats_.accesses);
    w.latency(stats_.queueDelay);
    w.latency(stats_.totalLatency);
}

void
Dram::restoreState(CkptReader &r)
{
    r.expectSection("dram");
    std::uint32_t channels = r.u32();
    if (channels != channelFree.size()) {
        fatal("checkpoint DRAM has %u channels, this config has %zu",
              channels, channelFree.size());
    }
    for (auto &free_at : channelFree)
        free_at = r.u64();
    for (auto &busy : channelBusyCycles)
        busy = r.u64();
    statsSince = r.u64();
    stats_.accesses = r.u64();
    r.latency(stats_.queueDelay);
    r.latency(stats_.totalLatency);
}

void
Dram::registerStats(StatGroup group)
{
    group.counter("accesses", &stats_.accesses);
    group.latency("queue_delay", &stats_.queueDelay);
    group.latency("total_latency", &stats_.totalLatency);
    group.gauge("utilisation", [this]() { return utilisation(); });
}

} // namespace sw
