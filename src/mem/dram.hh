/**
 * @file
 * GDDR6 DRAM model: fixed access latency plus per-channel bandwidth
 * contention.
 *
 * Table 3: 16 channels, 448 GB/s aggregate at a 1500 MHz core clock gives
 * roughly 18.7 B per core cycle per channel; a 32 B sector therefore
 * occupies its channel for ~2 cycles. Requests queue FIFO per channel.
 */

#ifndef SW_MEM_DRAM_HH
#define SW_MEM_DRAM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/** Multi-channel DRAM with queueing delay and fixed device latency. */
class Dram
{
  public:
    struct Params
    {
        std::uint32_t channels = 16;
        Cycle accessLatency = 160;    ///< device access time
        Cycle cyclesPerSector = 2;    ///< channel occupancy per 32 B burst
        std::uint32_t channelShift = 5; ///< addr bits below channel select
    };

    struct Stats
    {
        std::uint64_t accesses = 0;
        LatencyStat queueDelay;       ///< time waiting for the channel
        LatencyStat totalLatency;
    };

    Dram(EventQueue &eq, Params params);

    Dram(const Dram &) = delete;
    Dram &operator=(const Dram &) = delete;

    /** Issue one sector access; @p on_done fires at completion. */
    void access(PhysAddr addr, bool write, std::function<void()> on_done);

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats();

    /** Register the DRAM's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    const Params &params() const { return params_; }

    /** Fraction of elapsed cycles the busiest channel was transferring. */
    double utilisation() const;

    /** Serialise channel timing + counters into a checkpoint. */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); channel count must match. */
    void restoreState(CkptReader &r);

  private:
    EventQueue &eventq;
    Params params_;
    std::vector<Cycle> channelFree;   ///< next cycle each channel is free
    std::vector<std::uint64_t> channelBusyCycles;
    Cycle statsSince = 0;             ///< utilisation window start
    Stats stats_;
};

} // namespace sw

#endif // SW_MEM_DRAM_HH
