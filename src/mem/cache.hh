/**
 * @file
 * Generic non-blocking, sectored, set-associative cache model.
 *
 * Models tags, LRU replacement, sector-valid bits, and MSHRs with merging.
 * Data values are not stored: the simulator tracks timing, not contents.
 * Used for both the per-SM L1D caches and the shared L2D cache.
 */

#ifndef SW_MEM_CACHE_HH
#define SW_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sw {

class StatGroup;
class CkptWriter;
class CkptReader;

/**
 * Forwarding hook to the next level: called with the sector address of a
 * miss; the callee must invoke the supplied callback when the fill data is
 * available.
 */
using CacheForwardFn =
    std::function<void(PhysAddr sector_addr, bool write,
                       std::function<void()> on_fill)>;

/** Sectored set-associative cache with MSHRs. */
class Cache
{
  public:
    struct Params
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 128 * 1024;
        std::uint32_t ways = 8;
        std::uint32_t lineBytes = 128;
        std::uint32_t sectorBytes = 32;
        Cycle latency = 40;
        std::uint32_t mshrEntries = 256;
        std::uint32_t maxMergesPerMshr = 64;
    };

    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;        ///< line or sector misses
        std::uint64_t sectorMisses = 0;  ///< line present, sector absent
        std::uint64_t mshrMerges = 0;
        std::uint64_t mshrFailures = 0;  ///< attempts rejected: MSHRs full
        std::uint64_t evictions = 0;

        double
        missRate() const
        {
            return accesses ? double(misses) / double(accesses) : 0.0;
        }
    };

    Cache(EventQueue &eq, Params params, CacheForwardFn forward);

    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /**
     * Access one sector.  @p on_done fires once the sector is resident
     * (after the hit latency, or after the fill returns from below).
     */
    void access(PhysAddr addr, bool write, std::function<void()> on_done);

    /** Tag-only probe (no latency, no LRU update); used by tests. */
    bool isResident(PhysAddr addr) const;

    /** Invalidate everything (tests / kernel boundaries). */
    void flush();

    /** Zero the statistics (post-warmup measurement reset). */
    void resetStats() { stats_ = Stats{}; }

    /** Register the cache's counters with the unified stat registry. */
    void registerStats(StatGroup group);

    const Stats &stats() const { return stats_; }
    const Params &params() const { return params_; }
    std::size_t outstandingMshrs() const { return mshrs.size(); }
    std::size_t waitingForMshrCount() const { return waitingForMshr.size(); }

    /**
     * Serialise tag store + LRU clock + counters into a checkpoint.  Must
     * only be called at a quiesced tick (no outstanding misses).
     */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(CkptReader &r);

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint32_t sectorMask = 0;   ///< bit per resident sector
        std::uint64_t lruTick = 0;
    };

    struct Mshr
    {
        std::vector<std::function<void()>> waiters;
    };

    std::uint64_t lineAddr(PhysAddr addr) const;
    std::uint64_t sectorAddr(PhysAddr addr) const;
    std::uint32_t sectorIndex(PhysAddr addr) const;
    std::uint64_t setIndex(std::uint64_t line_addr) const;
    std::uint64_t tagOf(std::uint64_t line_addr) const;

    /**
     * After the lookup latency: resolve hit/miss.
     * @param retry re-issue of a parked request; skips demand hit/miss
     *        accounting so stats count each access once.
     */
    void lookup(PhysAddr addr, bool write, std::function<void()> on_done,
                bool retry = false);

    /** Fill returned from the level below. */
    void handleFill(PhysAddr addr);

    /** Install the sector into the tag store, evicting if needed. */
    void install(PhysAddr addr);

    void retryWaiting();

    EventQueue &eventq;
    Params params_;
    CacheForwardFn forward;

    std::uint32_t numSets;
    std::uint32_t sectorsPerLine;
    std::vector<Line> lines;            ///< numSets * ways
    std::uint64_t lruCounter = 0;

    /** Outstanding misses keyed by sector address. */
    std::unordered_map<std::uint64_t, Mshr> mshrs;

    /** Requests waiting for a free MSHR. */
    struct Waiting
    {
        PhysAddr addr;
        bool write;
        std::function<void()> onDone;
    };
    std::deque<Waiting> waitingForMshr;

    Stats stats_;
};

} // namespace sw

#endif // SW_MEM_CACHE_HH
