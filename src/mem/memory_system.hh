/**
 * @file
 * Data-memory hierarchy façade: per-SM L1D caches, a shared L2D, and DRAM.
 *
 * Page-table accesses (MemAccess::pte) skip the L1D and are cached only in
 * the L2D, matching the paper's assumption (footnote 2: "we assume PTEs are
 * cached only in the L2 cache").
 */

#ifndef SW_MEM_MEMORY_SYSTEM_HH
#define SW_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace sw {

class Auditor;
class StatGroup;
class CkptWriter;
class CkptReader;

/** Wires L1D -> L2D -> DRAM and routes accesses. */
class MemorySystem
{
  public:
    MemorySystem(EventQueue &eq, const GpuConfig &cfg);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** Issue one sector access through the hierarchy. */
    void access(MemAccess acc);

    const Cache &l1d(SmId sm) const { return *l1dCaches.at(sm); }
    const Cache &l2d() const { return *l2dCache; }
    const Dram &dram() const { return *dramModel; }

    /** Aggregate L1D stats across all SMs. */
    Cache::Stats aggregateL1dStats() const;

    /** Zero every cache's and DRAM's statistics (post-warmup reset). */
    void resetStats();

    /** Cache MSHR capacity + leak audits for every level. */
    void registerAudits(Auditor &auditor);

    /**
     * Register the hierarchy with the unified stat registry:
     * "l1d<N>.*", "l2d.*", "dram.*" under @p group's prefix.
     */
    void registerStats(StatGroup group);

    /** Serialise every cache level + DRAM into a checkpoint (quiesced). */
    void saveState(CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(CkptReader &r);

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    EventQueue &eventq;
    std::vector<std::unique_ptr<Cache>> l1dCaches;
    std::unique_ptr<Cache> l2dCache;
    std::unique_ptr<Dram> dramModel;
};

} // namespace sw

#endif // SW_MEM_MEMORY_SYSTEM_HH
