/**
 * @file
 * Memory access descriptor passed through the data-memory hierarchy.
 */

#ifndef SW_MEM_REQUEST_HH
#define SW_MEM_REQUEST_HH

#include <functional>

#include "sim/types.hh"

namespace sw {

/** Completion callback: invoked at the cycle the access is finished. */
using MemDoneFn = std::function<void()>;

/**
 * One sector-granularity access to the data-memory hierarchy.
 *
 * Page-table reads set @c pte: they bypass the L1D and are cached in the L2
 * only (the paper follows MASK/Mosaic in caching PTEs at L2; footnote 2).
 */
struct MemAccess
{
    PhysAddr addr = 0;
    bool write = false;
    bool pte = false;
    SmId sm = kInvalidSm;   ///< issuing SM, selects the L1D (ignored for PTE)
    MemDoneFn onDone;
};

} // namespace sw

#endif // SW_MEM_REQUEST_HH
